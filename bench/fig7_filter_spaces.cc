// Reproduces Fig. 7: end-task error when the chain filter operates in
// hyperbolic space vs Euclidean space vs random sampling, across embedding
// dimensions. Paper's shape: hyperbolic at low dimension matches or beats
// Euclidean at higher dimension; random is worst. Dimensions are scaled from
// the paper's {32..1024} to {4..32}.

#include <cstdio>

#include "bench/bench_common.h"

using namespace chainsformer;

int main() {
  bench::PrintBanner("Figure 7",
                     "Filtering-space comparison across embedding dimensions "
                     "(FB15K-237-like).");
  auto options = bench::DefaultOptions();
  options.epochs = std::max(4, options.epochs - 4);  // filter effect dominates
  const auto& ds = bench::FbDataset(options);

  eval::TextTable table({"space", "dim", "Average* MAE", "Average* RMSE"});
  const int dims[] = {4, 8, 16, 32};
  for (core::FilterSpace space : {core::FilterSpace::kHyperbolic,
                                  core::FilterSpace::kEuclidean}) {
    const char* name =
        space == core::FilterSpace::kHyperbolic ? "hyperbolic" : "euclidean";
    for (int dim : dims) {
      auto config = bench::BenchConfig(options);
      config.filter_space = space;
      config.filter_dim = dim;
      config.epochs = options.epochs;
      const auto r = bench::RunChainsFormer(ds, config, options);
      table.AddRow({name, std::to_string(dim), bench::Fmt(r.normalized_mae),
                    bench::Fmt(r.normalized_rmse)});
      std::printf("  %s dim=%d nmae=%.4f\n", name, dim, r.normalized_mae);
    }
  }
  {
    auto config = bench::BenchConfig(options);
    config.filter_space = core::FilterSpace::kRandom;
    config.epochs = options.epochs;
    const auto r = bench::RunChainsFormer(ds, config, options);
    table.AddRow({"random", "-", bench::Fmt(r.normalized_mae),
                  bench::Fmt(r.normalized_rmse)});
  }
  std::printf("\n%s", table.ToString().c_str());
  return 0;
}
