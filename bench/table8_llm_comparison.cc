// Reproduces Table VIII: zero-shot LLM numerical reasoning vs ChainsFormer.
// The LLMs are simulated (see baselines/llm_sim.h): they receive the same
// de-identified RA-chains and aggregate them untrained. Expected shape:
// ChainsFormer < GPT-4-sim < GPT-3.5-sim in error.

#include <cstdio>

#include "baselines/llm_sim.h"
#include "bench/bench_common.h"

using namespace chainsformer;

int main() {
  bench::PrintBanner("Table VIII",
                     "Comparison with (simulated) zero-shot LLM reasoners.");
  const auto options = bench::DefaultOptions();

  eval::TextTable table({"model", "YAGO nMAE", "YAGO nRMSE", "FB nMAE",
                         "FB nRMSE"});
  std::vector<std::vector<std::string>> rows(3);
  rows[0] = {"ChatGPT-3.5-sim"};
  rows[1] = {"ChatGPT-4.0-sim"};
  rows[2] = {"ChainsFormer"};

  for (const kg::Dataset* ds :
       {&bench::YagoDataset(options), &bench::FbDataset(options)}) {
    const auto sample = bench::TestSample(*ds, options.eval_queries);
    baselines::LlmSimBaseline g35(*ds, baselines::LlmGrade::kGpt35);
    baselines::LlmSimBaseline g40(*ds, baselines::LlmGrade::kGpt40);
    g35.Train();
    g40.Train();
    const auto r35 = g35.Evaluate(sample);
    const auto r40 = g40.Evaluate(sample);
    const auto rcf =
        bench::RunChainsFormer(*ds, bench::BenchConfig(options), options);
    rows[0].push_back(bench::Fmt(r35.normalized_mae));
    rows[0].push_back(bench::Fmt(r35.normalized_rmse));
    rows[1].push_back(bench::Fmt(r40.normalized_mae));
    rows[1].push_back(bench::Fmt(r40.normalized_rmse));
    rows[2].push_back(bench::Fmt(rcf.normalized_mae));
    rows[2].push_back(bench::Fmt(rcf.normalized_rmse));
    std::printf("  %s: gpt35=%.4f gpt40=%.4f chainsformer=%.4f (nMAE)\n",
                ds->name.c_str(), r35.normalized_mae, r40.normalized_mae,
                rcf.normalized_mae);
  }
  for (auto& row : rows) table.AddRow(row);
  std::printf("\n%s", table.ToString().c_str());
  return 0;
}
