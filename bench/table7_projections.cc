// Reproduces Table VII: numerical projection methods (direct / translation /
// scaling / combined). Expected shape: scaling best; direct regression from
// embeddings worst, especially on FB (wider value ranges).

#include <cstdio>

#include "bench/bench_common.h"

using namespace chainsformer;

int main() {
  bench::PrintBanner("Table VII",
                     "Numerical projection methods of the Numerical Reasoner.");
  const auto options = bench::DefaultOptions();

  struct Mode {
    const char* name;
    core::ProjectionMode mode;
  };
  const Mode modes[] = {
      {"Direct", core::ProjectionMode::kDirect},
      {"Translation", core::ProjectionMode::kTranslation},
      {"Scaling", core::ProjectionMode::kScaling},
      {"Combined", core::ProjectionMode::kCombined},
  };

  eval::TextTable table({"projection", "YAGO nMAE", "YAGO nRMSE", "FB nMAE",
                         "FB nRMSE"});
  for (const auto& m : modes) {
    std::vector<std::string> row = {m.name};
    for (const kg::Dataset* ds :
         {&bench::YagoDataset(options), &bench::FbDataset(options)}) {
      auto config = bench::BenchConfig(options);
      config.projection = m.mode;
      const auto r = bench::RunChainsFormer(*ds, config, options);
      row.push_back(bench::Fmt(r.normalized_mae));
      row.push_back(bench::Fmt(r.normalized_rmse));
      std::printf("  %-12s %-14s nmae=%.4f\n", m.name, ds->name.c_str(),
                  r.normalized_mae);
    }
    table.AddRow(row);
  }
  std::printf("\n%s", table.ToString().c_str());
  return 0;
}
