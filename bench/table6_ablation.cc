// Reproduces Table VI: ablation study over every ChainsFormer component.
// Expected shape: every variant degrades the full model; removing the Chain
// Encoder or the numerical projection hurts most.

#include <cstdio>
#include <functional>
#include <vector>

#include "bench/bench_common.h"

using namespace chainsformer;

namespace {

struct Variant {
  const char* name;
  std::function<void(core::ChainsFormerConfig&)> apply;
};

}  // namespace

int main() {
  bench::PrintBanner("Table VI", "Ablation variants (normalized MAE / RMSE).");
  const auto options = bench::DefaultOptions();

  const std::vector<Variant> variants = {
      {"w/o Hyperbolic Filter",
       [](core::ChainsFormerConfig& c) { c.filter_space = core::FilterSpace::kRandom; }},
      {"w/o Chain Encoder",
       [](core::ChainsFormerConfig& c) { c.encoder_type = core::EncoderType::kMean; }},
      {"w LSTM as Chain Encoder",
       [](core::ChainsFormerConfig& c) { c.encoder_type = core::EncoderType::kLstm; }},
      {"w/o Numerical-Aware",
       [](core::ChainsFormerConfig& c) { c.use_numerical_aware = false; }},
      {"w Numerical-Aware by Log",
       [](core::ChainsFormerConfig& c) {
         c.numeric_encoding = core::NumericEncoding::kLog;
       }},
      {"w/o Numerical Projection",
       [](core::ChainsFormerConfig& c) { c.projection = core::ProjectionMode::kDirect; }},
      {"w/o Chain Weighting",
       [](core::ChainsFormerConfig& c) { c.use_chain_weighting = false; }},
      {"ChainsFormer (full)", [](core::ChainsFormerConfig&) {}},
  };

  const kg::Dataset* datasets[] = {&bench::YagoDataset(options),
                                   &bench::FbDataset(options)};
  std::vector<std::vector<eval::EvalResult>> results(variants.size());
  for (const kg::Dataset* ds : datasets) {
    for (size_t v = 0; v < variants.size(); ++v) {
      auto config = bench::BenchConfig(options);
      variants[v].apply(config);
      const auto r = bench::RunChainsFormer(*ds, config, options);
      results[v].push_back(r);
      std::printf("  %-26s %-14s nmae=%.4f nrmse=%.4f\n", variants[v].name,
                  ds->name.c_str(), r.normalized_mae, r.normalized_rmse);
    }
  }

  eval::TextTable table(
      {"variant", "YAGO nMAE", "YAGO nRMSE", "FB nMAE", "FB nRMSE"});
  for (size_t v = 0; v < variants.size(); ++v) {
    table.AddRow({variants[v].name, bench::Fmt(results[v][0].normalized_mae),
                  bench::Fmt(results[v][0].normalized_rmse),
                  bench::Fmt(results[v][1].normalized_mae),
                  bench::Fmt(results[v][1].normalized_rmse)});
  }
  std::printf("\n%s", table.ToString().c_str());
  return 0;
}
