// Reproduces Table IV: reasoning-capability matrix of every method, plus an
// empirical demonstration that ChainsFormer actually exercises multi-hop and
// multi-attribute chains (counts over retrieved reasoning chains).

#include <cstdio>

#include "bench/bench_common.h"
#include "core/query_retrieval.h"

using namespace chainsformer;

namespace {

std::string Mark(bool b) { return b ? "yes" : "no"; }

}  // namespace

int main() {
  bench::PrintBanner("Table IV",
                     "Method comparison by reasoning capability.");
  const auto options = bench::DefaultOptions();
  const auto& ds = bench::YagoDataset(options);

  eval::TextTable table(
      {"capability", "NAP++", "MrAP", "PLM-reg", "KGA", "HyNT", "Ours"});
  auto methods = bench::MakeBaselines(ds, options);
  // methods order: NAP++, MrAP, PLM-reg, KGA, HyNT, ToG (drop ToG for Table IV).
  baselines::Capabilities ours{.num_aware = true, .one_hop = true,
                               .multi_hop = true, .same_attr = true,
                               .multi_attr = true};
  auto row = [&](const std::string& name,
                 const std::function<bool(const baselines::Capabilities&)>& get) {
    std::vector<std::string> cells = {name};
    for (size_t i = 0; i < 5; ++i) cells.push_back(Mark(get(methods[i]->capabilities())));
    cells.push_back(Mark(get(ours)));
    table.AddRow(cells);
  };
  row("Num-aware", [](const auto& c) { return c.num_aware; });
  row("One-hop", [](const auto& c) { return c.one_hop; });
  row("Multi-hop", [](const auto& c) { return c.multi_hop; });
  row("Same-attr", [](const auto& c) { return c.same_attr; });
  row("Multi-attr", [](const auto& c) { return c.multi_attr; });
  std::printf("%s\n", table.ToString().c_str());

  // Empirical demonstration: the chains ChainsFormer consumes really span
  // multiple hops and multiple attribute types.
  kg::NumericIndex train_index(ds.split.train, ds.graph.num_entities());
  core::QueryRetrieval retrieval(ds.graph, train_index, 3, 128);
  Rng rng(9);
  int64_t by_length[4] = {0, 0, 0, 0};
  int64_t same_attr = 0, cross_attr = 0;
  const auto sample = bench::TestSample(ds, 100);
  for (const auto& q : sample) {
    const auto toc = retrieval.Retrieve({q.entity, q.attribute}, rng);
    for (const auto& c : toc) {
      ++by_length[std::min<int64_t>(c.length(), 3)];
      if (c.source_attribute == q.attribute) {
        ++same_attr;
      } else {
        ++cross_attr;
      }
    }
  }
  std::printf("retrieved chain profile over %zu queries:\n", sample.size());
  std::printf("  1-hop: %lld   2-hop: %lld   3-hop: %lld\n",
              static_cast<long long>(by_length[1]),
              static_cast<long long>(by_length[2]),
              static_cast<long long>(by_length[3]));
  std::printf("  same-attribute: %lld   cross-attribute: %lld\n",
              static_cast<long long>(same_attr),
              static_cast<long long>(cross_attr));
  return 0;
}
