// Reproduces Fig. 5: a single-query reasoning trace in the style of the
// paper's "What is the birth date of F.F. Coppola?" case study — chain counts
// at every pipeline stage, the dominant chains, and the final prediction.

#include <cstdio>

#include "bench/bench_common.h"
#include "core/query_retrieval.h"

using namespace chainsformer;

int main() {
  bench::PrintBanner("Figure 5",
                     "Case study of ChainsFormer's staged reasoning process "
                     "on one birth-date query.");
  const auto options = bench::DefaultOptions();
  const auto& ds = bench::FbDataset(options);

  core::ChainsFormerModel* model = nullptr;
  bench::RunChainsFormer(ds, bench::BenchConfig(options), options, &model);

  const auto birth = ds.graph.FindAttribute("birth");
  kg::NumericIndex train_index(ds.split.train, ds.graph.num_entities());
  for (const auto& t : ds.split.test) {
    if (t.attribute != birth) continue;
    const auto ex = model->Explain({t.entity, t.attribute});
    if (!ex.has_evidence || ex.weighted_chains.size() < 6) continue;

    const int64_t total_chains = core::QueryRetrieval::CountChains(
        ds.graph, train_index, t.entity, 3);
    std::printf("query: birth(%s)\n", ds.graph.EntityName(t.entity).c_str());
    std::printf("  total logic chains within 3 hops: %lld\n",
                static_cast<long long>(total_chains));
    std::printf("  Query Retrieval kept:  %zu chains (%.2f%%)\n", ex.toc_size,
                100.0 * static_cast<double>(ex.toc_size) /
                    std::max<int64_t>(1, total_chains));
    std::printf("  Hyperbolic Filter kept: %zu chains (%.3f%%)\n",
                ex.filtered_size,
                100.0 * static_cast<double>(ex.filtered_size) /
                    std::max<int64_t>(1, total_chains));
    std::printf("  prediction: %.1f   ground truth: %.1f\n", ex.prediction,
                t.value);
    double cumulative = 0.0;
    int key_chains = 0;
    std::printf("  dominant chains:\n");
    for (const auto& [chain, w] : ex.weighted_chains) {
      cumulative += w;
      ++key_chains;
      std::printf("    %-48s evidence=%9.1f omega=%.3f\n",
                  chain.PatternString(ds.graph).c_str(), chain.source_value, w);
      if (cumulative >= 0.8) break;
    }
    std::printf("  -> %d chains contribute %.0f%% of the reasoning weight\n",
                key_chains, 100.0 * cumulative);
    break;
  }
  return 0;
}
