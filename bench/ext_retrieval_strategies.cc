// Extension experiment: random-walk neighbor-selection strategies in Query
// Retrieval (§IV-B uses uniform walks). Evidence-biased walks find numeric
// facts faster; degree-weighted walks chase hubs. This bench measures their
// end-task effect and the evidence density of the retrieved ToCs.

#include <cstdio>

#include "bench/bench_common.h"
#include "core/query_retrieval.h"

using namespace chainsformer;

int main() {
  bench::PrintBanner("Extension",
                     "Retrieval strategies: uniform vs degree-weighted vs "
                     "evidence-biased random walks (YAGO15K-like).");
  const auto options = bench::DefaultOptions();
  const auto& ds = bench::YagoDataset(options);

  struct Strategy {
    const char* name;
    core::RetrievalStrategy strategy;
  };
  const Strategy strategies[] = {
      {"uniform (paper)", core::RetrievalStrategy::kUniform},
      {"degree-weighted", core::RetrievalStrategy::kDegreeWeighted},
      {"evidence-biased", core::RetrievalStrategy::kEvidenceBiased},
  };

  // Retrieval-only statistics: chains found per walk budget.
  kg::NumericIndex train_index(ds.split.train, ds.graph.num_entities());
  eval::TextTable stats({"strategy", "avg chains / 128 walks", "Average* MAE"});
  for (const auto& s : strategies) {
    core::QueryRetrieval retrieval(ds.graph, train_index, 3, 128, s.strategy);
    Rng rng(5);
    double total = 0.0;
    const auto sample = bench::TestSample(ds, 120, 5);
    for (const auto& q : sample) {
      total += static_cast<double>(retrieval.Retrieve({q.entity, q.attribute}, rng).size());
    }
    const double avg_chains = total / static_cast<double>(sample.size());

    auto config = bench::BenchConfig(options);
    config.retrieval_strategy = s.strategy;
    const auto r = bench::RunChainsFormer(ds, config, options);
    stats.AddRow({s.name, bench::Fmt(avg_chains), bench::Fmt(r.normalized_mae)});
    std::printf("  %-16s chains/query=%.1f nmae=%.4f\n", s.name, avg_chains,
                r.normalized_mae);
  }
  std::printf("\n%s", stats.ToString().c_str());
  return 0;
}
