// Reproduces Table I (dataset statistics) and Table II (numerical attribute
// statistics) on the synthetic FB15K-237-like and YAGO15K-like datasets.

#include <cstdio>

#include "bench/bench_common.h"
#include "kg/analysis.h"

using namespace chainsformer;

namespace {

void PrintTables(const kg::Dataset& ds) {
  std::printf("\n--- %s ---\n", ds.name.c_str());
  eval::TextTable t1({"Statistics", "|V|", "|R|", "|A|", "|E_r|", "|E_a|"});
  t1.AddRow({ds.name, std::to_string(ds.graph.num_entities()),
             std::to_string(ds.graph.num_relations()),
             std::to_string(ds.graph.num_attributes()),
             std::to_string(ds.graph.relational_triples().size()),
             std::to_string(ds.graph.numerical_triples().size())});
  std::printf("%s\n", t1.ToString().c_str());

  eval::TextTable t2({"attribute", "category", "|E_a|", "min(a)", "max(a)",
                      "max-min"});
  for (kg::AttributeId a = 0; a < ds.graph.num_attributes(); ++a) {
    const auto& s = ds.graph.attribute_stats()[static_cast<size_t>(a)];
    const char* cat = "quantity";
    if (ds.graph.AttributeCategoryOf(a) == kg::AttributeCategory::kTemporal) {
      cat = "temporal";
    } else if (ds.graph.AttributeCategoryOf(a) == kg::AttributeCategory::kSpatial) {
      cat = "spatial";
    }
    t2.AddRow({ds.graph.AttributeName(a), cat, std::to_string(s.count),
               bench::Fmt(s.min), bench::Fmt(s.max), bench::Fmt(s.Range())});
  }
  std::printf("%s", t2.ToString().c_str());

  const kg::GraphAnalysis analysis = kg::AnalyzeGraph(ds.graph);
  std::printf("\nstructural analysis:\n%s",
              kg::AnalysisReport(ds.graph, analysis).c_str());
}

}  // namespace

int main() {
  bench::PrintBanner("Table I / Table II",
                     "Dataset and attribute statistics (synthetic stand-ins "
                     "matched to the paper's published ranges).");
  const auto options = bench::DefaultOptions();
  PrintTables(bench::YagoDataset(options));
  PrintTables(bench::FbDataset(options));
  return 0;
}
