// Reproduces Fig. 8: hyperparameter sensitivity — retrieval count N_s,
// filter top-k, Chain Encoder layers L_c, and hidden dimension d. Paper's
// shape: N_s has little effect; k has a sweet spot; 2-3 layers suffice; low
// sensitivity to d.

#include <cstdio>

#include "bench/bench_common.h"

using namespace chainsformer;

namespace {

void Sweep(const kg::Dataset& ds, const bench::BenchOptions& options,
           const char* param,
           const std::vector<int>& values,
           const std::function<void(core::ChainsFormerConfig&, int)>& apply) {
  eval::TextTable table({param, "Average* MAE", "Average* RMSE"});
  for (int v : values) {
    auto config = bench::BenchConfig(options);
    apply(config, v);
    const auto r = bench::RunChainsFormer(ds, config, options);
    table.AddRow({std::to_string(v), bench::Fmt(r.normalized_mae),
                  bench::Fmt(r.normalized_rmse)});
    std::printf("  %s=%d nmae=%.4f\n", param, v, r.normalized_mae);
  }
  std::printf("%s\n", table.ToString().c_str());
}

}  // namespace

int main() {
  bench::PrintBanner("Figure 8",
                     "Hyperparameter study: N_s, k, Transformer layers L_c, "
                     "hidden dim d (values scaled from the paper's ranges).");
  auto options = bench::DefaultOptions();
  options.epochs = std::max(4, options.epochs - 4);
  const auto& ds = bench::YagoDataset(options);

  std::printf("\n[retrieval count N_s]\n");
  Sweep(ds, options, "N_s", {32, 64, 128, 256},
        [](core::ChainsFormerConfig& c, int v) { c.num_walks = v; });

  std::printf("\n[filter top-k]\n");
  Sweep(ds, options, "k", {4, 8, 16, 32},
        [](core::ChainsFormerConfig& c, int v) { c.top_k = v; });

  std::printf("\n[encoder layers L_c]\n");
  Sweep(ds, options, "L_c", {1, 2, 3},
        [](core::ChainsFormerConfig& c, int v) {
          c.encoder_layers = v;
          c.reasoner_layers = v;
        });

  std::printf("\n[hidden dim d]\n");
  Sweep(ds, options, "d", {16, 32, 64},
        [](core::ChainsFormerConfig& c, int v) { c.hidden_dim = v; });
  return 0;
}
