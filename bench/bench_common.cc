#include "bench/bench_common.h"

#include <cstdio>
#include <cstdlib>
#include <map>

#include "baselines/hynt.h"
#include "baselines/kga.h"
#include "baselines/llm_sim.h"
#include "baselines/mrap.h"
#include "baselines/nap.h"
#include "baselines/plm_reg.h"
#include "baselines/simple.h"
#include "tensor/checks.h"
#include "tensor/kernels.h"
#include "util/metrics.h"
#include "util/string_util.h"
#include "util/trace.h"

namespace chainsformer {
namespace bench {

namespace {

/// Installs the CF_METRICS_JSON / CF_TRACE_JSON / CF_STATS exit hooks so
/// every bench binary gets the CLI's observability surface without each
/// main() opting in. Returns true (the value is only used for call-once).
bool InstallObservabilityHooks() {
  static const char* metrics_path = std::getenv("CF_METRICS_JSON");
  static const char* trace_path = std::getenv("CF_TRACE_JSON");
  static const char* stats = std::getenv("CF_STATS");
  if (trace_path != nullptr && trace_path[0] != '\0') {
    trace::SetEnabled(true);
  }
  if ((metrics_path != nullptr && metrics_path[0] != '\0') ||
      (trace_path != nullptr && trace_path[0] != '\0') ||
      (stats != nullptr && stats[0] != '\0')) {
    std::atexit([] {
      if (metrics_path != nullptr && metrics_path[0] != '\0') {
        metrics::WriteJsonFile(metrics_path,
                               metrics::MetricsRegistry::Global().Snapshot());
      }
      if (stats != nullptr && stats[0] != '\0') {
        std::printf("%s", metrics::SummaryTable(
                              metrics::MetricsRegistry::Global().Snapshot())
                              .c_str());
      }
      if (trace_path != nullptr && trace_path[0] != '\0') {
        trace::WriteChromeTrace(trace_path);
      }
    });
  }
  return true;
}

}  // namespace

BenchOptions DefaultOptions() {
  static const bool hooks_installed = InstallObservabilityHooks();
  (void)hooks_installed;
  BenchOptions options;
  double mult = 1.0;
  if (const char* env = std::getenv("CF_BENCH_SCALE")) {
    mult = std::atof(env);
    if (mult <= 0.0) mult = 1.0;
  }
  options.dataset_scale *= mult;
  options.train_queries = static_cast<int>(options.train_queries * mult);
  options.eval_queries = static_cast<int>(options.eval_queries * mult);
  if (const char* env = std::getenv("CF_KERNEL_THREADS")) {
    options.kernel_threads = std::atoi(env);
  }
  tensor::kernels::SetKernelThreads(options.kernel_threads);
  // Benches honor CF_CHECK_MODE so sanitizer overhead can be measured with
  // the same binaries; default is off (the perf numbers of record).
  tensor::SetCheckMode(tensor::CheckModeFromEnv());
  return options;
}

const kg::Dataset& YagoDataset(const BenchOptions& options) {
  static std::map<std::pair<double, uint64_t>, std::unique_ptr<kg::Dataset>>* cache =
      new std::map<std::pair<double, uint64_t>, std::unique_ptr<kg::Dataset>>();
  auto key = std::make_pair(options.dataset_scale, options.seed);
  auto it = cache->find(key);
  if (it == cache->end()) {
    it = cache->emplace(key, std::make_unique<kg::Dataset>(kg::MakeYago15kLike(
                                 {.scale = options.dataset_scale,
                                  .seed = options.seed})))
             .first;
  }
  return *it->second;
}

const kg::Dataset& FbDataset(const BenchOptions& options) {
  static std::map<std::pair<double, uint64_t>, std::unique_ptr<kg::Dataset>>* cache =
      new std::map<std::pair<double, uint64_t>, std::unique_ptr<kg::Dataset>>();
  auto key = std::make_pair(options.dataset_scale, options.seed);
  auto it = cache->find(key);
  if (it == cache->end()) {
    it = cache->emplace(key, std::make_unique<kg::Dataset>(kg::MakeFb15k237Like(
                                 {.scale = options.dataset_scale,
                                  .seed = options.seed})))
             .first;
  }
  return *it->second;
}

core::ChainsFormerConfig BenchConfig(const BenchOptions& options) {
  core::ChainsFormerConfig c;
  c.max_hops = 3;
  c.num_walks = 128;
  c.top_k = 16;
  c.hidden_dim = 32;
  c.filter_dim = 16;
  c.encoder_layers = 2;
  c.reasoner_layers = 2;
  c.num_heads = 4;
  c.epochs = options.epochs;
  c.patience = 5;
  c.max_train_queries = options.train_queries;
  c.max_eval_queries = options.eval_queries;
  c.filter_pretrain_queries = 150;
  c.filter_pretrain_epochs = 1;
  c.learning_rate = 3.5e-3f;
  c.kernel_threads = options.kernel_threads;
  c.seed = options.seed;
  return c;
}

void PrintBanner(const std::string& artifact, const std::string& description) {
  std::printf("==============================================================\n");
  std::printf("ChainsFormer reproduction — %s\n", artifact.c_str());
  std::printf("%s\n", description.c_str());
  std::printf("==============================================================\n");
}

eval::EvalResult RunChainsFormer(const kg::Dataset& dataset,
                                 const core::ChainsFormerConfig& config,
                                 const BenchOptions& options,
                                 core::ChainsFormerModel** model_out) {
  static std::vector<std::unique_ptr<core::ChainsFormerModel>>* keep_alive =
      new std::vector<std::unique_ptr<core::ChainsFormerModel>>();
  auto model = std::make_unique<core::ChainsFormerModel>(dataset, config);
  model->Train();
  const auto sample = TestSample(dataset, options.eval_queries);
  eval::EvalResult result = model->Evaluate(sample);
  if (model_out != nullptr) {
    *model_out = model.get();
    keep_alive->push_back(std::move(model));
  }
  return result;
}

std::vector<std::unique_ptr<baselines::NumericPredictor>> MakeBaselines(
    const kg::Dataset& dataset, const BenchOptions& options) {
  baselines::TransEConfig transe;
  transe.dim = 24;
  transe.epochs = 8;
  transe.max_triples_per_epoch = 12000;
  transe.seed = options.seed;

  std::vector<std::unique_ptr<baselines::NumericPredictor>> methods;
  methods.push_back(std::make_unique<baselines::NapPlusPlusBaseline>(dataset, 8, transe));
  methods.push_back(std::make_unique<baselines::MrapBaseline>(dataset));
  methods.push_back(std::make_unique<baselines::PlmRegBaseline>(dataset));
  methods.push_back(std::make_unique<baselines::KgaBaseline>(dataset, 24, transe));
  methods.push_back(std::make_unique<baselines::HyntBaseline>(dataset, 24, 10));
  methods.push_back(std::make_unique<baselines::TogSimBaseline>(dataset));
  return methods;
}

std::vector<kg::NumericalTriple> TestSample(const kg::Dataset& dataset,
                                            int max_queries, uint64_t seed) {
  std::vector<kg::NumericalTriple> sample = dataset.split.test;
  if (max_queries > 0 && static_cast<int>(sample.size()) > max_queries) {
    Rng rng(seed);
    rng.Shuffle(sample);
    sample.resize(static_cast<size_t>(max_queries));
  }
  return sample;
}

std::string Fmt(double v) { return FormatMetric(v, 3); }

}  // namespace bench
}  // namespace chainsformer
