// Reproduces Table V: the key RA-Chains the Numerical Reasoner weights most
// highly, per attribute. The synthetic worlds plant exactly the correlations
// the paper discovers (sibling->birth, capital->longitude, team->weight ...),
// so the extracted key chains should name those relations.

#include <cstdio>

#include "bench/bench_common.h"

using namespace chainsformer;

namespace {

void RunDataset(const kg::Dataset& ds, const bench::BenchOptions& options,
                const std::vector<std::string>& attributes) {
  std::printf("\n--- %s ---\n", ds.name.c_str());
  core::ChainsFormerModel* model = nullptr;
  bench::RunChainsFormer(ds, bench::BenchConfig(options), options, &model);

  eval::TextTable table({"attribute", "key RA-chains (by total omega)"});
  for (const auto& attr_name : attributes) {
    const auto a = ds.graph.FindAttribute(attr_name);
    if (a < 0) continue;
    const auto patterns = model->TopPatterns(a, 3, 25);
    std::string joined;
    for (const auto& [p, w] : patterns) {
      if (!joined.empty()) joined += ", ";
      joined += p;
    }
    table.AddRow({attr_name, joined});
  }
  std::printf("%s", table.ToString().c_str());
}

}  // namespace

int main() {
  bench::PrintBanner("Table V",
                     "Most important RA-Chains identified by the Numerical "
                     "Reasoner (reasoning-path transparency).");
  const auto options = bench::DefaultOptions();
  RunDataset(bench::YagoDataset(options), options,
             {"latitude", "happened", "created"});
  RunDataset(bench::FbDataset(options), options,
             {"birth", "longitude", "org_founded", "weight"});
  return 0;
}
