// Reproduces Table III: per-attribute RMSE/MAE of every baseline and
// ChainsFormer on both datasets, plus the normalized Average* aggregates.
//
// Expected shape (paper): ChainsFormer best Average*; MrAP/KGA the strongest
// baselines; NAP++ weak; ToG-R poor except spatial attributes.

#include <cstdio>
#include <vector>

#include "bench/bench_common.h"

using namespace chainsformer;

namespace {

struct MethodResult {
  std::string name;
  eval::EvalResult result;
};

void RunDataset(const kg::Dataset& ds, const bench::BenchOptions& options) {
  std::printf("\n################ %s ################\n", ds.name.c_str());
  const auto sample = bench::TestSample(ds, options.eval_queries);
  std::vector<MethodResult> results;

  auto methods = bench::MakeBaselines(ds, options);
  for (auto& m : methods) {
    std::printf("training %s...\n", m->name().c_str());
    m->Train();
    results.push_back({m->name(), m->Evaluate(sample)});
  }

  std::printf("training ChainsFormer...\n");
  const auto cf =
      bench::RunChainsFormer(ds, bench::BenchConfig(options), options);
  results.push_back({"ChainsFormer", cf});

  for (const char* metric : {"MAE", "RMSE"}) {
    std::vector<std::string> header = {std::string("attribute (") + metric + ")"};
    for (const auto& r : results) header.push_back(r.name);
    eval::TextTable table(header);
    for (kg::AttributeId a = 0; a < ds.graph.num_attributes(); ++a) {
      if (results.front().result.per_attribute[static_cast<size_t>(a)].count == 0) {
        continue;
      }
      std::vector<std::string> row = {ds.graph.AttributeName(a)};
      for (const auto& r : results) {
        const auto& m = r.result.per_attribute[static_cast<size_t>(a)];
        row.push_back(bench::Fmt(std::string(metric) == "MAE" ? m.mae : m.rmse));
      }
      table.AddRow(row);
    }
    std::vector<std::string> avg = {"Average*"};
    for (const auto& r : results) {
      avg.push_back(bench::Fmt(std::string(metric) == "MAE"
                                   ? r.result.normalized_mae
                                   : r.result.normalized_rmse));
    }
    table.AddRow(avg);
    std::printf("\n%s\n", table.ToString().c_str());
  }

  // Winner summary.
  double best = 1e300;
  std::string best_name;
  for (const auto& r : results) {
    if (r.result.normalized_mae < best) {
      best = r.result.normalized_mae;
      best_name = r.name;
    }
  }
  std::printf("best Average* MAE on %s: %s (%.4f)\n", ds.name.c_str(),
              best_name.c_str(), best);
}

}  // namespace

int main() {
  bench::PrintBanner("Table III",
                     "Main performance comparison across all methods.");
  const auto options = bench::DefaultOptions();
  RunDataset(bench::YagoDataset(options), options);
  RunDataset(bench::FbDataset(options), options);
  return 0;
}
