// Chain-encoder perf recorder. Times one Tree-of-Chains encode through the
// batched masked-Transformer path (ChainEncoder::EncodeBatch) against the
// per-chain reference path (k separate Encode calls) across ToC sizes and
// chain lengths, and writes the measurements to a JSON file.
//
// Usage:
//   bench_encoder [--out=BENCH_encoder.json] [--batch-sizes=4,16,64]
//                 [--min-seconds=0.1] [--hidden-dim=128]
//
// The model dimension defaults to 128 — the paper-scale d from config.h —
// rather than the scaled-down test default, because the batching win is a
// function of GEMM size: per-chain encoding streams whole B panels through
// the kernel for only seq≈4-8 rows of compute, and the waste grows with d.
//
// Honors the CF_* environment hooks of bench_common (CF_KERNEL_THREADS,
// CF_TRACE_JSON, CF_METRICS_JSON, CF_STATS).

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "core/chain_encoder.h"
#include "core/config.h"
#include "tensor/tensor.h"
#include "util/flags.h"
#include "util/rng.h"
#include "util/stopwatch.h"
#include "util/string_util.h"

namespace chainsformer {
namespace {

constexpr int64_t kNumRelIds = 32;
constexpr int64_t kNumAttrs = 8;

/// A ToC of k chains with hop lengths cycling 1..max_hops (the mixed-length
/// regime the padding/masking scheme has to handle).
core::TreeOfChains MakeChains(int64_t k, int max_hops, Rng& rng) {
  core::TreeOfChains toc;
  toc.reserve(static_cast<size_t>(k));
  for (int64_t i = 0; i < k; ++i) {
    core::RAChain c;
    c.source_attribute = static_cast<kg::AttributeId>(rng.UniformInt(kNumAttrs));
    c.query_attribute = static_cast<kg::AttributeId>(rng.UniformInt(kNumAttrs));
    const int hops = 1 + static_cast<int>(i % max_hops);
    for (int h = 0; h < hops; ++h) {
      c.relations.push_back(
          static_cast<kg::RelationId>(rng.UniformInt(kNumRelIds)));
    }
    c.source_value = rng.Uniform(-1e4, 1e4);
    c.source_entity = static_cast<kg::EntityId>(i);
    toc.push_back(std::move(c));
  }
  return toc;
}

// Best-case seconds per call for two alternating workloads. Samples are
// interleaved A,B,A,B,... so both paths see the same interference profile,
// and the minimum over samples is reported (the standard noise-robust
// estimator on a shared machine).
template <typename FnA, typename FnB>
std::pair<double, double> TimePairMin(double min_seconds, const FnA& fa,
                                      const FnB& fb) {
  fa();  // warmup
  fb();
  double best_a = 1e30, best_b = 1e30, total = 0.0;
  size_t samples = 0;
  while (total < min_seconds || samples < 8) {
    {
      Stopwatch sw;
      fa();
      const double s = static_cast<double>(sw.ElapsedMicros()) * 1e-6;
      best_a = std::min(best_a, s);
      total += s;
    }
    {
      Stopwatch sw;
      fb();
      const double s = static_cast<double>(sw.ElapsedMicros()) * 1e-6;
      best_b = std::min(best_b, s);
      total += s;
    }
    if (++samples > 500) break;
  }
  return {best_a, best_b};
}

struct Record {
  int64_t k = 0;
  int max_hops = 0;
  // Inference mode: forward only, autograd recording off (NoGradGuard).
  double per_chain_seconds = 0.0;
  double batched_seconds = 0.0;
  double speedup = 0.0;
  // Training mode: forward with autograd recording on, as executed for every
  // example inside ChainsFormerModel::Train. The per-chain path builds k
  // separate backward graphs; the batched path builds one.
  double per_chain_grad_seconds = 0.0;
  double batched_grad_seconds = 0.0;
  double speedup_grad = 0.0;
};

int Main(int argc, char** argv) {
  FlagParser flags(argc, argv);
  const bench::BenchOptions options = bench::DefaultOptions();
  const std::string out_path = flags.GetString("out", "BENCH_encoder.json");
  const double min_seconds = flags.GetDouble("min-seconds", 0.1);
  std::vector<int64_t> batch_sizes;
  for (const auto& tok : Split(flags.GetString("batch-sizes", "4,16,64"), ',')) {
    if (!tok.empty()) batch_sizes.push_back(std::strtoll(tok.c_str(), nullptr, 10));
  }

  bench::PrintBanner("encoder batching",
                     "per-ToC encode latency: batched masked pass vs per-chain");

  core::ChainsFormerConfig config = bench::BenchConfig(options);
  config.hidden_dim = static_cast<int>(flags.GetInt("hidden-dim", 128));
  Rng model_rng(options.seed);
  core::ChainEncoder encoder(kNumRelIds, kNumAttrs, config, model_rng);

  std::vector<Record> records;
  for (const int64_t k : batch_sizes) {
    for (const int max_hops : {1, config.max_hops}) {
      Rng chain_rng(options.seed ^ static_cast<uint64_t>(k * 131 + max_hops));
      const core::TreeOfChains toc = MakeChains(k, max_hops, chain_rng);
      Record r;
      r.k = k;
      r.max_hops = max_hops;
      {
        tensor::NoGradGuard no_grad;
        std::tie(r.per_chain_seconds, r.batched_seconds) = TimePairMin(
            min_seconds,
            [&] {
              for (const core::RAChain& c : toc) {
                tensor::Tensor rep = encoder.Encode(c);
                (void)rep;
              }
            },
            [&] { (void)encoder.EncodeBatch(toc); });
      }
      r.speedup = r.per_chain_seconds / r.batched_seconds;
      // Training mode: recording on, graph freed when outputs go out of scope.
      std::tie(r.per_chain_grad_seconds, r.batched_grad_seconds) = TimePairMin(
          min_seconds,
          [&] {
            std::vector<tensor::Tensor> reps;
            reps.reserve(toc.size());
            for (const core::RAChain& c : toc) {
              reps.push_back(encoder.Encode(c));
            }
          },
          [&] { (void)encoder.EncodeBatch(toc); });
      r.speedup_grad = r.per_chain_grad_seconds / r.batched_grad_seconds;
      records.push_back(r);
      std::printf(
          "k=%-3lld max_hops=%d  infer: %8.3f ms vs %8.3f ms (%5.2fx)   "
          "train: %8.3f ms vs %8.3f ms (%5.2fx)\n",
          static_cast<long long>(k), max_hops, r.per_chain_seconds * 1e3,
          r.batched_seconds * 1e3, r.speedup, r.per_chain_grad_seconds * 1e3,
          r.batched_grad_seconds * 1e3, r.speedup_grad);
    }
  }

  FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n  \"bench\": \"encoder\",\n  \"hidden_dim\": %d,\n",
               config.hidden_dim);
  std::fprintf(f, "  \"kernel_threads\": %d,\n  \"results\": [\n",
               options.kernel_threads);
  for (size_t i = 0; i < records.size(); ++i) {
    const Record& r = records[i];
    std::fprintf(f,
                 "    {\"k\": %lld, \"max_hops\": %d, "
                 "\"per_chain_seconds\": %.6e, \"batched_seconds\": %.6e, "
                 "\"speedup\": %.3f, "
                 "\"per_chain_grad_seconds\": %.6e, "
                 "\"batched_grad_seconds\": %.6e, \"speedup_grad\": %.3f}%s\n",
                 static_cast<long long>(r.k), r.max_hops, r.per_chain_seconds,
                 r.batched_seconds, r.speedup, r.per_chain_grad_seconds,
                 r.batched_grad_seconds, r.speedup_grad,
                 i + 1 < records.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %zu records to %s\n", records.size(), out_path.c_str());
  return 0;
}

}  // namespace
}  // namespace chainsformer

int main(int argc, char** argv) { return chainsformer::Main(argc, argv); }
