// Extension experiment: the λ balance of the hyperbolic affinity score
// (Eq. 9) weighs the intra-score (attribute-pair similarity) against the
// inter-score (relation-path vs query-attribute proximity). The paper
// introduces λ but reports no sweep; this bench fills that gap.

#include <cstdio>

#include "bench/bench_common.h"

using namespace chainsformer;

int main() {
  bench::PrintBanner("Extension (Eq. 9)",
                     "Sweep of the affinity-score balance λ between intra- "
                     "and inter-scores (YAGO15K-like).");
  auto options = bench::DefaultOptions();
  options.epochs = std::max(4, options.epochs - 4);
  const auto& ds = bench::YagoDataset(options);

  eval::TextTable table({"lambda", "Average* MAE", "Average* RMSE"});
  for (float lambda : {0.0f, 0.25f, 0.5f, 0.75f, 1.0f}) {
    auto config = bench::BenchConfig(options);
    config.lambda = lambda;
    config.epochs = options.epochs;
    const auto r = bench::RunChainsFormer(ds, config, options);
    char buf[16];
    std::snprintf(buf, sizeof(buf), "%.2f", lambda);
    table.AddRow({buf, bench::Fmt(r.normalized_mae), bench::Fmt(r.normalized_rmse)});
    std::printf("  lambda=%.2f nmae=%.4f\n", lambda, r.normalized_mae);
  }
  std::printf("\n%s", table.ToString().c_str());
  return 0;
}
