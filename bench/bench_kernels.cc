// Kernel-layer perf recorder. Times the blocked GEMM forward/backward
// kernels against a replica of the seed's naive single-threaded MatMul loop
// and writes the measurements to a JSON file so the perf trajectory of the
// tensor engine is tracked across PRs.
//
// Usage:
//   bench_kernels [--out=BENCH_kernels.json] [--sizes=64,128,256,512]
//                 [--threads=1,2,4] [--min-seconds=0.15]

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "tensor/kernels.h"
#include "util/flags.h"
#include "util/logging.h"
#include "util/rng.h"
#include "util/stopwatch.h"
#include "util/string_util.h"

namespace chainsformer {
namespace {

// The seed implementation of tensor::MatMul, kept verbatim as the speedup
// baseline: single-threaded i-k-j with a zero-skip branch.
void SeedMatMul(int64_t m, int64_t k, int64_t n, const float* ad,
                const float* bd, float* od) {
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t kk = 0; kk < k; ++kk) {
      const float av = ad[i * k + kk];
      if (av == 0.0f) continue;
      const float* brow = bd + kk * n;
      float* orow = od + i * n;
      for (int64_t j = 0; j < n; ++j) orow[j] += av * brow[j];
    }
  }
}

std::vector<float> RandomVec(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<float> v(n);
  for (auto& x : v) x = static_cast<float>(rng.Uniform(-1.0, 1.0));
  return v;
}

// Median seconds per call, timed in batches until `min_seconds` total.
template <typename Fn>
double TimePerCall(double min_seconds, const Fn& fn) {
  fn();  // warmup
  std::vector<double> samples;
  double total = 0.0;
  while (total < min_seconds || samples.size() < 3) {
    Stopwatch sw;
    fn();
    // Integer microseconds from the monotonic clock; per-call times here are
    // well above 1 us, so this loses no precision and avoids hand-converting
    // fractional seconds.
    const double s = static_cast<double>(sw.ElapsedMicros()) * 1e-6;
    samples.push_back(s);
    total += s;
    if (samples.size() > 200) break;
  }
  std::sort(samples.begin(), samples.end());
  return samples[samples.size() / 2];
}

struct Record {
  std::string op;
  int64_t size = 0;
  int threads = 0;
  double seconds = 0.0;
  double gflops = 0.0;
  double speedup_vs_seed = 0.0;
};

std::vector<int64_t> ParseIntList(const std::string& csv, const char* flag) {
  std::vector<int64_t> out;
  for (const auto& tok : Split(csv, ',')) {
    if (tok.empty()) continue;
    char* end = nullptr;
    const long long v = std::strtoll(tok.c_str(), &end, 10);
    if (end == tok.c_str() || *end != '\0' || v <= 0) {
      std::fprintf(stderr, "bench_kernels: invalid value '%s' in --%s\n",
                   tok.c_str(), flag);
      std::exit(1);
    }
    out.push_back(v);
  }
  return out;
}

int Main(int argc, char** argv) {
  FlagParser flags(argc, argv);
  const std::string out_path = flags.GetString("out", "BENCH_kernels.json");
  const std::vector<int64_t> sizes =
      ParseIntList(flags.GetString("sizes", "64,128,256,512"), "sizes");
  const std::vector<int64_t> threads_list =
      ParseIntList(flags.GetString("threads", "1,2,4"), "threads");
  const double min_seconds = flags.GetDouble("min-seconds", 0.15);

  std::vector<Record> records;
  for (const int64_t d : sizes) {
    const auto a = RandomVec(static_cast<size_t>(d * d), 1);
    const auto b = RandomVec(static_cast<size_t>(d * d), 2);
    std::vector<float> c(static_cast<size_t>(d * d), 0.0f);
    const double flops = 2.0 * static_cast<double>(d) * d * d;

    tensor::kernels::SetKernelThreads(1);
    const double seed_s = TimePerCall(min_seconds, [&] {
      std::fill(c.begin(), c.end(), 0.0f);
      SeedMatMul(d, d, d, a.data(), b.data(), c.data());
    });
    records.push_back({"seed_matmul", d, 1, seed_s, flops / seed_s * 1e-9, 1.0});
    std::printf("seed_matmul      d=%-4lld threads=1  %8.3f ms  %6.2f GFLOP/s\n",
                static_cast<long long>(d), seed_s * 1e3,
                flops / seed_s * 1e-9);

    for (const int64_t t : threads_list) {
      tensor::kernels::SetKernelThreads(static_cast<int>(t));
      const double fwd_s = TimePerCall(min_seconds, [&] {
        std::fill(c.begin(), c.end(), 0.0f);
        tensor::kernels::GemmAcc(d, d, d, a.data(), b.data(), c.data());
      });
      records.push_back({"gemm_forward", d, static_cast<int>(t), fwd_s,
                         flops / fwd_s * 1e-9, seed_s / fwd_s});
      std::printf(
          "gemm_forward     d=%-4lld threads=%-2lld %7.3f ms  %6.2f GFLOP/s  "
          "%5.2fx vs seed\n",
          static_cast<long long>(d), static_cast<long long>(t), fwd_s * 1e3,
          flops / fwd_s * 1e-9, seed_s / fwd_s);

      std::vector<float> da(static_cast<size_t>(d * d), 0.0f);
      std::vector<float> db(static_cast<size_t>(d * d), 0.0f);
      const double bwd_s = TimePerCall(min_seconds, [&] {
        tensor::kernels::GemmBtAcc(d, d, d, c.data(), b.data(), da.data());
        tensor::kernels::GemmAtAcc(d, d, d, a.data(), c.data(), db.data());
      });
      records.push_back({"gemm_backward", d, static_cast<int>(t), bwd_s,
                         2.0 * flops / bwd_s * 1e-9, 0.0});
      std::printf(
          "gemm_backward    d=%-4lld threads=%-2lld %7.3f ms  %6.2f GFLOP/s\n",
          static_cast<long long>(d), static_cast<long long>(t), bwd_s * 1e3,
          2.0 * flops / bwd_s * 1e-9);
    }
  }
  tensor::kernels::SetKernelThreads(1);

  FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n  \"bench\": \"kernels\",\n  \"results\": [\n");
  for (size_t i = 0; i < records.size(); ++i) {
    const Record& r = records[i];
    std::fprintf(f,
                 "    {\"op\": \"%s\", \"size\": %lld, \"threads\": %d, "
                 "\"seconds_per_call\": %.6e, \"gflops\": %.3f, "
                 "\"speedup_vs_seed\": %.3f}%s\n",
                 r.op.c_str(), static_cast<long long>(r.size), r.threads,
                 r.seconds, r.gflops, r.speedup_vs_seed,
                 i + 1 < records.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %zu records to %s\n", records.size(), out_path.c_str());
  return 0;
}

}  // namespace
}  // namespace chainsformer

int main(int argc, char** argv) { return chainsformer::Main(argc, argv); }
