// Reproduces Fig. 2: the average number of logic chains connected to a query
// grows explosively with hop count, motivating retrieval + filtering.

#include <cstdio>

#include "bench/bench_common.h"
#include "core/query_retrieval.h"

using namespace chainsformer;

namespace {

void CountForDataset(const kg::Dataset& ds, int num_queries) {
  kg::NumericIndex train_index(ds.split.train, ds.graph.num_entities());
  const auto sample = bench::TestSample(ds, num_queries, 3);
  eval::TextTable table({"hops", "avg #chains", "max #chains"});
  for (int hops = 1; hops <= 3; ++hops) {
    double total = 0.0;
    int64_t max_count = 0;
    for (const auto& q : sample) {
      const int64_t c = core::QueryRetrieval::CountChains(ds.graph, train_index,
                                                          q.entity, hops);
      total += static_cast<double>(c);
      max_count = std::max(max_count, c);
    }
    table.AddRow({std::to_string(hops),
                  bench::Fmt(total / static_cast<double>(sample.size())),
                  std::to_string(max_count)});
  }
  std::printf("\n--- %s (%zu queries) ---\n%s", ds.name.c_str(), sample.size(),
              table.ToString().c_str());
}

}  // namespace

int main() {
  bench::PrintBanner(
      "Figure 2",
      "Average number of logic chains per query vs reasoning hops. The paper "
      "reports 3.2e5 (YAGO15K) / 3.1e6 (FB15K) at 3 hops on the full graphs; "
      "the synthetic graphs are smaller, but the explosive growth (orders of "
      "magnitude per hop) is the reproduced shape.");
  const auto options = bench::DefaultOptions();
  CountForDataset(bench::YagoDataset(options), 120);
  CountForDataset(bench::FbDataset(options), 120);
  return 0;
}
