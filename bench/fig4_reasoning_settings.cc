// Reproduces Fig. 4: MAE/RMSE across reasoning settings — single-hop vs
// multi-hop retrieval, and single-attribute vs multi-attribute chains.
// Expected shape: multi-hop < single-hop error; multi-attribute < single-
// attribute error.

#include <cstdio>

#include "bench/bench_common.h"

using namespace chainsformer;

namespace {

void RunDataset(const kg::Dataset& ds, const bench::BenchOptions& options) {
  std::printf("\n--- %s ---\n", ds.name.c_str());
  eval::TextTable table({"setting", "Average* MAE", "Average* RMSE"});
  struct Setting {
    const char* name;
    int hops;
    bool same_attr_only;
  };
  const Setting settings[] = {
      {"1-hop, single-attr", 1, true},
      {"1-hop, multi-attr", 1, false},
      {"multi-hop, single-attr", 3, true},
      {"multi-hop, multi-attr", 3, false},
  };
  for (const auto& s : settings) {
    auto config = bench::BenchConfig(options);
    config.max_hops = s.hops;
    config.same_attribute_only = s.same_attr_only;
    const auto r = bench::RunChainsFormer(ds, config, options);
    table.AddRow({s.name, bench::Fmt(r.normalized_mae), bench::Fmt(r.normalized_rmse)});
    std::printf("  finished %-24s nmae=%.4f\n", s.name, r.normalized_mae);
  }
  std::printf("%s", table.ToString().c_str());
}

}  // namespace

int main() {
  bench::PrintBanner("Figure 4",
                     "Performance across reasoning settings (hops x attribute "
                     "diversity).");
  const auto options = bench::DefaultOptions();
  RunDataset(bench::YagoDataset(options), options);
  RunDataset(bench::FbDataset(options), options);
  return 0;
}
