// Extension experiment (paper §VI future work): chain quality evaluation.
// Compares the full model against the same model with per-pattern quality
// pruning enabled, and reports the number of patterns the evaluator learned
// to distrust.

#include <cstdio>

#include "bench/bench_common.h"

using namespace chainsformer;

int main() {
  bench::PrintBanner("Extension (paper §VI)",
                     "Chain quality evaluation: prune RA-Chain patterns whose "
                     "standalone prediction error stays high during training.");
  const auto options = bench::DefaultOptions();

  eval::TextTable table({"model", "YAGO nMAE", "FB nMAE"});
  std::vector<std::string> base_row = {"ChainsFormer"};
  std::vector<std::string> quality_row = {"+ chain quality pruning"};
  for (const kg::Dataset* ds :
       {&bench::YagoDataset(options), &bench::FbDataset(options)}) {
    auto config = bench::BenchConfig(options);
    const auto base = bench::RunChainsFormer(*ds, config, options);
    base_row.push_back(bench::Fmt(base.normalized_mae));

    config.use_chain_quality = true;
    core::ChainsFormerModel* model = nullptr;
    const auto quality = bench::RunChainsFormer(*ds, config, options, &model);
    quality_row.push_back(bench::Fmt(quality.normalized_mae));
    std::printf("  %s: base=%.4f quality=%.4f (%lld patterns tracked)\n",
                ds->name.c_str(), base.normalized_mae, quality.normalized_mae,
                static_cast<long long>(model->chain_quality().num_patterns()));
  }
  table.AddRow(base_row);
  table.AddRow(quality_row);
  std::printf("\n%s", table.ToString().c_str());
  return 0;
}
