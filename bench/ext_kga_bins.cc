// Extension experiment: KGA's binning trade-off. The paper (§II-B) notes
// that KGA's "inherent quantization error ... necessitates a trade-off
// between classification difficulty and quantization precision": few bins
// mean coarse values, many bins mean a harder link-prediction problem. This
// bench sweeps the bin count and exposes the U-shape.

#include <cstdio>

#include "baselines/kga.h"
#include "bench/bench_common.h"

using namespace chainsformer;

int main() {
  bench::PrintBanner("Extension (KGA §II-B)",
                     "Quantization/classification trade-off of the KGA "
                     "baseline across bin counts (FB15K-237-like).");
  const auto options = bench::DefaultOptions();
  const auto& ds = bench::FbDataset(options);
  const auto sample = bench::TestSample(ds, options.eval_queries);

  baselines::TransEConfig transe;
  transe.dim = 24;
  transe.epochs = 8;
  transe.max_triples_per_epoch = 12000;
  transe.seed = options.seed;

  eval::TextTable table({"bins", "Average* MAE", "Average* RMSE"});
  for (int bins : {4, 8, 16, 32, 64, 128}) {
    baselines::KgaBaseline kga(ds, bins, transe);
    kga.Train();
    const auto r = kga.Evaluate(sample);
    table.AddRow({std::to_string(bins), bench::Fmt(r.normalized_mae),
                  bench::Fmt(r.normalized_rmse)});
    std::printf("  bins=%-4d nmae=%.4f\n", bins, r.normalized_mae);
  }
  std::printf("\n%s", table.ToString().c_str());
  return 0;
}
