// Reproduces Fig. 6: the attribute composition of the Tree of Chains before
// vs after the Hyperbolic Filter. Expected shape: after filtering, the share
// of the query's own attribute (and semantically adjacent ones such as
// latitude<->longitude) rises sharply.

#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "core/hyperbolic_filter.h"
#include "core/query_retrieval.h"

using namespace chainsformer;

int main() {
  bench::PrintBanner("Figure 6",
                     "Attribute mix in the ToC before/after the Hyperbolic "
                     "Filter (YAGO15K-like).");
  const auto options = bench::DefaultOptions();
  const auto& ds = bench::YagoDataset(options);
  auto config = bench::BenchConfig(options);

  kg::NumericIndex train_index(ds.split.train, ds.graph.num_entities());
  core::QueryRetrieval retrieval(ds.graph, train_index, config.max_hops,
                                 config.num_walks);
  core::HyperbolicFilter filter(ds.graph.num_relation_ids(),
                                ds.graph.num_attributes(), config);
  Rng prng(options.seed);
  filter.Pretrain(retrieval, ds.split.train,
                  kg::ComputeAttributeStats(ds.split.train,
                                            ds.graph.num_attributes()),
                  prng);

  const int64_t na = ds.graph.num_attributes();
  for (const char* query_attr : {"latitude", "birth", "created"}) {
    const auto qa = ds.graph.FindAttribute(query_attr);
    if (qa < 0) continue;
    std::vector<double> before(static_cast<size_t>(na), 0.0);
    std::vector<double> after(static_cast<size_t>(na), 0.0);
    double before_total = 0.0, after_total = 0.0;
    Rng rng(11);
    int queries = 0;
    for (const auto& t : bench::TestSample(ds, 400, 3)) {
      if (t.attribute != qa) continue;
      const auto toc = retrieval.Retrieve({t.entity, t.attribute}, rng);
      if (toc.size() < 8) continue;
      const auto kept = filter.FilterTopK(toc, config.top_k, rng);
      for (const auto& c : toc) {
        before[static_cast<size_t>(c.source_attribute)] += 1.0;
        before_total += 1.0;
      }
      for (const auto& c : kept) {
        after[static_cast<size_t>(c.source_attribute)] += 1.0;
        after_total += 1.0;
      }
      if (++queries >= 40) break;
    }
    if (before_total == 0.0) continue;
    eval::TextTable table({"source attribute", "before filter %", "after filter %"});
    for (kg::AttributeId a = 0; a < na; ++a) {
      table.AddRow({ds.graph.AttributeName(a),
                    bench::Fmt(100.0 * before[static_cast<size_t>(a)] / before_total),
                    bench::Fmt(100.0 * after[static_cast<size_t>(a)] / after_total)});
    }
    std::printf("\nquery attribute: %s (%d queries)\n%s", query_attr, queries,
                table.ToString().c_str());
  }
  return 0;
}
