#ifndef CHAINSFORMER_BENCH_BENCH_COMMON_H_
#define CHAINSFORMER_BENCH_BENCH_COMMON_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "baselines/baseline.h"
#include "core/chainsformer.h"
#include "eval/metrics.h"
#include "eval/table.h"
#include "kg/synthetic.h"

namespace chainsformer {
namespace bench {

/// Bench-wide knobs. CF_BENCH_SCALE (float, default 1.0) multiplies the
/// dataset scale and training budgets so the suite can be dialed up toward
/// paper scale on bigger machines.
struct BenchOptions {
  double dataset_scale = 0.15;
  uint64_t seed = 42;
  int train_queries = 320;
  int eval_queries = 400;
  int epochs = 10;
  /// Dense-kernel worker threads (CF_KERNEL_THREADS; 0 = all cores).
  int kernel_threads = 1;
};

/// Reads CF_BENCH_SCALE / CF_KERNEL_THREADS and returns calibrated options.
/// Also applies kernel_threads process-wide so every bench target (including
/// baselines that bypass ChainsFormerConfig) runs on the same kernel setup.
///
/// Observability hooks (applied once per process, on first call):
///   CF_TRACE_JSON=PATH    enable span tracing; write a Chrome trace at exit
///   CF_METRICS_JSON=PATH  write the metrics registry as JSON at exit
///   CF_STATS=1            print the metrics summary table at exit
BenchOptions DefaultOptions();

/// The two synthetic benchmark datasets (cached per process).
const kg::Dataset& YagoDataset(const BenchOptions& options);
const kg::Dataset& FbDataset(const BenchOptions& options);

/// Bench-scale ChainsFormer configuration (paper defaults scaled down).
core::ChainsFormerConfig BenchConfig(const BenchOptions& options);

/// Prints a standard experiment banner referencing the paper artifact.
void PrintBanner(const std::string& artifact, const std::string& description);

/// Trains a fresh ChainsFormer with `config` and evaluates on the test split
/// (subsampled to options.eval_queries). Returns the eval result.
eval::EvalResult RunChainsFormer(const kg::Dataset& dataset,
                                 const core::ChainsFormerConfig& config,
                                 const BenchOptions& options,
                                 core::ChainsFormerModel** model_out = nullptr);

/// Builds the full baseline roster of Table III (excluding ChainsFormer).
std::vector<std::unique_ptr<baselines::NumericPredictor>> MakeBaselines(
    const kg::Dataset& dataset, const BenchOptions& options);

/// Deterministic test-split subsample.
std::vector<kg::NumericalTriple> TestSample(const kg::Dataset& dataset,
                                            int max_queries, uint64_t seed = 7);

/// Formats a metric like the paper's tables (native units / normalized).
std::string Fmt(double v);

}  // namespace bench
}  // namespace chainsformer

#endif  // CHAINSFORMER_BENCH_BENCH_COMMON_H_
