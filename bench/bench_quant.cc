// Reduced-precision recorder (DESIGN §6g): measures what quantization buys
// and what it costs, and writes both to a JSON file the acceptance gate can
// read.
//
//   speed    — the Linear-step kernels head to head at encoder shapes:
//              fp32 GemmAccSerial vs the full int8 pipeline (dynamic row
//              quantization + int32 GEMM + dequant/bias epilogue — the whole
//              bill, not just the GEMM) vs the bf16 storage GEMM.
//              perf_microbench enforces the >= 2x floor on every run; this
//              binary records the measured ratios alongside the accuracy
//              numbers so one artifact holds the whole trade.
//   accuracy — mean |normalized quantized - normalized fp64| over held-out
//              queries, per precision. int8 runs through CalibrateQuantStore
//              (the same measurement the training tool persists into the
//              checkpoint and the serve-time budget gate checks); bf16 runs
//              the same loop over kBf16 plans. Both must land inside their
//              documented budgets: int8 within ServeOptions.quant_error_budget
//              (0.05 normalized), bf16 within the tighter 0.01 the runtime
//              uses as its default bf16 verify tolerance.
//
// Usage:
//   bench_quant [--out=BENCH_quant.json] [--hidden-dim=64] [--epochs=1]
//               [--calibration-queries=160] [--trials=9] [--iters=200]
//
// Honors the CF_* environment hooks of bench_common (CF_KERNEL_THREADS,
// CF_TRACE_JSON, CF_METRICS_JSON, CF_STATS).

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "bench/bench_common.h"
#include "graph/executor.h"
#include "graph/plan.h"
#include "graph/quant.h"
#include "serve/service.h"
#include "tensor/kernels.h"
#include "util/flags.h"
#include "util/logging.h"
#include "util/rng.h"
#include "util/stopwatch.h"

namespace chainsformer {
namespace {

namespace k = tensor::kernels;

int64_t MaxTokens(const core::TreeOfChains& chains) {
  int64_t mx = 0;
  for (const core::RAChain& c : chains) mx = std::max(mx, c.length() + 3);
  return mx;
}

struct ShapeTiming {
  int64_t m = 0, d = 0, n = 0;
  double fp32_us = 0.0;
  double int8_us = 0.0;  // quantize + int32 GEMM + dequant/bias
  double bf16_us = 0.0;
};

double MedianOfTrials(int trials, int iters,
                      const std::function<void()>& body) {
  std::vector<double> samples;
  samples.reserve(static_cast<size_t>(trials));
  for (int t = 0; t < trials; ++t) {
    Stopwatch sw;
    for (int i = 0; i < iters; ++i) body();
    samples.push_back(static_cast<double>(sw.ElapsedMicros()) /
                      static_cast<double>(iters));
  }
  std::sort(samples.begin(), samples.end());
  return samples[samples.size() / 2];
}

/// One Linear step (activations [m, d] x weights [d, n] + bias) timed in all
/// three numeric modes. The int8 time includes the per-call activation
/// quantization and the dequant epilogue — the serving executor pays both on
/// every step, so a GEMM-only number would overstate the win.
ShapeTiming TimeShape(int64_t m, int64_t d, int64_t n, int trials, int iters) {
  Rng rng(static_cast<uint64_t>(m * 1000 + n));
  std::vector<float> a(static_cast<size_t>(m * d));
  std::vector<float> b(static_cast<size_t>(d * n));
  std::vector<float> bias(static_cast<size_t>(n));
  for (float& x : a) x = static_cast<float>(rng.Uniform(-1.0, 1.0));
  for (float& x : b) x = static_cast<float>(rng.Uniform(-1.0, 1.0));
  for (float& x : bias) x = static_cast<float>(rng.Uniform(-0.5, 0.5));
  std::vector<float> c(static_cast<size_t>(m * n));

  ShapeTiming timing;
  timing.m = m;
  timing.d = d;
  timing.n = n;

  timing.fp32_us = MedianOfTrials(trials, iters, [&] {
    std::fill(c.begin(), c.end(), 0.0f);
    k::GemmAccSerial(m, d, n, a.data(), b.data(), c.data());
    k::BiasAddRows(c.data(), bias.data(), m, n, c.data());
  });

  std::vector<int8_t> codes(static_cast<size_t>(d * n));
  std::vector<float> scale(static_cast<size_t>(n));
  k::QuantizeWeightsInt8(d, n, b.data(), codes.data(), scale.data());
  const k::Int8Pack pack = k::PackInt8Weights(d, n, codes.data(), scale.data());
  std::vector<uint8_t> qa(static_cast<size_t>(m * pack.k_padded));
  std::vector<float> row_scale(static_cast<size_t>(m));
  std::vector<float> row_min(static_cast<size_t>(m));
  std::vector<int32_t> acc(static_cast<size_t>(m * pack.n_padded));
  timing.int8_us = MedianOfTrials(trials, iters, [&] {
    k::QuantizeActivationRows(m, d, pack.k_padded, a.data(), qa.data(),
                              row_scale.data(), row_min.data());
    k::Int8GemmI32Serial(m, pack, qa.data(), acc.data());
    k::DequantBiasRows(m, pack, acc.data(), row_scale.data(), row_min.data(),
                       bias.data(), /*gelu=*/false, c.data());
  });

  const k::Bf16Pack bpack = k::PackBf16Weights(d, n, b.data());
  timing.bf16_us = MedianOfTrials(trials, iters, [&] {
    std::fill(c.begin(), c.end(), 0.0f);
    k::Bf16GemmAccSerial(m, bpack, a.data(), c.data());
    k::BiasAddRows(c.data(), bias.data(), m, n, c.data());
  });
  return timing;
}

/// bf16 twin of CalibrateQuantStore: compiles kBf16 plans per exact
/// (k, max_tokens) geometry and measures the normalized drift against the
/// eager fp64 path on the same held-out queries.
double Bf16MaeDelta(const core::ChainsFormerModel& model,
                    const std::vector<core::Query>& queries, int64_t* n_out) {
  std::map<std::pair<int64_t, int64_t>,
           std::pair<std::shared_ptr<const graph::Plan>,
                     std::unique_ptr<graph::PlanExecutor>>>
      plans;
  double sum_abs = 0.0;
  int64_t n = 0;
  for (const core::Query& query : queries) {
    const core::TreeOfChains chains = model.RetrieveChains(query);
    if (chains.empty()) continue;
    const std::vector<core::BatchPrediction> eager =
        model.PredictOnChainSets({query}, {&chains});
    const int64_t kk = static_cast<int64_t>(chains.size());
    const int64_t len = MaxTokens(chains);
    auto& slot = plans[{kk, len}];
    if (slot.first == nullptr) {
      slot.first = std::make_shared<const graph::Plan>(graph::CompilePlan(
          model, kk, len, graph::Precision::kBf16, nullptr));
      slot.second = std::make_unique<graph::PlanExecutor>(slot.first);
    }
    const double compiled_norm = std::clamp(
        static_cast<double>(slot.second->RunNormalized(chains)), -0.1, 1.1);
    const double eager_norm =
        model.train_stats()[static_cast<size_t>(query.attribute)].Normalize(
            eager[0].value);
    sum_abs += std::abs(compiled_norm - eager_norm);
    ++n;
  }
  *n_out = n;
  return n > 0 ? sum_abs / static_cast<double>(n) : 0.0;
}

int Main(int argc, char** argv) {
  FlagParser flags(argc, argv);
  const bench::BenchOptions options = bench::DefaultOptions();
  const std::string out_path = flags.GetString("out", "BENCH_quant.json");
  const int trials = static_cast<int>(flags.GetInt("trials", 9));
  const int iters = static_cast<int>(flags.GetInt("iters", 200));
  const int want_queries =
      static_cast<int>(flags.GetInt("calibration-queries", 160));

  bench::PrintBanner(
      "quant", "reduced-precision GEMM speed + accuracy drift (DESIGN 6g)");

  // ---- Speed: the Linear step at encoder shapes --------------------------
  // m is the token-row count of a batched encoder pass (k chains x padded
  // length), d/n the Linear geometry. d = n = hidden_dim covers the
  // attention projections; the 4x column count covers ff1.
  std::vector<ShapeTiming> timings;
  for (const auto& [m, d, n] : std::vector<std::tuple<int64_t, int64_t, int64_t>>{
           {16, 64, 64}, {48, 128, 128}, {48, 128, 512}}) {
    timings.push_back(TimeShape(m, d, n, trials, iters));
    const ShapeTiming& t = timings.back();
    std::printf(
        "linear m=%-3lld d=%-4lld n=%-4lld  fp32 %7.2fus  int8 %7.2fus "
        "(%.2fx)  bf16 %7.2fus (%.2fx)\n",
        static_cast<long long>(t.m), static_cast<long long>(t.d),
        static_cast<long long>(t.n), t.fp32_us, t.int8_us,
        t.fp32_us / t.int8_us, t.bf16_us, t.fp32_us / t.bf16_us);
  }

  // ---- Accuracy: normalized drift vs fp64 on held-out queries ------------
  core::ChainsFormerConfig config = bench::BenchConfig(options);
  config.hidden_dim = static_cast<int>(flags.GetInt("hidden-dim", 64));
  config.epochs = static_cast<int>(flags.GetInt("epochs", 1));
  config.verbose = false;
  const kg::Dataset& dataset = bench::YagoDataset(options);
  core::ChainsFormerModel model(dataset, config);
  model.Train();

  std::vector<core::Query> held_out;
  for (const auto& t : bench::TestSample(dataset, want_queries)) {
    held_out.push_back({t.entity, t.attribute});
  }

  graph::QuantStore store = graph::BuildQuantStore(model);
  graph::CalibrateQuantStore(model, held_out, &store);
  int64_t bf16_queries = 0;
  const double bf16_mae = Bf16MaeDelta(model, held_out, &bf16_queries);

  // The budgets the serving stack enforces: the service's checkpoint gate
  // for int8 and the runtime's default bf16 parity tolerance.
  const double int8_budget = serve::ServeOptions().quant_error_budget;
  const double bf16_budget = 0.01;
  std::printf("int8 MAE delta %.6f over %lld held-out queries (budget %.3f)\n",
              store.mae_delta,
              static_cast<long long>(store.calibration_queries), int8_budget);
  std::printf("bf16 MAE delta %.6f over %lld held-out queries (budget %.3f)\n",
              bf16_mae, static_cast<long long>(bf16_queries), bf16_budget);

  // The acceptance gate: both precisions inside their documented budgets,
  // bf16 under the tighter one, measured on >= 100 held-out queries.
  CF_CHECK_LE(std::min<int64_t>(100, want_queries), store.calibration_queries)
      << "too few held-out queries had retrievable chains";
  CF_CHECK_LE(store.mae_delta, int8_budget);
  CF_CHECK_LE(bf16_mae, bf16_budget);

  FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n  \"bench\": \"quant\",\n");
  std::fprintf(f, "  \"hidden_dim\": %d,\n", config.hidden_dim);
  std::fprintf(f, "  \"int8_gemm_accelerated\": %s,\n",
               k::Int8GemmAccelerated() ? "true" : "false");
  std::fprintf(f, "  \"kernels\": [\n");
  for (size_t i = 0; i < timings.size(); ++i) {
    const ShapeTiming& t = timings[i];
    std::fprintf(f,
                 "    {\"m\": %lld, \"d\": %lld, \"n\": %lld, "
                 "\"fp32_us\": %.3f, \"int8_us\": %.3f, \"bf16_us\": %.3f, "
                 "\"int8_speedup\": %.3f, \"bf16_speedup\": %.3f}%s\n",
                 static_cast<long long>(t.m), static_cast<long long>(t.d),
                 static_cast<long long>(t.n), t.fp32_us, t.int8_us, t.bf16_us,
                 t.fp32_us / t.int8_us, t.fp32_us / t.bf16_us,
                 i + 1 < timings.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f, "  \"calibration_queries\": %lld,\n",
               static_cast<long long>(store.calibration_queries));
  std::fprintf(f, "  \"int8_mae_delta\": %.6f,\n", store.mae_delta);
  std::fprintf(f, "  \"int8_error_budget\": %.3f,\n", int8_budget);
  std::fprintf(f, "  \"bf16_mae_delta\": %.6f,\n", bf16_mae);
  std::fprintf(f, "  \"bf16_error_budget\": %.3f\n", bf16_budget);
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}

}  // namespace
}  // namespace chainsformer

int main(int argc, char** argv) { return chainsformer::Main(argc, argv); }
