// Complexity microbenchmarks (§IV-G): the paper analyzes per-query cost
// O(N_s d + k d^2). These google-benchmark timings expose the scaling of
// each pipeline stage: retrieval vs N_s, filter scoring vs d, chain encoding
// vs d, and reasoner weighting vs k.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <mutex>  // cf-lint: allow(naked-mutex-outside-sync) raw baseline
#include <unordered_set>
#include <vector>

#include "core/chain_encoder.h"
#include "core/chainsformer.h"
#include "core/hyperbolic_filter.h"
#include "core/numerical_reasoner.h"
#include "core/query_retrieval.h"
#include "graph/runtime.h"
#include "kg/synthetic.h"
#include "tensor/checks.h"
#include "tensor/kernels.h"
#include "tensor/ops.h"
#include "tensor/tensor.h"
#include "util/logging.h"
#include "util/metrics.h"
#include "util/stopwatch.h"
#include "util/sync.h"
#include "util/telemetry.h"
#include "util/trace.h"

using namespace chainsformer;

namespace {

const kg::Dataset& Data() {
  static const kg::Dataset* ds =
      new kg::Dataset(kg::MakeYago15kLike({.scale = 0.06}));
  return *ds;
}

const kg::NumericIndex& TrainIndex() {
  static const kg::NumericIndex* idx =
      new kg::NumericIndex(Data().split.train, Data().graph.num_entities());
  return *idx;
}

core::Query SomeQuery() {
  const auto& t = Data().split.test.front();
  return {t.entity, t.attribute};
}

void BM_QueryRetrieval(benchmark::State& state) {
  const int num_walks = static_cast<int>(state.range(0));
  core::QueryRetrieval retrieval(Data().graph, TrainIndex(), 3, num_walks);
  Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(retrieval.Retrieve(SomeQuery(), rng));
  }
  state.SetItemsProcessed(state.iterations() * num_walks);
}
BENCHMARK(BM_QueryRetrieval)->Arg(32)->Arg(128)->Arg(512);

void BM_HyperbolicFilterScore(benchmark::State& state) {
  core::ChainsFormerConfig config;
  config.filter_dim = static_cast<int>(state.range(0));
  core::HyperbolicFilter filter(Data().graph.num_relation_ids(),
                                Data().graph.num_attributes(), config);
  core::QueryRetrieval retrieval(Data().graph, TrainIndex(), 3, 64);
  Rng rng(2);
  const auto toc = retrieval.Retrieve(SomeQuery(), rng);
  for (auto _ : state) {
    for (const auto& c : toc) benchmark::DoNotOptimize(filter.Score(c));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(toc.size()));
}
BENCHMARK(BM_HyperbolicFilterScore)->Arg(8)->Arg(16)->Arg(64);

void BM_ChainEncoderEncode(benchmark::State& state) {
  core::ChainsFormerConfig config;
  config.hidden_dim = static_cast<int>(state.range(0));
  Rng rng(3);
  core::ChainEncoder encoder(Data().graph.num_relation_ids(),
                             Data().graph.num_attributes(), config, rng);
  core::QueryRetrieval retrieval(Data().graph, TrainIndex(), 3, 8);
  Rng wrng(4);
  const auto toc = retrieval.Retrieve(SomeQuery(), wrng);
  tensor::NoGradGuard no_grad;
  for (auto _ : state) {
    for (const auto& c : toc) benchmark::DoNotOptimize(encoder.Encode(c));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(toc.size()));
}
BENCHMARK(BM_ChainEncoderEncode)->Arg(16)->Arg(32)->Arg(64);

void BM_NumericalReasonerForward(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  core::ChainsFormerConfig config;
  config.hidden_dim = 32;
  Rng rng(5);
  core::NumericalReasoner reasoner(config, rng);
  std::vector<tensor::Tensor> reps;
  std::vector<double> values;
  std::vector<int64_t> lengths;
  Rng rrng(6);
  for (int i = 0; i < k; ++i) {
    reps.push_back(tensor::Tensor::Randn({32}, rrng, 0.5f));
    values.push_back(0.5);
    lengths.push_back(1 + i % 3);
  }
  tensor::NoGradGuard no_grad;
  for (auto _ : state) {
    benchmark::DoNotOptimize(reasoner.Forward(reps, values, lengths));
  }
  state.SetItemsProcessed(state.iterations() * k);
}
BENCHMARK(BM_NumericalReasonerForward)->Arg(4)->Arg(16)->Arg(64);

// GEMM kernel-layer throughput: args are {size, kernel_threads}. Items
// processed = multiply-accumulates, so google-benchmark's items/s column
// reads as MAC/s (2x for flop/s).
void BM_GemmForward(benchmark::State& state) {
  const int64_t d = state.range(0);
  tensor::kernels::SetKernelThreads(static_cast<int>(state.range(1)));
  Rng rng(7);
  const tensor::Tensor a = tensor::Tensor::Randn({d, d}, rng, 0.5f);
  const tensor::Tensor b = tensor::Tensor::Randn({d, d}, rng, 0.5f);
  tensor::NoGradGuard no_grad;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tensor::MatMul(a, b));
  }
  state.SetItemsProcessed(state.iterations() * d * d * d);
  tensor::kernels::SetKernelThreads(1);
}
BENCHMARK(BM_GemmForward)
    ->Args({64, 1})->Args({64, 2})->Args({64, 4})
    ->Args({128, 1})->Args({128, 2})->Args({128, 4})
    ->Args({256, 1})->Args({256, 2})->Args({256, 4})
    ->Args({512, 1})->Args({512, 2})->Args({512, 4});

void BM_GemmBackward(benchmark::State& state) {
  const int64_t d = state.range(0);
  tensor::kernels::SetKernelThreads(static_cast<int>(state.range(1)));
  Rng rng(8);
  const tensor::Tensor a = tensor::Tensor::Randn({d, d}, rng, 0.5f);
  const tensor::Tensor b = tensor::Tensor::Randn({d, d}, rng, 0.5f);
  const tensor::Tensor g = tensor::Tensor::Randn({d, d}, rng, 0.5f);
  std::vector<float> da(static_cast<size_t>(d * d));
  std::vector<float> db(static_cast<size_t>(d * d));
  for (auto _ : state) {
    tensor::kernels::GemmBtAcc(d, d, d, g.data().data(), b.data().data(),
                               da.data());
    tensor::kernels::GemmAtAcc(d, d, d, a.data().data(), g.data().data(),
                               db.data());
    benchmark::DoNotOptimize(da.data());
    benchmark::DoNotOptimize(db.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * d * d * d);
  tensor::kernels::SetKernelThreads(1);
}
BENCHMARK(BM_GemmBackward)
    ->Args({64, 1})->Args({64, 4})
    ->Args({128, 1})->Args({128, 4})
    ->Args({256, 1})->Args({256, 2})->Args({256, 4})
    ->Args({512, 1})->Args({512, 4});

// Quantized Linear step at the encoder projection shape (DESIGN §6g):
// dynamic activation quantization + int8 GEMM + fused dequant/bias epilogue,
// i.e. exactly what a kGemmInt8 + kDequantBias plan step pair executes.
void BM_Int8LinearForward(benchmark::State& state) {
  const int64_t m = state.range(0), d = state.range(1);
  Rng rng(23);
  std::vector<float> a(static_cast<size_t>(m * d));
  std::vector<float> b(static_cast<size_t>(d * d));
  std::vector<float> bias(static_cast<size_t>(d));
  for (auto& x : a) x = static_cast<float>(rng.Normal());
  for (auto& x : b) x = static_cast<float>(rng.Normal());
  for (auto& x : bias) x = static_cast<float>(rng.Normal());
  std::vector<int8_t> q(static_cast<size_t>(d * d));
  std::vector<float> scale(static_cast<size_t>(d));
  tensor::kernels::QuantizeWeightsInt8(d, d, b.data(), q.data(), scale.data());
  const tensor::kernels::Int8Pack pack =
      tensor::kernels::PackInt8Weights(d, d, q.data(), scale.data());
  std::vector<uint8_t> qa(static_cast<size_t>(m * pack.k_padded));
  std::vector<float> row_scale(static_cast<size_t>(m));
  std::vector<float> row_min(static_cast<size_t>(m));
  std::vector<int32_t> acc(static_cast<size_t>(m * pack.n_padded));
  std::vector<float> c(static_cast<size_t>(m * d));
  for (auto _ : state) {
    tensor::kernels::QuantizeActivationRows(m, d, pack.k_padded, a.data(),
                                            qa.data(), row_scale.data(),
                                            row_min.data());
    tensor::kernels::Int8GemmI32Serial(m, pack, qa.data(), acc.data());
    tensor::kernels::DequantBiasRows(m, pack, acc.data(), row_scale.data(),
                                     row_min.data(), bias.data(), false,
                                     c.data());
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * m * d * d);
}
BENCHMARK(BM_Int8LinearForward)
    ->Args({16, 64})->Args({48, 128})->Args({48, 256});

void BM_Bf16LinearForward(benchmark::State& state) {
  const int64_t m = state.range(0), d = state.range(1);
  Rng rng(24);
  std::vector<float> a(static_cast<size_t>(m * d));
  std::vector<float> b(static_cast<size_t>(d * d));
  for (auto& x : a) x = static_cast<float>(rng.Normal());
  for (auto& x : b) x = static_cast<float>(rng.Normal());
  const tensor::kernels::Bf16Pack pack =
      tensor::kernels::PackBf16Weights(d, d, b.data());
  std::vector<float> c(static_cast<size_t>(m * d));
  for (auto _ : state) {
    std::fill(c.begin(), c.end(), 0.0f);
    tensor::kernels::Bf16GemmAccSerial(m, pack, a.data(), c.data());
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * m * d * d);
}
BENCHMARK(BM_Bf16LinearForward)
    ->Args({16, 64})->Args({48, 128})->Args({48, 256});

// Observability layer overhead: the disabled tracer path (one relaxed atomic
// load + branch), the enabled path (clock reads + ring write), and a
// counter/histogram update.
void BM_TraceScopeDisabled(benchmark::State& state) {
  trace::SetEnabled(false);
  for (auto _ : state) {
    CF_TRACE_SCOPE("bench.disabled");
    benchmark::ClobberMemory();
  }
}
BENCHMARK(BM_TraceScopeDisabled);

void BM_TraceScopeEnabled(benchmark::State& state) {
  trace::SetEnabled(true);
  for (auto _ : state) {
    CF_TRACE_SCOPE("bench.enabled");
    benchmark::ClobberMemory();
  }
  trace::SetEnabled(false);
  trace::Clear();
}
BENCHMARK(BM_TraceScopeEnabled);

void BM_MetricsCounterIncrement(benchmark::State& state) {
  auto* counter =
      metrics::MetricsRegistry::Global().GetCounter("bench.counter");
  for (auto _ : state) {
    counter->Increment();
  }
}
BENCHMARK(BM_MetricsCounterIncrement);

void BM_MetricsHistogramObserve(benchmark::State& state) {
  auto* hist =
      metrics::MetricsRegistry::Global().GetHistogram("bench.histogram");
  double v = 1.0;
  for (auto _ : state) {
    hist->Observe(v);
    v = v < 1e6 ? v * 1.1 : 1.0;
  }
}
BENCHMARK(BM_MetricsHistogramObserve);

void BM_WindowedHistogramObserve(benchmark::State& state) {
  auto* hist =
      telemetry::TelemetryRegistry::Global().GetHistogram("bench.windowed");
  double v = 1.0;
  for (auto _ : state) {
    hist->Observe(v);
    v = v < 1e6 ? v * 1.1 : 1.0;
  }
}
BENCHMARK(BM_WindowedHistogramObserve);

core::ChainsFormerModel* FrozenModel() {
  static core::ChainsFormerModel* model = [] {
    core::ChainsFormerConfig config;
    config.num_walks = 64;
    config.top_k = 8;
    config.hidden_dim = 16;
    config.filter_dim = 8;
    config.epochs = 1;
    config.max_train_queries = 50;
    auto* m = new core::ChainsFormerModel(Data(), config);
    m->Train();
    return m;
  }();
  return model;
}

/// First test-split query whose retrieval produces a non-empty Tree of
/// Chains, so the compiled-vs-eager comparisons exercise the full forward.
core::Query QueryWithChains(const core::ChainsFormerModel& model) {
  for (const auto& t : Data().split.test) {
    const core::Query q{t.entity, t.attribute};
    if (!model.RetrieveChains(q).empty()) return q;
  }
  CF_CHECK(false) << "no test query retrieved any chains";
  return SomeQuery();
}

void BM_EndToEndPredict(benchmark::State& state) {
  core::ChainsFormerModel* model = FrozenModel();
  const auto q = SomeQuery();
  for (auto _ : state) {
    benchmark::DoNotOptimize(model->Predict(q));
  }
}
BENCHMARK(BM_EndToEndPredict);

// Forward dispatch on a fixed chain set: the eager tape interpreter vs the
// warmed static-graph plan (retrieval excluded from both, so the delta is
// purely tape construction + allocation vs the fused arena program).
void BM_EagerDispatch(benchmark::State& state) {
  core::ChainsFormerModel* model = FrozenModel();
  const core::Query q = QueryWithChains(*model);
  const core::TreeOfChains chains = model->RetrieveChains(q);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model->PredictOnChainSets({q}, {&chains}));
  }
}
BENCHMARK(BM_EagerDispatch);

void BM_CompiledDispatch(benchmark::State& state) {
  core::ChainsFormerModel* model = FrozenModel();
  const core::Query q = QueryWithChains(*model);
  const core::TreeOfChains chains = model->RetrieveChains(q);
  static graph::StaticGraphRuntime* runtime =
      new graph::StaticGraphRuntime(*model);
  benchmark::DoNotOptimize(runtime->Predict(q, chains));  // trace + compile
  for (auto _ : state) {
    benchmark::DoNotOptimize(runtime->Predict(q, chains));
  }
}
BENCHMARK(BM_CompiledDispatch);

// Guardrail for "instrumentation stays free when off": measures the cost of
// a disabled CF_TRACE_SCOPE and aborts if the median exceeds a generous
// budget. The disabled path is one relaxed atomic load plus a branch
// (single-digit nanoseconds everywhere); the threshold leaves ~10x headroom
// for slow/emulated CI machines while still catching an accidental clock
// read or lock on the fast path.
void VerifyTracerDisabledOverhead() {
  constexpr int kTrials = 7;
  constexpr int kIters = 1'000'000;
  constexpr double kMaxNanosPerScope = 50.0;
  trace::SetEnabled(false);
  double trials[kTrials];
  for (int t = 0; t < kTrials; ++t) {
    Stopwatch sw;
    for (int i = 0; i < kIters; ++i) {
      CF_TRACE_SCOPE("overhead.check");
      benchmark::ClobberMemory();
    }
    trials[t] = static_cast<double>(sw.ElapsedMicros()) * 1e3 / kIters;
  }
  std::sort(trials, trials + kTrials);
  const double median = trials[kTrials / 2];
  std::printf("tracer disabled-path overhead: %.2f ns/scope (budget %.0f)\n",
              median, kMaxNanosPerScope);
  CF_CHECK_LE(median, kMaxNanosPerScope)
      << "disabled CF_TRACE_SCOPE is no longer (nearly) free";
}

// Check-mode dispatch cost: the entire per-op price of --check-mode=off is
// (at most) two of these relaxed loads, one at the Attach record site and
// one in the FinishOp poison gate.
void BM_CheckModeDispatchOff(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(tensor::GetCheckMode());
  }
}
BENCHMARK(BM_CheckModeDispatchOff);

/// Recorded autograd ops reachable from `t` — the number of times the
/// check-mode dispatch was paid while building this tape.
int64_t CountTapeOps(const tensor::Tensor& t) {
  std::vector<tensor::TensorImpl*> stack = {t.impl().get()};
  std::unordered_set<tensor::TensorImpl*> seen = {t.impl().get()};
  int64_t ops = 0;
  while (!stack.empty()) {
    tensor::TensorImpl* node = stack.back();
    stack.pop_back();
    if (node->backward_fn) ++ops;
    for (const auto& p : node->parents) {
      if (seen.insert(p.get()).second) stack.push_back(p.get());
    }
  }
  return ops;
}

// Guardrail for "--check-mode=off is free": the sanitizer's whole per-op
// cost when off is two relaxed atomic loads (Attach + FinishOp). Measures
// that dispatch cost directly, then bounds the resulting overhead fraction
// against two representative workloads — a single 256x256 GEMM op and one
// Chain Encoder forward (whose op count is taken from its own tape, not
// guessed) — and aborts above 1%.
void VerifyCheckModeOffOverhead() {
  if (tensor::GetCheckMode() != tensor::CheckMode::kOff) {
    std::printf("check-mode overhead guardrail skipped (CF_CHECK_MODE=%s)\n",
                tensor::CheckModeName(tensor::GetCheckMode()));
    return;
  }
  constexpr double kMaxOverheadFraction = 0.01;
  constexpr int kTrials = 7;

  // Per-dispatch cost (ns) of GetCheckMode(): relaxed load + branch.
  double dispatch_trials[kTrials];
  for (int t = 0; t < kTrials; ++t) {
    constexpr int kIters = 1'000'000;
    Stopwatch sw;
    for (int i = 0; i < kIters; ++i) {
      benchmark::DoNotOptimize(tensor::GetCheckMode());
    }
    dispatch_trials[t] = static_cast<double>(sw.ElapsedMicros()) * 1e3 / kIters;
  }
  std::sort(dispatch_trials, dispatch_trials + kTrials);
  const double dispatch_ns = dispatch_trials[kTrials / 2];
  const double per_op_ns = 2.0 * dispatch_ns;

  // GEMM: one recorded op per MatMul call.
  Rng rng(17);
  const tensor::Tensor a = tensor::Tensor::Randn({256, 256}, rng, 0.5f);
  const tensor::Tensor b = tensor::Tensor::Randn({256, 256}, rng, 0.5f);
  double gemm_trials[kTrials];
  for (int t = 0; t < kTrials; ++t) {
    tensor::NoGradGuard no_grad;
    Stopwatch sw;
    benchmark::DoNotOptimize(tensor::MatMul(a, b));
    gemm_trials[t] = static_cast<double>(sw.ElapsedMicros()) * 1e3;
  }
  std::sort(gemm_trials, gemm_trials + kTrials);
  const double gemm_fraction = per_op_ns / gemm_trials[kTrials / 2];

  // Chain Encoder forward: op count read off the recorded tape.
  core::ChainsFormerConfig config;
  config.hidden_dim = 32;
  Rng erng(18);
  core::ChainEncoder encoder(Data().graph.num_relation_ids(),
                             Data().graph.num_attributes(), config, erng);
  core::QueryRetrieval retrieval(Data().graph, TrainIndex(), 3, 8);
  Rng wrng(19);
  const auto toc = retrieval.Retrieve(SomeQuery(), wrng);
  CF_CHECK(!toc.empty());
  const int64_t encode_ops = CountTapeOps(encoder.Encode(toc.front()));
  double encode_trials[kTrials];
  for (int t = 0; t < kTrials; ++t) {
    Stopwatch sw;
    benchmark::DoNotOptimize(encoder.Encode(toc.front()));
    encode_trials[t] = static_cast<double>(sw.ElapsedMicros()) * 1e3;
  }
  std::sort(encode_trials, encode_trials + kTrials);
  const double encode_fraction =
      static_cast<double>(encode_ops) * per_op_ns / encode_trials[kTrials / 2];

  std::printf(
      "check-mode-off overhead: %.2f ns/op dispatch; GEMM-256 %.4f%%, "
      "encoder forward (%lld ops) %.4f%% (budget %.0f%%)\n",
      per_op_ns, 100.0 * gemm_fraction,
      static_cast<long long>(encode_ops), 100.0 * encode_fraction,
      100.0 * kMaxOverheadFraction);
  CF_CHECK_LE(gemm_fraction, kMaxOverheadFraction)
      << "check-mode-off dispatch is no longer (nearly) free on GEMM";
  CF_CHECK_LE(encode_fraction, kMaxOverheadFraction)
      << "check-mode-off dispatch is no longer (nearly) free on the encoder";
}

// Guardrail for the static-graph subsystem: once a plan is traced, compiled
// and warmed, dispatching through it must never be slower than the eager
// tape interpreter on the same frozen model and chain set. The compiled path
// exists purely to shed tape construction and per-op heap traffic, so if it
// ever loses to eager the fusion or arena layout has regressed. Medians of
// batched trials keep the comparison stable on noisy CI machines.
void VerifyCompiledDispatchOverhead() {
  core::ChainsFormerModel* model = FrozenModel();
  if (!graph::StaticGraphRuntime::Supports(*model)) {
    std::printf("compiled-dispatch guardrail skipped (encoder unsupported)\n");
    return;
  }
  const core::Query q = QueryWithChains(*model);
  const core::TreeOfChains chains = model->RetrieveChains(q);
  graph::StaticGraphRuntime runtime(*model);

  // First call traces, compiles and bitwise-verifies against eager; also
  // re-check the values agree here so the timing below compares equal work.
  const core::BatchPrediction compiled = runtime.Predict(q, chains);
  const core::BatchPrediction eager =
      model->PredictOnChainSets({q}, {&chains})[0];
  CF_CHECK_EQ(compiled.value, eager.value)
      << "compiled plan diverged from eager before timing";

  constexpr int kTrials = 9;
  constexpr int kIters = 50;
  double eager_trials[kTrials];
  double compiled_trials[kTrials];
  for (int t = 0; t < kTrials; ++t) {
    Stopwatch sw;
    for (int i = 0; i < kIters; ++i) {
      benchmark::DoNotOptimize(model->PredictOnChainSets({q}, {&chains}));
    }
    eager_trials[t] = static_cast<double>(sw.ElapsedMicros()) / kIters;
    Stopwatch sw2;
    for (int i = 0; i < kIters; ++i) {
      benchmark::DoNotOptimize(runtime.Predict(q, chains));
    }
    compiled_trials[t] = static_cast<double>(sw2.ElapsedMicros()) / kIters;
  }
  std::sort(eager_trials, eager_trials + kTrials);
  std::sort(compiled_trials, compiled_trials + kTrials);
  const double eager_us = eager_trials[kTrials / 2];
  const double compiled_us = compiled_trials[kTrials / 2];
  std::printf(
      "compiled dispatch: %.1f us/query vs eager %.1f us/query (%.2fx)\n",
      compiled_us, eager_us, eager_us / compiled_us);
  CF_CHECK_LE(compiled_us, eager_us)
      << "warmed static-graph dispatch is slower than the eager interpreter";
}

// Guardrail for the request-tracing/telemetry layer (ISSUE: steady-state
// overhead <= 1%): one served request costs at most ~7 windowed histogram
// observes and ~2 windowed counter increments (all fed an already-held
// timestamp via the AtMs seam — the finish() path reads the clock once for
// all nine), ~6 EmitSpan calls (no-ops while tracing is disabled, the steady
// state), and ~10 steady-clock reads for the phase boundaries. Prices each
// primitive at its median, sums the per-request bill, and aborts if it
// exceeds 1% of a warmed compiled dispatch — the cheapest compute a request
// can do, so the bound is conservative for real traffic.
void VerifyServeTelemetryOverhead() {
  constexpr double kMaxOverheadFraction = 0.01;
  constexpr int kTrials = 7;
  constexpr int kIters = 200'000;
  auto median_ns = [&](auto&& body) {
    double trials[kTrials];
    for (int t = 0; t < kTrials; ++t) {
      Stopwatch sw;
      for (int i = 0; i < kIters; ++i) body(i);
      trials[t] = static_cast<double>(sw.ElapsedMicros()) * 1e3 / kIters;
    }
    std::sort(trials, trials + kTrials);
    return trials[kTrials / 2];
  };

  auto* hist =
      telemetry::TelemetryRegistry::Global().GetHistogram("bench.overhead.h");
  auto* counter =
      telemetry::TelemetryRegistry::Global().GetCounter("bench.overhead.c");
  const int64_t now_ms = telemetry::WindowedHistogram::NowMs();
  const double observe_ns = median_ns(
      [&](int i) { hist->ObserveAtMs(static_cast<double>(i & 1023), now_ms); });
  const double increment_ns =
      median_ns([&](int) { counter->IncrementAtMs(1, now_ms); });
  trace::SetEnabled(false);
  const double span_ns = median_ns([&](int) {
    trace::EmitSpan("bench.overhead.span", 0, 1, /*trace_id=*/1);
  });
  const double clock_ns =
      median_ns([&](int) { benchmark::DoNotOptimize(trace::NowNs()); });

  const double per_request_ns = 7.0 * observe_ns + 2.0 * increment_ns +
                                6.0 * span_ns + 10.0 * clock_ns;

  // Price the cheapest possible request: a warmed compiled dispatch.
  core::ChainsFormerModel* model = FrozenModel();
  if (!graph::StaticGraphRuntime::Supports(*model)) {
    std::printf("serve-telemetry guardrail skipped (encoder unsupported)\n");
    return;
  }
  const core::Query q = QueryWithChains(*model);
  const core::TreeOfChains chains = model->RetrieveChains(q);
  graph::StaticGraphRuntime runtime(*model);
  benchmark::DoNotOptimize(runtime.Predict(q, chains));  // trace + compile
  constexpr int kDispatchTrials = 9;
  constexpr int kDispatchIters = 50;
  double dispatch_trials[kDispatchTrials];
  for (int t = 0; t < kDispatchTrials; ++t) {
    Stopwatch sw;
    for (int i = 0; i < kDispatchIters; ++i) {
      benchmark::DoNotOptimize(runtime.Predict(q, chains));
    }
    dispatch_trials[t] =
        static_cast<double>(sw.ElapsedMicros()) / kDispatchIters;
  }
  std::sort(dispatch_trials, dispatch_trials + kDispatchTrials);
  const double dispatch_ns = dispatch_trials[kDispatchTrials / 2] * 1e3;

  const double fraction = per_request_ns / dispatch_ns;
  std::printf(
      "serve telemetry overhead: %.0f ns/request (observe %.1f, counter %.1f, "
      "span-off %.2f, clock %.1f) = %.4f%% of a %.1f us compiled dispatch "
      "(budget %.0f%%)\n",
      per_request_ns, observe_ns, increment_ns, span_ns, clock_ns,
      100.0 * fraction, dispatch_ns * 1e-3, 100.0 * kMaxOverheadFraction);
  CF_CHECK_LE(fraction, kMaxOverheadFraction)
      << "per-request telemetry is no longer (nearly) free";
}

// Guardrail for the int8 serving path (ISSUE: >= 2x the float kernel at the
// encoder shapes): times the full quantized Linear step — dynamic activation
// quantization, int8 GEMM, fused dequant/bias epilogue — against the float32
// GemmAccSerial 6x16 kernel at m=48, d=128 (top_k chains x hidden_dim, the
// shape every encoder projection runs at). Pricing the quantize/dequant
// phases into the bill (the same way the telemetry guardrail prices its
// per-request primitives) keeps the 2x claim honest: a fast GEMM wrapped in
// slow conversion phases must still fail. Skipped when the runtime dispatch
// has no SIMD dot-product kernel — the portable scalar reference is
// correctness collateral, not a speed claim.
void VerifyInt8GemmSpeedup() {
  if (!tensor::kernels::Int8GemmAccelerated()) {
    std::printf("int8 speedup guardrail skipped (no SIMD dot-product path)\n");
    return;
  }
  constexpr int64_t kRows = 48, kDim = 128;
  constexpr double kMinSpeedup = 2.0;
  constexpr int kTrials = 9;
  constexpr int kIters = 200;

  Rng rng(25);
  std::vector<float> a(static_cast<size_t>(kRows * kDim));
  std::vector<float> b(static_cast<size_t>(kDim * kDim));
  std::vector<float> bias(static_cast<size_t>(kDim));
  for (auto& x : a) x = static_cast<float>(rng.Normal());
  for (auto& x : b) x = static_cast<float>(rng.Normal());
  for (auto& x : bias) x = static_cast<float>(rng.Normal());
  std::vector<int8_t> q(static_cast<size_t>(kDim * kDim));
  std::vector<float> scale(static_cast<size_t>(kDim));
  tensor::kernels::QuantizeWeightsInt8(kDim, kDim, b.data(), q.data(),
                                       scale.data());
  const tensor::kernels::Int8Pack pack =
      tensor::kernels::PackInt8Weights(kDim, kDim, q.data(), scale.data());
  std::vector<uint8_t> qa(static_cast<size_t>(kRows * pack.k_padded));
  std::vector<float> row_scale(static_cast<size_t>(kRows));
  std::vector<float> row_min(static_cast<size_t>(kRows));
  std::vector<int32_t> acc(static_cast<size_t>(kRows * pack.n_padded));
  std::vector<float> c(static_cast<size_t>(kRows * kDim));

  auto median_us = [&](auto&& body) {
    double trials[kTrials];
    for (int t = 0; t < kTrials; ++t) {
      Stopwatch sw;
      for (int i = 0; i < kIters; ++i) body();
      trials[t] = static_cast<double>(sw.ElapsedMicros()) / kIters;
    }
    std::sort(trials, trials + kTrials);
    return trials[kTrials / 2];
  };

  const double float_us = median_us([&] {
    std::fill(c.begin(), c.end(), 0.0f);
    tensor::kernels::GemmAccSerial(kRows, kDim, kDim, a.data(), b.data(),
                                   c.data());
    benchmark::DoNotOptimize(c.data());
  });
  // Phase prices, so a regression names the guilty stage.
  const double quantize_us = median_us([&] {
    tensor::kernels::QuantizeActivationRows(kRows, kDim, pack.k_padded,
                                            a.data(), qa.data(),
                                            row_scale.data(), row_min.data());
    benchmark::DoNotOptimize(qa.data());
  });
  const double gemm_us = median_us([&] {
    tensor::kernels::Int8GemmI32Serial(kRows, pack, qa.data(), acc.data());
    benchmark::DoNotOptimize(acc.data());
  });
  const double dequant_us = median_us([&] {
    tensor::kernels::DequantBiasRows(kRows, pack, acc.data(), row_scale.data(),
                                     row_min.data(), bias.data(), false,
                                     c.data());
    benchmark::DoNotOptimize(c.data());
  });
  const double int8_us = quantize_us + gemm_us + dequant_us;
  const double speedup = float_us / int8_us;
  std::printf(
      "int8 linear step: %.2f us (quantize %.2f + gemm %.2f + dequant %.2f) "
      "vs float32 %.2f us at m=%lld d=%lld — %.2fx (floor %.1fx)\n",
      int8_us, quantize_us, gemm_us, dequant_us, float_us,
      static_cast<long long>(kRows), static_cast<long long>(kDim), speedup,
      kMinSpeedup);
  CF_CHECK_LE(kMinSpeedup, speedup)
      << "the int8 GEMM path lost its speed advantage over the float kernel";
}

// Guardrail for "cf::Mutex is a bare std::mutex in release": under NDEBUG
// sync.h compiles the lock-order validator hooks out of lock()/unlock()
// entirely (CF_SYNC_VALIDATOR=0), so the wrapper must price like the raw
// mutex it wraps. Times uncontended lock/unlock pairs for both, interleaving
// the trials so machine drift hits both sides equally, and bounds the
// wrapper's best trial against the raw best + 1%. Best-of-trials rather than
// median: the minimum of an uncontended fixed-work loop converges on the
// true cost, so the comparison stays stable on loaded 1-core CI machines
// where medians wobble by far more than the margin under test. Skipped in
// validator builds — there the flag check is deliberately present (~5%,
// measured) and the release claim is not what this TU compiles.
void VerifyMutexOverhead() {
#if CF_SYNC_VALIDATOR
  std::printf(
      "mutex overhead guardrail skipped (validator hooks compiled in)\n");
#else
  constexpr int kTrials = 9;
  constexpr int kIters = 2'000'000;
  constexpr double kMaxOverheadFraction = 0.01;
  std::mutex raw;  // cf-lint: allow(naked-mutex-outside-sync) baseline side
  cf::Mutex wrapped("bench.mutex_overhead");
  double raw_best = 1e300;
  double wrapped_best = 1e300;
  for (int t = 0; t < kTrials; ++t) {
    {
      Stopwatch sw;
      for (int i = 0; i < kIters; ++i) {
        raw.lock();
        benchmark::DoNotOptimize(&raw);
        raw.unlock();
      }
      raw_best = std::min(
          raw_best, static_cast<double>(sw.ElapsedMicros()) * 1e3 / kIters);
    }
    {
      Stopwatch sw;
      for (int i = 0; i < kIters; ++i) {
        wrapped.lock();
        benchmark::DoNotOptimize(&wrapped);
        wrapped.unlock();
      }
      wrapped_best = std::min(
          wrapped_best, static_cast<double>(sw.ElapsedMicros()) * 1e3 / kIters);
    }
  }
  const double overhead = wrapped_best / raw_best - 1.0;
  std::printf(
      "cf::Mutex lock/unlock: %.2f ns vs raw std::mutex %.2f ns — %+.2f%% "
      "(budget %.0f%%)\n",
      wrapped_best, raw_best, 100.0 * overhead, 100.0 * kMaxOverheadFraction);
  CF_CHECK_LE(overhead, kMaxOverheadFraction)
      << "cf::Mutex is no longer a bare std::mutex in release builds";
#endif
}

}  // namespace

int main(int argc, char** argv) {
  VerifyMutexOverhead();
  VerifyTracerDisabledOverhead();
  VerifyCheckModeOffOverhead();
  VerifyCompiledDispatchOverhead();
  VerifyServeTelemetryOverhead();
  VerifyInt8GemmSpeedup();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
