// Serving throughput/latency recorder. Trains a bench-scale model, stands up
// an InferenceService, and drives it with N concurrent client threads in two
// modes — single-request-at-a-time (max_batch=1, the no-batching baseline)
// and micro-batched (duplicate requests coalesce, unique forwards share a
// dispatch, DESIGN §6e) — crossed with the dispatch backend: eager tape
// interpretation vs the compiled static-graph plans (DESIGN §6f,
// --static-graph, the shipping default). The batched-static cell is
// additionally swept over the serving precision (fp64 / bf16 / int8,
// DESIGN §6g) at every client count, and the summary records the WORST int8
// vs fp64 cell — the acceptance bar is a win everywhere, not on average. A
// batch-window sweep runs at the highest client count. Each (mode, graph,
// clients) cell runs two workloads:
//
//   uniform — every request strides over the full working set. Measures raw
//             dispatch overhead; on a single hardware thread batched and
//             single throughput are expected to be close, since the model
//             work is linear in requests and there is nothing to coalesce.
//   hotspot — all clients hammer a small set of trending queries (a flash
//             crowd). Micro-batches then contain mostly duplicates, which
//             the dispatcher collapses into one forward each
//             (serve.batch_dedup); single-request dispatch cannot coalesce
//             by construction, so this is where batching pulls ahead.
//
// Writes throughput and latency percentiles to a JSON file.
//
// Usage:
//   bench_serve [--out=BENCH_serve.json] [--client-threads=1,2,4,8]
//               [--batch-windows-us=50,200,1000] [--requests-per-client=300]
//               [--hidden-dim=64] [--epochs=1] [--working-set=64]
//               [--hot-set=3] [--compute-threads=0] [--repeats=3]
//
// Each cell runs `--repeats` times and records the best-throughput repeat —
// the same interference-rejection idea as bench_encoder's interleaved-min
// timing: on a shared box a depressed sample means something else ran, never
// that the service got faster, and a transient burst otherwise lands on
// whichever cell is unlucky enough to be measuring when it hits.
//
// Honors the CF_* environment hooks of bench_common (CF_KERNEL_THREADS,
// CF_TRACE_JSON, CF_METRICS_JSON, CF_STATS).

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "graph/quant.h"
#include "serve/service.h"
#include "util/flags.h"
#include "util/metrics.h"
#include "util/rng.h"
#include "util/stopwatch.h"
#include "util/string_util.h"

namespace chainsformer {
namespace {

struct LoadResult {
  double throughput_qps = 0.0;
  double p50_us = 0.0;
  double p90_us = 0.0;
  double p95_us = 0.0;
  double p99_us = 0.0;
  double mean_batch_size = 0.0;
  int degraded = 0;
  // Mean per-request phase latencies from the request-tracing span fields
  // (ServeResponse.*_us): where inside the service the time actually went.
  double mean_cache_us = 0.0;
  double mean_queue_us = 0.0;
  double mean_window_us = 0.0;
  double mean_compute_us = 0.0;
  double mean_verify_us = 0.0;
};

double Percentile(std::vector<int64_t>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const size_t idx = std::min(
      sorted.size() - 1,
      static_cast<size_t>(p * static_cast<double>(sorted.size() - 1)));
  return static_cast<double>(sorted[idx]);
}

/// Drives `client_threads` concurrent clients over a shared working set of
/// queries (cache-warm steady state, where the model pass dominates and
/// batching has to earn its keep). `hot_set` > 0 restricts every request to
/// the first `hot_set` queries (the flash-crowd workload); 0 strides over
/// the whole set. Returns aggregate throughput + latency.
LoadResult RunLoad(const core::ChainsFormerModel& model,
                   const serve::ServeOptions& options,
                   const std::vector<core::Query>& working_set,
                   int client_threads, int requests_per_client, int hot_set) {
  serve::InferenceService service(model, options);
  const size_t span = hot_set > 0
                          ? std::min<size_t>(static_cast<size_t>(hot_set),
                                             working_set.size())
                          : working_set.size();

  // Warmup: touch every query once so the ToC cache is hot and the first
  // timed request does not pay the retrieval cost.
  for (const core::Query& q : working_set) (void)service.Predict(q);

  std::vector<std::vector<int64_t>> latencies(
      static_cast<size_t>(client_threads));
  std::atomic<int64_t> batch_size_sum{0};
  std::atomic<int> degraded{0};
  std::atomic<int64_t> cache_us_sum{0};
  std::atomic<int64_t> queue_us_sum{0};
  std::atomic<int64_t> window_us_sum{0};
  std::atomic<int64_t> compute_us_sum{0};
  std::atomic<int64_t> verify_us_sum{0};
  std::vector<std::thread> clients;
  clients.reserve(static_cast<size_t>(client_threads));
  Stopwatch wall;
  for (int c = 0; c < client_threads; ++c) {
    clients.emplace_back([&, c] {
      auto& lat = latencies[static_cast<size_t>(c)];
      lat.reserve(static_cast<size_t>(requests_per_client));
      // Deterministic per-client request stream.
      Rng rng(static_cast<uint64_t>(1000 + c));
      for (int i = 0; i < requests_per_client; ++i) {
        const size_t qi =
            hot_set > 0
                ? static_cast<size_t>(rng.UniformInt(
                      0, static_cast<int64_t>(span) - 1))
                : static_cast<size_t>(c * 41 + i * 13) % span;
        const serve::ServeResponse r = service.Predict(working_set[qi]);
        lat.push_back(r.latency_us);
        batch_size_sum.fetch_add(r.batch_size, std::memory_order_relaxed);
        if (r.degraded) degraded.fetch_add(1, std::memory_order_relaxed);
        cache_us_sum.fetch_add(r.cache_us, std::memory_order_relaxed);
        queue_us_sum.fetch_add(r.queue_us, std::memory_order_relaxed);
        window_us_sum.fetch_add(r.window_us, std::memory_order_relaxed);
        compute_us_sum.fetch_add(r.compute_us, std::memory_order_relaxed);
        verify_us_sum.fetch_add(r.verify_us, std::memory_order_relaxed);
      }
    });
  }
  for (auto& t : clients) t.join();
  const double wall_seconds = static_cast<double>(wall.ElapsedMicros()) * 1e-6;

  std::vector<int64_t> all;
  for (const auto& lat : latencies) all.insert(all.end(), lat.begin(), lat.end());
  std::sort(all.begin(), all.end());
  const int total = client_threads * requests_per_client;
  LoadResult result;
  result.throughput_qps = static_cast<double>(total) / wall_seconds;
  result.p50_us = Percentile(all, 0.50);
  result.p90_us = Percentile(all, 0.90);
  result.p95_us = Percentile(all, 0.95);
  result.p99_us = Percentile(all, 0.99);
  result.mean_batch_size =
      static_cast<double>(batch_size_sum.load(std::memory_order_relaxed)) / static_cast<double>(total);
  result.degraded = degraded.load(std::memory_order_relaxed);
  const double n = static_cast<double>(total);
  result.mean_cache_us = static_cast<double>(cache_us_sum.load(std::memory_order_relaxed)) / n;
  result.mean_queue_us = static_cast<double>(queue_us_sum.load(std::memory_order_relaxed)) / n;
  result.mean_window_us = static_cast<double>(window_us_sum.load(std::memory_order_relaxed)) / n;
  result.mean_compute_us = static_cast<double>(compute_us_sum.load(std::memory_order_relaxed)) / n;
  result.mean_verify_us = static_cast<double>(verify_us_sum.load(std::memory_order_relaxed)) / n;
  return result;
}

struct Record {
  std::string mode;       // "single" or "batched"
  std::string graph;      // "eager" or "static" (compiled-plan dispatch)
  std::string workload;   // "uniform" or "hotspot"
  std::string precision;  // "fp64", "bf16" or "int8" (DESIGN §6g)
  int client_threads = 0;
  int64_t batch_window_us = 0;
  int max_batch = 0;
  int64_t coalesced = 0;  // serve.batch_dedup delta for this run
  LoadResult load;
};

int Main(int argc, char** argv) {
  FlagParser flags(argc, argv);
  const bench::BenchOptions options = bench::DefaultOptions();
  const std::string out_path = flags.GetString("out", "BENCH_serve.json");
  const int requests_per_client =
      static_cast<int>(flags.GetInt("requests-per-client", 300));
  const int working_set_size = static_cast<int>(flags.GetInt("working-set", 64));
  const int hot_set = static_cast<int>(flags.GetInt("hot-set", 3));
  const int compute_threads =
      static_cast<int>(flags.GetInt("compute-threads", 0));
  const int repeats =
      std::max(1, static_cast<int>(flags.GetInt("repeats", 3)));
  std::vector<int> client_thread_counts;
  for (const auto& tok : Split(flags.GetString("client-threads", "1,2,4,8"), ',')) {
    if (!tok.empty()) {
      client_thread_counts.push_back(
          static_cast<int>(std::strtol(tok.c_str(), nullptr, 10)));
    }
  }
  std::vector<int64_t> batch_windows;
  for (const auto& tok :
       Split(flags.GetString("batch-windows-us", "50,200,1000"), ',')) {
    if (!tok.empty()) {
      batch_windows.push_back(std::strtoll(tok.c_str(), nullptr, 10));
    }
  }

  bench::PrintBanner("serving",
                     "micro-batched inference service vs single-request");

  // Throughput is weight-shape-dependent, not accuracy-dependent: one quick
  // epoch produces a realistic serving model without bench-dominating
  // training time. hidden_dim defaults above test scale (the batching win
  // grows with GEMM width; see bench_encoder).
  core::ChainsFormerConfig config = bench::BenchConfig(options);
  config.hidden_dim = static_cast<int>(flags.GetInt("hidden-dim", 64));
  config.epochs = static_cast<int>(flags.GetInt("epochs", 1));
  config.verbose = false;
  const kg::Dataset& dataset = bench::YagoDataset(options);
  core::ChainsFormerModel model(dataset, config);
  model.Train();

  // Hot working set drawn from held-out queries.
  std::vector<core::Query> working_set;
  for (const auto& t : bench::TestSample(dataset, working_set_size)) {
    working_set.push_back({t.entity, t.attribute});
  }

  // Quantized weights for the reduced-precision cells (DESIGN §6g). Built
  // once from the frozen model; mae_delta stays 0 (bench_quant records the
  // calibrated drift), so the serve-time accuracy gate accepts the store.
  const auto quant_store = std::make_shared<const graph::QuantStore>(
      graph::BuildQuantStore(model));

  auto* dedup_counter =
      metrics::MetricsRegistry::Global().GetCounter("serve.batch_dedup");
  std::vector<Record> records;
  auto run = [&](const std::string& mode, const std::string& graph,
                 const std::string& workload, int threads, int64_t window_us,
                 int max_batch, const std::string& precision = "fp64") {
    serve::ServeOptions so;
    so.batch_window_us = window_us;
    so.max_batch = max_batch;
    so.deadline_ms = 0;  // throughput run: measure the model path, not timeouts
    so.compute_threads = compute_threads;
    so.use_static_graph = graph == "static";
    graph::ParsePrecision(precision, &so.precision);
    if (so.precision == graph::Precision::kInt8) so.quant = quant_store;
    Record r;
    r.mode = mode;
    r.graph = graph;
    r.workload = workload;
    r.precision = precision;
    r.client_threads = threads;
    r.batch_window_us = window_us;
    r.max_batch = max_batch;
    for (int rep = 0; rep < repeats; ++rep) {
      const int64_t dedup_before = dedup_counter->Value();
      const LoadResult load =
          RunLoad(model, so, working_set, threads, requests_per_client,
                  workload == "hotspot" ? hot_set : 0);
      const int64_t coalesced = dedup_counter->Value() - dedup_before;
      if (rep == 0 || load.throughput_qps > r.load.throughput_qps) {
        r.load = load;
        r.coalesced = coalesced;
      }
    }
    records.push_back(r);
    std::printf(
        "%-8s %-7s %-5s %-8s clients=%d window=%5lldus max_batch=%-3d  "
        "%8.0f q/s  "
        "p50 %6.0fus  p90 %6.0fus  p99 %6.0fus  mean_batch %.2f  "
        "coalesced %lld  phases(q/w/c/v) %.0f/%.0f/%.0f/%.0fus\n",
        mode.c_str(), graph.c_str(), precision.c_str(), workload.c_str(),
        threads,
        static_cast<long long>(window_us), max_batch, r.load.throughput_qps,
        r.load.p50_us, r.load.p90_us, r.load.p99_us, r.load.mean_batch_size,
        static_cast<long long>(r.coalesced), r.load.mean_queue_us,
        r.load.mean_window_us, r.load.mean_compute_us, r.load.mean_verify_us);
    return r.load.throughput_qps;
  };

  const int64_t default_window = 200;
  double single_hot_at_max = 0.0, batched_hot_at_max = 0.0;
  double single_uni_at_max = 0.0, batched_uni_at_max = 0.0;
  for (const int threads : client_thread_counts) {
    for (const char* graph : {"eager", "static"}) {
      const double su = run("single", graph, "uniform", threads, 0, 1);
      const double bu =
          run("batched", graph, "uniform", threads, default_window, 32);
      const double sh = run("single", graph, "hotspot", threads, 0, 1);
      const double bh =
          run("batched", graph, "hotspot", threads, default_window, 32);
      if (std::string(graph) == "static") {
        single_uni_at_max = su;
        batched_uni_at_max = bu;
        single_hot_at_max = sh;
        batched_hot_at_max = bh;
        // Reduced-precision dimension (DESIGN §6g): the same shipping cell
        // (batched static dispatch) at bf16 and int8, so every client count
        // records the quantization speedup on both workloads.
        for (const char* precision : {"bf16", "int8"}) {
          run("batched", graph, "uniform", threads, default_window, 32,
              precision);
          run("batched", graph, "hotspot", threads, default_window, 32,
              precision);
        }
      }
    }
  }
  // Batch-window sweep at the highest client count (shipping config:
  // batched dispatch over the static graph).
  const int max_threads = client_thread_counts.back();
  for (const int64_t window : batch_windows) {
    if (window == default_window) continue;  // already measured above
    run("batched", "static", "hotspot", max_threads, window, 32);
  }

  std::printf("batched vs single (static, hotspot) at %d clients: %.2fx\n",
              max_threads, batched_hot_at_max / single_hot_at_max);
  std::printf("batched vs single (static, uniform) at %d clients: %.2fx\n",
              max_threads, batched_uni_at_max / single_uni_at_max);

  // int8 vs fp64 over the batched-static cells: the ISSUE acceptance bar is
  // that int8 wins QPS and p50 at EVERY client count on BOTH workloads, so
  // the recorded summary is the worst cell, not the best.
  auto batched_static = [&](const std::string& precision,
                            const std::string& workload,
                            int threads) -> const Record* {
    for (const Record& r : records) {
      if (r.mode == "batched" && r.graph == "static" &&
          r.precision == precision && r.workload == workload &&
          r.client_threads == threads && r.batch_window_us == default_window) {
        return &r;
      }
    }
    return nullptr;
  };
  double int8_min_qps_ratio = 1e18, int8_max_p50_ratio = 0.0;
  for (const int threads : client_thread_counts) {
    for (const char* workload : {"uniform", "hotspot"}) {
      const Record* fp64 = batched_static("fp64", workload, threads);
      const Record* int8 = batched_static("int8", workload, threads);
      if (fp64 == nullptr || int8 == nullptr) continue;
      const double qps_ratio =
          int8->load.throughput_qps / fp64->load.throughput_qps;
      const double p50_ratio = int8->load.p50_us / fp64->load.p50_us;
      std::printf("int8 vs fp64 (batched static, %s) at %d clients: "
                  "%.2fx qps, %.2fx p50\n",
                  workload, threads, qps_ratio, p50_ratio);
      int8_min_qps_ratio = std::min(int8_min_qps_ratio, qps_ratio);
      int8_max_p50_ratio = std::max(int8_max_p50_ratio, p50_ratio);
    }
  }

  FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n  \"bench\": \"serve\",\n");
  std::fprintf(f, "  \"hidden_dim\": %d,\n  \"kernel_threads\": %d,\n",
               config.hidden_dim, options.kernel_threads);
  std::fprintf(f, "  \"hardware_threads\": %u,\n  \"compute_threads\": %d,\n",
               std::thread::hardware_concurrency(), compute_threads);
  std::fprintf(f, "  \"working_set\": %zu,\n  \"hot_set\": %d,\n",
               working_set.size(), hot_set);
  std::fprintf(f, "  \"requests_per_client\": %d,\n  \"repeats\": %d,\n",
               requests_per_client, repeats);
  std::fprintf(f,
               "  \"batched_vs_single_hotspot_at_%d_clients\": %.3f,\n",
               max_threads, batched_hot_at_max / single_hot_at_max);
  std::fprintf(f,
               "  \"batched_vs_single_uniform_at_%d_clients\": %.3f,\n",
               max_threads, batched_uni_at_max / single_uni_at_max);
  std::fprintf(f, "  \"int8_vs_fp64_min_qps_ratio\": %.3f,\n",
               int8_min_qps_ratio);
  std::fprintf(f, "  \"int8_vs_fp64_max_p50_ratio\": %.3f,\n",
               int8_max_p50_ratio);
  std::fprintf(f, "  \"results\": [\n");
  for (size_t i = 0; i < records.size(); ++i) {
    const Record& r = records[i];
    std::fprintf(f,
                 "    {\"mode\": \"%s\", \"graph\": \"%s\", "
                 "\"workload\": \"%s\", \"precision\": \"%s\", "
                 "\"client_threads\": %d, "
                 "\"batch_window_us\": %lld, \"max_batch\": %d, "
                 "\"throughput_qps\": %.1f, \"p50_us\": %.0f, "
                 "\"p90_us\": %.0f, \"p95_us\": %.0f, \"p99_us\": %.0f, "
                 "\"mean_batch_size\": %.2f, \"coalesced\": %lld, "
                 "\"degraded\": %d, "
                 "\"mean_cache_us\": %.1f, \"mean_queue_us\": %.1f, "
                 "\"mean_window_us\": %.1f, \"mean_compute_us\": %.1f, "
                 "\"mean_verify_us\": %.1f}%s\n",
                 r.mode.c_str(), r.graph.c_str(), r.workload.c_str(),
                 r.precision.c_str(), r.client_threads,
                 static_cast<long long>(r.batch_window_us), r.max_batch,
                 r.load.throughput_qps, r.load.p50_us, r.load.p90_us,
                 r.load.p95_us, r.load.p99_us, r.load.mean_batch_size,
                 static_cast<long long>(r.coalesced), r.load.degraded,
                 r.load.mean_cache_us, r.load.mean_queue_us,
                 r.load.mean_window_us, r.load.mean_compute_us,
                 r.load.mean_verify_us,
                 i + 1 < records.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %zu records to %s\n", records.size(), out_path.c_str());
  return 0;
}

}  // namespace
}  // namespace chainsformer

int main(int argc, char** argv) { return chainsformer::Main(argc, argv); }
