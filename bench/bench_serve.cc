// Serving throughput/latency recorder. Trains a bench-scale model, stands up
// an InferenceService, and drives it with N concurrent client threads in two
// modes — single-request-at-a-time (max_batch=1, the no-batching baseline)
// and micro-batched (duplicate requests coalesce, unique forwards share a
// dispatch, DESIGN §6e) — crossed with the dispatch backend: eager tape
// interpretation vs the compiled static-graph plans (DESIGN §6f,
// --static-graph, the shipping default). The batched-static cell is
// additionally swept over the serving precision (fp64 / bf16 / int8,
// DESIGN §6g) at every client count, and the summary records the WORST int8
// vs fp64 cell — the acceptance bar is a win everywhere, not on average. A
// batch-window sweep runs at the highest client count. Each (mode, graph,
// clients) cell runs two workloads:
//
//   uniform — every request strides over the full working set. Measures raw
//             dispatch overhead; on a single hardware thread batched and
//             single throughput are expected to be close, since the model
//             work is linear in requests and there is nothing to coalesce.
//   hotspot — all clients hammer a small set of trending queries (a flash
//             crowd). Micro-batches then contain mostly duplicates, which
//             the dispatcher collapses into one forward each
//             (serve.batch_dedup); single-request dispatch cannot coalesce
//             by construction, so this is where batching pulls ahead.
//
// Writes throughput and latency percentiles to a JSON file.
//
// A multi-process section (--shard-sweep, default on) then spawns real
// chainsformer_serve shard fleets of 1/2/4/8 processes behind an in-process
// fan-out router and records QPS/p50/p99 per shard count under a flash
// crowd whose hot set exceeds one shard's ToC cache, plus a kill-one-shard
// scenario (DESIGN §6i; see RunShardSweep below).
//
// Usage:
//   bench_serve [--out=BENCH_serve.json] [--client-threads=1,2,4,8]
//               [--batch-windows-us=50,200,1000] [--requests-per-client=300]
//               [--hidden-dim=64] [--epochs=1] [--working-set=64]
//               [--hot-set=3] [--compute-threads=0] [--repeats=3]
//               [--shard-sweep=true] [--serve-binary=PATH]
//               [--shard-cache-capacity=96] [--shard-hot-set=512]
//               [--shard-clients=6] [--shard-requests-per-client=300]
//               [--shard-hidden-dim=32]
//
// Each cell runs `--repeats` times and records the best-throughput repeat —
// the same interference-rejection idea as bench_encoder's interleaved-min
// timing: on a shared box a depressed sample means something else ran, never
// that the service got faster, and a transient burst otherwise lands on
// whichever cell is unlucky enough to be measuring when it hits.
//
// Honors the CF_* environment hooks of bench_common (CF_KERNEL_THREADS,
// CF_TRACE_JSON, CF_METRICS_JSON, CF_STATS).

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include "bench/bench_common.h"
#include "graph/quant.h"
#include "kg/loader.h"
#include "serve/checkpoint.h"
#include "serve/router.h"
#include "serve/service.h"
#include "util/flags.h"
#include "util/metrics.h"
#include "util/net.h"
#include "util/rng.h"
#include "util/stopwatch.h"
#include "util/string_util.h"

namespace chainsformer {
namespace {

struct LoadResult {
  double throughput_qps = 0.0;
  double p50_us = 0.0;
  double p90_us = 0.0;
  double p95_us = 0.0;
  double p99_us = 0.0;
  double mean_batch_size = 0.0;
  int degraded = 0;
  // Mean per-request phase latencies from the request-tracing span fields
  // (ServeResponse.*_us): where inside the service the time actually went.
  double mean_cache_us = 0.0;
  double mean_queue_us = 0.0;
  double mean_window_us = 0.0;
  double mean_compute_us = 0.0;
  double mean_verify_us = 0.0;
};

double Percentile(std::vector<int64_t>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const size_t idx = std::min(
      sorted.size() - 1,
      static_cast<size_t>(p * static_cast<double>(sorted.size() - 1)));
  return static_cast<double>(sorted[idx]);
}

/// Drives `client_threads` concurrent clients over a shared working set of
/// queries (cache-warm steady state, where the model pass dominates and
/// batching has to earn its keep). `hot_set` > 0 restricts every request to
/// the first `hot_set` queries (the flash-crowd workload); 0 strides over
/// the whole set. Returns aggregate throughput + latency.
LoadResult RunLoad(const core::ChainsFormerModel& model,
                   const serve::ServeOptions& options,
                   const std::vector<core::Query>& working_set,
                   int client_threads, int requests_per_client, int hot_set) {
  serve::InferenceService service(model, options);
  const size_t span = hot_set > 0
                          ? std::min<size_t>(static_cast<size_t>(hot_set),
                                             working_set.size())
                          : working_set.size();

  // Warmup: touch every query once so the ToC cache is hot and the first
  // timed request does not pay the retrieval cost.
  for (const core::Query& q : working_set) (void)service.Predict(q);

  std::vector<std::vector<int64_t>> latencies(
      static_cast<size_t>(client_threads));
  std::atomic<int64_t> batch_size_sum{0};
  std::atomic<int> degraded{0};
  std::atomic<int64_t> cache_us_sum{0};
  std::atomic<int64_t> queue_us_sum{0};
  std::atomic<int64_t> window_us_sum{0};
  std::atomic<int64_t> compute_us_sum{0};
  std::atomic<int64_t> verify_us_sum{0};
  std::vector<std::thread> clients;
  clients.reserve(static_cast<size_t>(client_threads));
  Stopwatch wall;
  for (int c = 0; c < client_threads; ++c) {
    clients.emplace_back([&, c] {
      auto& lat = latencies[static_cast<size_t>(c)];
      lat.reserve(static_cast<size_t>(requests_per_client));
      // Deterministic per-client request stream.
      Rng rng(static_cast<uint64_t>(1000 + c));
      for (int i = 0; i < requests_per_client; ++i) {
        const size_t qi =
            hot_set > 0
                ? static_cast<size_t>(rng.UniformInt(
                      0, static_cast<int64_t>(span) - 1))
                : static_cast<size_t>(c * 41 + i * 13) % span;
        const serve::ServeResponse r = service.Predict(working_set[qi]);
        lat.push_back(r.latency_us);
        batch_size_sum.fetch_add(r.batch_size, std::memory_order_relaxed);
        if (r.degraded) degraded.fetch_add(1, std::memory_order_relaxed);
        cache_us_sum.fetch_add(r.cache_us, std::memory_order_relaxed);
        queue_us_sum.fetch_add(r.queue_us, std::memory_order_relaxed);
        window_us_sum.fetch_add(r.window_us, std::memory_order_relaxed);
        compute_us_sum.fetch_add(r.compute_us, std::memory_order_relaxed);
        verify_us_sum.fetch_add(r.verify_us, std::memory_order_relaxed);
      }
    });
  }
  for (auto& t : clients) t.join();
  const double wall_seconds = static_cast<double>(wall.ElapsedMicros()) * 1e-6;

  std::vector<int64_t> all;
  for (const auto& lat : latencies) all.insert(all.end(), lat.begin(), lat.end());
  std::sort(all.begin(), all.end());
  const int total = client_threads * requests_per_client;
  LoadResult result;
  result.throughput_qps = static_cast<double>(total) / wall_seconds;
  result.p50_us = Percentile(all, 0.50);
  result.p90_us = Percentile(all, 0.90);
  result.p95_us = Percentile(all, 0.95);
  result.p99_us = Percentile(all, 0.99);
  result.mean_batch_size =
      static_cast<double>(batch_size_sum.load(std::memory_order_relaxed)) / static_cast<double>(total);
  result.degraded = degraded.load(std::memory_order_relaxed);
  const double n = static_cast<double>(total);
  result.mean_cache_us = static_cast<double>(cache_us_sum.load(std::memory_order_relaxed)) / n;
  result.mean_queue_us = static_cast<double>(queue_us_sum.load(std::memory_order_relaxed)) / n;
  result.mean_window_us = static_cast<double>(window_us_sum.load(std::memory_order_relaxed)) / n;
  result.mean_compute_us = static_cast<double>(compute_us_sum.load(std::memory_order_relaxed)) / n;
  result.mean_verify_us = static_cast<double>(verify_us_sum.load(std::memory_order_relaxed)) / n;
  return result;
}

struct Record {
  std::string mode;       // "single" or "batched"
  std::string graph;      // "eager" or "static" (compiled-plan dispatch)
  std::string workload;   // "uniform" or "hotspot"
  std::string precision;  // "fp64", "bf16" or "int8" (DESIGN §6g)
  int client_threads = 0;
  int64_t batch_window_us = 0;
  int max_batch = 0;
  int64_t coalesced = 0;  // serve.batch_dedup delta for this run
  LoadResult load;
};

// --- Entity-sharded multi-process sweep (DESIGN §6i) -------------------------
//
// Spawns real chainsformer_serve shard processes over a checkpoint written
// to a temp dir, fronts them with an in-process serve::Router, and sweeps
// the shard count under a flash-crowd workload whose hot set exceeds one
// shard's ToC cache. On a single hardware thread the shards buy no compute
// parallelism — the speedup is aggregate cache capacity: one shard's LRU
// thrashes (every request re-pays chain retrieval), while at 8 shards each
// consistent-hashed slice fits its owner's cache and requests ride hits.
// A final run SIGKILLs one shard mid-stream and asserts the router's
// contract: every in-flight request completes (rerouted or degraded),
// nothing hangs.

/// One shard-count measurement through the router.
struct ShardRow {
  int shards = 0;
  int issued = 0;
  int completed = 0;
  int rerouted = 0;
  int degraded = 0;
  double throughput_qps = 0.0;
  double p50_us = 0.0;
  double p99_us = 0.0;
};

/// chainsformer_serve next to this binary (build/bench/../tools/), unless
/// --serve-binary overrides.
std::string ServeBinaryPath(const std::string& override_path) {
  if (!override_path.empty()) return override_path;
  char buf[4096];
  const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
  if (n <= 0) return "";
  buf[n] = '\0';
  std::string exe(buf);
  const size_t slash = exe.rfind('/');
  if (slash == std::string::npos) return "";
  const std::string dir = exe.substr(0, slash);
  const size_t parent = dir.rfind('/');
  if (parent == std::string::npos) return "";
  return dir.substr(0, parent) + "/tools/chainsformer_serve";
}

/// Binds an ephemeral listener just long enough to learn a free port.
int PickFreePort() {
  const int fd = net::ListenTcp(0);
  if (fd < 0) return -1;
  const int port = net::BoundPort(fd);
  net::CloseFd(fd);
  return port;
}

pid_t SpawnShard(const std::string& binary, const std::string& dir, int port,
                 int shards, int index, int cache_capacity) {
  std::vector<std::string> args = {
      binary,
      "--checkpoint=" + dir + "/model.cfsm",
      "--triples=" + dir + "/triples.tsv",
      "--numeric=" + dir + "/numeric.tsv",
      "--port=" + std::to_string(port),
      "--shards=" + std::to_string(shards),
      "--shard-index=" + std::to_string(index),
      "--cache-capacity=" + std::to_string(cache_capacity),
      "--serve-threads=2",
      "--batch-window-us=0",
      "--deadline-ms=0",
  };
  const pid_t pid = ::fork();
  if (pid != 0) return pid;
  // Child: shard logs go to the temp dir (useful when readiness times out).
  const std::string log = dir + "/shard_" + std::to_string(index) + ".log";
  std::freopen(log.c_str(), "w", stderr);
  std::freopen("/dev/null", "w", stdout);
  std::vector<char*> argv;
  argv.reserve(args.size() + 1);
  for (std::string& a : args) argv.push_back(a.data());
  argv.push_back(nullptr);
  ::execv(argv[0], argv.data());
  std::_Exit(127);  // execv failed
}

/// Probes {"cmd": "healthz"} on the shard's main port until it answers ok —
/// the same liveness path the router uses.
bool WaitShardReady(int port, int timeout_ms) {
  Stopwatch sw;
  while (sw.ElapsedMicros() < static_cast<int64_t>(timeout_ms) * 1000) {
    const int fd = net::ConnectTcp("127.0.0.1", port, 250);
    if (fd >= 0) {
      std::string buffer, line;
      const bool ok = net::SendLine(fd, "{\"cmd\": \"healthz\"}") &&
                      net::RecvLine(fd, &buffer, &line, 2000) &&
                      line.find("\"ok\": true") != std::string::npos;
      net::CloseFd(fd);
      if (ok) return true;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  return false;
}

void StopShards(std::vector<pid_t>& pids, int sig) {
  for (const pid_t pid : pids) {
    if (pid > 0) ::kill(pid, sig);
  }
  for (const pid_t pid : pids) {
    if (pid > 0) ::waitpid(pid, nullptr, 0);
  }
  pids.clear();
}

/// Drives `clients` threads of uniform-random hot-set requests through the
/// router. When `kill_pid` > 0, thread 0 SIGKILLs that shard process after
/// `kill_after` of its own requests — the flash-crowd shard-death scenario.
ShardRow RunRouterLoad(serve::Router& router,
                       const std::vector<std::string>& hot_entities,
                       const std::string& attribute, int clients,
                       int per_client, pid_t kill_pid = -1,
                       int kill_after = 0) {
  // Warmup outside the timed window: one pass over the hot set fills every
  // owning shard's ToC cache (or, at low shard counts, proves it cannot).
  for (size_t i = 0; i < hot_entities.size(); ++i) {
    (void)router.HandleLine("{\"entity\": \"" + hot_entities[i] +
                            "\", \"attribute\": \"" + attribute + "\"}");
  }
  std::vector<std::vector<int64_t>> latencies(static_cast<size_t>(clients));
  std::atomic<int> completed{0}, rerouted{0}, degraded{0};
  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(clients));
  Stopwatch wall;
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      auto& lat = latencies[static_cast<size_t>(c)];
      lat.reserve(static_cast<size_t>(per_client));
      Rng rng(static_cast<uint64_t>(2000 + c));
      for (int i = 0; i < per_client; ++i) {
        if (c == 0 && kill_pid > 0 && i == kill_after) ::kill(kill_pid, SIGKILL);
        const size_t qi = static_cast<size_t>(rng.UniformInt(
            0, static_cast<int64_t>(hot_entities.size()) - 1));
        const std::string line =
            "{\"id\": " + std::to_string(c * 100000 + i) + ", \"entity\": \"" +
            hot_entities[qi] + "\", \"attribute\": \"" + attribute + "\"}";
        Stopwatch req;
        const std::string response = router.HandleLine(line);
        lat.push_back(req.ElapsedMicros());
        std::string value;
        if (JsonField(response, "value", &value)) {
          completed.fetch_add(1, std::memory_order_relaxed);
        }
        if (response.find("\"rerouted\": true") != std::string::npos) {
          rerouted.fetch_add(1, std::memory_order_relaxed);
        }
        if (response.find("\"degraded\": true") != std::string::npos) {
          degraded.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  const double wall_seconds = static_cast<double>(wall.ElapsedMicros()) * 1e-6;

  std::vector<int64_t> all;
  for (const auto& lat : latencies) all.insert(all.end(), lat.begin(), lat.end());
  std::sort(all.begin(), all.end());
  ShardRow row;
  row.issued = clients * per_client;
  row.completed = completed.load(std::memory_order_relaxed);
  row.rerouted = rerouted.load(std::memory_order_relaxed);
  row.degraded = degraded.load(std::memory_order_relaxed);
  row.throughput_qps =
      static_cast<double>(clients * per_client) / wall_seconds;
  row.p50_us = Percentile(all, 0.50);
  row.p99_us = Percentile(all, 0.99);
  return row;
}

/// The multi-process sweep + kill scenario. Returns false (and records
/// nothing) when the serve binary cannot be found/started, so the in-process
/// cells above still land in the JSON.
bool RunShardSweep(FlagParser& flags, const kg::Dataset& dataset,
                   const bench::BenchOptions& options,
                   std::vector<ShardRow>* rows, ShardRow* kill_row,
                   int* cache_capacity_out, int* hot_set_out) {
  const std::string binary = ServeBinaryPath(flags.GetString("serve-binary"));
  if (binary.empty()) {
    std::fprintf(stderr, "shard sweep: cannot locate chainsformer_serve\n");
    return false;
  }
  const int cache_capacity =
      static_cast<int>(flags.GetInt("shard-cache-capacity", 96));
  const int hot_set = static_cast<int>(flags.GetInt("shard-hot-set", 512));
  const int clients = static_cast<int>(flags.GetInt("shard-clients", 6));
  const int per_client =
      static_cast<int>(flags.GetInt("shard-requests-per-client", 300));
  *cache_capacity_out = cache_capacity;
  *hot_set_out = hot_set;

  char dir_template[] = "/tmp/cf_shard_bench_XXXXXX";
  if (::mkdtemp(dir_template) == nullptr) {
    std::fprintf(stderr, "shard sweep: mkdtemp failed\n");
    return false;
  }
  const std::string dir(dir_template);
  // Entity/relation ids are assigned by first appearance in the TSVs, so
  // the bench trains on the *re-loaded* dataset — the exact dataset every
  // shard process will itself load — or the checkpoint's name table would
  // not line up with the shards' graphs.
  kg::SaveTsvDataset(dataset, dir + "/triples.tsv", dir + "/numeric.tsv");
  const kg::Dataset shard_dataset = kg::LoadTsvDataset(
      "serve", dir + "/triples.tsv", dir + "/numeric.tsv", options.seed);

  // A serving model tuned so the cache decides everything: paper-scale
  // walk fan-out (every miss re-walks and re-scores ~1k chains in the
  // hyperbolic filter — the expensive part) feeding a narrow encoder
  // (cheap hit). Training accuracy is irrelevant here, so its budget is
  // minimal. The per-shard knobs — cache entries, threads, batch window —
  // are IDENTICAL at every shard count; only aggregate capacity changes.
  core::ChainsFormerConfig config = bench::BenchConfig(options);
  config.num_walks = static_cast<int>(flags.GetInt("shard-num-walks", 2048));
  config.top_k = static_cast<int>(flags.GetInt("shard-top-k", 8));
  config.hidden_dim = static_cast<int>(flags.GetInt("shard-hidden-dim", 16));
  config.encoder_layers = 1;
  config.reasoner_layers = 1;
  config.num_heads = 2;
  config.epochs = 1;
  config.max_train_queries = 60;
  config.filter_pretrain_queries = 40;
  config.verbose = false;
  config.seed = options.seed;
  core::ChainsFormerModel model(shard_dataset, config);
  model.Train();
  if (!serve::SaveModel(model, dir + "/model.cfsm")) {
    std::fprintf(stderr, "shard sweep: checkpoint save failed\n");
    return false;
  }

  // Hot set: distinct entities strided across the graph, all hammering one
  // attribute. hot_set > cache_capacity guarantees a lone shard thrashes;
  // hot_set <= 8 * cache_capacity (with vnode-balance headroom) lets the
  // full fleet hold it.
  std::vector<std::string> hot_entities;
  const int64_t num_entities = shard_dataset.graph.num_entities();
  for (int i = 0; i < hot_set; ++i) {
    hot_entities.push_back(shard_dataset.graph.EntityName(
        static_cast<kg::EntityId>((static_cast<int64_t>(i) * 7919) % num_entities)));
  }
  const std::string attribute = shard_dataset.graph.AttributeName(0);

  auto launch_fleet = [&](int shards, std::vector<pid_t>* pids,
                          std::vector<int>* ports) {
    for (int i = 0; i < shards; ++i) {
      const int port = PickFreePort();
      if (port <= 0) return false;
      const pid_t pid =
          SpawnShard(binary, dir, port, shards, i, cache_capacity);
      if (pid < 0) return false;
      pids->push_back(pid);
      ports->push_back(port);
    }
    for (const int port : *ports) {
      if (!WaitShardReady(port, 60000)) {
        std::fprintf(stderr, "shard sweep: port %d never became ready\n", port);
        return false;
      }
    }
    return true;
  };
  auto make_router = [&](const std::vector<int>& ports) {
    serve::RouterOptions ro;
    ro.forward_timeout_ms = 10000;  // 1-shard thrash rounds are slow, not down
    ro.health_period_ms = 0;        // deterministic: no background probes
    std::vector<std::unique_ptr<serve::ShardBackend>> backends;
    for (const int port : ports) {
      backends.push_back(
          std::make_unique<serve::TcpShardBackend>("127.0.0.1", port));
    }
    auto router = std::make_unique<serve::Router>(std::move(backends), ro);
    router->CheckNow();
    return router;
  };

  for (const int shards : {1, 2, 4, 8}) {
    std::vector<pid_t> pids;
    std::vector<int> ports;
    if (!launch_fleet(shards, &pids, &ports)) {
      StopShards(pids, SIGKILL);
      return false;
    }
    auto router = make_router(ports);
    ShardRow row = RunRouterLoad(*router, hot_entities, attribute, clients,
                                 per_client);
    row.shards = shards;
    rows->push_back(row);
    std::printf(
        "shards=%d  %8.0f q/s  p50 %6.0fus  p99 %6.0fus  completed %d  "
        "rerouted %d  degraded %d\n",
        shards, row.throughput_qps, row.p50_us, row.p99_us, row.completed,
        row.rerouted, row.degraded);
    StopShards(pids, SIGTERM);
  }

  // Flash-crowd shard death at the full fleet: SIGKILL one shard mid-stream;
  // the router must answer every request anyway (rerouted along the ring or,
  // transiently, degraded) — completed == issued is the acceptance bar.
  {
    std::vector<pid_t> pids;
    std::vector<int> ports;
    if (!launch_fleet(8, &pids, &ports)) {
      StopShards(pids, SIGKILL);
      return false;
    }
    auto router = make_router(ports);
    ShardRow row = RunRouterLoad(*router, hot_entities, attribute, clients,
                                 per_client, pids[2], per_client / 4);
    row.shards = 8;
    *kill_row = row;
    std::printf(
        "shard-kill (8 shards, kill #2 mid-run): %8.0f q/s  completed %d/%d  "
        "rerouted %d  degraded %d\n",
        row.throughput_qps, row.completed, clients * per_client, row.rerouted,
        row.degraded);
    StopShards(pids, SIGTERM);
  }

  for (const char* name :
       {"/model.cfsm", "/triples.tsv", "/numeric.tsv", "/shard_0.log",
        "/shard_1.log", "/shard_2.log", "/shard_3.log", "/shard_4.log",
        "/shard_5.log", "/shard_6.log", "/shard_7.log"}) {
    std::remove((dir + name).c_str());
  }
  ::rmdir(dir.c_str());
  return true;
}

int Main(int argc, char** argv) {
  FlagParser flags(argc, argv);
  const bench::BenchOptions options = bench::DefaultOptions();
  const std::string out_path = flags.GetString("out", "BENCH_serve.json");
  const int requests_per_client =
      static_cast<int>(flags.GetInt("requests-per-client", 300));
  const int working_set_size = static_cast<int>(flags.GetInt("working-set", 64));
  const int hot_set = static_cast<int>(flags.GetInt("hot-set", 3));
  const int compute_threads =
      static_cast<int>(flags.GetInt("compute-threads", 0));
  const int repeats =
      std::max(1, static_cast<int>(flags.GetInt("repeats", 3)));
  std::vector<int> client_thread_counts;
  for (const auto& tok : Split(flags.GetString("client-threads", "1,2,4,8"), ',')) {
    if (!tok.empty()) {
      client_thread_counts.push_back(
          static_cast<int>(std::strtol(tok.c_str(), nullptr, 10)));
    }
  }
  std::vector<int64_t> batch_windows;
  for (const auto& tok :
       Split(flags.GetString("batch-windows-us", "50,200,1000"), ',')) {
    if (!tok.empty()) {
      batch_windows.push_back(std::strtoll(tok.c_str(), nullptr, 10));
    }
  }

  bench::PrintBanner("serving",
                     "micro-batched inference service vs single-request");

  // Throughput is weight-shape-dependent, not accuracy-dependent: one quick
  // epoch produces a realistic serving model without bench-dominating
  // training time. hidden_dim defaults above test scale (the batching win
  // grows with GEMM width; see bench_encoder).
  core::ChainsFormerConfig config = bench::BenchConfig(options);
  config.hidden_dim = static_cast<int>(flags.GetInt("hidden-dim", 64));
  config.epochs = static_cast<int>(flags.GetInt("epochs", 1));
  config.verbose = false;
  const kg::Dataset& dataset = bench::YagoDataset(options);
  core::ChainsFormerModel model(dataset, config);
  model.Train();

  // Hot working set drawn from held-out queries.
  std::vector<core::Query> working_set;
  for (const auto& t : bench::TestSample(dataset, working_set_size)) {
    working_set.push_back({t.entity, t.attribute});
  }

  // Quantized weights for the reduced-precision cells (DESIGN §6g). Built
  // once from the frozen model; mae_delta stays 0 (bench_quant records the
  // calibrated drift), so the serve-time accuracy gate accepts the store.
  const auto quant_store = std::make_shared<const graph::QuantStore>(
      graph::BuildQuantStore(model));

  auto* dedup_counter =
      metrics::MetricsRegistry::Global().GetCounter("serve.batch_dedup");
  std::vector<Record> records;
  auto run = [&](const std::string& mode, const std::string& graph,
                 const std::string& workload, int threads, int64_t window_us,
                 int max_batch, const std::string& precision = "fp64") {
    serve::ServeOptions so;
    so.batch_window_us = window_us;
    so.max_batch = max_batch;
    so.deadline_ms = 0;  // throughput run: measure the model path, not timeouts
    so.compute_threads = compute_threads;
    so.use_static_graph = graph == "static";
    graph::ParsePrecision(precision, &so.precision);
    if (so.precision == graph::Precision::kInt8) so.quant = quant_store;
    Record r;
    r.mode = mode;
    r.graph = graph;
    r.workload = workload;
    r.precision = precision;
    r.client_threads = threads;
    r.batch_window_us = window_us;
    r.max_batch = max_batch;
    for (int rep = 0; rep < repeats; ++rep) {
      const int64_t dedup_before = dedup_counter->Value();
      const LoadResult load =
          RunLoad(model, so, working_set, threads, requests_per_client,
                  workload == "hotspot" ? hot_set : 0);
      const int64_t coalesced = dedup_counter->Value() - dedup_before;
      if (rep == 0 || load.throughput_qps > r.load.throughput_qps) {
        r.load = load;
        r.coalesced = coalesced;
      }
    }
    records.push_back(r);
    std::printf(
        "%-8s %-7s %-5s %-8s clients=%d window=%5lldus max_batch=%-3d  "
        "%8.0f q/s  "
        "p50 %6.0fus  p90 %6.0fus  p99 %6.0fus  mean_batch %.2f  "
        "coalesced %lld  phases(q/w/c/v) %.0f/%.0f/%.0f/%.0fus\n",
        mode.c_str(), graph.c_str(), precision.c_str(), workload.c_str(),
        threads,
        static_cast<long long>(window_us), max_batch, r.load.throughput_qps,
        r.load.p50_us, r.load.p90_us, r.load.p99_us, r.load.mean_batch_size,
        static_cast<long long>(r.coalesced), r.load.mean_queue_us,
        r.load.mean_window_us, r.load.mean_compute_us, r.load.mean_verify_us);
    return r.load.throughput_qps;
  };

  const int64_t default_window = 200;
  double single_hot_at_max = 0.0, batched_hot_at_max = 0.0;
  double single_uni_at_max = 0.0, batched_uni_at_max = 0.0;
  for (const int threads : client_thread_counts) {
    for (const char* graph : {"eager", "static"}) {
      const double su = run("single", graph, "uniform", threads, 0, 1);
      const double bu =
          run("batched", graph, "uniform", threads, default_window, 32);
      const double sh = run("single", graph, "hotspot", threads, 0, 1);
      const double bh =
          run("batched", graph, "hotspot", threads, default_window, 32);
      if (std::string(graph) == "static") {
        single_uni_at_max = su;
        batched_uni_at_max = bu;
        single_hot_at_max = sh;
        batched_hot_at_max = bh;
        // Reduced-precision dimension (DESIGN §6g): the same shipping cell
        // (batched static dispatch) at bf16 and int8, so every client count
        // records the quantization speedup on both workloads.
        for (const char* precision : {"bf16", "int8"}) {
          run("batched", graph, "uniform", threads, default_window, 32,
              precision);
          run("batched", graph, "hotspot", threads, default_window, 32,
              precision);
        }
      }
    }
  }
  // Batch-window sweep at the highest client count (shipping config:
  // batched dispatch over the static graph).
  const int max_threads = client_thread_counts.back();
  for (const int64_t window : batch_windows) {
    if (window == default_window) continue;  // already measured above
    run("batched", "static", "hotspot", max_threads, window, 32);
  }

  std::printf("batched vs single (static, hotspot) at %d clients: %.2fx\n",
              max_threads, batched_hot_at_max / single_hot_at_max);
  std::printf("batched vs single (static, uniform) at %d clients: %.2fx\n",
              max_threads, batched_uni_at_max / single_uni_at_max);

  // int8 vs fp64 over the batched-static cells: the ISSUE acceptance bar is
  // that int8 wins QPS and p50 at EVERY client count on BOTH workloads, so
  // the recorded summary is the worst cell, not the best.
  auto batched_static = [&](const std::string& precision,
                            const std::string& workload,
                            int threads) -> const Record* {
    for (const Record& r : records) {
      if (r.mode == "batched" && r.graph == "static" &&
          r.precision == precision && r.workload == workload &&
          r.client_threads == threads && r.batch_window_us == default_window) {
        return &r;
      }
    }
    return nullptr;
  };
  double int8_min_qps_ratio = 1e18, int8_max_p50_ratio = 0.0;
  for (const int threads : client_thread_counts) {
    for (const char* workload : {"uniform", "hotspot"}) {
      const Record* fp64 = batched_static("fp64", workload, threads);
      const Record* int8 = batched_static("int8", workload, threads);
      if (fp64 == nullptr || int8 == nullptr) continue;
      const double qps_ratio =
          int8->load.throughput_qps / fp64->load.throughput_qps;
      const double p50_ratio = int8->load.p50_us / fp64->load.p50_us;
      std::printf("int8 vs fp64 (batched static, %s) at %d clients: "
                  "%.2fx qps, %.2fx p50\n",
                  workload, threads, qps_ratio, p50_ratio);
      int8_min_qps_ratio = std::min(int8_min_qps_ratio, qps_ratio);
      int8_max_p50_ratio = std::max(int8_max_p50_ratio, p50_ratio);
    }
  }

  // Entity-sharded multi-process sweep (--shard-sweep=false skips it, e.g.
  // when running bench_serve from an install without the serve tool).
  std::vector<ShardRow> shard_rows;
  ShardRow kill_row;
  int shard_cache_capacity = 0, shard_hot_set = 0;
  const bool shard_sweep_ok =
      flags.GetBool("shard-sweep", true) &&
      RunShardSweep(flags, dataset, options, &shard_rows, &kill_row,
                    &shard_cache_capacity, &shard_hot_set);
  double shard_speedup_8v1 = 0.0;
  if (shard_sweep_ok && shard_rows.size() >= 2 &&
      shard_rows.front().throughput_qps > 0.0) {
    shard_speedup_8v1 =
        shard_rows.back().throughput_qps / shard_rows.front().throughput_qps;
    std::printf("8 shards vs 1 shard (fixed per-shard cache): %.2fx\n",
                shard_speedup_8v1);
  }

  FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n  \"bench\": \"serve\",\n");
  std::fprintf(f, "  \"hidden_dim\": %d,\n  \"kernel_threads\": %d,\n",
               config.hidden_dim, options.kernel_threads);
  std::fprintf(f, "  \"hardware_threads\": %u,\n  \"compute_threads\": %d,\n",
               std::thread::hardware_concurrency(), compute_threads);
  std::fprintf(f, "  \"working_set\": %zu,\n  \"hot_set\": %d,\n",
               working_set.size(), hot_set);
  std::fprintf(f, "  \"requests_per_client\": %d,\n  \"repeats\": %d,\n",
               requests_per_client, repeats);
  std::fprintf(f,
               "  \"batched_vs_single_hotspot_at_%d_clients\": %.3f,\n",
               max_threads, batched_hot_at_max / single_hot_at_max);
  std::fprintf(f,
               "  \"batched_vs_single_uniform_at_%d_clients\": %.3f,\n",
               max_threads, batched_uni_at_max / single_uni_at_max);
  std::fprintf(f, "  \"int8_vs_fp64_min_qps_ratio\": %.3f,\n",
               int8_min_qps_ratio);
  std::fprintf(f, "  \"int8_vs_fp64_max_p50_ratio\": %.3f,\n",
               int8_max_p50_ratio);
  if (shard_sweep_ok) {
    std::fprintf(f, "  \"shard_cache_capacity\": %d,\n", shard_cache_capacity);
    std::fprintf(f, "  \"shard_hot_set\": %d,\n", shard_hot_set);
    std::fprintf(f, "  \"shard_speedup_8_vs_1\": %.3f,\n", shard_speedup_8v1);
    std::fprintf(f, "  \"shard_sweep\": [\n");
    for (size_t i = 0; i < shard_rows.size(); ++i) {
      const ShardRow& r = shard_rows[i];
      std::fprintf(f,
                   "    {\"shards\": %d, \"throughput_qps\": %.1f, "
                   "\"p50_us\": %.0f, \"p99_us\": %.0f, \"completed\": %d, "
                   "\"rerouted\": %d, \"degraded\": %d}%s\n",
                   r.shards, r.throughput_qps, r.p50_us, r.p99_us, r.completed,
                   r.rerouted, r.degraded,
                   i + 1 < shard_rows.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n");
    std::fprintf(f,
                 "  \"shard_kill\": {\"shards\": %d, \"throughput_qps\": %.1f, "
                 "\"p50_us\": %.0f, \"p99_us\": %.0f, \"completed\": %d, "
                 "\"issued\": %d, \"rerouted\": %d, \"degraded\": %d},\n",
                 kill_row.shards, kill_row.throughput_qps, kill_row.p50_us,
                 kill_row.p99_us, kill_row.completed, kill_row.issued,
                 kill_row.rerouted, kill_row.degraded);
  }
  std::fprintf(f, "  \"results\": [\n");
  for (size_t i = 0; i < records.size(); ++i) {
    const Record& r = records[i];
    std::fprintf(f,
                 "    {\"mode\": \"%s\", \"graph\": \"%s\", "
                 "\"workload\": \"%s\", \"precision\": \"%s\", "
                 "\"client_threads\": %d, "
                 "\"batch_window_us\": %lld, \"max_batch\": %d, "
                 "\"throughput_qps\": %.1f, \"p50_us\": %.0f, "
                 "\"p90_us\": %.0f, \"p95_us\": %.0f, \"p99_us\": %.0f, "
                 "\"mean_batch_size\": %.2f, \"coalesced\": %lld, "
                 "\"degraded\": %d, "
                 "\"mean_cache_us\": %.1f, \"mean_queue_us\": %.1f, "
                 "\"mean_window_us\": %.1f, \"mean_compute_us\": %.1f, "
                 "\"mean_verify_us\": %.1f}%s\n",
                 r.mode.c_str(), r.graph.c_str(), r.workload.c_str(),
                 r.precision.c_str(), r.client_threads,
                 static_cast<long long>(r.batch_window_us), r.max_batch,
                 r.load.throughput_qps, r.load.p50_us, r.load.p90_us,
                 r.load.p95_us, r.load.p99_us, r.load.mean_batch_size,
                 static_cast<long long>(r.coalesced), r.load.degraded,
                 r.load.mean_cache_us, r.load.mean_queue_us,
                 r.load.mean_window_us, r.load.mean_compute_us,
                 r.load.mean_verify_us,
                 i + 1 < records.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %zu records to %s\n", records.size(), out_path.c_str());
  return 0;
}

}  // namespace
}  // namespace chainsformer

int main(int argc, char** argv) { return chainsformer::Main(argc, argv); }
