// Tests for the process-wide metrics registry: lock-free counter semantics
// under contention, power-of-two histogram bucketing, and stable JSON
// serialization.

#include "util/metrics.h"

#include <cmath>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "test_json.h"

namespace chainsformer {
namespace metrics {
namespace {

TEST(MetricsRegistryTest, GetReturnsSameObjectForSameName) {
  MetricsRegistry reg;
  Counter* a = reg.GetCounter("x");
  Counter* b = reg.GetCounter("x");
  EXPECT_EQ(a, b);
  EXPECT_NE(a, reg.GetCounter("y"));
}

TEST(MetricsRegistryTest, CounterIncrementAndDelta) {
  MetricsRegistry reg;
  Counter* c = reg.GetCounter("c");
  EXPECT_EQ(c->Value(), 0);
  c->Increment();
  c->Increment(41);
  EXPECT_EQ(c->Value(), 42);
}

TEST(MetricsRegistryTest, ConcurrentIncrementsSumExactly) {
  MetricsRegistry reg;
  Counter* counter = reg.GetCounter("contended");
  Histogram* hist = reg.GetHistogram("contended_hist");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        counter->Increment();
        hist->Observe(static_cast<double>(t + 1));
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(counter->Value(), kThreads * kPerThread);
  EXPECT_EQ(hist->Count(), kThreads * kPerThread);

  // Sum/min/max survive the CAS loops exactly: every observed value is an
  // integer 1..8, each appearing kPerThread times.
  const MetricsSnapshot snap = reg.Snapshot();
  ASSERT_EQ(snap.histograms.size(), 1u);
  const HistogramSnapshot& h = snap.histograms[0];
  EXPECT_DOUBLE_EQ(h.min, 1.0);
  EXPECT_DOUBLE_EQ(h.max, 8.0);
  EXPECT_DOUBLE_EQ(h.sum, kPerThread * (1.0 + 2 + 3 + 4 + 5 + 6 + 7 + 8));
}

TEST(MetricsRegistryTest, GaugeLastWriteWins) {
  MetricsRegistry reg;
  Gauge* g = reg.GetGauge("g");
  g->Set(1.5);
  g->Set(-2.25);
  EXPECT_DOUBLE_EQ(g->Value(), -2.25);
}

TEST(HistogramTest, BucketBoundaries) {
  // Bucket 0: v <= 1 (including non-positive and NaN).
  EXPECT_EQ(Histogram::BucketIndex(-5.0), 0);
  EXPECT_EQ(Histogram::BucketIndex(0.0), 0);
  EXPECT_EQ(Histogram::BucketIndex(0.5), 0);
  EXPECT_EQ(Histogram::BucketIndex(1.0), 0);
  EXPECT_EQ(Histogram::BucketIndex(std::nan("")), 0);
  // Bucket i covers (2^(i-1), 2^i]: exact powers of two land in their own
  // bucket, anything above spills into the next.
  EXPECT_EQ(Histogram::BucketIndex(1.0001), 1);
  EXPECT_EQ(Histogram::BucketIndex(2.0), 1);
  EXPECT_EQ(Histogram::BucketIndex(2.0001), 2);
  EXPECT_EQ(Histogram::BucketIndex(4.0), 2);
  EXPECT_EQ(Histogram::BucketIndex(1024.0), 10);
  EXPECT_EQ(Histogram::BucketIndex(1025.0), 11);
  // Overflow: everything beyond 2^62 shares the last (+Inf) bucket.
  EXPECT_EQ(Histogram::BucketIndex(std::ldexp(1.0, 100)),
            Histogram::kNumBuckets - 1);
  EXPECT_EQ(Histogram::BucketIndex(std::numeric_limits<double>::infinity()),
            Histogram::kNumBuckets - 1);
  // UpperBound matches: bucket i's inclusive bound is 2^i.
  EXPECT_DOUBLE_EQ(Histogram::UpperBound(0), 1.0);
  EXPECT_DOUBLE_EQ(Histogram::UpperBound(10), 1024.0);
}

TEST(HistogramTest, EmptyHistogramReportsZeroMinMax) {
  MetricsRegistry reg;
  reg.GetHistogram("empty");
  const MetricsSnapshot snap = reg.Snapshot();
  ASSERT_EQ(snap.histograms.size(), 1u);
  EXPECT_EQ(snap.histograms[0].count, 0);
  EXPECT_DOUBLE_EQ(snap.histograms[0].min, 0.0);
  EXPECT_DOUBLE_EQ(snap.histograms[0].max, 0.0);
  EXPECT_TRUE(snap.histograms[0].buckets.empty());
}

TEST(MetricsRegistryTest, SnapshotIsSortedAndLooksUpCounters) {
  MetricsRegistry reg;
  reg.GetCounter("b.second")->Increment(2);
  reg.GetCounter("a.first")->Increment(1);
  const MetricsSnapshot snap = reg.Snapshot();
  ASSERT_EQ(snap.counters.size(), 2u);
  EXPECT_EQ(snap.counters[0].first, "a.first");
  EXPECT_EQ(snap.counters[1].first, "b.second");
  EXPECT_EQ(snap.CounterValue("b.second"), 2);
  EXPECT_EQ(snap.CounterValue("missing"), 0);
}

TEST(MetricsRegistryTest, ToJsonGolden) {
  MetricsRegistry reg;
  reg.GetCounter("pipeline.retrieval.calls")->Increment(3);
  reg.GetGauge("train.last_loss")->Set(0.25);
  Histogram* h = reg.GetHistogram("retrieval.toc_size");
  h->Observe(1.0);  // bucket 0 (le 1)
  h->Observe(3.0);  // bucket 2 (le 4)
  h->Observe(3.0);
  const std::string json = ToJson(reg.Snapshot());
  const std::string expected =
      "{\n"
      "  \"counters\": {\n"
      "    \"pipeline.retrieval.calls\": 3\n"
      "  },\n"
      "  \"gauges\": {\n"
      "    \"train.last_loss\": 0.25\n"
      "  },\n"
      "  \"histograms\": {\n"
      "    \"retrieval.toc_size\": {\"count\": 3, \"sum\": 7, \"min\": 1, "
      "\"max\": 3, \"buckets\": [{\"le\": 1, \"count\": 1}, "
      "{\"le\": 4, \"count\": 2}]}\n"
      "  }\n"
      "}\n";
  EXPECT_EQ(json, expected);
  EXPECT_TRUE(test_json::IsValidJson(json));
}

TEST(MetricsRegistryTest, EmptyRegistryJsonIsValid) {
  MetricsRegistry reg;
  const std::string json = ToJson(reg.Snapshot());
  EXPECT_TRUE(test_json::IsValidJson(json)) << json;
}

TEST(MetricsRegistryTest, OverflowBucketSerializesAsInfString) {
  MetricsRegistry reg;
  reg.GetHistogram("wide")->Observe(std::ldexp(1.0, 100));
  const std::string json = ToJson(reg.Snapshot());
  EXPECT_NE(json.find("\"le\": \"+Inf\""), std::string::npos) << json;
  EXPECT_TRUE(test_json::IsValidJson(json));
}

TEST(MetricsRegistryTest, SummaryTableListsEveryMetric) {
  MetricsRegistry reg;
  reg.GetCounter("kernels.tasks_dispatched")->Increment(7);
  reg.GetGauge("train.last_valid_nmae")->Set(0.125);
  reg.GetHistogram("encode.chain_length")->Observe(2.0);
  const std::string table = SummaryTable(reg.Snapshot());
  EXPECT_NE(table.find("kernels.tasks_dispatched"), std::string::npos);
  EXPECT_NE(table.find("train.last_valid_nmae"), std::string::npos);
  EXPECT_NE(table.find("encode.chain_length"), std::string::npos);
}

TEST(MetricsRegistryTest, GlobalRegistryIsASingleton) {
  EXPECT_EQ(&MetricsRegistry::Global(), &MetricsRegistry::Global());
  Counter* c = MetricsRegistry::Global().GetCounter("metrics_test.global");
  c->Increment();
  EXPECT_GE(MetricsRegistry::Global().Snapshot().CounterValue(
                "metrics_test.global"),
            1);
}

TEST(MetricsRegistryTest, ScopedTimerAccumulatesMicrosAndCalls) {
  MetricsRegistry reg;
  Counter* micros = reg.GetCounter("stage.micros");
  Counter* calls = reg.GetCounter("stage.calls");
  {
    ScopedTimer timer(micros, calls);
    // Busy-wait a little so the elapsed time is nonzero on coarse clocks.
    volatile double x = 0.0;
    for (int i = 0; i < 200000; ++i) x = x + 1.0;
  }
  EXPECT_GE(micros->Value(), 0);
  EXPECT_EQ(calls->Value(), 1);
  { ScopedTimer timer(micros); }  // null calls counter is fine
  EXPECT_EQ(calls->Value(), 1);
}

}  // namespace
}  // namespace metrics
}  // namespace chainsformer
