// Tests for the admin endpoint: status/Prometheus document shape without a
// live model (null service), and a real HTTP round-trip against an
// AdminServer bound to an ephemeral port.

#include "serve/admin.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <string>

#include <gtest/gtest.h>

namespace chainsformer {
namespace serve {
namespace {

/// Connects to 127.0.0.1:port, sends `request`, and returns the full
/// response (read to EOF — the server speaks HTTP/1.0 and closes).
std::string HttpRoundTrip(int port, const std::string& request) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return "";
  }
  size_t sent = 0;
  while (sent < request.size()) {
    ssize_t n = ::write(fd, request.data() + sent, request.size() - sent);
    if (n <= 0) break;
    sent += static_cast<size_t>(n);
  }
  std::string out;
  char buf[4096];
  ssize_t n;
  while ((n = ::read(fd, buf, sizeof(buf))) > 0) {
    out.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return out;
}

TEST(AdminSnapshotTest, StatusJsonWithoutServiceIsSingleLineJson) {
  const std::string json = StatusJson(nullptr);
  EXPECT_EQ(json.find('\n'), std::string::npos)
      << "statusz must stay single-line so it can ride an NDJSON stream";
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  // Core sections exist even with no model attached.
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"window\""), std::string::npos);
  EXPECT_NE(json.find("\"slo\""), std::string::npos);
  EXPECT_NE(json.find("\"deadline_miss_rate\""), std::string::npos);
  EXPECT_NE(json.find("\"degraded_by_cause\""), std::string::npos);
  EXPECT_NE(json.find("\"plan_verify_failures\""), std::string::npos);
}

TEST(AdminSnapshotTest, PrometheusTextWithoutServiceHasSloGauges) {
  const std::string text = PrometheusText(nullptr);
  EXPECT_NE(text.find("# TYPE cf_slo_deadline_miss_rate gauge"),
            std::string::npos);
  EXPECT_NE(text.find("cf_slo_degraded_cause_rate{cause=\"deadline\"}"),
            std::string::npos);
  // Every exposition line is either a comment or `name[{labels}] value`.
  EXPECT_EQ(text.back(), '\n');
  EXPECT_EQ(text.find("\n\n"), std::string::npos);
}

TEST(AdminServerTest, ServesStatusMetricsAndHealthOverHttp) {
  AdminServer server(/*port=*/0, /*service=*/nullptr);
  ASSERT_GT(server.port(), 0) << "ephemeral bind failed";

  const std::string statusz =
      HttpRoundTrip(server.port(), "GET /statusz HTTP/1.0\r\n\r\n");
  EXPECT_NE(statusz.find("HTTP/1.0 200"), std::string::npos);
  EXPECT_NE(statusz.find("Content-Type: application/json"),
            std::string::npos);
  EXPECT_NE(statusz.find("\"slo\""), std::string::npos);

  const std::string metrics =
      HttpRoundTrip(server.port(), "GET /metrics HTTP/1.0\r\n\r\n");
  EXPECT_NE(metrics.find("HTTP/1.0 200"), std::string::npos);
  EXPECT_NE(metrics.find("cf_slo_deadline_miss_rate"), std::string::npos);

  const std::string health =
      HttpRoundTrip(server.port(), "GET /healthz HTTP/1.0\r\n\r\n");
  EXPECT_NE(health.find("HTTP/1.0 200"), std::string::npos);
  EXPECT_NE(health.find("ok"), std::string::npos);

  const std::string missing =
      HttpRoundTrip(server.port(), "GET /nope HTTP/1.0\r\n\r\n");
  EXPECT_NE(missing.find("HTTP/1.0 404"), std::string::npos);
}

TEST(AdminServerTest, ServesSequentialScrapes) {
  AdminServer server(/*port=*/0, /*service=*/nullptr);
  ASSERT_GT(server.port(), 0);
  for (int i = 0; i < 3; ++i) {
    const std::string resp =
        HttpRoundTrip(server.port(), "GET /healthz HTTP/1.0\r\n\r\n");
    EXPECT_NE(resp.find("HTTP/1.0 200"), std::string::npos) << "scrape " << i;
  }
}

}  // namespace
}  // namespace serve
}  // namespace chainsformer
