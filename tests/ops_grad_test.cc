#include <functional>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "tensor/gradcheck.h"
#include "tensor/ops.h"
#include "tensor/tensor.h"
#include "util/rng.h"

namespace chainsformer {
namespace tensor {
namespace {

using UnaryFn = std::function<Tensor(const Tensor&)>;

struct UnaryCase {
  std::string name;
  UnaryFn fn;
  float lo;
  float hi;
};

class UnaryGradCheck : public ::testing::TestWithParam<UnaryCase> {};

TEST_P(UnaryGradCheck, MatchesFiniteDifferences) {
  const UnaryCase& c = GetParam();
  Rng rng(1234);
  Tensor x = Tensor::Rand({2, 3}, rng, c.lo, c.hi).set_requires_grad(true);
  auto fn = [&c](const std::vector<Tensor>& in) { return Sum(c.fn(in[0])); };
  const auto result = CheckGradients(fn, {x});
  EXPECT_TRUE(result.ok) << c.name << " max_rel_error=" << result.max_rel_error;
}

INSTANTIATE_TEST_SUITE_P(
    AllUnaryOps, UnaryGradCheck,
    ::testing::Values(
        UnaryCase{"relu", [](const Tensor& x) { return Relu(x); }, 0.2f, 2.0f},
        UnaryCase{"gelu", [](const Tensor& x) { return Gelu(x); }, -2.0f, 2.0f},
        UnaryCase{"tanh", [](const Tensor& x) { return Tanh(x); }, -2.0f, 2.0f},
        UnaryCase{"sigmoid", [](const Tensor& x) { return Sigmoid(x); }, -2.0f, 2.0f},
        UnaryCase{"exp", [](const Tensor& x) { return Exp(x); }, -1.0f, 1.0f},
        UnaryCase{"log", [](const Tensor& x) { return Log(x); }, 0.5f, 3.0f},
        UnaryCase{"sqrt", [](const Tensor& x) { return Sqrt(x); }, 0.5f, 3.0f},
        UnaryCase{"square", [](const Tensor& x) { return Square(x); }, -2.0f, 2.0f},
        UnaryCase{"abs", [](const Tensor& x) { return Abs(x); }, 0.3f, 2.0f},
        UnaryCase{"atanh", [](const Tensor& x) { return Atanh(x); }, -0.7f, 0.7f},
        UnaryCase{"acosh", [](const Tensor& x) { return Acosh(x); }, 1.3f, 3.0f},
        UnaryCase{"neg", [](const Tensor& x) { return Neg(x); }, -2.0f, 2.0f},
        UnaryCase{"addscalar",
                  [](const Tensor& x) { return AddScalar(x, 1.7f); }, -2.0f, 2.0f},
        UnaryCase{"mulscalar",
                  [](const Tensor& x) { return MulScalar(x, -0.6f); }, -2.0f, 2.0f},
        UnaryCase{"softmax", [](const Tensor& x) { return Square(Softmax(x)); },
                  -2.0f, 2.0f}),
    [](const ::testing::TestParamInfo<UnaryCase>& info) {
      return info.param.name;
    });

TEST(BinaryGradCheck, AddSubMulDivSameShape) {
  Rng rng(7);
  for (int which = 0; which < 4; ++which) {
    Tensor a = Tensor::Rand({2, 2}, rng, 0.5f, 2.0f).set_requires_grad(true);
    Tensor b = Tensor::Rand({2, 2}, rng, 0.5f, 2.0f).set_requires_grad(true);
    auto fn = [which](const std::vector<Tensor>& in) {
      switch (which) {
        case 0: return Sum(Add(in[0], in[1]));
        case 1: return Sum(Sub(in[0], in[1]));
        case 2: return Sum(Mul(in[0], in[1]));
        default: return Sum(Div(in[0], in[1]));
      }
    };
    const auto result = CheckGradients(fn, {a, b});
    EXPECT_TRUE(result.ok) << "binary op " << which
                           << " max_rel_error=" << result.max_rel_error;
  }
}

TEST(BinaryGradCheck, BroadcastLastDim) {
  Rng rng(11);
  Tensor a = Tensor::Rand({3, 4}, rng, -1.0f, 1.0f).set_requires_grad(true);
  Tensor b = Tensor::Rand({4}, rng, 0.5f, 1.5f).set_requires_grad(true);
  auto fn = [](const std::vector<Tensor>& in) {
    return Sum(Square(Mul(in[0], in[1])));
  };
  EXPECT_TRUE(CheckGradients(fn, {a, b}).ok);
}

TEST(BinaryGradCheck, BroadcastScalar) {
  Rng rng(13);
  Tensor a = Tensor::Rand({2, 3}, rng, -1.0f, 1.0f).set_requires_grad(true);
  Tensor s = Tensor::Rand({1}, rng, 0.5f, 1.5f).set_requires_grad(true);
  auto fn = [](const std::vector<Tensor>& in) {
    return Sum(Square(Add(in[0], in[1])));
  };
  EXPECT_TRUE(CheckGradients(fn, {a, s}).ok);
}

TEST(MatMulGradCheck, TwoDee) {
  Rng rng(17);
  Tensor a = Tensor::Rand({3, 4}, rng, -1.0f, 1.0f).set_requires_grad(true);
  Tensor b = Tensor::Rand({4, 2}, rng, -1.0f, 1.0f).set_requires_grad(true);
  auto fn = [](const std::vector<Tensor>& in) {
    return Sum(Square(MatMul(in[0], in[1])));
  };
  EXPECT_TRUE(CheckGradients(fn, {a, b}).ok);
}

TEST(MatMulGradCheck, Batched) {
  Rng rng(19);
  Tensor a = Tensor::Rand({2, 2, 3}, rng, -1.0f, 1.0f).set_requires_grad(true);
  Tensor b = Tensor::Rand({2, 3, 2}, rng, -1.0f, 1.0f).set_requires_grad(true);
  auto fn = [](const std::vector<Tensor>& in) {
    return Sum(Square(BatchMatMul(in[0], in[1])));
  };
  EXPECT_TRUE(CheckGradients(fn, {a, b}).ok);
}

TEST(ShapeOpsGradCheck, ReshapeTransposePermute) {
  Rng rng(23);
  Tensor a = Tensor::Rand({2, 3, 4}, rng, -1.0f, 1.0f).set_requires_grad(true);
  auto fn = [](const std::vector<Tensor>& in) {
    Tensor p = Permute3(in[0], 2, 0, 1);        // [4,2,3]
    Tensor r = Reshape(p, {4, 6});
    Tensor t = Transpose2D(r);                  // [6,4]
    return Sum(Square(t));
  };
  EXPECT_TRUE(CheckGradients(fn, {a}).ok);
}

TEST(ShapeOpsGradCheck, ConcatSliceGather) {
  Rng rng(29);
  Tensor a = Tensor::Rand({2, 3}, rng, -1.0f, 1.0f).set_requires_grad(true);
  Tensor b = Tensor::Rand({2, 3}, rng, -1.0f, 1.0f).set_requires_grad(true);
  auto fn = [](const std::vector<Tensor>& in) {
    Tensor c = Concat({in[0], in[1]}, 0);       // [4,3]
    Tensor g = Gather(c, {0, 3, 3});            // duplicated row exercises scatter-add
    Tensor s = SliceCols(g, 1, 3);
    return Sum(Square(s));
  };
  EXPECT_TRUE(CheckGradients(fn, {a, b}).ok);
}

TEST(LayerNormGradCheck, InputGammaBeta) {
  Rng rng(31);
  Tensor x = Tensor::Rand({3, 4}, rng, -1.0f, 1.0f).set_requires_grad(true);
  Tensor gamma = Tensor::Rand({4}, rng, 0.5f, 1.5f).set_requires_grad(true);
  Tensor beta = Tensor::Rand({4}, rng, -0.5f, 0.5f).set_requires_grad(true);
  auto fn = [](const std::vector<Tensor>& in) {
    return Sum(Square(LayerNormOp(in[0], in[1], in[2])));
  };
  const auto result = CheckGradients(fn, {x, gamma, beta}, 1e-2, 8e-2);
  EXPECT_TRUE(result.ok) << "max_rel_error=" << result.max_rel_error;
}

TEST(LossGradCheck, AllLosses) {
  Rng rng(37);
  Tensor p = Tensor::Rand({4}, rng, -1.0f, 1.0f).set_requires_grad(true);
  Tensor t = Tensor::Rand({4}, rng, -1.0f, 1.0f);
  for (int which = 0; which < 3; ++which) {
    auto fn = [which, &t](const std::vector<Tensor>& in) {
      switch (which) {
        case 0: return MseLoss(in[0], t);
        case 1: return L1Loss(in[0], t);
        default: return SmoothL1Loss(in[0], t, 0.5f);
      }
    };
    EXPECT_TRUE(CheckGradients(fn, {p}).ok) << "loss " << which;
  }
}

// --- Shape sweeps: the same gradchecks across a grid of tensor shapes -------

struct ShapeCase {
  std::string name;
  std::vector<int64_t> shape;
};

class ShapeSweepGradCheck : public ::testing::TestWithParam<ShapeCase> {};

TEST_P(ShapeSweepGradCheck, SoftmaxAndLayerNorm) {
  Rng rng(101);
  const auto& shape = GetParam().shape;
  Tensor x = Tensor::Rand(shape, rng, -1.5f, 1.5f).set_requires_grad(true);
  auto softmax_fn = [](const std::vector<Tensor>& in) {
    return Sum(Square(Softmax(in[0])));
  };
  EXPECT_TRUE(CheckGradients(softmax_fn, {x}).ok) << "softmax " << GetParam().name;

  const int64_t last = shape.back();
  Tensor x2 = Tensor::Rand(shape, rng, -1.5f, 1.5f).set_requires_grad(true);
  Tensor gamma = Tensor::Rand({last}, rng, 0.5f, 1.5f).set_requires_grad(true);
  Tensor beta = Tensor::Rand({last}, rng, -0.5f, 0.5f).set_requires_grad(true);
  auto ln_fn = [](const std::vector<Tensor>& in) {
    return Sum(Square(LayerNormOp(in[0], in[1], in[2])));
  };
  EXPECT_TRUE(CheckGradients(ln_fn, {x2, gamma, beta}, 1e-2, 1e-1).ok)
      << "layernorm " << GetParam().name;
}

TEST_P(ShapeSweepGradCheck, ElementwiseChain) {
  Rng rng(102);
  Tensor x = Tensor::Rand(GetParam().shape, rng, 0.2f, 1.2f).set_requires_grad(true);
  auto fn = [](const std::vector<Tensor>& in) {
    return Mean(Mul(Tanh(in[0]), Sigmoid(Sqrt(in[0]))));
  };
  EXPECT_TRUE(CheckGradients(fn, {x}).ok) << GetParam().name;
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ShapeSweepGradCheck,
    ::testing::Values(ShapeCase{"vec3", {3}}, ShapeCase{"vec8", {8}},
                      ShapeCase{"mat1x4", {1, 4}}, ShapeCase{"mat4x1", {4, 1}},
                      ShapeCase{"mat3x5", {3, 5}},
                      ShapeCase{"cube2x3x2", {2, 3, 2}},
                      ShapeCase{"cube1x1x6", {1, 1, 6}}),
    [](const ::testing::TestParamInfo<ShapeCase>& info) {
      return info.param.name;
    });

struct MatShapeCase {
  std::string name;
  int64_t m, k, n;
};

class MatMulShapeSweep : public ::testing::TestWithParam<MatShapeCase> {};

TEST_P(MatMulShapeSweep, Gradcheck) {
  Rng rng(103);
  const auto& p = GetParam();
  Tensor a = Tensor::Rand({p.m, p.k}, rng, -1.0f, 1.0f).set_requires_grad(true);
  Tensor b = Tensor::Rand({p.k, p.n}, rng, -1.0f, 1.0f).set_requires_grad(true);
  auto fn = [](const std::vector<Tensor>& in) {
    return Sum(Square(MatMul(in[0], in[1])));
  };
  EXPECT_TRUE(CheckGradients(fn, {a, b}).ok) << p.name;
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, MatMulShapeSweep,
    ::testing::Values(MatShapeCase{"square2", 2, 2, 2},
                      MatShapeCase{"tall", 5, 2, 3},
                      MatShapeCase{"wide", 2, 5, 2},
                      MatShapeCase{"rowvec", 1, 4, 3},
                      MatShapeCase{"colvec", 3, 4, 1},
                      MatShapeCase{"inner1", 3, 1, 3}),
    [](const ::testing::TestParamInfo<MatShapeCase>& info) {
      return info.param.name;
    });

TEST(CompositeGradCheck, SmallMlpLikeGraph) {
  Rng rng(41);
  Tensor x = Tensor::Rand({2, 3}, rng, -1.0f, 1.0f);
  Tensor w1 = Tensor::Rand({3, 4}, rng, -0.5f, 0.5f).set_requires_grad(true);
  Tensor b1 = Tensor::Rand({4}, rng, -0.1f, 0.1f).set_requires_grad(true);
  Tensor w2 = Tensor::Rand({4, 1}, rng, -0.5f, 0.5f).set_requires_grad(true);
  auto fn = [&x](const std::vector<Tensor>& in) {
    Tensor h = Gelu(Add(MatMul(x, in[0]), in[1]));
    return Sum(Square(MatMul(h, in[2])));
  };
  EXPECT_TRUE(CheckGradients(fn, {w1, b1, w2}).ok);
}

}  // namespace
}  // namespace tensor
}  // namespace chainsformer
