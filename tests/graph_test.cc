// Tests for src/graph: the eager-forward tracer, compiled-plan parity with
// the eager tape (the DESIGN §6f bitwise gate), zero-allocation steady-state
// execution, plan-cache bucketing, and the service's immediate-dispatch fix.

#include <atomic>
#include <cstdlib>
#include <memory>
#include <new>
#include <vector>

#include <gtest/gtest.h>

#include "core/chainsformer.h"
#include "graph/executor.h"
#include "graph/plan.h"
#include "graph/runtime.h"
#include "graph/trace.h"
#include "kg/synthetic.h"
#include "serve/service.h"
#include "tensor/op_observer.h"
#include "util/metrics.h"

// --- operator-new counting hook ----------------------------------------------
// Counts every scalar/array heap allocation in the process while armed. The
// zero-allocation test arms it around warmed PlanExecutor runs; everything
// else in the binary sees an unchanged (malloc-backed) allocator.

namespace {
std::atomic<int64_t> g_alloc_count{0};
std::atomic<bool> g_alloc_counting{false};

void* CountedAlloc(std::size_t n) {
  if (g_alloc_counting.load(std::memory_order_relaxed)) {
    g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  }
  void* p = std::malloc(n == 0 ? 1 : n);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
}  // namespace

void* operator new(std::size_t n) { return CountedAlloc(n); }
void* operator new[](std::size_t n) { return CountedAlloc(n); }
// The nothrow variants must be overridden too: libstdc++ temporary buffers
// (std::stable_sort) allocate through them, and mixing the default nothrow
// new with the free()-backed deletes below is an alloc-dealloc mismatch
// under AddressSanitizer.
void* operator new(std::size_t n, const std::nothrow_t&) noexcept {
  if (g_alloc_counting.load(std::memory_order_relaxed)) {
    g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  }
  return std::malloc(n == 0 ? 1 : n);
}
void* operator new[](std::size_t n, const std::nothrow_t&) noexcept {
  if (g_alloc_counting.load(std::memory_order_relaxed)) {
    g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  }
  return std::malloc(n == 0 ? 1 : n);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}

namespace chainsformer {
namespace graph {
namespace {

using core::ChainsFormerConfig;
using core::ChainsFormerModel;
using core::Query;
using core::TreeOfChains;

ChainsFormerConfig SmallConfig() {
  ChainsFormerConfig config;
  config.num_walks = 32;
  config.top_k = 8;
  config.hidden_dim = 16;
  config.filter_dim = 8;
  config.encoder_layers = 1;
  config.reasoner_layers = 1;
  config.num_heads = 2;
  config.epochs = 2;
  config.max_train_queries = 120;
  config.filter_pretrain_queries = 60;
  config.filter_pretrain_epochs = 1;
  config.seed = 13;
  config.verbose = false;
  return config;
}

/// One trained model per test binary (training costs seconds); read-only
/// after construction — the serving surface is const.
struct Trained {
  kg::Dataset dataset = kg::MakeYago15kLike({.scale = 0.08});
  ChainsFormerConfig config = SmallConfig();
  std::unique_ptr<ChainsFormerModel> model;

  explicit Trained(bool batched_encoder = true) {
    config.batched_encoder = batched_encoder;
    model = std::make_unique<ChainsFormerModel>(dataset, config);
    model->Train();
  }
};

Trained& Shared() {
  static Trained* trained = new Trained();
  return *trained;
}

std::vector<Query> HeldOutQueries(const kg::Dataset& ds, size_t at_least) {
  std::vector<Query> queries;
  for (const auto& t : ds.split.test) queries.push_back({t.entity, t.attribute});
  for (const auto& t : ds.split.valid) queries.push_back({t.entity, t.attribute});
  EXPECT_GE(queries.size(), at_least)
      << "synthetic split too small for the acceptance criterion";
  return queries;
}

int64_t CounterValue(const std::string& name) {
  return metrics::MetricsRegistry::Global().Snapshot().CounterValue(name);
}

Query FirstQueryWithChains(const Trained& t) {
  for (const Query& q : HeldOutQueries(t.dataset, 8)) {
    if (!t.model->RetrieveChains(q).empty()) return q;
  }
  ADD_FAILURE() << "no held-out query retrieved any chains";
  return Query{};
}

// --- Tracer ------------------------------------------------------------------

TEST(GraphTraceTest, TracerRecordsTheEagerForward) {
  Trained& t = Shared();
  const Query q = FirstQueryWithChains(t);
  const TreeOfChains chains = t.model->RetrieveChains(q);

  Tracer tracer;
  {
    tensor::ScopedOpObserver scope(&tracer);
    t.model->PredictOnChainSets({q}, {&chains});
  }
  ASSERT_FALSE(tracer.events().empty());
  // The batched encoder starts with the two embedding gathers.
  EXPECT_EQ(tracer.events()[0].op, "Gather");
  EXPECT_EQ(tracer.events()[1].op, "Gather");
  EXPECT_EQ(tracer.events()[2].op, "Add");
  // The reasoner finishes with the weighted reduction (Dot = Mul + Sum).
  const auto& events = tracer.events();
  EXPECT_EQ(events.back().op, "Sum");
  EXPECT_EQ(events[events.size() - 2].op, "Mul");
  EXPECT_EQ(FormatTraceEvent(events.back()), "Sum[1]");

  tracer.Clear();
  EXPECT_TRUE(tracer.events().empty());
  // Uninstalled: nothing records.
  t.model->PredictOnChainSets({q}, {&chains});
  EXPECT_TRUE(tracer.events().empty());
}

// The compiler's op skeleton must equal the trace of the eager forward at
// the same geometry — this is the cross-check the runtime applies before
// trusting a plan.
TEST(GraphPlanTest, CompiledSkeletonMatchesEagerTrace) {
  Trained& t = Shared();
  const Query q = FirstQueryWithChains(t);
  const TreeOfChains chains = t.model->RetrieveChains(q);
  int64_t max_tokens = 0;
  for (const auto& c : chains) {
    max_tokens = std::max<int64_t>(max_tokens, c.length() + 3);
  }

  Tracer tracer;
  {
    tensor::ScopedOpObserver scope(&tracer);
    t.model->PredictOnChainSets({q}, {&chains});
  }
  const Plan plan = CompilePlan(
      *t.model, static_cast<int64_t>(chains.size()), max_tokens);
  ASSERT_FALSE(plan.steps.empty());
  EXPECT_GT(plan.arena_floats, 0);
  ASSERT_EQ(plan.expected_events.size(), tracer.events().size());
  for (size_t i = 0; i < plan.expected_events.size(); ++i) {
    EXPECT_EQ(plan.expected_events[i], tracer.events()[i])
        << "op " << i << ": compiled "
        << FormatTraceEvent(plan.expected_events[i]) << " vs traced "
        << FormatTraceEvent(tracer.events()[i]);
  }
}

// --- Bitwise parity ----------------------------------------------------------

TEST(GraphRuntimeTest, CompiledMatchesEagerOnHeldOutQueries) {
  Trained& t = Shared();
  StaticGraphRuntime runtime(*t.model);
  const std::vector<Query> queries = HeldOutQueries(t.dataset, 100);
  size_t with_evidence = 0;
  for (size_t i = 0; i < queries.size(); ++i) {
    const TreeOfChains chains = t.model->RetrieveChains(queries[i]);
    const core::BatchPrediction eager =
        t.model->PredictOnChainSets({queries[i]}, {&chains})[0];
    const core::BatchPrediction compiled =
        runtime.Predict(queries[i], chains);
    ASSERT_EQ(compiled.value, eager.value) << "held-out query " << i;
    ASSERT_EQ(compiled.has_evidence, eager.has_evidence);
    if (compiled.has_evidence) ++with_evidence;
  }
  EXPECT_GT(with_evidence, 0u);
  // Every mismatch would have pinned its bucket to the eager path.
  EXPECT_EQ(CounterValue("plan.verify_failures"), 0);
}

// Same gate with the per-chain (non-batched) encoder: the trace skeleton
// differs from the batched plan, so the runtime skips the skeleton check and
// relies on the bitwise value gate (sound because batched == per-chain
// bitwise, the PR-4 invariant).
TEST(GraphRuntimeTest, CompiledMatchesPerChainEncoderEager) {
  Trained t(/*batched_encoder=*/false);
  StaticGraphRuntime runtime(*t.model);
  const std::vector<Query> queries = HeldOutQueries(t.dataset, 100);
  for (size_t i = 0; i < queries.size(); ++i) {
    const TreeOfChains chains = t.model->RetrieveChains(queries[i]);
    const core::BatchPrediction eager =
        t.model->PredictOnChainSets({queries[i]}, {&chains})[0];
    const core::BatchPrediction compiled =
        runtime.Predict(queries[i], chains);
    ASSERT_EQ(compiled.value, eager.value) << "held-out query " << i;
    ASSERT_EQ(compiled.has_evidence, eager.has_evidence);
  }
  EXPECT_EQ(CounterValue("plan.verify_failures"), 0);
}

// --- Zero allocations in steady state ----------------------------------------

TEST(GraphExecutorTest, WarmedExecutorRunsWithoutAllocating) {
  Trained& t = Shared();
  const Query q = FirstQueryWithChains(t);
  const TreeOfChains chains = t.model->RetrieveChains(q);
  int64_t max_tokens = 0;
  for (const auto& c : chains) {
    max_tokens = std::max<int64_t>(max_tokens, c.length() + 3);
  }
  auto plan = std::make_shared<const Plan>(CompilePlan(
      *t.model, static_cast<int64_t>(chains.size()), max_tokens));
  PlanExecutor executor(plan);
  // Warm up: first run may fault in lazily-allocated thread-local kernel
  // scratch; afterwards the executor owns all its working memory.
  const float warm = executor.RunNormalized(chains);

  g_alloc_count.store(0);
  g_alloc_counting.store(true);
  float v = 0.0f;
  for (int i = 0; i < 16; ++i) v = executor.RunNormalized(chains);
  g_alloc_counting.store(false);

  EXPECT_EQ(v, warm) << "executor is not deterministic";
  EXPECT_EQ(g_alloc_count.load(), 0)
      << "steady-state RunNormalized performed heap allocations";
}

TEST(GraphRuntimeTest, WarmedRuntimePredictRunsWithoutAllocating) {
  Trained& t = Shared();
  StaticGraphRuntime runtime(*t.model);
  const Query q = FirstQueryWithChains(t);
  const TreeOfChains chains = t.model->RetrieveChains(q);
  // First call compiles + verifies the bucket; second call warms the pool.
  const core::BatchPrediction first = runtime.Predict(q, chains);
  runtime.Predict(q, chains);

  g_alloc_count.store(0);
  g_alloc_counting.store(true);
  core::BatchPrediction r;
  for (int i = 0; i < 16; ++i) r = runtime.Predict(q, chains);
  g_alloc_counting.store(false);

  EXPECT_EQ(r.value, first.value);
  EXPECT_EQ(g_alloc_count.load(), 0)
      << "steady-state Predict performed heap allocations";
}

// --- Plan cache --------------------------------------------------------------

TEST(GraphRuntimeTest, BucketMissRetracesAndHitReuses) {
  Trained& t = Shared();
  StaticGraphRuntime runtime(*t.model);

  // Two chain sets with different chain counts occupy different buckets
  // (k is exact in the bucket key). top_k retrieval makes most queries the
  // same size, so the second geometry is the first minus its last chain.
  const Query a = FirstQueryWithChains(t);
  const TreeOfChains chains_a = t.model->RetrieveChains(a);
  ASSERT_GE(chains_a.size(), 2u);
  const Query b = a;
  TreeOfChains chains_b(chains_a.begin(), chains_a.end() - 1);

  const int64_t misses0 = CounterValue("plan.cache_misses");
  const int64_t hits0 = CounterValue("plan.cache_hits");
  const double arena0 =
      metrics::MetricsRegistry::Global().GetGauge("plan.arena_bytes")->Value();

  runtime.Predict(a, chains_a);  // miss: trace + compile + verify
  EXPECT_EQ(CounterValue("plan.cache_misses") - misses0, 1);
  EXPECT_EQ(CounterValue("plan.cache_hits") - hits0, 0);

  runtime.Predict(a, chains_a);  // hit: warmed plan
  runtime.Predict(a, chains_a);
  EXPECT_EQ(CounterValue("plan.cache_misses") - misses0, 1);
  EXPECT_EQ(CounterValue("plan.cache_hits") - hits0, 2);

  runtime.Predict(b, chains_b);  // different k: bucket miss, retrace
  EXPECT_EQ(CounterValue("plan.cache_misses") - misses0, 2);
  EXPECT_EQ(CounterValue("plan.cache_hits") - hits0, 2);

  const double arena1 =
      metrics::MetricsRegistry::Global().GetGauge("plan.arena_bytes")->Value();
  EXPECT_GT(arena1, arena0) << "compiled plans did not report arena bytes";
}

// --- Service integration -----------------------------------------------------

// With a wide coalescing window but no other request arriving, the
// dispatcher must answer immediately instead of sleeping out the window
// (the uniform-workload regression; counted by serve.immediate_dispatch).
TEST(GraphServiceTest, IdleQueueDispatchesImmediately) {
  Trained& t = Shared();
  serve::ServeOptions options;
  options.batch_window_us = 300000;  // 300 ms — unmissable if waited out
  options.deadline_ms = 0;
  serve::InferenceService service(*t.model, options);
  const Query q = FirstQueryWithChains(t);

  const int64_t immediate0 = CounterValue("serve.immediate_dispatch");
  const serve::ServeResponse r = service.Predict(q);
  EXPECT_EQ(r.source, "model");
  EXPECT_EQ(r.value, t.model->Predict(q));
  EXPECT_LT(r.latency_us, 150000) << "dispatcher slept out the batch window";
  EXPECT_GE(CounterValue("serve.immediate_dispatch") - immediate0, 1);
}

// The service's static-graph path answers bitwise-identically to the eager
// model, and the escape hatch (use_static_graph = false) still works.
TEST(GraphServiceTest, StaticGraphServiceMatchesEagerService) {
  Trained& t = Shared();
  std::vector<Query> queries = HeldOutQueries(t.dataset, 16);
  queries.resize(16);

  serve::ServeOptions on;
  on.batch_window_us = 0;
  on.deadline_ms = 0;
  on.use_static_graph = true;
  serve::ServeOptions off = on;
  off.use_static_graph = false;

  std::vector<serve::ServeResponse> compiled, eager;
  {
    serve::InferenceService service(*t.model, on);
    for (const Query& q : queries) compiled.push_back(service.Predict(q));
  }
  {
    serve::InferenceService service(*t.model, off);
    for (const Query& q : queries) eager.push_back(service.Predict(q));
  }
  for (size_t i = 0; i < queries.size(); ++i) {
    EXPECT_EQ(compiled[i].value, eager[i].value) << "query " << i;
    EXPECT_EQ(compiled[i].degraded, eager[i].degraded);
  }
}

}  // namespace
}  // namespace graph
}  // namespace chainsformer
