#include "core/query_retrieval.h"

#include <set>

#include <gtest/gtest.h>

#include "kg/synthetic.h"

namespace chainsformer {
namespace core {
namespace {

class RetrievalTest : public ::testing::Test {
 protected:
  static const kg::Dataset& Data() {
    static const kg::Dataset* ds =
        new kg::Dataset(kg::MakeYago15kLike({.scale = 0.05}));
    return *ds;
  }
  static const kg::NumericIndex& TrainIndex() {
    static const kg::NumericIndex* idx =
        new kg::NumericIndex(Data().split.train, Data().graph.num_entities());
    return *idx;
  }
  static Query SomeQuery() {
    const auto& t = Data().split.test.front();
    return {t.entity, t.attribute};
  }
};

TEST_F(RetrievalTest, ChainsRespectConfiguredBounds) {
  QueryRetrieval retrieval(Data().graph, TrainIndex(), 3, 64);
  Rng rng(1);
  const TreeOfChains toc = retrieval.Retrieve(SomeQuery(), rng);
  EXPECT_LE(toc.size(), 64u);
  EXPECT_GT(toc.size(), 0u);
  for (const auto& c : toc) {
    EXPECT_GE(c.length(), 1);
    EXPECT_LE(c.length(), 3);
    EXPECT_EQ(c.query_attribute, SomeQuery().attribute);
  }
}

TEST_F(RetrievalTest, ChainPathsActuallyExistInGraph) {
  // Walk each chain back from its source entity using the stored relations;
  // the path must exist and end at the query entity.
  QueryRetrieval retrieval(Data().graph, TrainIndex(), 3, 32);
  Rng rng(2);
  const Query q = SomeQuery();
  const TreeOfChains toc = retrieval.Retrieve(q, rng);
  ASSERT_GT(toc.size(), 0u);
  for (const auto& c : toc) {
    std::set<kg::EntityId> frontier{c.source_entity};
    for (kg::RelationId r : c.relations) {
      std::set<kg::EntityId> next;
      for (kg::EntityId e : frontier) {
        for (const auto& edge : Data().graph.Neighbors(e)) {
          if (edge.relation == r) next.insert(edge.neighbor);
        }
      }
      frontier.swap(next);
      ASSERT_FALSE(frontier.empty());
    }
    EXPECT_TRUE(frontier.count(q.entity) > 0);
  }
}

TEST_F(RetrievalTest, SourceValueMatchesTrainIndex) {
  QueryRetrieval retrieval(Data().graph, TrainIndex(), 3, 32);
  Rng rng(3);
  const TreeOfChains toc = retrieval.Retrieve(SomeQuery(), rng);
  for (const auto& c : toc) {
    double v = 0.0;
    ASSERT_TRUE(TrainIndex().Get(c.source_entity, c.source_attribute, &v));
    EXPECT_DOUBLE_EQ(v, c.source_value);
  }
}

TEST_F(RetrievalTest, NeverUsesQueryTripleItself) {
  // Source entity differs from the query entity for every chain (walks are
  // cycle-free with length >= 1), so the held-out value cannot leak.
  QueryRetrieval retrieval(Data().graph, TrainIndex(), 3, 64);
  Rng rng(4);
  for (int i = 0; i < 5; ++i) {
    const auto& t = Data().split.test[static_cast<size_t>(i)];
    const TreeOfChains toc = retrieval.Retrieve({t.entity, t.attribute}, rng);
    for (const auto& c : toc) EXPECT_NE(c.source_entity, t.entity);
  }
}

TEST_F(RetrievalTest, DeterministicGivenRngState) {
  QueryRetrieval retrieval(Data().graph, TrainIndex(), 3, 32);
  Rng rng1(5), rng2(5);
  const TreeOfChains a = retrieval.Retrieve(SomeQuery(), rng1);
  const TreeOfChains b = retrieval.Retrieve(SomeQuery(), rng2);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_TRUE(a[i].SamePattern(b[i]));
    EXPECT_EQ(a[i].source_entity, b[i].source_entity);
  }
}

TEST_F(RetrievalTest, SameAttributeModeFiltersSources) {
  QueryRetrieval retrieval(Data().graph, TrainIndex(), 3, 64);
  Rng rng(6);
  const Query q = SomeQuery();
  const TreeOfChains toc = retrieval.RetrieveSameAttribute(q, rng);
  for (const auto& c : toc) EXPECT_EQ(c.source_attribute, q.attribute);
}

TEST_F(RetrievalTest, OneHopModeOnlyLengthOne) {
  QueryRetrieval retrieval(Data().graph, TrainIndex(), 1, 32);
  Rng rng(7);
  const TreeOfChains toc = retrieval.Retrieve(SomeQuery(), rng);
  for (const auto& c : toc) EXPECT_EQ(c.length(), 1);
}

TEST_F(RetrievalTest, StrategiesProduceValidChains) {
  for (RetrievalStrategy strategy :
       {RetrievalStrategy::kUniform, RetrievalStrategy::kDegreeWeighted,
        RetrievalStrategy::kEvidenceBiased}) {
    QueryRetrieval retrieval(Data().graph, TrainIndex(), 3, 32, strategy);
    Rng rng(8);
    const TreeOfChains toc = retrieval.Retrieve(SomeQuery(), rng);
    EXPECT_GT(toc.size(), 0u);
    for (const auto& c : toc) {
      EXPECT_GE(c.length(), 1);
      EXPECT_LE(c.length(), 3);
      double v = 0.0;
      EXPECT_TRUE(TrainIndex().Get(c.source_entity, c.source_attribute, &v));
    }
  }
}

TEST_F(RetrievalTest, EvidenceBiasFindsAtLeastAsManyChains) {
  QueryRetrieval uniform(Data().graph, TrainIndex(), 3, 64,
                         RetrievalStrategy::kUniform);
  QueryRetrieval biased(Data().graph, TrainIndex(), 3, 64,
                        RetrievalStrategy::kEvidenceBiased);
  double uniform_total = 0.0, biased_total = 0.0;
  for (int i = 0; i < 20; ++i) {
    const auto& t = Data().split.test[static_cast<size_t>(i) %
                                      Data().split.test.size()];
    Rng rng_u(100 + i), rng_b(100 + i);
    uniform_total += static_cast<double>(
        uniform.Retrieve({t.entity, t.attribute}, rng_u).size());
    biased_total += static_cast<double>(
        biased.Retrieve({t.entity, t.attribute}, rng_b).size());
  }
  // Evidence-seeking walks should not find fewer chains on average.
  EXPECT_GE(biased_total, uniform_total * 0.9);
}

TEST_F(RetrievalTest, DeduplicatesIdenticalChains) {
  QueryRetrieval retrieval(Data().graph, TrainIndex(), 3, 128);
  Rng rng(9);
  const TreeOfChains toc = retrieval.Retrieve(SomeQuery(), rng);
  std::set<std::tuple<kg::EntityId, kg::AttributeId, std::string>> seen;
  for (const auto& c : toc) {
    std::string rel_key;
    for (auto r : c.relations) rel_key += std::to_string(r) + ",";
    EXPECT_TRUE(
        seen.insert({c.source_entity, c.source_attribute, rel_key}).second)
        << "duplicate chain retrieved";
  }
}

TEST(CountChainsTest, MatchesManualCountOnToyGraph) {
  const kg::Dataset ds = kg::MakeToyDataset();
  // Use ALL numeric triples so the toy count is deterministic.
  kg::NumericIndex idx(ds.graph.numerical_triples(), ds.graph.num_entities());
  const kg::EntityId alice = ds.graph.FindEntity("alice");
  // 1 hop from alice: bob (birth), rome (lat) -> 2 chains.
  EXPECT_EQ(QueryRetrieval::CountChains(ds.graph, idx, alice, 1), 2);
  // 2 hops adds carol (via bob) and milan (via rome) -> 4 total.
  EXPECT_EQ(QueryRetrieval::CountChains(ds.graph, idx, alice, 2), 4);
  // 3 hops adds dave (via bob-carol) and milan-via-rome-near... milan already
  // counted per path: paths are distinct chains. From alice: sibling,sibling,
  // sibling->dave(birth)=1; born_in,near->milan already at hop2; hop3 paths:
  // alice-bob-carol-dave (birth), alice-rome-milan-dave? milan--born_in_inv->
  // dave (birth). So +2.
  EXPECT_EQ(QueryRetrieval::CountChains(ds.graph, idx, alice, 3), 6);
}

TEST(CountChainsTest, CapBoundsWork) {
  const kg::Dataset ds = kg::MakeToyDataset();
  kg::NumericIndex idx(ds.graph.numerical_triples(), ds.graph.num_entities());
  const kg::EntityId alice = ds.graph.FindEntity("alice");
  EXPECT_EQ(QueryRetrieval::CountChains(ds.graph, idx, alice, 3, 3), 3);
}

TEST(CountChainsTest, GrowsWithHops) {
  const kg::Dataset ds = kg::MakeYago15kLike({.scale = 0.05});
  kg::NumericIndex idx(ds.split.train, ds.graph.num_entities());
  const kg::EntityId e = ds.split.test.front().entity;
  const int64_t h1 = QueryRetrieval::CountChains(ds.graph, idx, e, 1);
  const int64_t h2 = QueryRetrieval::CountChains(ds.graph, idx, e, 2);
  const int64_t h3 = QueryRetrieval::CountChains(ds.graph, idx, e, 3);
  EXPECT_LE(h1, h2);
  EXPECT_LE(h2, h3);
}

TEST(PatternStringTest, FormatsLikeTableV) {
  kg::KnowledgeGraph g;
  g.AddEntity("x");
  g.AddEntity("y");
  const auto sibling = g.AddRelation("sibling");
  const auto birth = g.AddAttribute("birth");
  g.AddTriple(0, sibling, 1);
  g.AddNumeric(0, birth, 1950);
  g.Finalize();
  RAChain chain;
  chain.source_attribute = birth;
  chain.query_attribute = birth;
  // Source-to-query relation "sibling" means the query-side traversal used
  // sibling_inv's inverse = sibling.
  chain.relations = {kg::KnowledgeGraph::InverseRelation(sibling)};
  chain.source_value = 1950;
  chain.source_entity = 0;
  EXPECT_EQ(chain.PatternString(g), "(sibling, birth)");
}

}  // namespace
}  // namespace core
}  // namespace chainsformer
