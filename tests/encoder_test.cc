#include "core/chain_encoder.h"

#include <cmath>

#include <gtest/gtest.h>

#include "tensor/ops.h"

namespace chainsformer {
namespace core {
namespace {

TEST(Float64BitsTest, KnownPatterns) {
  // 0.0 is the all-zero bit pattern.
  const auto zero = EncodeFloat64Bits(0.0);
  ASSERT_EQ(zero.size(), 64u);
  for (float b : zero) EXPECT_EQ(b, 0.0f);

  // -0.0 sets only the sign bit (MSB first).
  const auto neg_zero = EncodeFloat64Bits(-0.0);
  EXPECT_EQ(neg_zero[0], 1.0f);
  for (size_t i = 1; i < 64; ++i) EXPECT_EQ(neg_zero[i], 0.0f);

  // 1.0 = 0x3FF0000000000000: sign 0, exponent 0b01111111111.
  const auto one = EncodeFloat64Bits(1.0);
  EXPECT_EQ(one[0], 0.0f);
  EXPECT_EQ(one[1], 0.0f);
  for (size_t i = 2; i <= 11; ++i) EXPECT_EQ(one[i], 1.0f) << i;
  for (size_t i = 12; i < 64; ++i) EXPECT_EQ(one[i], 0.0f) << i;
}

TEST(Float64BitsTest, SignBitTracksSign) {
  EXPECT_EQ(EncodeFloat64Bits(3.75)[0], 0.0f);
  EXPECT_EQ(EncodeFloat64Bits(-3.75)[0], 1.0f);
}

TEST(Float64BitsTest, AllBitsBinary) {
  for (double v : {1.81, -123456.789, 3.1e9, 1e-12}) {
    for (float b : EncodeFloat64Bits(v)) {
      EXPECT_TRUE(b == 0.0f || b == 1.0f);
    }
  }
}

TEST(LogFeaturesTest, StructureAndBounds) {
  const auto f = EncodeLogFeatures(-100.0);
  ASSERT_EQ(f.size(), 64u);
  EXPECT_EQ(f[0], -1.0f);  // sign
  EXPECT_GT(f[1], 0.0f);   // log magnitude
  for (size_t i = 2; i < 64; ++i) {
    EXPECT_GE(f[i], -1.0f);
    EXPECT_LE(f[i], 1.0f);
  }
}

TEST(LogFeaturesTest, DistinguishesMagnitudes) {
  const auto a = EncodeLogFeatures(1.81);
  const auto b = EncodeLogFeatures(3.1e9);
  double diff = 0.0;
  for (size_t i = 0; i < 64; ++i) diff += std::fabs(a[i] - b[i]);
  EXPECT_GT(diff, 1.0);
}

class ChainEncoderTest : public ::testing::Test {
 protected:
  static constexpr int64_t kNumRelIds = 10;
  static constexpr int64_t kNumAttrs = 4;

  static ChainsFormerConfig Config(EncoderType type, bool numerical_aware) {
    ChainsFormerConfig c;
    c.hidden_dim = 16;
    c.encoder_layers = 1;
    c.num_heads = 2;
    c.encoder_type = type;
    c.use_numerical_aware = numerical_aware;
    return c;
  }

  static RAChain SomeChain() {
    RAChain c;
    c.source_attribute = 1;
    c.query_attribute = 2;
    c.relations = {3, 5};
    c.source_value = 1975.0;
    c.source_entity = 0;
    return c;
  }
};

TEST_F(ChainEncoderTest, TokenVocabularyLayout) {
  Rng rng(1);
  ChainEncoder enc(kNumRelIds, kNumAttrs, Config(EncoderType::kTransformer, true),
                   rng);
  EXPECT_EQ(enc.RelationToken(3), 3);
  EXPECT_EQ(enc.AttributeToken(1), kNumRelIds + 1);
  EXPECT_EQ(enc.EndToken(), kNumRelIds + kNumAttrs);
}

TEST_F(ChainEncoderTest, EncodeShapeAndDeterminism) {
  Rng rng(2);
  ChainEncoder enc(kNumRelIds, kNumAttrs, Config(EncoderType::kTransformer, true),
                   rng);
  const RAChain c = SomeChain();
  tensor::Tensor a = enc.Encode(c);
  tensor::Tensor b = enc.Encode(c);
  EXPECT_EQ(a.numel(), 16);
  EXPECT_EQ(a.data(), b.data());
}

TEST_F(ChainEncoderTest, ValueChangesRepresentationWhenNumericalAware) {
  Rng rng(3);
  ChainEncoder enc(kNumRelIds, kNumAttrs, Config(EncoderType::kTransformer, true),
                   rng);
  RAChain c = SomeChain();
  tensor::Tensor a = enc.Encode(c);
  c.source_value = 42.0;
  tensor::Tensor b = enc.Encode(c);
  double diff = 0.0;
  for (int64_t i = 0; i < a.numel(); ++i) diff += std::fabs(a.at(i) - b.at(i));
  EXPECT_GT(diff, 1e-4);
}

TEST_F(ChainEncoderTest, ValueIgnoredWithoutNumericalAware) {
  Rng rng(4);
  ChainEncoder enc(kNumRelIds, kNumAttrs, Config(EncoderType::kTransformer, false),
                   rng);
  RAChain c = SomeChain();
  tensor::Tensor a = enc.Encode(c);
  c.source_value = 42.0;
  tensor::Tensor b = enc.Encode(c);
  EXPECT_EQ(a.data(), b.data());
}

TEST_F(ChainEncoderTest, AllEncoderVariantsProduceFiniteOutput) {
  for (EncoderType type :
       {EncoderType::kTransformer, EncoderType::kLstm, EncoderType::kMean}) {
    Rng rng(5);
    ChainEncoder enc(kNumRelIds, kNumAttrs, Config(type, true), rng);
    tensor::Tensor out = enc.Encode(SomeChain());
    EXPECT_EQ(out.numel(), 16);
    for (float v : out.data()) EXPECT_TRUE(std::isfinite(v));
  }
}

TEST_F(ChainEncoderTest, DifferentChainsDifferentEncodings) {
  Rng rng(6);
  ChainEncoder enc(kNumRelIds, kNumAttrs, Config(EncoderType::kTransformer, true),
                   rng);
  RAChain a = SomeChain();
  RAChain b = SomeChain();
  b.relations = {5, 3};  // order matters for sequential reasoning
  tensor::Tensor ea = enc.Encode(a);
  tensor::Tensor eb = enc.Encode(b);
  double diff = 0.0;
  for (int64_t i = 0; i < ea.numel(); ++i) diff += std::fabs(ea.at(i) - eb.at(i));
  EXPECT_GT(diff, 1e-4);
}

TEST_F(ChainEncoderTest, GradientsFlowToTokenTable) {
  Rng rng(7);
  ChainEncoder enc(kNumRelIds, kNumAttrs, Config(EncoderType::kTransformer, true),
                   rng);
  tensor::Tensor out = enc.Encode(SomeChain());
  tensor::Tensor loss = tensor::Sum(tensor::Square(out));
  loss.Backward();
  double total = 0.0;
  for (const auto& p : enc.Parameters()) {
    for (float g : p.grad()) total += std::fabs(g);
  }
  EXPECT_GT(total, 0.0);
}

}  // namespace
}  // namespace core
}  // namespace chainsformer
