// Additional tensor-op coverage: rank-3 slicing/concat, broadcast corners,
// numerical identities, and grad-accumulation across shared subgraphs.

#include <cmath>

#include <gtest/gtest.h>

#include "tensor/ops.h"
#include "tensor/tensor.h"
#include "util/rng.h"

namespace chainsformer {
namespace tensor {
namespace {

TEST(OpsExtraTest, ConcatRank3LastAxis) {
  Rng rng(1);
  Tensor a = Tensor::Randn({2, 2, 3}, rng);
  Tensor b = Tensor::Randn({2, 2, 1}, rng);
  Tensor c = Concat({a, b}, 2);
  EXPECT_EQ(c.size(2), 4);
  EXPECT_FLOAT_EQ(c.at(1, 1, 3), b.at(1, 1, 0));
  EXPECT_FLOAT_EQ(c.at(0, 1, 2), a.at(0, 1, 2));
}

TEST(OpsExtraTest, ConcatRank3MiddleAxis) {
  Rng rng(2);
  Tensor a = Tensor::Randn({2, 1, 3}, rng);
  Tensor b = Tensor::Randn({2, 2, 3}, rng);
  Tensor c = Concat({a, b}, 1);
  EXPECT_EQ(c.size(1), 3);
  EXPECT_FLOAT_EQ(c.at(1, 0, 2), a.at(1, 0, 2));
  EXPECT_FLOAT_EQ(c.at(1, 2, 0), b.at(1, 1, 0));
}

TEST(OpsExtraTest, SliceRowsRank3) {
  Rng rng(3);
  Tensor a = Tensor::Randn({4, 2, 3}, rng);
  Tensor s = SliceRows(a, 1, 3);
  EXPECT_EQ(s.size(0), 2);
  EXPECT_FLOAT_EQ(s.at(0, 1, 2), a.at(1, 1, 2));
}

TEST(OpsExtraTest, EmptySliceIsValid) {
  Tensor a = Tensor::Zeros({3, 2});
  Tensor s = SliceRows(a, 1, 1);
  EXPECT_EQ(s.size(0), 0);
  EXPECT_EQ(s.numel(), 0);
}

TEST(OpsExtraTest, ExpLogRoundTrip) {
  Rng rng(4);
  Tensor x = Tensor::Rand({8}, rng, 0.1f, 3.0f);
  Tensor y = Exp(Log(x));
  for (int64_t i = 0; i < 8; ++i) EXPECT_NEAR(y.at(i), x.at(i), 1e-4);
}

TEST(OpsExtraTest, AtanhTanhRoundTrip) {
  Rng rng(5);
  Tensor x = Tensor::Rand({8}, rng, -0.9f, 0.9f);
  Tensor y = Tanh(Atanh(x));
  for (int64_t i = 0; i < 8; ++i) EXPECT_NEAR(y.at(i), x.at(i), 1e-5);
}

TEST(OpsExtraTest, SoftmaxRank1AndRank3) {
  Rng rng(6);
  Tensor v = Tensor::Randn({5}, rng);
  Tensor sv = Softmax(v);
  double total = 0.0;
  for (int64_t i = 0; i < 5; ++i) total += sv.at(i);
  EXPECT_NEAR(total, 1.0, 1e-5);

  Tensor t = Tensor::Randn({2, 3, 4}, rng);
  Tensor st = Softmax(t);
  for (int64_t b = 0; b < 2; ++b) {
    for (int64_t i = 0; i < 3; ++i) {
      double row = 0.0;
      for (int64_t j = 0; j < 4; ++j) row += st.at(b, i, j);
      EXPECT_NEAR(row, 1.0, 1e-5);
    }
  }
}

TEST(OpsExtraTest, DivBroadcastScalarGrad) {
  Tensor a = Tensor::FromVector({2}, {4.0f, 8.0f}).set_requires_grad(true);
  Tensor s = Tensor::Scalar(2.0f).set_requires_grad(true);
  Tensor y = Sum(Div(a, s));
  EXPECT_FLOAT_EQ(y.item(), 6.0f);
  y.Backward();
  EXPECT_FLOAT_EQ(a.grad()[0], 0.5f);
  EXPECT_FLOAT_EQ(a.grad()[1], 0.5f);
  // d/ds (a/s) = -a/s^2 summed: -(4+8)/4 = -3.
  EXPECT_FLOAT_EQ(s.grad()[0], -3.0f);
}

TEST(OpsExtraTest, SumLastDimRank3) {
  Tensor t = Tensor::FromVector({2, 2, 2}, {1, 2, 3, 4, 5, 6, 7, 8});
  Tensor s = SumLastDim(t);
  EXPECT_EQ(s.dim(), 2);
  EXPECT_FLOAT_EQ(s.at(0, 0), 3.0f);
  EXPECT_FLOAT_EQ(s.at(1, 1), 15.0f);
}

TEST(OpsExtraTest, GradAccumulatesThroughSharedSubgraph) {
  // z = relu(x)^2 + relu(x): shared intermediate relu(x).
  Tensor x = Tensor::FromVector({1}, {3.0f}).set_requires_grad(true);
  Tensor r = Relu(x);
  Tensor z = Add(Square(r), r);
  z.Backward();
  // dz/dx = 2*r + 1 = 7 at x=3.
  EXPECT_FLOAT_EQ(x.grad()[0], 7.0f);
}

TEST(OpsExtraTest, StackOfOneRow) {
  Tensor a = Tensor::FromVector({3}, {1, 2, 3});
  Tensor s = Stack({a});
  EXPECT_EQ(s.size(0), 1);
  EXPECT_EQ(s.size(1), 3);
}

TEST(OpsExtraTest, TransposeTwiceIsIdentity) {
  Rng rng(7);
  Tensor a = Tensor::Randn({3, 5}, rng);
  Tensor b = Transpose2D(Transpose2D(a));
  EXPECT_EQ(b.data(), a.data());
}

TEST(OpsExtraTest, NormOfZeroVectorIsSafe) {
  Tensor z = Tensor::Zeros({4}).set_requires_grad(true);
  Tensor n = Norm(z);
  EXPECT_NEAR(n.item(), 0.0f, 1e-5);
  n.Backward();  // must not produce NaN
  for (float g : z.grad()) EXPECT_FALSE(std::isnan(g));
}

TEST(OpsExtraTest, MeanOfSingleElement) {
  Tensor t = Tensor::Scalar(42.0f);
  EXPECT_FLOAT_EQ(Mean(t).item(), 42.0f);
}

TEST(OpsExtraTest, DetachedBranchReceivesNoGradient) {
  Tensor x = Tensor::FromVector({1}, {2.0f}).set_requires_grad(true);
  Tensor straight = Square(x);             // tracked path
  Tensor blocked = Square(Detach(x));      // detached path
  Tensor y = Add(straight, blocked);
  y.Backward();
  EXPECT_FLOAT_EQ(x.grad()[0], 4.0f);  // only the tracked path contributes
}

}  // namespace
}  // namespace tensor
}  // namespace chainsformer
