#include "tensor/tensor.h"

#include <gtest/gtest.h>

#include "tensor/ops.h"
#include "util/rng.h"

namespace chainsformer {
namespace tensor {
namespace {

TEST(TensorTest, ZerosShapeAndValues) {
  Tensor t = Tensor::Zeros({2, 3});
  EXPECT_EQ(t.dim(), 2);
  EXPECT_EQ(t.numel(), 6);
  for (float v : t.data()) EXPECT_EQ(v, 0.0f);
}

TEST(TensorTest, FullAndScalar) {
  Tensor t = Tensor::Full({4}, 2.5f);
  for (float v : t.data()) EXPECT_EQ(v, 2.5f);
  EXPECT_FLOAT_EQ(Tensor::Scalar(7.0f).item(), 7.0f);
}

TEST(TensorTest, FromVectorAndAccessors) {
  Tensor t = Tensor::FromVector({2, 2}, {1, 2, 3, 4});
  EXPECT_FLOAT_EQ(t.at(0, 0), 1.0f);
  EXPECT_FLOAT_EQ(t.at(0, 1), 2.0f);
  EXPECT_FLOAT_EQ(t.at(1, 0), 3.0f);
  EXPECT_FLOAT_EQ(t.at(1, 1), 4.0f);
  t.set(1, 0, 9.0f);
  EXPECT_FLOAT_EQ(t.at(1, 0), 9.0f);
}

TEST(TensorTest, Rank3Access) {
  Tensor t = Tensor::FromVector({2, 2, 2}, {0, 1, 2, 3, 4, 5, 6, 7});
  EXPECT_FLOAT_EQ(t.at(1, 0, 1), 5.0f);
  EXPECT_FLOAT_EQ(t.at(0, 1, 0), 2.0f);
}

TEST(TensorTest, RandnDeterministicBySeed) {
  Rng a(5), b(5);
  Tensor x = Tensor::Randn({3, 3}, a);
  Tensor y = Tensor::Randn({3, 3}, b);
  EXPECT_EQ(x.data(), y.data());
}

TEST(TensorTest, SizeNegativeAxis) {
  Tensor t = Tensor::Zeros({2, 5});
  EXPECT_EQ(t.size(-1), 5);
  EXPECT_EQ(t.size(-2), 2);
}

TEST(TensorTest, BackwardOnSimpleGraph) {
  // y = sum(x * x); dy/dx = 2x.
  Tensor x = Tensor::FromVector({3}, {1, 2, 3}).set_requires_grad(true);
  Tensor y = Sum(Square(x));
  y.Backward();
  EXPECT_FLOAT_EQ(x.grad()[0], 2.0f);
  EXPECT_FLOAT_EQ(x.grad()[1], 4.0f);
  EXPECT_FLOAT_EQ(x.grad()[2], 6.0f);
}

TEST(TensorTest, BackwardAccumulatesAcrossCalls) {
  Tensor x = Tensor::FromVector({1}, {2.0f}).set_requires_grad(true);
  Tensor y1 = Square(x);
  y1.Backward();
  Tensor y2 = Square(x);
  y2.Backward();
  EXPECT_FLOAT_EQ(x.grad()[0], 8.0f);  // 4 + 4
  x.ZeroGrad();
  EXPECT_FLOAT_EQ(x.grad()[0], 0.0f);
}

TEST(TensorTest, DiamondGraphGradient) {
  // y = a*b + a; dy/da = b + 1, dy/db = a — the node `a` feeds two paths.
  Tensor a = Tensor::FromVector({1}, {3.0f}).set_requires_grad(true);
  Tensor b = Tensor::FromVector({1}, {5.0f}).set_requires_grad(true);
  Tensor y = Add(Mul(a, b), a);
  y.Backward();
  EXPECT_FLOAT_EQ(a.grad()[0], 6.0f);
  EXPECT_FLOAT_EQ(b.grad()[0], 3.0f);
}

TEST(TensorTest, NoGradGuardDisablesTape) {
  Tensor x = Tensor::FromVector({2}, {1, 2}).set_requires_grad(true);
  NoGradGuard guard;
  Tensor y = Square(x);
  EXPECT_FALSE(y.requires_grad());
  EXPECT_TRUE(y.impl()->parents.empty());
}

TEST(TensorTest, DetachCutsHistory) {
  Tensor x = Tensor::FromVector({2}, {1, 2}).set_requires_grad(true);
  Tensor y = Detach(Square(x));
  EXPECT_FALSE(y.requires_grad());
  EXPECT_FLOAT_EQ(y.at(1), 4.0f);
}

TEST(TensorTest, DebugStringMentionsShape) {
  Tensor t = Tensor::Zeros({2, 3});
  EXPECT_NE(t.DebugString().find("[2,3]"), std::string::npos);
}

TEST(TensorOpsTest, ReshapePreservesOrder) {
  Tensor t = Tensor::FromVector({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor r = Reshape(t, {3, 2});
  EXPECT_FLOAT_EQ(r.at(0, 0), 1.0f);
  EXPECT_FLOAT_EQ(r.at(2, 1), 6.0f);
}

TEST(TensorOpsTest, Transpose2D) {
  Tensor t = Tensor::FromVector({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor tt = Transpose2D(t);
  EXPECT_EQ(tt.size(0), 3);
  EXPECT_EQ(tt.size(1), 2);
  EXPECT_FLOAT_EQ(tt.at(2, 0), 3.0f);
  EXPECT_FLOAT_EQ(tt.at(0, 1), 4.0f);
}

TEST(TensorOpsTest, MatMulKnownValues) {
  Tensor a = Tensor::FromVector({2, 2}, {1, 2, 3, 4});
  Tensor b = Tensor::FromVector({2, 2}, {5, 6, 7, 8});
  Tensor c = MatMul(a, b);
  EXPECT_FLOAT_EQ(c.at(0, 0), 19.0f);
  EXPECT_FLOAT_EQ(c.at(0, 1), 22.0f);
  EXPECT_FLOAT_EQ(c.at(1, 0), 43.0f);
  EXPECT_FLOAT_EQ(c.at(1, 1), 50.0f);
}

TEST(TensorOpsTest, BatchMatMulMatchesPerBatchMatMul) {
  Rng rng(3);
  Tensor a = Tensor::Randn({2, 3, 4}, rng);
  Tensor b = Tensor::Randn({2, 4, 5}, rng);
  Tensor c = BatchMatMul(a, b);
  for (int64_t bb = 0; bb < 2; ++bb) {
    Tensor a2 = Reshape(SliceRows(a, bb, bb + 1), {3, 4});
    Tensor b2 = Reshape(SliceRows(b, bb, bb + 1), {4, 5});
    Tensor c2 = MatMul(a2, b2);
    for (int64_t i = 0; i < 3; ++i) {
      for (int64_t j = 0; j < 5; ++j) {
        EXPECT_NEAR(c.at(bb, i, j), c2.at(i, j), 1e-5);
      }
    }
  }
}

TEST(TensorOpsTest, Permute3Roundtrip) {
  Rng rng(9);
  Tensor a = Tensor::Randn({2, 3, 4}, rng);
  Tensor p = Permute3(a, 2, 0, 1);  // [4, 2, 3]
  EXPECT_EQ(p.size(0), 4);
  EXPECT_EQ(p.size(1), 2);
  EXPECT_EQ(p.size(2), 3);
  EXPECT_FLOAT_EQ(p.at(1, 0, 2), a.at(0, 2, 1));
  // Inverse permutation restores the original.
  Tensor back = Permute3(p, 1, 2, 0);
  EXPECT_EQ(back.data(), a.data());
}

TEST(TensorOpsTest, ConcatAxis0And1) {
  Tensor a = Tensor::FromVector({1, 2}, {1, 2});
  Tensor b = Tensor::FromVector({1, 2}, {3, 4});
  Tensor c0 = Concat({a, b}, 0);
  EXPECT_EQ(c0.size(0), 2);
  EXPECT_FLOAT_EQ(c0.at(1, 0), 3.0f);
  Tensor c1 = Concat({a, b}, 1);
  EXPECT_EQ(c1.size(1), 4);
  EXPECT_FLOAT_EQ(c1.at(0, 2), 3.0f);
}

TEST(TensorOpsTest, StackRows) {
  Tensor a = Tensor::FromVector({2}, {1, 2});
  Tensor b = Tensor::FromVector({2}, {3, 4});
  Tensor s = Stack({a, b});
  EXPECT_EQ(s.size(0), 2);
  EXPECT_EQ(s.size(1), 2);
  EXPECT_FLOAT_EQ(s.at(1, 1), 4.0f);
}

TEST(TensorOpsTest, SliceRowsAndCols) {
  Tensor t = Tensor::FromVector({3, 2}, {1, 2, 3, 4, 5, 6});
  Tensor r = SliceRows(t, 1, 3);
  EXPECT_EQ(r.size(0), 2);
  EXPECT_FLOAT_EQ(r.at(0, 0), 3.0f);
  Tensor c = SliceCols(t, 1, 2);
  EXPECT_EQ(c.size(1), 1);
  EXPECT_FLOAT_EQ(c.at(2, 0), 6.0f);
}

TEST(TensorOpsTest, RowExtraction) {
  Tensor t = Tensor::FromVector({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor r = Row(t, 1);
  EXPECT_EQ(r.dim(), 1);
  EXPECT_FLOAT_EQ(r.at(2), 6.0f);
}

TEST(TensorOpsTest, GatherRows) {
  Tensor table = Tensor::FromVector({3, 2}, {1, 2, 3, 4, 5, 6});
  Tensor g = Gather(table, {2, 0, 2});
  EXPECT_EQ(g.size(0), 3);
  EXPECT_FLOAT_EQ(g.at(0, 0), 5.0f);
  EXPECT_FLOAT_EQ(g.at(1, 1), 2.0f);
  EXPECT_FLOAT_EQ(g.at(2, 1), 6.0f);
}

TEST(TensorOpsTest, SoftmaxRowsSumToOne) {
  Rng rng(4);
  Tensor t = Tensor::Randn({3, 5}, rng, 2.0f);
  Tensor s = Softmax(t);
  for (int64_t i = 0; i < 3; ++i) {
    double total = 0.0;
    for (int64_t j = 0; j < 5; ++j) {
      EXPECT_GT(s.at(i, j), 0.0f);
      total += s.at(i, j);
    }
    EXPECT_NEAR(total, 1.0, 1e-5);
  }
}

TEST(TensorOpsTest, SoftmaxNumericallyStableForLargeInputs) {
  Tensor t = Tensor::FromVector({1, 3}, {1000.0f, 1000.0f, 1000.0f});
  Tensor s = Softmax(t);
  for (int64_t j = 0; j < 3; ++j) EXPECT_NEAR(s.at(0, j), 1.0f / 3.0f, 1e-5);
}

TEST(TensorOpsTest, BroadcastLastDim) {
  Tensor a = Tensor::FromVector({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor bias = Tensor::FromVector({3}, {10, 20, 30});
  Tensor c = Add(a, bias);
  EXPECT_FLOAT_EQ(c.at(0, 0), 11.0f);
  EXPECT_FLOAT_EQ(c.at(1, 2), 36.0f);
}

TEST(TensorOpsTest, BroadcastScalar) {
  Tensor a = Tensor::FromVector({2, 2}, {1, 2, 3, 4});
  Tensor s = Tensor::Scalar(10.0f);
  Tensor c = Mul(a, s);
  EXPECT_FLOAT_EQ(c.at(1, 1), 40.0f);
}

TEST(TensorOpsTest, ReductionOps) {
  Tensor t = Tensor::FromVector({2, 2}, {1, 2, 3, 4});
  EXPECT_FLOAT_EQ(Sum(t).item(), 10.0f);
  EXPECT_FLOAT_EQ(Mean(t).item(), 2.5f);
  Tensor sl = SumLastDim(t);
  EXPECT_FLOAT_EQ(sl.at(0), 3.0f);
  EXPECT_FLOAT_EQ(sl.at(1), 7.0f);
}

TEST(TensorOpsTest, DotAndNorm) {
  Tensor a = Tensor::FromVector({3}, {1, 2, 3});
  Tensor b = Tensor::FromVector({3}, {4, 5, 6});
  EXPECT_FLOAT_EQ(Dot(a, b).item(), 32.0f);
  EXPECT_NEAR(Norm(Tensor::FromVector({2}, {3, 4})).item(), 5.0f, 1e-5);
}

TEST(TensorOpsTest, Losses) {
  Tensor p = Tensor::FromVector({2}, {1.0f, 3.0f});
  Tensor t = Tensor::FromVector({2}, {2.0f, 1.0f});
  EXPECT_FLOAT_EQ(MseLoss(p, t).item(), 2.5f);   // (1 + 4) / 2
  EXPECT_FLOAT_EQ(L1Loss(p, t).item(), 1.5f);    // (1 + 2) / 2
}

TEST(TensorOpsTest, SmoothL1MatchesRegimes) {
  // |d| = 0.5 < delta=1: 0.5 * 0.25 = 0.125 ; |d| = 2 > 1: 2 - 0.5 = 1.5.
  Tensor p = Tensor::FromVector({2}, {0.5f, 2.0f});
  Tensor t = Tensor::Zeros({2});
  EXPECT_NEAR(SmoothL1Loss(p, t, 1.0f).item(), (0.125f + 1.5f) / 2.0f, 1e-5);
}

TEST(TensorOpsTest, ClampValuesAndGradMask) {
  Tensor x = Tensor::FromVector({3}, {-2.0f, 0.5f, 2.0f}).set_requires_grad(true);
  Tensor y = Sum(Clamp(x, -1.0f, 1.0f));
  EXPECT_FLOAT_EQ(y.item(), -1.0f + 0.5f + 1.0f);
  y.Backward();
  EXPECT_FLOAT_EQ(x.grad()[0], 0.0f);
  EXPECT_FLOAT_EQ(x.grad()[1], 1.0f);
  EXPECT_FLOAT_EQ(x.grad()[2], 0.0f);
}

}  // namespace
}  // namespace tensor
}  // namespace chainsformer
