#include <cmath>
#include <memory>
#include <set>

#include <gtest/gtest.h>

#include "baselines/hynt.h"
#include "baselines/kga.h"
#include "baselines/llm_sim.h"
#include "baselines/mrap.h"
#include "baselines/nap.h"
#include "baselines/plm_reg.h"
#include "baselines/simple.h"
#include "baselines/transe.h"
#include "kg/synthetic.h"

namespace chainsformer {
namespace baselines {
namespace {

const kg::Dataset& Data() {
  static const kg::Dataset* ds =
      new kg::Dataset(kg::MakeFb15k237Like({.scale = 0.09}));
  return *ds;
}

std::vector<kg::NumericalTriple> TestSample(size_t n) {
  const auto& t = Data().split.test;
  return std::vector<kg::NumericalTriple>(t.begin(),
                                          t.begin() + std::min(n, t.size()));
}

TransEConfig FastTransE() {
  TransEConfig c;
  c.dim = 16;
  c.epochs = 5;
  c.max_triples_per_epoch = 5000;
  return c;
}

TEST(RidgeSolveTest, SolvesKnownSystem) {
  // A = [[2, 0], [0, 4]], b = [2, 8], l2 = 0 -> x = [1, 2].
  const auto x = RidgeSolve({2, 0, 0, 4}, {2, 8}, 2, 0.0);
  EXPECT_NEAR(x[0], 1.0, 1e-9);
  EXPECT_NEAR(x[1], 2.0, 1e-9);
}

TEST(RidgeSolveTest, RegularizationShrinks) {
  const auto x0 = RidgeSolve({1, 0, 0, 1}, {1, 1}, 2, 0.0);
  const auto x1 = RidgeSolve({1, 0, 0, 1}, {1, 1}, 2, 1.0);
  EXPECT_GT(x0[0], x1[0]);
  EXPECT_NEAR(x1[0], 0.5, 1e-9);
}

TEST(TransETest, TrainingImprovesPositiveTripleScores) {
  const auto& ds = Data();
  TransE before(ds.graph.num_entities(), ds.graph.num_relation_ids(), FastTransE());
  TransE after(ds.graph.num_entities(), ds.graph.num_relation_ids(), FastTransE());
  after.Train(ds.graph.relational_triples());

  // Margin between positive and random-corrupted triples should widen.
  Rng rng(4);
  auto margin = [&](const TransE& model) {
    double total = 0.0;
    const auto& triples = ds.graph.relational_triples();
    for (int i = 0; i < 300; ++i) {
      const auto& t = triples[rng.UniformInt(static_cast<uint64_t>(triples.size()))];
      const auto corrupt = static_cast<kg::EntityId>(
          rng.UniformInt(static_cast<uint64_t>(ds.graph.num_entities())));
      total += model.Score(t.head, t.relation, t.tail) -
               model.Score(t.head, t.relation, corrupt);
    }
    return total / 300.0;
  };
  Rng rng_reset(4);
  rng = rng_reset;
  const double margin_before = margin(before);
  rng = rng_reset;
  const double margin_after = margin(after);
  EXPECT_GT(margin_after, margin_before + 0.05);
}

TEST(TransETest, NearestEntitiesExcludesSelfAndSorted) {
  TransE model(50, 4, FastTransE());
  std::vector<kg::EntityId> candidates;
  for (int i = 0; i < 50; ++i) candidates.push_back(static_cast<kg::EntityId>(i));
  const auto nearest = model.NearestEntities(7, 5, candidates);
  ASSERT_EQ(nearest.size(), 5u);
  double prev = -1.0;
  for (kg::EntityId e : nearest) {
    EXPECT_NE(e, 7);
    const double d = model.EntityDistanceSq(7, e);
    EXPECT_GE(d, prev);
    prev = d;
  }
}

template <typename T>
void ExpectTrainsAndPredictsFinite(T& model) {
  model.Train();
  const auto& test = Data().split.test;
  for (size_t i = 0; i < 30 && i < test.size(); ++i) {
    const double pred = model.Predict(test[i].entity, test[i].attribute);
    EXPECT_TRUE(std::isfinite(pred)) << model.name();
  }
  const auto r = model.Evaluate(TestSample(50));
  EXPECT_TRUE(std::isfinite(r.normalized_mae)) << model.name();
  EXPECT_GT(r.total_count, 0) << model.name();
}

TEST(GlobalMeanTest, PredictsTrainMean) {
  GlobalMeanBaseline model(Data());
  model.Train();
  const auto height = Data().graph.FindAttribute("height");
  const double pred = model.Predict(0, height);
  EXPECT_NEAR(pred, 1.75, 0.15);
}

TEST(LocalMeanTest, BeatsGlobalMeanOnStructuredData) {
  GlobalMeanBaseline global(Data());
  LocalMeanBaseline local(Data());
  global.Train();
  local.Train();
  const auto sample = TestSample(400);
  const auto rg = global.Evaluate(sample);
  const auto rl = local.Evaluate(sample);
  EXPECT_LT(rl.normalized_mae, rg.normalized_mae);
}

TEST(NapPlusPlusTest, TrainsAndPredicts) {
  NapPlusPlusBaseline model(Data(), 8, FastTransE());
  ExpectTrainsAndPredictsFinite(model);
}

TEST(MrapTest, TrainsAndPredicts) {
  MrapBaseline model(Data(), /*iterations=*/4);
  ExpectTrainsAndPredictsFinite(model);
}

TEST(MrapTest, RecoversLinearEdgeRelation) {
  // Film release ≈ director birth + constant: MrAP's fitted edge model must
  // propagate birth into film_release better than the global mean does.
  MrapBaseline mrap(Data(), 6);
  GlobalMeanBaseline global(Data());
  mrap.Train();
  global.Train();
  const auto release = Data().graph.FindAttribute("film_release");
  std::vector<kg::NumericalTriple> queries;
  for (const auto& t : Data().split.test) {
    if (t.attribute == release) queries.push_back(t);
  }
  ASSERT_GT(queries.size(), 5u);
  const auto rm = mrap.Evaluate(queries);
  const auto rg = global.Evaluate(queries);
  EXPECT_LT(rm.per_attribute[static_cast<size_t>(release)].mae,
            rg.per_attribute[static_cast<size_t>(release)].mae);
}

TEST(KgaTest, TrainsAndPredicts) {
  KgaBaseline model(Data(), 16, FastTransE());
  ExpectTrainsAndPredictsFinite(model);
}

TEST(KgaTest, PredictionsAreBinRepresentatives) {
  KgaBaseline model(Data(), 16, FastTransE());
  model.Train();
  // Quantization: predictions take at most num_bins distinct values per attr.
  const auto birth = Data().graph.FindAttribute("birth");
  std::set<double> distinct;
  for (size_t i = 0; i < 100 && i < Data().split.test.size(); ++i) {
    distinct.insert(model.Predict(Data().split.test[i].entity, birth));
  }
  EXPECT_LE(distinct.size(), 16u);
}

TEST(PlmRegTest, TrainsAndPredicts) {
  PlmRegBaseline model(Data());
  ExpectTrainsAndPredictsFinite(model);
}

TEST(HyntTest, TrainsAndPredicts) {
  HyntBaseline model(Data(), 16, 6);
  ExpectTrainsAndPredictsFinite(model);
}

TEST(LlmSimTest, BothGradesPredictFinite) {
  LlmSimBaseline g35(Data(), LlmGrade::kGpt35, 32);
  LlmSimBaseline g40(Data(), LlmGrade::kGpt40, 32);
  ExpectTrainsAndPredictsFinite(g35);
  ExpectTrainsAndPredictsFinite(g40);
}

TEST(LlmSimTest, Gpt4BeatsGpt35) {
  LlmSimBaseline g35(Data(), LlmGrade::kGpt35, 32);
  LlmSimBaseline g40(Data(), LlmGrade::kGpt40, 32);
  g35.Train();
  g40.Train();
  const auto sample = TestSample(400);
  EXPECT_LT(g40.Evaluate(sample).normalized_mae,
            g35.Evaluate(sample).normalized_mae);
}

TEST(LlmSimTest, DeterministicPerQuery) {
  LlmSimBaseline model(Data(), LlmGrade::kGpt40, 32);
  model.Train();
  const auto& t = Data().split.test.front();
  EXPECT_DOUBLE_EQ(model.Predict(t.entity, t.attribute),
                   model.Predict(t.entity, t.attribute));
}

TEST(TogSimTest, TrainsAndPredicts) {
  TogSimBaseline model(Data());
  ExpectTrainsAndPredictsFinite(model);
}

TEST(CapabilitiesTest, MatchTableIV) {
  // Table IV: NAP++ / PLM-reg lack multi-hop and multi-attr; MrAP gains
  // multi-attr; KGA gains multi-hop; HyNT gains num-aware + multi-attr.
  NapPlusPlusBaseline nap(Data());
  MrapBaseline mrap(Data());
  KgaBaseline kga(Data());
  HyntBaseline hynt(Data());
  PlmRegBaseline plm(Data());
  EXPECT_FALSE(nap.capabilities().multi_hop);
  EXPECT_FALSE(nap.capabilities().multi_attr);
  EXPECT_TRUE(mrap.capabilities().multi_attr);
  EXPECT_FALSE(mrap.capabilities().multi_hop);
  EXPECT_TRUE(kga.capabilities().multi_hop);
  EXPECT_TRUE(kga.capabilities().num_aware);
  EXPECT_TRUE(hynt.capabilities().num_aware);
  EXPECT_TRUE(hynt.capabilities().multi_attr);
  EXPECT_FALSE(plm.capabilities().multi_hop);
}

}  // namespace
}  // namespace baselines
}  // namespace chainsformer
