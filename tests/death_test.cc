// Precondition-violation tests: the library aborts with a clear message on
// API misuse (the documented CF_CHECK contract) rather than corrupting
// state or returning garbage.

#include <limits>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "hyperbolic/poincare_ops.h"
#include "kg/knowledge_graph.h"
#include "tensor/checks.h"
#include "tensor/ops.h"
#include "tensor/tensor.h"
#include "util/rng.h"

namespace chainsformer {
namespace {

using DeathTest = ::testing::Test;

TEST(DeathTest, TensorItemRequiresSingleElement) {
  tensor::Tensor t = tensor::Tensor::Zeros({2, 2});
  EXPECT_DEATH(t.item(), "Check failed");
}

TEST(DeathTest, BackwardRequiresScalar) {
  tensor::Tensor t = tensor::Tensor::Zeros({3}).set_requires_grad(true);
  EXPECT_DEATH(t.Backward(), "scalar");
}

TEST(DeathTest, BackwardRequiresGradTracking) {
  tensor::Tensor t = tensor::Tensor::Zeros({1});
  EXPECT_DEATH(t.Backward(), "require");
}

TEST(DeathTest, MatMulShapeMismatch) {
  tensor::Tensor a = tensor::Tensor::Zeros({2, 3});
  tensor::Tensor b = tensor::Tensor::Zeros({4, 2});
  EXPECT_DEATH(tensor::MatMul(a, b), "Check failed");
}

TEST(DeathTest, ElementwiseShapeMismatch) {
  tensor::Tensor a = tensor::Tensor::Zeros({2, 3});
  tensor::Tensor b = tensor::Tensor::Zeros({3, 2});
  EXPECT_DEATH(tensor::Add(a, b), "Incompatible");
}

TEST(DeathTest, GatherIndexOutOfRange) {
  tensor::Tensor table = tensor::Tensor::Zeros({3, 2});
  EXPECT_DEATH(tensor::Gather(table, {5}), "Check failed");
}

TEST(DeathTest, ReshapeNumelMismatch) {
  tensor::Tensor t = tensor::Tensor::Zeros({2, 3});
  EXPECT_DEATH(tensor::Reshape(t, {4, 2}), "Check failed");
}

TEST(DeathTest, GraphRejectsInverseRelationInAddTriple) {
  kg::KnowledgeGraph g;
  const auto e = g.AddEntity("a");
  const auto r = g.AddRelation("rel");
  EXPECT_DEATH(g.AddTriple(e, kg::KnowledgeGraph::InverseRelation(r), e),
               "base relation");
}

TEST(DeathTest, GraphRejectsUnknownEntity) {
  kg::KnowledgeGraph g;
  g.AddEntity("a");
  const auto r = g.AddRelation("rel");
  EXPECT_DEATH(g.AddTriple(0, r, 7), "Check failed");
}

TEST(DeathTest, GraphRejectsNonFiniteValue) {
  kg::KnowledgeGraph g;
  const auto e = g.AddEntity("a");
  const auto a = g.AddAttribute("x");
  EXPECT_DEATH(g.AddNumeric(e, a, std::numeric_limits<double>::infinity()),
               "Check failed");
}

TEST(DeathTest, GraphMutationAfterFinalize) {
  kg::KnowledgeGraph g;
  g.AddEntity("a");
  g.Finalize();
  EXPECT_DEATH(g.AddEntity("b"), "Check failed");
}

TEST(DeathTest, NeighborsBeforeFinalize) {
  kg::KnowledgeGraph g;
  g.AddEntity("a");
  EXPECT_DEATH(g.Neighbors(0), "Check failed");
}

TEST(DeathTest, RngCategoricalRequiresPositiveWeight) {
  Rng rng(1);
  std::vector<double> weights = {0.0, 0.0};
  EXPECT_DEATH(rng.Categorical(weights), "positive total weight");
}

// --- Tape sanitizer diagnostics (tensor/checks.h) --------------------------
// Each violation must abort with the *exact op name* so the message is
// actionable; the regexes below pin the names, not just the category.

TEST(DeathTest, SanitizerNamesMutatedOpInShapesMode) {
  tensor::CheckModeGuard guard(tensor::CheckMode::kShapes);
  tensor::Tensor x =
      tensor::Tensor::FromVector({2}, {1.0f, 2.0f}).set_requires_grad(true);
  tensor::Tensor y =
      tensor::Tensor::FromVector({2}, {3.0f, 4.0f}).set_requires_grad(true);
  tensor::Tensor loss = tensor::Sum(tensor::Mul(x, y));
  x.data()[0] = 9.0f;  // in-place mutation between record and backward
  EXPECT_DEATH(loss.Backward(), "of op Mul was mutated after it was recorded");
}

TEST(DeathTest, SanitizerCatchesInjectedMutationInFullMode) {
  tensor::CheckModeGuard guard(tensor::CheckMode::kFull);
  tensor::Tensor x =
      tensor::Tensor::FromVector({3}, {1.0f, 2.0f, 3.0f}).set_requires_grad(true);
  tensor::Tensor loss = tensor::Sum(tensor::Exp(x));
  x.set(1, -5.0f);
  EXPECT_DEATH(loss.Backward(), "of op Exp was mutated");
}

TEST(DeathTest, PoisonScanNamesOffendingOp) {
  tensor::CheckModeGuard guard(tensor::CheckMode::kFull);
  tensor::Tensor a = tensor::Tensor::FromVector({2}, {1.0f, 2.0f});
  tensor::Tensor b = tensor::Tensor::FromVector({2}, {0.0f, 1.0f});
  EXPECT_DEATH(tensor::Div(a, b), "numeric poison: op Div");
}

TEST(DeathTest, HyperbolicEntryNamesPoisonedInput) {
  tensor::CheckModeGuard guard(tensor::CheckMode::kFull);
  tensor::Tensor v = tensor::Tensor::FromVector({3}, {0.1f, 0.2f, 0.3f});
  v.data()[1] = std::numeric_limits<float>::quiet_NaN();
  EXPECT_DEATH(hyperbolic::HExpMap0(v, 1.0f),
               "numeric poison: HExpMap0 input");
}

TEST(DeathTest, DoubleBackwardOnFreedTape) {
  tensor::CheckModeGuard guard(tensor::CheckMode::kShapes);
  tensor::Tensor x =
      tensor::Tensor::FromVector({2}, {1.0f, 2.0f}).set_requires_grad(true);
  tensor::Tensor loss = tensor::Sum(tensor::Mul(x, x));
  loss.Backward();
  EXPECT_DEATH(loss.Backward(), "double Backward\\(\\) on a freed tape");
}

TEST(DeathTest, RecordingAgainstFreedTapeIsUseAfterBackward) {
  tensor::CheckModeGuard guard(tensor::CheckMode::kShapes);
  tensor::Tensor x =
      tensor::Tensor::FromVector({2}, {1.0f, 2.0f}).set_requires_grad(true);
  tensor::Tensor y = tensor::Sum(tensor::Mul(x, x));
  y.Backward();
  EXPECT_DEATH(tensor::Mul(y, y), "use-after-backward");
}

TEST(DeathTest, GradShapeMismatchAtAccumulationSite) {
  tensor::CheckModeGuard guard(tensor::CheckMode::kShapes);
  // Hand-built node whose backward closure accumulates a wrong-sized
  // gradient — the bug class the accumulation-site check exists for (every
  // library op goes through EnsureGrad and cannot trip it).
  auto parent = std::make_shared<tensor::TensorImpl>();
  parent->shape = {2};
  parent->data = {1.0f, 2.0f};
  parent->requires_grad = true;
  auto node = std::make_shared<tensor::TensorImpl>();
  node->shape = {1};
  node->data = {3.0f};
  node->requires_grad = true;
  node->parents = {parent};
  node->backward_fn = [parent]() { parent->grad.assign(3, 1.0f); };
  tensor::Tensor loss = tensor::Tensor::FromImpl(node);
  EXPECT_DEATH(loss.Backward(),
               "accumulated a gradient of 3 elements into an input of 2");
}

TEST(DeathTest, CheckModeFromStringRejectsUnknown) {
  EXPECT_DEATH(tensor::CheckModeFromString("verbose"), "unknown check mode");
}

}  // namespace
}  // namespace chainsformer
