// Precondition-violation tests: the library aborts with a clear message on
// API misuse (the documented CF_CHECK contract) rather than corrupting
// state or returning garbage.

#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "kg/knowledge_graph.h"
#include "tensor/ops.h"
#include "tensor/tensor.h"
#include "util/rng.h"

namespace chainsformer {
namespace {

using DeathTest = ::testing::Test;

TEST(DeathTest, TensorItemRequiresSingleElement) {
  tensor::Tensor t = tensor::Tensor::Zeros({2, 2});
  EXPECT_DEATH(t.item(), "Check failed");
}

TEST(DeathTest, BackwardRequiresScalar) {
  tensor::Tensor t = tensor::Tensor::Zeros({3}).set_requires_grad(true);
  EXPECT_DEATH(t.Backward(), "scalar");
}

TEST(DeathTest, BackwardRequiresGradTracking) {
  tensor::Tensor t = tensor::Tensor::Zeros({1});
  EXPECT_DEATH(t.Backward(), "require");
}

TEST(DeathTest, MatMulShapeMismatch) {
  tensor::Tensor a = tensor::Tensor::Zeros({2, 3});
  tensor::Tensor b = tensor::Tensor::Zeros({4, 2});
  EXPECT_DEATH(tensor::MatMul(a, b), "Check failed");
}

TEST(DeathTest, ElementwiseShapeMismatch) {
  tensor::Tensor a = tensor::Tensor::Zeros({2, 3});
  tensor::Tensor b = tensor::Tensor::Zeros({3, 2});
  EXPECT_DEATH(tensor::Add(a, b), "Incompatible");
}

TEST(DeathTest, GatherIndexOutOfRange) {
  tensor::Tensor table = tensor::Tensor::Zeros({3, 2});
  EXPECT_DEATH(tensor::Gather(table, {5}), "Check failed");
}

TEST(DeathTest, ReshapeNumelMismatch) {
  tensor::Tensor t = tensor::Tensor::Zeros({2, 3});
  EXPECT_DEATH(tensor::Reshape(t, {4, 2}), "Check failed");
}

TEST(DeathTest, GraphRejectsInverseRelationInAddTriple) {
  kg::KnowledgeGraph g;
  const auto e = g.AddEntity("a");
  const auto r = g.AddRelation("rel");
  EXPECT_DEATH(g.AddTriple(e, kg::KnowledgeGraph::InverseRelation(r), e),
               "base relation");
}

TEST(DeathTest, GraphRejectsUnknownEntity) {
  kg::KnowledgeGraph g;
  g.AddEntity("a");
  const auto r = g.AddRelation("rel");
  EXPECT_DEATH(g.AddTriple(0, r, 7), "Check failed");
}

TEST(DeathTest, GraphRejectsNonFiniteValue) {
  kg::KnowledgeGraph g;
  const auto e = g.AddEntity("a");
  const auto a = g.AddAttribute("x");
  EXPECT_DEATH(g.AddNumeric(e, a, std::numeric_limits<double>::infinity()),
               "Check failed");
}

TEST(DeathTest, GraphMutationAfterFinalize) {
  kg::KnowledgeGraph g;
  g.AddEntity("a");
  g.Finalize();
  EXPECT_DEATH(g.AddEntity("b"), "Check failed");
}

TEST(DeathTest, NeighborsBeforeFinalize) {
  kg::KnowledgeGraph g;
  g.AddEntity("a");
  EXPECT_DEATH(g.Neighbors(0), "Check failed");
}

TEST(DeathTest, RngCategoricalRequiresPositiveWeight) {
  Rng rng(1);
  std::vector<double> weights = {0.0, 0.0};
  EXPECT_DEATH(rng.Categorical(weights), "positive total weight");
}

}  // namespace
}  // namespace chainsformer
