#include "core/chain_quality.h"

#include <gtest/gtest.h>

namespace chainsformer {
namespace core {
namespace {

RAChain MakeChain(kg::AttributeId src, std::vector<kg::RelationId> rels,
                  kg::AttributeId dst) {
  RAChain c;
  c.source_attribute = src;
  c.relations = std::move(rels);
  c.query_attribute = dst;
  c.source_value = 1.0;
  c.source_entity = 0;
  return c;
}

TEST(ChainQualityTest, UnseenPatternUsesPrior) {
  ChainQualityEvaluator eval(0.25);
  EXPECT_DOUBLE_EQ(eval.ExpectedError(MakeChain(0, {2}, 1)), 0.25);
  EXPECT_EQ(eval.ObservationCount(MakeChain(0, {2}, 1)), 0);
}

TEST(ChainQualityTest, EwmaConvergesToObservedError) {
  ChainQualityEvaluator eval(0.25, /*decay=*/0.5);
  const RAChain c = MakeChain(0, {2}, 1);
  for (int i = 0; i < 30; ++i) eval.Record(c, 0.02);
  EXPECT_NEAR(eval.ExpectedError(c), 0.02, 1e-6);
  EXPECT_EQ(eval.ObservationCount(c), 30);
}

TEST(ChainQualityTest, PatternsAreDistinguished) {
  ChainQualityEvaluator eval(0.25, 0.5);
  const RAChain good = MakeChain(0, {2}, 1);
  const RAChain bad = MakeChain(0, {4}, 1);       // different relation
  const RAChain other = MakeChain(1, {2}, 1);     // different source attr
  const RAChain longer = MakeChain(0, {2, 2}, 1); // different length
  for (int i = 0; i < 20; ++i) {
    eval.Record(good, 0.01);
    eval.Record(bad, 0.5);
  }
  EXPECT_LT(eval.ExpectedError(good), 0.05);
  EXPECT_GT(eval.ExpectedError(bad), 0.3);
  EXPECT_DOUBLE_EQ(eval.ExpectedError(other), 0.25);   // untouched
  EXPECT_DOUBLE_EQ(eval.ExpectedError(longer), 0.25);  // untouched
  EXPECT_EQ(eval.num_patterns(), 2);
}

TEST(ChainQualityTest, ValueDoesNotAffectPattern) {
  ChainQualityEvaluator eval(0.25, 0.5);
  RAChain a = MakeChain(0, {2}, 1);
  RAChain b = MakeChain(0, {2}, 1);
  b.source_value = 999.0;
  b.source_entity = 42;
  eval.Record(a, 0.1);
  EXPECT_EQ(eval.ObservationCount(b), 1);  // same pattern
}

TEST(ChainQualityTest, PruneKeepsReliableChains) {
  ChainQualityEvaluator eval(0.25, 0.5);
  const RAChain good = MakeChain(0, {2}, 1);
  const RAChain bad = MakeChain(0, {4}, 1);
  for (int i = 0; i < 20; ++i) {
    eval.Record(good, 0.01);
    eval.Record(bad, 0.6);
  }
  TreeOfChains toc = {good, bad, good, bad, good, good, good};
  const TreeOfChains kept = eval.PruneLowQuality(toc, 0.3, 2);
  EXPECT_EQ(kept.size(), 5u);
  for (const auto& c : kept) EXPECT_EQ(c.relations[0], 2);
}

TEST(ChainQualityTest, PruneRespectsMinKeep) {
  ChainQualityEvaluator eval(0.25, 0.5);
  const RAChain bad1 = MakeChain(0, {2}, 1);
  const RAChain bad2 = MakeChain(0, {4}, 1);
  for (int i = 0; i < 20; ++i) {
    eval.Record(bad1, 0.5);
    eval.Record(bad2, 0.9);
  }
  TreeOfChains toc = {bad1, bad2, bad1, bad2};
  const TreeOfChains kept = eval.PruneLowQuality(toc, 0.3, 3);
  ASSERT_EQ(kept.size(), 3u);
  // The min-keep fallback prefers the lower-error pattern.
  int bad1_count = 0;
  for (const auto& c : kept) bad1_count += (c.relations[0] == 2);
  EXPECT_EQ(bad1_count, 2);
}

TEST(ChainQualityTest, PruneWithoutDataKeepsEverything) {
  ChainQualityEvaluator eval(0.25, 0.9);
  TreeOfChains toc = {MakeChain(0, {2}, 1), MakeChain(0, {4}, 1)};
  EXPECT_EQ(eval.PruneLowQuality(toc, 0.3, 1).size(), 2u);
}

}  // namespace
}  // namespace core
}  // namespace chainsformer
