// Additional baseline coverage: hand-built graphs with known answers, so the
// baselines' mechanisms (propagation models, binning, kNN aggregation) are
// verified against analytically derivable predictions.

#include <cmath>
#include <cstdlib>
#include <string>

#include <gtest/gtest.h>

#include "baselines/kga.h"
#include "baselines/mrap.h"
#include "baselines/nap.h"
#include "baselines/plm_reg.h"
#include "baselines/transe.h"
#include "kg/dataset.h"

namespace chainsformer {
namespace baselines {
namespace {

/// Line graph where attribute "y" on the right endpoint is exactly
/// 2x + 10 of the left endpoint's "x" across relation "maps": MrAP must
/// recover the affine edge model and predict held-out values well.
kg::Dataset AffineChainDataset() {
  kg::Dataset ds;
  ds.name = "affine";
  auto& g = ds.graph;
  const auto ax = g.AddAttribute("x");
  const auto ay = g.AddAttribute("y");
  const auto maps = g.AddRelation("maps");
  for (int i = 0; i < 60; ++i) {
    const auto left = g.AddEntity("L" + std::to_string(i));
    const auto right = g.AddEntity("R" + std::to_string(i));
    g.AddTriple(left, maps, right);
    const double x = static_cast<double>(i);
    g.AddNumeric(left, ax, x);
    g.AddNumeric(right, ay, 2.0 * x + 10.0);
  }
  g.Finalize();
  // Hold out the y values of interior pairs R25..R34 (inside the training
  // value range, so min-max clamping cannot bite).
  for (const auto& t : g.numerical_triples()) {
    const std::string& name = g.EntityName(t.entity);
    const int idx = std::atoi(name.c_str() + 1);
    const bool holdout = t.attribute == ay && name[0] == 'R' && idx >= 25 && idx < 35;
    (holdout ? ds.split.test : ds.split.train).push_back(t);
  }
  return ds;
}

TEST(MrapMechanismTest, RecoversExactAffineEdgeModel) {
  kg::Dataset ds = AffineChainDataset();
  ASSERT_GT(ds.split.test.size(), 3u);
  MrapBaseline mrap(ds, /*iterations=*/3, /*min_support=*/5);
  mrap.Train();
  for (const auto& t : ds.split.test) {
    const double pred = mrap.Predict(t.entity, t.attribute);
    // The linear fit is exact (no noise): prediction within 5% of range.
    EXPECT_NEAR(pred, t.value, 0.05 * 118.0) << "entity " << t.entity;
  }
}

TEST(MrapMechanismTest, PropagatesThroughUnlabeledIntermediate) {
  // a --r--> b --r--> c with the same attribute: value flows a -> b -> c
  // over two iterations even though b is unlabeled.
  kg::Dataset ds;
  auto& g = ds.graph;
  const auto attr = g.AddAttribute("v");
  const auto r = g.AddRelation("r");
  // Many chains to give the model support.
  for (int i = 0; i < 30; ++i) {
    const auto a = g.AddEntity("a" + std::to_string(i));
    const auto b = g.AddEntity("b" + std::to_string(i));
    const auto c = g.AddEntity("c" + std::to_string(i));
    g.AddTriple(a, r, b);
    g.AddTriple(b, r, c);
    const double v = 10.0 + i;
    g.AddNumeric(a, attr, v);
    g.AddNumeric(b, attr, v);  // observed so the edge model is identity
    g.AddNumeric(c, attr, v);
  }
  g.Finalize();
  for (const auto& t : g.numerical_triples()) {
    // Hold out all b and c values of the last 5 chains.
    const std::string& name = g.EntityName(t.entity);
    const int idx = std::atoi(name.c_str() + 1);
    if (idx >= 25 && (name[0] == 'b' || name[0] == 'c')) {
      ds.split.test.push_back(t);
    } else {
      ds.split.train.push_back(t);
    }
  }
  MrapBaseline mrap(ds, /*iterations=*/4, /*min_support=*/5);
  mrap.Train();
  for (const auto& t : ds.split.test) {
    EXPECT_NEAR(mrap.Predict(t.entity, t.attribute), t.value, 3.0)
        << g.EntityName(t.entity);
  }
}

TEST(KgaMechanismTest, BinningIsMonotone) {
  kg::Dataset ds = AffineChainDataset();
  KgaBaseline kga(ds, 8);
  kga.Train();
  // BinOf is internal, but predictions must stay within the trained range.
  for (const auto& t : ds.split.test) {
    const double pred = kga.Predict(t.entity, t.attribute);
    EXPECT_GE(pred, 10.0 - 1e-9);
    EXPECT_LE(pred, 2.0 * 59.0 + 10.0 + 1e-9);
  }
}

TEST(TransEMechanismTest, EntityNormsStayBounded) {
  TransEConfig config;
  config.dim = 8;
  config.epochs = 3;
  TransE model(40, 4, config);
  std::vector<kg::RelationalTriple> triples;
  Rng rng(3);
  for (int i = 0; i < 200; ++i) {
    triples.push_back({static_cast<kg::EntityId>(rng.UniformInt(40u)),
                       static_cast<kg::RelationId>(rng.UniformInt(4u)),
                       static_cast<kg::EntityId>(rng.UniformInt(40u))});
  }
  model.Train(triples);
  // The TransE constraint ||e|| <= 1 must hold after training.
  for (int e = 0; e < 40; ++e) {
    const double norm_sq = model.EntityDistanceSq(static_cast<kg::EntityId>(e),
                                                  static_cast<kg::EntityId>(e));
    EXPECT_DOUBLE_EQ(norm_sq, 0.0);
    double self = 0.0;
    for (int j = 0; j < 8; ++j) {
      const float v = model.entity_data()[static_cast<size_t>(e * 8 + j)];
      self += static_cast<double>(v) * v;
    }
    EXPECT_LE(self, 1.0 + 1e-5);
  }
}

TEST(TransEMechanismTest, ScoreIsNegativeDistance) {
  TransEConfig config;
  config.dim = 4;
  TransE model(3, 2, config);
  // Score of (e, r, e) with r's embedding zeroed? We can't set relations
  // directly, but score must always be <= 0 (negative L2 norm).
  for (kg::EntityId h = 0; h < 3; ++h) {
    for (kg::EntityId t = 0; t < 3; ++t) {
      EXPECT_LE(model.Score(h, 0, t), 0.0);
    }
  }
}

TEST(NapMechanismTest, AggregatesNearestHolderValues) {
  // Star graph: center connected to holders with known values; NAP++'s
  // prediction must lie within the holders' value range.
  kg::Dataset ds;
  auto& g = ds.graph;
  const auto attr = g.AddAttribute("v");
  const auto r = g.AddRelation("r");
  const auto center = g.AddEntity("center");
  for (int i = 0; i < 20; ++i) {
    const auto h = g.AddEntity("h" + std::to_string(i));
    g.AddTriple(center, r, h);
    g.AddNumeric(h, attr, 100.0 + i);
  }
  g.Finalize();
  ds.split.train = g.numerical_triples();
  TransEConfig config;
  config.dim = 8;
  config.epochs = 3;
  NapPlusPlusBaseline nap(ds, 5, config);
  nap.Train();
  const double pred = nap.Predict(center, attr);
  EXPECT_GE(pred, 100.0);
  EXPECT_LE(pred, 119.0);
}

TEST(PlmRegMechanismTest, FeatureVectorHasDocumentedLayout) {
  kg::Dataset ds = AffineChainDataset();
  PlmRegBaseline plm(ds, /*text_dim=*/8);
  plm.Train();
  // Smoke: predictions finite and near the target range for held-out y.
  for (const auto& t : ds.split.test) {
    const double pred = plm.Predict(t.entity, t.attribute);
    EXPECT_TRUE(std::isfinite(pred));
  }
}

}  // namespace
}  // namespace baselines
}  // namespace chainsformer
