// Additional knowledge-graph coverage: index behavior under duplicates,
// split determinism, stats on extreme distributions, and generator scaling.

#include <cmath>
#include <map>
#include <vector>

#include <gtest/gtest.h>

#include "kg/dataset.h"
#include "kg/knowledge_graph.h"
#include "kg/synthetic.h"

namespace chainsformer {
namespace kg {
namespace {

TEST(KgExtraTest, MultipleValuesPerEntityAttribute) {
  // Numeric triples are a multiset: an entity may carry several values of
  // the same attribute (e.g. disputed birth years); all are indexed.
  KnowledgeGraph g;
  const auto e = g.AddEntity("e");
  const auto a = g.AddAttribute("a");
  g.AddNumeric(e, a, 1.0);
  g.AddNumeric(e, a, 2.0);
  g.Finalize();
  EXPECT_EQ(g.EntityAttributes(e).size(), 2u);
  double v = 0.0;
  EXPECT_TRUE(g.GetAttribute(e, a, &v));  // first match wins
}

TEST(KgExtraTest, ParallelEdgesPreserved) {
  KnowledgeGraph g;
  const auto x = g.AddEntity("x");
  const auto y = g.AddEntity("y");
  const auto r1 = g.AddRelation("r1");
  const auto r2 = g.AddRelation("r2");
  g.AddTriple(x, r1, y);
  g.AddTriple(x, r2, y);
  g.AddTriple(x, r1, y);  // duplicate triple
  g.Finalize();
  EXPECT_EQ(g.Degree(x), 3);
  EXPECT_EQ(g.Degree(y), 3);
}

TEST(KgExtraTest, SplitDeterministicAcrossRuns) {
  std::vector<NumericalTriple> triples;
  for (int i = 0; i < 300; ++i) {
    triples.push_back({static_cast<EntityId>(i), 0, static_cast<double>(i)});
  }
  Rng r1(9), r2(9);
  const DataSplit a = SplitNumericTriples(triples, 1, r1);
  const DataSplit b = SplitNumericTriples(triples, 1, r2);
  ASSERT_EQ(a.test.size(), b.test.size());
  for (size_t i = 0; i < a.test.size(); ++i) {
    EXPECT_EQ(a.test[i].entity, b.test[i].entity);
  }
}

TEST(KgExtraTest, SplitWithZeroValidFraction) {
  std::vector<NumericalTriple> triples;
  for (int i = 0; i < 100; ++i) {
    triples.push_back({static_cast<EntityId>(i), 0, 1.0});
  }
  Rng rng(1);
  const DataSplit s = SplitNumericTriples(triples, 1, rng, 0.9, 0.0);
  EXPECT_EQ(s.valid.size(), 0u);
  EXPECT_EQ(s.train.size() + s.test.size(), 100u);
}

TEST(KgExtraTest, StatsHandleNegativeAndHugeValues) {
  std::vector<NumericalTriple> triples = {
      {0, 0, -2999.0}, {1, 0, 2011.6}, {2, 1, 1.0}, {3, 1, 3.1e9}};
  const auto stats = ComputeAttributeStats(triples, 2);
  EXPECT_DOUBLE_EQ(stats[0].min, -2999.0);
  EXPECT_DOUBLE_EQ(stats[0].Range(), 5010.6);
  EXPECT_DOUBLE_EQ(stats[1].max, 3.1e9);
  EXPECT_NEAR(stats[1].Normalize(3.1e9), 1.0, 1e-12);
  EXPECT_NEAR(stats[1].Normalize(1.0), 0.0, 1e-12);
}

TEST(KgExtraTest, InverseRelationNamesFollowConvention) {
  KnowledgeGraph g;
  const auto r = g.AddRelation("located_in");
  EXPECT_EQ(g.RelationName(r), "located_in");
  EXPECT_EQ(g.RelationName(KnowledgeGraph::InverseRelation(r)), "located_in_inv");
}

TEST(KgExtraTest, GeneratorScalesRoughlyLinearly) {
  const Dataset small = MakeFb15k237Like({.scale = 0.04, .seed = 2});
  const Dataset large = MakeFb15k237Like({.scale = 0.08, .seed = 2});
  const double ratio = static_cast<double>(large.graph.num_entities()) /
                       static_cast<double>(small.graph.num_entities());
  EXPECT_GT(ratio, 1.6);
  EXPECT_LT(ratio, 2.4);
}

TEST(KgExtraTest, GeneratorAttributeCategoriesConsistent) {
  const Dataset ds = MakeFb15k237Like({.scale = 0.04});
  const auto& g = ds.graph;
  EXPECT_EQ(g.AttributeCategoryOf(g.FindAttribute("birth")),
            AttributeCategory::kTemporal);
  EXPECT_EQ(g.AttributeCategoryOf(g.FindAttribute("longitude")),
            AttributeCategory::kSpatial);
  EXPECT_EQ(g.AttributeCategoryOf(g.FindAttribute("population")),
            AttributeCategory::kQuantity);
}

TEST(KgExtraTest, TeamMembersShareBodyCluster) {
  // The (team, athlete, weight) key chain requires teammates to cluster:
  // within-team weight variance must undercut global variance.
  const Dataset ds = MakeFb15k237Like({.scale = 0.1, .seed = 3});
  const auto& g = ds.graph;
  const auto weight = g.FindAttribute("weight");
  const auto team_rel = g.FindRelation("team");
  // Map team entity -> member weights.
  std::map<EntityId, std::vector<double>> teams;
  for (const auto& t : g.relational_triples()) {
    if (t.relation != team_rel) continue;
    double w = 0.0;
    if (g.GetAttribute(t.head, weight, &w)) teams[t.tail].push_back(w);
  }
  double within_var = 0.0;
  int within_n = 0;
  std::vector<double> all;
  for (const auto& [team, weights] : teams) {
    all.insert(all.end(), weights.begin(), weights.end());
    if (weights.size() < 2) continue;
    double mean = 0.0;
    for (double w : weights) mean += w;
    mean /= static_cast<double>(weights.size());
    for (double w : weights) within_var += (w - mean) * (w - mean);
    within_n += static_cast<int>(weights.size());
  }
  ASSERT_GT(within_n, 10);
  within_var /= within_n;
  double gmean = 0.0;
  for (double w : all) gmean += w;
  gmean /= static_cast<double>(all.size());
  double gvar = 0.0;
  for (double w : all) gvar += (w - gmean) * (w - gmean);
  gvar /= static_cast<double>(all.size());
  EXPECT_LT(within_var, gvar * 0.6);
}

}  // namespace
}  // namespace kg
}  // namespace chainsformer
