// Tests for src/serve: CFSM checkpoint round-trips, the sharded ToC cache,
// and the batching InferenceService (deadlines, degradation, concurrency).

#include <atomic>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/chainsformer.h"
#include "graph/runtime.h"
#include "kg/synthetic.h"
#include "serve/admin.h"
#include "serve/cache.h"
#include "serve/checkpoint.h"
#include "serve/service.h"
#include "util/metrics.h"
#include "util/trace.h"

namespace chainsformer {
namespace serve {
namespace {

using core::ChainsFormerConfig;
using core::ChainsFormerModel;
using core::Query;
using core::TreeOfChains;

ChainsFormerConfig SmallConfig() {
  ChainsFormerConfig config;
  config.num_walks = 32;
  config.top_k = 8;
  config.hidden_dim = 16;
  config.filter_dim = 8;
  config.encoder_layers = 1;
  config.reasoner_layers = 1;
  config.num_heads = 2;
  config.epochs = 2;
  config.max_train_queries = 120;
  config.filter_pretrain_queries = 60;
  config.filter_pretrain_epochs = 1;
  config.seed = 13;
  config.verbose = false;
  return config;
}

/// One trained model per test binary; training even the small synthetic
/// model costs seconds, so every test shares it (read-only: the serving
/// surface is const).
struct Trained {
  kg::Dataset dataset = kg::MakeYago15kLike({.scale = 0.08});
  ChainsFormerConfig config = SmallConfig();
  std::unique_ptr<ChainsFormerModel> model;

  Trained() {
    model = std::make_unique<ChainsFormerModel>(dataset, config);
    model->Train();
  }
};

Trained& Shared() {
  static Trained* trained = new Trained();
  return *trained;
}

/// Held-out (valid + test) queries, the round-trip acceptance set.
std::vector<Query> HeldOutQueries(const kg::Dataset& ds, size_t at_least) {
  std::vector<Query> queries;
  for (const auto& t : ds.split.test) queries.push_back({t.entity, t.attribute});
  for (const auto& t : ds.split.valid) queries.push_back({t.entity, t.attribute});
  EXPECT_GE(queries.size(), at_least)
      << "synthetic split too small for the acceptance criterion";
  return queries;
}

// --- Checkpoint round-trip ---------------------------------------------------

TEST(ServeCheckpointTest, RoundTripPredictsBitwiseIdentical) {
  Trained& t = Shared();
  const std::string path = "/tmp/cf_serve_roundtrip.cfsm";
  ASSERT_TRUE(SaveModel(*t.model, path));
  ASSERT_TRUE(IsModelCheckpoint(path));

  // Load with a *default* base config: everything that matters must come
  // from the checkpoint itself, as it would in a fresh serving process.
  ChainsFormerConfig base;
  base.verbose = false;
  std::unique_ptr<ChainsFormerModel> loaded =
      LoadModel(t.dataset, base, path);
  ASSERT_NE(loaded, nullptr);
  EXPECT_EQ(loaded->config().hidden_dim, t.config.hidden_dim);
  EXPECT_EQ(loaded->config().seed, t.config.seed);

  const std::vector<Query> queries = HeldOutQueries(t.dataset, 100);
  for (size_t i = 0; i < queries.size(); ++i) {
    const double original = t.model->Predict(queries[i]);
    const double restored = loaded->Predict(queries[i]);
    ASSERT_EQ(original, restored) << "held-out query " << i << " diverged";
  }
  std::remove(path.c_str());
}

TEST(ServeCheckpointTest, LoadRejectsMissingAndForeignFiles) {
  ChainsFormerConfig base;
  base.verbose = false;
  Trained& t = Shared();
  EXPECT_EQ(LoadModel(t.dataset, base, "/tmp/cf_serve_nope.cfsm"), nullptr);
  const std::string path = "/tmp/cf_serve_foreign.bin";
  {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    std::fputs("not a checkpoint", f);
    std::fclose(f);
  }
  EXPECT_FALSE(IsModelCheckpoint(path));
  EXPECT_EQ(LoadModel(t.dataset, base, path), nullptr);
  std::remove(path.c_str());
}

TEST(ServeCheckpointDeathTest, VocabMismatchAbortsNamed) {
  Trained& t = Shared();
  const std::string path = "/tmp/cf_serve_vocabmismatch.cfsm";
  ASSERT_TRUE(SaveModel(*t.model, path));
  // A dataset at a different scale has a different entity count.
  const kg::Dataset other = kg::MakeYago15kLike({.scale = 0.03});
  ChainsFormerConfig base;
  base.verbose = false;
  EXPECT_DEATH(LoadModel(other, base, path), "entities");
  std::remove(path.c_str());
}

// --- Micro-batching invariance ----------------------------------------------

TEST(ServeBatchingTest, PredictOnChainSetsMatchesPredictBitwise) {
  Trained& t = Shared();
  std::vector<Query> queries = HeldOutQueries(t.dataset, 100);
  queries.resize(24);

  std::vector<TreeOfChains> chains;
  chains.reserve(queries.size());
  for (const Query& q : queries) chains.push_back(t.model->RetrieveChains(q));
  std::vector<const TreeOfChains*> chain_ptrs;
  for (const TreeOfChains& c : chains) chain_ptrs.push_back(&c);

  // The whole set rides ONE EncodeBatch pass; every entry must still equal
  // the standalone Predict bit-for-bit (DESIGN §6c).
  const std::vector<core::BatchPrediction> batched =
      t.model->PredictOnChainSets(queries, chain_ptrs);
  ASSERT_EQ(batched.size(), queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    EXPECT_EQ(batched[i].value, t.model->Predict(queries[i]))
        << "query " << i << " diverged in the micro-batch";
  }
}

TEST(ServeBatchingTest, RetrieveChainsIsDeterministic) {
  Trained& t = Shared();
  const Query q = HeldOutQueries(t.dataset, 1).front();
  const TreeOfChains a = t.model->RetrieveChains(q);
  const TreeOfChains b = t.model->RetrieveChains(q);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_TRUE(a[i].SamePattern(b[i]));
    EXPECT_EQ(a[i].source_entity, b[i].source_entity);
    EXPECT_EQ(a[i].source_value, b[i].source_value);
  }
}

// --- Cache -------------------------------------------------------------------

TEST(ShardedChainCacheTest, HitReturnsSameTreeOfChains) {
  Trained& t = Shared();
  const Query q = HeldOutQueries(t.dataset, 1).front();
  const TreeOfChains original = t.model->RetrieveChains(q);

  ShardedChainCache cache(/*capacity=*/64, /*shards=*/4);
  TreeOfChains out;
  EXPECT_FALSE(cache.Get(q.entity, q.attribute, &out));
  cache.Put(q.entity, q.attribute, original);
  ASSERT_TRUE(cache.Get(q.entity, q.attribute, &out));
  ASSERT_EQ(out.size(), original.size());
  for (size_t i = 0; i < out.size(); ++i) {
    EXPECT_TRUE(out[i].SamePattern(original[i]));
    EXPECT_EQ(out[i].source_entity, original[i].source_entity);
    EXPECT_EQ(out[i].source_value, original[i].source_value);
  }
}

TEST(ShardedChainCacheTest, EvictsLeastRecentlyUsedPerShard) {
  ShardedChainCache cache(/*capacity=*/2, /*shards=*/1);
  TreeOfChains out;
  cache.Put(1, 0, {});
  cache.Put(2, 0, {});
  EXPECT_TRUE(cache.Get(1, 0, &out));  // touch 1 -> 2 becomes LRU
  cache.Put(3, 0, {});                 // evicts 2
  EXPECT_TRUE(cache.Get(1, 0, &out));
  EXPECT_FALSE(cache.Get(2, 0, &out));
  EXPECT_TRUE(cache.Get(3, 0, &out));
}

TEST(ShardedChainCacheTest, InvalidateDropsEverything) {
  ShardedChainCache cache(/*capacity=*/16, /*shards=*/2);
  cache.Put(1, 0, {});
  cache.Put(2, 1, {});
  const uint64_t gen = cache.generation();
  cache.Invalidate();
  EXPECT_EQ(cache.generation(), gen + 1);
  TreeOfChains out;
  EXPECT_FALSE(cache.Get(1, 0, &out));
  EXPECT_FALSE(cache.Get(2, 1, &out));
}

// --- Service -----------------------------------------------------------------

TEST(InferenceServiceTest, AnswersMatchDirectPredictBitwise) {
  Trained& t = Shared();
  ServeOptions options;
  options.batch_window_us = 0;  // dispatch immediately, single-threaded client
  options.deadline_ms = 0;      // no deadline: the model must answer
  InferenceService service(*t.model, options);
  std::vector<Query> queries = HeldOutQueries(t.dataset, 100);
  queries.resize(16);
  for (const Query& q : queries) {
    const ServeResponse r = service.Predict(q);
    if (r.degraded) {
      EXPECT_EQ(r.source, "empty_toc");
      continue;
    }
    EXPECT_EQ(r.source, "model");
    EXPECT_EQ(r.value, t.model->Predict(q));
    EXPECT_GE(r.batch_size, 1);
  }
}

TEST(InferenceServiceTest, DeadlineExpiryDegradesInsteadOfCrashing) {
  Trained& t = Shared();
  ServeOptions options;
  // Force deadlines to lose the race: single-request dispatch serializes one
  // forward pass per queued request, so with a burst of concurrent clients
  // the tail of the queue must wait many forward-passes — far longer than
  // the 1 ms each client is willing to wait. (A coalescing window cannot
  // stage this any more: the dispatcher answers an idle queue immediately.)
  options.batch_window_us = 0;
  options.max_batch = 1;
  options.deadline_ms = 1;
  InferenceService service(*t.model, options);
  const Query q = HeldOutQueries(t.dataset, 1).front();
  constexpr int kClients = 16;
  std::vector<ServeResponse> responses(kClients);
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back(
        [&service, &responses, &q, c] { responses[c] = service.Predict(q); });
  }
  for (auto& th : clients) th.join();
  const auto& stats = t.model->train_stats()[static_cast<size_t>(q.attribute)];
  int degraded = 0;
  for (const ServeResponse& r : responses) {
    if (!r.degraded) continue;
    ++degraded;
    EXPECT_EQ(r.source, "deadline");
    // The fallback is the train-split attribute mean — a usable value.
    EXPECT_GE(r.value, stats.min - 1.0);
    EXPECT_LE(r.value, stats.max + 1.0);
  }
  EXPECT_GT(degraded, 0);
}

TEST(InferenceServiceTest, CacheHitsAccumulateOnRepeatedQueries) {
  Trained& t = Shared();
  ServeOptions options;
  options.batch_window_us = 0;
  options.deadline_ms = 0;
  InferenceService service(*t.model, options);
  const Query q = HeldOutQueries(t.dataset, 1).front();
  const auto before =
      metrics::MetricsRegistry::Global().Snapshot().CounterValue(
          "serve.cache_hits");
  const ServeResponse first = service.Predict(q);
  for (int i = 0; i < 4; ++i) {
    const ServeResponse again = service.Predict(q);
    EXPECT_EQ(again.value, first.value) << "cache changed the answer";
  }
  const auto after =
      metrics::MetricsRegistry::Global().Snapshot().CounterValue(
          "serve.cache_hits");
  EXPECT_GE(after - before, 4);
}

// Duplicate in-flight requests for the same (entity, attribute) coalesce
// into one forward pass (serve.batch_dedup), and every copy still gets the
// bitwise Predict answer — sound only because predictions are deterministic.
TEST(InferenceServiceTest, DuplicateQueriesCoalesceInBatch) {
  Trained& t = Shared();
  ServeOptions options;
  options.batch_window_us = 200000;  // wide window: both clients join one batch
  options.max_batch = 8;
  options.deadline_ms = 0;
  InferenceService service(*t.model, options);
  Query q;
  for (const Query& candidate : HeldOutQueries(t.dataset, 8)) {
    if (!t.model->RetrieveChains(candidate).empty()) {
      q = candidate;
      break;
    }
  }
  const double expected = t.model->Predict(q);
  // The rendezvous is timing-dependent: the first Predict can dispatch alone
  // before the second client thread even starts (sanitizer builds slow thread
  // spawn by orders of magnitude). Retry until both land in one batch — the
  // properties under test are about what coalescing DOES, not its odds.
  ServeResponse r1, r2;
  int64_t before = 0;
  for (int attempt = 0; attempt < 16 && r1.batch_size != 2; ++attempt) {
    before = metrics::MetricsRegistry::Global().Snapshot().CounterValue(
        "serve.batch_dedup");
    std::thread first([&] { r1 = service.Predict(q); });
    std::thread second([&] { r2 = service.Predict(q); });
    first.join();
    second.join();
  }
  EXPECT_EQ(r1.source, "model");
  EXPECT_EQ(r1.value, expected);
  EXPECT_EQ(r2.value, expected);
  ASSERT_EQ(r1.batch_size, 2) << "clients missed the coalescing window";
  const auto after =
      metrics::MetricsRegistry::Global().Snapshot().CounterValue(
          "serve.batch_dedup");
  EXPECT_EQ(after - before, 1);
}

// Eight concurrent clients hammer the service; every request must complete
// with a usable answer (model or degraded), and model answers must match the
// direct Predict bit-for-bit regardless of batch composition. Runs under the
// `threaded` ctest label so tools/run_sanitizers.sh covers it with Tsan.
TEST(InferenceServiceTest, ConcurrentClientsStress) {
  Trained& t = Shared();
  ServeOptions options;
  options.batch_window_us = 500;
  options.max_batch = 16;
  options.deadline_ms = 2000;  // generous: degradation is not the point here
  InferenceService service(*t.model, options);

  std::vector<Query> queries = HeldOutQueries(t.dataset, 100);
  // ChainsFormerModel::Predict is not thread-safe (it feeds the chain
  // cache), so the expected values are computed serially up front.
  std::vector<double> expected;
  expected.reserve(queries.size());
  for (const Query& q : queries) expected.push_back(t.model->Predict(q));

  constexpr int kClients = 8;
  constexpr int kRequestsPerClient = 25;
  std::atomic<int> answered{0};
  std::atomic<int> model_answers{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int i = 0; i < kRequestsPerClient; ++i) {
        const size_t qi = (c * 37 + i * 11) % queries.size();
        const ServeResponse r = service.Predict(queries[qi]);
        ASSERT_FALSE(r.source.empty());
        answered.fetch_add(1);
        if (r.source == "model") {
          model_answers.fetch_add(1);
          ASSERT_EQ(r.value, expected[qi]);
        }
      }
    });
  }
  for (auto& client : clients) client.join();
  EXPECT_EQ(answered.load(), kClients * kRequestsPerClient);
  EXPECT_GT(model_answers.load(), 0);
}

// --- Request tracing ---------------------------------------------------------

/// Finds a held-out query with a non-empty Tree of Chains (so it reaches
/// the dispatcher instead of degrading to empty_toc).
Query RetrievableQuery(Trained& t) {
  for (const Query& candidate : HeldOutQueries(t.dataset, 8)) {
    if (!t.model->RetrieveChains(candidate).empty()) return candidate;
  }
  ADD_FAILURE() << "no retrievable held-out query";
  return {};
}

// Duplicate (entity, attribute) requests share one forward pass, but each
// response must carry its own trace id, the shared batch identity, and
// per-request span timings; exactly one of the two is the dedup-collapsed
// rider. The Chrome trace must contain both request timelines.
TEST(InferenceServiceTest, TracePropagationUnderDedupCoalescing) {
  Trained& t = Shared();
  ServeOptions options;
  options.batch_window_us = 200000;  // wide window: both clients join one batch
  options.max_batch = 8;
  options.deadline_ms = 0;
  InferenceService service(*t.model, options);
  const Query q = RetrievableQuery(t);
  const double expected = t.model->Predict(q);

  trace::SetEnabled(true);
  constexpr uint64_t kTraceA = 0xA11CE;
  constexpr uint64_t kTraceB = 0xB0B;
  // Retried rendezvous, as in DuplicateQueriesCoalesceInBatch: the trace is
  // cleared per attempt so the drained timeline holds only the coalesced run.
  ServeResponse r1, r2;
  for (int attempt = 0; attempt < 16 && r1.batch_size != 2; ++attempt) {
    trace::Clear();
    std::thread first([&] { r1 = service.Predict(q, kTraceA); });
    std::thread second([&] { r2 = service.Predict(q, kTraceB); });
    first.join();
    second.join();
  }
  const std::string trace_json = trace::DrainChromeTraceJson();
  trace::SetEnabled(false);

  // Client-supplied ids come back on the matching response.
  EXPECT_EQ(r1.trace_id, kTraceA);
  EXPECT_EQ(r2.trace_id, kTraceB);
  EXPECT_EQ(r1.value, expected);
  EXPECT_EQ(r2.value, expected);

  // One batch, one forward: same batch id, exactly one collapsed rider.
  ASSERT_EQ(r1.batch_size, 2) << "clients missed the coalescing window";
  EXPECT_EQ(r2.batch_size, 2);
  EXPECT_GE(r1.batch_id, 0);
  EXPECT_EQ(r1.batch_id, r2.batch_id);
  EXPECT_NE(r1.dedup_collapsed, r2.dedup_collapsed);

  // Both requests get their own phase breakdown; the forward pass is shared
  // so its cost is identical.
  EXPECT_GE(r1.queue_us, 0);
  EXPECT_GE(r2.queue_us, 0);
  EXPECT_GT(r1.compute_us + r1.verify_us, 0);
  EXPECT_EQ(r1.compute_us, r2.compute_us);
  // Phases nest inside the request: none can exceed the total.
  for (const ServeResponse* r : {&r1, &r2}) {
    EXPECT_LE(r->compute_us, r->latency_us + 1000);
    EXPECT_LE(r->queue_us + r->window_us, r->latency_us + 1000);
  }

  // Both timelines are in the Perfetto trace, per-request spans included.
  EXPECT_NE(trace_json.find("\"trace_id\": \"" + std::to_string(kTraceA) +
                            "\""),
            std::string::npos);
  EXPECT_NE(trace_json.find("\"trace_id\": \"" + std::to_string(kTraceB) +
                            "\""),
            std::string::npos);
  for (const char* span :
       {"serve.request", "serve.cache_lookup", "serve.queue_wait",
        "serve.batch_window", "serve.compute"}) {
    EXPECT_NE(trace_json.find(std::string("\"name\": \"") + span + "\""),
              std::string::npos)
        << "span " << span << " missing from the drained trace";
  }
  EXPECT_NE(trace_json.find("\"dedup_collapsed\": true"), std::string::npos);
  EXPECT_NE(trace_json.find("\"batch_size\": 2"), std::string::npos);
}

// Without a client-supplied id the service generates distinct, nonzero,
// deterministic ids from the RNG seam (same seed + same order = same ids).
TEST(InferenceServiceTest, GeneratedTraceIdsAreDistinctAndDeterministic) {
  Trained& t = Shared();
  ServeOptions options;
  options.batch_window_us = 0;
  options.deadline_ms = 0;
  std::vector<uint64_t> first_run, second_run;
  const Query q = RetrievableQuery(t);
  for (int run = 0; run < 2; ++run) {
    InferenceService service(*t.model, options);
    std::vector<uint64_t>& ids = run == 0 ? first_run : second_run;
    for (int i = 0; i < 3; ++i) ids.push_back(service.Predict(q).trace_id);
  }
  EXPECT_NE(first_run[0], 0u);
  EXPECT_NE(first_run[0], first_run[1]);
  EXPECT_NE(first_run[1], first_run[2]);
  EXPECT_EQ(first_run, second_run)
      << "trace ids must be reproducible across identical runs (RNG seam)";
}

// The admin snapshot over a live service reports live percentiles, SLO
// rates, cache hit rate, and per-bucket plan stats in both formats.
TEST(InferenceServiceTest, AdminSnapshotsReflectLiveService) {
  Trained& t = Shared();
  ServeOptions options;
  options.batch_window_us = 0;
  options.deadline_ms = 0;
  InferenceService service(*t.model, options);
  const Query q = RetrievableQuery(t);
  for (int i = 0; i < 4; ++i) service.Predict(q);

  const std::string json = StatusJson(&service);
  EXPECT_EQ(json.find('\n'), std::string::npos) << "statusz must be one line";
  for (const char* needle :
       {"\"serve.phase.total_us\"", "\"p50\"", "\"p90\"", "\"p99\"",
        "\"deadline_miss_rate\"", "\"degraded_by_cause\"", "\"hit_rate\"",
        "\"plan_buckets\"", "\"plan_verify_failures\""}) {
    EXPECT_NE(json.find(needle), std::string::npos)
        << needle << " missing from statusz JSON";
  }
  // The service answered 4 requests through one plan bucket.
  ASSERT_NE(service.static_runtime(), nullptr);
  EXPECT_FALSE(service.static_runtime()->Stats().empty());
  EXPECT_NE(json.find("\"ready\": true"), std::string::npos);

  const std::string prom = PrometheusText(&service);
  for (const char* needle :
       {"# TYPE cf_serve_requests counter",
        "cf_window_serve_phase_total_us_p50",
        "cf_window_serve_phase_total_us_p99", "cf_slo_deadline_miss_rate",
        "cf_slo_degraded_cause_rate{cause=\"deadline\"}",
        "cf_plan_bucket_ready"}) {
    EXPECT_NE(prom.find(needle), std::string::npos)
        << needle << " missing from Prometheus text";
  }
}

}  // namespace
}  // namespace serve
}  // namespace chainsformer
