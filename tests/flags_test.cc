#include "util/flags.h"

#include <gtest/gtest.h>

namespace chainsformer {
namespace {

FlagParser Parse(std::vector<std::string> args) {
  static std::vector<std::string> storage;
  storage = std::move(args);
  storage.insert(storage.begin(), "prog");
  std::vector<char*> argv;
  for (auto& s : storage) argv.push_back(s.data());
  return FlagParser(static_cast<int>(argv.size()), argv.data());
}

TEST(FlagParserTest, PositionalArguments) {
  auto flags = Parse({"train", "extra"});
  ASSERT_EQ(flags.positional().size(), 2u);
  EXPECT_EQ(flags.positional()[0], "train");
  EXPECT_EQ(flags.positional()[1], "extra");
}

TEST(FlagParserTest, KeyEqualsValue) {
  auto flags = Parse({"--epochs=20", "--lr=0.5"});
  EXPECT_EQ(flags.GetInt("epochs", 0), 20);
  EXPECT_DOUBLE_EQ(flags.GetDouble("lr", 0.0), 0.5);
}

TEST(FlagParserTest, KeySpaceValue) {
  auto flags = Parse({"--checkpoint", "/tmp/x.bin"});
  EXPECT_EQ(flags.GetString("checkpoint"), "/tmp/x.bin");
}

TEST(FlagParserTest, BooleanFlags) {
  auto flags = Parse({"--verbose", "--quiet=false"});
  EXPECT_TRUE(flags.GetBool("verbose", false));
  EXPECT_FALSE(flags.GetBool("quiet", true));
  EXPECT_TRUE(flags.GetBool("absent", true));
}

TEST(FlagParserTest, DefaultsWhenMissing) {
  auto flags = Parse({});
  EXPECT_EQ(flags.GetInt("n", 7), 7);
  EXPECT_EQ(flags.GetString("s", "d"), "d");
  EXPECT_FALSE(flags.Has("anything"));
}

TEST(FlagParserTest, UnreadKeyDetection) {
  auto flags = Parse({"--used=1", "--typo=2"});
  EXPECT_EQ(flags.GetInt("used", 0), 1);
  const auto unread = flags.UnreadKeys();
  ASSERT_EQ(unread.size(), 1u);
  EXPECT_EQ(unread[0], "typo");
}

}  // namespace
}  // namespace chainsformer
