#include "core/trace_export.h"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

#include "kg/synthetic.h"

namespace chainsformer {
namespace core {
namespace {

class TraceExportTest : public ::testing::Test {
 protected:
  static kg::Dataset MakeData() { return kg::MakeToyDataset(); }

  static Explanation MakeExplanation(const kg::Dataset& ds) {
    Explanation ex;
    ex.prediction = 1963.5;
    ex.has_evidence = true;
    ex.toc_size = 10;
    ex.filtered_size = 2;
    RAChain c1;
    c1.source_attribute = ds.graph.FindAttribute("birth");
    c1.query_attribute = ds.graph.FindAttribute("birth");
    c1.relations = {ds.graph.FindRelation("sibling")};
    c1.source_value = 1962.0;
    c1.source_entity = ds.graph.FindEntity("bob");
    RAChain c2 = c1;
    c2.source_value = 1965.0;
    c2.source_entity = ds.graph.FindEntity("carol");
    ex.weighted_chains = {{c1, 0.7}, {c2, 0.3}};
    return ex;
  }
};

TEST_F(TraceExportTest, DotContainsQueryAndEvidence) {
  const kg::Dataset ds = MakeData();
  const Query q{ds.graph.FindEntity("alice"), ds.graph.FindAttribute("birth")};
  const std::string dot = ExplanationToDot(ds.graph, q, MakeExplanation(ds));
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("\"alice\""), std::string::npos);
  EXPECT_NE(dot.find("\"bob\""), std::string::npos);
  EXPECT_NE(dot.find("\"carol\""), std::string::npos);
  EXPECT_NE(dot.find("sibling"), std::string::npos);
  EXPECT_NE(dot.find("omega=0.700"), std::string::npos);
  EXPECT_NE(dot.find("1963.50 (predicted)"), std::string::npos);
}

TEST_F(TraceExportTest, MaxChainsLimitsEdges) {
  const kg::Dataset ds = MakeData();
  const Query q{ds.graph.FindEntity("alice"), ds.graph.FindAttribute("birth")};
  const std::string dot = ExplanationToDot(ds.graph, q, MakeExplanation(ds), 1);
  EXPECT_NE(dot.find("\"bob\""), std::string::npos);
  EXPECT_EQ(dot.find("\"carol\""), std::string::npos);
}

TEST_F(TraceExportTest, WritesFile) {
  const kg::Dataset ds = MakeData();
  const Query q{ds.graph.FindEntity("alice"), ds.graph.FindAttribute("birth")};
  const std::string path = "/tmp/cf_trace_test.dot";
  ASSERT_TRUE(WriteExplanationDot(path, ds.graph, q, MakeExplanation(ds)));
  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  EXPECT_NE(buffer.str().find("digraph"), std::string::npos);
  std::remove(path.c_str());
}

TEST_F(TraceExportTest, CreatesMissingParentDirectories) {
  const kg::Dataset ds = MakeData();
  const Query q{ds.graph.FindEntity("alice"), ds.graph.FindAttribute("birth")};
  std::filesystem::remove_all("/tmp/cf_trace_export_dirs");
  const std::string path = "/tmp/cf_trace_export_dirs/a/b/trace.dot";
  ASSERT_TRUE(WriteExplanationDot(path, ds.graph, q, MakeExplanation(ds)));
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buffer;
  buffer << in.rdbuf();
  EXPECT_NE(buffer.str().find("digraph"), std::string::npos);
  std::filesystem::remove_all("/tmp/cf_trace_export_dirs");
}

TEST_F(TraceExportTest, ReturnsFalseOnUnwritablePath) {
  const kg::Dataset ds = MakeData();
  const Query q{ds.graph.FindEntity("alice"), ds.graph.FindAttribute("birth")};
  // The would-be parent directory is a regular file, so directory creation
  // and the subsequent open both fail; WriteExplanationDot must report it.
  const std::string blocker = "/tmp/cf_trace_export_blocker";
  std::ofstream(blocker) << "x";
  EXPECT_FALSE(WriteExplanationDot(blocker + "/trace.dot", ds.graph, q,
                                   MakeExplanation(ds)));
  std::remove(blocker.c_str());
}

TEST_F(TraceExportTest, EscapesQuotes) {
  kg::KnowledgeGraph g;
  const auto e = g.AddEntity("weird\"name");
  const auto other = g.AddEntity("x");
  const auto rel = g.AddRelation("r");
  const auto a = g.AddAttribute("a");
  g.AddTriple(e, rel, other);
  g.AddNumeric(other, a, 1.0);
  g.Finalize();
  Explanation ex;
  ex.has_evidence = true;
  ex.prediction = 1.0;
  RAChain c;
  c.source_attribute = a;
  c.query_attribute = a;
  c.relations = {rel};
  c.source_value = 1.0;
  c.source_entity = other;
  ex.weighted_chains = {{c, 1.0}};
  const std::string dot = ExplanationToDot(g, {e, a}, ex);
  EXPECT_NE(dot.find("weird\\\"name"), std::string::npos);
}

}  // namespace
}  // namespace core
}  // namespace chainsformer
