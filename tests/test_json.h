#ifndef CHAINSFORMER_TESTS_TEST_JSON_H_
#define CHAINSFORMER_TESTS_TEST_JSON_H_

// Minimal JSON syntax checker for tests that assert exported metrics/trace
// files are well-formed, plus a helper to pull one numeric field out. Not a
// general-purpose parser — just enough to catch malformed serialization.

#include <cctype>
#include <cstdlib>
#include <string>

namespace chainsformer {
namespace test_json {

class Checker {
 public:
  explicit Checker(const std::string& text) : s_(text) {}

  bool Valid() {
    pos_ = 0;
    SkipSpace();
    if (!Value()) return false;
    SkipSpace();
    return pos_ == s_.size();
  }

 private:
  void SkipSpace() {
    while (pos_ < s_.size() && std::isspace(static_cast<unsigned char>(s_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool String() {
    if (!Consume('"')) return false;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      if (s_[pos_] == '\\') ++pos_;  // skip escaped char
      ++pos_;
    }
    return Consume('"');
  }

  bool Number() {
    const size_t start = pos_;
    if (pos_ < s_.size() && (s_[pos_] == '-' || s_[pos_] == '+')) ++pos_;
    bool digits = false;
    auto eat_digits = [&] {
      while (pos_ < s_.size() && std::isdigit(static_cast<unsigned char>(s_[pos_]))) {
        ++pos_;
        digits = true;
      }
    };
    eat_digits();
    if (pos_ < s_.size() && s_[pos_] == '.') {
      ++pos_;
      eat_digits();
    }
    if (digits && pos_ < s_.size() && (s_[pos_] == 'e' || s_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < s_.size() && (s_[pos_] == '-' || s_[pos_] == '+')) ++pos_;
      const bool had = digits;
      digits = false;
      eat_digits();
      digits = digits && had;
    }
    return digits && pos_ > start;
  }

  bool Literal(const char* word) {
    const size_t len = std::string(word).size();
    if (s_.compare(pos_, len, word) == 0) {
      pos_ += len;
      return true;
    }
    return false;
  }

  bool Value() {
    SkipSpace();
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{':
        return Object();
      case '[':
        return Array();
      case '"':
        return String();
      case 't':
        return Literal("true");
      case 'f':
        return Literal("false");
      case 'n':
        return Literal("null");
      default:
        return Number();
    }
  }

  bool Object() {
    if (!Consume('{')) return false;
    SkipSpace();
    if (Consume('}')) return true;
    for (;;) {
      SkipSpace();
      if (!String()) return false;
      SkipSpace();
      if (!Consume(':')) return false;
      if (!Value()) return false;
      SkipSpace();
      if (Consume('}')) return true;
      if (!Consume(',')) return false;
    }
  }

  bool Array() {
    if (!Consume('[')) return false;
    SkipSpace();
    if (Consume(']')) return true;
    for (;;) {
      if (!Value()) return false;
      SkipSpace();
      if (Consume(']')) return true;
      if (!Consume(',')) return false;
    }
  }

  const std::string& s_;
  size_t pos_ = 0;
};

/// True when `text` is one syntactically valid JSON value.
inline bool IsValidJson(const std::string& text) { return Checker(text).Valid(); }

/// Finds `"key": <number>` anywhere in `text` and stores the number. Returns
/// false when the key is absent. (Flat textual lookup — fine for the metric
/// names used in tests, which are globally unique.)
inline bool FindNumberAfterKey(const std::string& text, const std::string& key,
                               double* out) {
  const std::string needle = "\"" + key + "\":";
  const size_t at = text.find(needle);
  if (at == std::string::npos) return false;
  *out = std::atof(text.c_str() + at + needle.size());
  return true;
}

}  // namespace test_json
}  // namespace chainsformer

#endif  // CHAINSFORMER_TESTS_TEST_JSON_H_
