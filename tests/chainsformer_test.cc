#include "core/chainsformer.h"

#include <cmath>
#include <cstdio>

#include <gtest/gtest.h>

#include "kg/synthetic.h"

namespace chainsformer {
namespace core {
namespace {

ChainsFormerConfig TinyConfig() {
  ChainsFormerConfig c;
  c.max_hops = 3;
  c.num_walks = 48;
  c.top_k = 8;
  c.hidden_dim = 16;
  c.filter_dim = 8;
  c.encoder_layers = 1;
  c.reasoner_layers = 1;
  c.num_heads = 2;
  c.epochs = 4;
  c.patience = 4;
  c.max_train_queries = 120;
  c.max_eval_queries = 80;
  c.filter_pretrain_queries = 60;
  c.filter_pretrain_epochs = 1;
  c.learning_rate = 5e-3f;
  c.seed = 11;
  return c;
}

class ChainsFormerModelTest : public ::testing::Test {
 protected:
  static const kg::Dataset& Data() {
    static const kg::Dataset* ds =
        new kg::Dataset(kg::MakeYago15kLike({.scale = 0.05}));
    return *ds;
  }
};

TEST_F(ChainsFormerModelTest, TrainingReducesLoss) {
  ChainsFormerModel model(Data(), TinyConfig());
  const TrainReport report = model.Train();
  ASSERT_GE(report.epochs_run, 2);
  EXPECT_LT(report.train_losses.back(), report.train_losses.front());
  EXPECT_GT(report.filter_pretrain_pairs, 0);
}

TEST_F(ChainsFormerModelTest, EvaluateReturnsFiniteMetrics) {
  ChainsFormerModel model(Data(), TinyConfig());
  model.Train();
  const eval::EvalResult r = model.Evaluate(Data().split.test);
  EXPECT_GT(r.total_count, 0);
  EXPECT_TRUE(std::isfinite(r.normalized_mae));
  EXPECT_TRUE(std::isfinite(r.normalized_rmse));
  EXPECT_GE(r.normalized_rmse, r.normalized_mae);
}

TEST_F(ChainsFormerModelTest, PredictionsWithinPlausibleRange) {
  ChainsFormerModel model(Data(), TinyConfig());
  model.Train();
  for (int i = 0; i < 20; ++i) {
    const auto& t = Data().split.test[static_cast<size_t>(i)];
    const double pred = model.Predict({t.entity, t.attribute});
    const auto& s = model.train_stats()[static_cast<size_t>(t.attribute)];
    EXPECT_TRUE(std::isfinite(pred));
    EXPECT_GE(pred, s.min - 0.2 * s.Range() - 1e-9);
    EXPECT_LE(pred, s.max + 0.2 * s.Range() + 1e-9);
  }
}

TEST_F(ChainsFormerModelTest, ExplainProducesWeightedChains) {
  ChainsFormerModel model(Data(), TinyConfig());
  model.Train();
  const auto& t = Data().split.test.front();
  const Explanation ex = model.Explain({t.entity, t.attribute});
  EXPECT_TRUE(std::isfinite(ex.prediction));
  if (ex.has_evidence) {
    EXPECT_GT(ex.toc_size, 0u);
    EXPECT_GE(ex.toc_size, ex.filtered_size);
    ASSERT_FALSE(ex.weighted_chains.empty());
    double total = 0.0;
    double prev = 1.0;
    for (const auto& [chain, w] : ex.weighted_chains) {
      EXPECT_LE(w, prev + 1e-6);  // sorted descending
      prev = w;
      total += w;
    }
    EXPECT_NEAR(total, 1.0, 1e-4);
  }
}

TEST_F(ChainsFormerModelTest, DeterministicAcrossRuns) {
  ChainsFormerModel a(Data(), TinyConfig());
  ChainsFormerModel b(Data(), TinyConfig());
  a.Train();
  b.Train();
  const auto& t = Data().split.test.front();
  EXPECT_DOUBLE_EQ(a.Predict({t.entity, t.attribute}),
                   b.Predict({t.entity, t.attribute}));
}

TEST_F(ChainsFormerModelTest, TopPatternsReturnsTableVStyleStrings) {
  ChainsFormerModel model(Data(), TinyConfig());
  model.Train();
  const auto lat = Data().graph.FindAttribute("latitude");
  const auto patterns = model.TopPatterns(lat, 5, 10);
  ASSERT_FALSE(patterns.empty());
  for (const auto& [pattern, weight] : patterns) {
    EXPECT_EQ(pattern.front(), '(');
    EXPECT_EQ(pattern.back(), ')');
    EXPECT_GT(weight, 0.0);
  }
}

TEST_F(ChainsFormerModelTest, AblationConfigsAllTrain) {
  // Every Table VI variant must run end to end.
  std::vector<ChainsFormerConfig> variants;
  {
    auto c = TinyConfig();
    c.filter_space = FilterSpace::kRandom;
    variants.push_back(c);
  }
  {
    auto c = TinyConfig();
    c.encoder_type = EncoderType::kMean;
    variants.push_back(c);
  }
  {
    auto c = TinyConfig();
    c.encoder_type = EncoderType::kLstm;
    variants.push_back(c);
  }
  {
    auto c = TinyConfig();
    c.use_numerical_aware = false;
    variants.push_back(c);
  }
  {
    auto c = TinyConfig();
    c.numeric_encoding = NumericEncoding::kLog;
    variants.push_back(c);
  }
  {
    auto c = TinyConfig();
    c.projection = ProjectionMode::kDirect;
    variants.push_back(c);
  }
  {
    auto c = TinyConfig();
    c.use_chain_weighting = false;
    variants.push_back(c);
  }
  {
    auto c = TinyConfig();
    c.balanced_attribute_sampling = false;
    variants.push_back(c);
  }
  {
    auto c = TinyConfig();
    c.reretrieve_each_epoch = true;
    variants.push_back(c);
  }
  {
    auto c = TinyConfig();
    c.loss = core::LossType::kMse;
    variants.push_back(c);
  }
  {
    auto c = TinyConfig();
    c.loss = core::LossType::kSmoothL1;
    variants.push_back(c);
  }
  {
    auto c = TinyConfig();
    c.use_chain_quality = true;
    variants.push_back(c);
  }
  for (auto& c : variants) {
    c.epochs = 2;
    c.max_train_queries = 60;
    c.max_eval_queries = 40;
    ChainsFormerModel model(Data(), c);
    model.Train();
    const auto r = model.Evaluate(Data().split.valid);
    EXPECT_TRUE(std::isfinite(r.normalized_mae));
  }
}

TEST_F(ChainsFormerModelTest, ParallelEvaluationMatchesSerial) {
  ChainsFormerModel model(Data(), TinyConfig());
  model.Train();
  std::vector<kg::NumericalTriple> sample(
      Data().split.test.begin(),
      Data().split.test.begin() +
          std::min<size_t>(60, Data().split.test.size()));
  const auto serial = model.Evaluate(sample);
  ThreadPool pool(4);
  const auto parallel = model.EvaluateParallel(sample, pool);
  EXPECT_DOUBLE_EQ(serial.normalized_mae, parallel.normalized_mae);
  EXPECT_DOUBLE_EQ(serial.normalized_rmse, parallel.normalized_rmse);
  EXPECT_EQ(serial.total_count, parallel.total_count);
}

TEST_F(ChainsFormerModelTest, ChainQualityExtensionTracksPatterns) {
  auto config = TinyConfig();
  config.use_chain_quality = true;
  ChainsFormerModel model(Data(), config);
  model.Train();
  // Training must have populated the evaluator with per-pattern statistics.
  EXPECT_GT(model.chain_quality().num_patterns(), 5);
  // Predictions still work with pruning active.
  const auto& t = Data().split.test.front();
  EXPECT_TRUE(std::isfinite(model.Predict({t.entity, t.attribute})));
}

TEST_F(ChainsFormerModelTest, PredictBeforeTrainFallsBackGracefully) {
  // An untrained model must still produce finite values (random-init forward
  // or fallback), never crash or NaN.
  ChainsFormerModel model(Data(), TinyConfig());
  for (int i = 0; i < 5; ++i) {
    const auto& t = Data().split.test[static_cast<size_t>(i)];
    EXPECT_TRUE(std::isfinite(model.Predict({t.entity, t.attribute})));
  }
}

TEST_F(ChainsFormerModelTest, IsolatedEntityUsesFallback) {
  // Build a dataset with an isolated query entity: no chains can exist, so
  // the model must fall back to the training mean.
  static kg::Dataset* ds = [] {
    auto* d = new kg::Dataset();
    d->name = "isolated";
    auto& g = d->graph;
    const auto age = g.AddAttribute("age");
    const auto knows = g.AddRelation("knows");
    const auto a = g.AddEntity("a");
    const auto b = g.AddEntity("b");
    const auto island = g.AddEntity("island");
    g.AddTriple(a, knows, b);
    g.AddNumeric(a, age, 30.0);
    g.AddNumeric(b, age, 50.0);
    g.AddNumeric(island, age, 70.0);
    g.Finalize();
    d->split.train = {{a, age, 30.0}, {b, age, 50.0}};
    d->split.test = {{island, age, 70.0}};
    return d;
  }();
  ChainsFormerModel model(*ds, TinyConfig());
  model.Train();
  // No chains reach "island": prediction equals the train mean (40).
  EXPECT_DOUBLE_EQ(model.Predict({ds->graph.FindEntity("island"), 0}), 40.0);
  const auto ex = model.Explain({ds->graph.FindEntity("island"), 0});
  EXPECT_FALSE(ex.has_evidence);
}

TEST_F(ChainsFormerModelTest, CheckpointRoundTripReproducesPredictions) {
  ChainsFormerModel trained(Data(), TinyConfig());
  trained.Train();
  const std::string path = "/tmp/cf_checkpoint_test.bin";
  ASSERT_TRUE(trained.SaveCheckpoint(path));

  // A freshly constructed (untrained) model with the same config must
  // reproduce the trained model's predictions after loading.
  ChainsFormerModel loaded(Data(), TinyConfig());
  ASSERT_TRUE(loaded.LoadCheckpoint(path));
  for (int i = 0; i < 10; ++i) {
    const auto& t = Data().split.test[static_cast<size_t>(i)];
    EXPECT_DOUBLE_EQ(trained.Predict({t.entity, t.attribute}),
                     loaded.Predict({t.entity, t.attribute}));
  }
  std::remove(path.c_str());
}

TEST_F(ChainsFormerModelTest, CheckpointRejectsWrongConfig) {
  ChainsFormerModel trained(Data(), TinyConfig());
  trained.Train();
  const std::string path = "/tmp/cf_checkpoint_wrong.bin";
  ASSERT_TRUE(trained.SaveCheckpoint(path));
  auto other = TinyConfig();
  other.hidden_dim = 24;  // different parameter shapes
  ChainsFormerModel incompatible(Data(), other);
  EXPECT_FALSE(incompatible.LoadCheckpoint(path));
  std::remove(path.c_str());
}

TEST_F(ChainsFormerModelTest, ParameterCountPositive) {
  ChainsFormerModel model(Data(), TinyConfig());
  EXPECT_GT(model.NumParameters(), 1000);
}

}  // namespace
}  // namespace core
}  // namespace chainsformer
