#include <atomic>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "util/logging.h"
#include "util/stopwatch.h"
#include "util/string_util.h"
#include "util/thread_pool.h"

namespace chainsformer {
namespace {

TEST(StringUtilTest, SplitBasic) {
  const auto parts = Split("a\tb\tc", '\t');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "b");
  EXPECT_EQ(parts[2], "c");
}

TEST(StringUtilTest, SplitKeepsEmptyFields) {
  const auto parts = Split("a,,b,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[3], "");
}

TEST(StringUtilTest, JoinRoundTrip) {
  const std::vector<std::string> parts = {"x", "y", "z"};
  EXPECT_EQ(Join(parts, "-"), "x-y-z");
  EXPECT_EQ(Join({}, "-"), "");
}

TEST(StringUtilTest, Strip) {
  EXPECT_EQ(Strip("  hi \n"), "hi");
  EXPECT_EQ(Strip(""), "");
  EXPECT_EQ(Strip("   "), "");
  EXPECT_EQ(Strip("a b"), "a b");
}

TEST(StringUtilTest, FormatMetricFixedForModerate) {
  EXPECT_EQ(FormatMetric(3.14159, 3), "3.142");
  EXPECT_EQ(FormatMetric(0.0, 3), "0.000");
}

TEST(StringUtilTest, FormatMetricScientificForExtremes) {
  const std::string big = FormatMetric(1.7e8, 3);
  EXPECT_NE(big.find('e'), std::string::npos);
  const std::string small = FormatMetric(1e-6, 3);
  EXPECT_NE(small.find('e'), std::string::npos);
}

TEST(StringUtilTest, StartsWith) {
  EXPECT_TRUE(StartsWith("chain_former", "chain"));
  EXPECT_FALSE(StartsWith("chain", "chain_former"));
}

TEST(StopwatchTest, ElapsedMonotone) {
  Stopwatch sw;
  const double a = sw.ElapsedSeconds();
  const double b = sw.ElapsedSeconds();
  EXPECT_GE(b, a);
  EXPECT_GE(a, 0.0);
}

TEST(StopwatchTest, ElapsedMicrosMatchesSeconds) {
  Stopwatch sw;
  volatile double x = 0.0;
  for (int i = 0; i < 100000; ++i) x = x + 1.0;
  const int64_t us = sw.ElapsedMicros();
  const double s = sw.ElapsedSeconds();
  EXPECT_GE(us, 0);
  // The second reading happens after the first, so seconds >= micros.
  EXPECT_GE(s * 1e6, static_cast<double>(us));
  EXPECT_GE(sw.ElapsedMicros(), us);
}

TEST(LoggingTest, SetLogSinkCapturesMessages) {
  std::vector<std::pair<LogLevel, std::string>> captured;
  SetLogSink([&captured](LogLevel level, const std::string& line) {
    captured.emplace_back(level, line);
  });
  CF_LOG(Info) << "hello sink " << 42;
  CF_LOG(Warning) << "careful";
  SetLogSink(nullptr);  // restore stderr output
  CF_LOG(Info) << "back to stderr (expected in test output)";
  ASSERT_EQ(captured.size(), 2u);
  EXPECT_EQ(captured[0].first, LogLevel::kInfo);
  EXPECT_NE(captured[0].second.find("[INFO"), std::string::npos);
  EXPECT_NE(captured[0].second.find("hello sink 42"), std::string::npos);
  EXPECT_NE(captured[0].second.find("util_test.cc"), std::string::npos);
  EXPECT_EQ(captured[1].first, LogLevel::kWarning);
  EXPECT_NE(captured[1].second.find("careful"), std::string::npos);
}

TEST(ThreadPoolTest, RunsAllScheduledTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Schedule([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, ParallelForCoversAllIndices) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(64);
  pool.ParallelFor(64, [&hits](size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ParallelForEmptyIsNoop) {
  ThreadPool pool(2);
  pool.ParallelFor(0, [](size_t) { FAIL() << "must not be called"; });
}

TEST(ThreadPoolTest, ChunkedParallelForCoversAllIndices) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(100);
  // grain 7 -> 15 chunks on 3 workers: more tasks than threads.
  pool.ParallelFor(100, 7, [&hits](size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ChunkedParallelForGrainZeroAndOversized) {
  ThreadPool pool(2);
  std::vector<std::atomic<int>> hits(16);
  pool.ParallelFor(16, 0, [&hits](size_t i) { hits[i].fetch_add(1); });
  pool.ParallelFor(16, 1000, [&hits](size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 2);
}

TEST(ThreadPoolTest, ChunkedParallelForEmptyIsNoop) {
  ThreadPool pool(2);
  pool.ParallelFor(0, 4, [](size_t) { FAIL() << "must not be called"; });
  pool.ParallelForRanges(0, 4,
                         [](size_t, size_t) { FAIL() << "must not be called"; });
}

TEST(ThreadPoolTest, ChunkedParallelForOnSizeOnePoolRunsInline) {
  ThreadPool pool(1);
  std::vector<int> hits(64, 0);  // no atomics needed: must run on the caller
  pool.ParallelFor(64, 8, [&hits](size_t i) { hits[i] += 1; });
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(ThreadPoolTest, ParallelForRangesDisjointAndTotal) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(101);
  pool.ParallelForRanges(101, 13, [&hits](size_t begin, size_t end) {
    ASSERT_LT(begin, end);
    for (size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, WaitIsReentrant) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.Schedule([&counter] { counter.fetch_add(1); });
  pool.Wait();
  pool.Schedule([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 2);
}

}  // namespace
}  // namespace chainsformer
