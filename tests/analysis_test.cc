#include "kg/analysis.h"

#include <gtest/gtest.h>

#include "kg/synthetic.h"

namespace chainsformer {
namespace kg {
namespace {

KnowledgeGraph TwoComponentGraph() {
  KnowledgeGraph g;
  const auto r = g.AddRelation("r");
  const auto a = g.AddAttribute("a");
  const auto e0 = g.AddEntity("e0");
  const auto e1 = g.AddEntity("e1");
  const auto e2 = g.AddEntity("e2");
  const auto e3 = g.AddEntity("e3");
  g.AddEntity("isolated");
  g.AddTriple(e0, r, e1);
  g.AddTriple(e1, r, e2);
  g.AddTriple(e3, r, e3);  // self-loop component
  g.AddNumeric(e0, a, 1.0);
  g.AddNumeric(e0, a, 2.0);  // two facts, one entity
  g.Finalize();
  return g;
}

TEST(AnalysisTest, BasicCounts) {
  const KnowledgeGraph g = TwoComponentGraph();
  const GraphAnalysis a = AnalyzeGraph(g);
  EXPECT_EQ(a.num_entities, 5);
  EXPECT_EQ(a.num_relational_triples, 3);
  EXPECT_EQ(a.num_numerical_triples, 2);
  EXPECT_EQ(a.isolated_entities, 1);
  EXPECT_EQ(a.entities_with_numeric, 1);
  EXPECT_DOUBLE_EQ(a.numeric_density, 2.0 / 5.0);
}

TEST(AnalysisTest, ComponentsDetected) {
  const KnowledgeGraph g = TwoComponentGraph();
  const GraphAnalysis a = AnalyzeGraph(g);
  // {e0,e1,e2}, {e3}, {isolated} -> 3 components, largest 3.
  EXPECT_EQ(a.connected_components, 3);
  EXPECT_EQ(a.largest_component_size, 3);
}

TEST(AnalysisTest, DegreeHistogramSumsToEntities) {
  const KnowledgeGraph g = TwoComponentGraph();
  const GraphAnalysis a = AnalyzeGraph(g);
  int64_t total = 0;
  for (int64_t c : a.degree_histogram) total += c;
  EXPECT_EQ(total, a.num_entities);
  EXPECT_EQ(a.degree_histogram[0], 1);  // the isolated entity
}

TEST(AnalysisTest, RelationCounts) {
  const KnowledgeGraph g = TwoComponentGraph();
  const GraphAnalysis a = AnalyzeGraph(g);
  ASSERT_EQ(a.relation_counts.size(), 1u);
  EXPECT_EQ(a.relation_counts[0], 3);
}

TEST(AnalysisTest, ReachabilityGrowsWithHops) {
  const Dataset ds = MakeYago15kLike({.scale = 0.05});
  const double r1 = AverageReachableEntities(ds.graph, 1, 50);
  const double r2 = AverageReachableEntities(ds.graph, 2, 50);
  const double r3 = AverageReachableEntities(ds.graph, 3, 50);
  EXPECT_GT(r1, 0.0);
  EXPECT_GE(r2, r1);
  EXPECT_GE(r3, r2);
}

TEST(AnalysisTest, ZeroHopsReachesNothing) {
  const Dataset ds = MakeToyDataset();
  EXPECT_DOUBLE_EQ(AverageReachableEntities(ds.graph, 0, 10), 0.0);
}

TEST(AnalysisTest, ReportMentionsKeyNumbers) {
  const KnowledgeGraph g = TwoComponentGraph();
  const GraphAnalysis a = AnalyzeGraph(g);
  const std::string report = AnalysisReport(g, a);
  EXPECT_NE(report.find("entities: 5"), std::string::npos);
  EXPECT_NE(report.find("components: 3"), std::string::npos);
  EXPECT_NE(report.find("r="), std::string::npos);
}

TEST(AnalysisTest, SyntheticGraphsAreWellConnected) {
  const Dataset ds = MakeFb15k237Like({.scale = 0.08});
  const GraphAnalysis a = AnalyzeGraph(ds.graph);
  // Retrieval needs a dominant connected component.
  EXPECT_GT(a.largest_component_size, a.num_entities * 8 / 10);
  EXPECT_GT(a.avg_degree, 3.0);
}

}  // namespace
}  // namespace kg
}  // namespace chainsformer
