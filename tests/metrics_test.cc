#include "eval/metrics.h"

#include <cmath>

#include <gtest/gtest.h>

#include "eval/table.h"

namespace chainsformer {
namespace eval {
namespace {

std::vector<kg::AttributeStats> TwoAttrStats() {
  std::vector<kg::AttributeStats> stats(2);
  stats[0].count = 10;
  stats[0].min = 0.0;
  stats[0].max = 100.0;
  stats[1].count = 10;
  stats[1].min = 0.0;
  stats[1].max = 10.0;
  return stats;
}

TEST(MetricsTest, MaeAndRmsePerAttribute) {
  MetricsAccumulator acc(TwoAttrStats());
  acc.Add(0, 10.0, 20.0);  // err -10
  acc.Add(0, 50.0, 40.0);  // err +10
  const EvalResult r = acc.Finalize();
  EXPECT_EQ(r.per_attribute[0].count, 2);
  EXPECT_DOUBLE_EQ(r.per_attribute[0].mae, 10.0);
  EXPECT_DOUBLE_EQ(r.per_attribute[0].rmse, 10.0);
  EXPECT_EQ(r.per_attribute[1].count, 0);
}

TEST(MetricsTest, RmseExceedsMaeForUnequalErrors) {
  MetricsAccumulator acc(TwoAttrStats());
  acc.Add(0, 0.0, 1.0);
  acc.Add(0, 0.0, 3.0);
  const EvalResult r = acc.Finalize();
  EXPECT_GT(r.per_attribute[0].rmse, r.per_attribute[0].mae);
}

TEST(MetricsTest, NormalizedAverageUsesRange) {
  MetricsAccumulator acc(TwoAttrStats());
  // attr 0: error 10 over range 100 -> normalized 0.1.
  acc.Add(0, 10.0, 20.0);
  // attr 1: error 1 over range 10 -> normalized 0.1.
  acc.Add(1, 5.0, 4.0);
  const EvalResult r = acc.Finalize();
  EXPECT_NEAR(r.normalized_mae, 0.1, 1e-12);
  EXPECT_NEAR(r.normalized_rmse, 0.1, 1e-12);
}

TEST(MetricsTest, AverageIsUniformOverAttributeClasses) {
  MetricsAccumulator acc(TwoAttrStats());
  // attr 0 has many samples at normalized error 0.0; attr 1 one sample at 0.2.
  for (int i = 0; i < 100; ++i) acc.Add(0, 50.0, 50.0);
  acc.Add(1, 2.0, 0.0);
  const EvalResult r = acc.Finalize();
  // Class-uniform average: (0.0 + 0.2) / 2, NOT sample-weighted.
  EXPECT_NEAR(r.normalized_mae, 0.1, 1e-12);
}

TEST(MetricsTest, TotalCount) {
  MetricsAccumulator acc(TwoAttrStats());
  acc.Add(0, 1.0, 1.0);
  acc.Add(1, 1.0, 1.0);
  acc.Add(1, 1.0, 1.0);
  EXPECT_EQ(acc.Finalize().total_count, 3);
}

TEST(TextTableTest, AlignedRendering) {
  TextTable t({"name", "value"});
  t.AddRow({"alpha", "1"});
  t.AddRow({"b", "22222"});
  const std::string s = t.ToString();
  EXPECT_NE(s.find("| name "), std::string::npos);
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("22222"), std::string::npos);
  EXPECT_EQ(t.num_rows(), 2u);
}

TEST(TextTableTest, MarkdownRendering) {
  TextTable t({"a", "b"});
  t.AddRow({"1", "2"});
  const std::string md = t.ToMarkdown();
  EXPECT_NE(md.find("| a | b |"), std::string::npos);
  EXPECT_NE(md.find("|---|---|"), std::string::npos);
  EXPECT_NE(md.find("| 1 | 2 |"), std::string::npos);
}

}  // namespace
}  // namespace eval
}  // namespace chainsformer
