#include "kg/knowledge_graph.h"

#include <cstdio>
#include <fstream>
#include <set>

#include <gtest/gtest.h>

#include "kg/dataset.h"
#include "kg/loader.h"
#include "kg/synthetic.h"
#include "util/rng.h"

namespace chainsformer {
namespace kg {
namespace {

KnowledgeGraph SmallGraph() {
  KnowledgeGraph g;
  const EntityId a = g.AddEntity("a");
  const EntityId b = g.AddEntity("b");
  const EntityId c = g.AddEntity("c");
  const RelationId knows = g.AddRelation("knows");
  const RelationId likes = g.AddRelation("likes");
  const AttributeId age = g.AddAttribute("age", AttributeCategory::kTemporal);
  g.AddTriple(a, knows, b);
  g.AddTriple(b, likes, c);
  g.AddNumeric(a, age, 30.0);
  g.AddNumeric(c, age, 50.0);
  g.Finalize();
  return g;
}

TEST(KnowledgeGraphTest, VocabularyCounts) {
  KnowledgeGraph g = SmallGraph();
  EXPECT_EQ(g.num_entities(), 3);
  EXPECT_EQ(g.num_relations(), 2);
  EXPECT_EQ(g.num_relation_ids(), 4);
  EXPECT_EQ(g.num_attributes(), 1);
}

TEST(KnowledgeGraphTest, AddEntityIsIdempotent) {
  KnowledgeGraph g;
  EXPECT_EQ(g.AddEntity("x"), g.AddEntity("x"));
  EXPECT_EQ(g.num_entities(), 1);
}

TEST(KnowledgeGraphTest, InverseRelationPairing) {
  KnowledgeGraph g = SmallGraph();
  const RelationId knows = g.FindRelation("knows");
  EXPECT_EQ(knows % 2, 0);
  EXPECT_EQ(g.FindRelation("knows_inv"), KnowledgeGraph::InverseRelation(knows));
  EXPECT_EQ(KnowledgeGraph::InverseRelation(KnowledgeGraph::InverseRelation(knows)),
            knows);
  EXPECT_FALSE(KnowledgeGraph::IsInverseRelation(knows));
  EXPECT_TRUE(KnowledgeGraph::IsInverseRelation(knows + 1));
}

TEST(KnowledgeGraphTest, AdjacencyIsBidirectional) {
  KnowledgeGraph g = SmallGraph();
  const EntityId a = g.FindEntity("a");
  const EntityId b = g.FindEntity("b");
  const RelationId knows = g.FindRelation("knows");

  bool a_to_b = false;
  for (const auto& e : g.Neighbors(a)) {
    if (e.neighbor == b && e.relation == knows) a_to_b = true;
  }
  EXPECT_TRUE(a_to_b);

  bool b_to_a_inverse = false;
  for (const auto& e : g.Neighbors(b)) {
    if (e.neighbor == a && e.relation == KnowledgeGraph::InverseRelation(knows)) {
      b_to_a_inverse = true;
    }
  }
  EXPECT_TRUE(b_to_a_inverse);
}

TEST(KnowledgeGraphTest, DegreeCountsBothDirections) {
  KnowledgeGraph g = SmallGraph();
  EXPECT_EQ(g.Degree(g.FindEntity("b")), 2);  // knows_inv from a, likes to c
  EXPECT_EQ(g.Degree(g.FindEntity("a")), 1);
}

TEST(KnowledgeGraphTest, EntityAttributesAndLookup) {
  KnowledgeGraph g = SmallGraph();
  const EntityId a = g.FindEntity("a");
  const AttributeId age = g.FindAttribute("age");
  double v = 0.0;
  EXPECT_TRUE(g.GetAttribute(a, age, &v));
  EXPECT_DOUBLE_EQ(v, 30.0);
  EXPECT_FALSE(g.GetAttribute(g.FindEntity("b"), age, &v));
  EXPECT_EQ(g.EntityAttributes(a).size(), 1u);
}

TEST(KnowledgeGraphTest, AttributeStatsComputed) {
  KnowledgeGraph g = SmallGraph();
  const auto& s = g.attribute_stats()[0];
  EXPECT_EQ(s.count, 2);
  EXPECT_DOUBLE_EQ(s.min, 30.0);
  EXPECT_DOUBLE_EQ(s.max, 50.0);
  EXPECT_DOUBLE_EQ(s.mean, 40.0);
  EXPECT_NEAR(s.stddev, 10.0, 1e-9);
}

TEST(AttributeStatsTest, NormalizeDenormalizeRoundTrip) {
  AttributeStats s;
  s.count = 2;
  s.min = 10.0;
  s.max = 30.0;
  EXPECT_DOUBLE_EQ(s.Normalize(20.0), 0.5);
  EXPECT_DOUBLE_EQ(s.Denormalize(0.5), 20.0);
  EXPECT_DOUBLE_EQ(s.Denormalize(s.Normalize(17.0)), 17.0);
}

TEST(AttributeStatsTest, DegenerateRangeIsSafe) {
  AttributeStats s;
  s.count = 1;
  s.min = 5.0;
  s.max = 5.0;
  EXPECT_DOUBLE_EQ(s.Normalize(5.0), 0.0);
}

TEST(NumericIndexTest, IndexesSubset) {
  KnowledgeGraph g = SmallGraph();
  std::vector<NumericalTriple> subset = {{g.FindEntity("a"), 0, 30.0}};
  NumericIndex idx(subset, g.num_entities());
  EXPECT_EQ(idx.size(), 1);
  double v = 0.0;
  EXPECT_TRUE(idx.Get(g.FindEntity("a"), 0, &v));
  EXPECT_FALSE(idx.Get(g.FindEntity("c"), 0, &v));  // excluded from subset
}

TEST(ComputeAttributeStatsTest, EmptyTriples) {
  const auto stats = ComputeAttributeStats({}, 3);
  ASSERT_EQ(stats.size(), 3u);
  for (const auto& s : stats) {
    EXPECT_EQ(s.count, 0);
    EXPECT_EQ(s.Range(), 0.0);
  }
}

TEST(SplitTest, RatiosAndDisjointness) {
  std::vector<NumericalTriple> triples;
  for (int i = 0; i < 1000; ++i) {
    triples.push_back({static_cast<EntityId>(i), static_cast<AttributeId>(i % 2),
                       static_cast<double>(i)});
  }
  Rng rng(3);
  const DataSplit split = SplitNumericTriples(triples, 2, rng);
  EXPECT_EQ(split.train.size() + split.valid.size() + split.test.size(), 1000u);
  EXPECT_NEAR(static_cast<double>(split.train.size()), 800.0, 5.0);
  EXPECT_NEAR(static_cast<double>(split.valid.size()), 100.0, 5.0);

  std::set<EntityId> train_entities, test_entities;
  for (const auto& t : split.train) train_entities.insert(t.entity);
  for (const auto& t : split.test) test_entities.insert(t.entity);
  for (EntityId e : test_entities) {
    EXPECT_EQ(train_entities.count(e), 0u);  // entity ids unique per triple here
  }
}

TEST(SplitTest, StratifiedPerAttribute) {
  std::vector<NumericalTriple> triples;
  for (int i = 0; i < 200; ++i) triples.push_back({static_cast<EntityId>(i), 0, 1.0});
  for (int i = 0; i < 40; ++i) {
    triples.push_back({static_cast<EntityId>(1000 + i), 1, 2.0});
  }
  Rng rng(5);
  const DataSplit split = SplitNumericTriples(triples, 2, rng);
  int test_attr1 = 0;
  for (const auto& t : split.test) test_attr1 += (t.attribute == 1);
  EXPECT_GT(test_attr1, 0);  // small attribute still present in test
}

TEST(LoaderTest, TsvRoundTrip) {
  Dataset ds = MakeToyDataset();
  const std::string triples_path = "/tmp/cf_test_triples.tsv";
  const std::string numeric_path = "/tmp/cf_test_numeric.tsv";
  SaveTsvDataset(ds, triples_path, numeric_path);
  Dataset loaded = LoadTsvDataset("toy2", triples_path, numeric_path);
  EXPECT_EQ(loaded.graph.num_entities(), ds.graph.num_entities());
  EXPECT_EQ(loaded.graph.num_relations(), ds.graph.num_relations());
  EXPECT_EQ(loaded.graph.num_attributes(), ds.graph.num_attributes());
  EXPECT_EQ(loaded.graph.relational_triples().size(),
            ds.graph.relational_triples().size());
  EXPECT_EQ(loaded.graph.numerical_triples().size(),
            ds.graph.numerical_triples().size());
  double v = 0.0;
  EXPECT_TRUE(loaded.graph.GetAttribute(loaded.graph.FindEntity("alice"),
                                        loaded.graph.FindAttribute("birth"), &v));
  EXPECT_DOUBLE_EQ(v, 1960.0);
  std::remove(triples_path.c_str());
  std::remove(numeric_path.c_str());
}

TEST(LoaderTest, SkipsCommentsAndBlankLines) {
  const std::string triples_path = "/tmp/cf_test_triples3.tsv";
  const std::string numeric_path = "/tmp/cf_test_numeric3.tsv";
  {
    std::ofstream t(triples_path);
    t << "# a comment line\n\n"
      << "a\tknows\tb\n"
      << "  \n"
      << "b\tknows\tc\n";
    std::ofstream n(numeric_path);
    n << "# numeric facts\n"
      << "a\tage\t42.5\n";
  }
  Dataset loaded = LoadTsvDataset("mini", triples_path, numeric_path);
  EXPECT_EQ(loaded.graph.num_entities(), 3);
  EXPECT_EQ(loaded.graph.relational_triples().size(), 2u);
  EXPECT_EQ(loaded.graph.numerical_triples().size(), 1u);
  double v = 0.0;
  EXPECT_TRUE(loaded.graph.GetAttribute(loaded.graph.FindEntity("a"),
                                        loaded.graph.FindAttribute("age"), &v));
  EXPECT_DOUBLE_EQ(v, 42.5);
  std::remove(triples_path.c_str());
  std::remove(numeric_path.c_str());
}

TEST(LoaderTest, InfersAttributeCategories) {
  Dataset ds = MakeToyDataset();
  const std::string triples_path = "/tmp/cf_test_triples2.tsv";
  const std::string numeric_path = "/tmp/cf_test_numeric2.tsv";
  SaveTsvDataset(ds, triples_path, numeric_path);
  Dataset loaded = LoadTsvDataset("toy3", triples_path, numeric_path);
  EXPECT_EQ(loaded.graph.AttributeCategoryOf(loaded.graph.FindAttribute("birth")),
            AttributeCategory::kTemporal);
  EXPECT_EQ(loaded.graph.AttributeCategoryOf(loaded.graph.FindAttribute("latitude")),
            AttributeCategory::kSpatial);
  std::remove(triples_path.c_str());
  std::remove(numeric_path.c_str());
}

}  // namespace
}  // namespace kg
}  // namespace chainsformer
