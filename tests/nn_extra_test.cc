// Additional neural-network layer coverage: residual structure, optimizer
// math, embedding determinism, and edge-case shapes.

#include <cmath>

#include <gtest/gtest.h>

#include "tensor/nn.h"
#include "tensor/ops.h"
#include "tensor/optim.h"

namespace chainsformer {
namespace tensor {
namespace nn {
namespace {

namespace ops = chainsformer::tensor;

TEST(TransformerLayerTest, OutputIsRowWiseNormalized) {
  // Post-LN architecture: every output row has ~zero mean / unit variance
  // (gamma=1, beta=0 at init).
  Rng rng(1);
  TransformerEncoderLayer layer(8, 2, 16, rng);
  Tensor x = Tensor::Randn({5, 8}, rng, 2.0f);
  Tensor y = layer.Forward(x);
  for (int64_t i = 0; i < 5; ++i) {
    double mean = 0.0;
    for (int64_t j = 0; j < 8; ++j) mean += y.at(i, j);
    EXPECT_NEAR(mean / 8.0, 0.0, 1e-4);
  }
}

TEST(TransformerEncoderTest, ZeroLayersIsIdentity) {
  Rng rng(2);
  TransformerEncoder enc(0, 8, 2, 16, rng);
  Tensor x = Tensor::Randn({3, 8}, rng);
  Tensor y = enc.Forward(x);
  EXPECT_EQ(y.data(), x.data());
  EXPECT_EQ(enc.NumParameters(), 0);
}

TEST(MlpTest, DeepStackParameterCount) {
  Rng rng(3);
  Mlp mlp({4, 8, 8, 2}, rng);
  // (4*8+8) + (8*8+8) + (8*2+2) = 40 + 72 + 18.
  EXPECT_EQ(mlp.NumParameters(), 130);
}

TEST(EmbeddingTest, SameSeedSameTable) {
  Rng a(5), b(5);
  Embedding e1(6, 4, a);
  Embedding e2(6, 4, b);
  EXPECT_EQ(e1.table().data(), e2.table().data());
}

TEST(EmbeddingTest, ForwardOneMatchesForward) {
  Rng rng(6);
  Embedding emb(5, 3, rng);
  Tensor one = emb.ForwardOne(2);
  Tensor many = emb.Forward({2});
  EXPECT_EQ(one.dim(), 1);
  for (int64_t j = 0; j < 3; ++j) EXPECT_FLOAT_EQ(one.at(j), many.at(0, j));
}

TEST(AdamTest, FirstStepIsSignedLearningRate) {
  // With bias correction, Adam's first update is ≈ lr * sign(grad).
  Tensor x = Tensor::FromVector({2}, {0.0f, 0.0f}).set_requires_grad(true);
  optim::Adam adam({x}, /*lr=*/0.1f);
  Tensor loss = ops::Sum(ops::Mul(x, Tensor::FromVector({2}, {3.0f, -7.0f})));
  adam.ZeroGrad();
  loss.Backward();
  adam.Step();
  EXPECT_NEAR(x.at(0), -0.1f, 1e-5);  // grad +3 -> step -lr
  EXPECT_NEAR(x.at(1), +0.1f, 1e-5);  // grad -7 -> step +lr
}

TEST(AdamTest, WeightDecayShrinksParameters) {
  Tensor x = Tensor::FromVector({1}, {1.0f}).set_requires_grad(true);
  optim::Adam with_decay({x}, 0.01f, 0.9f, 0.999f, 1e-8f, /*weight_decay=*/1.0f);
  // Zero-gradient step: only decay acts.
  x.ZeroGrad();
  with_decay.Step();
  EXPECT_LT(x.at(0), 1.0f);
}

TEST(SgdTest, MomentumAcceleratesDescent) {
  auto run = [](float momentum) {
    Tensor x = Tensor::FromVector({1}, {10.0f}).set_requires_grad(true);
    optim::Sgd sgd({x}, 0.01f, momentum);
    for (int i = 0; i < 30; ++i) {
      Tensor loss = ops::Square(x);
      sgd.ZeroGrad();
      loss.Backward();
      sgd.Step();
    }
    return std::fabs(x.at(0));
  };
  EXPECT_LT(run(0.9f), run(0.0f));
}

TEST(ClipGradNormTest, NoopBelowThreshold) {
  Tensor x = Tensor::FromVector({2}, {1.0f, 1.0f}).set_requires_grad(true);
  Tensor loss = ops::Sum(x);
  loss.Backward();
  std::vector<Tensor> params = {x};
  const float norm = optim::ClipGradNorm(params, 100.0f);
  EXPECT_NEAR(norm, std::sqrt(2.0f), 1e-5);
  EXPECT_FLOAT_EQ(x.grad()[0], 1.0f);  // unchanged
}

TEST(LinearTest, NoGradModeProducesSameValues) {
  Rng rng(7);
  Linear layer(4, 3, rng);
  Tensor x = Tensor::Ones({4});
  Tensor with_grad = layer.Forward(x);
  NoGradGuard guard;
  Tensor without_grad = layer.Forward(x);
  EXPECT_EQ(with_grad.data(), without_grad.data());
  EXPECT_FALSE(without_grad.requires_grad());
}

TEST(LstmTest, SequenceLengthOneWorks) {
  Rng rng(8);
  Lstm lstm(4, 3, rng);
  Tensor h = lstm.Forward(Tensor::Ones({1, 4}));
  EXPECT_EQ(h.numel(), 3);
  for (float v : h.data()) {
    EXPECT_GT(v, -1.0f);
    EXPECT_LT(v, 1.0f);  // tanh-bounded
  }
}

TEST(LstmTest, DifferentOrderDifferentState) {
  Rng rng(9);
  Lstm lstm(2, 4, rng);
  Tensor ab = Tensor::FromVector({2, 2}, {1, 0, 0, 1});
  Tensor ba = Tensor::FromVector({2, 2}, {0, 1, 1, 0});
  Tensor ha = lstm.Forward(ab);
  Tensor hb = lstm.Forward(ba);
  double diff = 0.0;
  for (int64_t i = 0; i < 4; ++i) diff += std::fabs(ha.at(i) - hb.at(i));
  EXPECT_GT(diff, 1e-5);
}

TEST(ModuleTest, ParametersAreSharedHandles) {
  Rng rng(10);
  Linear layer(2, 2, rng);
  auto params = layer.Parameters();
  // Mutating through the returned handle changes the layer's behavior.
  std::fill(params[0].data().begin(), params[0].data().end(), 0.0f);
  std::fill(params[1].data().begin(), params[1].data().end(), 0.0f);
  Tensor y = layer.Forward(Tensor::Ones({2}));
  EXPECT_FLOAT_EQ(y.at(0), 0.0f);
  EXPECT_FLOAT_EQ(y.at(1), 0.0f);
}

}  // namespace
}  // namespace nn
}  // namespace tensor
}  // namespace chainsformer
