// Tests for the blocked, multithreaded GEMM kernel layer (tensor/kernels).
//
// The determinism tests assert the layer's core guarantee: threaded output
// is BITWISE equal to single-threaded output, because work is partitioned
// by output row with a fixed k-traversal order. Shapes deliberately include
// non-multiples of the kernel tile sizes (256/128) and of the 4-row strip.

#include "tensor/kernels.h"

#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "tensor/gradcheck.h"
#include "tensor/ops.h"
#include "tensor/tensor.h"
#include "util/rng.h"

namespace chainsformer {
namespace tensor {
namespace {

// RAII guard so a failing test cannot leak a nonstandard thread setting
// into later tests in the same process.
struct KernelThreadsGuard {
  explicit KernelThreadsGuard(int n) { kernels::SetKernelThreads(n); }
  ~KernelThreadsGuard() { kernels::SetKernelThreads(1); }
};

std::vector<float> RandomVec(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<float> v(n);
  for (auto& x : v) x = static_cast<float>(rng.Uniform(-1.0, 1.0));
  return v;
}

// Seed-style reference: plain i-k-j triple loop.
void NaiveGemm(int64_t m, int64_t k, int64_t n, const float* a, const float* b,
               float* c) {
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t kk = 0; kk < k; ++kk) {
      const float av = a[i * k + kk];
      for (int64_t j = 0; j < n; ++j) c[i * n + j] += av * b[kk * n + j];
    }
  }
}

struct GemmShape {
  int64_t m, k, n;
};

const GemmShape kShapes[] = {
    {4, 4, 4},       // below every tile
    {64, 64, 64},    // strip-aligned
    {33, 47, 29},    // nothing aligned
    {257, 129, 65},  // just past the k/n tiles, odd rows
    {100, 256, 3},   // skinny output
    {5, 300, 130},   // k spans multiple kKC blocks
};

TEST(KernelsTest, GemmAccMatchesNaive) {
  for (const auto& s : kShapes) {
    const auto a = RandomVec(static_cast<size_t>(s.m * s.k), 1);
    const auto b = RandomVec(static_cast<size_t>(s.k * s.n), 2);
    std::vector<float> got(static_cast<size_t>(s.m * s.n), 0.0f);
    std::vector<float> want = got;
    kernels::GemmAcc(s.m, s.k, s.n, a.data(), b.data(), got.data());
    NaiveGemm(s.m, s.k, s.n, a.data(), b.data(), want.data());
    for (size_t i = 0; i < want.size(); ++i) {
      ASSERT_NEAR(got[i], want[i], 1e-3f) << "shape " << s.m << "x" << s.k
                                          << "x" << s.n << " index " << i;
    }
  }
}

TEST(KernelsTest, BackwardProductsMatchNaiveTransposes) {
  const int64_t m = 21, k = 34, n = 17;
  const auto g = RandomVec(static_cast<size_t>(m * n), 3);
  const auto a = RandomVec(static_cast<size_t>(m * k), 4);
  const auto b = RandomVec(static_cast<size_t>(k * n), 5);

  // dA = G * B^T.
  std::vector<float> da(static_cast<size_t>(m * k), 0.0f);
  kernels::GemmBtAcc(m, k, n, g.data(), b.data(), da.data());
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t kk = 0; kk < k; ++kk) {
      float want = 0.0f;
      for (int64_t j = 0; j < n; ++j) want += g[i * n + j] * b[kk * n + j];
      ASSERT_NEAR(da[i * k + kk], want, 1e-3f);
    }
  }

  // dB = A^T * G.
  std::vector<float> db(static_cast<size_t>(k * n), 0.0f);
  kernels::GemmAtAcc(m, k, n, a.data(), g.data(), db.data());
  for (int64_t kk = 0; kk < k; ++kk) {
    for (int64_t j = 0; j < n; ++j) {
      float want = 0.0f;
      for (int64_t i = 0; i < m; ++i) want += a[i * k + kk] * g[i * n + j];
      ASSERT_NEAR(db[kk * n + j], want, 1e-3f);
    }
  }
}

TEST(KernelsTest, ThreadedGemmIsBitwiseDeterministic) {
  for (const auto& s : kShapes) {
    const auto a = RandomVec(static_cast<size_t>(s.m * s.k), 6);
    const auto b = RandomVec(static_cast<size_t>(s.k * s.n), 7);
    std::vector<float> serial(static_cast<size_t>(s.m * s.n), 0.0f);
    kernels::SetKernelThreads(1);
    kernels::GemmAcc(s.m, s.k, s.n, a.data(), b.data(), serial.data());
    for (int threads : {2, 4, 7}) {
      KernelThreadsGuard guard(threads);
      std::vector<float> threaded(serial.size(), 0.0f);
      kernels::GemmAcc(s.m, s.k, s.n, a.data(), b.data(), threaded.data());
      ASSERT_EQ(std::memcmp(serial.data(), threaded.data(),
                            serial.size() * sizeof(float)),
                0)
          << "forward mismatch at " << threads << " threads, shape " << s.m
          << "x" << s.k << "x" << s.n;
    }
  }
}

TEST(KernelsTest, ThreadedBackwardIsBitwiseDeterministic) {
  const GemmShape big[] = {{160, 96, 112}, {257, 129, 65}};
  for (const auto& s : big) {
    const auto g = RandomVec(static_cast<size_t>(s.m * s.n), 8);
    const auto a = RandomVec(static_cast<size_t>(s.m * s.k), 9);
    const auto b = RandomVec(static_cast<size_t>(s.k * s.n), 10);
    std::vector<float> da1(static_cast<size_t>(s.m * s.k), 0.0f);
    std::vector<float> db1(static_cast<size_t>(s.k * s.n), 0.0f);
    kernels::SetKernelThreads(1);
    kernels::GemmBtAcc(s.m, s.k, s.n, g.data(), b.data(), da1.data());
    kernels::GemmAtAcc(s.m, s.k, s.n, a.data(), g.data(), db1.data());
    KernelThreadsGuard guard(4);
    std::vector<float> da4(da1.size(), 0.0f), db4(db1.size(), 0.0f);
    kernels::GemmBtAcc(s.m, s.k, s.n, g.data(), b.data(), da4.data());
    kernels::GemmAtAcc(s.m, s.k, s.n, a.data(), g.data(), db4.data());
    ASSERT_EQ(
        std::memcmp(da1.data(), da4.data(), da1.size() * sizeof(float)), 0);
    ASSERT_EQ(
        std::memcmp(db1.data(), db4.data(), db1.size() * sizeof(float)), 0);
  }
}

// End-to-end determinism through the autograd ops: forward values and both
// input gradients of a threaded MatMul/BatchMatMul step must be bitwise
// equal to the single-threaded run. Shapes are large enough to cross the
// kernel layer's parallel threshold.
TEST(KernelsTest, OpsForwardBackwardBitwiseDeterministic) {
  auto run = [](int threads, std::vector<float>* out, std::vector<float>* ga,
                std::vector<float>* gb) {
    kernels::SetKernelThreads(threads);
    Rng rng(11);
    Tensor a = Tensor::Randn({160, 96}, rng, 0.5f).set_requires_grad(true);
    Tensor b = Tensor::Randn({96, 112}, rng, 0.5f).set_requires_grad(true);
    Tensor y = MatMul(a, b);
    Sum(y).Backward();
    *out = y.data();
    *ga = a.grad();
    *gb = b.grad();
  };
  std::vector<float> out1, ga1, gb1, out4, ga4, gb4;
  run(1, &out1, &ga1, &gb1);
  {
    KernelThreadsGuard guard(4);
    run(4, &out4, &ga4, &gb4);
  }
  ASSERT_EQ(std::memcmp(out1.data(), out4.data(), out1.size() * sizeof(float)),
            0);
  ASSERT_EQ(std::memcmp(ga1.data(), ga4.data(), ga1.size() * sizeof(float)), 0);
  ASSERT_EQ(std::memcmp(gb1.data(), gb4.data(), gb1.size() * sizeof(float)), 0);
}

TEST(KernelsTest, BatchMatMulThreadedBitwiseDeterministic) {
  auto run = [](int threads) {
    kernels::SetKernelThreads(threads);
    Rng rng(12);
    Tensor a = Tensor::Randn({6, 70, 48}, rng, 0.5f).set_requires_grad(true);
    Tensor b = Tensor::Randn({6, 48, 52}, rng, 0.5f).set_requires_grad(true);
    Tensor y = BatchMatMul(a, b);
    Sum(y).Backward();
    return std::make_tuple(y.data(), a.grad(), b.grad());
  };
  const auto [out1, ga1, gb1] = run(1);
  KernelThreadsGuard guard(4);
  const auto [out4, ga4, gb4] = run(4);
  ASSERT_EQ(std::memcmp(out1.data(), out4.data(), out1.size() * sizeof(float)),
            0);
  ASSERT_EQ(std::memcmp(ga1.data(), ga4.data(), ga1.size() * sizeof(float)), 0);
  ASSERT_EQ(std::memcmp(gb1.data(), gb4.data(), gb1.size() * sizeof(float)), 0);
}

TEST(KernelsTest, SoftmaxAndLayerNormThreadedBitwiseDeterministic) {
  auto run = [](int threads) {
    kernels::SetKernelThreads(threads);
    Rng rng(13);
    Tensor x = Tensor::Randn({1024, 512}, rng, 1.0f);
    Tensor gamma = Tensor::Ones({512});
    Tensor beta = Tensor::Zeros({512});
    NoGradGuard no_grad;
    return std::make_pair(Softmax(x).data(),
                          LayerNormOp(x, gamma, beta).data());
  };
  const auto [sm1, ln1] = run(1);
  KernelThreadsGuard guard(4);
  const auto [sm4, ln4] = run(4);
  ASSERT_EQ(std::memcmp(sm1.data(), sm4.data(), sm1.size() * sizeof(float)), 0);
  ASSERT_EQ(std::memcmp(ln1.data(), ln4.data(), ln1.size() * sizeof(float)), 0);
}

// Gradient checks under the new kernels (threads > 1 set globally so the
// dispatch path, not just the serial core, carries the op).
TEST(KernelsGradCheck, BatchMatMul) {
  KernelThreadsGuard guard(4);
  Rng rng(14);
  Tensor a = Tensor::Rand({3, 4, 5}, rng, -1.0f, 1.0f).set_requires_grad(true);
  Tensor b = Tensor::Rand({3, 5, 2}, rng, -1.0f, 1.0f).set_requires_grad(true);
  auto fn = [](const std::vector<Tensor>& in) {
    return Sum(Square(BatchMatMul(in[0], in[1])));
  };
  EXPECT_TRUE(CheckGradients(fn, {a, b}).ok);
}

TEST(KernelsGradCheck, Permute3) {
  KernelThreadsGuard guard(4);
  Rng rng(15);
  Tensor a = Tensor::Rand({4, 3, 5}, rng, -1.0f, 1.0f).set_requires_grad(true);
  auto fn = [](const std::vector<Tensor>& in) {
    Tensor p = Permute3(in[0], 1, 2, 0);  // [3,5,4]
    return Sum(Square(BatchMatMul(p, Permute3(in[0], 1, 0, 2))));  // [3,5,5]
  };
  EXPECT_TRUE(CheckGradients(fn, {a}).ok);
}

TEST(KernelsTest, SetKernelThreadsZeroMeansHardware) {
  KernelThreadsGuard guard(0);
  EXPECT_GE(kernels::KernelThreads(), 1);
}

TEST(KernelsTest, ParallelRangesCoversDisjointly) {
  KernelThreadsGuard guard(4);
  std::vector<int> hits(10000, 0);
  // High cost forces the parallel path; ranges must be disjoint and total.
  kernels::ParallelRanges(static_cast<int64_t>(hits.size()), 1 << 12,
                          [&hits](int64_t b, int64_t e) {
                            for (int64_t i = b; i < e; ++i) hits[i] += 1;
                          });
  for (int h : hits) ASSERT_EQ(h, 1);
}

TEST(KernelsTest, ParallelRangesEmptyIsNoop) {
  kernels::ParallelRanges(0, 1, [](int64_t, int64_t) {
    FAIL() << "must not be called";
  });
}

}  // namespace
}  // namespace tensor
}  // namespace chainsformer
