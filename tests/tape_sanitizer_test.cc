// Tape sanitizer (tensor/checks.h) behavior tests: version-counter
// semantics, check-mode plumbing, NoGradGuard nesting, off/shapes parity,
// and the zero-false-positive guarantee on healthy workloads (gradcheck and
// a full model train under --check-mode=full). The abort paths themselves
// are covered by death_test.cc.

#include "tensor/checks.h"

#include <cstdlib>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "core/chainsformer.h"
#include "kg/synthetic.h"
#include "tensor/gradcheck.h"
#include "tensor/ops.h"
#include "tensor/tensor.h"
#include "util/metrics.h"
#include "util/rng.h"

namespace chainsformer {
namespace tensor {
namespace {

int64_t CounterValue(const char* name) {
  return metrics::MetricsRegistry::Global().GetCounter(name)->Value();
}

TEST(CheckModeTest, ParsesAndNames) {
  EXPECT_EQ(CheckModeFromString("off"), CheckMode::kOff);
  EXPECT_EQ(CheckModeFromString("shapes"), CheckMode::kShapes);
  EXPECT_EQ(CheckModeFromString("full"), CheckMode::kFull);
  EXPECT_STREQ(CheckModeName(CheckMode::kOff), "off");
  EXPECT_STREQ(CheckModeName(CheckMode::kShapes), "shapes");
  EXPECT_STREQ(CheckModeName(CheckMode::kFull), "full");
}

TEST(CheckModeTest, EnvDefaultsToOffAndParses) {
  unsetenv("CF_CHECK_MODE");
  EXPECT_EQ(CheckModeFromEnv(), CheckMode::kOff);
  setenv("CF_CHECK_MODE", "full", 1);
  EXPECT_EQ(CheckModeFromEnv(), CheckMode::kFull);
  unsetenv("CF_CHECK_MODE");
}

TEST(CheckModeTest, GuardSavesAndRestores) {
  ASSERT_EQ(GetCheckMode(), CheckMode::kOff);
  {
    CheckModeGuard outer(CheckMode::kShapes);
    EXPECT_EQ(GetCheckMode(), CheckMode::kShapes);
    {
      CheckModeGuard inner(CheckMode::kFull);
      EXPECT_EQ(GetCheckMode(), CheckMode::kFull);
    }
    EXPECT_EQ(GetCheckMode(), CheckMode::kShapes);
  }
  EXPECT_EQ(GetCheckMode(), CheckMode::kOff);
}

TEST(VersionCounterTest, MutableAccessBumpsConstDoesNot) {
  Tensor t = Tensor::FromVector({2}, {1.0f, 2.0f});
  const uint64_t v0 = t.impl()->version;
  const Tensor& ct = t;
  (void)ct.data();     // const overload: a read, not a mutation
  (void)ct.at(0);
  EXPECT_EQ(t.impl()->version, v0);
  t.data()[0] = 5.0f;  // mutable overload counts as a write
  EXPECT_EQ(t.impl()->version, v0 + 1);
  t.set(1, 7.0f);
  EXPECT_EQ(t.impl()->version, v0 + 2);
}

// Regression: the guard must restore the state saved at construction, not
// unconditionally re-enable recording — otherwise the inner guard's
// destructor turns the tape back on inside the outer no-grad scope.
TEST(NoGradGuardTest, NestedGuardsRestoreCorrectly) {
  ASSERT_TRUE(GradModeEnabled());
  {
    NoGradGuard outer;
    EXPECT_FALSE(GradModeEnabled());
    {
      NoGradGuard inner;
      EXPECT_FALSE(GradModeEnabled());
    }
    EXPECT_FALSE(GradModeEnabled()) << "inner guard re-enabled recording";
    Tensor x = Tensor::FromVector({2}, {1.0f, 2.0f}).set_requires_grad(true);
    Tensor y = Mul(x, x);
    EXPECT_FALSE(y.requires_grad());
  }
  EXPECT_TRUE(GradModeEnabled());
}

TEST(TapeSanitizerTest, OffModeToleratesPostRecordMutation) {
  ASSERT_EQ(GetCheckMode(), CheckMode::kOff);
  const int64_t violations0 = CounterValue("tape.version_violations");
  Tensor x = Tensor::FromVector({2}, {1.0f, 2.0f}).set_requires_grad(true);
  Tensor loss = Sum(Mul(x, x));
  x.data()[0] = 3.0f;  // stale-input hazard, deliberately unchecked in kOff
  loss.Backward();
  EXPECT_EQ(CounterValue("tape.version_violations"), violations0);
}

TEST(TapeSanitizerTest, ShapesModeCleanChainBackpropagates) {
  CheckModeGuard guard(CheckMode::kShapes);
  const int64_t violations0 = CounterValue("tape.version_violations");
  Rng rng(7);
  Tensor x = Tensor::Randn({4, 3}, rng).set_requires_grad(true);
  Tensor w = Tensor::Randn({3, 2}, rng).set_requires_grad(true);
  Tensor loss = Mean(Square(Tanh(MatMul(x, w))));
  loss.Backward();
  EXPECT_EQ(CounterValue("tape.version_violations"), violations0);
  bool any = false;
  for (float g : w.grad()) any = any || g != 0.0f;
  EXPECT_TRUE(any);
}

// The sanitizer must be an observer: enabling kShapes may not change a
// single bit of the forward values or the gradients.
TEST(TapeSanitizerTest, OffAndShapesAreBitwiseIdentical) {
  auto run = [](CheckMode mode) {
    CheckModeGuard guard(mode);
    Rng rng(123);
    Tensor x = Tensor::Randn({5, 4}, rng).set_requires_grad(true);
    Tensor w = Tensor::Randn({4, 4}, rng).set_requires_grad(true);
    Tensor b = Tensor::Randn({4}, rng).set_requires_grad(true);
    Tensor h = Gelu(Add(MatMul(x, w), b));
    Tensor loss = Mean(Square(h));
    loss.Backward();
    std::vector<float> out = loss.data();
    out.insert(out.end(), x.grad().begin(), x.grad().end());
    out.insert(out.end(), w.grad().begin(), w.grad().end());
    out.insert(out.end(), b.grad().begin(), b.grad().end());
    return out;
  };
  EXPECT_EQ(run(CheckMode::kOff), run(CheckMode::kShapes));
}

// Gradcheck perturbs inputs between tapes (never inside one), so a correct
// sanitizer must stay silent through hundreds of perturb/record/backward
// cycles — the zero-false-positive guarantee on the optimizer-style
// mutation pattern.
TEST(TapeSanitizerTest, FullModeGradcheckHasNoFalsePositives) {
  CheckModeGuard guard(CheckMode::kFull);
  const int64_t violations0 = CounterValue("tape.version_violations");
  const int64_t poison0 = CounterValue("tape.poison_events");
  Rng rng(31);
  Tensor a = Tensor::Rand({3, 3}, rng, 0.1f, 1.0f).set_requires_grad(true);
  Tensor b = Tensor::Rand({3, 3}, rng, 0.1f, 1.0f).set_requires_grad(true);
  const GradCheckResult r = CheckGradients(
      [](const std::vector<Tensor>& in) {
        return Mean(Square(Sigmoid(MatMul(in[0], in[1]))));
      },
      {a, b});
  EXPECT_TRUE(r.ok) << "max_rel_error=" << r.max_rel_error;
  EXPECT_EQ(CounterValue("tape.version_violations"), violations0);
  EXPECT_EQ(CounterValue("tape.poison_events"), poison0);
}

TEST(TapeSanitizerTest, FullModeCountsLeakedRoots) {
  CheckModeGuard guard(CheckMode::kFull);
  const int64_t leaked0 = CounterValue("tape.leaked_roots");
  Tensor x = Tensor::FromVector({2}, {1.0f, 2.0f}).set_requires_grad(true);
  Tensor z = Tensor::FromVector({2}, {3.0f, 4.0f}).set_requires_grad(true);
  // z is on the tape but its gradient path is multiplied by zero, so it
  // receives an exactly-zero gradient: a leaked root.
  Tensor loss = Sum(Add(Mul(x, x), MulScalar(Mul(z, z), 0.0f)));
  loss.Backward();
  EXPECT_GE(CounterValue("tape.leaked_roots"), leaked0 + 1);
}

TEST(TapeSanitizerTest, DebugCheckRootsReportsMissingGrads) {
  CheckModeGuard guard(CheckMode::kFull);
  Tensor used = Tensor::FromVector({2}, {1.0f, 2.0f}).set_requires_grad(true);
  Tensor unused = Tensor::FromVector({2}, {1.0f, 1.0f}).set_requires_grad(true);
  Tensor loss = Sum(Mul(used, used));
  loss.Backward();
  EXPECT_EQ(DebugCheckRootsReceivedGrad({used}), 0);
  EXPECT_EQ(DebugCheckRootsReceivedGrad({used, unused}), 1);
}

TEST(TapeSanitizerTest, DebugAssertFiniteIsNoopBelowFull) {
  Tensor t = Tensor::FromVector({2}, {1.0f, 2.0f});
  t.data()[0] = std::numeric_limits<float>::quiet_NaN();
  {
    CheckModeGuard guard(CheckMode::kShapes);
    DebugAssertFinite("test", t);  // must not abort below kFull
  }
  DebugAssertFinite("test", t);  // nor in kOff
}

// End-to-end zero-false-positive proof: a full model forward/backward/step
// loop under --check-mode=full — tape recording, batched encoder, Adam
// mutations between tapes, checkpoint-style parameter reads — must finish
// with zero violations and zero poison events.
TEST(TapeSanitizerTest, FullModeModelTrainingIsClean) {
  const int64_t violations0 = CounterValue("tape.version_violations");
  const int64_t poison0 = CounterValue("tape.poison_events");
  const kg::Dataset dataset = kg::MakeYago15kLike({.scale = 0.02});
  core::ChainsFormerConfig config;
  config.num_walks = 24;
  config.top_k = 4;
  config.hidden_dim = 8;
  config.filter_dim = 4;
  config.encoder_layers = 1;
  config.reasoner_layers = 1;
  config.num_heads = 2;
  config.epochs = 1;
  config.max_train_queries = 24;
  config.max_eval_queries = 16;
  config.filter_pretrain_queries = 12;
  config.filter_pretrain_epochs = 1;
  config.seed = 5;
  config.verbose = false;
  config.check_mode = CheckMode::kFull;
  {
    core::ChainsFormerModel model(dataset, config);
    const core::TrainReport report = model.Train();
    EXPECT_GE(report.epochs_run, 1);
  }
  SetCheckMode(CheckMode::kOff);  // the model ctor set the global level
  EXPECT_EQ(CounterValue("tape.version_violations"), violations0);
  EXPECT_EQ(CounterValue("tape.poison_events"), poison0);
}

}  // namespace
}  // namespace tensor
}  // namespace chainsformer
