// Tests for the sliding-window telemetry layer: time-wheel rotation and
// expiry, percentile estimation against known distributions, windowed
// counters, and the global registry's pointer-stability contract.

#include "util/telemetry.h"

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "util/metrics.h"

namespace chainsformer {
namespace telemetry {
namespace {

TEST(WindowedHistogramTest, EmptySnapshotIsZero) {
  WindowedHistogram h;
  WindowedPercentiles p = h.SnapshotAtMs(0);
  EXPECT_EQ(p.count, 0);
  EXPECT_EQ(p.p50, 0.0);
  EXPECT_EQ(p.p99, 0.0);
  EXPECT_EQ(p.max_bound, 0.0);
}

TEST(WindowedHistogramTest, PercentilesLandInOwningBucket) {
  WindowedHistogram h;
  const int64_t now = 5'000;
  // 90 observations near 100us, 10 near 3000us: p50/p90 must stay in the
  // low bucket's range, p99 in the high one's. Pow2 buckets give < 2x
  // relative error, so assert bucket bounds rather than exact values.
  for (int i = 0; i < 90; ++i) h.ObserveAtMs(100.0, now);
  for (int i = 0; i < 10; ++i) h.ObserveAtMs(3000.0, now);
  WindowedPercentiles p = h.SnapshotAtMs(now);
  EXPECT_EQ(p.count, 100);
  const int low = metrics::Histogram::BucketIndex(100.0);
  const int high = metrics::Histogram::BucketIndex(3000.0);
  EXPECT_GT(p.p50, metrics::Histogram::UpperBound(low - 1));
  EXPECT_LE(p.p50, metrics::Histogram::UpperBound(low));
  EXPECT_LE(p.p90, metrics::Histogram::UpperBound(low));
  EXPECT_GT(p.p99, metrics::Histogram::UpperBound(high - 1));
  EXPECT_LE(p.p99, metrics::Histogram::UpperBound(high));
  EXPECT_EQ(p.max_bound, metrics::Histogram::UpperBound(high));
  // Percentiles are monotone in rank.
  EXPECT_LE(p.p50, p.p90);
  EXPECT_LE(p.p90, p.p99);
}

TEST(WindowedHistogramTest, ObservationsExpireAfterWindow) {
  WindowedHistogram h(/*num_slots=*/4, /*slot_millis=*/100);
  h.ObserveAtMs(50.0, 0);
  h.ObserveAtMs(50.0, 0);
  EXPECT_EQ(h.SnapshotAtMs(0).count, 2);
  // Still inside the 400ms window three slots later.
  EXPECT_EQ(h.SnapshotAtMs(350).count, 2);
  // A full window later the slot epoch is out of range: nothing remains.
  EXPECT_EQ(h.SnapshotAtMs(400).count, 0);
}

TEST(WindowedHistogramTest, NewObservationsReclaimExpiredSlots) {
  WindowedHistogram h(/*num_slots=*/2, /*slot_millis=*/100);
  h.ObserveAtMs(1000.0, 0);    // slot 0, epoch 0
  h.ObserveAtMs(8.0, 250);     // slot 0 again (epoch 2): must reset first
  WindowedPercentiles p = h.SnapshotAtMs(250);
  EXPECT_EQ(p.count, 1);
  EXPECT_LE(p.p99, metrics::Histogram::UpperBound(
                       metrics::Histogram::BucketIndex(8.0)));
}

TEST(WindowedHistogramTest, SlidingWindowKeepsOnlyRecentSlots) {
  WindowedHistogram h(/*num_slots=*/3, /*slot_millis=*/100);
  h.ObserveAtMs(10.0, 0);    // epoch 0
  h.ObserveAtMs(10.0, 100);  // epoch 1
  h.ObserveAtMs(10.0, 200);  // epoch 2
  EXPECT_EQ(h.SnapshotAtMs(200).count, 3);
  // At epoch 3 the window is [1, 3]: epoch 0 falls out.
  EXPECT_EQ(h.SnapshotAtMs(300).count, 2);
  EXPECT_EQ(h.SnapshotAtMs(400).count, 1);
  EXPECT_EQ(h.SnapshotAtMs(500).count, 0);
}

TEST(WindowedHistogramTest, ConcurrentObservesAreAllCounted) {
  WindowedHistogram h;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&h, t] {
      for (int i = 0; i < kPerThread; ++i) {
        h.ObserveAtMs(static_cast<double>(t + 1), 1000);
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(h.SnapshotAtMs(1000).count,
            static_cast<int64_t>(kThreads) * kPerThread);
}

TEST(WindowedHistogramTest, NowMsIsMonotonic) {
  const int64_t a = WindowedHistogram::NowMs();
  const int64_t b = WindowedHistogram::NowMs();
  EXPECT_GE(a, 0);
  EXPECT_GE(b, a);
}

TEST(WindowedCounterTest, SumInsideWindowAndExpiry) {
  WindowedCounter c(/*num_slots=*/3, /*slot_millis=*/100);
  c.IncrementAtMs(5, 0);
  c.IncrementAtMs(7, 120);
  EXPECT_EQ(c.SumAtMs(120), 12);
  EXPECT_EQ(c.SumAtMs(250), 12);   // both epochs still in [0, 2]
  EXPECT_EQ(c.SumAtMs(300), 7);    // epoch 0 expired
  EXPECT_EQ(c.SumAtMs(1000), 0);   // everything expired
}

TEST(WindowedCounterTest, WindowSecondsMatchesGeometry) {
  WindowedCounter c(/*num_slots=*/4, /*slot_millis=*/250);
  EXPECT_DOUBLE_EQ(c.WindowSeconds(), 1.0);
}

TEST(TelemetryRegistryTest, GetReturnsSameObjectForSameName) {
  TelemetryRegistry reg;
  WindowedHistogram* a = reg.GetHistogram("phase.total_us");
  WindowedHistogram* b = reg.GetHistogram("phase.total_us");
  EXPECT_EQ(a, b);
  EXPECT_NE(a, reg.GetHistogram("phase.compute_us"));
  WindowedCounter* c = reg.GetCounter("requests");
  EXPECT_EQ(c, reg.GetCounter("requests"));
}

TEST(TelemetryRegistryTest, SnapshotListsMetricsSortedByName) {
  TelemetryRegistry reg;
  reg.GetHistogram("zz")->Observe(4.0);
  reg.GetHistogram("aa")->Observe(2.0);
  reg.GetCounter("hits")->Increment(3);
  TelemetrySnapshot snap = reg.Snapshot();
  ASSERT_EQ(snap.histograms.size(), 2u);
  EXPECT_EQ(snap.histograms[0].first, "aa");
  EXPECT_EQ(snap.histograms[1].first, "zz");
  EXPECT_EQ(snap.histograms[0].second.count, 1);
  ASSERT_EQ(snap.counters.size(), 1u);
  EXPECT_EQ(snap.counters[0].first, "hits");
  EXPECT_EQ(snap.counters[0].second, 3);
  EXPECT_EQ(snap.CounterSum("hits"), 3);
  EXPECT_EQ(snap.CounterSum("absent"), 0);
  EXPECT_GT(snap.window_seconds, 0.0);
}

TEST(TelemetryRegistryTest, GlobalIsSingleton) {
  TelemetryRegistry& a = TelemetryRegistry::Global();
  TelemetryRegistry& b = TelemetryRegistry::Global();
  EXPECT_EQ(&a, &b);
}

}  // namespace
}  // namespace telemetry
}  // namespace chainsformer
