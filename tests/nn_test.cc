#include "tensor/nn.h"

#include <cmath>

#include <gtest/gtest.h>

#include "tensor/gradcheck.h"
#include "tensor/ops.h"
#include "tensor/optim.h"

namespace chainsformer {
namespace tensor {
namespace nn {
namespace {

namespace ops = chainsformer::tensor;

TEST(LinearTest, ShapesAndBias) {
  Rng rng(1);
  Linear layer(3, 5, rng);
  Tensor x = Tensor::Ones({2, 3});
  Tensor y = layer.Forward(x);
  EXPECT_EQ(y.size(0), 2);
  EXPECT_EQ(y.size(1), 5);
  // Rank-1 input round-trips through the same weights.
  Tensor v = layer.Forward(Tensor::Ones({3}));
  EXPECT_EQ(v.dim(), 1);
  for (int64_t j = 0; j < 5; ++j) EXPECT_FLOAT_EQ(v.at(j), y.at(0, j));
}

TEST(LinearTest, ParameterCount) {
  Rng rng(2);
  Linear with_bias(4, 6, rng, true);
  Linear without_bias(4, 6, rng, false);
  EXPECT_EQ(with_bias.NumParameters(), 4 * 6 + 6);
  EXPECT_EQ(without_bias.NumParameters(), 4 * 6);
}

TEST(LayerNormTest, NormalizesRows) {
  Rng rng(3);
  LayerNorm norm(8);
  Tensor x = Tensor::Randn({4, 8}, rng, 3.0f);
  Tensor y = norm.Forward(x);
  for (int64_t i = 0; i < 4; ++i) {
    double mean = 0.0, var = 0.0;
    for (int64_t j = 0; j < 8; ++j) mean += y.at(i, j);
    mean /= 8.0;
    for (int64_t j = 0; j < 8; ++j) var += (y.at(i, j) - mean) * (y.at(i, j) - mean);
    var /= 8.0;
    EXPECT_NEAR(mean, 0.0, 1e-4);    // gamma=1, beta=0 at init
    EXPECT_NEAR(var, 1.0, 1e-2);
  }
}

TEST(MlpTest, ForwardShape) {
  Rng rng(4);
  Mlp mlp({6, 8, 2}, rng);
  Tensor y = mlp.Forward(Tensor::Ones({6}));
  EXPECT_EQ(y.numel(), 2);
}

TEST(MultiHeadAttentionTest, ShapePreservedAndDifferentiable) {
  Rng rng(5);
  MultiHeadAttention mha(8, 2, rng);
  Tensor x = Tensor::Randn({5, 8}, rng);
  Tensor y = mha.Forward(x);
  EXPECT_EQ(y.size(0), 5);
  EXPECT_EQ(y.size(1), 8);
  Tensor loss = ops::Sum(ops::Square(y));
  loss.Backward();
  // Every projection received gradient signal.
  for (const Tensor& p : mha.Parameters()) {
    double total = 0.0;
    for (float g : p.grad()) total += std::fabs(g);
    EXPECT_GT(total, 0.0);
  }
}

TEST(MultiHeadAttentionTest, GradcheckSmall) {
  Rng rng(6);
  MultiHeadAttention mha(4, 2, rng);
  Tensor x = Tensor::Randn({3, 4}, rng, 0.5f);
  auto params = mha.Parameters();
  auto fn = [&mha, &x](const std::vector<Tensor>&) {
    return ops::Sum(ops::Square(mha.Forward(x)));
  };
  const auto result = CheckGradients(fn, params, 1e-2, 8e-2);
  EXPECT_TRUE(result.ok) << "max_rel_error=" << result.max_rel_error;
}

TEST(TransformerEncoderTest, StackForwardDeterministic) {
  Rng rng(7);
  TransformerEncoder enc(2, 8, 2, 16, rng);
  Tensor x = Tensor::Randn({4, 8}, rng);
  Tensor y1 = enc.Forward(x);
  Tensor y2 = enc.Forward(x);
  EXPECT_EQ(y1.data(), y2.data());
  EXPECT_EQ(y1.size(0), 4);
  EXPECT_EQ(y1.size(1), 8);
}

TEST(EmbeddingTest, GatherAndGradScatter) {
  Rng rng(8);
  Embedding emb(10, 4, rng);
  Tensor rows = emb.Forward({3, 3, 7});
  EXPECT_EQ(rows.size(0), 3);
  Tensor loss = ops::Sum(rows);
  loss.Backward();
  const auto& grad = emb.table().grad();
  // Row 3 used twice -> gradient 2 per column; row 7 once; others zero.
  EXPECT_FLOAT_EQ(grad[3 * 4 + 0], 2.0f);
  EXPECT_FLOAT_EQ(grad[7 * 4 + 1], 1.0f);
  EXPECT_FLOAT_EQ(grad[0], 0.0f);
}

TEST(LstmTest, ForwardShapeAndGrad) {
  Rng rng(9);
  Lstm lstm(6, 5, rng);
  Tensor x = Tensor::Randn({4, 6}, rng);
  Tensor h = lstm.Forward(x);
  EXPECT_EQ(h.numel(), 5);
  Tensor loss = ops::Sum(ops::Square(h));
  loss.Backward();
  for (const Tensor& p : lstm.Parameters()) {
    double total = 0.0;
    for (float g : p.grad()) total += std::fabs(g);
    EXPECT_GT(total, 0.0);
  }
}

TEST(ModuleTest, ZeroGradClearsAll) {
  Rng rng(10);
  Mlp mlp({3, 4, 1}, rng);
  Tensor loss = ops::Sum(mlp.Forward(Tensor::Ones({3})));
  loss.Backward();
  mlp.ZeroGrad();
  for (const Tensor& p : mlp.Parameters()) {
    for (float g : p.grad()) EXPECT_FLOAT_EQ(g, 0.0f);
  }
}

TEST(AdamTest, LearnsLinearRegression) {
  // y = 2x - 1, learn w, b.
  Rng rng(11);
  Tensor w = Tensor::Randn({1}, rng, 0.1f).set_requires_grad(true);
  Tensor b = Tensor::Zeros({1}).set_requires_grad(true);
  optim::Adam adam({w, b}, 0.05f);
  for (int step = 0; step < 300; ++step) {
    const float x = static_cast<float>(rng.Uniform(-1.0, 1.0));
    const float y = 2.0f * x - 1.0f;
    Tensor pred = ops::Add(ops::MulScalar(w, x), b);
    Tensor loss = ops::MseLoss(pred, Tensor::Scalar(y));
    adam.ZeroGrad();
    loss.Backward();
    adam.Step();
  }
  EXPECT_NEAR(w.at(0), 2.0f, 0.1f);
  EXPECT_NEAR(b.at(0), -1.0f, 0.1f);
}

TEST(SgdTest, DescendsQuadratic) {
  Tensor x = Tensor::FromVector({1}, {5.0f}).set_requires_grad(true);
  optim::Sgd sgd({x}, 0.1f);
  for (int i = 0; i < 100; ++i) {
    Tensor loss = ops::Square(x);
    sgd.ZeroGrad();
    loss.Backward();
    sgd.Step();
  }
  EXPECT_NEAR(x.at(0), 0.0f, 1e-3f);
}

TEST(ClipGradNormTest, ScalesLargeGradients) {
  Tensor x = Tensor::FromVector({2}, {3.0f, 4.0f}).set_requires_grad(true);
  Tensor loss = ops::Sum(ops::MulScalar(x, 100.0f));
  loss.Backward();
  std::vector<Tensor> params = {x};
  const float pre = optim::ClipGradNorm(params, 1.0f);
  EXPECT_NEAR(pre, 100.0f * std::sqrt(2.0f), 1e-2);
  double norm = 0.0;
  for (float g : x.grad()) norm += static_cast<double>(g) * g;
  EXPECT_NEAR(std::sqrt(norm), 1.0, 1e-5);
}

TEST(TransformerTrainingTest, FitsToySequenceRegression) {
  // The transformer must learn to map a constant token sequence to a target
  // vector: sanity check that gradients flow end to end through attention.
  Rng rng(12);
  TransformerEncoder enc(1, 8, 2, 16, rng);
  Embedding emb(4, 8, rng);
  std::vector<Tensor> params = enc.Parameters();
  auto ep = emb.Parameters();
  params.insert(params.end(), ep.begin(), ep.end());
  optim::Adam adam(params, 0.01f);
  Tensor target = Tensor::Full({8}, 0.7f);
  double first_loss = 0.0, last_loss = 0.0;
  for (int step = 0; step < 120; ++step) {
    Tensor x = emb.Forward({0, 1, 2, 3});
    Tensor out = ops::Row(enc.Forward(x), 3);
    Tensor loss = ops::MseLoss(out, target);
    if (step == 0) first_loss = loss.item();
    last_loss = loss.item();
    adam.ZeroGrad();
    loss.Backward();
    adam.Step();
  }
  EXPECT_LT(last_loss, first_loss * 0.2);
}

}  // namespace
}  // namespace nn
}  // namespace tensor
}  // namespace chainsformer
