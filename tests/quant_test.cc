// Tests for DESIGN §6g, the reduced-precision serving mode: int8/bf16 GEMM
// kernel determinism (bitwise across scalar/SIMD dispatch and thread
// counts), quantized plan parity with the eager forward within the verify
// tolerance, the per-bucket fallback when a corrupt scale busts the parity
// gate (never a wrong answer), the serve-level accuracy-budget gate
// (serve.quant_rejected), the CFSM v2 "quant_int8" checkpoint block
// (round-trip, unknown-block skip, old-format compatibility, corrupt-scale
// death test), and the admin-surface precision reporting.

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/chainsformer.h"
#include "graph/executor.h"
#include "graph/plan.h"
#include "graph/quant.h"
#include "graph/runtime.h"
#include "kg/synthetic.h"
#include "serve/admin.h"
#include "serve/checkpoint.h"
#include "serve/service.h"
#include "tensor/kernels.h"
#include "util/metrics.h"
#include "util/rng.h"

namespace chainsformer {
namespace graph {
namespace {

using core::ChainsFormerConfig;
using core::ChainsFormerModel;
using core::Query;
using core::TreeOfChains;
namespace kernels = tensor::kernels;

ChainsFormerConfig SmallConfig() {
  ChainsFormerConfig config;
  config.num_walks = 32;
  config.top_k = 8;
  config.hidden_dim = 16;
  config.filter_dim = 8;
  config.encoder_layers = 1;
  config.reasoner_layers = 1;
  config.num_heads = 2;
  config.epochs = 2;
  config.max_train_queries = 120;
  config.filter_pretrain_queries = 60;
  config.filter_pretrain_epochs = 1;
  config.seed = 13;
  config.verbose = false;
  return config;
}

/// One trained model per test binary (training costs seconds); read-only
/// after construction — the serving surface is const.
struct Trained {
  kg::Dataset dataset = kg::MakeYago15kLike({.scale = 0.08});
  ChainsFormerConfig config = SmallConfig();
  std::unique_ptr<ChainsFormerModel> model;

  Trained() {
    model = std::make_unique<ChainsFormerModel>(dataset, config);
    model->Train();
  }
};

Trained& Shared() {
  static Trained* trained = new Trained();
  return *trained;
}

std::vector<Query> HeldOutQueries(const kg::Dataset& ds, size_t at_least) {
  std::vector<Query> queries;
  for (const auto& t : ds.split.test) queries.push_back({t.entity, t.attribute});
  for (const auto& t : ds.split.valid) queries.push_back({t.entity, t.attribute});
  EXPECT_GE(queries.size(), at_least)
      << "synthetic split too small for the acceptance criterion";
  return queries;
}

Query FirstQueryWithChains(const Trained& t) {
  for (const Query& q : HeldOutQueries(t.dataset, 8)) {
    if (!t.model->RetrieveChains(q).empty()) return q;
  }
  ADD_FAILURE() << "no held-out query retrieved any chains";
  return Query{};
}

int64_t CounterValue(const std::string& name) {
  return metrics::MetricsRegistry::Global().Snapshot().CounterValue(name);
}

/// Normalized-space eager prediction for `q`, the quantity the quantized
/// verify gate compares against (mirrors StaticGraphRuntime's gate).
double EagerNormalized(const Trained& t, const Query& q,
                       const TreeOfChains& chains) {
  const core::BatchPrediction eager =
      t.model->PredictOnChainSets({q}, {&chains})[0];
  return t.model->train_stats()[static_cast<size_t>(q.attribute)].Normalize(
      eager.value);
}

int64_t MaxTokens(const TreeOfChains& chains) {
  int64_t max_tokens = 0;
  for (const auto& c : chains) {
    max_tokens = std::max<int64_t>(max_tokens, c.length() + 3);
  }
  return max_tokens;
}

// --- int8 kernels ------------------------------------------------------------

TEST(QuantKernelsTest, WeightQuantizationIsSymmetricPerColumn) {
  const int64_t k = 6, n = 3;
  // Column 0 spans [-2, 1], column 1 is all zeros, column 2 is constant 0.5.
  std::vector<float> b(static_cast<size_t>(k * n), 0.0f);
  for (int64_t kk = 0; kk < k; ++kk) {
    b[static_cast<size_t>(kk * n + 0)] = -2.0f + static_cast<float>(kk) * 0.5f;
    b[static_cast<size_t>(kk * n + 2)] = 0.5f;
  }
  std::vector<int8_t> q(static_cast<size_t>(k * n));
  std::vector<float> scale(static_cast<size_t>(n));
  kernels::QuantizeWeightsInt8(k, n, b.data(), q.data(), scale.data());

  EXPECT_FLOAT_EQ(scale[0], 2.0f / 127.0f);
  EXPECT_FLOAT_EQ(scale[1], 0.0f);
  EXPECT_FLOAT_EQ(scale[2], 0.5f / 127.0f);
  for (int64_t kk = 0; kk < k; ++kk) {
    EXPECT_EQ(q[static_cast<size_t>(kk * n + 1)], 0) << "zero column row " << kk;
    EXPECT_EQ(q[static_cast<size_t>(kk * n + 2)], 127);
    const int8_t code = q[static_cast<size_t>(kk * n + 0)];
    EXPECT_GE(code, -127) << "-128 would let maddubs pair sums saturate";
    EXPECT_LE(code, 127);
    // Symmetric: dequantized code is within half a step of the weight.
    EXPECT_NEAR(static_cast<float>(code) * scale[0],
                b[static_cast<size_t>(kk * n + 0)], scale[0] * 0.5f + 1e-7f);
  }
}

/// Runs the full int8 pipeline (dynamic activation quant, GEMM, dequant) at
/// one shape through every GEMM variant, returning the dequantized outputs.
struct Int8Run {
  std::vector<int32_t> acc_reference;
  std::vector<int32_t> acc_serial;
  std::vector<int32_t> acc_threaded;
  std::vector<float> c;        // dequant of acc_serial
  std::vector<float> c_float;  // double-accumulated float reference
};

Int8Run RunInt8Pipeline(int64_t m, int64_t k, int64_t n, bool gelu,
                        uint64_t seed) {
  Rng rng(seed);
  std::vector<float> a(static_cast<size_t>(m * k));
  std::vector<float> b(static_cast<size_t>(k * n));
  std::vector<float> bias(static_cast<size_t>(n));
  for (auto& x : a) x = static_cast<float>(rng.Uniform(-2.0, 2.0));
  for (auto& x : b) x = static_cast<float>(rng.Normal());
  for (auto& x : bias) x = static_cast<float>(rng.Normal());

  std::vector<int8_t> q(static_cast<size_t>(k * n));
  std::vector<float> scale(static_cast<size_t>(n));
  kernels::QuantizeWeightsInt8(k, n, b.data(), q.data(), scale.data());
  const kernels::Int8Pack pack =
      kernels::PackInt8Weights(k, n, q.data(), scale.data());

  const int64_t kp = pack.k_padded, np = pack.n_padded;
  std::vector<uint8_t> qa(static_cast<size_t>(m * kp));
  std::vector<float> row_scale(static_cast<size_t>(m));
  std::vector<float> row_min(static_cast<size_t>(m));
  kernels::QuantizeActivationRows(m, k, kp, a.data(), qa.data(),
                                  row_scale.data(), row_min.data());

  Int8Run r;
  r.acc_reference.assign(static_cast<size_t>(m * np), -1);
  r.acc_serial.assign(static_cast<size_t>(m * np), -1);
  r.acc_threaded.assign(static_cast<size_t>(m * np), -1);
  kernels::Int8GemmI32Reference(m, pack, qa.data(), r.acc_reference.data());
  kernels::Int8GemmI32Serial(m, pack, qa.data(), r.acc_serial.data());
  kernels::Int8GemmI32(m, pack, qa.data(), r.acc_threaded.data());

  r.c.assign(static_cast<size_t>(m * n), 0.0f);
  kernels::DequantBiasRows(m, pack, r.acc_serial.data(), row_scale.data(),
                           row_min.data(), bias.data(), gelu, r.c.data());

  r.c_float.assign(static_cast<size_t>(m * n), 0.0f);
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      double sum = bias[static_cast<size_t>(j)];
      for (int64_t kk = 0; kk < k; ++kk) {
        sum += static_cast<double>(a[static_cast<size_t>(i * k + kk)]) *
               static_cast<double>(b[static_cast<size_t>(kk * n + j)]);
      }
      if (gelu) {
        sum = 0.5 * sum * (1.0 + std::erf(sum / std::sqrt(2.0)));
      }
      r.c_float[static_cast<size_t>(i * n + j)] = static_cast<float>(sum);
    }
  }
  return r;
}

TEST(QuantKernelsTest, Int8GemmVariantsAreBitwiseIdentical) {
  // Odd shapes exercise the k/n padding tails; the large shape slices onto
  // the thread pool.
  const int64_t shapes[][3] = {{1, 4, 8}, {5, 19, 23}, {7, 1, 1},
                               {48, 128, 128}};
  const int old_threads = tensor::kernels::KernelThreads();
  for (const auto& s : shapes) {
    for (const int threads : {1, 4}) {
      tensor::kernels::SetKernelThreads(threads);
      const Int8Run r = RunInt8Pipeline(s[0], s[1], s[2], false,
                                        0x51ull + static_cast<uint64_t>(s[1]));
      const size_t bytes = r.acc_serial.size() * sizeof(int32_t);
      EXPECT_EQ(std::memcmp(r.acc_serial.data(), r.acc_reference.data(), bytes),
                0)
          << "serial vs scalar reference at m=" << s[0] << " k=" << s[1]
          << " n=" << s[2];
      EXPECT_EQ(std::memcmp(r.acc_serial.data(), r.acc_threaded.data(), bytes),
                0)
          << "serial vs " << threads << "-thread dispatch at m=" << s[0]
          << " k=" << s[1] << " n=" << s[2];
    }
  }
  tensor::kernels::SetKernelThreads(old_threads);
}

TEST(QuantKernelsTest, Int8PipelineTracksFloatGemm) {
  for (const bool gelu : {false, true}) {
    const Int8Run r = RunInt8Pipeline(16, 128, 64, gelu, 0x7au);
    float max_abs = 0.0f;
    for (const float v : r.c_float) max_abs = std::max(max_abs, std::fabs(v));
    for (size_t i = 0; i < r.c.size(); ++i) {
      // 7-bit activations x 8-bit weights over k=128: ~1% relative error;
      // 5% of the output range is a generous but regression-catching bound.
      EXPECT_NEAR(r.c[i], r.c_float[i], 0.05f * max_abs + 0.05f)
          << "gelu=" << gelu << " element " << i;
    }
  }
}

TEST(QuantKernelsTest, ConstantActivationRowsReconstructExactly) {
  // A constant row quantizes to range 0 (scale 0, all-zero codes); the
  // offset-correction term must reconstruct value * column-sum exactly up to
  // the weight quantization.
  const int64_t m = 2, k = 12, n = 5;
  std::vector<float> a(static_cast<size_t>(m * k));
  for (int64_t kk = 0; kk < k; ++kk) {
    a[static_cast<size_t>(kk)] = 0.75f;       // row 0: constant
    a[static_cast<size_t>(k + kk)] = -1.25f;  // row 1: constant
  }
  Rng rng(9);
  std::vector<float> b(static_cast<size_t>(k * n));
  for (auto& x : b) x = static_cast<float>(rng.Normal());
  std::vector<float> bias(static_cast<size_t>(n), 0.125f);

  std::vector<int8_t> q(static_cast<size_t>(k * n));
  std::vector<float> scale(static_cast<size_t>(n));
  kernels::QuantizeWeightsInt8(k, n, b.data(), q.data(), scale.data());
  const kernels::Int8Pack pack =
      kernels::PackInt8Weights(k, n, q.data(), scale.data());
  std::vector<uint8_t> qa(static_cast<size_t>(m * pack.k_padded), 0xFF);
  std::vector<float> row_scale(static_cast<size_t>(m));
  std::vector<float> row_min(static_cast<size_t>(m));
  kernels::QuantizeActivationRows(m, k, pack.k_padded, a.data(), qa.data(),
                                  row_scale.data(), row_min.data());
  for (int64_t i = 0; i < m; ++i) {
    EXPECT_EQ(row_scale[static_cast<size_t>(i)], 0.0f);
    for (int64_t kk = 0; kk < pack.k_padded; ++kk) {
      EXPECT_EQ(qa[static_cast<size_t>(i * pack.k_padded + kk)], 0);
    }
  }

  std::vector<int32_t> acc(static_cast<size_t>(m * pack.n_padded), -1);
  kernels::Int8GemmI32Serial(m, pack, qa.data(), acc.data());
  std::vector<float> c(static_cast<size_t>(m * n));
  kernels::DequantBiasRows(m, pack, acc.data(), row_scale.data(),
                           row_min.data(), bias.data(), false, c.data());
  for (int64_t i = 0; i < m; ++i) {
    const float v = a[static_cast<size_t>(i * k)];
    for (int64_t j = 0; j < n; ++j) {
      // Exact expectation: fmaf(min, offset_dot[j], bias[j]) with acc == 0.
      const float want = std::fmaf(v, pack.offset_dot[static_cast<size_t>(j)],
                                   bias[static_cast<size_t>(j)]);
      EXPECT_EQ(c[static_cast<size_t>(i * n + j)], want)
          << "row " << i << " col " << j;
    }
  }
}

// --- bf16 kernels ------------------------------------------------------------

TEST(QuantKernelsTest, Bf16ConversionRoundsToNearestEven) {
  // Values exactly representable in bf16 round-trip bit-for-bit.
  for (const float v : {0.0f, 1.0f, -2.5f, 0.15625f, 128.0f}) {
    EXPECT_EQ(kernels::FloatFromBf16(kernels::Bf16FromFloat(v)), v);
  }
  // NaN payloads collapse to the canonical quiet NaN.
  EXPECT_EQ(kernels::Bf16FromFloat(std::nanf("0x123")), 0x7FC0);
  // Round-to-nearest-even: 1 + 2^-9 is exactly halfway between bf16
  // neighbors 1.0 and 1 + 2^-8; it must round to the even code (1.0).
  EXPECT_EQ(kernels::FloatFromBf16(kernels::Bf16FromFloat(1.001953125f)),
            1.0f);
}

TEST(QuantKernelsTest, Bf16GemmIsThreadInvariantAndTracksFloat) {
  const int64_t m = 16, k = 96, n = 48;
  Rng rng(21);
  std::vector<float> a(static_cast<size_t>(m * k));
  std::vector<float> b(static_cast<size_t>(k * n));
  for (auto& x : a) x = static_cast<float>(rng.Normal());
  for (auto& x : b) x = static_cast<float>(rng.Normal());
  const kernels::Bf16Pack pack = kernels::PackBf16Weights(k, n, b.data());

  std::vector<float> serial(static_cast<size_t>(m * n), 0.0f);
  kernels::Bf16GemmAccSerial(m, pack, a.data(), serial.data());
  const int old_threads = tensor::kernels::KernelThreads();
  for (const int threads : {1, 4}) {
    tensor::kernels::SetKernelThreads(threads);
    std::vector<float> threaded(static_cast<size_t>(m * n), 0.0f);
    kernels::Bf16GemmAcc(m, pack, a.data(), threaded.data());
    EXPECT_EQ(std::memcmp(serial.data(), threaded.data(),
                          serial.size() * sizeof(float)),
              0)
        << "bf16 GEMM diverged at " << threads << " threads";
  }
  tensor::kernels::SetKernelThreads(old_threads);

  for (int64_t i = 0; i < m; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      double sum = 0.0;
      for (int64_t kk = 0; kk < k; ++kk) {
        sum += static_cast<double>(a[static_cast<size_t>(i * k + kk)]) *
               static_cast<double>(b[static_cast<size_t>(kk * n + j)]);
      }
      // bf16 keeps 8 mantissa bits: ~0.4% per product, random-walk
      // accumulation over k=96.
      EXPECT_NEAR(serial[static_cast<size_t>(i * n + j)], sum,
                  0.02 * std::sqrt(static_cast<double>(k)) + 1e-3);
    }
  }
}

// --- Quantized plans ---------------------------------------------------------

TEST(QuantPlanTest, Int8PlanMatchesEagerWithinTolerance) {
  Trained& t = Shared();
  const QuantStore store = BuildQuantStore(*t.model);
  ASSERT_FALSE(store.linears.empty());
  const Query q = FirstQueryWithChains(t);
  const TreeOfChains chains = t.model->RetrieveChains(q);

  const auto plan = std::make_shared<const Plan>(
      CompilePlan(*t.model, static_cast<int64_t>(chains.size()),
                  MaxTokens(chains), Precision::kInt8, &store));
  EXPECT_EQ(plan->precision, Precision::kInt8);
  EXPECT_GT(plan->quant_rows, 0);
  PlanExecutor executor(plan);
  const double compiled = std::clamp(
      static_cast<double>(executor.RunNormalized(chains)), -0.1, 1.1);
  EXPECT_NEAR(compiled, EagerNormalized(t, q, chains), 0.05);

  // Bitwise deterministic: exact int32 accumulation and one fixed dequant
  // expression, regardless of the kernel thread count.
  const float once = executor.RunNormalized(chains);
  const int old_threads = tensor::kernels::KernelThreads();
  tensor::kernels::SetKernelThreads(4);
  EXPECT_EQ(executor.RunNormalized(chains), once);
  tensor::kernels::SetKernelThreads(old_threads);
}

TEST(QuantPlanTest, Bf16PlanMatchesEagerWithinTolerance) {
  Trained& t = Shared();
  const Query q = FirstQueryWithChains(t);
  const TreeOfChains chains = t.model->RetrieveChains(q);

  const auto plan = std::make_shared<const Plan>(
      CompilePlan(*t.model, static_cast<int64_t>(chains.size()),
                  MaxTokens(chains), Precision::kBf16, nullptr));
  EXPECT_EQ(plan->precision, Precision::kBf16);
  EXPECT_FALSE(plan->bf16_packs.empty());
  EXPECT_EQ(plan->quant_rows, 0) << "bf16 plans need no int8 scratch";
  PlanExecutor executor(plan);
  const double compiled = std::clamp(
      static_cast<double>(executor.RunNormalized(chains)), -0.1, 1.1);
  EXPECT_NEAR(compiled, EagerNormalized(t, q, chains), 0.01);
  EXPECT_EQ(executor.RunNormalized(chains), executor.RunNormalized(chains));
}

// The quantized plans keep the fp64 op skeleton (same expected_events), so
// the runtime's trace cross-check stays precision-agnostic.
TEST(QuantPlanTest, QuantizedPlansKeepTheEagerOpSkeleton) {
  Trained& t = Shared();
  const QuantStore store = BuildQuantStore(*t.model);
  const Query q = FirstQueryWithChains(t);
  const TreeOfChains chains = t.model->RetrieveChains(q);
  const int64_t k = static_cast<int64_t>(chains.size());
  const int64_t len = MaxTokens(chains);

  const Plan fp64 = CompilePlan(*t.model, k, len);
  const Plan int8 = CompilePlan(*t.model, k, len, Precision::kInt8, &store);
  const Plan bf16 = CompilePlan(*t.model, k, len, Precision::kBf16, nullptr);
  ASSERT_EQ(int8.expected_events.size(), fp64.expected_events.size());
  ASSERT_EQ(bf16.expected_events.size(), fp64.expected_events.size());
  for (size_t i = 0; i < fp64.expected_events.size(); ++i) {
    EXPECT_EQ(int8.expected_events[i], fp64.expected_events[i]) << "op " << i;
    EXPECT_EQ(bf16.expected_events[i], fp64.expected_events[i]) << "op " << i;
  }
}

// --- Runtime: tolerance gate + fallback --------------------------------------

TEST(QuantRuntimeTest, Int8RuntimeServesHeldOutQueriesWithinTolerance) {
  Trained& t = Shared();
  RuntimeOptions options;
  options.precision = Precision::kInt8;
  options.quant = std::make_shared<const QuantStore>(BuildQuantStore(*t.model));
  StaticGraphRuntime runtime(*t.model, options);
  EXPECT_EQ(runtime.precision(), Precision::kInt8);
  EXPECT_EQ(runtime.verify_tolerance(), 0.05);

  const int64_t fallbacks0 = CounterValue("plan.quant_fallbacks");
  std::vector<Query> queries = HeldOutQueries(t.dataset, 16);
  queries.resize(16);
  size_t with_evidence = 0;
  for (size_t i = 0; i < queries.size(); ++i) {
    const TreeOfChains chains = t.model->RetrieveChains(queries[i]);
    const core::BatchPrediction eager =
        t.model->PredictOnChainSets({queries[i]}, {&chains})[0];
    const core::BatchPrediction compiled = runtime.Predict(queries[i], chains);
    ASSERT_EQ(compiled.has_evidence, eager.has_evidence) << "query " << i;
    if (!compiled.has_evidence) continue;
    ++with_evidence;
    const auto& stats =
        t.model->train_stats()[static_cast<size_t>(queries[i].attribute)];
    EXPECT_LE(std::fabs(stats.Normalize(compiled.value) -
                        stats.Normalize(eager.value)),
              0.05 + 1e-9)
        << "query " << i;
  }
  EXPECT_GT(with_evidence, 0u);
  EXPECT_EQ(CounterValue("plan.quant_fallbacks") - fallbacks0, 0)
      << "a healthy store must pass the first-use parity gate";

  bool saw_int8_bucket = false;
  for (const auto& b : runtime.Stats()) {
    EXPECT_EQ(b.verify_tolerance, 0.05);
    if (b.ready && !b.eager_fallback) {
      EXPECT_STREQ(b.precision, "int8");
      saw_int8_bucket = true;
    }
  }
  EXPECT_TRUE(saw_int8_bucket);
}

TEST(QuantRuntimeTest, CorruptScaleFallsBackToEagerPerBucket) {
  Trained& t = Shared();
  QuantStore bad = BuildQuantStore(*t.model);
  // Garbage scales in every linear: the compiled result is far outside the
  // verify tolerance, so the gate must pin the bucket to the eager path.
  for (auto& lin : bad.linears) {
    for (float& s : lin.scale) s *= 64.0f;
  }
  RuntimeOptions options;
  options.precision = Precision::kInt8;
  options.quant = std::make_shared<const QuantStore>(std::move(bad));
  StaticGraphRuntime runtime(*t.model, options);

  const Query q = FirstQueryWithChains(t);
  const TreeOfChains chains = t.model->RetrieveChains(q);
  const core::BatchPrediction eager =
      t.model->PredictOnChainSets({q}, {&chains})[0];

  const int64_t fallbacks0 = CounterValue("plan.quant_fallbacks");
  const core::BatchPrediction first = runtime.Predict(q, chains);
  // Never a wrong answer: the gated miss serves the eager value bit-for-bit.
  EXPECT_EQ(first.value, eager.value);
  EXPECT_EQ(CounterValue("plan.quant_fallbacks") - fallbacks0, 1);

  // The bucket is pinned: later hits stay eager without re-verifying.
  const core::BatchPrediction again = runtime.Predict(q, chains);
  EXPECT_EQ(again.value, eager.value);
  EXPECT_EQ(CounterValue("plan.quant_fallbacks") - fallbacks0, 1);

  bool saw_fallback_bucket = false;
  for (const auto& b : runtime.Stats()) {
    if (b.eager_fallback) {
      EXPECT_STREQ(b.precision, "fp64")
          << "a gated bucket serves fp64, whatever was requested";
      saw_fallback_bucket = true;
    }
  }
  EXPECT_TRUE(saw_fallback_bucket);
}

// --- Service: accuracy-budget gate -------------------------------------------

TEST(QuantServiceTest, Int8ServiceAnswersAndTagsResponses) {
  Trained& t = Shared();
  serve::ServeOptions options;
  options.batch_window_us = 0;
  options.deadline_ms = 0;
  options.precision = Precision::kInt8;
  options.quant = std::make_shared<const QuantStore>(BuildQuantStore(*t.model));
  serve::InferenceService service(*t.model, options);
  EXPECT_FALSE(service.quant_rejected());

  const Query q = FirstQueryWithChains(t);
  const serve::ServeResponse r = service.Predict(q);
  EXPECT_EQ(r.source, "model");
  EXPECT_STREQ(r.precision, "int8");

  // The admin surfaces report the serving precision.
  const std::string status = serve::StatusJson(&service);
  EXPECT_NE(status.find("\"precision\": {\"mode\": \"int8\""),
            std::string::npos)
      << status;
  const std::string prom = serve::PrometheusText(&service);
  EXPECT_NE(prom.find("cf_plan_precision{precision=\"int8\"} 1"),
            std::string::npos)
      << prom;
}

TEST(QuantServiceTest, MissingQuantStoreRejectsInt8AndServesFp64) {
  Trained& t = Shared();
  const int64_t rejected0 = CounterValue("serve.quant_rejected");
  serve::ServeOptions options;
  options.batch_window_us = 0;
  options.deadline_ms = 0;
  options.precision = Precision::kInt8;  // no options.quant: old checkpoint
  serve::InferenceService service(*t.model, options);
  EXPECT_TRUE(service.quant_rejected());
  EXPECT_EQ(CounterValue("serve.quant_rejected") - rejected0, 1);

  const Query q = FirstQueryWithChains(t);
  const serve::ServeResponse r = service.Predict(q);
  EXPECT_EQ(r.source, "model");
  EXPECT_STREQ(r.precision, "fp64");
  EXPECT_EQ(r.value, t.model->Predict(q)) << "fp64 fallback must stay bitwise";
}

TEST(QuantServiceTest, CalibrationErrorOverBudgetRejectsInt8) {
  Trained& t = Shared();
  QuantStore store = BuildQuantStore(*t.model);
  store.mae_delta = 0.2;  // recorded drift way over the default 0.05 budget
  store.calibration_queries = 100;
  const int64_t rejected0 = CounterValue("serve.quant_rejected");
  serve::ServeOptions options;
  options.batch_window_us = 0;
  options.deadline_ms = 0;
  options.precision = Precision::kInt8;
  options.quant = std::make_shared<const QuantStore>(std::move(store));
  serve::InferenceService service(*t.model, options);
  EXPECT_TRUE(service.quant_rejected());
  EXPECT_EQ(CounterValue("serve.quant_rejected") - rejected0, 1);
  const serve::ServeResponse r = service.Predict(FirstQueryWithChains(t));
  EXPECT_STREQ(r.precision, "fp64");
}

// --- Checkpoint: CFSM v2 quant block -----------------------------------------

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

void WriteFileBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good()) << path;
}

uint32_t FormatVersion(const std::string& bytes) {
  EXPECT_GE(bytes.size(), 8u);
  uint32_t v = 0;
  std::memcpy(&v, bytes.data() + 4, sizeof(v));
  return v;
}

TEST(QuantCheckpointTest, QuantlessSaveStaysBitIdenticalVersion1) {
  Trained& t = Shared();
  const std::string old_path = "/tmp/cf_quant_v1_old.cfsm";
  const std::string new_path = "/tmp/cf_quant_v1_new.cfsm";
  ASSERT_TRUE(serve::SaveModel(*t.model, old_path));
  ASSERT_TRUE(serve::SaveModel(*t.model, nullptr, new_path));
  const std::string old_bytes = ReadFileBytes(old_path);
  EXPECT_EQ(old_bytes, ReadFileBytes(new_path))
      << "a null quant store must not change the checkpoint format";
  EXPECT_EQ(FormatVersion(old_bytes), 1u);
  // Loading a v1 checkpoint with a quant_out leaves it empty: the caller
  // then serves full precision.
  ChainsFormerConfig base;
  base.verbose = false;
  QuantStore quant;
  quant.linears.resize(1);  // stale state must be cleared
  ASSERT_NE(serve::LoadModel(t.dataset, base, old_path, &quant), nullptr);
  EXPECT_TRUE(quant.linears.empty());
  std::remove(old_path.c_str());
  std::remove(new_path.c_str());
}

TEST(QuantCheckpointTest, QuantBlockRoundTripsThroughVersion2) {
  Trained& t = Shared();
  QuantStore store = BuildQuantStore(*t.model);
  std::vector<Query> calib = HeldOutQueries(t.dataset, 8);
  calib.resize(8);
  CalibrateQuantStore(*t.model, calib, &store);
  EXPECT_GT(store.calibration_queries, 0);

  const std::string path = "/tmp/cf_quant_roundtrip.cfsm";
  ASSERT_TRUE(serve::SaveModel(*t.model, &store, path));
  EXPECT_EQ(FormatVersion(ReadFileBytes(path)), 2u);

  ChainsFormerConfig base;
  base.verbose = false;
  QuantStore loaded_q;
  std::unique_ptr<ChainsFormerModel> loaded =
      serve::LoadModel(t.dataset, base, path, &loaded_q);
  ASSERT_NE(loaded, nullptr);

  EXPECT_EQ(loaded_q.mae_delta, store.mae_delta);
  EXPECT_EQ(loaded_q.calibration_queries, store.calibration_queries);
  ASSERT_EQ(loaded_q.linears.size(), store.linears.size());
  for (size_t i = 0; i < store.linears.size(); ++i) {
    EXPECT_EQ(loaded_q.linears[i].name, store.linears[i].name);
    EXPECT_EQ(loaded_q.linears[i].in, store.linears[i].in);
    EXPECT_EQ(loaded_q.linears[i].out, store.linears[i].out);
    EXPECT_EQ(loaded_q.linears[i].codes, store.linears[i].codes);
    EXPECT_EQ(loaded_q.linears[i].scale, store.linears[i].scale);
  }

  // The model parameters still round-trip bitwise underneath the new block,
  // and the reloaded store passes the serve-time accuracy gate.
  const Query q = FirstQueryWithChains(t);
  EXPECT_EQ(loaded->Predict(q), t.model->Predict(q));
  serve::ServeOptions options;
  options.batch_window_us = 0;
  options.deadline_ms = 0;
  options.precision = Precision::kInt8;
  options.quant = std::make_shared<const QuantStore>(std::move(loaded_q));
  serve::InferenceService service(*loaded, options);
  EXPECT_FALSE(service.quant_rejected())
      << "calibration drift " << options.quant->mae_delta
      << " exceeded the documented 0.05 budget";
  EXPECT_STREQ(service.Predict(q).precision, "int8");
  std::remove(path.c_str());
}

TEST(QuantCheckpointTest, UnknownTaggedBlocksAreSkipped) {
  Trained& t = Shared();
  QuantStore store = BuildQuantStore(*t.model);
  const std::string path = "/tmp/cf_quant_unknown_block.cfsm";
  ASSERT_TRUE(serve::SaveModel(*t.model, &store, path));

  // Rename the block in place (same length): a reader that does not know
  // the name must skip the payload and keep going — forward compatibility
  // for blocks added after this binary shipped.
  std::string bytes = ReadFileBytes(path);
  const size_t pos = bytes.find("quant_int8");
  ASSERT_NE(pos, std::string::npos);
  bytes.replace(pos, 10, "mystery_xx");
  WriteFileBytes(path, bytes);

  ChainsFormerConfig base;
  base.verbose = false;
  QuantStore quant;
  std::unique_ptr<ChainsFormerModel> loaded =
      serve::LoadModel(t.dataset, base, path, &quant);
  ASSERT_NE(loaded, nullptr);
  EXPECT_TRUE(quant.linears.empty());
  EXPECT_EQ(loaded->Predict(FirstQueryWithChains(t)),
            t.model->Predict(FirstQueryWithChains(t)));
  std::remove(path.c_str());
}

TEST(QuantCheckpointDeathTest, CorruptScaleAbortsNamingTheBlock) {
  Trained& t = Shared();
  QuantStore store = BuildQuantStore(*t.model);
  ASSERT_FALSE(store.linears.empty());
  store.linears[0].scale[0] = -1.0f;  // negative scale: impossible output
  const std::string path = "/tmp/cf_quant_corrupt_scale.cfsm";
  ASSERT_TRUE(serve::SaveModel(*t.model, &store, path));
  ChainsFormerConfig base;
  base.verbose = false;
  QuantStore quant;
  EXPECT_DEATH(serve::LoadModel(t.dataset, base, path, &quant),
               "quant_int8 block of .* corrupt scale array");
  std::remove(path.c_str());
}

TEST(QuantCheckpointDeathTest, FutureFormatVersionAbortsNamed) {
  Trained& t = Shared();
  const std::string path = "/tmp/cf_quant_future_version.cfsm";
  ASSERT_TRUE(serve::SaveModel(*t.model, path));
  std::string bytes = ReadFileBytes(path);
  const uint32_t future = 7;
  std::memcpy(&bytes[4], &future, sizeof(future));
  WriteFileBytes(path, bytes);
  ChainsFormerConfig base;
  base.verbose = false;
  EXPECT_DEATH(serve::LoadModel(t.dataset, base, path),
               "this binary reads versions 1..2");
  std::remove(path.c_str());
}

}  // namespace
}  // namespace graph
}  // namespace chainsformer
