#include "core/numerical_reasoner.h"

#include <cmath>

#include <gtest/gtest.h>

#include "tensor/ops.h"

namespace chainsformer {
namespace core {
namespace {

ChainsFormerConfig Config(ProjectionMode mode, bool weighting = true) {
  ChainsFormerConfig c;
  c.hidden_dim = 8;
  c.reasoner_layers = 1;
  c.num_heads = 2;
  c.projection = mode;
  c.use_chain_weighting = weighting;
  return c;
}

std::vector<tensor::Tensor> SomeReps(int k, int d, uint64_t seed) {
  Rng rng(seed);
  std::vector<tensor::Tensor> reps;
  for (int i = 0; i < k; ++i) {
    reps.push_back(tensor::Tensor::Randn({d}, rng, 0.5f));
  }
  return reps;
}

TEST(NumericalReasonerTest, WeightsFormDistribution) {
  Rng rng(1);
  NumericalReasoner reasoner(Config(ProjectionMode::kScaling), rng);
  const auto reps = SomeReps(5, 8, 2);
  const auto out = reasoner.Forward(reps, {0.1, 0.2, 0.3, 0.4, 0.5},
                                    {1, 2, 3, 1, 2});
  ASSERT_EQ(out.weights.numel(), 5);
  double total = 0.0;
  for (int64_t i = 0; i < 5; ++i) {
    EXPECT_GT(out.weights.at(i), 0.0f);
    total += out.weights.at(i);
  }
  EXPECT_NEAR(total, 1.0, 1e-5);
}

TEST(NumericalReasonerTest, PredictionIsWeightedSumOfChainPredictions) {
  Rng rng(3);
  NumericalReasoner reasoner(Config(ProjectionMode::kScaling), rng);
  const auto reps = SomeReps(4, 8, 4);
  const auto out = reasoner.Forward(reps, {0.2, 0.4, 0.6, 0.8}, {1, 1, 2, 3});
  double manual = 0.0;
  for (int64_t i = 0; i < 4; ++i) {
    manual += static_cast<double>(out.weights.at(i)) * out.chain_predictions.at(i);
  }
  EXPECT_NEAR(out.prediction.item(), manual, 1e-5);
}

TEST(NumericalReasonerTest, UniformWeightsWhenWeightingDisabled) {
  Rng rng(5);
  NumericalReasoner reasoner(Config(ProjectionMode::kScaling, false), rng);
  const auto reps = SomeReps(4, 8, 6);
  const auto out = reasoner.Forward(reps, {0.2, 0.4, 0.6, 0.8}, {1, 1, 2, 3});
  for (int64_t i = 0; i < 4; ++i) EXPECT_FLOAT_EQ(out.weights.at(i), 0.25f);
}

TEST(NumericalReasonerTest, SingleChainGetsFullWeight) {
  Rng rng(7);
  NumericalReasoner reasoner(Config(ProjectionMode::kScaling), rng);
  const auto reps = SomeReps(1, 8, 8);
  const auto out = reasoner.Forward(reps, {0.5}, {2});
  EXPECT_FLOAT_EQ(out.weights.at(0), 1.0f);
}

TEST(NumericalReasonerTest, ScalingProjectionProportionalToValue) {
  // n̂ = α(ẽ) * n_p: doubling the evidence value doubles the chain prediction
  // because α depends only on the representation.
  Rng rng(9);
  NumericalReasoner reasoner(Config(ProjectionMode::kScaling), rng);
  const auto reps = SomeReps(1, 8, 10);
  const auto out1 = reasoner.Forward(reps, {0.3}, {1});
  const auto out2 = reasoner.Forward(reps, {0.6}, {1});
  EXPECT_NEAR(out2.chain_predictions.at(0), 2.0f * out1.chain_predictions.at(0),
              1e-5);
}

TEST(NumericalReasonerTest, TranslationProjectionShiftInvariant) {
  // n̂ = n_p + β(ẽ): shifting the evidence shifts the prediction equally.
  Rng rng(11);
  NumericalReasoner reasoner(Config(ProjectionMode::kTranslation), rng);
  const auto reps = SomeReps(1, 8, 12);
  const auto out1 = reasoner.Forward(reps, {0.3}, {1});
  const auto out2 = reasoner.Forward(reps, {0.5}, {1});
  EXPECT_NEAR(out2.chain_predictions.at(0) - out1.chain_predictions.at(0), 0.2f,
              1e-5);
}

TEST(NumericalReasonerTest, DirectProjectionIgnoresValue) {
  Rng rng(13);
  NumericalReasoner reasoner(Config(ProjectionMode::kDirect), rng);
  const auto reps = SomeReps(1, 8, 14);
  const auto out1 = reasoner.Forward(reps, {0.3}, {1});
  const auto out2 = reasoner.Forward(reps, {0.9}, {1});
  EXPECT_FLOAT_EQ(out1.chain_predictions.at(0), out2.chain_predictions.at(0));
}

TEST(NumericalReasonerTest, CombinedProjectionFiniteAndValueSensitive) {
  Rng rng(15);
  NumericalReasoner reasoner(Config(ProjectionMode::kCombined), rng);
  const auto reps = SomeReps(3, 8, 16);
  const auto out = reasoner.Forward(reps, {0.1, 0.5, 0.9}, {1, 2, 3});
  for (int64_t i = 0; i < 3; ++i) {
    EXPECT_TRUE(std::isfinite(out.chain_predictions.at(i)));
  }
  const auto out2 = reasoner.Forward(reps, {0.2, 0.6, 1.0}, {1, 2, 3});
  EXPECT_NE(out.prediction.item(), out2.prediction.item());
}

TEST(NumericalReasonerTest, LengthEncodingInfluencesWeights) {
  Rng rng(17);
  NumericalReasoner reasoner(Config(ProjectionMode::kScaling), rng);
  const auto reps = SomeReps(3, 8, 18);
  const auto out1 = reasoner.Forward(reps, {0.5, 0.5, 0.5}, {1, 1, 1});
  const auto out2 = reasoner.Forward(reps, {0.5, 0.5, 0.5}, {1, 2, 3});
  double diff = 0.0;
  for (int64_t i = 0; i < 3; ++i) {
    diff += std::fabs(out1.weights.at(i) - out2.weights.at(i));
  }
  EXPECT_GT(diff, 1e-6);
}

TEST(NumericalReasonerTest, ChainOrderIrrelevance) {
  // Paper §IV-E: "Positional encoding is omitted as the order of logic
  // chains is not crucial." Permuting the chains must permute the weights
  // and leave the aggregated prediction unchanged.
  Rng rng(23);
  NumericalReasoner reasoner(Config(ProjectionMode::kScaling), rng);
  auto reps = SomeReps(4, 8, 24);
  std::vector<double> values = {0.1, 0.3, 0.5, 0.7};
  std::vector<int64_t> lengths = {1, 2, 3, 1};
  const auto out = reasoner.Forward(reps, values, lengths);

  // Reverse the chain order.
  std::vector<tensor::Tensor> r_reps(reps.rbegin(), reps.rend());
  std::vector<double> r_values(values.rbegin(), values.rend());
  std::vector<int64_t> r_lengths(lengths.rbegin(), lengths.rend());
  const auto r_out = reasoner.Forward(r_reps, r_values, r_lengths);

  EXPECT_NEAR(out.prediction.item(), r_out.prediction.item(), 1e-4);
  for (int64_t i = 0; i < 4; ++i) {
    EXPECT_NEAR(out.weights.at(i), r_out.weights.at(3 - i), 1e-4);
  }
}

TEST(NumericalReasonerTest, GradientsReachAllParameters) {
  Rng rng(19);
  NumericalReasoner reasoner(Config(ProjectionMode::kCombined), rng);
  std::vector<tensor::Tensor> reps;
  Rng rrng(20);
  for (int i = 0; i < 3; ++i) {
    reps.push_back(tensor::Tensor::Randn({8}, rrng, 0.5f).set_requires_grad(true));
  }
  const auto out = reasoner.Forward(reps, {0.2, 0.5, 0.7}, {1, 2, 2});
  tensor::Tensor loss = tensor::Square(out.prediction);
  loss.Backward();
  double total = 0.0;
  for (const auto& p : reasoner.Parameters()) {
    for (float g : p.grad()) total += std::fabs(g);
  }
  EXPECT_GT(total, 0.0);
  // Gradients also reach the chain representations (and hence the encoder).
  double rep_grad = 0.0;
  for (const auto& r : reps) {
    for (float g : r.grad()) rep_grad += std::fabs(g);
  }
  EXPECT_GT(rep_grad, 0.0);
}

}  // namespace
}  // namespace core
}  // namespace chainsformer
