#include "eval/significance.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace chainsformer {
namespace eval {
namespace {

TEST(SignificanceTest, IdenticalErrorsNotSignificant) {
  std::vector<double> errs(100, 1.0);
  const BootstrapResult r = PairedBootstrap(errs, errs);
  EXPECT_DOUBLE_EQ(r.mean_diff, 0.0);
  EXPECT_FALSE(r.significant_at_05());
}

TEST(SignificanceTest, ClearlySeparatedMethodsSignificant) {
  Rng rng(1);
  std::vector<double> a(200), b(200);
  for (size_t i = 0; i < a.size(); ++i) {
    a[i] = 1.0 + rng.Normal(0.0, 0.1);   // worse method
    b[i] = 0.5 + rng.Normal(0.0, 0.1);   // better method
  }
  const BootstrapResult r = PairedBootstrap(a, b);
  EXPECT_GT(r.mean_diff, 0.4);
  EXPECT_TRUE(r.significant_at_05());
  EXPECT_GT(r.ci_low, 0.0);  // CI excludes zero
}

TEST(SignificanceTest, NoisyEqualMethodsNotSignificant) {
  Rng rng(2);
  std::vector<double> a(100), b(100);
  for (size_t i = 0; i < a.size(); ++i) {
    a[i] = 1.0 + rng.Normal(0.0, 0.5);
    b[i] = 1.0 + rng.Normal(0.0, 0.5);
  }
  const BootstrapResult r = PairedBootstrap(a, b);
  EXPECT_FALSE(r.significant_at_05());
  EXPECT_LE(r.ci_low, 0.0);
  EXPECT_GE(r.ci_high, 0.0);
}

TEST(SignificanceTest, ConfidenceIntervalBracketsMean) {
  Rng rng(3);
  std::vector<double> a(150), b(150);
  for (size_t i = 0; i < a.size(); ++i) {
    a[i] = rng.Uniform(0.0, 2.0);
    b[i] = rng.Uniform(0.0, 2.0);
  }
  const BootstrapResult r = PairedBootstrap(a, b);
  EXPECT_LE(r.ci_low, r.mean_diff);
  EXPECT_GE(r.ci_high, r.mean_diff);
}

TEST(SignificanceTest, DeterministicForSeed) {
  Rng rng(4);
  std::vector<double> a(50), b(50);
  for (size_t i = 0; i < a.size(); ++i) {
    a[i] = rng.Uniform();
    b[i] = rng.Uniform();
  }
  const BootstrapResult r1 = PairedBootstrap(a, b, 500, 42);
  const BootstrapResult r2 = PairedBootstrap(a, b, 500, 42);
  EXPECT_DOUBLE_EQ(r1.p_value, r2.p_value);
  EXPECT_DOUBLE_EQ(r1.ci_low, r2.ci_low);
}

TEST(SignificanceTest, SingleSampleEdgeCase) {
  const BootstrapResult r = PairedBootstrap({1.0}, {0.5}, 100);
  EXPECT_DOUBLE_EQ(r.mean_diff, 0.5);
  EXPECT_DOUBLE_EQ(r.ci_low, r.ci_high);  // only one possible resample
}

}  // namespace
}  // namespace eval
}  // namespace chainsformer
