#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "hyperbolic/poincare.h"
#include "hyperbolic/poincare_ops.h"
#include "tensor/gradcheck.h"
#include "tensor/ops.h"
#include "util/rng.h"

namespace chainsformer {
namespace hyperbolic {
namespace {

Vec RandomBallPoint(Rng& rng, size_t dim, double max_norm = 0.7) {
  Vec v(dim);
  for (auto& x : v) x = rng.Normal();
  const double norm = EuclideanNorm(v);
  const double target = rng.Uniform(0.05, max_norm);
  for (auto& x : v) x *= target / norm;
  return v;
}

class PoincarePropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PoincarePropertyTest, MobiusAddIdentityElement) {
  Rng rng(GetParam());
  const Vec x = RandomBallPoint(rng, 6);
  const Vec zero(6, 0.0);
  const Vec a = MobiusAdd(x, zero);
  const Vec b = MobiusAdd(zero, x);
  for (size_t i = 0; i < x.size(); ++i) {
    EXPECT_NEAR(a[i], x[i], 1e-9);
    EXPECT_NEAR(b[i], x[i], 1e-9);
  }
}

TEST_P(PoincarePropertyTest, MobiusAddLeftInverse) {
  Rng rng(GetParam() ^ 0x11);
  const Vec x = RandomBallPoint(rng, 5);
  Vec nx(x.size());
  for (size_t i = 0; i < x.size(); ++i) nx[i] = -x[i];
  const Vec sum = MobiusAdd(nx, x);
  EXPECT_LT(EuclideanNorm(sum), 1e-8);
}

TEST_P(PoincarePropertyTest, MobiusAddStaysInBall) {
  Rng rng(GetParam() ^ 0x22);
  const Vec x = RandomBallPoint(rng, 4, 0.95);
  const Vec y = RandomBallPoint(rng, 4, 0.95);
  EXPECT_LT(EuclideanNorm(MobiusAdd(x, y)), 1.0);
}

TEST_P(PoincarePropertyTest, DistanceAxioms) {
  Rng rng(GetParam() ^ 0x33);
  const Vec x = RandomBallPoint(rng, 5);
  const Vec y = RandomBallPoint(rng, 5);
  const Vec z = RandomBallPoint(rng, 5);
  EXPECT_NEAR(Distance(x, x), 0.0, 1e-6);
  EXPECT_NEAR(Distance(x, y), Distance(y, x), 1e-8);        // symmetry
  EXPECT_GT(Distance(x, y), 0.0);                           // positivity
  EXPECT_LE(Distance(x, z), Distance(x, y) + Distance(y, z) + 1e-8);  // triangle
}

TEST_P(PoincarePropertyTest, ExpLogInverse) {
  Rng rng(GetParam() ^ 0x44);
  const Vec x = RandomBallPoint(rng, 6);
  const Vec v = LogMap0(x);
  const Vec back = ExpMap0(v);
  for (size_t i = 0; i < x.size(); ++i) EXPECT_NEAR(back[i], x[i], 1e-8);
}

TEST_P(PoincarePropertyTest, DistanceFromOriginMatchesLogNorm) {
  Rng rng(GetParam() ^ 0x55);
  const Vec x = RandomBallPoint(rng, 4);
  // d(0, x) = 2 artanh(||x||) = 2 ||log_0(x)||.
  EXPECT_NEAR(DistanceFromOrigin(x), 2.0 * EuclideanNorm(LogMap0(x)), 1e-8);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PoincarePropertyTest,
                         ::testing::Values(1ull, 2ull, 3ull, 7ull, 1337ull));

TEST(PoincareTest, Eq3MatchesEq2AtCurvatureOne) {
  Rng rng(99);
  const Vec x = RandomBallPoint(rng, 5);
  const Vec y = RandomBallPoint(rng, 5);
  // Eq. 3 arcosh form.
  double diff_sq = 0.0;
  for (size_t i = 0; i < x.size(); ++i) diff_sq += (x[i] - y[i]) * (x[i] - y[i]);
  const double arg =
      1.0 + 2.0 * diff_sq / ((1.0 - SqNorm(x)) * (1.0 - SqNorm(y)));
  EXPECT_NEAR(Distance(x, y, 1.0), std::acosh(arg), 1e-7);
}

TEST(PoincareTest, SmallCurvatureApproachesEuclidean) {
  Rng rng(5);
  const Vec x = RandomBallPoint(rng, 4, 0.1);
  const Vec y = RandomBallPoint(rng, 4, 0.1);
  double euclid = 0.0;
  for (size_t i = 0; i < x.size(); ++i) euclid += (x[i] - y[i]) * (x[i] - y[i]);
  euclid = 2.0 * std::sqrt(euclid);
  // As c -> 0, d_c -> 2 ||x - y|| (paper §III-B).
  EXPECT_NEAR(Distance(x, y, 1e-6), euclid, euclid * 0.01);
}

TEST(PoincareTest, VariableResolutionGrowth) {
  // Distances explode near the boundary: moving the same Euclidean step is
  // "longer" far from the origin — the property the filter exploits.
  const Vec a1 = {0.0, 0.0};
  const Vec a2 = {0.1, 0.0};
  const Vec b1 = {0.85, 0.0};
  const Vec b2 = {0.95, 0.0};
  EXPECT_GT(Distance(b1, b2), 4.0 * Distance(a1, a2));
}

TEST(PoincareTest, ProjectToBallClipsOnlyOutsiders) {
  const Vec inside = {0.1, 0.2};
  const Vec projected = ProjectToBall(inside);
  EXPECT_EQ(projected, inside);
  const Vec outside = {2.0, 0.0};
  EXPECT_LT(EuclideanNorm(ProjectToBall(outside)), 1.0);
}

TEST(PoincareTest, MobiusAddChainFold) {
  Rng rng(12);
  const Vec a = RandomBallPoint(rng, 3);
  const Vec b = RandomBallPoint(rng, 3);
  const Vec c = RandomBallPoint(rng, 3);
  const Vec chained = MobiusAddChain({a, b, c});
  const Vec manual = MobiusAdd(MobiusAdd(a, b), c);
  for (size_t i = 0; i < 3; ++i) EXPECT_NEAR(chained[i], manual[i], 1e-10);
}

// --- Extended geometry: scalar mult, base-point maps, geodesics -------------

TEST_P(PoincarePropertyTest, MobiusScalarMulScalesOriginDistance) {
  Rng rng(GetParam() ^ 0x66);
  const Vec x = RandomBallPoint(rng, 4);
  // d(0, r ⊗ x) = |r| d(0, x) along the same geodesic ray.
  EXPECT_NEAR(DistanceFromOrigin(MobiusScalarMul(0.5, x)),
              0.5 * DistanceFromOrigin(x), 1e-8);
  EXPECT_NEAR(DistanceFromOrigin(MobiusScalarMul(2.0, x)),
              2.0 * DistanceFromOrigin(x), 1e-6);
  const Vec one = MobiusScalarMul(1.0, x);
  for (size_t i = 0; i < x.size(); ++i) EXPECT_NEAR(one[i], x[i], 1e-10);
}

TEST_P(PoincarePropertyTest, ExpLogInverseAtBasePoint) {
  Rng rng(GetParam() ^ 0x77);
  const Vec x = RandomBallPoint(rng, 5);
  const Vec y = RandomBallPoint(rng, 5);
  const Vec v = LogMap(x, y);
  const Vec back = ExpMap(x, v);
  for (size_t i = 0; i < y.size(); ++i) EXPECT_NEAR(back[i], y[i], 1e-7);
}

TEST_P(PoincarePropertyTest, LogMapNormIsDistance) {
  Rng rng(GetParam() ^ 0x88);
  const Vec x = RandomBallPoint(rng, 4);
  const Vec y = RandomBallPoint(rng, 4);
  // ||log_x(y)|| equals the geodesic distance d(x, y) (unit-speed geodesics
  // in the Riemannian metric at x... up to the conformal factor λ_x):
  // d(x,y) = λ_x ||log_x(y)||? For the Poincaré ball, d = λ_x * ||v|| / 1?
  // The standard identity: ||log_x(y)|| = (2/(sqrt(c) λ_x)) artanh(...) so
  // λ_x ||log_x(y)|| * sqrt(c)/2 * 2/sqrt(c) = d. Check numerically:
  EXPECT_NEAR(ConformalFactor(x) * EuclideanNorm(LogMap(x, y)), Distance(x, y),
              1e-7);
}

TEST_P(PoincarePropertyTest, GeodesicEndpointsAndProportionality) {
  Rng rng(GetParam() ^ 0x99);
  const Vec x = RandomBallPoint(rng, 4);
  const Vec y = RandomBallPoint(rng, 4);
  const Vec g0 = Geodesic(x, y, 0.0);
  const Vec g1 = Geodesic(x, y, 1.0);
  for (size_t i = 0; i < x.size(); ++i) {
    EXPECT_NEAR(g0[i], x[i], 1e-9);
    EXPECT_NEAR(g1[i], y[i], 1e-7);
  }
  // Constant-speed parameterization: d(x, γ(t)) = t d(x, y).
  const Vec mid = Geodesic(x, y, 0.5);
  EXPECT_NEAR(Distance(x, mid), 0.5 * Distance(x, y), 1e-7);
}

TEST(GyromidpointTest, SinglePointIsIdentity) {
  Rng rng(3);
  const Vec x = RandomBallPoint(rng, 4);
  const Vec m = Gyromidpoint({x}, {1.0});
  for (size_t i = 0; i < x.size(); ++i) EXPECT_NEAR(m[i], x[i], 1e-9);
}

TEST(GyromidpointTest, SymmetricPairAveragesToOrigin) {
  Rng rng(4);
  const Vec x = RandomBallPoint(rng, 4);
  Vec nx(x.size());
  for (size_t i = 0; i < x.size(); ++i) nx[i] = -x[i];
  const Vec m = Gyromidpoint({x, nx}, {1.0, 1.0});
  EXPECT_LT(EuclideanNorm(m), 1e-9);
}

TEST(GyromidpointTest, WeightsSkewTowardHeavyPoint) {
  Rng rng(5);
  const Vec x = RandomBallPoint(rng, 3);
  const Vec y = RandomBallPoint(rng, 3);
  const Vec toward_x = Gyromidpoint({x, y}, {10.0, 1.0});
  const Vec balanced = Gyromidpoint({x, y}, {1.0, 1.0});
  EXPECT_LT(Distance(toward_x, x), Distance(balanced, x));
}

// --- Autograd twins match the plain kernels ---------------------------------

tensor::Tensor ToTensor(const Vec& v) {
  std::vector<float> f(v.begin(), v.end());
  return tensor::Tensor::FromVector({static_cast<int64_t>(v.size())}, f);
}

TEST(PoincareOpsTest, HMobiusAddMatchesPlain) {
  Rng rng(21);
  const Vec x = RandomBallPoint(rng, 5);
  const Vec y = RandomBallPoint(rng, 5);
  const Vec expected = MobiusAdd(x, y);
  const tensor::Tensor got = HMobiusAdd(ToTensor(x), ToTensor(y));
  for (size_t i = 0; i < 5; ++i) {
    EXPECT_NEAR(got.at(static_cast<int64_t>(i)), expected[i], 1e-4);
  }
}

TEST(PoincareOpsTest, HDistanceMatchesPlain) {
  Rng rng(22);
  const Vec x = RandomBallPoint(rng, 5);
  const Vec y = RandomBallPoint(rng, 5);
  EXPECT_NEAR(HDistance(ToTensor(x), ToTensor(y)).item(), Distance(x, y), 1e-3);
}

TEST(PoincareOpsTest, HExpHLogMatchPlain) {
  Rng rng(23);
  const Vec v = RandomBallPoint(rng, 4);  // small tangent vector
  const Vec expected = ExpMap0(v);
  const tensor::Tensor mapped = HExpMap0(ToTensor(v));
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_NEAR(mapped.at(static_cast<int64_t>(i)), expected[i], 1e-4);
  }
  const Vec x = RandomBallPoint(rng, 4);
  const Vec lg = LogMap0(x);
  const tensor::Tensor lgt = HLogMap0(ToTensor(x));
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_NEAR(lgt.at(static_cast<int64_t>(i)), lg[i], 1e-4);
  }
}

TEST(PoincareOpsTest, HDistanceGradcheck) {
  Rng rng(24);
  const Vec xv = RandomBallPoint(rng, 4, 0.5);
  const Vec yv = RandomBallPoint(rng, 4, 0.5);
  tensor::Tensor x = ToTensor(xv).set_requires_grad(true);
  tensor::Tensor y = ToTensor(yv).set_requires_grad(true);
  auto fn = [](const std::vector<tensor::Tensor>& in) {
    return HDistance(in[0], in[1]);
  };
  const auto result = tensor::CheckGradients(fn, {x, y}, 1e-3, 8e-2);
  EXPECT_TRUE(result.ok) << "max_rel_error=" << result.max_rel_error;
}

TEST(PoincareOpsTest, HExpMap0Gradcheck) {
  Rng rng(25);
  const Vec v = RandomBallPoint(rng, 4, 0.5);
  tensor::Tensor x = ToTensor(v).set_requires_grad(true);
  auto fn = [](const std::vector<tensor::Tensor>& in) {
    return tensor::Sum(tensor::Square(HExpMap0(in[0])));
  };
  EXPECT_TRUE(tensor::CheckGradients(fn, {x}, 1e-3, 8e-2).ok);
}

}  // namespace
}  // namespace hyperbolic
}  // namespace chainsformer
