// Tests for the entity-sharded serving layer (DESIGN §6i): consistent-hash
// ring stability, the fan-out router (trace-id preservation, shard-down
// rerouting and degradation, kill-one-shard-under-load), and the epoll
// NDJSON front-end — including the slow-writer + fast-client interleaving
// regression the old thread-per-connection listener failed.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "serve/async_server.h"
#include "serve/router.h"
#include "util/net.h"
#include "util/string_util.h"

namespace chainsformer {
namespace serve {
namespace {

// --- HashRing ---------------------------------------------------------------

std::vector<std::string> SyntheticKeys(size_t n) {
  std::vector<std::string> keys;
  keys.reserve(n);
  for (size_t i = 0; i < n; ++i) keys.push_back("entity_" + std::to_string(i));
  return keys;
}

TEST(HashRingTest, OwnerIsDeterministicAcrossInstances) {
  // Router and shard processes build their rings independently; routing
  // only works if (shards, vnodes) alone pins every owner.
  HashRing a(4);
  HashRing b(4);
  for (const std::string& key : SyntheticKeys(500)) {
    const int owner = a.Owner(key);
    EXPECT_EQ(owner, b.Owner(key));
    EXPECT_GE(owner, 0);
    EXPECT_LT(owner, 4);
  }
}

TEST(HashRingTest, KeysSpreadOverAllShards) {
  HashRing ring(8);
  std::vector<int> counts(8, 0);
  const std::vector<std::string> keys = SyntheticKeys(8000);
  for (const std::string& key : keys) counts[static_cast<size_t>(ring.Owner(key))]++;
  for (int shard = 0; shard < 8; ++shard) {
    // Perfect balance is 1000/shard; vnode hashing keeps every shard within
    // a loose factor of it (no empty or dominant shard).
    EXPECT_GT(counts[static_cast<size_t>(shard)], 400) << "shard " << shard;
    EXPECT_LT(counts[static_cast<size_t>(shard)], 2200) << "shard " << shard;
  }
}

TEST(HashRingTest, AddingShardMovesAboutOneOverNKeys) {
  // The point of consistent hashing: growing 4 → 5 shards reassigns ~1/5 of
  // the keys (all of them TO the new shard), so the existing shards keep
  // their warm ToC caches.
  HashRing before(4);
  HashRing after(5);
  const std::vector<std::string> keys = SyntheticKeys(20000);
  size_t moved = 0;
  for (const std::string& key : keys) {
    const int old_owner = before.Owner(key);
    const int new_owner = after.Owner(key);
    if (old_owner != new_owner) {
      ++moved;
      EXPECT_EQ(new_owner, 4) << "a moved key must move to the new shard";
    }
  }
  const double fraction = static_cast<double>(moved) / static_cast<double>(keys.size());
  EXPECT_GT(fraction, 0.10);  // ideal 0.20; vnode variance stays near it
  EXPECT_LT(fraction, 0.32);
}

TEST(HashRingTest, OwnerChainIsAPermutationStartingAtOwner) {
  HashRing ring(6);
  for (const std::string& key : SyntheticKeys(200)) {
    const std::vector<int> chain = ring.OwnerChain(key);
    ASSERT_EQ(chain.size(), 6u);
    EXPECT_EQ(chain[0], ring.Owner(key));
    EXPECT_EQ(std::set<int>(chain.begin(), chain.end()).size(), 6u)
        << "failover chain must cover every shard exactly once";
  }
}

// --- Router over in-process shards ------------------------------------------

/// Shard-shaped handler: answers healthz and echoes id/trace_id back with
/// the shard index, the way a real shard-mode server does.
LocalShardBackend::Handler FakeShardHandler(int index) {
  return [index](const std::string& line) {
    std::string cmd;
    if (JsonField(line, "cmd", &cmd)) {
      return "{\"ok\": true, \"shard_index\": " + std::to_string(index) + "}";
    }
    std::string id, trace;
    const bool has_id = JsonField(line, "id", &id);
    if (!JsonField(line, "trace_id", &trace)) trace = "0";
    std::string r = "{";
    if (has_id) r += "\"id\": " + id + ", ";
    r += "\"shard\": " + std::to_string(index) + ", \"trace_id\": \"" + trace +
         "\", \"value\": 1.5, \"degraded\": false, \"source\": \"model\", "
         "\"latency_us\": 10, \"batch_size\": 1}";
    return r;
  };
}

std::string RequestLine(int id, const std::string& entity, uint64_t trace_id) {
  return "{\"id\": " + std::to_string(id) + ", \"entity\": \"" + entity +
         "\", \"attribute\": \"a\", \"trace_id\": " + std::to_string(trace_id) +
         "}";
}

struct RouterFixture {
  std::vector<LocalShardBackend*> raw;  // borrowed; router owns
  std::unique_ptr<Router> router;

  explicit RouterFixture(int shards, RouterOptions options = {}) {
    options.health_period_ms = 0;  // deterministic: no background probes
    std::vector<std::unique_ptr<ShardBackend>> backends;
    for (int i = 0; i < shards; ++i) {
      auto b = std::make_unique<LocalShardBackend>(
          "local_" + std::to_string(i), FakeShardHandler(i));
      raw.push_back(b.get());
      backends.push_back(std::move(b));
    }
    router = std::make_unique<Router>(std::move(backends), options);
  }
};

TEST(RouterTest, ForwardsToRingOwnerPreservingIdAndTraceId) {
  RouterFixture f(3);
  for (int i = 0; i < 50; ++i) {
    const std::string entity = "entity_" + std::to_string(i);
    const std::string response =
        f.router->HandleLine(RequestLine(i, entity, 7000u + static_cast<uint64_t>(i)));
    std::string id, shard, trace;
    ASSERT_TRUE(JsonField(response, "id", &id)) << response;
    ASSERT_TRUE(JsonField(response, "shard", &shard)) << response;
    ASSERT_TRUE(JsonField(response, "trace_id", &trace)) << response;
    EXPECT_EQ(id, std::to_string(i));
    EXPECT_EQ(shard, std::to_string(f.router->ring().Owner(entity)))
        << "router must forward to the ring owner";
    EXPECT_EQ(trace, std::to_string(7000 + i))
        << "shard's trace_id must survive the router verbatim";
    EXPECT_EQ(response.find("rerouted"), std::string::npos)
        << "healthy-path responses carry no rerouted tag: " << response;
  }
}

TEST(RouterTest, HealthzAndStatuszAnswerRouterSide) {
  RouterFixture f(2);
  const std::string health = f.router->HandleLine("{\"cmd\": \"healthz\"}");
  EXPECT_NE(health.find("\"role\": \"router\""), std::string::npos) << health;
  EXPECT_NE(health.find("\"shards\": 2"), std::string::npos) << health;
  const std::string status = f.router->HandleLine("{\"cmd\": \"statusz\"}");
  EXPECT_NE(status.find("\"shards\""), std::string::npos) << status;
  EXPECT_NE(status.find("local_0"), std::string::npos) << status;
  EXPECT_NE(status.find("local_1"), std::string::npos) << status;
}

TEST(RouterTest, DownOwnerReroutesAlongRingWithTag) {
  RouterFixture f(3);
  const std::string entity = "entity_17";
  const int owner = f.router->ring().Owner(entity);
  const std::vector<int> chain = f.router->ring().OwnerChain(entity);
  f.raw[static_cast<size_t>(owner)]->SetDown(true);

  const std::string response = f.router->HandleLine(RequestLine(1, entity, 42));
  std::string shard, trace;
  ASSERT_TRUE(JsonField(response, "shard", &shard)) << response;
  EXPECT_EQ(shard, std::to_string(chain[1]))
      << "reroute must follow ring order, not shard numbering";
  EXPECT_NE(response.find("\"rerouted\": true"), std::string::npos) << response;
  ASSERT_TRUE(JsonField(response, "trace_id", &trace));
  EXPECT_EQ(trace, "42");
  EXPECT_FALSE(f.router->shard_healthy(owner))
      << "the failed forward must mark the owner down";

  // Recovery: shard back up + a probe round → traffic returns to the owner.
  f.raw[static_cast<size_t>(owner)]->SetDown(false);
  f.router->CheckNow();
  EXPECT_TRUE(f.router->shard_healthy(owner));
  const std::string again = f.router->HandleLine(RequestLine(2, entity, 43));
  ASSERT_TRUE(JsonField(again, "shard", &shard)) << again;
  EXPECT_EQ(shard, std::to_string(owner));
  EXPECT_EQ(again.find("rerouted"), std::string::npos) << again;
}

TEST(RouterTest, AllShardsDownDegradesAnswerShaped) {
  RouterFixture f(2);
  for (LocalShardBackend* shard : f.raw) shard->SetDown(true);
  const std::string response = f.router->HandleLine(RequestLine(9, "entity_3", 55));
  std::string id, source, trace;
  ASSERT_TRUE(JsonField(response, "id", &id)) << response;
  ASSERT_TRUE(JsonField(response, "source", &source)) << response;
  ASSERT_TRUE(JsonField(response, "trace_id", &trace)) << response;
  EXPECT_EQ(id, "9");
  EXPECT_EQ(source, "shard_down");
  EXPECT_EQ(trace, "55") << "degraded responses still echo the trace id";
  EXPECT_NE(response.find("\"degraded\": true"), std::string::npos) << response;
}

TEST(RouterTest, BatchFanOutMergesInRequestOrder) {
  RouterFixture f(4);
  std::vector<std::string> lines;
  for (int i = 0; i < 64; ++i) {
    lines.push_back(RequestLine(i, "entity_" + std::to_string(i * 31),
                                9000u + static_cast<uint64_t>(i)));
  }
  const std::vector<std::string> responses = f.router->HandleBatch(lines);
  ASSERT_EQ(responses.size(), lines.size());
  for (size_t i = 0; i < responses.size(); ++i) {
    std::string id, trace;
    ASSERT_TRUE(JsonField(responses[i], "id", &id)) << responses[i];
    ASSERT_TRUE(JsonField(responses[i], "trace_id", &trace)) << responses[i];
    EXPECT_EQ(id, std::to_string(i)) << "merge must preserve request order";
    EXPECT_EQ(trace, std::to_string(9000 + i));
  }
}

TEST(RouterTest, KillOneShardUnderLoadNeverDropsARequest) {
  // The flash-crowd scenario from the bench, hermetic: four client threads
  // hammer the router while a shard dies mid-stream and later recovers.
  // Every single response must be answer-shaped (owner, rerouted, or
  // degraded) — no hangs, no empty lines, no errors.
  RouterFixture f(4);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 250;
  std::atomic<int> answered{0};
  std::atomic<int> malformed{0};
  std::atomic<bool> killed{false};
  std::vector<std::thread> clients;
  clients.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    clients.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        if (t == 0 && i == kPerThread / 4 &&
            !killed.exchange(true, std::memory_order_acq_rel)) {
          f.raw[2]->SetDown(true);
        }
        if (t == 0 && i == (3 * kPerThread) / 4) {
          f.raw[2]->SetDown(false);
          f.router->CheckNow();
        }
        const std::string entity = "entity_" + std::to_string(t * 1000 + i);
        const std::string response = f.router->HandleLine(
            RequestLine(i, entity, static_cast<uint64_t>(t * 100000 + i)));
        std::string value;
        if (JsonField(response, "value", &value)) {
          answered.fetch_add(1, std::memory_order_relaxed);
        } else {
          malformed.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& c : clients) c.join();
  EXPECT_EQ(answered.load(), kThreads * kPerThread);
  EXPECT_EQ(malformed.load(), 0);
}

// --- AsyncNdjsonServer ------------------------------------------------------

AsyncNdjsonServer::Options EphemeralOptions(int workers = 2) {
  AsyncNdjsonServer::Options options;
  options.port = 0;
  options.workers = workers;
  return options;
}

/// Blocking NDJSON test client against 127.0.0.1:`port`.
struct Client {
  int fd = -1;
  std::string buffer;

  explicit Client(int port) { fd = net::ConnectTcp("127.0.0.1", port, 2000); }
  ~Client() {
    if (fd >= 0) net::CloseFd(fd);
  }
  bool Send(const std::string& line) { return net::SendLine(fd, line); }
  bool SendRaw(const std::string& bytes) {
    return net::WriteAll(fd, bytes.data(), bytes.size());
  }
  bool Recv(std::string* line, int timeout_ms = 5000) {
    return net::RecvLine(fd, &buffer, line, timeout_ms);
  }
};

TEST(AsyncServerTest, EchoAndPerConnectionPipelining) {
  AsyncNdjsonServer server(EphemeralOptions(), [](const std::string& line) {
    return "{\"echo\": \"" + EscapeJson(line) + "\"}";
  });
  ASSERT_GT(server.port(), 0);
  Client client(server.port());
  ASSERT_GE(client.fd, 0);
  // Pipeline three requests in one write; responses must come back in
  // request order (the reactor dispatches a connection's lines FIFO).
  ASSERT_TRUE(client.SendRaw("{\"n\": 1}\n{\"n\": 2}\n{\"n\": 3}\n"));
  for (int i = 1; i <= 3; ++i) {
    std::string response;
    ASSERT_TRUE(client.Recv(&response));
    EXPECT_NE(response.find("\\\"n\\\": " + std::to_string(i)),
              std::string::npos)
        << response;
  }
}

TEST(AsyncServerTest, SlowClientDoesNotBlockOtherConnections) {
  // The PR 10 blocking-listener regression: a client dribbling a request
  // body without its newline must not stall other clients' accept/serve
  // path. The epoll front-end keeps the partial line parked in that
  // connection's read buffer while everyone else proceeds.
  AsyncNdjsonServer server(EphemeralOptions(), [](const std::string& line) {
    std::string id;
    JsonField(line, "id", &id);
    return "{\"id\": " + (id.empty() ? "0" : id) + "}";
  });
  ASSERT_GT(server.port(), 0);

  Client slow(server.port());
  ASSERT_GE(slow.fd, 0);
  // Half a request: no terminating newline, so the server must keep the
  // connection parked without dispatching anything.
  ASSERT_TRUE(slow.SendRaw("{\"id\": 1, \"entity\": \"drib"));

  Client fast(server.port());
  ASSERT_GE(fast.fd, 0);
  ASSERT_TRUE(fast.Send("{\"id\": 2}"));
  std::string response;
  ASSERT_TRUE(fast.Recv(&response))
      << "fast client starved behind a slow writer";
  EXPECT_NE(response.find("\"id\": 2"), std::string::npos) << response;

  // The slow client finishes its line and still gets its own answer.
  ASSERT_TRUE(slow.SendRaw("ble\"}\n"));
  ASSERT_TRUE(slow.Recv(&response));
  EXPECT_NE(response.find("\"id\": 1"), std::string::npos) << response;
  EXPECT_EQ(server.conns_accepted(), 2);
}

TEST(AsyncServerTest, ConcurrentConnectionsAllAnswered) {
  std::atomic<int> calls{0};
  AsyncNdjsonServer server(EphemeralOptions(4), [&](const std::string& line) {
    calls.fetch_add(1, std::memory_order_relaxed);
    std::string id;
    JsonField(line, "id", &id);
    return "{\"id\": " + id + "}";
  });
  ASSERT_GT(server.port(), 0);
  constexpr int kClients = 8;
  constexpr int kPerClient = 20;
  std::vector<std::thread> threads;
  std::atomic<int> ok{0};
  threads.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      Client client(server.port());
      if (client.fd < 0) return;
      for (int i = 0; i < kPerClient; ++i) {
        const int id = c * 1000 + i;
        if (!client.Send("{\"id\": " + std::to_string(id) + "}")) return;
        std::string response;
        if (!client.Recv(&response)) return;
        if (response.find("\"id\": " + std::to_string(id)) != std::string::npos) {
          ok.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(ok.load(), kClients * kPerClient);
  EXPECT_EQ(calls.load(), kClients * kPerClient);
}

TEST(AsyncServerTest, ShutdownDrainsInFlightRequests) {
  AsyncNdjsonServer server(EphemeralOptions(), [](const std::string&) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    return std::string("{\"done\": true}");
  });
  ASSERT_GT(server.port(), 0);
  Client client(server.port());
  ASSERT_GE(client.fd, 0);
  ASSERT_TRUE(client.Send("{\"id\": 1}"));
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  server.Shutdown();  // must wait for the parked handler + flush its answer
  std::string response;
  ASSERT_TRUE(client.Recv(&response, 2000))
      << "shutdown dropped an in-flight response";
  EXPECT_NE(response.find("\"done\": true"), std::string::npos) << response;
}

// --- Router over real TCP shards --------------------------------------------

TEST(RouterTcpTest, RoutesOverTcpAndSurvivesShardDeath) {
  // Two AsyncNdjsonServers stand in for shard-mode serve processes; the
  // router reaches them through TcpShardBackend — the same path a real
  // deployment uses, minus the model.
  auto shard_server = [](int index) {
    return [index](const std::string& line) {
      return FakeShardHandler(index)(line);
    };
  };
  auto s0 = std::make_unique<AsyncNdjsonServer>(EphemeralOptions(), shard_server(0));
  auto s1 = std::make_unique<AsyncNdjsonServer>(EphemeralOptions(), shard_server(1));
  ASSERT_GT(s0->port(), 0);
  ASSERT_GT(s1->port(), 0);

  RouterOptions options;
  options.health_period_ms = 0;
  options.forward_timeout_ms = 1000;
  std::vector<std::unique_ptr<ShardBackend>> backends;
  backends.push_back(
      std::make_unique<TcpShardBackend>("127.0.0.1", s0->port()));
  backends.push_back(
      std::make_unique<TcpShardBackend>("127.0.0.1", s1->port()));
  Router router(std::move(backends), options);
  router.CheckNow();
  EXPECT_TRUE(router.shard_healthy(0));
  EXPECT_TRUE(router.shard_healthy(1));

  // Find an entity owned by shard 0, then kill shard 0's process stand-in.
  std::string entity;
  for (int i = 0;; ++i) {
    entity = "entity_" + std::to_string(i);
    if (router.ring().Owner(entity) == 0) break;
  }
  std::string response = router.HandleLine(RequestLine(1, entity, 77));
  std::string shard;
  ASSERT_TRUE(JsonField(response, "shard", &shard)) << response;
  EXPECT_EQ(shard, "0");

  s0->Shutdown();
  s0.reset();  // port closed: forwards now fail at dial time
  response = router.HandleLine(RequestLine(2, entity, 78));
  ASSERT_TRUE(JsonField(response, "shard", &shard)) << response;
  EXPECT_EQ(shard, "1") << response;
  EXPECT_NE(response.find("\"rerouted\": true"), std::string::npos) << response;
  EXPECT_FALSE(router.shard_healthy(0));

  s1->Shutdown();
  s1.reset();
  response = router.HandleLine(RequestLine(3, entity, 79));
  std::string source;
  ASSERT_TRUE(JsonField(response, "source", &source)) << response;
  EXPECT_EQ(source, "shard_down") << response;
}

}  // namespace
}  // namespace serve
}  // namespace chainsformer
