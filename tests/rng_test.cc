#include "util/rng.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include <gtest/gtest.h>

namespace chainsformer {
namespace {

TEST(RngTest, DeterministicGivenSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.Next() == b.Next());
  EXPECT_LT(same, 3);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.Uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformRangeRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.Uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(RngTest, UniformMeanNearHalf) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.Uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RngTest, NormalMoments) {
  Rng rng(13);
  double sum = 0.0, sum_sq = 0.0;
  const int n = 40000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.Normal();
    sum += x;
    sum_sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.05);
}

TEST(RngTest, NormalWithParams) {
  Rng rng(17);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.Normal(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.1);
}

TEST(RngTest, UniformIntWithinRange) {
  Rng rng(19);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.UniformInt(7u), 7u);
  }
  for (int i = 0; i < 1000; ++i) {
    const int64_t v = rng.UniformInt(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(RngTest, UniformIntCoversAllValues) {
  Rng rng(23);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.UniformInt(5u));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(29);
  int heads = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) heads += rng.Bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(heads) / n, 0.3, 0.02);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(31);
  std::vector<int> v(50);
  for (int i = 0; i < 50; ++i) v[static_cast<size_t>(i)] = i;
  auto shuffled = v;
  rng.Shuffle(shuffled);
  EXPECT_NE(shuffled, v);  // astronomically unlikely to be identity
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(RngTest, CategoricalRespectsWeights) {
  Rng rng(37);
  std::vector<double> w = {0.0, 1.0, 3.0};
  std::vector<int> counts(3, 0);
  const int n = 30000;
  for (int i = 0; i < n; ++i) ++counts[rng.Categorical(w)];
  EXPECT_EQ(counts[0], 0);
  EXPECT_NEAR(static_cast<double>(counts[1]) / n, 0.25, 0.02);
  EXPECT_NEAR(static_cast<double>(counts[2]) / n, 0.75, 0.02);
}

TEST(RngTest, ForkIndependentOfParentContinuation) {
  Rng a(41);
  Rng fork = a.Fork();
  // The fork's stream must not simply mirror the parent's.
  int same = 0;
  for (int i = 0; i < 50; ++i) same += (a.Next() == fork.Next());
  EXPECT_LT(same, 2);
}

class RngSeedSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RngSeedSweep, UniformStaysInRangeForAnySeed) {
  Rng rng(GetParam());
  for (int i = 0; i < 2000; ++i) {
    const double u = rng.Uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RngSeedSweep,
                         ::testing::Values(0ull, 1ull, 42ull, 0xFFFFFFFFFFFFFFFFull,
                                           0xDEADBEEFull));

}  // namespace
}  // namespace chainsformer
