// End-to-end test of the `chainsformer` CLI's cheap subcommands (generate +
// analyze). Training subcommands are covered by the library tests; here we
// verify the tool wiring: flags, TSV output, and graph reload.

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

#include <gtest/gtest.h>

#include "kg/loader.h"

namespace chainsformer {
namespace {

std::string CliPath() {
  // ctest runs test binaries with CWD = build/tests; the CLI lives in
  // build/tools. Fall back to skipping when the layout differs.
  return "../tools/chainsformer";
}

bool CliAvailable() {
  std::ifstream f(CliPath());
  return f.good();
}

std::string RunCommand(const std::string& cmd) {
  std::string output;
  FILE* pipe = popen((cmd + " 2>&1").c_str(), "r");
  if (pipe == nullptr) return output;
  char buffer[256];
  while (fgets(buffer, sizeof(buffer), pipe) != nullptr) output += buffer;
  pclose(pipe);
  return output;
}

TEST(CliTest, GenerateWritesLoadableTsv) {
  if (!CliAvailable()) GTEST_SKIP() << "CLI binary not found";
  const std::string triples = "/tmp/cf_cli_triples.tsv";
  const std::string numeric = "/tmp/cf_cli_numeric.tsv";
  const std::string out = RunCommand(CliPath() +
                                     " generate --dataset=yago --scale=0.03"
                                     " --triples=" + triples +
                                     " --numeric=" + numeric);
  EXPECT_NE(out.find("wrote"), std::string::npos) << out;
  const kg::Dataset ds = kg::LoadTsvDataset("cli-test", triples, numeric);
  EXPECT_GT(ds.graph.num_entities(), 100);
  EXPECT_EQ(ds.graph.num_attributes(), 7);
  std::remove(triples.c_str());
  std::remove(numeric.c_str());
}

TEST(CliTest, AnalyzeReportsStructure) {
  if (!CliAvailable()) GTEST_SKIP() << "CLI binary not found";
  const std::string triples = "/tmp/cf_cli_triples2.tsv";
  const std::string numeric = "/tmp/cf_cli_numeric2.tsv";
  RunCommand(CliPath() + " generate --dataset=fb --scale=0.03 --triples=" +
             triples + " --numeric=" + numeric);
  const std::string out = RunCommand(CliPath() + " analyze --triples=" + triples +
                                     " --numeric=" + numeric);
  EXPECT_NE(out.find("entities:"), std::string::npos) << out;
  EXPECT_NE(out.find("avg degree:"), std::string::npos);
  EXPECT_NE(out.find("reachable in 3 hops"), std::string::npos);
  std::remove(triples.c_str());
  std::remove(numeric.c_str());
}

TEST(CliTest, UsageOnUnknownCommand) {
  if (!CliAvailable()) GTEST_SKIP() << "CLI binary not found";
  const std::string out = RunCommand(CliPath() + " frobnicate");
  EXPECT_NE(out.find("usage:"), std::string::npos);
}

}  // namespace
}  // namespace chainsformer
