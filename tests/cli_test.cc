// End-to-end test of the `chainsformer` CLI's cheap subcommands (generate +
// analyze) and the observability surface of a tiny train run. Full training
// subcommands are covered by the library tests; here we verify the tool
// wiring: flags, TSV output, graph reload, and metrics/trace export.

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "kg/loader.h"
#include "test_json.h"

namespace chainsformer {
namespace {

std::string CliPath() {
  // ctest runs test binaries with CWD = build/tests; the CLI lives in
  // build/tools. Fall back to skipping when the layout differs.
  return "../tools/chainsformer";
}

bool CliAvailable() {
  std::ifstream f(CliPath());
  return f.good();
}

std::string RunCommand(const std::string& cmd) {
  std::string output;
  FILE* pipe = popen((cmd + " 2>&1").c_str(), "r");
  if (pipe == nullptr) return output;
  char buffer[256];
  while (fgets(buffer, sizeof(buffer), pipe) != nullptr) output += buffer;
  pclose(pipe);
  return output;
}

TEST(CliTest, GenerateWritesLoadableTsv) {
  if (!CliAvailable()) GTEST_SKIP() << "CLI binary not found";
  const std::string triples = "/tmp/cf_cli_triples.tsv";
  const std::string numeric = "/tmp/cf_cli_numeric.tsv";
  const std::string out = RunCommand(CliPath() +
                                     " generate --dataset=yago --scale=0.03"
                                     " --triples=" + triples +
                                     " --numeric=" + numeric);
  EXPECT_NE(out.find("wrote"), std::string::npos) << out;
  const kg::Dataset ds = kg::LoadTsvDataset("cli-test", triples, numeric);
  EXPECT_GT(ds.graph.num_entities(), 100);
  EXPECT_EQ(ds.graph.num_attributes(), 7);
  std::remove(triples.c_str());
  std::remove(numeric.c_str());
}

TEST(CliTest, AnalyzeReportsStructure) {
  if (!CliAvailable()) GTEST_SKIP() << "CLI binary not found";
  const std::string triples = "/tmp/cf_cli_triples2.tsv";
  const std::string numeric = "/tmp/cf_cli_numeric2.tsv";
  RunCommand(CliPath() + " generate --dataset=fb --scale=0.03 --triples=" +
             triples + " --numeric=" + numeric);
  const std::string out = RunCommand(CliPath() + " analyze --triples=" + triples +
                                     " --numeric=" + numeric);
  EXPECT_NE(out.find("entities:"), std::string::npos) << out;
  EXPECT_NE(out.find("avg degree:"), std::string::npos);
  EXPECT_NE(out.find("reachable in 3 hops"), std::string::npos);
  std::remove(triples.c_str());
  std::remove(numeric.c_str());
}

TEST(CliTest, TrainWritesMetricsAndTraceJson) {
  if (!CliAvailable()) GTEST_SKIP() << "CLI binary not found";
  const std::string triples = "/tmp/cf_cli_triples3.tsv";
  const std::string numeric = "/tmp/cf_cli_numeric3.tsv";
  const std::string metrics_path = "/tmp/cf_cli_metrics.json";
  const std::string trace_path = "/tmp/cf_cli_trace.json";
  RunCommand(CliPath() + " generate --dataset=yago --scale=0.03 --triples=" +
             triples + " --numeric=" + numeric);
  const std::string out = RunCommand(
      CliPath() + " train --triples=" + triples + " --numeric=" + numeric +
      " --epochs=1 --train-queries=30 --num-walks=24 --top-k=6"
      " --hidden-dim=16 --filter-dim=8 --eval-threads=2 --verbose=false"
      " --metrics-json=" + metrics_path + " --trace-json=" + trace_path +
      " --stats");
  EXPECT_NE(out.find("trained"), std::string::npos) << out;
  EXPECT_NE(out.find("-- counters --"), std::string::npos) << out;  // --stats

  // Metrics JSON: parseable, with nonzero train.epochs and stage counters.
  std::ifstream mf(metrics_path);
  ASSERT_TRUE(mf.good()) << "metrics JSON missing: " << out;
  std::stringstream ms;
  ms << mf.rdbuf();
  const std::string metrics_json = ms.str();
  EXPECT_TRUE(test_json::IsValidJson(metrics_json)) << metrics_json;
  double v = 0.0;
  ASSERT_TRUE(test_json::FindNumberAfterKey(metrics_json, "train.epochs", &v));
  EXPECT_GT(v, 0.0) << metrics_json;
  for (const char* stage :
       {"pipeline.retrieval.calls", "pipeline.filter.calls",
        "pipeline.encode.calls", "pipeline.project.calls",
        "pipeline.aggregate.calls", "kg.load.calls", "eval.queries"}) {
    ASSERT_TRUE(test_json::FindNumberAfterKey(metrics_json, stage, &v))
        << stage << " missing from " << metrics_json;
    EXPECT_GT(v, 0.0) << stage;
  }

  // Trace JSON: parseable Chrome trace with pipeline spans.
  std::ifstream tf(trace_path);
  ASSERT_TRUE(tf.good()) << "trace JSON missing: " << out;
  std::stringstream ts;
  ts << tf.rdbuf();
  const std::string trace_json = ts.str();
  EXPECT_TRUE(test_json::IsValidJson(trace_json));
  EXPECT_NE(trace_json.find("\"traceEvents\""), std::string::npos);
  for (const char* span : {"retrieval", "filter", "encode", "train.epoch"}) {
    EXPECT_NE(trace_json.find(std::string("\"name\": \"") + span + "\""),
              std::string::npos)
        << span << " span missing";
  }
  std::remove(triples.c_str());
  std::remove(numeric.c_str());
  std::remove(metrics_path.c_str());
  std::remove(trace_path.c_str());
}

TEST(CliTest, UsageOnUnknownCommand) {
  if (!CliAvailable()) GTEST_SKIP() << "CLI binary not found";
  const std::string out = RunCommand(CliPath() + " frobnicate");
  EXPECT_NE(out.find("usage:"), std::string::npos);
}

}  // namespace
}  // namespace chainsformer
