#include "kg/synthetic.h"

#include <cmath>
#include <map>

#include <gtest/gtest.h>

namespace chainsformer {
namespace kg {
namespace {

double PearsonCorrelation(const std::vector<std::pair<double, double>>& pairs) {
  const double n = static_cast<double>(pairs.size());
  double sx = 0, sy = 0, sxx = 0, syy = 0, sxy = 0;
  for (const auto& [x, y] : pairs) {
    sx += x;
    sy += y;
    sxx += x * x;
    syy += y * y;
    sxy += x * y;
  }
  const double cov = sxy / n - sx / n * sy / n;
  const double vx = sxx / n - sx / n * sx / n;
  const double vy = syy / n - sy / n * sy / n;
  return cov / std::sqrt(std::max(vx * vy, 1e-12));
}

class SyntheticDatasetTest : public ::testing::Test {
 protected:
  static const Dataset& Yago() {
    static const Dataset* ds = new Dataset(MakeYago15kLike({.scale = 0.06}));
    return *ds;
  }
  static const Dataset& Fb() {
    static const Dataset* ds = new Dataset(MakeFb15k237Like({.scale = 0.06}));
    return *ds;
  }
};

TEST_F(SyntheticDatasetTest, YagoHasPaperAttributeSchema) {
  const auto& g = Yago().graph;
  EXPECT_EQ(g.num_attributes(), 7);
  for (const char* name : {"birth", "death", "created", "destroyed", "happened",
                           "latitude", "longitude"}) {
    EXPECT_GE(g.FindAttribute(name), 0) << name;
  }
}

TEST_F(SyntheticDatasetTest, FbHasPaperAttributeSchema) {
  const auto& g = Fb().graph;
  EXPECT_EQ(g.num_attributes(), 11);
  for (const char* name :
       {"birth", "death", "film_release", "org_founded", "loc_founded",
        "latitude", "longitude", "area", "population", "height", "weight"}) {
    EXPECT_GE(g.FindAttribute(name), 0) << name;
  }
}

TEST_F(SyntheticDatasetTest, ScaleControlsSize) {
  const Dataset small = MakeYago15kLike({.scale = 0.03});
  EXPECT_GT(Yago().graph.num_entities(), small.graph.num_entities());
  EXPECT_GT(small.graph.num_entities(), 100);
}

TEST_F(SyntheticDatasetTest, ValueRangesWithinTableII) {
  const auto& g = Fb().graph;
  const auto& stats = g.attribute_stats();
  const auto height = g.FindAttribute("height");
  EXPECT_GE(stats[static_cast<size_t>(height)].min, 1.34);
  EXPECT_LE(stats[static_cast<size_t>(height)].max, 2.18);
  const auto pop = g.FindAttribute("population");
  EXPECT_LE(stats[static_cast<size_t>(pop)].max, 3.1e9);
  EXPECT_GE(stats[static_cast<size_t>(pop)].min, 1.0);
  const auto lat = g.FindAttribute("latitude");
  EXPECT_GE(stats[static_cast<size_t>(lat)].min, -90.0);
  EXPECT_LE(stats[static_cast<size_t>(lat)].max, 90.0);
}

TEST_F(SyntheticDatasetTest, EveryEntityConnected) {
  const auto& g = Yago().graph;
  int isolated = 0;
  for (EntityId e = 0; e < g.num_entities(); ++e) {
    if (g.Degree(e) == 0) ++isolated;
  }
  // The generator links every person/place/work/org by construction; a tiny
  // number of isolates would break retrieval silently.
  EXPECT_LT(isolated, g.num_entities() / 50);
}

TEST_F(SyntheticDatasetTest, SplitsAreProper) {
  const auto& ds = Fb();
  const size_t total = ds.graph.numerical_triples().size();
  EXPECT_EQ(ds.split.train.size() + ds.split.valid.size() + ds.split.test.size(),
            total);
  EXPECT_GT(ds.split.train.size(), total * 7 / 10);
  EXPECT_GT(ds.split.test.size(), 0u);
}

TEST_F(SyntheticDatasetTest, SiblingBirthCorrelationPlanted) {
  // The paper's key chain (sibling, birth) must carry real signal.
  const auto& g = Fb().graph;
  const auto birth = g.FindAttribute("birth");
  const auto sibling = g.FindRelation("sibling");
  std::vector<std::pair<double, double>> pairs;
  for (const auto& t : g.relational_triples()) {
    if (t.relation != sibling) continue;
    double vh = 0.0, vt = 0.0;
    if (g.GetAttribute(t.head, birth, &vh) && g.GetAttribute(t.tail, birth, &vt)) {
      pairs.emplace_back(vh, vt);
    }
  }
  ASSERT_GT(pairs.size(), 20u);
  EXPECT_GT(PearsonCorrelation(pairs), 0.8);
}

TEST_F(SyntheticDatasetTest, RegionGeographyCorrelationPlanted) {
  // (has_neighbor, latitude): neighbors share regional coordinates.
  const auto& g = Yago().graph;
  const auto lat = g.FindAttribute("latitude");
  const auto neighbor = g.FindRelation("has_neighbor");
  std::vector<std::pair<double, double>> pairs;
  for (const auto& t : g.relational_triples()) {
    if (t.relation != neighbor) continue;
    double vh = 0.0, vt = 0.0;
    if (g.GetAttribute(t.head, lat, &vh) && g.GetAttribute(t.tail, lat, &vt)) {
      pairs.emplace_back(vh, vt);
    }
  }
  ASSERT_GT(pairs.size(), 20u);
  EXPECT_GT(PearsonCorrelation(pairs), 0.8);
}

TEST_F(SyntheticDatasetTest, FilmReleaseTracksDirectorBirth) {
  // (film, birth) shifted by a generation: release ≈ birth + ~38.
  const auto& g = Fb().graph;
  const auto birth = g.FindAttribute("birth");
  const auto release = g.FindAttribute("film_release");
  const auto film = g.FindRelation("film");
  std::vector<std::pair<double, double>> pairs;
  for (const auto& t : g.relational_triples()) {
    if (t.relation != film) continue;
    double b = 0.0, r = 0.0;
    if (g.GetAttribute(t.head, birth, &b) && g.GetAttribute(t.tail, release, &r)) {
      pairs.emplace_back(b, r);
    }
  }
  ASSERT_GT(pairs.size(), 10u);
  double mean_gap = 0.0;
  for (const auto& [b, r] : pairs) mean_gap += r - b;
  mean_gap /= static_cast<double>(pairs.size());
  EXPECT_GT(mean_gap, 15.0);
  EXPECT_LT(mean_gap, 60.0);
}

TEST_F(SyntheticDatasetTest, DeterministicGivenSeed) {
  const Dataset a = MakeYago15kLike({.scale = 0.03, .seed = 9});
  const Dataset b = MakeYago15kLike({.scale = 0.03, .seed = 9});
  EXPECT_EQ(a.graph.num_entities(), b.graph.num_entities());
  EXPECT_EQ(a.graph.relational_triples().size(), b.graph.relational_triples().size());
  ASSERT_EQ(a.graph.numerical_triples().size(), b.graph.numerical_triples().size());
  for (size_t i = 0; i < a.graph.numerical_triples().size(); ++i) {
    EXPECT_DOUBLE_EQ(a.graph.numerical_triples()[i].value,
                     b.graph.numerical_triples()[i].value);
  }
}

TEST_F(SyntheticDatasetTest, DifferentSeedsDiffer) {
  const Dataset a = MakeYago15kLike({.scale = 0.03, .seed = 1});
  const Dataset b = MakeYago15kLike({.scale = 0.03, .seed = 2});
  bool any_diff = a.graph.numerical_triples().size() !=
                  b.graph.numerical_triples().size();
  if (!any_diff) {
    for (size_t i = 0; i < a.graph.numerical_triples().size(); ++i) {
      if (a.graph.numerical_triples()[i].value !=
          b.graph.numerical_triples()[i].value) {
        any_diff = true;
        break;
      }
    }
  }
  EXPECT_TRUE(any_diff);
}

TEST(ToyDatasetTest, StructureAsDocumented) {
  const Dataset ds = MakeToyDataset();
  EXPECT_EQ(ds.graph.num_entities(), 6);
  EXPECT_EQ(ds.graph.num_attributes(), 2);
  EXPECT_EQ(ds.graph.numerical_triples().size(), 6u);
  EXPECT_TRUE(ds.graph.finalized());
}

}  // namespace
}  // namespace kg
}  // namespace chainsformer
