// Tests for the span tracer: disabled-path inertness, nesting depth, ring
// wraparound eviction, and Chrome trace-event JSON output.

#include "util/trace.h"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>

#include <gtest/gtest.h>

#include "test_json.h"

namespace chainsformer {
namespace trace {
namespace {

/// Resets tracer state; the ring buffers are process-global.
class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SetEnabled(false);
    Clear();
  }
  void TearDown() override {
    SetEnabled(false);
    Clear();
  }
};

TEST_F(TraceTest, DisabledScopesBufferNothing) {
  {
    CF_TRACE_SCOPE("ghost");
    CF_TRACE_SCOPE("ghost2");
  }
  EXPECT_EQ(BufferedSpans(), 0u);
}

TEST_F(TraceTest, EnabledScopesAreBufferedWithNesting) {
  SetEnabled(true);
  {
    CF_TRACE_SCOPE("outer");
    {
      CF_TRACE_SCOPE("inner");
    }
  }
  SetEnabled(false);
  EXPECT_EQ(BufferedSpans(), 2u);
  const std::string json = DrainChromeTraceJson();
  EXPECT_EQ(BufferedSpans(), 0u);  // drain moves spans out
  EXPECT_TRUE(test_json::IsValidJson(json)) << json;
  EXPECT_NE(json.find("\"name\": \"outer\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"name\": \"inner\""), std::string::npos) << json;
  // Depths: outer at 0, inner at 1.
  EXPECT_NE(json.find("{\"depth\": 0}"), std::string::npos) << json;
  EXPECT_NE(json.find("{\"depth\": 1}"), std::string::npos) << json;
}

TEST_F(TraceTest, NestedSpansAreWellFormed) {
  SetEnabled(true);
  {
    CF_TRACE_SCOPE("parent");
    { CF_TRACE_SCOPE("child_a"); }
    { CF_TRACE_SCOPE("child_b"); }
  }
  SetEnabled(false);
  const std::string json = DrainChromeTraceJson();
  // Spans are sorted by start time: parent starts first despite completing
  // last (complete events record start + duration).
  const size_t parent_at = json.find("\"parent\"");
  const size_t a_at = json.find("\"child_a\"");
  const size_t b_at = json.find("\"child_b\"");
  ASSERT_NE(parent_at, std::string::npos);
  ASSERT_NE(a_at, std::string::npos);
  ASSERT_NE(b_at, std::string::npos);
  EXPECT_LT(parent_at, a_at);
  EXPECT_LT(a_at, b_at);
  // Both siblings are depth 1; re-entering depth 1 after child_a closes.
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
}

TEST_F(TraceTest, RingWraparoundDropsOldestFirst) {
  SetEnabled(true);
  constexpr size_t kOverflow = 100;
  for (size_t i = 0; i < kRingCapacity + kOverflow; ++i) {
    CF_TRACE_SCOPE(i < kOverflow ? "old" : "new");
  }
  SetEnabled(false);
  EXPECT_EQ(BufferedSpans(), kRingCapacity);
  EXPECT_EQ(DroppedSpans(), kOverflow);
  const std::string json = DrainChromeTraceJson();
  // Every "old" span was evicted by wraparound; only "new" spans remain.
  EXPECT_EQ(json.find("\"name\": \"old\""), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"new\""), std::string::npos);
  EXPECT_TRUE(test_json::IsValidJson(json));
}

TEST_F(TraceTest, SpansFromMultipleThreadsGetDistinctTids) {
  SetEnabled(true);
  {
    CF_TRACE_SCOPE("main_thread");
  }
  std::thread worker([] { CF_TRACE_SCOPE("worker_thread"); });
  worker.join();
  SetEnabled(false);
  const std::string json = DrainChromeTraceJson();
  EXPECT_NE(json.find("\"main_thread\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"worker_thread\""), std::string::npos) << json;
  // The two spans carry different tids: collect the tid values.
  std::string first_tid, second_tid;
  size_t at = 0;
  for (std::string* out : {&first_tid, &second_tid}) {
    at = json.find("\"tid\": ", at);
    ASSERT_NE(at, std::string::npos);
    at += 7;
    while (at < json.size() && json[at] != ',') out->push_back(json[at++]);
  }
  EXPECT_NE(first_tid, second_tid) << json;
}

TEST_F(TraceTest, WriteChromeTraceCreatesParentDirectories) {
  SetEnabled(true);
  { CF_TRACE_SCOPE("filed"); }
  SetEnabled(false);
  const std::string dir = "/tmp/cf_trace_test_dir/nested";
  const std::string path = dir + "/trace.json";
  std::filesystem::remove_all("/tmp/cf_trace_test_dir");
  EXPECT_TRUE(WriteChromeTrace(path));
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream ss;
  ss << in.rdbuf();
  EXPECT_TRUE(test_json::IsValidJson(ss.str())) << ss.str();
  EXPECT_NE(ss.str().find("\"filed\""), std::string::npos);
  std::filesystem::remove_all("/tmp/cf_trace_test_dir");
}

TEST_F(TraceTest, WriteChromeTraceFailsOnUnwritablePath) {
  // Parent "directory" is actually a file -> open fails, returns false.
  const std::string blocker = "/tmp/cf_trace_test_blocker";
  std::ofstream(blocker) << "x";
  EXPECT_FALSE(WriteChromeTrace(blocker + "/trace.json"));
  std::remove(blocker.c_str());
}

TEST_F(TraceTest, ClearDiscardsBufferedSpans) {
  SetEnabled(true);
  { CF_TRACE_SCOPE("doomed"); }
  SetEnabled(false);
  EXPECT_EQ(BufferedSpans(), 1u);
  Clear();
  EXPECT_EQ(BufferedSpans(), 0u);
  const std::string json = DrainChromeTraceJson();
  EXPECT_EQ(json.find("doomed"), std::string::npos);
  EXPECT_TRUE(test_json::IsValidJson(json));
}

}  // namespace
}  // namespace trace
}  // namespace chainsformer
