// Tests for the annotated synchronization layer (util/sync.h): cf::Mutex /
// cf::MutexLock / cf::CondVar round-trips, the lock-order deadlock
// validator's exact diagnostics (death tests pin the messages the way
// tape_sanitizer_test pins the tape diagnostics), and a negative Tsan
// harness proving the sanitizer job actually detects a seeded data race.

#include "util/sync.h"

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#if defined(__SANITIZE_THREAD__)
#define CF_TSAN_BUILD 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define CF_TSAN_BUILD 1
#endif
#endif

namespace chainsformer {
namespace {

/// RAII validator toggle: each test picks its own state and the previous
/// state comes back regardless of how the test exits.
class ScopedValidation {
 public:
  explicit ScopedValidation(bool enabled)
      : prev_(cf::DeadlockValidationEnabled()) {
    cf::SetDeadlockValidation(enabled);
  }
  ~ScopedValidation() { cf::SetDeadlockValidation(prev_); }

 private:
  bool prev_;
};

TEST(SyncTest, MutexLockProtectsSharedCounter) {
  ScopedValidation validation(true);
  cf::Mutex mu("test.counter");
  int counter = 0;
  constexpr int kThreads = 4;
  constexpr int kIncrements = 1000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIncrements; ++i) {
        cf::MutexLock lock(mu);
        ++counter;
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(counter, kThreads * kIncrements);
}

TEST(SyncTest, TryLockReportsContention) {
  cf::Mutex mu("test.trylock");
  EXPECT_TRUE(mu.try_lock());
  EXPECT_FALSE(mu.try_lock());  // non-recursive: second attempt fails
  mu.unlock();
  EXPECT_TRUE(mu.try_lock());
  mu.unlock();
}

TEST(SyncTest, NameAndRankAccessorsRoundTrip) {
  cf::Mutex mu("test.named", 42);
  EXPECT_STREQ(mu.name(), "test.named");
  EXPECT_EQ(mu.rank(), 42);
  cf::Mutex anon;
  EXPECT_STREQ(anon.name(), "mutex");
  EXPECT_EQ(anon.rank(), 0);
}

TEST(SyncTest, CondVarWakesWaiter) {
  ScopedValidation validation(true);
  cf::Mutex mu("test.cv");
  cf::CondVar cv;
  bool ready = false;
  int observed = -1;
  std::thread waiter([&] {
    cf::MutexLock lock(mu);
    cv.Wait(mu, [&] { return ready; });
    observed = 7;
  });
  {
    cf::MutexLock lock(mu);
    ready = true;
  }
  cv.NotifyAll();
  waiter.join();
  EXPECT_EQ(observed, 7);
}

TEST(SyncTest, CondVarWaitForTimesOutWithoutNotify) {
  cf::Mutex mu("test.cv_timeout");
  cf::CondVar cv;
  cf::MutexLock lock(mu);
  const bool result =
      cv.WaitFor(mu, std::chrono::milliseconds(5), [] { return false; });
  EXPECT_FALSE(result);
}

TEST(SyncTest, ValidatorRecordsOrderEdges) {
  ScopedValidation validation(true);
  cf::ResetLockOrderGraphForTesting();
  const int before = cf::LockOrderEdgeCountForTesting();
  cf::Mutex outer("test.edge_outer");
  cf::Mutex inner("test.edge_inner");
  for (int i = 0; i < 3; ++i) {  // repeated acquisition: edge counted once
    cf::MutexLock lo(outer);
    cf::MutexLock li(inner);
  }
  EXPECT_EQ(cf::LockOrderEdgeCountForTesting(), before + 1);
}

TEST(SyncTest, ValidatorDisabledRecordsNothing) {
  ScopedValidation validation(false);
  cf::ResetLockOrderGraphForTesting();
  cf::Mutex outer("test.off_outer");
  cf::Mutex inner("test.off_inner");
  {
    cf::MutexLock lo(outer);
    cf::MutexLock li(inner);
  }
  EXPECT_EQ(cf::LockOrderEdgeCountForTesting(), 0);
}

TEST(SyncTest, ValidationToggleRoundTrips) {
  const bool initial = cf::DeadlockValidationEnabled();
  cf::SetDeadlockValidation(!initial);
  EXPECT_EQ(cf::DeadlockValidationEnabled(), !initial);
  cf::SetDeadlockValidation(initial);
  EXPECT_EQ(cf::DeadlockValidationEnabled(), initial);
}

// --- Lock-order death tests -------------------------------------------------
//
// Each provoking sequence runs entirely inside the EXPECT_DEATH child and
// uses test-unique site names, so no ordering edges leak into (or from) the
// parent process graph.

using SyncDeathTest = ::testing::Test;

TEST(SyncDeathTest, LockOrderCycleNamesBothMutexesAndStacks) {
  auto provoke = [] {
    cf::SetDeadlockValidation(true);
    cf::Mutex alpha("test.cycle_alpha");
    cf::Mutex beta("test.cycle_beta");
    {
      cf::MutexLock la(alpha);
      cf::MutexLock lb(beta);  // records alpha -> beta
    }
    cf::MutexLock lb(beta);
    cf::MutexLock la(alpha);  // beta -> alpha closes the cycle
  };
  EXPECT_DEATH(
      provoke(),
      "lock-order cycle \\(potential deadlock\\) between 'test.cycle_beta' "
      "and 'test.cycle_alpha'.*acquires 'test.cycle_alpha' while holding "
      "'test.cycle_beta'.*acquisition stack: 'test.cycle_beta' -> "
      "'test.cycle_alpha'.*reverse order was recorded earlier.*acquisition "
      "stack: 'test.cycle_alpha' -> 'test.cycle_beta'");
}

TEST(SyncDeathTest, RankViolationNamesRanksAndMutexes) {
  auto provoke = [] {
    cf::SetDeadlockValidation(true);
    cf::Mutex high("test.rank_high", 50);
    cf::Mutex low("test.rank_low", 10);
    cf::MutexLock lh(high);
    cf::MutexLock ll(low);  // rank must strictly increase: 10 <= 50 aborts
  };
  EXPECT_DEATH(provoke(),
               "lock-order rank violation: acquiring 'test.rank_low' \\(rank "
               "10\\) while holding 'test.rank_high' \\(rank 50\\)");
}

TEST(SyncDeathTest, SameSiteAcquisitionAborts) {
  auto provoke = [] {
    cf::SetDeadlockValidation(true);
    // Two instances sharing one site name ("two shards of the same cache"):
    // holding both leaves their relative order unconstrained, the tightest
    // form of a two-lock cycle.
    cf::Mutex shard_a("test.same_site");
    cf::Mutex shard_b("test.same_site");
    cf::MutexLock la(shard_a);
    cf::MutexLock lb(shard_b);
  };
  EXPECT_DEATH(provoke(),
               "acquiring 'test.same_site' while already holding "
               "'test.same_site' \\(same lock-order site\\)");
}

TEST(SyncDeathTest, SelfDeadlockNamesSameInstance) {
  auto provoke = [] {
    cf::SetDeadlockValidation(true);
    cf::Mutex mu("test.self");
    mu.lock();
    mu.lock();  // guaranteed self-deadlock; validator aborts instead
  };
  EXPECT_DEATH(provoke(), "'test.self' \\(same lock-order site, "
                          "same instance\\)");
}

// --- Negative Tsan harness --------------------------------------------------

/// Sacrificial target: a textbook unsynchronized read-modify-write race,
/// compiled into every build but only armed when CF_SYNC_PROVOKE_RACE=1 (the
/// harness below re-execs this binary with the variable set). Proves the
/// Tsan job detects races at all — a green Tsan run is only evidence if a
/// seeded race turns it red.
TEST(SyncRaceTarget, SacrificialSeededRace) {
  const char* armed = std::getenv("CF_SYNC_PROVOKE_RACE");
  if (armed == nullptr || std::string(armed) != "1") {
    GTEST_SKIP() << "sacrificial race target; run via SyncTsanHarness";
  }
  int unguarded = 0;
  std::thread a([&] {
    for (int i = 0; i < 100000; ++i) ++unguarded;
  });
  std::thread b([&] {
    for (int i = 0; i < 100000; ++i) ++unguarded;
  });
  a.join();
  b.join();
  // No assertion on the (indeterminate) sum: the race itself is the point.
  EXPECT_GE(unguarded, 0);
}

TEST(SyncTsanHarness, TsanDetectsSeededRace) {
#ifndef CF_TSAN_BUILD
  GTEST_SKIP() << "negative harness only proves anything under Tsan";
#else
  char self[4096];
  const ssize_t n = ::readlink("/proc/self/exe", self, sizeof(self) - 1);
  ASSERT_GT(n, 0);
  self[n] = '\0';
  const std::string cmd =
      std::string("CF_SYNC_PROVOKE_RACE=1 TSAN_OPTIONS='exitcode=66' ") +
      self + " --gtest_filter=SyncRaceTarget.SacrificialSeededRace 2>&1";
  FILE* pipe = ::popen(cmd.c_str(), "r");
  ASSERT_NE(pipe, nullptr);
  std::string output;
  char buf[512];
  while (std::fgets(buf, sizeof(buf), pipe) != nullptr) output += buf;
  const int status = ::pclose(pipe);
  // Tsan must have flagged the seeded race and failed the subprocess; if it
  // exits clean the sanitizer job is not actually watching.
  EXPECT_NE(status, 0) << "Tsan missed the seeded race; output:\n" << output;
  EXPECT_NE(output.find("data race"), std::string::npos)
      << "no 'data race' report in output:\n" << output;
#endif
}

}  // namespace
}  // namespace chainsformer
