// Tests for the batched masked chain-encoding path: MaskedSoftmax,
// SplitHeads/MergeHeads, batched MultiHeadAttention and
// ChainEncoder::EncodeBatch. The batched path is designed to be bitwise
// identical to the per-chain reference (row-partitioned GEMMs, same
// accumulation order over valid keys), so most comparisons are exact.

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "core/chain_encoder.h"
#include "core/chainsformer.h"
#include "kg/synthetic.h"
#include "tensor/gradcheck.h"
#include "tensor/kernels.h"
#include "tensor/nn.h"
#include "tensor/ops.h"
#include "tensor/tensor.h"
#include "util/rng.h"

namespace chainsformer {
namespace core {
namespace {

namespace ops = chainsformer::tensor;
using tensor::Tensor;

// --- MaskedSoftmax ----------------------------------------------------------

TEST(MaskedSoftmaxTest, MatchesPlainSoftmaxOnValidPrefix) {
  Rng rng(1);
  Tensor x = Tensor::Rand({2, 5}, rng, -2.0f, 2.0f);
  // Row 0 fully valid, row 1 valid on its first 3 keys.
  Tensor mask = Tensor::FromVector({2, 5}, {1, 1, 1, 1, 1, 1, 1, 1, 0, 0});
  Tensor masked = ops::MaskedSoftmax(x, mask);

  Tensor full = ops::Softmax(ops::SliceRows(x, 0, 1));
  for (int64_t j = 0; j < 5; ++j) {
    EXPECT_EQ(masked.data()[static_cast<size_t>(j)],
              full.data()[static_cast<size_t>(j)]);
  }
  Tensor prefix = ops::Softmax(ops::SliceCols(ops::SliceRows(x, 1, 2), 0, 3));
  for (int64_t j = 0; j < 3; ++j) {
    EXPECT_EQ(masked.data()[static_cast<size_t>(5 + j)],
              prefix.data()[static_cast<size_t>(j)]);
  }
  EXPECT_EQ(masked.data()[8], 0.0f);
  EXPECT_EQ(masked.data()[9], 0.0f);
}

TEST(MaskedSoftmaxTest, SharedRank1MaskAndGroupedRank2Mask) {
  Rng rng(2);
  Tensor x = Tensor::Rand({4, 3}, rng, -1.0f, 1.0f);  // 4 rows, 2 groups of 2
  Tensor shared = Tensor::FromVector({3}, {1, 1, 0});
  Tensor grouped = Tensor::FromVector({2, 3}, {1, 1, 0, 1, 1, 0});
  Tensor a = ops::MaskedSoftmax(x, shared);
  Tensor b = ops::MaskedSoftmax(x, grouped);
  EXPECT_EQ(a.data(), b.data());
  for (int64_t r = 0; r < 4; ++r) {
    EXPECT_EQ(a.data()[static_cast<size_t>(r * 3 + 2)], 0.0f);
  }
}

TEST(MaskedSoftmaxTest, FullyMaskedRowIsAllZero) {
  Tensor x = Tensor::FromVector({2, 3}, {5, -1, 2, 3, 3, 3});
  Tensor mask = Tensor::FromVector({2, 3}, {0, 0, 0, 1, 1, 1});
  Tensor y = ops::MaskedSoftmax(x, mask);
  EXPECT_EQ(y.data()[0], 0.0f);
  EXPECT_EQ(y.data()[1], 0.0f);
  EXPECT_EQ(y.data()[2], 0.0f);
  EXPECT_NEAR(y.data()[3] + y.data()[4] + y.data()[5], 1.0f, 1e-6f);
}

TEST(MaskedSoftmaxTest, PaddedKeysGetExactlyZeroGradient) {
  Rng rng(3);
  Tensor x = Tensor::Rand({2, 4}, rng, -2.0f, 2.0f).set_requires_grad(true);
  Tensor mask = Tensor::FromVector({2, 4}, {1, 1, 1, 0, 1, 1, 0, 0});
  Tensor loss = ops::Sum(ops::Square(ops::MaskedSoftmax(x, mask)));
  loss.Backward();
  EXPECT_EQ(x.grad()[3], 0.0f);
  EXPECT_EQ(x.grad()[6], 0.0f);
  EXPECT_EQ(x.grad()[7], 0.0f);
  double live = 0.0;
  for (size_t i : {0u, 1u, 2u, 4u, 5u}) live += std::fabs(x.grad()[i]);
  EXPECT_GT(live, 0.0);
}

TEST(MaskedSoftmaxTest, GradientsMatchFiniteDifferences) {
  Rng rng(4);
  Tensor x = Tensor::Rand({3, 4}, rng, -1.5f, 1.5f).set_requires_grad(true);
  Tensor mask = Tensor::FromVector({3, 4}, {1, 1, 1, 1, 1, 1, 1, 0, 1, 0, 1, 0});
  auto fn = [&mask](const std::vector<Tensor>& in) {
    return ops::Sum(ops::Square(ops::MaskedSoftmax(in[0], mask)));
  };
  const auto result = tensor::CheckGradients(fn, {x});
  EXPECT_TRUE(result.ok) << "max_rel_error=" << result.max_rel_error;
}

// --- SplitHeads / MergeHeads -------------------------------------------------

TEST(HeadLayoutTest, SplitHeadsIsBatchMajorSlicing) {
  // [1, 2, 4] with 2 heads -> [2, 2, 2]; head h takes columns [2h, 2h+2).
  Tensor x = Tensor::FromVector({1, 2, 4}, {0, 1, 2, 3, 4, 5, 6, 7});
  Tensor s = ops::SplitHeads(x, 2);
  ASSERT_EQ(s.dim(), 3);
  EXPECT_EQ(s.size(0), 2);
  EXPECT_EQ(s.size(1), 2);
  EXPECT_EQ(s.size(2), 2);
  const std::vector<float> want = {0, 1, 4, 5, 2, 3, 6, 7};
  EXPECT_EQ(s.data(), want);
}

TEST(HeadLayoutTest, MergeInvertsSplitBitwise) {
  Rng rng(5);
  Tensor x = Tensor::Rand({3, 4, 8}, rng, -1.0f, 1.0f);
  Tensor roundtrip = ops::MergeHeads(ops::SplitHeads(x, 4), 4);
  EXPECT_EQ(roundtrip.data(), x.data());
}

TEST(HeadLayoutTest, GradientsMatchFiniteDifferences) {
  Rng rng(6);
  Tensor x = Tensor::Rand({2, 3, 4}, rng, -1.0f, 1.0f).set_requires_grad(true);
  auto fn = [](const std::vector<Tensor>& in) {
    // Break symmetry with Square so a wrong permutation cannot cancel out.
    return ops::Sum(ops::Square(ops::MergeHeads(
        ops::Relu(ops::SplitHeads(in[0], 2)), 2)));
  };
  const auto result = tensor::CheckGradients(fn, {x});
  EXPECT_TRUE(result.ok) << "max_rel_error=" << result.max_rel_error;
}

// --- Batched attention -------------------------------------------------------

TEST(BatchedAttentionTest, MatchesRank2ForwardPerSequence) {
  constexpr int64_t kDim = 8;
  Rng rng(7);
  tensor::nn::MultiHeadAttention mha(kDim, 2, rng);

  const std::vector<int64_t> lens = {4, 2, 3};
  const int64_t b = 3, s = 4;
  Rng data_rng(8);
  std::vector<Tensor> seqs;
  std::vector<float> packed(static_cast<size_t>(b * s * kDim));
  std::vector<float> mask_values(static_cast<size_t>(b * s), 0.0f);
  for (int64_t i = 0; i < b; ++i) {
    Tensor seq = Tensor::Rand({lens[static_cast<size_t>(i)], kDim}, data_rng,
                              -1.0f, 1.0f);
    seqs.push_back(seq);
    for (int64_t p = 0; p < lens[static_cast<size_t>(i)]; ++p) {
      mask_values[static_cast<size_t>(i * s + p)] = 1.0f;
      for (int64_t j = 0; j < kDim; ++j) {
        packed[static_cast<size_t>((i * s + p) * kDim + j)] =
            seq.data()[static_cast<size_t>(p * kDim + j)];
      }
    }
    // Garbage in the padded rows: masking must make it invisible.
    for (int64_t p = lens[static_cast<size_t>(i)]; p < s; ++p) {
      for (int64_t j = 0; j < kDim; ++j) {
        packed[static_cast<size_t>((i * s + p) * kDim + j)] = 1e6f;
      }
    }
  }
  Tensor x = Tensor::FromVector({b, s, kDim}, std::move(packed));
  Tensor mask = Tensor::FromVector({b, s}, std::move(mask_values));
  Tensor batched = mha.Forward(x, mask);

  for (int64_t i = 0; i < b; ++i) {
    Tensor ref = mha.Forward(seqs[static_cast<size_t>(i)]);
    for (int64_t p = 0; p < lens[static_cast<size_t>(i)]; ++p) {
      for (int64_t j = 0; j < kDim; ++j) {
        EXPECT_EQ(batched.data()[static_cast<size_t>((i * s + p) * kDim + j)],
                  ref.data()[static_cast<size_t>(p * kDim + j)])
            << "batch " << i << " pos " << p << " dim " << j;
      }
    }
  }
}

// --- ChainEncoder::EncodeBatch ----------------------------------------------

class BatchedEncoderTest : public ::testing::Test {
 protected:
  static constexpr int64_t kNumRelIds = 10;
  static constexpr int64_t kNumAttrs = 4;

  static ChainsFormerConfig Config() {
    ChainsFormerConfig c;
    c.hidden_dim = 16;
    c.encoder_layers = 2;
    c.num_heads = 2;
    return c;
  }

  /// Chains of hop lengths 1, 2 and 3 (token lengths 4, 5 and 6).
  static TreeOfChains MixedLengthChains() {
    TreeOfChains toc;
    RAChain a;
    a.source_attribute = 1;
    a.query_attribute = 2;
    a.relations = {3};
    a.source_value = 1975.0;
    a.source_entity = 0;
    toc.push_back(a);
    RAChain b = a;
    b.relations = {3, 5};
    b.source_value = -12.5;
    toc.push_back(b);
    RAChain c = a;
    c.source_attribute = 0;
    c.relations = {7, 2, 4};
    c.source_value = 3.1e4;
    toc.push_back(c);
    return toc;
  }
};

TEST_F(BatchedEncoderTest, MatchesPerChainEncode) {
  Rng rng(9);
  ChainEncoder enc(kNumRelIds, kNumAttrs, Config(), rng);
  const TreeOfChains toc = MixedLengthChains();
  Tensor batch = enc.EncodeBatch(toc);
  ASSERT_EQ(batch.dim(), 2);
  ASSERT_EQ(batch.size(0), static_cast<int64_t>(toc.size()));
  ASSERT_EQ(batch.size(1), 16);
  for (size_t i = 0; i < toc.size(); ++i) {
    Tensor ref = enc.Encode(toc[i]);
    for (int64_t j = 0; j < 16; ++j) {
      EXPECT_NEAR(batch.data()[i * 16 + static_cast<size_t>(j)],
                  ref.data()[static_cast<size_t>(j)], 1e-4f)
          << "chain " << i << " dim " << j;
    }
  }
}

TEST_F(BatchedEncoderTest, GradientParityWithPerChainPath) {
  const TreeOfChains toc = MixedLengthChains();

  Rng rng_a(10);
  ChainEncoder batched(kNumRelIds, kNumAttrs, Config(), rng_a);
  ops::Sum(ops::Square(batched.EncodeBatch(toc))).Backward();

  Rng rng_b(10);  // identical initialization
  ChainEncoder reference(kNumRelIds, kNumAttrs, Config(), rng_b);
  std::vector<Tensor> reps;
  for (const RAChain& c : toc) reps.push_back(reference.Encode(c));
  ops::Sum(ops::Square(ops::Stack(reps))).Backward();

  const auto pa = batched.Parameters();
  const auto pb = reference.Parameters();
  ASSERT_EQ(pa.size(), pb.size());
  double total = 0.0;
  for (size_t p = 0; p < pa.size(); ++p) {
    ASSERT_EQ(pa[p].grad().size(), pb[p].grad().size());
    for (size_t i = 0; i < pa[p].grad().size(); ++i) {
      EXPECT_NEAR(pa[p].grad()[i], pb[p].grad()[i], 1e-4f)
          << "param " << p << " element " << i;
      total += std::fabs(pb[p].grad()[i]);
    }
  }
  EXPECT_GT(total, 0.0);  // the comparison is not vacuous
}

TEST_F(BatchedEncoderTest, AppendedChainLeavesOtherRowsBitUnchanged) {
  Rng rng(11);
  ChainEncoder enc(kNumRelIds, kNumAttrs, Config(), rng);
  TreeOfChains toc = MixedLengthChains();
  Tensor before = enc.EncodeBatch(toc);

  // The appended chain is the longest in the batch, so every other chain
  // gains extra padded positions; with a correct mask those positions carry
  // exactly zero attention weight and the original rows do not move by a
  // single bit.
  RAChain garbage;
  garbage.source_attribute = 3;
  garbage.query_attribute = 3;
  garbage.relations = {9, 9, 9, 9};
  garbage.source_value = -9.9e12;
  garbage.source_entity = 1;
  toc.push_back(garbage);
  Tensor after = enc.EncodeBatch(toc);

  for (size_t i = 0; i + 1 < toc.size(); ++i) {
    for (int64_t j = 0; j < 16; ++j) {
      EXPECT_EQ(before.data()[i * 16 + static_cast<size_t>(j)],
                after.data()[i * 16 + static_cast<size_t>(j)])
          << "chain " << i << " dim " << j;
    }
  }
}

TEST_F(BatchedEncoderTest, BitwiseIdenticalUnderKernelThreads) {
  Rng rng(12);
  ChainEncoder enc(kNumRelIds, kNumAttrs, Config(), rng);
  const TreeOfChains toc = MixedLengthChains();
  tensor::kernels::SetKernelThreads(1);
  Tensor serial = enc.EncodeBatch(toc);
  tensor::kernels::SetKernelThreads(4);
  Tensor threaded = enc.EncodeBatch(toc);
  tensor::kernels::SetKernelThreads(1);
  EXPECT_EQ(serial.data(), threaded.data());
}

// --- End-to-end: model predictions with the knob on vs off -------------------

TEST(BatchedEncoderModelTest, PredictionsMatchReferencePath) {
  const kg::Dataset ds = kg::MakeYago15kLike({.scale = 0.03});
  ChainsFormerConfig config;
  config.num_walks = 32;
  config.top_k = 8;
  config.hidden_dim = 16;
  config.filter_dim = 8;
  config.encoder_layers = 1;
  config.reasoner_layers = 1;
  config.num_heads = 2;
  config.seed = 13;

  config.batched_encoder = true;
  ChainsFormerModel batched(ds, config);
  config.batched_encoder = false;
  ChainsFormerModel reference(ds, config);

  int compared = 0;
  for (size_t i = 0; i < ds.split.test.size() && compared < 12; ++i) {
    const auto& t = ds.split.test[i];
    const double a = batched.Predict({t.entity, t.attribute});
    const double b = reference.Predict({t.entity, t.attribute});
    const auto& s = batched.train_stats()[static_cast<size_t>(t.attribute)];
    const double scale = s.Range() > 0 ? s.Range() : 1.0;
    EXPECT_NEAR(a / scale, b / scale, 1e-4) << "query " << i;
    ++compared;
  }
  EXPECT_GT(compared, 0);
}

}  // namespace
}  // namespace core
}  // namespace chainsformer
