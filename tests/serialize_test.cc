#include "tensor/serialize.h"

#include <cstdio>

#include <gtest/gtest.h>

#include "tensor/nn.h"
#include "util/rng.h"

namespace chainsformer {
namespace tensor {
namespace {

TEST(SerializeTest, RoundTripPreservesData) {
  Rng rng(1);
  std::vector<Tensor> original = {Tensor::Randn({3, 4}, rng),
                                  Tensor::Randn({7}, rng),
                                  Tensor::Randn({2, 2, 2}, rng)};
  const std::string path = "/tmp/cf_serialize_test.bin";
  ASSERT_TRUE(SaveTensors(path, original));

  std::vector<Tensor> loaded = {Tensor::Zeros({3, 4}), Tensor::Zeros({7}),
                                Tensor::Zeros({2, 2, 2})};
  ASSERT_TRUE(LoadTensors(path, loaded));
  for (size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ(loaded[i].data(), original[i].data());
  }
  std::remove(path.c_str());
}

TEST(SerializeTest, RejectsShapeMismatch) {
  Rng rng(2);
  std::vector<Tensor> original = {Tensor::Randn({3, 4}, rng)};
  const std::string path = "/tmp/cf_serialize_mismatch.bin";
  ASSERT_TRUE(SaveTensors(path, original));
  std::vector<Tensor> wrong_shape = {Tensor::Zeros({4, 3})};
  EXPECT_FALSE(LoadTensors(path, wrong_shape));
  std::vector<Tensor> wrong_count = {Tensor::Zeros({3, 4}), Tensor::Zeros({1})};
  EXPECT_FALSE(LoadTensors(path, wrong_count));
  std::remove(path.c_str());
}

TEST(SerializeTest, RejectsMissingOrCorruptFile) {
  std::vector<Tensor> t = {Tensor::Zeros({2})};
  EXPECT_FALSE(LoadTensors("/tmp/cf_does_not_exist.bin", t));
  const std::string path = "/tmp/cf_corrupt.bin";
  {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    std::fputs("garbage", f);
    std::fclose(f);
  }
  EXPECT_FALSE(LoadTensors(path, t));
  std::remove(path.c_str());
}

// A file whose header (count + shapes) parses but whose raw float payload is
// cut short must abort naming the corrupt tensor, not return partial data —
// a truncated checkpoint that "loads" would serve garbage predictions.
TEST(SerializeDeathTest, TruncatedPayloadAbortsNamingTensor) {
  Rng rng(4);
  std::vector<Tensor> original = {Tensor::Randn({2, 3}, rng),
                                  Tensor::Randn({4, 4}, rng)};
  const std::string path = "/tmp/cf_serialize_truncated.bin";
  ASSERT_TRUE(SaveTensors(path, original));
  // Chop the tail off the second tensor's payload; the header still matches.
  {
    std::FILE* f = std::fopen(path.c_str(), "rb");
    ASSERT_NE(f, nullptr);
    std::fseek(f, 0, SEEK_END);
    const long size = std::ftell(f);
    std::fseek(f, 0, SEEK_SET);
    std::vector<char> bytes(static_cast<size_t>(size));
    ASSERT_EQ(std::fread(bytes.data(), 1, bytes.size(), f), bytes.size());
    std::fclose(f);
    f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fwrite(bytes.data(), 1, bytes.size() - 8, f);
    std::fclose(f);
  }
  std::vector<Tensor> loaded = {Tensor::Zeros({2, 3}), Tensor::Zeros({4, 4})};
  EXPECT_DEATH(LoadTensors(path, loaded), "truncated payload for tensor 1 of 2");
  std::remove(path.c_str());
}

TEST(SerializeTest, ModuleParametersRoundTrip) {
  Rng rng(3);
  nn::Mlp source({4, 8, 2}, rng);
  nn::Mlp target({4, 8, 2}, rng);  // different init
  const std::string path = "/tmp/cf_module_roundtrip.bin";
  ASSERT_TRUE(SaveTensors(path, source.Parameters()));
  auto target_params = target.Parameters();
  ASSERT_TRUE(LoadTensors(path, target_params));
  // Loading in place mutates the module's shared parameter storage.
  Tensor x = Tensor::Ones({4});
  Tensor ys = source.Forward(x);
  Tensor yt = target.Forward(x);
  EXPECT_EQ(ys.data(), yt.data());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace tensor
}  // namespace chainsformer
