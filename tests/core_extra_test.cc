// Additional core-module coverage: filter λ behavior (Eq. 9), encoder
// position sensitivity, and cross-component seed isolation.

#include <cmath>

#include <gtest/gtest.h>

#include "core/chain_encoder.h"
#include "core/hyperbolic_filter.h"
#include "core/query_retrieval.h"
#include "kg/synthetic.h"

namespace chainsformer {
namespace core {
namespace {

class CoreExtraTest : public ::testing::Test {
 protected:
  static const kg::Dataset& Data() {
    static const kg::Dataset* ds =
        new kg::Dataset(kg::MakeYago15kLike({.scale = 0.05}));
    return *ds;
  }
  static ChainsFormerConfig Config(float lambda) {
    ChainsFormerConfig c;
    c.filter_dim = 8;
    c.lambda = lambda;
    c.seed = 3;
    return c;
  }
  static RAChain ChainWith(kg::AttributeId src, kg::AttributeId dst,
                           std::vector<kg::RelationId> rels) {
    RAChain c;
    c.source_attribute = src;
    c.query_attribute = dst;
    c.relations = std::move(rels);
    c.source_value = 0.0;
    c.source_entity = 0;
    return c;
  }
};

TEST_F(CoreExtraTest, LambdaOneScoresIgnoreRelations) {
  // λ = 1: only the intra-score d(h_ap, h_aq) matters (Eq. 9), so two chains
  // with the same attribute pair but different relations score identically.
  HyperbolicFilter filter(Data().graph.num_relation_ids(),
                          Data().graph.num_attributes(), Config(1.0f));
  const RAChain a = ChainWith(0, 1, {0});
  const RAChain b = ChainWith(0, 1, {2, 4});
  EXPECT_NEAR(filter.Score(a), filter.Score(b), 1e-12);
}

TEST_F(CoreExtraTest, LambdaZeroScoresIgnoreSourceAttribute) {
  // λ = 0: only the inter-score d(h_c, h_aq) matters, so the source
  // attribute is irrelevant.
  HyperbolicFilter filter(Data().graph.num_relation_ids(),
                          Data().graph.num_attributes(), Config(0.0f));
  const RAChain a = ChainWith(0, 1, {2});
  const RAChain b = ChainWith(3, 1, {2});
  EXPECT_NEAR(filter.Score(a), filter.Score(b), 1e-12);
}

TEST_F(CoreExtraTest, SameAttributePairZeroIntraDistance) {
  // d(h_a, h_a) = 0, so for λ = 1 a chain whose source attribute equals the
  // query attribute has the maximum possible affinity (score 0).
  HyperbolicFilter filter(Data().graph.num_relation_ids(),
                          Data().graph.num_attributes(), Config(1.0f));
  const RAChain same = ChainWith(2, 2, {0});
  EXPECT_NEAR(filter.Score(same), 0.0, 1e-9);
  const RAChain diff = ChainWith(0, 2, {0});
  EXPECT_LT(filter.Score(diff), filter.Score(same));
}

TEST_F(CoreExtraTest, LongerChainsGenerallyScoreFarther) {
  // Möbius-adding more random relations drifts the chain embedding away
  // from the origin region; on average long chains are less affine to any
  // attribute. Statistical, so compare averages over relations.
  HyperbolicFilter filter(Data().graph.num_relation_ids(),
                          Data().graph.num_attributes(), Config(0.0f));
  double short_total = 0.0, long_total = 0.0;
  int count = 0;
  const auto n = Data().graph.num_relation_ids();
  for (kg::RelationId r = 0; r + 3 < n; ++r) {
    short_total += filter.Score(ChainWith(0, 1, {r}));
    long_total += filter.Score(
        ChainWith(0, 1, {r, static_cast<kg::RelationId>(r + 1),
                         static_cast<kg::RelationId>(r + 2)}));
    ++count;
  }
  ASSERT_GT(count, 4);
  // Not a strict inequality per chain, but the mean should not reverse
  // dramatically; just assert both are finite and negative (distances > 0).
  EXPECT_LT(short_total / count, 0.0);
  EXPECT_LT(long_total / count, 0.0);
}

TEST_F(CoreExtraTest, EncoderPositionSensitivity) {
  // The end-token representation must differ when the same tokens appear in
  // a different order (positional embeddings at work).
  ChainsFormerConfig config;
  config.hidden_dim = 16;
  config.encoder_layers = 1;
  config.num_heads = 2;
  Rng rng(5);
  ChainEncoder enc(10, 4, config, rng);
  RAChain a = ChainWith(1, 2, {3, 5, 7});
  RAChain b = ChainWith(1, 2, {7, 5, 3});
  a.source_value = b.source_value = 1000.0;
  tensor::Tensor ea = enc.Encode(a);
  tensor::Tensor eb = enc.Encode(b);
  double diff = 0.0;
  for (int64_t i = 0; i < ea.numel(); ++i) diff += std::fabs(ea.at(i) - eb.at(i));
  EXPECT_GT(diff, 1e-4);
}

TEST_F(CoreExtraTest, FilterSeedChangesEmbeddings) {
  auto c1 = Config(0.5f);
  auto c2 = Config(0.5f);
  c2.seed = 4;
  HyperbolicFilter f1(Data().graph.num_relation_ids(),
                      Data().graph.num_attributes(), c1);
  HyperbolicFilter f2(Data().graph.num_relation_ids(),
                      Data().graph.num_attributes(), c2);
  const RAChain chain = ChainWith(0, 1, {2});
  EXPECT_NE(f1.Score(chain), f2.Score(chain));
}

TEST_F(CoreExtraTest, CountChainsIndependentOfNumericIndexOrder) {
  // Shuffling the triple list behind the NumericIndex must not change the
  // chain count (it is a pure function of graph + facts).
  auto triples = Data().split.train;
  kg::NumericIndex idx1(triples, Data().graph.num_entities());
  Rng rng(11);
  rng.Shuffle(triples);
  kg::NumericIndex idx2(triples, Data().graph.num_entities());
  const auto e = Data().split.test.front().entity;
  EXPECT_EQ(QueryRetrieval::CountChains(Data().graph, idx1, e, 2),
            QueryRetrieval::CountChains(Data().graph, idx2, e, 2));
}

}  // namespace
}  // namespace core
}  // namespace chainsformer
