#include "core/hyperbolic_filter.h"

#include <algorithm>
#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "kg/synthetic.h"

namespace chainsformer {
namespace core {
namespace {

class FilterTest : public ::testing::Test {
 protected:
  static const kg::Dataset& Data() {
    static const kg::Dataset* ds =
        new kg::Dataset(kg::MakeYago15kLike({.scale = 0.05}));
    return *ds;
  }
  static const kg::NumericIndex& TrainIndex() {
    static const kg::NumericIndex* idx =
        new kg::NumericIndex(Data().split.train, Data().graph.num_entities());
    return *idx;
  }
  static ChainsFormerConfig Config(FilterSpace space) {
    ChainsFormerConfig c;
    c.filter_space = space;
    c.filter_dim = 8;
    c.filter_pretrain_queries = 60;
    c.filter_pretrain_epochs = 1;
    c.seed = 7;
    return c;
  }
  static TreeOfChains SampleChains(int n) {
    QueryRetrieval retrieval(Data().graph, TrainIndex(), 3, n);
    Rng rng(3);
    const auto& t = Data().split.test.front();
    return retrieval.Retrieve({t.entity, t.attribute}, rng);
  }
};

TEST_F(FilterTest, TopKEqualsExhaustiveSortByScore) {
  HyperbolicFilter filter(Data().graph.num_relation_ids(),
                          Data().graph.num_attributes(),
                          Config(FilterSpace::kHyperbolic));
  const TreeOfChains toc = SampleChains(48);
  ASSERT_GT(toc.size(), 8u);
  Rng rng(1);
  const TreeOfChains top = filter.FilterTopK(toc, 8, rng);
  ASSERT_EQ(top.size(), 8u);
  // Every selected chain must score >= every rejected chain.
  double min_selected = 1e300;
  for (const auto& c : top) min_selected = std::min(min_selected, filter.Score(c));
  int better_rejected = 0;
  for (const auto& c : toc) {
    if (filter.Score(c) > min_selected + 1e-12) ++better_rejected;
  }
  EXPECT_LE(better_rejected, 7);  // only chains inside the top-k may beat it
}

TEST_F(FilterTest, TopKReturnsAllWhenFewer) {
  HyperbolicFilter filter(Data().graph.num_relation_ids(),
                          Data().graph.num_attributes(),
                          Config(FilterSpace::kHyperbolic));
  const TreeOfChains toc = SampleChains(4);
  Rng rng(2);
  EXPECT_EQ(filter.FilterTopK(toc, 16, rng).size(), toc.size());
}

TEST_F(FilterTest, ScoreIsDeterministicForGeometricSpaces) {
  HyperbolicFilter filter(Data().graph.num_relation_ids(),
                          Data().graph.num_attributes(),
                          Config(FilterSpace::kHyperbolic));
  const TreeOfChains toc = SampleChains(8);
  for (const auto& c : toc) {
    EXPECT_DOUBLE_EQ(filter.Score(c), filter.Score(c));
  }
}

TEST_F(FilterTest, RandomSpaceSelectsSubset) {
  HyperbolicFilter filter(Data().graph.num_relation_ids(),
                          Data().graph.num_attributes(),
                          Config(FilterSpace::kRandom));
  const TreeOfChains toc = SampleChains(32);
  Rng rng(3);
  const TreeOfChains top = filter.FilterTopK(toc, 8, rng);
  EXPECT_EQ(top.size(), 8u);
}

TEST_F(FilterTest, PretrainImprovesRelevantChainRanking) {
  // After contrastive pre-training, chains whose source attribute matches
  // the query attribute should outrank mismatched ones more often than at
  // initialization.
  auto rank_quality = [&](HyperbolicFilter& filter) {
    QueryRetrieval retrieval(Data().graph, TrainIndex(), 3, 48);
    Rng rng(11);
    int same_selected = 0, same_total = 0, selected_total = 0, total = 0;
    for (int qi = 0; qi < 20; ++qi) {
      const auto& t = Data().split.valid[static_cast<size_t>(qi) %
                                         Data().split.valid.size()];
      const TreeOfChains toc = retrieval.Retrieve({t.entity, t.attribute}, rng);
      if (toc.size() < 10) continue;
      const TreeOfChains top =
          filter.FilterTopK(toc, static_cast<int>(toc.size() / 2), rng);
      for (const auto& c : toc) {
        total++;
        if (c.source_attribute == t.attribute) same_total++;
      }
      for (const auto& c : top) {
        selected_total++;
        if (c.source_attribute == t.attribute) same_selected++;
      }
    }
    const double base = same_total / std::max(1.0, static_cast<double>(total));
    const double sel =
        same_selected / std::max(1.0, static_cast<double>(selected_total));
    return sel - base;  // lift of same-attribute share after filtering
  };

  HyperbolicFilter filter(Data().graph.num_relation_ids(),
                          Data().graph.num_attributes(),
                          Config(FilterSpace::kHyperbolic));
  QueryRetrieval retrieval(Data().graph, TrainIndex(), 3, 48);
  Rng prng(5);
  const auto stats = filter.Pretrain(retrieval, Data().split.train,
                                     kg::ComputeAttributeStats(
                                         Data().split.train,
                                         Data().graph.num_attributes()),
                                     prng);
  EXPECT_GT(stats.pairs, 0);
  // Pretrained filter must concentrate same/related attributes (Fig. 6).
  EXPECT_GT(rank_quality(filter), 0.02);
}

TEST_F(FilterTest, EuclideanSpacePretrainsToo) {
  HyperbolicFilter filter(Data().graph.num_relation_ids(),
                          Data().graph.num_attributes(),
                          Config(FilterSpace::kEuclidean));
  QueryRetrieval retrieval(Data().graph, TrainIndex(), 3, 32);
  Rng prng(6);
  const auto stats = filter.Pretrain(retrieval, Data().split.train,
                                     kg::ComputeAttributeStats(
                                         Data().split.train,
                                         Data().graph.num_attributes()),
                                     prng);
  EXPECT_GT(stats.pairs, 0);
  const TreeOfChains toc = SampleChains(16);
  for (const auto& c : toc) {
    EXPECT_TRUE(std::isfinite(filter.Score(c)));
  }
}

TEST_F(FilterTest, RandomSpacePretrainIsNoop) {
  HyperbolicFilter filter(Data().graph.num_relation_ids(),
                          Data().graph.num_attributes(),
                          Config(FilterSpace::kRandom));
  QueryRetrieval retrieval(Data().graph, TrainIndex(), 3, 32);
  Rng prng(7);
  const auto stats = filter.Pretrain(retrieval, Data().split.train,
                                     kg::ComputeAttributeStats(
                                         Data().split.train,
                                         Data().graph.num_attributes()),
                                     prng);
  EXPECT_EQ(stats.pairs, 0);
}

TEST_F(FilterTest, LogMappedEmbeddingsHaveFilterDim) {
  HyperbolicFilter filter(Data().graph.num_relation_ids(),
                          Data().graph.num_attributes(),
                          Config(FilterSpace::kHyperbolic));
  EXPECT_EQ(filter.LogMappedRelation(0).size(), 8u);
  EXPECT_EQ(filter.LogMappedAttribute(0).size(), 8u);
}

}  // namespace
}  // namespace core
}  // namespace chainsformer
