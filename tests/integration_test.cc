// End-to-end integration tests: ChainsFormer against reference baselines on
// a small synthetic dataset, checking the qualitative claims the benchmarks
// reproduce at full scale (multi-hop chains beat attribute-blind predictors;
// the pipeline is reproducible end to end).

#include <cmath>

#include <gtest/gtest.h>

#include "baselines/simple.h"
#include "core/chainsformer.h"
#include "kg/synthetic.h"

namespace chainsformer {
namespace {

core::ChainsFormerConfig SmallConfig() {
  core::ChainsFormerConfig c;
  c.max_hops = 3;
  c.num_walks = 64;
  c.top_k = 12;
  c.hidden_dim = 16;
  c.filter_dim = 8;
  c.encoder_layers = 1;
  c.reasoner_layers = 1;
  c.num_heads = 2;
  c.epochs = 6;
  c.patience = 6;
  c.max_train_queries = 200;
  c.max_eval_queries = 150;
  c.filter_pretrain_queries = 100;
  c.filter_pretrain_epochs = 1;
  c.learning_rate = 5e-3f;
  c.seed = 21;
  return c;
}

class IntegrationTest : public ::testing::Test {
 protected:
  static const kg::Dataset& Data() {
    static const kg::Dataset* ds =
        new kg::Dataset(kg::MakeYago15kLike({.scale = 0.06}));
    return *ds;
  }
  static std::vector<kg::NumericalTriple> TestSample(size_t n) {
    const auto& t = Data().split.test;
    return std::vector<kg::NumericalTriple>(t.begin(),
                                            t.begin() + std::min(n, t.size()));
  }
};

TEST_F(IntegrationTest, ChainsFormerBeatsGlobalMean) {
  core::ChainsFormerModel model(Data(), SmallConfig());
  model.Train();
  baselines::GlobalMeanBaseline global(Data());
  global.Train();
  const auto sample = TestSample(250);
  const double cf = model.Evaluate(sample).normalized_mae;
  double gm = 0.0;
  {
    eval::MetricsAccumulator acc(model.train_stats());
    for (const auto& t : sample) {
      acc.Add(t.attribute, global.Predict(t.entity, t.attribute), t.value);
    }
    gm = acc.Finalize().normalized_mae;
  }
  EXPECT_LT(cf, gm * 0.9) << "ChainsFormer nmae=" << cf << " global=" << gm;
}

TEST_F(IntegrationTest, MultiHopBeatsOneHopRetrieval) {
  // Fig. 4: expanding reasoning depth to multiple hops reduces error.
  auto run = [&](int hops) {
    auto c = SmallConfig();
    c.max_hops = hops;
    core::ChainsFormerModel model(Data(), c);
    model.Train();
    return model.Evaluate(TestSample(250)).normalized_mae;
  };
  const double one_hop = run(1);
  const double multi_hop = run(3);
  EXPECT_LT(multi_hop, one_hop * 1.05)
      << "multi-hop=" << multi_hop << " one-hop=" << one_hop;
}

TEST_F(IntegrationTest, SpatialAttributesWellPredicted) {
  // Spatial attributes have strong chain structure; the trained model must
  // reach a normalized MAE well under random guessing (~0.25 for U[0,1]).
  core::ChainsFormerModel model(Data(), SmallConfig());
  model.Train();
  const auto lat = Data().graph.FindAttribute("latitude");
  std::vector<kg::NumericalTriple> queries;
  for (const auto& t : Data().split.test) {
    if (t.attribute == lat && queries.size() < 150) queries.push_back(t);
  }
  ASSERT_GE(queries.size(), 8u);
  const auto r = model.Evaluate(queries);
  const auto& stats = model.train_stats()[static_cast<size_t>(lat)];
  const double nmae = r.per_attribute[static_cast<size_t>(lat)].mae / stats.Range();
  EXPECT_LT(nmae, 0.2);
}

TEST_F(IntegrationTest, FullPipelineReproducible) {
  auto run_once = [&] {
    core::ChainsFormerModel model(Data(), SmallConfig());
    model.Train();
    return model.Evaluate(TestSample(100)).normalized_mae;
  };
  EXPECT_DOUBLE_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace chainsformer
