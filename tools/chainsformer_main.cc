// ChainsFormer command-line tool.
//
// Subcommands:
//   generate  — write a synthetic benchmark dataset to TSV files
//   train     — train on TSV data and save a checkpoint
//   eval      — evaluate a checkpoint on the held-out test split
//   explain   — trace the reasoning chains behind one prediction
//
// Examples:
//   chainsformer generate --dataset=yago --scale=0.15 \
//       --triples=/tmp/t.tsv --numeric=/tmp/n.tsv
//   chainsformer train --triples=/tmp/t.tsv --numeric=/tmp/n.tsv \
//       --checkpoint=/tmp/model.cfsm --epochs=12
//   chainsformer eval --triples=/tmp/t.tsv --numeric=/tmp/n.tsv \
//       --checkpoint=/tmp/model.cfsm
//   chainsformer explain --triples=/tmp/t.tsv --numeric=/tmp/n.tsv \
//       --checkpoint=/tmp/model.cfsm --entity=person_12 --attribute=birth

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "core/chainsformer.h"
#include "eval/table.h"
#include "graph/quant.h"
#include "kg/analysis.h"
#include "kg/loader.h"
#include "kg/synthetic.h"
#include "serve/checkpoint.h"
#include "tensor/checks.h"
#include "util/flags.h"
#include "util/logging.h"
#include "util/metrics.h"
#include "util/string_util.h"
#include "util/thread_pool.h"
#include "util/trace.h"

namespace chainsformer {
namespace {

int Usage() {
  std::fprintf(stderr,
               "usage: chainsformer <generate|analyze|train|eval|explain> [--flags]\n"
               "  common flags: --triples=PATH --numeric=PATH --seed=N\n"
               "                --kernel-threads=N (dense kernel workers; 0 = all cores)\n"
               "                --metrics-json=PATH (dump pipeline metrics as JSON)\n"
               "                --trace-json=PATH (record a chrome://tracing span file)\n"
               "                --stats (print a metrics summary table on exit)\n"
               "                --eval-threads=N (parallel evaluation passes; bit-identical)\n"
               "                --no-batched-encoder (per-chain reference encoder path)\n"
               "                --check-mode=off|shapes|full (autograd tape sanitizer;\n"
               "                  default from CF_CHECK_MODE, else off)\n"
               "  generate: --dataset=yago|fb --scale=F\n"
               "  train:    --checkpoint=PATH --epochs=N --hidden-dim=N\n"
               "            --num-walks=N --top-k=N --max-hops=N --lr=F\n"
               "            --quantize (add int8 weights + calibration error to\n"
               "              the checkpoint for --precision=int8 serving)\n"
               "            --calibration-queries=N (held-out queries used to\n"
               "              measure the int8 accuracy drift; default 200)\n"
               "  eval:     --checkpoint=PATH\n"
               "  explain:  --checkpoint=PATH --entity=NAME --attribute=NAME\n");
  return 2;
}

core::ChainsFormerConfig ConfigFromFlags(const FlagParser& flags) {
  core::ChainsFormerConfig config;
  config.epochs = static_cast<int>(flags.GetInt("epochs", 12));
  config.hidden_dim = static_cast<int>(flags.GetInt("hidden-dim", 32));
  config.filter_dim = static_cast<int>(flags.GetInt("filter-dim", 16));
  config.num_walks = static_cast<int>(flags.GetInt("num-walks", 128));
  config.top_k = static_cast<int>(flags.GetInt("top-k", 16));
  config.max_hops = static_cast<int>(flags.GetInt("max-hops", 3));
  config.learning_rate = static_cast<float>(flags.GetDouble("lr", 4e-3));
  config.max_train_queries = static_cast<int>(flags.GetInt("train-queries", 400));
  config.kernel_threads = static_cast<int>(flags.GetInt("kernel-threads", 1));
  config.check_mode = tensor::CheckModeFromString(flags.GetString(
      "check-mode", tensor::CheckModeName(tensor::CheckModeFromEnv())));
  config.batched_encoder = !flags.GetBool("no-batched-encoder", false);
  config.eval_threads = static_cast<int>(flags.GetInt("eval-threads", 2));
  config.seed = static_cast<uint64_t>(flags.GetInt("seed", 42));
  config.verbose = flags.GetBool("verbose", true);
  return config;
}

kg::Dataset LoadFromFlags(const FlagParser& flags) {
  const std::string triples = flags.GetString("triples");
  const std::string numeric = flags.GetString("numeric");
  CF_CHECK(!triples.empty() && !numeric.empty())
      << "--triples and --numeric are required";
  return kg::LoadTsvDataset("cli", triples, numeric,
                            static_cast<uint64_t>(flags.GetInt("seed", 42)));
}

int RunGenerate(const FlagParser& flags) {
  const std::string which = flags.GetString("dataset", "yago");
  kg::SyntheticOptions options;
  options.scale = flags.GetDouble("scale", 0.15);
  options.seed = static_cast<uint64_t>(flags.GetInt("seed", 42));
  const kg::Dataset ds = which == "fb" ? kg::MakeFb15k237Like(options)
                                       : kg::MakeYago15kLike(options);
  const std::string triples = flags.GetString("triples", "/tmp/cf_triples.tsv");
  const std::string numeric = flags.GetString("numeric", "/tmp/cf_numeric.tsv");
  kg::SaveTsvDataset(ds, triples, numeric);
  std::printf("wrote %s: %lld entities, %zu triples -> %s\n", ds.name.c_str(),
              static_cast<long long>(ds.graph.num_entities()),
              ds.graph.relational_triples().size(), triples.c_str());
  std::printf("wrote %zu numeric facts -> %s\n",
              ds.graph.numerical_triples().size(), numeric.c_str());
  return 0;
}

int RunAnalyze(const FlagParser& flags) {
  const kg::Dataset ds = LoadFromFlags(flags);
  const kg::GraphAnalysis a = kg::AnalyzeGraph(ds.graph);
  std::printf("%s", kg::AnalysisReport(ds.graph, a).c_str());
  for (int hops = 1; hops <= 3; ++hops) {
    std::printf("avg entities reachable in %d hops: %.1f\n", hops,
                kg::AverageReachableEntities(ds.graph, hops, 100));
  }
  return 0;
}

/// Final evaluation used by train/eval: parallel (bit-identical to serial,
/// see ChainsFormerModel::EvaluateParallel) when --eval-threads > 1.
eval::EvalResult FinalEvaluate(core::ChainsFormerModel& model,
                               const std::vector<kg::NumericalTriple>& queries) {
  const int eval_threads = model.config().eval_threads;
  if (eval_threads == 1) return model.Evaluate(queries);
  ThreadPool pool(eval_threads > 0 ? static_cast<size_t>(eval_threads) : 0);
  return model.EvaluateParallel(queries, pool);
}

int RunTrain(const FlagParser& flags) {
  const kg::Dataset ds = LoadFromFlags(flags);
  core::ChainsFormerModel model(ds, ConfigFromFlags(flags));
  std::printf("training on %s: %zu train / %zu valid / %zu test numeric facts\n",
              ds.name.c_str(), ds.split.train.size(), ds.split.valid.size(),
              ds.split.test.size());
  const auto report = model.Train();
  std::printf("trained %d epochs; best validation nMAE %.4f\n",
              report.epochs_run, report.best_valid_mae);
  if (!report.epoch_stage_millis.empty()) {
    const auto& last = report.epoch_stage_millis.back();
    std::printf(
        "last epoch stage times (ms): retrieval %.1f, filter %.1f, encode %.1f, "
        "project %.1f, aggregate %.1f (valid eval %.1f of %.1f total)\n",
        last.at("retrieval"), last.at("filter"), last.at("encode"),
        last.at("project"), last.at("aggregate"), last.at("valid_eval"),
        last.at("total"));
  }
  const std::string checkpoint = flags.GetString("checkpoint");
  if (!checkpoint.empty()) {
    const graph::QuantStore* quant = nullptr;
    graph::QuantStore store;
    if (flags.GetBool("quantize", false)) {
      // Quantize the frozen weights and measure the int8 serving drift on
      // held-out validation queries, so the checkpoint carries the evidence
      // the serve-time accuracy gate (ServeOptions::quant_error_budget)
      // checks.
      store = graph::BuildQuantStore(model);
      const int64_t want = flags.GetInt("calibration-queries", 200);
      std::vector<core::Query> calib;
      for (const auto& t : ds.split.valid) {
        if (static_cast<int64_t>(calib.size()) >= want) break;
        calib.push_back(core::Query{t.entity, t.attribute});
      }
      graph::CalibrateQuantStore(model, calib, &store);
      std::printf(
          "quantized %zu linears; int8 calibration MAE delta %.6f over %lld "
          "queries\n",
          store.linears.size(), store.mae_delta,
          static_cast<long long>(store.calibration_queries));
      quant = &store;
    }
    // Self-describing CFSM checkpoint: config + vocab + stats + tensors, so
    // eval/serve do not need the training flags repeated.
    if (!serve::SaveModel(model, quant, checkpoint)) {
      std::fprintf(stderr, "failed to write checkpoint %s\n", checkpoint.c_str());
      return 1;
    }
    std::printf("checkpoint saved to %s\n", checkpoint.c_str());
  }
  const auto result = FinalEvaluate(model, ds.split.test);
  std::printf("test Average* MAE %.4f, RMSE %.4f over %lld queries\n",
              result.normalized_mae, result.normalized_rmse,
              static_cast<long long>(result.total_count));
  return 0;
}

/// Builds a ready-to-predict model: from a --checkpoint when given (CFSM
/// self-describing checkpoints carry their own config; legacy CFTN tensor
/// dumps rely on the architecture flags matching training), otherwise by
/// training from scratch. Returns nullptr on load failure.
std::unique_ptr<core::ChainsFormerModel> LoadOrTrain(const FlagParser& flags,
                                                     const kg::Dataset& ds) {
  const std::string checkpoint = flags.GetString("checkpoint");
  if (checkpoint.empty()) {
    std::printf("no --checkpoint given; training from scratch\n");
    auto model =
        std::make_unique<core::ChainsFormerModel>(ds, ConfigFromFlags(flags));
    model->Train();
    return model;
  }
  if (serve::IsModelCheckpoint(checkpoint)) {
    return serve::LoadModel(ds, ConfigFromFlags(flags), checkpoint);
  }
  auto model =
      std::make_unique<core::ChainsFormerModel>(ds, ConfigFromFlags(flags));
  if (!model->LoadCheckpoint(checkpoint)) {
    std::fprintf(stderr, "failed to load checkpoint %s\n", checkpoint.c_str());
    return nullptr;
  }
  return model;
}

int RunEval(const FlagParser& flags) {
  const kg::Dataset ds = LoadFromFlags(flags);
  std::unique_ptr<core::ChainsFormerModel> model_ptr = LoadOrTrain(flags, ds);
  if (!model_ptr) return 1;
  core::ChainsFormerModel& model = *model_ptr;
  const auto result = FinalEvaluate(model, ds.split.test);
  eval::TextTable table({"attribute", "count", "MAE", "RMSE"});
  for (kg::AttributeId a = 0; a < ds.graph.num_attributes(); ++a) {
    const auto& m = result.per_attribute[static_cast<size_t>(a)];
    if (m.count == 0) continue;
    table.AddRow({ds.graph.AttributeName(a), std::to_string(m.count),
                  FormatMetric(m.mae), FormatMetric(m.rmse)});
  }
  table.AddRow({"Average*", std::to_string(result.total_count),
                FormatMetric(result.normalized_mae),
                FormatMetric(result.normalized_rmse)});
  std::printf("%s", table.ToString().c_str());
  return 0;
}

int RunExplain(const FlagParser& flags) {
  const kg::Dataset ds = LoadFromFlags(flags);
  const kg::EntityId entity = ds.graph.FindEntity(flags.GetString("entity"));
  const kg::AttributeId attribute =
      ds.graph.FindAttribute(flags.GetString("attribute"));
  if (entity < 0 || attribute < 0) {
    std::fprintf(stderr, "unknown --entity or --attribute\n");
    return 1;
  }
  std::unique_ptr<core::ChainsFormerModel> model_ptr = LoadOrTrain(flags, ds);
  if (!model_ptr) return 1;
  core::ChainsFormerModel& model = *model_ptr;
  const auto ex = model.Explain({entity, attribute});
  std::printf("%s(%s) = %.3f\n",
              ds.graph.AttributeName(attribute).c_str(),
              ds.graph.EntityName(entity).c_str(), ex.prediction);
  if (!ex.has_evidence) {
    std::printf("no reasoning chains found; fell back to the training mean\n");
    return 0;
  }
  std::printf("%zu chains retrieved, %zu kept after filtering\n", ex.toc_size,
              ex.filtered_size);
  for (const auto& [chain, w] : ex.weighted_chains) {
    std::printf("  %-50s via %-16s evidence=%10.2f  omega=%.3f\n",
                chain.PatternString(ds.graph).c_str(),
                ds.graph.EntityName(chain.source_entity).c_str(),
                chain.source_value, w);
  }
  return 0;
}

int Main(int argc, char** argv) {
  FlagParser flags(argc, argv);
  if (flags.positional().empty()) return Usage();
  const std::string& command = flags.positional()[0];
  // Observability flags are common to every subcommand. Tracing must be
  // switched on before any pipeline work runs.
  const std::string metrics_json = flags.GetString("metrics-json");
  const std::string trace_json = flags.GetString("trace-json");
  const bool print_stats = flags.GetBool("stats", false);
  // --eval-threads / --no-batched-encoder are only consumed by the model
  // subcommands; touch them here so the unused-flag warning stays quiet for
  // generate/analyze.
  (void)flags.GetInt("eval-threads", 2);
  (void)flags.GetBool("no-batched-encoder", false);
  // Activate the tape sanitizer before any tensor work runs; the model
  // constructor re-applies the same level from the parsed config.
  tensor::SetCheckMode(tensor::CheckModeFromString(flags.GetString(
      "check-mode", tensor::CheckModeName(tensor::CheckModeFromEnv()))));
  if (!trace_json.empty()) trace::SetEnabled(true);
  int rc;
  if (command == "generate") {
    rc = RunGenerate(flags);
  } else if (command == "analyze") {
    rc = RunAnalyze(flags);
  } else if (command == "train") {
    rc = RunTrain(flags);
  } else if (command == "eval") {
    rc = RunEval(flags);
  } else if (command == "explain") {
    rc = RunExplain(flags);
  } else {
    return Usage();
  }
  if (!metrics_json.empty() || print_stats) {
    const metrics::MetricsSnapshot snap =
        metrics::MetricsRegistry::Global().Snapshot();
    if (!metrics_json.empty() && !metrics::WriteJsonFile(metrics_json, snap)) {
      rc = rc == 0 ? 1 : rc;
    }
    if (print_stats) std::printf("%s", metrics::SummaryTable(snap).c_str());
  }
  if (!trace_json.empty() && !trace::WriteChromeTrace(trace_json)) {
    rc = rc == 0 ? 1 : rc;
  }
  for (const auto& key : flags.UnreadKeys()) {
    std::fprintf(stderr, "warning: unused flag --%s\n", key.c_str());
  }
  return rc;
}

}  // namespace
}  // namespace chainsformer

int main(int argc, char** argv) { return chainsformer::Main(argc, argv); }
