// cf_lint — project-specific static lint for the ChainsFormer sources.
//
// Usage: cf_lint <dir> [<dir>...]
//
// Walks every .h/.cc file under the given directories and enforces the
// repo's coding invariants that the compiler cannot:
//
//   no-rand              libc rand()/srand() — all randomness must go through
//                        util/rng.h so runs are seedable and reproducible.
//   no-cout              std::cout/std::cerr in library code — the library
//                        logs through CF_LOG and returns data; only tools/,
//                        tests/ and bench/ own stdout.
//   no-naked-new-array   naked `new T[n]` — raw array news leak on every
//                        early return; use std::vector or std::unique_ptr.
//   unchecked-data-index raw `.data()[i]` indexing with no CF_CHECK* in the
//                        preceding window (20 lines) — pointer indexing
//                        bypasses the debug bounds of at()/set(), so the
//                        bounds must be established nearby.
//   include-cycle        #include cycles among project headers (quoted
//                        includes), found by DFS over the include graph.
//
// A finding on a line carrying the comment `// cf-lint: allow(<rule>)` is
// suppressed; the suppression names exactly one rule and documents itself at
// the offending site. Exit status is 1 if any finding survives, 0 otherwise,
// 2 on usage/IO errors — so the binary doubles as a ctest test (label
// `lint`).
//
// The lint is line-based on purpose: the rules target idioms that are
// textually stable in this codebase, and a lexer-free checker stays fast
// enough to run on every ctest invocation.

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace fs = std::filesystem;

namespace {

struct Finding {
  std::string file;
  int line = 0;  // 1-based; 0 for file-level findings (cycles)
  std::string rule;
  std::string message;
};

/// True when line[pos] starts an identifier-boundary occurrence of `word`
/// (no [A-Za-z0-9_] immediately before or after).
bool IsWordAt(const std::string& line, size_t pos, const std::string& word) {
  if (pos > 0) {
    const char before = line[pos - 1];
    if (std::isalnum(static_cast<unsigned char>(before)) || before == '_') {
      return false;
    }
  }
  const size_t end = pos + word.size();
  if (end < line.size()) {
    const char after = line[end];
    if (std::isalnum(static_cast<unsigned char>(after)) || after == '_') {
      return false;
    }
  }
  return true;
}

/// First identifier-boundary occurrence of `word`, or npos.
size_t FindWord(const std::string& line, const std::string& word) {
  size_t pos = line.find(word);
  while (pos != std::string::npos) {
    if (IsWordAt(line, pos, word)) return pos;
    pos = line.find(word, pos + 1);
  }
  return std::string::npos;
}

/// Strips a trailing // comment (naive: does not parse string literals, which
/// is fine for the idioms linted here) and returns the code part.
std::string CodePart(const std::string& line) {
  const size_t pos = line.find("//");
  return pos == std::string::npos ? line : line.substr(0, pos);
}

/// True when the line carries `// cf-lint: allow(<rule>)` for this rule.
bool Suppressed(const std::string& line, const std::string& rule) {
  const size_t pos = line.find("cf-lint: allow(");
  if (pos == std::string::npos) return false;
  const size_t open = line.find('(', pos);
  const size_t close = line.find(')', open);
  if (close == std::string::npos) return false;
  return line.substr(open + 1, close - open - 1) == rule;
}

/// `new <type>[` — a naked array new. Placement/array forms through smart
/// pointers don't match because they don't spell `new T[`.
bool HasNakedNewArray(const std::string& code) {
  size_t pos = code.find("new");
  while (pos != std::string::npos) {
    if (IsWordAt(code, pos, "new")) {
      size_t i = pos + 3;
      while (i < code.size() && std::isspace(static_cast<unsigned char>(code[i]))) ++i;
      // Consume a type-ish token: identifiers, ::, <>, spaces between them.
      size_t j = i;
      while (j < code.size() &&
             (std::isalnum(static_cast<unsigned char>(code[j])) ||
              code[j] == '_' || code[j] == ':' || code[j] == '<' ||
              code[j] == '>' || code[j] == ',' || code[j] == ' ')) {
        ++j;
      }
      if (j > i && j < code.size() && code[j] == '[') return true;
    }
    pos = code.find("new", pos + 1);
  }
  return false;
}

/// Path of a quoted #include directive, or "" if the line is not one.
std::string QuotedInclude(const std::string& line) {
  size_t i = 0;
  while (i < line.size() && std::isspace(static_cast<unsigned char>(line[i]))) ++i;
  if (i >= line.size() || line[i] != '#') return "";
  ++i;
  while (i < line.size() && std::isspace(static_cast<unsigned char>(line[i]))) ++i;
  if (line.compare(i, 7, "include") != 0) return "";
  const size_t open = line.find('"', i + 7);
  if (open == std::string::npos) return "";
  const size_t close = line.find('"', open + 1);
  if (close == std::string::npos) return "";
  return line.substr(open + 1, close - open - 1);
}

class Linter {
 public:
  void LintFile(const fs::path& path, const fs::path& root) {
    std::ifstream in(path);
    if (!in) {
      std::cerr << "cf_lint: cannot read " << path.string() << "\n";
      io_error_ = true;
      return;
    }
    std::vector<std::string> lines;
    for (std::string line; std::getline(in, line);) lines.push_back(line);

    // Key headers by their include path (path relative to the lint root's
    // parent, e.g. "tensor/ops.h" for src/tensor/ops.h) so the include graph
    // edges match the quoted #include spellings.
    const std::string rel = fs::relative(path, root).generic_string();
    const std::string display = path.generic_string();
    if (path.extension() == ".h") {
      header_lines_[rel] = display;
    }

    // Most recent line index (0-based) holding a CF_CHECK*/CF_LOG guard, for
    // the unchecked-data-index window.
    int last_check = -1000;
    for (size_t n = 0; n < lines.size(); ++n) {
      const std::string& raw = lines[n];
      const std::string code = CodePart(raw);
      const int lineno = static_cast<int>(n) + 1;

      if (code.find("CF_CHECK") != std::string::npos) {
        last_check = static_cast<int>(n);
      }

      const std::string inc = QuotedInclude(code);
      if (!inc.empty()) includes_[rel].push_back(inc);

      auto report = [&](const std::string& rule, const std::string& message) {
        if (Suppressed(raw, rule)) return;
        findings_.push_back({display, lineno, rule, message});
      };

      if (FindWord(code, "rand") != std::string::npos &&
          code.find("rand()") != std::string::npos) {
        report("no-rand",
               "libc rand() is not seedable per-run; use util/rng.h");
      }
      if (FindWord(code, "srand") != std::string::npos) {
        report("no-rand", "srand() seeds global libc state; use util/rng.h");
      }
      if (code.find("std::cout") != std::string::npos ||
          code.find("std::cerr") != std::string::npos) {
        report("no-cout",
               "library code must log via CF_LOG, not std::cout/std::cerr");
      }
      if (HasNakedNewArray(code)) {
        report("no-naked-new-array",
               "naked new[] leaks on early return; use std::vector");
      }
      if (code.find(".data()[") != std::string::npos &&
          static_cast<int>(n) - last_check > kCheckWindow) {
        std::ostringstream os;
        os << "raw .data()[...] indexing with no CF_CHECK in the preceding "
           << kCheckWindow << " lines";
        report("unchecked-data-index", os.str());
      }
    }
  }

  /// DFS over the quoted-include graph restricted to headers seen under the
  /// lint roots; any back edge is a cycle.
  void CheckIncludeCycles() {
    std::map<std::string, int> state;  // 0 unvisited, 1 on stack, 2 done
    std::vector<std::string> stack;
    for (const auto& entry : header_lines_) {
      if (state[entry.first] == 0) Dfs(entry.first, state, stack);
    }
  }

  int Report() const {
    for (const Finding& f : findings_) {
      std::cerr << f.file;
      if (f.line > 0) std::cerr << ":" << f.line;
      std::cerr << ": [" << f.rule << "] " << f.message << "\n";
    }
    if (io_error_) return 2;
    if (!findings_.empty()) {
      std::cerr << "cf_lint: " << findings_.size() << " finding(s)\n";
      return 1;
    }
    return 0;
  }

  bool io_error() const { return io_error_; }

 private:
  static constexpr int kCheckWindow = 20;

  void Dfs(const std::string& node, std::map<std::string, int>& state,
           std::vector<std::string>& stack) {
    state[node] = 1;
    stack.push_back(node);
    auto it = includes_.find(node);
    if (it != includes_.end()) {
      for (const std::string& dep : it->second) {
        if (header_lines_.count(dep) == 0) continue;  // outside the lint roots
        if (state[dep] == 1) {
          std::ostringstream os;
          os << "include cycle: ";
          const auto pos = std::find(stack.begin(), stack.end(), dep);
          for (auto p = pos; p != stack.end(); ++p) os << *p << " -> ";
          os << dep;
          findings_.push_back(
              {header_lines_.at(dep), 0, "include-cycle", os.str()});
        } else if (state[dep] == 0) {
          Dfs(dep, state, stack);
        }
      }
    }
    stack.pop_back();
    state[node] = 2;
  }

  std::map<std::string, std::vector<std::string>> includes_;
  std::map<std::string, std::string> header_lines_;  // include path -> display
  std::vector<Finding> findings_;
  bool io_error_ = false;
};

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::cerr << "usage: cf_lint <dir> [<dir>...]\n";
    return 2;
  }
  Linter linter;
  int files = 0;
  for (int i = 1; i < argc; ++i) {
    const fs::path root(argv[i]);
    std::error_code ec;
    if (!fs::is_directory(root, ec)) {
      std::cerr << "cf_lint: not a directory: " << root.string() << "\n";
      return 2;
    }
    for (const auto& entry : fs::recursive_directory_iterator(root)) {
      if (!entry.is_regular_file()) continue;
      const fs::path& p = entry.path();
      if (p.extension() != ".h" && p.extension() != ".cc") continue;
      linter.LintFile(p, root);
      ++files;
    }
  }
  linter.CheckIncludeCycles();
  const int rc = linter.Report();
  if (rc == 0) std::cout << "cf_lint: " << files << " files clean\n";
  return rc;
}
