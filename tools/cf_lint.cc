// cf_lint — project-specific static lint for the ChainsFormer sources.
//
// Usage: cf_lint <dir> [<dir>...]
//        cf_lint --docs <repo_root>
//        cf_lint --suppressions-baseline <baseline_file> <dir> [<dir>...]
//
// In the default (source) mode, walks every .h/.cc file under the given
// directories and enforces the repo's coding invariants that the compiler
// cannot:
//
//   no-rand              libc rand()/srand() — all randomness must go through
//                        util/rng.h so runs are seedable and reproducible.
//   no-cout              std::cout/std::cerr in library code — the library
//                        logs through CF_LOG and returns data; only tools/,
//                        tests/ and bench/ own stdout.
//   no-naked-new-array   naked `new T[n]` — raw array news leak on every
//                        early return; use std::vector or std::unique_ptr.
//   unchecked-data-index raw `.data()[i]` indexing with no CF_CHECK* in the
//                        preceding window (20 lines) — pointer indexing
//                        bypasses the debug bounds of at()/set(), so the
//                        bounds must be established nearby.
//   include-cycle        #include cycles among project headers (quoted
//                        includes), found by DFS over the include graph.
//   graph-executor-tape-free
//                        src/graph/executor* must not include tensor/ops.h
//                        or tensor/nn.h — the compiled-plan executor is the
//                        tape-free hot path (DESIGN §6f) and may only use
//                        the shared tensor/kernels.h primitives.
//   raw-intrinsics-outside-kernels
//                        <immintrin.h> includes or _mm_*/_mm256_*/_mm512_*
//                        intrinsic calls anywhere but src/tensor/kernels.cc —
//                        all SIMD lives behind the kernels API so the scalar
//                        fallbacks and the runtime CPU dispatch remain the
//                        single portability seam (DESIGN §6g).
//   naked-mutex-outside-sync
//                        std::mutex / std::lock_guard / std::unique_lock /
//                        std::condition_variable (and their <mutex> /
//                        <condition_variable> includes) anywhere but inside
//                        util/sync.* suppressions — all locking goes through
//                        cf::Mutex so every acquisition is annotated for the
//                        Clang thread-safety analysis and hooked into the
//                        lock-order validator (DESIGN §6h).
//   unannotated-guarded-member
//                        member/variable declarations following a cf::Mutex
//                        member (until the first blank line, brace or access
//                        specifier) must carry CF_GUARDED_BY; atomics,
//                        cf::CondVar, cf::Mutex and std::thread members are
//                        exempt. Keeps the "every guarded member is
//                        annotated" invariant from rotting as structs grow.
//   implicit-seqcst-atomic
//                        atomic .load/.store/.exchange/.fetch_*/
//                        .compare_exchange_* calls must spell an explicit
//                        std::memory_order — the seq_cst default hides the
//                        cost and the intent on hot paths (metrics and
//                        telemetry are documented as relaxed).
//   blocking-io-outside-net
//                        global-scope ::read/::write/::recv/::send/::accept/
//                        ::connect calls anywhere but util/net.cc — all
//                        socket I/O goes through the util/net helpers so the
//                        serving layers stay nonblocking state machines
//                        (DESIGN §6i) instead of regressing into
//                        thread-per-connection blocking loops.
//
// In --docs mode, checks the committed markdown (README.md, DESIGN.md,
// docs/ARCHITECTURE.md, docs/OPERATIONS.md, CHANGES.md) against the tree so
// the documentation cannot rot:
//
//   stale-path           every `src/...`, `tools/...`, `bench/...`,
//                        `tests/...`, `docs/...` path mentioned in a doc must
//                        exist (supports `*` globs, `{h,cc}` brace lists and
//                        extensionless module/target names).
//   unknown-flag         every `--flag` mentioned must appear as a "flag"
//                        string literal in the sources (FlagParser keys), or
//                        be on the short external-tool allowlist (cmake,
//                        ctest, …).
//   unknown-env-var      every `CF_*` environment variable mentioned must
//                        appear verbatim in the sources.
//   stale-metric         every dotted metric-style token under a subsystem
//                        prefix from src/util/metric_names.h (serve., slo.,
//                        router., plan., …) must be a constant there, a
//                        prefix of one, or a dotted literal still present in
//                        the sources — renaming a metric without updating
//                        the runbook (docs/OPERATIONS.md) fails the check.
//
// --docs also prints a warn-only doc-coverage count for the public headers
// of src/core and src/serve (top-level classes/structs missing a `///` doc
// comment); warnings never affect the exit status.
//
// A finding on a line carrying the comment `// cf-lint: allow(<rule>)` is
// suppressed; the suppression names exactly one rule and documents itself at
// the offending site. Exit status is 1 if any finding survives, 0 otherwise,
// 2 on usage/IO errors — so the binary doubles as a ctest test (label
// `lint`).
//
// The lint is line-based on purpose: the rules target idioms that are
// textually stable in this codebase, and a lexer-free checker stays fast
// enough to run on every ctest invocation.

#include <algorithm>
#include <cctype>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace fs = std::filesystem;

namespace {

struct Finding {
  std::string file;
  int line = 0;  // 1-based; 0 for file-level findings (cycles)
  std::string rule;
  std::string message;
};

/// True when line[pos] starts an identifier-boundary occurrence of `word`
/// (no [A-Za-z0-9_] immediately before or after).
bool IsWordAt(const std::string& line, size_t pos, const std::string& word) {
  if (pos > 0) {
    const char before = line[pos - 1];
    if (std::isalnum(static_cast<unsigned char>(before)) || before == '_') {
      return false;
    }
  }
  const size_t end = pos + word.size();
  if (end < line.size()) {
    const char after = line[end];
    if (std::isalnum(static_cast<unsigned char>(after)) || after == '_') {
      return false;
    }
  }
  return true;
}

/// First identifier-boundary occurrence of `word`, or npos.
size_t FindWord(const std::string& line, const std::string& word) {
  size_t pos = line.find(word);
  while (pos != std::string::npos) {
    if (IsWordAt(line, pos, word)) return pos;
    pos = line.find(word, pos + 1);
  }
  return std::string::npos;
}

/// Strips a trailing // comment (naive: does not parse string literals, which
/// is fine for the idioms linted here) and returns the code part.
std::string CodePart(const std::string& line) {
  const size_t pos = line.find("//");
  return pos == std::string::npos ? line : line.substr(0, pos);
}

/// True when the line carries `// cf-lint: allow(<rule>)` for this rule.
bool Suppressed(const std::string& line, const std::string& rule) {
  const size_t pos = line.find("cf-lint: allow(");
  if (pos == std::string::npos) return false;
  const size_t open = line.find('(', pos);
  const size_t close = line.find(')', open);
  if (close == std::string::npos) return false;
  return line.substr(open + 1, close - open - 1) == rule;
}

/// `new <type>[` — a naked array new. Placement/array forms through smart
/// pointers don't match because they don't spell `new T[`.
bool HasNakedNewArray(const std::string& code) {
  size_t pos = code.find("new");
  while (pos != std::string::npos) {
    if (IsWordAt(code, pos, "new")) {
      size_t i = pos + 3;
      while (i < code.size() && std::isspace(static_cast<unsigned char>(code[i]))) ++i;
      // Consume a type-ish token: identifiers, ::, <>, spaces between them.
      size_t j = i;
      while (j < code.size() &&
             (std::isalnum(static_cast<unsigned char>(code[j])) ||
              code[j] == '_' || code[j] == ':' || code[j] == '<' ||
              code[j] == '>' || code[j] == ',' || code[j] == ' ')) {
        ++j;
      }
      if (j > i && j < code.size() && code[j] == '[') return true;
    }
    pos = code.find("new", pos + 1);
  }
  return false;
}

/// Path of a quoted #include directive, or "" if the line is not one.
std::string QuotedInclude(const std::string& line) {
  size_t i = 0;
  while (i < line.size() && std::isspace(static_cast<unsigned char>(line[i]))) ++i;
  if (i >= line.size() || line[i] != '#') return "";
  ++i;
  while (i < line.size() && std::isspace(static_cast<unsigned char>(line[i]))) ++i;
  if (line.compare(i, 7, "include") != 0) return "";
  const size_t open = line.find('"', i + 7);
  if (open == std::string::npos) return "";
  const size_t close = line.find('"', open + 1);
  if (close == std::string::npos) return "";
  return line.substr(open + 1, close - open - 1);
}

/// Leading/trailing-whitespace trim.
std::string Trim(const std::string& s) {
  size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

/// Raw standard-library synchronization tokens banned outside util/sync.*
/// (suppressions inside sync.{h,cc} document the one legitimate home).
constexpr const char* kNakedMutexTokens[] = {
    "std::mutex",       "std::recursive_mutex", "std::timed_mutex",
    "std::shared_mutex", "std::lock_guard",     "std::unique_lock",
    "std::scoped_lock", "std::condition_variable",
    "<mutex>",          "<condition_variable>", "<shared_mutex>",
};

/// Blocking I/O syscalls whose global-scope spellings are confined to
/// util/net.cc (the sanctioned socket-helper TU).
constexpr const char* kBlockingIoCalls[] = {
    "::read(", "::write(", "::recv(", "::send(", "::accept(", "::connect(",
};

/// Atomic member functions whose one-argument form defaults to seq_cst.
constexpr const char* kAtomicOps[] = {
    "load(",       "store(",     "exchange(",
    "fetch_add(",  "fetch_sub(", "fetch_and(",
    "fetch_or(",   "fetch_xor(", "compare_exchange_weak(",
    "compare_exchange_strong(",
};

class Linter {
 public:
  void LintFile(const fs::path& path, const fs::path& root) {
    std::ifstream in(path);
    if (!in) {
      std::cerr << "cf_lint: cannot read " << path.string() << "\n";
      io_error_ = true;
      return;
    }
    std::vector<std::string> lines;
    for (std::string line; std::getline(in, line);) lines.push_back(line);

    // Key headers by their include path (path relative to the lint root's
    // parent, e.g. "tensor/ops.h" for src/tensor/ops.h) so the include graph
    // edges match the quoted #include spellings.
    const std::string rel = fs::relative(path, root).generic_string();
    const std::string display = path.generic_string();
    if (path.extension() == ".h") {
      header_lines_[rel] = display;
    }

    // Most recent line index (0-based) holding a CF_CHECK*/CF_LOG guard, for
    // the unchecked-data-index window.
    int last_check = -1000;
    for (size_t n = 0; n < lines.size(); ++n) {
      const std::string& raw = lines[n];
      const std::string code = CodePart(raw);
      const int lineno = static_cast<int>(n) + 1;

      if (code.find("CF_CHECK") != std::string::npos) {
        last_check = static_cast<int>(n);
      }

      const std::string inc = QuotedInclude(code);
      if (!inc.empty()) includes_[rel].push_back(inc);

      auto report = [&](const std::string& rule, const std::string& message) {
        if (Suppressed(raw, rule)) return;
        findings_.push_back({display, lineno, rule, message});
      };

      if (!inc.empty() && rel.rfind("graph/executor", 0) == 0 &&
          (inc == "tensor/ops.h" || inc == "tensor/nn.h")) {
        report("graph-executor-tape-free",
               "the compiled-plan executor must stay off the tape layer; "
               "replace " + inc + " with tensor/kernels.h primitives");
      }

      // SIMD containment: vector intrinsics outside the kernels TU would
      // fork the portability seam — every new user would need its own scalar
      // fallback and CPU dispatch. The immintrin.h include is an angle
      // include, so QuotedInclude() above does not see it.
      if (rel != "tensor/kernels.cc") {
        bool raw_simd = code.find("immintrin.h") != std::string::npos;
        for (const char* prefix : {"_mm_", "_mm256_", "_mm512_"}) {
          if (raw_simd) break;
          size_t pos = code.find(prefix);
          while (pos != std::string::npos) {
            const char before = pos > 0 ? code[pos - 1] : ' ';
            if (!std::isalnum(static_cast<unsigned char>(before)) &&
                before != '_') {
              raw_simd = true;
              break;
            }
            pos = code.find(prefix, pos + 1);
          }
        }
        if (raw_simd) {
          report("raw-intrinsics-outside-kernels",
                 "raw SIMD intrinsics belong in tensor/kernels.cc behind the "
                 "dispatched kernels API");
        }
      }

      if (FindWord(code, "rand") != std::string::npos &&
          code.find("rand()") != std::string::npos) {
        report("no-rand",
               "libc rand() is not seedable per-run; use util/rng.h");
      }
      if (FindWord(code, "srand") != std::string::npos) {
        report("no-rand", "srand() seeds global libc state; use util/rng.h");
      }
      if (code.find("std::cout") != std::string::npos ||
          code.find("std::cerr") != std::string::npos) {
        report("no-cout",
               "library code must log via CF_LOG, not std::cout/std::cerr");
      }
      if (HasNakedNewArray(code)) {
        report("no-naked-new-array",
               "naked new[] leaks on early return; use std::vector");
      }
      if (code.find(".data()[") != std::string::npos &&
          static_cast<int>(n) - last_check > kCheckWindow) {
        std::ostringstream os;
        os << "raw .data()[...] indexing with no CF_CHECK in the preceding "
           << kCheckWindow << " lines";
        report("unchecked-data-index", os.str());
      }

      // Socket I/O goes through util/net (DESIGN §6i): a blocking ::read
      // in serving code is exactly how the pre-PR-10 listener ended up
      // unable to accept while one connection dribbled a request in.
      if (rel != "util/net.cc") {
        for (const char* call : kBlockingIoCalls) {
          size_t pos = code.find(call);
          bool hit = false;
          while (pos != std::string::npos && !hit) {
            // Global-scope spelling only: "std::read(" has an identifier
            // before the "::" and is someone else's function.
            const char before = pos > 0 ? code[pos - 1] : ' ';
            if (!std::isalnum(static_cast<unsigned char>(before)) &&
                before != '_' && before != ':') {
              hit = true;
            }
            pos = code.find(call, pos + 1);
          }
          if (hit) {
            report("blocking-io-outside-net",
                   std::string(call) +
                       "...) outside util/net.cc; use the util/net.h "
                       "helpers so socket I/O stays behind the nonblocking "
                       "seam");
            break;
          }
        }
      }

      // Locking goes through the annotated cf::Mutex layer (DESIGN §6h); a
      // raw std::mutex is invisible to both the Clang thread-safety check
      // and the lock-order validator.
      for (const char* token : kNakedMutexTokens) {
        if (code.find(token) != std::string::npos) {
          report("naked-mutex-outside-sync",
                 std::string(token) +
                     " outside util/sync.*; use cf::Mutex / cf::MutexLock / "
                     "cf::CondVar so the acquisition is annotated and "
                     "order-validated");
          break;
        }
      }

      // Atomic ops must spell their memory order: the statement (this line
      // through the terminating ';', a few lines of lookahead for wrapped
      // calls) must mention std::memory_order_*.
      for (const char* op : kAtomicOps) {
        size_t pos = code.find(op);
        bool hit = false;
        while (pos != std::string::npos && !hit) {
          const char before = pos > 0 ? code[pos - 1] : ' ';
          if (before == '.' || before == '>') {
            std::string stmt = code;
            for (size_t m = n + 1;
                 m < lines.size() && m <= n + 3 &&
                 stmt.find(';') == std::string::npos;
                 ++m) {
              stmt += CodePart(lines[m]);
            }
            if (stmt.find("memory_order") == std::string::npos) hit = true;
          }
          pos = code.find(op, pos + 1);
        }
        if (hit) {
          report("implicit-seqcst-atomic",
                 std::string("atomic ") + op +
                     "...) without an explicit std::memory_order — the "
                     "seq_cst default hides intent; spell the order (relaxed "
                     "for counters, acquire/release for handoffs)");
          break;
        }
      }

      // Metric names must come from util/metric_names.h: a typo'd dotted
      // literal silently registers a brand-new, forever-empty series that
      // no test can catch. Flags Get{Counter,Gauge,Histogram}("...") on the
      // metrics and telemetry registries alike.
      for (const char* getter : {"GetCounter", "GetGauge", "GetHistogram"}) {
        const size_t pos = FindWord(code, getter);
        if (pos == std::string::npos) continue;
        size_t i = pos + std::strlen(getter);
        if (i >= code.size() || code[i] != '(') continue;
        ++i;
        while (i < code.size() &&
               std::isspace(static_cast<unsigned char>(code[i]))) {
          ++i;
        }
        if (i < code.size() && code[i] == '"') {
          report("metric-name-literal",
                 std::string(getter) +
                     " takes a string literal; name the metric through a "
                     "util/metric_names.h constant instead");
        }
      }
    }

    CheckGuardedMembers(lines, rel, display);
  }

  /// unannotated-guarded-member: declarations following a `cf::Mutex name...;`
  /// member, up to the first blank line / closing brace / access specifier /
  /// non-declaration statement, must carry CF_GUARDED_BY. Atomics (their own
  /// synchronization), cf::CondVar / cf::Mutex (lock machinery) and
  /// std::thread (joined, not guarded) are exempt — anything else sitting
  /// next to a mutex is presumed protected by it, and an unannotated
  /// protected member is invisible to the Clang thread-safety analysis.
  void CheckGuardedMembers(const std::vector<std::string>& lines,
                           const std::string& rel, const std::string& display) {
    if (rel == "util/sync.h" || rel == "util/sync.cc") return;
    for (size_t n = 0; n < lines.size(); ++n) {
      const std::string code = CodePart(lines[n]);
      const size_t pos = FindWord(code, "cf::Mutex");
      if (pos == std::string::npos) continue;
      // Only value declarations open a guarded block; pointers/references,
      // heap news and function signatures do not declare adjacent members.
      if (code.find("cf::Mutex*") != std::string::npos ||
          code.find("cf::Mutex&") != std::string::npos ||
          code.find("new cf::Mutex") != std::string::npos ||
          code.find(';') == std::string::npos) {
        continue;
      }
      std::string stmt;
      bool suppressed = false;
      int stmt_line = 0;
      for (size_t m = n + 1; m < lines.size(); ++m) {
        const std::string& raw = lines[m];
        std::string codem = Trim(CodePart(raw));
        if (stmt.empty()) {
          if (codem.empty()) {
            if (Trim(raw).empty()) break;  // blank line ends the block
            continue;                      // comment-only line
          }
          if (codem[0] == '}' || codem.rfind("public", 0) == 0 ||
              codem.rfind("private", 0) == 0 ||
              codem.rfind("protected", 0) == 0 ||
              codem.rfind("return", 0) == 0) {
            break;
          }
          stmt_line = static_cast<int>(m) + 1;
        }
        stmt += (stmt.empty() ? "" : " ") + codem;
        suppressed =
            suppressed || Suppressed(raw, "unannotated-guarded-member");
        if (codem.find(';') == std::string::npos) continue;  // wrapped decl
        const bool exempt = stmt.find("CF_GUARDED_BY") != std::string::npos ||
                            stmt.find("CF_PT_GUARDED_BY") != std::string::npos ||
                            stmt.find("std::atomic") != std::string::npos ||
                            stmt.find("cf::CondVar") != std::string::npos ||
                            stmt.find("cf::Mutex") != std::string::npos ||
                            stmt.find("std::thread") != std::string::npos ||
                            stmt.rfind("using ", 0) == 0 ||
                            stmt.rfind("static ", 0) == 0;
        // A parenthesis in an unannotated statement means a function
        // declaration or executable code — the member block is over.
        if (!exempt && stmt.find('(') != std::string::npos) break;
        if (!exempt && !suppressed) {
          findings_.push_back(
              {display, stmt_line, "unannotated-guarded-member",
               "member declared next to a cf::Mutex without CF_GUARDED_BY; "
               "annotate it (or justify with a suppression) so the "
               "thread-safety analysis can see the protocol"});
        }
        stmt.clear();
        suppressed = false;
      }
    }
  }

  /// DFS over the quoted-include graph restricted to headers seen under the
  /// lint roots; any back edge is a cycle.
  void CheckIncludeCycles() {
    std::map<std::string, int> state;  // 0 unvisited, 1 on stack, 2 done
    std::vector<std::string> stack;
    for (const auto& entry : header_lines_) {
      if (state[entry.first] == 0) Dfs(entry.first, state, stack);
    }
  }

  int Report() const {
    for (const Finding& f : findings_) {
      std::cerr << f.file;
      if (f.line > 0) std::cerr << ":" << f.line;
      std::cerr << ": [" << f.rule << "] " << f.message << "\n";
    }
    if (io_error_) return 2;
    if (!findings_.empty()) {
      std::cerr << "cf_lint: " << findings_.size() << " finding(s)\n";
      return 1;
    }
    return 0;
  }

  bool io_error() const { return io_error_; }

 private:
  static constexpr int kCheckWindow = 20;

  void Dfs(const std::string& node, std::map<std::string, int>& state,
           std::vector<std::string>& stack) {
    state[node] = 1;
    stack.push_back(node);
    auto it = includes_.find(node);
    if (it != includes_.end()) {
      for (const std::string& dep : it->second) {
        if (header_lines_.count(dep) == 0) continue;  // outside the lint roots
        if (state[dep] == 1) {
          std::ostringstream os;
          os << "include cycle: ";
          const auto pos = std::find(stack.begin(), stack.end(), dep);
          for (auto p = pos; p != stack.end(); ++p) os << *p << " -> ";
          os << dep;
          findings_.push_back(
              {header_lines_.at(dep), 0, "include-cycle", os.str()});
        } else if (state[dep] == 0) {
          Dfs(dep, state, stack);
        }
      }
    }
    stack.pop_back();
    state[node] = 2;
  }

  std::map<std::string, std::vector<std::string>> includes_;
  std::map<std::string, std::string> header_lines_;  // include path -> display
  std::vector<Finding> findings_;
  bool io_error_ = false;
};

// --- Doc-drift checking (--docs mode) ---------------------------------------

/// The committed markdown kept honest against the tree. Missing files are
/// skipped (ARCHITECTURE.md predates some checkouts), present ones must be
/// clean.
constexpr const char* kDocFiles[] = {"README.md", "DESIGN.md",
                                     "docs/ARCHITECTURE.md",
                                     "docs/OPERATIONS.md", "CHANGES.md"};

/// Directory prefixes that mark a doc token as a repo path claim.
constexpr const char* kPathPrefixes[] = {"src/",   "tools/", "bench/",
                                         "tests/", "docs/",  "examples/"};

/// Flags that legitimately belong to external tools (cmake, ctest, …), not
/// to a ChainsFormer binary's FlagParser.
const std::set<std::string>& ExternalFlags() {
  static const std::set<std::string> flags = {
      "build", "target", "output-on-failure", "parallel", "config",
      "test-dir", "label-regex", "tests-regex", "gtest_filter",
      "benchmark_filter", "version", "help",
  };
  return flags;
}

bool IsPathChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '.' ||
         c == '/' || c == '*' || c == '{' || c == '}' || c == ',' || c == '-';
}

/// Expands one level of `{a,b,c}` brace alternatives ("serialize.{h,cc}").
std::vector<std::string> ExpandBraces(const std::string& token) {
  const size_t open = token.find('{');
  if (open == std::string::npos) return {token};
  const size_t close = token.find('}', open);
  if (close == std::string::npos) return {token};
  std::vector<std::string> out;
  std::string alt;
  std::istringstream alts(token.substr(open + 1, close - open - 1));
  while (std::getline(alts, alt, ',')) {
    out.push_back(token.substr(0, open) + alt + token.substr(close + 1));
  }
  return out;
}

class DocsChecker {
 public:
  explicit DocsChecker(const fs::path& root) : root_(root) {
    CollectTree();
    CollectSources();
    CollectMetricNames();
  }

  void CheckDoc(const std::string& doc_rel) {
    std::ifstream in(root_ / doc_rel);
    if (!in) return;  // absent docs are not drift
    ++docs_checked_;
    std::string line;
    for (int lineno = 1; std::getline(in, line); ++lineno) {
      CheckPaths(doc_rel, lineno, line);
      CheckFlags(doc_rel, lineno, line);
      CheckEnvVars(doc_rel, lineno, line);
      CheckMetricNames(doc_rel, lineno, line);
    }
  }

  /// Warn-only coverage of /// doc comments on top-level classes/structs in
  /// the public core + serve headers. Never affects the exit status.
  void ReportDocCoverage() {
    int total = 0, documented = 0;
    std::vector<std::string> missing;
    for (const char* dir : {"src/core", "src/graph", "src/serve"}) {
      std::error_code ec;
      for (const auto& entry : fs::directory_iterator(root_ / dir, ec)) {
        if (entry.path().extension() != ".h") continue;
        std::ifstream in(entry.path());
        std::vector<std::string> lines;
        for (std::string l; std::getline(in, l);) lines.push_back(l);
        for (size_t i = 0; i < lines.size(); ++i) {
          const std::string& l = lines[i];
          // Top-level definitions only (column 0, with a body on this or a
          // later line; forward declarations end in ';' immediately).
          if (l.rfind("class ", 0) != 0 && l.rfind("struct ", 0) != 0) continue;
          if (l.find(';') != std::string::npos &&
              l.find('{') == std::string::npos) {
            continue;
          }
          ++total;
          bool has_doc = false;
          for (size_t back = i; back > 0; --back) {
            const std::string& prev = lines[back - 1];
            if (prev.rfind("///", 0) == 0) has_doc = true;
            if (prev.rfind("//", 0) != 0) break;  // non-comment line above
          }
          if (has_doc) {
            ++documented;
          } else {
            std::istringstream name(l);
            std::string kw, id;
            name >> kw >> id;
            missing.push_back(fs::relative(entry.path(), root_).generic_string() +
                              ": " + id);
          }
        }
      }
    }
    std::cerr << "cf_lint docs: /// coverage " << documented << "/" << total
              << " top-level types in src/core + src/graph + src/serve "
                 "headers\n";
    for (const std::string& m : missing) {
      std::cerr << "cf_lint docs: warning: undocumented type " << m << "\n";
    }
  }

  int Report() const {
    for (const Finding& f : findings_) {
      std::cerr << f.file << ":" << f.line << ": [" << f.rule << "] "
                << f.message << "\n";
    }
    if (!findings_.empty()) {
      std::cerr << "cf_lint docs: " << findings_.size() << " finding(s)\n";
      return 1;
    }
    std::cout << "cf_lint docs: " << docs_checked_ << " docs clean\n";
    return 0;
  }

 private:
  void CollectTree() {
    for (const char* prefix : kPathPrefixes) {
      const fs::path dir = root_ / std::string(prefix, strlen(prefix) - 1);
      std::error_code ec;
      if (!fs::is_directory(dir, ec)) continue;
      tree_.insert(fs::relative(dir, root_).generic_string());
      for (const auto& entry : fs::recursive_directory_iterator(dir)) {
        tree_.insert(fs::relative(entry.path(), root_).generic_string());
      }
    }
  }

  /// Concatenates every source file that can define a FlagParser key or read
  /// a CF_* environment variable, for string-literal existence checks.
  void CollectSources() {
    for (const char* dir : {"src", "tools", "bench", "tests"}) {
      std::error_code ec;
      if (!fs::is_directory(root_ / dir, ec)) continue;
      for (const auto& entry : fs::recursive_directory_iterator(root_ / dir)) {
        if (!entry.is_regular_file()) continue;
        const std::string ext = entry.path().extension().string();
        if (ext != ".h" && ext != ".cc" && ext != ".sh") continue;
        std::ifstream in(entry.path());
        std::ostringstream text;
        text << in.rdbuf();
        source_text_ += text.str();
      }
    }
  }

  /// Parses the dotted string literals out of src/util/metric_names.h —
  /// the single source of truth for metric names. Docs are checked against
  /// this set, so renaming a metric without updating the runbook fails the
  /// docs test instead of leaving operators grepping for a dead series.
  void CollectMetricNames() {
    std::ifstream in(root_ / "src/util/metric_names.h");
    if (!in) return;  // no registry, no metric checking
    for (std::string line; std::getline(in, line);) {
      size_t open = line.find('"');
      while (open != std::string::npos) {
        const size_t close = line.find('"', open + 1);
        if (close == std::string::npos) break;
        const std::string name = line.substr(open + 1, close - open - 1);
        const size_t dot = name.find('.');
        if (dot != std::string::npos && dot > 0) {
          metric_names_.insert(name);
          metric_prefixes_.insert(name.substr(0, dot));
        }
        open = line.find('"', close + 1);
      }
    }
  }

  bool MatchesGlob(const std::string& pattern) const {
    // Translate the `*` glob (within one path segment) to a linear scan; the
    // tree is small enough that regex machinery is not worth it.
    const size_t star = pattern.find('*');
    if (star == std::string::npos) return tree_.count(pattern) > 0;
    const std::string prefix = pattern.substr(0, star);
    const std::string suffix = pattern.substr(star + 1);
    for (const std::string& p : tree_) {
      if (p.size() < prefix.size() + suffix.size()) continue;
      if (p.compare(0, prefix.size(), prefix) != 0) continue;
      if (p.compare(p.size() - suffix.size(), suffix.size(), suffix) != 0)
        continue;
      // The starred span must not cross a directory boundary.
      const std::string mid =
          p.substr(prefix.size(), p.size() - prefix.size() - suffix.size());
      if (mid.find('/') == std::string::npos) return true;
    }
    return false;
  }

  bool PathExists(const std::string& token) const {
    for (const std::string& variant : ExpandBraces(token)) {
      std::string t = variant;
      while (!t.empty() && t.back() == '/') t.pop_back();
      if (MatchesGlob(t)) continue;
      // Extensionless module/target names ("src/baselines/simple",
      // "bench/bench_serve") accept any file extension.
      const bool has_ext =
          t.find('.', t.find_last_of('/') + 1) != std::string::npos;
      if (!has_ext && MatchesGlob(t + ".*")) continue;
      return false;
    }
    return true;
  }

  void CheckPaths(const std::string& doc, int lineno, const std::string& line) {
    for (const char* prefix : kPathPrefixes) {
      const size_t plen = strlen(prefix);
      size_t pos = line.find(prefix);
      while (pos != std::string::npos) {
        const bool boundary = pos == 0 || !IsPathChar(line[pos - 1]);
        if (boundary) {
          size_t end = pos;
          while (end < line.size() && IsPathChar(line[end])) ++end;
          std::string token = line.substr(pos, end - pos);
          // Trailing sentence punctuation is not part of the path.
          while (!token.empty() &&
                 (token.back() == '.' || token.back() == ',' ||
                  token.back() == '-')) {
            token.pop_back();
          }
          if (token.size() > plen && !PathExists(token)) {
            findings_.push_back({doc, lineno, "stale-path",
                                 "path does not exist in the tree: " + token});
          }
          pos = line.find(prefix, end);
        } else {
          pos = line.find(prefix, pos + 1);
        }
      }
    }
  }

  void CheckFlags(const std::string& doc, int lineno, const std::string& line) {
    size_t pos = line.find("--");
    while (pos != std::string::npos) {
      const bool boundary = pos == 0 || (line[pos - 1] != '-');
      size_t end = pos + 2;
      while (end < line.size() &&
             (std::islower(static_cast<unsigned char>(line[end])) ||
              std::isdigit(static_cast<unsigned char>(line[end])) ||
              line[end] == '-' || line[end] == '_')) {
        ++end;
      }
      // A flag starts with a lowercase letter ("--trace-json"); anything else
      // ("--", "---", em-dash art) is prose.
      if (boundary && end > pos + 2 &&
          std::islower(static_cast<unsigned char>(line[pos + 2]))) {
        const std::string name = line.substr(pos + 2, end - pos - 2);
        // Known if it is a FlagParser key ("docs") or a direct-argv literal
        // ("--docs", the idiom of binaries that do not use FlagParser).
        const bool known =
            source_text_.find("\"" + name + "\"") != std::string::npos ||
            source_text_.find("\"--" + name + "\"") != std::string::npos ||
            ExternalFlags().count(name) > 0;
        if (!known) {
          findings_.push_back(
              {doc, lineno, "unknown-flag",
               "--" + name + " is not a FlagParser key in any source file"});
        }
      }
      pos = line.find("--", end);
    }
  }

  /// stale-metric: a dotted token whose first segment matches a metric
  /// subsystem prefix (serve., slo., router., plan., ...) must either be a
  /// name from src/util/metric_names.h, a prefix of one (docs legitimately
  /// say "the serve.phase histograms"), or a dotted string literal that
  /// still exists in the sources (cf::Mutex site names share the dotted
  /// namespace). Renaming a metric without touching the runbook fails here.
  void CheckMetricNames(const std::string& doc, int lineno,
                        const std::string& line) {
    auto is_token_char = [](char c) {
      return std::islower(static_cast<unsigned char>(c)) ||
             std::isdigit(static_cast<unsigned char>(c)) || c == '_' ||
             c == '.';
    };
    for (size_t pos = 0; pos < line.size();) {
      if (!is_token_char(line[pos])) {
        ++pos;
        continue;
      }
      const bool boundary =
          pos == 0 ||
          (!std::isalnum(static_cast<unsigned char>(line[pos - 1])) &&
           line[pos - 1] != '_' && line[pos - 1] != '.' &&
           line[pos - 1] != '/' && line[pos - 1] != '-');
      size_t end = pos;
      while (end < line.size() && is_token_char(line[end])) ++end;
      std::string token = line.substr(pos, end - pos);
      pos = end;
      if (!boundary) continue;
      // Trailing sentence punctuation is not part of the name.
      while (!token.empty() && token.back() == '.') token.pop_back();
      const size_t dot = token.find('.');
      if (dot == std::string::npos || dot == 0) continue;
      if (metric_prefixes_.count(token.substr(0, dot)) == 0) continue;
      // Path-like tokens ("serve.cc") are the stale-path rule's business.
      const std::string last = token.substr(token.find_last_of('.') + 1);
      if (last == "h" || last == "cc" || last == "md" || last == "json" ||
          last == "sh" || last == "tsv" || last == "cfsm") {
        continue;
      }
      if (metric_names_.count(token) > 0) continue;
      const auto at_or_after = metric_names_.lower_bound(token);
      if (at_or_after != metric_names_.end() &&
          at_or_after->compare(0, token.size(), token) == 0) {
        continue;  // prefix of a real name ("serve.phase")
      }
      if (source_text_.find("\"" + token) != std::string::npos) {
        continue;  // a live dotted literal (mutex site names etc.)
      }
      findings_.push_back(
          {doc, lineno, "stale-metric",
           token + " is not a metric in src/util/metric_names.h (nor a "
                   "dotted literal in the sources)"});
    }
  }

  void CheckEnvVars(const std::string& doc, int lineno, const std::string& line) {
    size_t pos = line.find("CF_");
    while (pos != std::string::npos) {
      const bool boundary =
          pos == 0 || !(std::isalnum(static_cast<unsigned char>(line[pos - 1])) ||
                        line[pos - 1] == '_');
      size_t end = pos + 3;
      while (end < line.size() &&
             (std::isupper(static_cast<unsigned char>(line[end])) ||
              std::isdigit(static_cast<unsigned char>(line[end])) ||
              line[end] == '_')) {
        ++end;
      }
      // Needs at least one character after CF_ (skips the literal "CF_*").
      if (boundary && end > pos + 3) {
        const std::string name = line.substr(pos, end - pos);
        if (source_text_.find(name) == std::string::npos) {
          findings_.push_back({doc, lineno, "unknown-env-var",
                               name + " does not appear in any source file"});
        }
      }
      pos = line.find("CF_", end);
    }
  }

  fs::path root_;
  std::set<std::string> tree_;
  std::string source_text_;
  std::set<std::string> metric_names_;     // full names from metric_names.h
  std::set<std::string> metric_prefixes_;  // their first dotted segments
  std::vector<Finding> findings_;
  int docs_checked_ = 0;
};

// --- Suppressions-baseline checking (--suppressions-baseline mode) ----------

/// Counts `// cf-lint: allow(<rule>)` suppressions per rule across the .h/.cc
/// files under `roots` and compares against a checked-in baseline (lines of
/// `<rule> <count>`, `#` comments allowed). A count above baseline fails:
/// new suppressions must be paid for by an explicit baseline edit in the same
/// change, so the escape hatch stays reviewed. Counts below baseline are
/// reported as a nudge to ratchet the file down.
int SuppressionsMain(const fs::path& baseline_path,
                     const std::vector<fs::path>& roots) {
  std::map<std::string, int> counts;
  int files = 0;
  for (const fs::path& root : roots) {
    std::error_code ec;
    if (!fs::is_directory(root, ec)) {
      std::cerr << "cf_lint: not a directory: " << root.string() << "\n";
      return 2;
    }
    for (const auto& entry : fs::recursive_directory_iterator(root)) {
      if (!entry.is_regular_file()) continue;
      const fs::path& p = entry.path();
      if (p.extension() != ".h" && p.extension() != ".cc") continue;
      std::ifstream in(p);
      if (!in) {
        std::cerr << "cf_lint: cannot read " << p.string() << "\n";
        return 2;
      }
      ++files;
      for (std::string line; std::getline(in, line);) {
        size_t pos = line.find("cf-lint: allow(");
        while (pos != std::string::npos) {
          const size_t open = line.find('(', pos);
          const size_t close = line.find(')', open);
          if (close == std::string::npos) break;
          ++counts[line.substr(open + 1, close - open - 1)];
          pos = line.find("cf-lint: allow(", close);
        }
      }
    }
  }

  std::ifstream in(baseline_path);
  if (!in) {
    std::cerr << "cf_lint: cannot read baseline " << baseline_path.string()
              << "\n";
    return 2;
  }
  std::map<std::string, int> baseline;
  for (std::string line; std::getline(in, line);) {
    const std::string t = Trim(line);
    if (t.empty() || t[0] == '#') continue;
    std::istringstream fields(t);
    std::string rule;
    int count = 0;
    if (fields >> rule >> count) baseline[rule] = count;
  }

  int failures = 0;
  for (const auto& [rule, count] : counts) {
    const auto it = baseline.find(rule);
    const int allowed = it == baseline.end() ? 0 : it->second;
    if (count > allowed) {
      std::cerr << "cf_lint: suppression count for [" << rule << "] grew: "
                << count << " > baseline " << allowed
                << " — remove the new cf-lint: allow(" << rule
                << ") or deliberately raise " << baseline_path.string()
                << "\n";
      ++failures;
    } else if (count < allowed) {
      std::cout << "cf_lint: suppressions for [" << rule << "] shrank to "
                << count << " (baseline " << allowed
                << "); consider ratcheting the baseline down\n";
    }
  }
  if (failures > 0) return 1;
  std::cout << "cf_lint: suppressions within baseline across " << files
            << " files\n";
  return 0;
}

int DocsMain(const fs::path& root) {
  std::error_code ec;
  if (!fs::is_directory(root, ec)) {
    std::cerr << "cf_lint: not a directory: " << root.string() << "\n";
    return 2;
  }
  DocsChecker checker(root);
  for (const char* doc : kDocFiles) checker.CheckDoc(doc);
  checker.ReportDocCoverage();
  return checker.Report();
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::cerr << "usage: cf_lint <dir> [<dir>...] | cf_lint --docs "
                 "<repo_root> | cf_lint --suppressions-baseline "
                 "<baseline_file> <dir> [<dir>...]\n";
    return 2;
  }
  if (std::string(argv[1]) == "--docs") {
    if (argc != 3) {
      std::cerr << "usage: cf_lint --docs <repo_root>\n";
      return 2;
    }
    return DocsMain(argv[2]);
  }
  if (std::string(argv[1]) == "--suppressions-baseline") {
    if (argc < 4) {
      std::cerr << "usage: cf_lint --suppressions-baseline <baseline_file> "
                   "<dir> [<dir>...]\n";
      return 2;
    }
    std::vector<fs::path> roots;
    for (int i = 3; i < argc; ++i) roots.emplace_back(argv[i]);
    return SuppressionsMain(argv[2], roots);
  }
  Linter linter;
  int files = 0;
  for (int i = 1; i < argc; ++i) {
    const fs::path root(argv[i]);
    std::error_code ec;
    if (!fs::is_directory(root, ec)) {
      std::cerr << "cf_lint: not a directory: " << root.string() << "\n";
      return 2;
    }
    for (const auto& entry : fs::recursive_directory_iterator(root)) {
      if (!entry.is_regular_file()) continue;
      const fs::path& p = entry.path();
      if (p.extension() != ".h" && p.extension() != ".cc") continue;
      linter.LintFile(p, root);
      ++files;
    }
  }
  linter.CheckIncludeCycles();
  const int rc = linter.Report();
  if (rc == 0) std::cout << "cf_lint: " << files << " files clean\n";
  return rc;
}
