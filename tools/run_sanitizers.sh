#!/usr/bin/env bash
# Builds the Asan (address+undefined) and Tsan build types and runs the
# test suites that exercise memory- and thread-hazardous paths under each:
#
#   - label `threaded`      — thread pool, threaded kernel dispatch,
#                             lock-free metrics/tracer paths, lock-order
#                             validator tests
#   - label `sanitizer`     — tape sanitizer behavior + death tests
#   - label `observability` — windowed telemetry, request tracing, and the
#                             admin endpoint (HTTP scrape round-trips)
#   - label `quantized`     — int8/bf16 kernels, quantized plan compilation,
#                             and the checkpoint quant block (DESIGN §6g)
#   - label `lint`          — cf_lint source/docs/suppression checks and the
#                             clang -Wthread-safety target; build-type
#                             independent and cheap, included so sanitizer CI
#                             also catches lint/docs-drift regressions
#
# Usage: tools/run_sanitizers.sh [build-dir-prefix]
#
# Build trees default to <repo>/build-asan and <repo>/build-tsan (or
# <prefix>-asan / <prefix>-tsan when a prefix is given) and are reused
# incrementally across runs. Exits non-zero on the first failing suite.

set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
prefix="${1:-${repo_root}/build}"

run_config() {
  local name="$1" build_type="$2" build_dir="${prefix}-$1"
  echo "=== ${name}: configure + build (${build_dir}) ==="
  cmake -B "${build_dir}" -S "${repo_root}" \
    -DCMAKE_BUILD_TYPE="${build_type}" \
    -DCF_KERNELS_NATIVE_ARCH=OFF
  cmake --build "${build_dir}" -j
  echo "=== ${name}: ctest -L 'threaded|sanitizer|observability|quantized|lint' ==="
  ctest --test-dir "${build_dir}" \
    -L 'threaded|sanitizer|observability|quantized|lint' \
    --output-on-failure
}

run_config asan Asan
run_config tsan Tsan

echo "=== sanitizers clean ==="
