#!/usr/bin/env bash
# Compile-time race check: build every TU under src/ with Clang's
# -Wthread-safety analysis promoted to an error. The CF_* macros in
# util/sync.h expand to capability attributes only under Clang, so this
# script is the enforcement point for the annotations (under GCC they are
# no-ops and the regular build proves nothing about locking).
#
# Usage: check_thread_safety.sh <repo_root>
#
# Exit codes: 0 clean, 1 findings, 77 skipped (no clang++ on PATH — ctest
# maps 77 to SKIP via SKIP_RETURN_CODE). Set CF_CLANGXX to point at a
# specific clang++ binary.

set -u

root="${1:?usage: check_thread_safety.sh <repo_root>}"
clangxx="${CF_CLANGXX:-clang++}"

if ! command -v "$clangxx" >/dev/null 2>&1; then
  echo "thread_safety: no clang++ found (set CF_CLANGXX to override); skipping" >&2
  exit 77
fi

if ! "$clangxx" --version 2>/dev/null | grep -qi clang; then
  echo "thread_safety: $clangxx is not clang; skipping" >&2
  exit 77
fi

status=0
checked=0
while IFS= read -r tu; do
  checked=$((checked + 1))
  # -fsyntax-only: the analysis is a frontend pass; no codegen needed.
  if ! "$clangxx" -std=c++20 -fsyntax-only \
      -I "$root/src" \
      -Wthread-safety -Werror=thread-safety \
      "$tu"; then
    status=1
  fi
done < <(find "$root/src" -name '*.cc' | sort)

if [ "$status" -ne 0 ]; then
  echo "thread_safety: findings in the $checked TUs above" >&2
  exit 1
fi
echo "thread_safety: $checked TUs clean under -Wthread-safety"
exit 0
