// ChainsFormer inference server.
//
// Loads a CFSM checkpoint (serve::SaveModel / `chainsformer train
// --checkpoint=...`) and answers newline-delimited JSON queries, either from
// stdin or over a TCP port. Requests from concurrent clients are coalesced
// into micro-batches that ride one masked EncodeBatch pass each (DESIGN §6e).
//
// Request:  {"id": 7, "entity": "person_12", "attribute": "birth_year"}
// Response: {"id": 7, "value": 1956.3, "degraded": false, "source": "model",
//            "latency_us": 412, "batch_size": 5}
//
// Examples:
//   chainsformer_serve --checkpoint=/tmp/model.cfsm \
//       --triples=/tmp/t.tsv --numeric=/tmp/n.tsv --serve-threads=8 < q.ndjson
//   chainsformer_serve --checkpoint=/tmp/model.cfsm \
//       --triples=/tmp/t.tsv --numeric=/tmp/n.tsv --port=8471

#include <atomic>
#include <condition_variable>
#include <cstdio>
#include <cstring>
#include <deque>
#include <iostream>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "kg/loader.h"
#include "serve/checkpoint.h"
#include "serve/service.h"
#include "tensor/checks.h"
#include "util/flags.h"
#include "util/logging.h"
#include "util/metrics.h"
#include "util/trace.h"

namespace chainsformer {
namespace {

int Usage() {
  std::fprintf(
      stderr,
      "usage: chainsformer_serve --checkpoint=PATH --triples=PATH --numeric=PATH\n"
      "  --serve-threads=N    client worker threads for stdin mode (default 4)\n"
      "  --batch-window-us=N  micro-batch coalescing window (default 200)\n"
      "  --deadline-ms=N      per-request deadline; 0 disables (default 50)\n"
      "  --max-batch=N        requests per micro-batch cap (default 32)\n"
      "  --cache-capacity=N   ToC cache entries; 0 disables (default 4096)\n"
      "  --compute-threads=N  dispatcher pool for intra-batch parallelism;\n"
      "                       1 = serial, 0 = hardware threads (default 0)\n"
      "  --static-graph=B     answer from compiled static plans, bitwise\n"
      "                       identical to eager (default true; =false for\n"
      "                       the eager tape; plan.* counters in --stats)\n"
      "  --port=N             serve NDJSON over TCP instead of stdin\n"
      "  --kernel-threads=N   dense kernel workers (default 1)\n"
      "  --seed=N             must match training when the checkpoint is legacy\n"
      "  observability: --metrics-json=PATH --trace-json=PATH --stats\n"
      "                 --check-mode=off|shapes|full\n");
  return 2;
}

// --- Minimal NDJSON request parsing ----------------------------------------
// The request grammar is one flat JSON object per line with string or number
// values; a full JSON parser would be dead weight here.

/// Extracts `"key": <string-or-number>` from a flat JSON object line.
/// Returns false if the key is absent.
bool JsonField(const std::string& line, const std::string& key,
               std::string* out) {
  const std::string needle = "\"" + key + "\"";
  size_t pos = line.find(needle);
  if (pos == std::string::npos) return false;
  pos = line.find(':', pos + needle.size());
  if (pos == std::string::npos) return false;
  ++pos;
  while (pos < line.size() && std::isspace(static_cast<unsigned char>(line[pos])))
    ++pos;
  if (pos >= line.size()) return false;
  if (line[pos] == '"') {
    const size_t end = line.find('"', pos + 1);
    if (end == std::string::npos) return false;
    *out = line.substr(pos + 1, end - pos - 1);
    return true;
  }
  size_t end = pos;
  while (end < line.size() && line[end] != ',' && line[end] != '}') ++end;
  *out = line.substr(pos, end - pos);
  while (!out->empty() && std::isspace(static_cast<unsigned char>(out->back())))
    out->pop_back();
  return !out->empty();
}

std::string EscapeJson(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

/// Resolves one request line against the graph and answers it. Unknown
/// entities/attributes come back as {"error": ...} instead of killing the
/// connection.
std::string HandleLine(const kg::Dataset& dataset, serve::InferenceService& service,
                       const std::string& line) {
  std::string id, entity_name, attribute_name;
  const bool has_id = JsonField(line, "id", &id);
  auto error = [&](const std::string& message) {
    std::string r = "{";
    if (has_id) r += "\"id\": " + id + ", ";
    return r + "\"error\": \"" + EscapeJson(message) + "\"}";
  };
  if (!JsonField(line, "entity", &entity_name) ||
      !JsonField(line, "attribute", &attribute_name)) {
    return error("request needs \"entity\" and \"attribute\"");
  }
  const kg::EntityId entity = dataset.graph.FindEntity(entity_name);
  if (entity < 0) return error("unknown entity: " + entity_name);
  const kg::AttributeId attribute = dataset.graph.FindAttribute(attribute_name);
  if (attribute < 0) return error("unknown attribute: " + attribute_name);

  const serve::ServeResponse resp = service.Predict({entity, attribute});
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "\"value\": %.17g, \"degraded\": %s, \"source\": \"%s\", "
                "\"latency_us\": %lld, \"batch_size\": %d}",
                resp.value, resp.degraded ? "true" : "false",
                resp.source.c_str(), static_cast<long long>(resp.latency_us),
                resp.batch_size);
  std::string r = "{";
  if (has_id) r += "\"id\": " + id + ", ";
  return r + buf;
}

// --- stdin mode ------------------------------------------------------------

int ServeStdin(const kg::Dataset& dataset, serve::InferenceService& service,
               int serve_threads) {
  std::mutex queue_mu, out_mu;
  std::condition_variable queue_cv;
  std::deque<std::string> lines;
  bool done = false;

  auto worker = [&] {
    while (true) {
      std::string line;
      {
        std::unique_lock<std::mutex> lock(queue_mu);
        queue_cv.wait(lock, [&] { return done || !lines.empty(); });
        if (lines.empty()) return;  // done and drained
        line = std::move(lines.front());
        lines.pop_front();
      }
      if (line.empty()) continue;
      const std::string response = HandleLine(dataset, service, line);
      std::lock_guard<std::mutex> lock(out_mu);
      std::printf("%s\n", response.c_str());
    }
  };
  std::vector<std::thread> workers;
  workers.reserve(static_cast<size_t>(serve_threads));
  for (int i = 0; i < serve_threads; ++i) workers.emplace_back(worker);

  std::string line;
  while (std::getline(std::cin, line)) {
    {
      std::lock_guard<std::mutex> lock(queue_mu);
      lines.push_back(std::move(line));
    }
    queue_cv.notify_one();
  }
  {
    std::lock_guard<std::mutex> lock(queue_mu);
    done = true;
  }
  queue_cv.notify_all();
  for (auto& w : workers) w.join();
  std::fflush(stdout);
  return 0;
}

// --- TCP mode --------------------------------------------------------------

/// One thread per connection; batching happens across connections inside
/// InferenceService. Intentionally minimal (no TLS, IPv4 only): the server
/// is a benchmark/demo endpoint, not an internet-facing daemon.
int ServeTcp(const kg::Dataset& dataset, serve::InferenceService& service,
             int port) {
  const int listener = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listener < 0) {
    std::perror("socket");
    return 1;
  }
  const int one = 1;
  ::setsockopt(listener, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::bind(listener, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0 ||
      ::listen(listener, 64) < 0) {
    std::perror("bind/listen");
    ::close(listener);
    return 1;
  }
  std::fprintf(stderr, "serving on 127.0.0.1:%d\n", port);
  std::vector<std::thread> connections;
  while (true) {
    const int fd = ::accept(listener, nullptr, nullptr);
    if (fd < 0) break;
    connections.emplace_back([&dataset, &service, fd] {
      std::string buffer;
      char chunk[4096];
      ssize_t n;
      while ((n = ::read(fd, chunk, sizeof(chunk))) > 0) {
        buffer.append(chunk, static_cast<size_t>(n));
        size_t nl;
        while ((nl = buffer.find('\n')) != std::string::npos) {
          const std::string line = buffer.substr(0, nl);
          buffer.erase(0, nl + 1);
          if (line.empty()) continue;
          const std::string response =
              HandleLine(dataset, service, line) + "\n";
          if (::write(fd, response.data(), response.size()) < 0) break;
        }
      }
      ::close(fd);
    });
  }
  for (auto& c : connections) c.join();
  ::close(listener);
  return 0;
}

int Main(int argc, char** argv) {
  FlagParser flags(argc, argv);
  const std::string checkpoint = flags.GetString("checkpoint");
  const std::string triples = flags.GetString("triples");
  const std::string numeric = flags.GetString("numeric");
  if (checkpoint.empty() || triples.empty() || numeric.empty()) return Usage();

  const std::string metrics_json = flags.GetString("metrics-json");
  const std::string trace_json = flags.GetString("trace-json");
  const bool print_stats = flags.GetBool("stats", false);
  if (!trace_json.empty()) trace::SetEnabled(true);
  tensor::SetCheckMode(tensor::CheckModeFromString(flags.GetString(
      "check-mode", tensor::CheckModeName(tensor::CheckModeFromEnv()))));

  core::ChainsFormerConfig base_config;
  base_config.kernel_threads = static_cast<int>(flags.GetInt("kernel-threads", 1));
  base_config.seed = static_cast<uint64_t>(flags.GetInt("seed", 42));
  base_config.verbose = false;

  const kg::Dataset dataset =
      kg::LoadTsvDataset("serve", triples, numeric, base_config.seed);

  std::unique_ptr<core::ChainsFormerModel> model;
  if (serve::IsModelCheckpoint(checkpoint)) {
    model = serve::LoadModel(dataset, base_config, checkpoint);
  } else {
    // Legacy raw-tensor checkpoint: shapes/seed must come from the flags.
    std::fprintf(stderr,
                 "%s is a legacy CFTN checkpoint; relying on --seed and "
                 "default architecture flags matching training\n",
                 checkpoint.c_str());
    model = std::make_unique<core::ChainsFormerModel>(dataset, base_config);
    if (!model->LoadCheckpoint(checkpoint)) model.reset();
  }
  if (!model) {
    std::fprintf(stderr, "failed to load %s\n", checkpoint.c_str());
    return 1;
  }

  serve::ServeOptions options;
  options.batch_window_us = flags.GetInt("batch-window-us", 200);
  options.max_batch = static_cast<int>(flags.GetInt("max-batch", 32));
  options.deadline_ms = flags.GetInt("deadline-ms", 50);
  options.cache_capacity =
      static_cast<size_t>(flags.GetInt("cache-capacity", 4096));
  options.compute_threads =
      static_cast<int>(flags.GetInt("compute-threads", 0));
  options.use_static_graph = flags.GetBool("static-graph", true);
  serve::InferenceService service(*model, options);

  const int serve_threads = static_cast<int>(flags.GetInt("serve-threads", 4));
  const int port = static_cast<int>(flags.GetInt("port", 0));

  for (const std::string& key : flags.UnreadKeys()) {
    std::fprintf(stderr, "warning: unused flag --%s\n", key.c_str());
  }

  const int rc = port > 0 ? ServeTcp(dataset, service, port)
                          : ServeStdin(dataset, service, serve_threads);

  if (!metrics_json.empty() || print_stats) {
    const metrics::MetricsSnapshot snap =
        metrics::MetricsRegistry::Global().Snapshot();
    if (!metrics_json.empty()) metrics::WriteJsonFile(metrics_json, snap);
    if (print_stats) std::fprintf(stderr, "%s", metrics::SummaryTable(snap).c_str());
  }
  if (!trace_json.empty()) trace::WriteChromeTrace(trace_json);
  return rc;
}

}  // namespace
}  // namespace chainsformer

int main(int argc, char** argv) { return chainsformer::Main(argc, argv); }
