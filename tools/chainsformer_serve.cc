// ChainsFormer inference server.
//
// Loads a CFSM checkpoint (serve::SaveModel / `chainsformer train
// --checkpoint=...`) and answers newline-delimited JSON queries, either from
// stdin or over a TCP port. Requests from concurrent clients are coalesced
// into micro-batches that ride one masked EncodeBatch pass each (DESIGN §6e).
//
// Request:  {"id": 7, "entity": "person_12", "attribute": "birth_year",
//            "trace_id": 12345}        (trace_id optional; else generated)
// Response: {"id": 7, "trace_id": "12345", "value": 1956.3,
//            "degraded": false, "source": "model", "latency_us": 412,
//            "batch_size": 5, "batch_id": 3, "dedup_collapsed": false,
//            "cache_hit": true}
// Admin:    {"cmd": "statusz"} / {"cmd": "healthz"} on the main port, or
//           GET /statusz, /metrics (Prometheus), /healthz on --admin-port.
//
// Three roles (docs/OPERATIONS.md has the topology runbook):
//   * single process (default): load the model, answer everything;
//   * shard (--shards=N --shard-index=I): same, but tag responses with the
//     shard index and count requests this shard does not own on the
//     consistent-hash ring (serve.misrouted);
//   * router (--router=host:port,host:port,...): no model at all — hash each
//     entity to its owning shard, forward, merge, degrade when shards die.
//
// Examples:
//   chainsformer_serve --checkpoint=/tmp/model.cfsm \
//       --triples=/tmp/t.tsv --numeric=/tmp/n.tsv --serve-threads=8 < q.ndjson
//   chainsformer_serve --checkpoint=/tmp/model.cfsm \
//       --triples=/tmp/t.tsv --numeric=/tmp/n.tsv --port=8471
//   chainsformer_serve --router=127.0.0.1:8471,127.0.0.1:8472 --port=8470

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "graph/quant.h"
#include "graph/runtime.h"
#include "kg/loader.h"
#include "serve/admin.h"
#include "serve/async_server.h"
#include "serve/checkpoint.h"
#include "serve/router.h"
#include "serve/service.h"
#include "tensor/checks.h"
#include "util/flags.h"
#include "util/logging.h"
#include "util/metric_names.h"
#include "util/metrics.h"
#include "util/net.h"
#include "util/string_util.h"
#include "util/telemetry.h"
#include "util/trace.h"
#include "util/sync.h"

namespace chainsformer {
namespace {

int Usage() {
  std::fprintf(
      stderr,
      "usage: chainsformer_serve --checkpoint=PATH --triples=PATH --numeric=PATH\n"
      "  --serve-threads=N    client worker threads for stdin mode (default 4)\n"
      "  --batch-window-us=N  micro-batch coalescing window (default 200)\n"
      "  --deadline-ms=N      per-request deadline; 0 disables (default 50)\n"
      "  --max-batch=N        requests per micro-batch cap (default 32)\n"
      "  --cache-capacity=N   ToC cache entries; 0 disables (default 4096)\n"
      "  --compute-threads=N  dispatcher pool for intra-batch parallelism;\n"
      "                       1 = serial, 0 = hardware threads (default 0)\n"
      "  --static-graph=B     answer from compiled static plans, bitwise\n"
      "                       identical to eager (default true; =false for\n"
      "                       the eager tape; plan.* counters in --stats)\n"
      "  --precision=M        static-graph Linear precision: fp64 (default;\n"
      "                       fp32 accepted as alias), bf16, or int8 (needs\n"
      "                       a checkpoint saved with --quantize)\n"
      "  --quant-error-budget=X  max recorded int8 calibration error\n"
      "                       (normalized MAE vs fp64) the server accepts;\n"
      "                       over budget falls back to fp64 and increments\n"
      "                       serve.quant_rejected (default 0.05)\n"
      "  --verify-tolerance=X first-use parity tolerance for quantized\n"
      "                       buckets; negative = per-precision default\n"
      "                       (int8 0.05, bf16 0.01)\n"
      "  --port=N             serve NDJSON over TCP instead of stdin\n"
      "  --shards=N           entity-sharded mode: total shard count\n"
      "  --shard-index=I      ... and this process's slice [0, N)\n"
      "  --router=H:P,H:P,... run as a fan-out router over the listed shard\n"
      "                       servers (no checkpoint loaded); needs --port\n"
      "  --forward-timeout-ms=N  router per-shard attempt budget (default 250)\n"
      "  --health-period-ms=N router shard-probe cadence; 0 off (default 250)\n"
      "  --kernel-threads=N   dense kernel workers (default 1)\n"
      "  --seed=N             must match training when the checkpoint is legacy\n"
      "  observability: --metrics-json=PATH --trace-json=PATH --stats\n"
      "                 --check-mode=off|shapes|full\n"
      "  --admin-port=N       HTTP admin endpoint on 127.0.0.1 (GET /statusz\n"
      "                       JSON, /metrics Prometheus, /healthz); the same\n"
      "                       JSON answers {\"cmd\": \"statusz\"} on the main\n"
      "                       port\n"
      "  --access-log=PATH    NDJSON access log with per-request span\n"
      "                       breakdown (trace id, batch, phase latencies)\n"
      "  --access-log-every=N log every Nth request (default 1)\n");
  return 2;
}

// NDJSON request parsing rides the shared flat-object helpers
// (chainsformer::JsonField / EscapeJson in util/string_util.h) — the same
// grammar the router and the shard protocol speak.

/// Sampled structured access log: one NDJSON line per logged request with
/// the full span breakdown (--access-log / --access-log-every).
class AccessLogger {
 public:
  bool Open(const std::string& path, int64_t every) {
    every_ = every > 0 ? every : 1;
    file_ = std::fopen(path.c_str(), "a");
    if (file_ == nullptr) {
      std::fprintf(stderr, "cannot open access log %s\n", path.c_str());
      return false;
    }
    return true;
  }
  ~AccessLogger() {
    if (file_ != nullptr) std::fclose(file_);
  }
  bool enabled() const { return file_ != nullptr; }

  void Log(const std::string& entity, const std::string& attribute,
           const serve::ServeResponse& r, int64_t serialize_us) {
    if (file_ == nullptr) return;
    if (seq_.fetch_add(1, std::memory_order_relaxed) % every_ != 0) return;
    const int64_t ts_ms =
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::system_clock::now().time_since_epoch())
            .count();
    cf::MutexLock lock(mu_);
    std::fprintf(
        file_,
        "{\"ts_ms\": %lld, \"trace_id\": \"%llu\", \"entity\": \"%s\", "
        "\"attribute\": \"%s\", \"value\": %.17g, \"degraded\": %s, "
        "\"source\": \"%s\", \"latency_us\": %lld, \"batch_id\": %lld, "
        "\"batch_size\": %d, \"dedup_collapsed\": %s, \"cache_hit\": %s, "
        "\"phases\": {\"cache_us\": %lld, \"queue_us\": %lld, "
        "\"window_us\": %lld, \"compute_us\": %lld, \"verify_us\": %lld, "
        "\"serialize_us\": %lld}}\n",
        static_cast<long long>(ts_ms),
        static_cast<unsigned long long>(r.trace_id),
        EscapeJson(entity).c_str(), EscapeJson(attribute).c_str(), r.value,
        r.degraded ? "true" : "false", r.source.c_str(),
        static_cast<long long>(r.latency_us),
        static_cast<long long>(r.batch_id), r.batch_size,
        r.dedup_collapsed ? "true" : "false", r.cache_hit ? "true" : "false",
        static_cast<long long>(r.cache_us),
        static_cast<long long>(r.queue_us),
        static_cast<long long>(r.window_us),
        static_cast<long long>(r.compute_us),
        static_cast<long long>(r.verify_us),
        static_cast<long long>(serialize_us));
    std::fflush(file_);  // survive an unclean kill; sampled, so cheap
  }

 private:
  std::FILE* file_ = nullptr;
  int64_t every_ = 1;
  std::atomic<int64_t> seq_{0};
  cf::Mutex mu_{"tools.request_log"};
};

/// Everything a request handler needs, threaded through both serve modes.
struct ServeContext {
  const kg::Dataset& dataset;
  serve::InferenceService& service;
  AccessLogger* access_log = nullptr;  // null = disabled
  /// Sharded mode (--shards/--shard-index): the ring this shard shares with
  /// its router, its own index, and the shard count. null ring = unsharded.
  const serve::HashRing* ring = nullptr;
  int shard_index = -1;
};

/// Parses a client-supplied trace id: decimal or 0x-prefixed hex. Returns 0
/// (= "generate one for me") on absence or garbage.
uint64_t ParseTraceId(const std::string& line) {
  std::string raw;
  if (!JsonField(line, "trace_id", &raw)) return 0;
  return std::strtoull(raw.c_str(), nullptr, 0);
}

/// Resolves one request line against the graph and answers it. Unknown
/// entities/attributes come back as {"error": ...} instead of killing the
/// connection. `{"cmd": "statusz"}` answers with the admin status document
/// instead of a prediction.
std::string HandleLine(const ServeContext& ctx, const std::string& line) {
  std::string id, entity_name, attribute_name, cmd;
  if (JsonField(line, "cmd", &cmd)) {
    if (cmd == "statusz") return serve::StatusJson(&ctx.service);
    if (cmd == "healthz") {
      // The router's liveness probe on the main port: proves the full
      // request path (listener → worker → this handler), not just that the
      // admin thread is alive.
      std::string r = "{\"ok\": true";
      if (ctx.ring != nullptr) {
        r += ", \"shard_index\": " + std::to_string(ctx.shard_index) +
             ", \"shards\": " + std::to_string(ctx.ring->num_shards());
      }
      return r + "}";
    }
    return "{\"error\": \"unknown cmd: " + EscapeJson(cmd) + "\"}";
  }
  const bool has_id = JsonField(line, "id", &id);
  auto error = [&](const std::string& message) {
    std::string r = "{";
    if (has_id) r += "\"id\": " + id + ", ";
    return r + "\"error\": \"" + EscapeJson(message) + "\"}";
  };
  if (!JsonField(line, "entity", &entity_name) ||
      !JsonField(line, "attribute", &attribute_name)) {
    return error("request needs \"entity\" and \"attribute\"");
  }
  const kg::EntityId entity = ctx.dataset.graph.FindEntity(entity_name);
  if (entity < 0) return error("unknown entity: " + entity_name);
  const kg::AttributeId attribute =
      ctx.dataset.graph.FindAttribute(attribute_name);
  if (attribute < 0) return error("unknown attribute: " + attribute_name);

  if (ctx.ring != nullptr && ctx.ring->Owner(entity_name) != ctx.shard_index) {
    // Still answered (every shard holds the full model — only the cache
    // working set is partitioned), but counted: a nonzero serve.misrouted
    // rate means the router and shard disagree on the ring geometry.
    static auto* misrouted = metrics::MetricsRegistry::Global().GetCounter(
        metrics::names::kServeMisrouted);
    misrouted->Increment();
  }

  const serve::ServeResponse resp =
      ctx.service.Predict({entity, attribute}, ParseTraceId(line));

  // Serialize phase: the last span of the request's timeline. The trace id
  // is stringified in the response for the same 2^53 reason as in the
  // Chrome trace.
  const uint64_t ser_start_ns = trace::NowNs();
  char buf[512];
  std::snprintf(buf, sizeof(buf),
                "\"trace_id\": \"%llu\", \"value\": %.17g, "
                "\"degraded\": %s, \"source\": \"%s\", "
                "\"precision\": \"%s\", "
                "\"latency_us\": %lld, \"batch_size\": %d, "
                "\"batch_id\": %lld, \"dedup_collapsed\": %s, "
                "\"cache_hit\": %s}",
                static_cast<unsigned long long>(resp.trace_id), resp.value,
                resp.degraded ? "true" : "false", resp.source.c_str(),
                resp.precision,
                static_cast<long long>(resp.latency_us), resp.batch_size,
                static_cast<long long>(resp.batch_id),
                resp.dedup_collapsed ? "true" : "false",
                resp.cache_hit ? "true" : "false");
  std::string r = "{";
  if (has_id) r += "\"id\": " + id + ", ";
  if (ctx.ring != nullptr) {
    r += "\"shard\": " + std::to_string(ctx.shard_index) + ", ";
  }
  r += buf;
  const uint64_t ser_end_ns = trace::NowNs();
  trace::EmitSpan("serve.serialize", ser_start_ns, ser_end_ns, resp.trace_id);
  static auto* serialize_hist =
      telemetry::TelemetryRegistry::Global().GetHistogram(
          metrics::names::kServePhaseSerializeUs);
  const int64_t serialize_us =
      static_cast<int64_t>((ser_end_ns - ser_start_ns) / 1000);
  serialize_hist->ObserveAtMs(static_cast<double>(serialize_us),
                              static_cast<int64_t>(ser_end_ns / 1'000'000));
  if (ctx.access_log != nullptr && ctx.access_log->enabled()) {
    ctx.access_log->Log(entity_name, attribute_name, resp, serialize_us);
  }
  return r;
}

// --- stdin mode ------------------------------------------------------------

int ServeStdin(const ServeContext& ctx, int serve_threads) {
  cf::Mutex queue_mu{"tools.stdin_queue"};
  cf::Mutex out_mu{"tools.stdout"};
  cf::CondVar queue_cv;
  // Locals of ServeStdin, protected by queue_mu via lexical scope.
  std::deque<std::string> lines;  // cf-lint: allow(unannotated-guarded-member)
  bool done = false;              // cf-lint: allow(unannotated-guarded-member)

  auto worker = [&] {
    while (true) {
      std::string line;
      {
        cf::MutexLock lock(queue_mu);
        queue_cv.Wait(queue_mu, [&] { return done || !lines.empty(); });
        if (lines.empty()) return;  // done and drained
        line = std::move(lines.front());
        lines.pop_front();
      }
      if (line.empty()) continue;
      const std::string response = HandleLine(ctx, line);
      cf::MutexLock lock(out_mu);
      std::printf("%s\n", response.c_str());
    }
  };
  std::vector<std::thread> workers;
  workers.reserve(static_cast<size_t>(serve_threads));
  for (int i = 0; i < serve_threads; ++i) workers.emplace_back(worker);

  std::string line;
  while (std::getline(std::cin, line)) {
    {
      cf::MutexLock lock(queue_mu);
      lines.push_back(std::move(line));
    }
    queue_cv.NotifyOne();
  }
  {
    cf::MutexLock lock(queue_mu);
    done = true;
  }
  queue_cv.NotifyAll();
  for (auto& w : workers) w.join();
  std::fflush(stdout);
  return 0;
}

// --- TCP mode --------------------------------------------------------------

/// Graceful-shutdown plumbing (self-pipe idiom): SIGINT/SIGTERM write one
/// byte to a pipe (net::SignalSafeWriteByte, the only async-signal-safe
/// step needed); the main thread wakes from net::WaitReadable, shuts the
/// async server down (in-flight requests finish, tail responses flush), and
/// Main's normal exit path flushes --metrics-json/--trace-json — telemetry
/// from a killed server is not lost.
volatile std::sig_atomic_t g_stop = 0;
std::atomic<int> g_stop_pipe{-1};

void HandleStopSignal(int) {
  g_stop = 1;
  const int fd = g_stop_pipe.load(std::memory_order_seq_cst);
  if (fd >= 0) net::SignalSafeWriteByte(fd);
}

/// Serves `handler` over the epoll front-end until SIGINT/SIGTERM. The
/// reactor accepts while every other connection is mid-read — the old
/// thread-per-connection loop could not (its accept() queued behind a slow
/// client dribbling a request body; router_test pins the interleaving
/// regression). Intentionally minimal (no TLS, IPv4 loopback only): a
/// benchmark/demo endpoint, not an internet-facing daemon.
int RunTcp(int port, int workers, const char* role,
           serve::AsyncNdjsonServer::Handler handler) {
  serve::AsyncNdjsonServer::Options options;
  options.port = port;
  options.workers = workers;
  serve::AsyncNdjsonServer server(options, std::move(handler));
  if (server.port() < 0) {
    std::fprintf(stderr, "cannot listen on 127.0.0.1:%d\n", port);
    return 1;
  }
  int pipe_fds[2];
  if (!net::MakePipe(pipe_fds)) {
    std::perror("pipe");
    return 1;
  }
  g_stop_pipe.store(pipe_fds[1], std::memory_order_seq_cst);
  std::signal(SIGINT, HandleStopSignal);
  std::signal(SIGTERM, HandleStopSignal);
  std::fprintf(stderr, "%s on 127.0.0.1:%d\n", role, server.port());
  // 1s poll rounds close the race of a signal landing before the handler
  // was armed; the pipe byte ends the wait immediately in the normal case.
  while (g_stop == 0 && !net::WaitReadable(pipe_fds[0], 1000)) {
  }
  std::fprintf(stderr,
               "shutdown signal received; draining connections and "
               "flushing telemetry\n");
  g_stop_pipe.store(-1, std::memory_order_seq_cst);
  server.Shutdown();
  net::CloseFd(pipe_fds[0]);
  net::CloseFd(pipe_fds[1]);
  return 0;
}

// --- Router mode -----------------------------------------------------------

/// `--router=H:P,H:P,...`: pure fan-out front-end — no checkpoint, no
/// dataset. Each request line forwards to the shard owning its entity on
/// the consistent-hash ring; down shards reroute (tagged) or, with the
/// whole fleet gone, degrade answer-shaped (see serve/router.h).
int RouterMain(FlagParser& flags, const std::string& spec) {
  const int port = static_cast<int>(flags.GetInt("port", 0));
  if (port <= 0) {
    std::fprintf(stderr, "--router needs --port\n");
    return Usage();
  }
  serve::RouterOptions options;
  options.forward_timeout_ms =
      static_cast<int>(flags.GetInt("forward-timeout-ms", 250));
  options.health_period_ms =
      static_cast<int>(flags.GetInt("health-period-ms", 250));
  std::vector<std::unique_ptr<serve::ShardBackend>> backends;
  for (const std::string& raw : Split(spec, ',')) {
    const std::string addr = Strip(raw);
    const size_t colon = addr.rfind(':');
    const int shard_port =
        colon == std::string::npos
            ? 0
            : std::atoi(addr.substr(colon + 1).c_str());
    if (colon == std::string::npos || shard_port <= 0) {
      std::fprintf(stderr, "bad shard address (want host:port): %s\n",
                   addr.c_str());
      return 2;
    }
    backends.push_back(std::make_unique<serve::TcpShardBackend>(
        addr.substr(0, colon), shard_port));
  }
  const int serve_threads = static_cast<int>(flags.GetInt("serve-threads", 4));
  const std::string metrics_json = flags.GetString("metrics-json");
  const bool print_stats = flags.GetBool("stats", false);
  const int admin_port = static_cast<int>(flags.GetInt("admin-port", -1));

  serve::Router router(std::move(backends), options);
  router.CheckNow();  // mark dead shards down before the first request
  std::unique_ptr<serve::AdminServer> admin;
  if (admin_port >= 0) {
    // No service behind a router: /statusz still reports the router
    // process's counters and window; {"cmd": "statusz"} on the main port
    // adds the per-shard health table.
    admin = std::make_unique<serve::AdminServer>(admin_port, nullptr);
    if (admin->port() < 0) return 1;
    std::fprintf(stderr, "admin endpoint on 127.0.0.1:%d\n", admin->port());
  }
  for (const std::string& key : flags.UnreadKeys()) {
    std::fprintf(stderr, "warning: unused flag --%s\n", key.c_str());
  }
  const int rc =
      RunTcp(port, serve_threads, "routing",
             [&router](const std::string& line) {
               return router.HandleLine(line);
             });
  if (!metrics_json.empty() || print_stats) {
    const metrics::MetricsSnapshot snap =
        metrics::MetricsRegistry::Global().Snapshot();
    if (!metrics_json.empty()) metrics::WriteJsonFile(metrics_json, snap);
    if (print_stats) {
      std::fprintf(stderr, "%s", metrics::SummaryTable(snap).c_str());
    }
  }
  return rc;
}

int Main(int argc, char** argv) {
  FlagParser flags(argc, argv);
  const std::string router_spec = flags.GetString("router");
  if (!router_spec.empty()) return RouterMain(flags, router_spec);
  const std::string checkpoint = flags.GetString("checkpoint");
  const std::string triples = flags.GetString("triples");
  const std::string numeric = flags.GetString("numeric");
  if (checkpoint.empty() || triples.empty() || numeric.empty()) return Usage();

  const std::string metrics_json = flags.GetString("metrics-json");
  const std::string trace_json = flags.GetString("trace-json");
  const bool print_stats = flags.GetBool("stats", false);
  if (!trace_json.empty()) trace::SetEnabled(true);
  tensor::SetCheckMode(tensor::CheckModeFromString(flags.GetString(
      "check-mode", tensor::CheckModeName(tensor::CheckModeFromEnv()))));

  core::ChainsFormerConfig base_config;
  base_config.kernel_threads = static_cast<int>(flags.GetInt("kernel-threads", 1));
  base_config.seed = static_cast<uint64_t>(flags.GetInt("seed", 42));
  base_config.verbose = false;

  const kg::Dataset dataset =
      kg::LoadTsvDataset("serve", triples, numeric, base_config.seed);

  std::unique_ptr<core::ChainsFormerModel> model;
  auto quant = std::make_shared<graph::QuantStore>();
  if (serve::IsModelCheckpoint(checkpoint)) {
    model = serve::LoadModel(dataset, base_config, checkpoint, quant.get());
  } else {
    // Legacy raw-tensor checkpoint: shapes/seed must come from the flags.
    std::fprintf(stderr,
                 "%s is a legacy CFTN checkpoint; relying on --seed and "
                 "default architecture flags matching training\n",
                 checkpoint.c_str());
    model = std::make_unique<core::ChainsFormerModel>(dataset, base_config);
    if (!model->LoadCheckpoint(checkpoint)) model.reset();
  }
  if (!model) {
    std::fprintf(stderr, "failed to load %s\n", checkpoint.c_str());
    return 1;
  }

  serve::ServeOptions options;
  options.batch_window_us = flags.GetInt("batch-window-us", 200);
  options.max_batch = static_cast<int>(flags.GetInt("max-batch", 32));
  options.deadline_ms = flags.GetInt("deadline-ms", 50);
  options.cache_capacity =
      static_cast<size_t>(flags.GetInt("cache-capacity", 4096));
  options.compute_threads =
      static_cast<int>(flags.GetInt("compute-threads", 0));
  options.use_static_graph = flags.GetBool("static-graph", true);
  const std::string precision_flag = flags.GetString("precision", "fp64");
  if (!graph::ParsePrecision(precision_flag, &options.precision)) {
    std::fprintf(stderr, "unknown --precision=%s (fp64|fp32|bf16|int8)\n",
                 precision_flag.c_str());
    return Usage();
  }
  options.quant_error_budget =
      flags.GetDouble("quant-error-budget", options.quant_error_budget);
  options.verify_tolerance =
      flags.GetDouble("verify-tolerance", options.verify_tolerance);
  if (!quant->linears.empty()) options.quant = quant;
  serve::InferenceService service(*model, options);
  if (service.static_runtime() != nullptr) {
    std::fprintf(stderr, "static-graph precision: %s%s\n",
                 graph::PrecisionName(service.static_runtime()->precision()),
                 service.quant_rejected() ? " (int8 rejected by accuracy gate)"
                                          : "");
  }

  const int serve_threads = static_cast<int>(flags.GetInt("serve-threads", 4));
  const int port = static_cast<int>(flags.GetInt("port", 0));
  const int admin_port = static_cast<int>(flags.GetInt("admin-port", -1));
  const std::string access_log_path = flags.GetString("access-log");
  const int64_t access_log_every = flags.GetInt("access-log-every", 1);

  AccessLogger access_log;
  if (!access_log_path.empty() &&
      !access_log.Open(access_log_path, access_log_every)) {
    return 1;
  }
  ServeContext ctx{dataset, service,
                   access_log.enabled() ? &access_log : nullptr};

  // Sharded mode: the ring must be built with the same shard count (and
  // default vnode count) the router uses, or serve.misrouted lights up.
  const int shards = static_cast<int>(flags.GetInt("shards", 0));
  const int shard_index = static_cast<int>(flags.GetInt("shard-index", -1));
  std::unique_ptr<serve::HashRing> ring;
  if (shards > 0 || shard_index >= 0) {
    if (shards <= 0 || shard_index < 0 || shard_index >= shards) {
      std::fprintf(stderr,
                   "--shards=N and --shard-index in [0, N) go together\n");
      return Usage();
    }
    ring = std::make_unique<serve::HashRing>(shards);
    ctx.ring = ring.get();
    ctx.shard_index = shard_index;
  }

  // Admin endpoint (--admin-port=0 binds an ephemeral port and prints it).
  std::unique_ptr<serve::AdminServer> admin;
  if (admin_port >= 0) {
    admin = std::make_unique<serve::AdminServer>(admin_port, &service);
    if (admin->port() < 0) return 1;
    std::fprintf(stderr, "admin endpoint on 127.0.0.1:%d\n", admin->port());
  }

  for (const std::string& key : flags.UnreadKeys()) {
    std::fprintf(stderr, "warning: unused flag --%s\n", key.c_str());
  }

  const int rc =
      port > 0 ? RunTcp(port, serve_threads, "serving",
                        [&ctx](const std::string& line) {
                          return HandleLine(ctx, line);
                        })
               : ServeStdin(ctx, serve_threads);

  if (!metrics_json.empty() || print_stats) {
    const metrics::MetricsSnapshot snap =
        metrics::MetricsRegistry::Global().Snapshot();
    if (!metrics_json.empty()) metrics::WriteJsonFile(metrics_json, snap);
    if (print_stats) std::fprintf(stderr, "%s", metrics::SummaryTable(snap).c_str());
  }
  if (!trace_json.empty()) trace::WriteChromeTrace(trace_json);
  return rc;
}

}  // namespace
}  // namespace chainsformer

int main(int argc, char** argv) { return chainsformer::Main(argc, argv); }
