// Spatial attribute completion: predict latitude/longitude of places from
// their containment / capital / neighborhood structure — the attribute class
// where the paper reports ChainsFormer's largest gains (§V-B).
//
//   $ ./build/examples/geo_attributes

#include <cstdio>
#include <vector>

#include "baselines/mrap.h"
#include "core/chainsformer.h"
#include "kg/synthetic.h"

using namespace chainsformer;

int main() {
  kg::Dataset ds = kg::MakeYago15kLike({.scale = 0.07, .seed = 9});

  core::ChainsFormerConfig config;
  config.num_walks = 96;
  config.top_k = 12;
  config.hidden_dim = 24;
  config.filter_dim = 12;
  config.epochs = 8;
  config.max_train_queries = 300;
  config.max_eval_queries = 250;
  config.seed = 9;

  core::ChainsFormerModel model(ds, config);
  model.Train();
  baselines::MrapBaseline mrap(ds);
  mrap.Train();

  const auto lat = ds.graph.FindAttribute("latitude");
  const auto lon = ds.graph.FindAttribute("longitude");
  std::vector<kg::NumericalTriple> spatial;
  for (const auto& t : ds.split.test) {
    if (t.attribute == lat || t.attribute == lon) spatial.push_back(t);
  }
  std::printf("%zu spatial test queries\n", spatial.size());

  const auto cf = model.Evaluate(spatial);
  const auto mr = mrap.Evaluate(spatial);
  std::printf("\nMAE (degrees):\n");
  std::printf("  %-14s lat=%.2f lon=%.2f\n", "ChainsFormer",
              cf.per_attribute[static_cast<size_t>(lat)].mae,
              cf.per_attribute[static_cast<size_t>(lon)].mae);
  std::printf("  %-14s lat=%.2f lon=%.2f\n", "MrAP",
              mr.per_attribute[static_cast<size_t>(lat)].mae,
              mr.per_attribute[static_cast<size_t>(lon)].mae);

  // Which chains carry spatial information? (Table V row for latitude.)
  std::printf("\nkey RA-chains for latitude (aggregated chain weights):\n");
  for (const auto& [pattern, weight] : model.TopPatterns(lat, 5, 30)) {
    std::printf("  %-50s total-omega=%.2f\n", pattern.c_str(), weight);
  }
  return 0;
}
