// Movie-world knowledge graph completion (the paper's motivating scenario,
// Fig. 1): predict a director's missing birth date from film release dates,
// collaborators, and relatives — multi-hop numerical reasoning.
//
//   $ ./build/examples/movie_kg_completion
//
// Uses the FB15K-237-like synthetic world and compares ChainsFormer against
// the LocalMean reference on temporal person attributes, then traces one
// "Coppola-style" query end to end.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "baselines/simple.h"
#include "core/chainsformer.h"
#include "kg/synthetic.h"

using namespace chainsformer;

int main() {
  kg::Dataset ds = kg::MakeFb15k237Like({.scale = 0.07, .seed = 5});
  std::printf("dataset %s: %lld entities, %lld relations, %lld attributes, "
              "%zu relational triples, %zu numeric triples\n",
              ds.name.c_str(), static_cast<long long>(ds.graph.num_entities()),
              static_cast<long long>(ds.graph.num_relations()),
              static_cast<long long>(ds.graph.num_attributes()),
              ds.graph.relational_triples().size(),
              ds.graph.numerical_triples().size());

  core::ChainsFormerConfig config;
  config.num_walks = 96;
  config.top_k = 12;
  config.hidden_dim = 24;
  config.filter_dim = 12;
  config.epochs = 8;
  config.max_train_queries = 300;
  config.max_eval_queries = 250;
  config.seed = 5;

  core::ChainsFormerModel model(ds, config);
  std::printf("training ChainsFormer (%lld parameters)...\n",
              static_cast<long long>(model.NumParameters()));
  model.Train();

  baselines::LocalMeanBaseline local(ds);
  local.Train();

  // Focus on the temporal person attributes from the paper's Fig. 1 story.
  const auto birth = ds.graph.FindAttribute("birth");
  const auto death = ds.graph.FindAttribute("death");
  std::vector<kg::NumericalTriple> person_queries;
  for (const auto& t : ds.split.test) {
    if ((t.attribute == birth || t.attribute == death) &&
        person_queries.size() < 200) {
      person_queries.push_back(t);
    }
  }
  const auto cf = model.Evaluate(person_queries);
  const auto lm = local.Evaluate(person_queries);
  std::printf("\nbirth/death MAE (years):\n");
  std::printf("  %-14s birth=%.1f death=%.1f\n", "ChainsFormer",
              cf.per_attribute[static_cast<size_t>(birth)].mae,
              cf.per_attribute[static_cast<size_t>(death)].mae);
  std::printf("  %-14s birth=%.1f death=%.1f\n", "LocalMean",
              lm.per_attribute[static_cast<size_t>(birth)].mae,
              lm.per_attribute[static_cast<size_t>(death)].mae);

  // Trace one director-style query: a person with films but an unobserved
  // birth date (the Coppola example of Fig. 1 / Fig. 5).
  for (const auto& t : ds.split.test) {
    if (t.attribute != birth) continue;
    const core::Explanation ex = model.Explain({t.entity, t.attribute});
    if (!ex.has_evidence || ex.weighted_chains.size() < 3) continue;
    std::printf("\ncase study: birth(%s)\n",
                ds.graph.EntityName(t.entity).c_str());
    std::printf("  ToC: %zu chains -> filtered to %zu\n", ex.toc_size,
                ex.filtered_size);
    std::printf("  predicted %.1f (ground truth %.1f)\n", ex.prediction, t.value);
    std::printf("  top reasoning chains:\n");
    for (size_t i = 0; i < 4 && i < ex.weighted_chains.size(); ++i) {
      const auto& [chain, w] = ex.weighted_chains[i];
      std::printf("    %-45s evidence=%9.1f  omega=%.3f\n",
                  chain.PatternString(ds.graph).c_str(), chain.source_value, w);
    }
    break;
  }
  return 0;
}
