// Reasoning transparency: dump the complete reasoning trace for a batch of
// queries — retrieved-chain counts per stage, the selected chains, their
// importance weights and their cumulative contribution (the analysis behind
// Fig. 5 and Table V).
//
//   $ ./build/examples/chain_explainability

#include <cstdio>

#include "core/chainsformer.h"
#include "core/trace_export.h"
#include "kg/synthetic.h"

using namespace chainsformer;

int main() {
  kg::Dataset ds = kg::MakeYago15kLike({.scale = 0.06, .seed = 13});

  core::ChainsFormerConfig config;
  config.num_walks = 96;
  config.top_k = 12;
  config.hidden_dim = 24;
  config.filter_dim = 12;
  config.epochs = 6;
  config.max_train_queries = 250;
  config.seed = 13;

  core::ChainsFormerModel model(ds, config);
  model.Train();

  int shown = 0;
  for (const auto& t : ds.split.test) {
    const core::Explanation ex = model.Explain({t.entity, t.attribute});
    if (!ex.has_evidence || ex.weighted_chains.size() < 4) continue;
    std::printf("query %s(%s):\n",
                ds.graph.AttributeName(t.attribute).c_str(),
                ds.graph.EntityName(t.entity).c_str());
    std::printf("  retrieval:  %4zu chains in the ToC\n", ex.toc_size);
    std::printf("  filter:     %4zu chains kept (%.1f%%)\n", ex.filtered_size,
                100.0 * static_cast<double>(ex.filtered_size) /
                    static_cast<double>(ex.toc_size));
    std::printf("  prediction: %.2f   (truth %.2f)\n", ex.prediction, t.value);
    double cumulative = 0.0;
    int rank = 0;
    for (const auto& [chain, w] : ex.weighted_chains) {
      cumulative += w;
      std::printf("   #%d %-48s via %-12s w=%.3f cum=%.0f%%\n", ++rank,
                  chain.PatternString(ds.graph).c_str(),
                  ds.graph.EntityName(chain.source_entity).c_str(), w,
                  100.0 * cumulative);
      if (cumulative > 0.8 || rank >= 6) break;
    }
    std::printf("  -> %d chains cover %.0f%% of the reasoning weight\n\n", rank,
                100.0 * cumulative);
    if (shown == 0) {
      // Export the first trace as Graphviz for visual inspection:
      //   dot -Tpng /tmp/chainsformer_trace.dot -o trace.png
      const std::string dot_path = "/tmp/chainsformer_trace.dot";
      if (core::WriteExplanationDot(dot_path, ds.graph, {t.entity, t.attribute},
                                    ex)) {
        std::printf("  (Graphviz trace written to %s)\n\n", dot_path.c_str());
      }
    }
    if (++shown >= 4) break;
  }
  return 0;
}
