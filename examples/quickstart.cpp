// Quickstart: build a tiny knowledge graph by hand, train ChainsFormer, and
// predict a missing numerical attribute.
//
//   $ ./build/examples/quickstart
//
// This walks the full public API surface: KnowledgeGraph construction,
// splitting, ChainsFormerConfig, training, prediction, and explanation.

#include <cstdio>

#include "core/chainsformer.h"
#include "kg/dataset.h"
#include "kg/knowledge_graph.h"

using chainsformer::core::ChainsFormerConfig;
using chainsformer::core::ChainsFormerModel;
using chainsformer::core::Explanation;
using chainsformer::kg::AttributeCategory;
using chainsformer::kg::Dataset;

int main() {
  // 1. Build a small family/geography knowledge graph.
  Dataset ds;
  ds.name = "quickstart";
  auto& g = ds.graph;
  const auto birth = g.AddAttribute("birth", AttributeCategory::kTemporal);
  const auto sibling = g.AddRelation("sibling");
  const auto spouse = g.AddRelation("spouse");

  // Three families of four; siblings share birth eras.
  chainsformer::Rng rng(7);
  std::vector<chainsformer::kg::EntityId> people;
  for (int fam = 0; fam < 40; ++fam) {
    const double base = 1900.0 + rng.Uniform(-40.0, 80.0);
    std::vector<chainsformer::kg::EntityId> members;
    for (int m = 0; m < 4; ++m) {
      const auto e = g.AddEntity("p" + std::to_string(fam) + "_" + std::to_string(m));
      members.push_back(e);
      g.AddNumeric(e, birth, base + rng.Normal(0.0, 3.0));
      if (m > 0) g.AddTriple(members[static_cast<size_t>(m - 1)], sibling, e);
    }
    if (!people.empty() && rng.Bernoulli(0.5)) {
      g.AddTriple(members[0], spouse, people.back());
    }
    people.insert(people.end(), members.begin(), members.end());
  }
  g.Finalize();

  chainsformer::Rng split_rng(1);
  ds.split = chainsformer::kg::SplitNumericTriples(
      g.numerical_triples(), g.num_attributes(), split_rng);

  // 2. Configure a small model and train.
  ChainsFormerConfig config;
  config.max_hops = 3;
  config.num_walks = 48;
  config.top_k = 8;
  config.hidden_dim = 16;
  config.filter_dim = 8;
  config.epochs = 8;
  config.verbose = false;

  ChainsFormerModel model(ds, config);
  const auto report = model.Train();
  std::printf("trained %d epochs; final train loss %.4f\n", report.epochs_run,
              report.train_losses.back());

  // 3. Predict a held-out birth year and explain the reasoning.
  const auto& query_triple = ds.split.test.front();
  const double prediction =
      model.Predict({query_triple.entity, query_triple.attribute});
  std::printf("query: birth(%s)\n  predicted %.1f, actual %.1f\n",
              g.EntityName(query_triple.entity).c_str(), prediction,
              query_triple.value);

  const Explanation ex =
      model.Explain({query_triple.entity, query_triple.attribute});
  std::printf("  retrieved %zu chains, kept %zu after the hyperbolic filter\n",
              ex.toc_size, ex.filtered_size);
  const size_t show = std::min<size_t>(3, ex.weighted_chains.size());
  for (size_t i = 0; i < show; ++i) {
    const auto& [chain, weight] = ex.weighted_chains[i];
    std::printf("  chain %s  evidence=%.1f  weight=%.3f\n",
                chain.PatternString(g).c_str(), chain.source_value, weight);
  }

  // 4. Overall test error.
  const auto result = model.Evaluate(ds.split.test);
  std::printf("test MAE on birth: %.2f years (over %lld queries)\n",
              result.per_attribute[0].mae,
              static_cast<long long>(result.total_count));
  return 0;
}
