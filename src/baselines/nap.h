#ifndef CHAINSFORMER_BASELINES_NAP_H_
#define CHAINSFORMER_BASELINES_NAP_H_

#include <memory>

#include "baselines/baseline.h"
#include "baselines/transe.h"

namespace chainsformer {
namespace baselines {

/// NAP++ (Kotnis & García-Durán 2019): trains TransE on the relational
/// triples, then predicts an attribute as the inverse-distance-weighted mean
/// of the attribute's values over the k nearest training entities in
/// embedding space. No value conditioning, no explicit paths (Table IV).
class NapPlusPlusBaseline : public NumericPredictor {
 public:
  NapPlusPlusBaseline(const kg::Dataset& dataset, int k_neighbors = 8,
                      TransEConfig transe_config = {});

  std::string name() const override { return "NAP++"; }
  Capabilities capabilities() const override {
    return {.num_aware = false, .one_hop = true, .multi_hop = false,
            .same_attr = true, .multi_attr = false};
  }
  void Train() override;
  double Predict(kg::EntityId entity, kg::AttributeId attribute) override;

 private:
  int k_neighbors_;
  TransEConfig transe_config_;
  std::unique_ptr<TransE> transe_;
  /// Training entities that carry each attribute.
  std::vector<std::vector<kg::EntityId>> holders_;
};

}  // namespace baselines
}  // namespace chainsformer

#endif  // CHAINSFORMER_BASELINES_NAP_H_
