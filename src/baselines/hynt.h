#ifndef CHAINSFORMER_BASELINES_HYNT_H_
#define CHAINSFORMER_BASELINES_HYNT_H_

#include <vector>

#include "baselines/baseline.h"
#include "util/rng.h"

namespace chainsformer {
namespace baselines {

/// HyNT-lite (after Chung et al., KDD 2023): numeric attributes are treated
/// as qualifiers of the entity representation; a per-attribute linear head
/// regresses the value from a jointly trained entity embedding. The entity
/// embeddings are trained with two interleaved objectives, mirroring HyNT's
/// joint representation learning:
///   (1) regression: v ≈ w_a · e_v + b_a on normalized training triples,
///   (2) relational consistency: e_h + r ≈ e_t on relational triples
///       (translation regularizer standing in for the original's
///       hyper-relational transformer, which is what smooths information
///       across one-hop neighborhoods).
/// The paper's observation that direct regression on sparse attributes is
/// hard shows up here as mid-field accuracy (Table III).
class HyntBaseline : public NumericPredictor {
 public:
  explicit HyntBaseline(const kg::Dataset& dataset, int dim = 24,
                        int epochs = 12, float lr = 0.05f, uint64_t seed = 77);

  std::string name() const override { return "HyNT"; }
  Capabilities capabilities() const override {
    return {.num_aware = true, .one_hop = true, .multi_hop = false,
            .same_attr = true, .multi_attr = true};
  }
  void Train() override;
  double Predict(kg::EntityId entity, kg::AttributeId attribute) override;

 private:
  float* Entity(kg::EntityId e) { return entities_.data() + e * dim_; }
  const float* Entity(kg::EntityId e) const { return entities_.data() + e * dim_; }

  int dim_;
  int epochs_;
  float lr_;
  Rng rng_;
  std::vector<float> entities_;   // [num_entities, dim]
  std::vector<float> relations_;  // [num_relation_ids, dim]
  std::vector<float> heads_;      // [num_attrs, dim] regression weights
  std::vector<float> head_bias_;  // [num_attrs]
};

}  // namespace baselines
}  // namespace chainsformer

#endif  // CHAINSFORMER_BASELINES_HYNT_H_
