#include "baselines/hynt.h"

#include <algorithm>
#include <cmath>

namespace chainsformer {
namespace baselines {

HyntBaseline::HyntBaseline(const kg::Dataset& dataset, int dim, int epochs,
                           float lr, uint64_t seed)
    : NumericPredictor(dataset), dim_(dim), epochs_(epochs), lr_(lr), rng_(seed) {}

void HyntBaseline::Train() {
  const auto& graph = dataset_.graph;
  const int64_t ne = graph.num_entities();
  const int64_t nr = graph.num_relation_ids();
  const int64_t na = graph.num_attributes();
  entities_.resize(static_cast<size_t>(ne * dim_));
  relations_.resize(static_cast<size_t>(nr * dim_));
  heads_.assign(static_cast<size_t>(na * dim_), 0.0f);
  head_bias_.assign(static_cast<size_t>(na), 0.5f);
  const float bound = 0.5f / std::sqrt(static_cast<float>(dim_));
  for (auto& v : entities_) v = static_cast<float>(rng_.Uniform(-bound, bound));
  for (auto& v : relations_) v = static_cast<float>(rng_.Uniform(-bound, bound));

  std::vector<kg::NumericalTriple> numeric = dataset_.split.train;
  const auto& relational = graph.relational_triples();

  for (int epoch = 0; epoch < epochs_; ++epoch) {
    rng_.Shuffle(numeric);
    const float lr = lr_ / (1.0f + 0.15f * static_cast<float>(epoch));
    for (const auto& t : numeric) {
      // Regression step on the normalized value.
      float* e = Entity(t.entity);
      float* w = heads_.data() + t.attribute * dim_;
      float& b = head_bias_[static_cast<size_t>(t.attribute)];
      const float y = static_cast<float>(
          train_stats_[static_cast<size_t>(t.attribute)].Normalize(t.value));
      float pred = b;
      for (int j = 0; j < dim_; ++j) pred += w[j] * e[j];
      const float err = pred - y;
      for (int j = 0; j < dim_; ++j) {
        const float gw = err * e[j];
        const float ge = err * w[j];
        w[j] -= lr * (gw + 1e-4f * w[j]);
        e[j] -= lr * ge;
      }
      b -= lr * err;

      // Relational consistency step on a random triple.
      const auto& rt =
          relational[rng_.UniformInt(static_cast<uint64_t>(relational.size()))];
      float* h = Entity(rt.head);
      float* r = relations_.data() + rt.relation * dim_;
      float* tl = Entity(rt.tail);
      for (int j = 0; j < dim_; ++j) {
        const float diff = h[j] + r[j] - tl[j];
        const float g = lr * 0.2f * diff;
        h[j] -= g;
        r[j] -= g;
        tl[j] += g;
      }
    }
  }
}

double HyntBaseline::Predict(kg::EntityId entity, kg::AttributeId attribute) {
  if (heads_.empty()) return Fallback(attribute);
  const float* e = Entity(entity);
  const float* w = heads_.data() + attribute * dim_;
  float pred = head_bias_[static_cast<size_t>(attribute)];
  for (int j = 0; j < dim_; ++j) pred += w[j] * e[j];
  return train_stats_[static_cast<size_t>(attribute)].Denormalize(
      std::clamp(static_cast<double>(pred), -0.1, 1.1));
}

}  // namespace baselines
}  // namespace chainsformer
