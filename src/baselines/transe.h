#ifndef CHAINSFORMER_BASELINES_TRANSE_H_
#define CHAINSFORMER_BASELINES_TRANSE_H_

#include <cstdint>
#include <vector>

#include "kg/knowledge_graph.h"
#include "util/rng.h"

namespace chainsformer {
namespace baselines {

/// Configuration of the TransE trainer.
struct TransEConfig {
  int dim = 32;
  int epochs = 15;
  float lr = 0.05f;
  float margin = 1.0f;
  /// Per-epoch triple subsample (0 = all).
  int max_triples_per_epoch = 20000;
  uint64_t seed = 99;
};

/// Classic TransE (Bordes et al. 2013): h + r ≈ t with margin ranking and
/// uniform negative sampling. Implemented with hand-written SGD (no autograd)
/// because embedding updates touch only three rows per example.
///
/// Substrate for the NAP++ baseline (nearest-neighbor lookup in entity
/// space) and the KGA baseline (link prediction over bin entities).
class TransE {
 public:
  TransE(int64_t num_entities, int64_t num_relations, const TransEConfig& config);

  /// Margin-ranking training with head/tail corruption.
  void Train(const std::vector<kg::RelationalTriple>& triples);

  /// Plausibility score of (h, r, t): -||h + r - t||_2 (higher = better).
  double Score(kg::EntityId h, kg::RelationId r, kg::EntityId t) const;

  /// Squared distance between two entity embeddings.
  double EntityDistanceSq(kg::EntityId a, kg::EntityId b) const;

  /// The `k` candidates nearest to `e` in embedding space, ordered by
  /// ascending distance.
  std::vector<kg::EntityId> NearestEntities(
      kg::EntityId e, int k, const std::vector<kg::EntityId>& candidates) const;

  int64_t dim() const { return config_.dim; }
  const std::vector<float>& entity_data() const { return entities_; }

 private:
  float* Entity(kg::EntityId e) { return entities_.data() + e * config_.dim; }
  const float* Entity(kg::EntityId e) const {
    return entities_.data() + e * config_.dim;
  }
  float* Relation(kg::RelationId r) { return relations_.data() + r * config_.dim; }
  const float* Relation(kg::RelationId r) const {
    return relations_.data() + r * config_.dim;
  }
  void NormalizeEntity(kg::EntityId e);

  int64_t num_entities_;
  int64_t num_relations_;
  TransEConfig config_;
  std::vector<float> entities_;
  std::vector<float> relations_;
  Rng rng_;
};

}  // namespace baselines
}  // namespace chainsformer

#endif  // CHAINSFORMER_BASELINES_TRANSE_H_
