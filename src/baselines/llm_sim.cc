#include "baselines/llm_sim.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>
#include <vector>

namespace chainsformer {
namespace baselines {
namespace {

double Median(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  const size_t n = v.size();
  return n % 2 == 1 ? v[n / 2] : 0.5 * (v[n / 2 - 1] + v[n / 2]);
}

uint64_t QuerySeed(uint64_t seed, kg::EntityId e, kg::AttributeId a) {
  return seed ^ (static_cast<uint64_t>(static_cast<uint32_t>(e)) << 20) ^
         static_cast<uint32_t>(a);
}

}  // namespace

LlmSimBaseline::LlmSimBaseline(const kg::Dataset& dataset, LlmGrade grade,
                               int num_walks, int max_hops, uint64_t seed)
    : NumericPredictor(dataset),
      grade_(grade),
      max_hops_(max_hops),
      num_walks_(num_walks),
      seed_(seed) {
  retrieval_ = std::make_unique<core::QueryRetrieval>(dataset.graph, train_index_,
                                                      max_hops_, num_walks_);
}

double LlmSimBaseline::Predict(kg::EntityId entity, kg::AttributeId attribute) {
  Rng rng(QuerySeed(seed_, entity, attribute));
  const core::TreeOfChains toc = retrieval_->Retrieve({entity, attribute}, rng);
  if (toc.empty()) return Fallback(attribute);
  const auto& qs = train_stats_[static_cast<size_t>(attribute)];

  std::vector<double> same_attr;
  std::vector<double> any_attr_norm;
  for (const auto& c : toc) {
    if (c.source_attribute == attribute) same_attr.push_back(c.source_value);
    const auto& ss = train_stats_[static_cast<size_t>(c.source_attribute)];
    any_attr_norm.push_back(ss.Normalize(c.source_value));
  }

  double normalized;
  double noise_sigma;
  if (grade_ == LlmGrade::kGpt40) {
    // GPT-4-grade: keys on exact-attribute evidence, robust median.
    if (!same_attr.empty()) {
      normalized = qs.Normalize(Median(same_attr));
    } else {
      normalized = Median(any_attr_norm);
    }
    noise_sigma = 0.03;
  } else {
    // GPT-3.5-grade: averages everything indiscriminately (unit confusion
    // across attribute types) with higher arithmetic noise.
    double mean = 0.0;
    for (double v : any_attr_norm) mean += v;
    mean /= static_cast<double>(any_attr_norm.size());
    if (!same_attr.empty()) {
      // Partially anchors on matching evidence, but dilutes it.
      mean = 0.5 * mean + 0.5 * qs.Normalize(Median(same_attr));
    }
    normalized = mean;
    noise_sigma = 0.09;
  }
  normalized += rng.Normal(0.0, noise_sigma);
  return qs.Denormalize(std::clamp(normalized, -0.1, 1.1));
}

TogSimBaseline::TogSimBaseline(const kg::Dataset& dataset, int beam_width,
                               int depth, uint64_t seed)
    : NumericPredictor(dataset), beam_width_(beam_width), depth_(depth), seed_(seed) {}

double TogSimBaseline::Predict(kg::EntityId entity, kg::AttributeId attribute) {
  Rng rng(QuerySeed(seed_, entity, attribute));
  // Beam search with a noisy relevance heuristic: "the LLM" prefers
  // neighbors that carry numeric facts but misjudges relation relevance.
  std::vector<kg::EntityId> frontier{entity};
  std::unordered_set<kg::EntityId> visited{entity};
  std::vector<double> evidence;
  for (int d = 0; d < depth_; ++d) {
    std::vector<std::pair<double, kg::EntityId>> scored;
    for (kg::EntityId e : frontier) {
      for (const auto& edge : dataset_.graph.Neighbors(e)) {
        if (visited.count(edge.neighbor) != 0) continue;
        const auto facts = train_index_.Values(edge.neighbor);
        double score = rng.Normal(0.0, 1.0);  // noisy LLM pruning
        for (const auto& [a, v] : facts) {
          score += (a == attribute) ? 2.0 : 0.4;
        }
        scored.emplace_back(score, edge.neighbor);
      }
    }
    if (scored.empty()) break;
    std::sort(scored.begin(), scored.end(),
              [](const auto& a, const auto& b) { return a.first > b.first; });
    frontier.clear();
    for (int b = 0; b < beam_width_ && b < static_cast<int>(scored.size()); ++b) {
      const kg::EntityId next = scored[static_cast<size_t>(b)].second;
      visited.insert(next);
      frontier.push_back(next);
      double v = 0.0;
      if (train_index_.Get(next, attribute, &v)) evidence.push_back(v);
    }
  }
  if (evidence.empty()) return Fallback(attribute);
  double mean = 0.0;
  for (double v : evidence) mean += v;
  mean /= static_cast<double>(evidence.size());
  // Zero-shot aggregation noise.
  const auto& qs = train_stats_[static_cast<size_t>(attribute)];
  const double normalized =
      std::clamp(qs.Normalize(mean) + rng.Normal(0.0, 0.05), -0.1, 1.1);
  return qs.Denormalize(normalized);
}

}  // namespace baselines
}  // namespace chainsformer
