#include "baselines/plm_reg.h"

#include <algorithm>
#include <cmath>
#include <string>

#include "util/logging.h"

namespace chainsformer {
namespace baselines {
namespace {

// FNV-1a based deterministic feature hash.
uint64_t HashString(const std::string& s, uint64_t salt) {
  uint64_t h = 1469598103934665603ull ^ salt;
  for (char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

double HashToUnit(uint64_t h) {
  return static_cast<double>(h >> 11) * 0x1.0p-53 * 2.0 - 1.0;
}

}  // namespace

std::vector<double> RidgeSolve(std::vector<double> a, std::vector<double> b,
                               int n, double l2) {
  CF_CHECK_EQ(a.size(), static_cast<size_t>(n) * n);
  CF_CHECK_EQ(b.size(), static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) a[static_cast<size_t>(i * n + i)] += l2;
  // Cholesky decomposition A = L L^T.
  std::vector<double> l(static_cast<size_t>(n) * n, 0.0);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j <= i; ++j) {
      double sum = a[static_cast<size_t>(i * n + j)];
      for (int k = 0; k < j; ++k) {
        sum -= l[static_cast<size_t>(i * n + k)] * l[static_cast<size_t>(j * n + k)];
      }
      if (i == j) {
        l[static_cast<size_t>(i * n + j)] = std::sqrt(std::max(sum, 1e-10));
      } else {
        l[static_cast<size_t>(i * n + j)] = sum / l[static_cast<size_t>(j * n + j)];
      }
    }
  }
  // Forward solve L y = b.
  std::vector<double> y(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    double sum = b[static_cast<size_t>(i)];
    for (int k = 0; k < i; ++k) sum -= l[static_cast<size_t>(i * n + k)] * y[static_cast<size_t>(k)];
    y[static_cast<size_t>(i)] = sum / l[static_cast<size_t>(i * n + i)];
  }
  // Backward solve L^T x = y.
  std::vector<double> x(static_cast<size_t>(n));
  for (int i = n - 1; i >= 0; --i) {
    double sum = y[static_cast<size_t>(i)];
    for (int k = i + 1; k < n; ++k) {
      sum -= l[static_cast<size_t>(k * n + i)] * x[static_cast<size_t>(k)];
    }
    x[static_cast<size_t>(i)] = sum / l[static_cast<size_t>(i * n + i)];
  }
  return x;
}

PlmRegBaseline::PlmRegBaseline(const kg::Dataset& dataset, int text_dim, double l2)
    : NumericPredictor(dataset), text_dim_(text_dim), l2_(l2) {
  feature_dim_ = text_dim_ + static_cast<int>(dataset.graph.num_attributes()) + 2;
}

std::vector<double> PlmRegBaseline::Features(kg::EntityId entity) const {
  std::vector<double> f(static_cast<size_t>(feature_dim_) + 1, 0.0);
  // Pseudo text embedding: hash projections of the surface name.
  const std::string& name = dataset_.graph.EntityName(entity);
  for (int j = 0; j < text_dim_; ++j) {
    f[static_cast<size_t>(j)] =
        HashToUnit(HashString(name, 0x5EEDull + static_cast<uint64_t>(j)));
  }
  // 1-hop numeric context: mean normalized neighbor value per attribute
  // (a textual description would verbalize these facts).
  const int64_t num_attrs = dataset_.graph.num_attributes();
  std::vector<double> sum(static_cast<size_t>(num_attrs), 0.0);
  std::vector<int> cnt(static_cast<size_t>(num_attrs), 0);
  int degree = 0;
  for (const auto& e : dataset_.graph.Neighbors(entity)) {
    ++degree;
    for (const auto& [a, v] : train_index_.Values(e.neighbor)) {
      sum[static_cast<size_t>(a)] += train_stats_[static_cast<size_t>(a)].Normalize(v);
      ++cnt[static_cast<size_t>(a)];
    }
  }
  for (int64_t a = 0; a < num_attrs; ++a) {
    f[static_cast<size_t>(text_dim_ + a)] =
        cnt[static_cast<size_t>(a)] > 0
            ? sum[static_cast<size_t>(a)] / cnt[static_cast<size_t>(a)]
            : 0.5;
  }
  f[static_cast<size_t>(text_dim_) + static_cast<size_t>(num_attrs)] =
      std::log1p(static_cast<double>(degree)) / 5.0;
  f[static_cast<size_t>(feature_dim_) - 1] = 0.0;  // reserved
  f[static_cast<size_t>(feature_dim_)] = 1.0;      // intercept
  return f;
}

void PlmRegBaseline::Train() {
  const int n = feature_dim_ + 1;  // + intercept
  const int64_t num_attrs = dataset_.graph.num_attributes();
  weights_.assign(static_cast<size_t>(num_attrs), {});

  std::vector<std::vector<double>> gram(
      static_cast<size_t>(num_attrs),
      std::vector<double>(static_cast<size_t>(n) * n, 0.0));
  std::vector<std::vector<double>> rhs(static_cast<size_t>(num_attrs),
                                       std::vector<double>(static_cast<size_t>(n), 0.0));

  for (const auto& t : dataset_.split.train) {
    const std::vector<double> f = Features(t.entity);
    const double y = train_stats_[static_cast<size_t>(t.attribute)].Normalize(t.value);
    auto& g = gram[static_cast<size_t>(t.attribute)];
    auto& b = rhs[static_cast<size_t>(t.attribute)];
    for (int i = 0; i < n; ++i) {
      b[static_cast<size_t>(i)] += f[static_cast<size_t>(i)] * y;
      for (int j = 0; j <= i; ++j) {
        g[static_cast<size_t>(i * n + j)] += f[static_cast<size_t>(i)] * f[static_cast<size_t>(j)];
      }
    }
  }
  for (int64_t a = 0; a < num_attrs; ++a) {
    auto& g = gram[static_cast<size_t>(a)];
    // Symmetrize the accumulated lower triangle.
    for (int i = 0; i < n; ++i) {
      for (int j = i + 1; j < n; ++j) {
        g[static_cast<size_t>(i * n + j)] = g[static_cast<size_t>(j * n + i)];
      }
    }
    weights_[static_cast<size_t>(a)] =
        RidgeSolve(g, rhs[static_cast<size_t>(a)], n, l2_);
  }
}

double PlmRegBaseline::Predict(kg::EntityId entity, kg::AttributeId attribute) {
  const auto& w = weights_[static_cast<size_t>(attribute)];
  if (w.empty()) return Fallback(attribute);
  const std::vector<double> f = Features(entity);
  double y = 0.0;
  for (size_t i = 0; i < w.size(); ++i) y += w[i] * f[i];
  return train_stats_[static_cast<size_t>(attribute)].Denormalize(
      std::clamp(y, -0.1, 1.1));
}

}  // namespace baselines
}  // namespace chainsformer
