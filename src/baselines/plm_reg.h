#ifndef CHAINSFORMER_BASELINES_PLM_REG_H_
#define CHAINSFORMER_BASELINES_PLM_REG_H_

#include <vector>

#include "baselines/baseline.h"

namespace chainsformer {
namespace baselines {

/// PLM-reg (Xue et al., ISWC 2022): direct regression on *static* entity
/// features from a pre-trained language model.
///
/// Substitution: no LM is available offline, so each entity gets a
/// deterministic hash-projected pseudo-embedding of its surface name (the
/// "frozen text features") concatenated with a 1-hop numeric context vector
/// (a textual entity description would verbalize neighboring facts, which
/// is what gives PLM-reg its mid-field signal). A per-attribute ridge
/// regressor maps features to the normalized value. Like the original, the
/// method sees no explicit multi-hop structure and cannot adapt its
/// representation to the queried value (Table IV).
class PlmRegBaseline : public NumericPredictor {
 public:
  explicit PlmRegBaseline(const kg::Dataset& dataset, int text_dim = 24,
                          double l2 = 1.0);

  std::string name() const override { return "PLM-reg"; }
  Capabilities capabilities() const override {
    return {.num_aware = false, .one_hop = true, .multi_hop = false,
            .same_attr = true, .multi_attr = false};
  }
  void Train() override;
  double Predict(kg::EntityId entity, kg::AttributeId attribute) override;

 private:
  std::vector<double> Features(kg::EntityId entity) const;

  int text_dim_;
  double l2_;
  int feature_dim_ = 0;
  /// weights_[a]: ridge weights (+ intercept as last element).
  std::vector<std::vector<double>> weights_;
};

/// Solves (A + l2*I) x = b for symmetric positive definite A via Cholesky.
/// Exposed for tests. `a` is row-major n x n and is modified in place.
std::vector<double> RidgeSolve(std::vector<double> a, std::vector<double> b,
                               int n, double l2);

}  // namespace baselines
}  // namespace chainsformer

#endif  // CHAINSFORMER_BASELINES_PLM_REG_H_
