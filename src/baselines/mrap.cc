#include "baselines/mrap.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace chainsformer {
namespace baselines {

MrapBaseline::MrapBaseline(const kg::Dataset& dataset, int iterations,
                           int min_support)
    : NumericPredictor(dataset), iterations_(iterations), min_support_(min_support) {}

void MrapBaseline::Train() {
  const auto& graph = dataset_.graph;
  const int64_t num_entities = graph.num_entities();
  const int64_t num_attrs = graph.num_attributes();

  auto norm = [&](kg::AttributeId a, double v) {
    return train_stats_[static_cast<size_t>(a)].Normalize(v);
  };

  // --- Fit per-(relation, src attr, dst attr) linear edge models -------------
  struct Accum {
    double sx = 0, sy = 0, sxx = 0, sxy = 0, syy = 0;
    int64_t n = 0;
  };
  std::unordered_map<uint64_t, Accum> accums;
  for (kg::EntityId e = 0; e < num_entities; ++e) {
    const auto facts_e = train_index_.Values(e);
    if (facts_e.empty()) continue;
    for (const auto& edge : graph.Neighbors(e)) {
      const auto facts_n = train_index_.Values(edge.neighbor);
      for (const auto& [a_src, v_src] : facts_e) {
        for (const auto& [a_dst, v_dst] : facts_n) {
          // Message direction: e --edge.relation--> neighbor, i.e. the model
          // transforms e's attribute into the neighbor's.
          auto& acc = accums[ModelKey(edge.relation, a_src, a_dst)];
          const double x = norm(a_src, v_src);
          const double y = norm(a_dst, v_dst);
          acc.sx += x;
          acc.sy += y;
          acc.sxx += x * x;
          acc.sxy += x * y;
          acc.syy += y * y;
          ++acc.n;
        }
      }
    }
  }
  models_.clear();
  for (const auto& [key, acc] : accums) {
    if (acc.n < min_support_) continue;
    const double n = static_cast<double>(acc.n);
    const double var_x = acc.sxx / n - (acc.sx / n) * (acc.sx / n);
    const double cov = acc.sxy / n - (acc.sx / n) * (acc.sy / n);
    const double var_y = acc.syy / n - (acc.sy / n) * (acc.sy / n);
    EdgeModel m;
    if (var_x > 1e-8) {
      m.alpha = cov / var_x;
      m.beta = acc.sy / n - m.alpha * acc.sx / n;
    } else {
      m.alpha = 0.0;
      m.beta = acc.sy / n;
    }
    // Residual variance -> precision weight; require informative models.
    const double resid = std::max(1e-4, var_y - (var_x > 1e-8 ? cov * cov / var_x : 0.0));
    const double corr2 = (var_x > 1e-8 && var_y > 1e-8)
                             ? (cov * cov) / (var_x * var_y)
                             : 0.0;
    if (corr2 < 0.05 && std::fabs(m.alpha) > 1e-8) continue;
    m.weight = std::min(4.0, 1.0 / resid) * std::log1p(static_cast<double>(acc.n));
    models_.emplace(key, m);
  }

  // --- Iterative propagation (normalized space) ------------------------------
  estimate_.assign(static_cast<size_t>(num_attrs),
                   std::vector<double>(static_cast<size_t>(num_entities), 0.0));
  has_estimate_.assign(static_cast<size_t>(num_attrs),
                       std::vector<uint8_t>(static_cast<size_t>(num_entities), 0));
  std::vector<std::vector<uint8_t>> is_labeled = has_estimate_;
  for (const auto& t : dataset_.split.train) {
    estimate_[static_cast<size_t>(t.attribute)][static_cast<size_t>(t.entity)] =
        norm(t.attribute, t.value);
    has_estimate_[static_cast<size_t>(t.attribute)][static_cast<size_t>(t.entity)] = 1;
    is_labeled[static_cast<size_t>(t.attribute)][static_cast<size_t>(t.entity)] = 1;
  }

  for (int it = 0; it < iterations_; ++it) {
    auto next_estimate = estimate_;
    auto next_has = has_estimate_;
    for (kg::EntityId e = 0; e < num_entities; ++e) {
      for (int64_t a = 0; a < num_attrs; ++a) {
        if (is_labeled[static_cast<size_t>(a)][static_cast<size_t>(e)]) continue;
        double num = 0.0, den = 0.0;
        // Incoming messages: neighbor u --rel--> e means the model is keyed
        // on the edge direction u->e, which from e's adjacency appears as
        // the inverse relation; convert accordingly.
        for (const auto& edge : graph.Neighbors(e)) {
          const kg::RelationId incoming =
              kg::KnowledgeGraph::InverseRelation(edge.relation);
          for (int64_t a_src = 0; a_src < num_attrs; ++a_src) {
            if (!has_estimate_[static_cast<size_t>(a_src)]
                              [static_cast<size_t>(edge.neighbor)]) {
              continue;
            }
            const auto mit = models_.find(ModelKey(
                incoming, static_cast<kg::AttributeId>(a_src),
                static_cast<kg::AttributeId>(a)));
            if (mit == models_.end()) continue;
            const EdgeModel& m = mit->second;
            const double x = estimate_[static_cast<size_t>(a_src)]
                                      [static_cast<size_t>(edge.neighbor)];
            num += m.weight * (m.alpha * x + m.beta);
            den += m.weight;
          }
        }
        if (den > 0.0) {
          next_estimate[static_cast<size_t>(a)][static_cast<size_t>(e)] = num / den;
          next_has[static_cast<size_t>(a)][static_cast<size_t>(e)] = 1;
        }
      }
    }
    estimate_.swap(next_estimate);
    has_estimate_.swap(next_has);
  }
}

double MrapBaseline::Predict(kg::EntityId entity, kg::AttributeId attribute) {
  if (!has_estimate_.empty() &&
      has_estimate_[static_cast<size_t>(attribute)][static_cast<size_t>(entity)]) {
    const double normalized =
        estimate_[static_cast<size_t>(attribute)][static_cast<size_t>(entity)];
    return train_stats_[static_cast<size_t>(attribute)].Denormalize(
        std::clamp(normalized, -0.1, 1.1));
  }
  return Fallback(attribute);
}

}  // namespace baselines
}  // namespace chainsformer
