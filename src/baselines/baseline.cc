#include "baselines/baseline.h"

namespace chainsformer {
namespace baselines {

NumericPredictor::NumericPredictor(const kg::Dataset& dataset)
    : dataset_(dataset),
      train_stats_(kg::ComputeAttributeStats(dataset.split.train,
                                             dataset.graph.num_attributes())),
      train_index_(dataset.split.train, dataset.graph.num_entities()) {}

double NumericPredictor::Fallback(kg::AttributeId attribute) const {
  const auto& s = train_stats_[static_cast<size_t>(attribute)];
  return s.count > 0 ? s.mean : 0.0;
}

eval::EvalResult NumericPredictor::Evaluate(
    const std::vector<kg::NumericalTriple>& queries) {
  eval::MetricsAccumulator acc(train_stats_);
  for (const auto& t : queries) {
    acc.Add(t.attribute, Predict(t.entity, t.attribute), t.value);
  }
  return acc.Finalize();
}

}  // namespace baselines
}  // namespace chainsformer
