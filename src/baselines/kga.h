#ifndef CHAINSFORMER_BASELINES_KGA_H_
#define CHAINSFORMER_BASELINES_KGA_H_

#include <memory>
#include <vector>

#include "baselines/baseline.h"
#include "baselines/transe.h"

namespace chainsformer {
namespace baselines {

/// KGA (Wang et al., IJCAI 2022): quantile-bins every attribute into
/// discrete "value entities", augments the graph with (entity, has_<attr>,
/// bin) triples, trains link prediction (TransE here), and answers a query
/// by scoring all bins of the attribute and returning the best bin's median
/// value. Inherits binning quantization error by construction — the paper's
/// stated trade-off between classification difficulty and quantization
/// precision.
class KgaBaseline : public NumericPredictor {
 public:
  KgaBaseline(const kg::Dataset& dataset, int num_bins = 24,
              TransEConfig transe_config = {});

  std::string name() const override { return "KGA"; }
  Capabilities capabilities() const override {
    return {.num_aware = true, .one_hop = true, .multi_hop = true,
            .same_attr = true, .multi_attr = false};
  }
  void Train() override;
  double Predict(kg::EntityId entity, kg::AttributeId attribute) override;

 private:
  /// Bin index of a value under the attribute's quantile edges.
  int BinOf(kg::AttributeId a, double value) const;

  int num_bins_;
  TransEConfig transe_config_;
  std::unique_ptr<TransE> transe_;
  /// Per attribute: ascending bin upper edges (num_bins_-1 of them).
  std::vector<std::vector<double>> bin_edges_;
  /// Per attribute: representative (median) value per bin.
  std::vector<std::vector<double>> bin_values_;
  /// Augmented-graph ids.
  int64_t bin_entity_base_ = 0;    // bin entity id = base + a * num_bins_ + b
  int64_t attr_relation_base_ = 0; // relation id = base + 2 * a (TransE ids)
};

}  // namespace baselines
}  // namespace chainsformer

#endif  // CHAINSFORMER_BASELINES_KGA_H_
