#include "baselines/kga.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace chainsformer {
namespace baselines {

KgaBaseline::KgaBaseline(const kg::Dataset& dataset, int num_bins,
                         TransEConfig transe_config)
    : NumericPredictor(dataset),
      num_bins_(num_bins),
      transe_config_(transe_config) {}

int KgaBaseline::BinOf(kg::AttributeId a, double value) const {
  const auto& edges = bin_edges_[static_cast<size_t>(a)];
  return static_cast<int>(std::upper_bound(edges.begin(), edges.end(), value) -
                          edges.begin());
}

void KgaBaseline::Train() {
  const auto& graph = dataset_.graph;
  const int64_t num_attrs = graph.num_attributes();

  // Quantile binning per attribute over the training values.
  bin_edges_.assign(static_cast<size_t>(num_attrs), {});
  bin_values_.assign(static_cast<size_t>(num_attrs), {});
  std::vector<std::vector<double>> values(static_cast<size_t>(num_attrs));
  for (const auto& t : dataset_.split.train) {
    values[static_cast<size_t>(t.attribute)].push_back(t.value);
  }
  for (int64_t a = 0; a < num_attrs; ++a) {
    auto& vals = values[static_cast<size_t>(a)];
    std::sort(vals.begin(), vals.end());
    auto& edges = bin_edges_[static_cast<size_t>(a)];
    auto& reps = bin_values_[static_cast<size_t>(a)];
    if (vals.empty()) {
      reps.assign(static_cast<size_t>(num_bins_), 0.0);
      continue;
    }
    for (int b = 1; b < num_bins_; ++b) {
      const size_t idx = std::min(vals.size() - 1, b * vals.size() / num_bins_);
      edges.push_back(vals[idx]);
    }
    // Median of each bin as representative (de-binning value).
    std::vector<std::vector<double>> bucket(static_cast<size_t>(num_bins_));
    for (double v : vals) {
      bucket[static_cast<size_t>(std::min(
          num_bins_ - 1,
          static_cast<int>(std::upper_bound(edges.begin(), edges.end(), v) -
                           edges.begin())))]
          .push_back(v);
    }
    reps.resize(static_cast<size_t>(num_bins_));
    double last = vals[vals.size() / 2];
    for (int b = 0; b < num_bins_; ++b) {
      auto& bk = bucket[static_cast<size_t>(b)];
      if (!bk.empty()) last = bk[bk.size() / 2];
      reps[static_cast<size_t>(b)] = last;
    }
  }

  // Augmented graph: base triples + (entity, has_<attr>, bin entity).
  bin_entity_base_ = graph.num_entities();
  attr_relation_base_ = graph.num_relation_ids();
  const int64_t total_entities = bin_entity_base_ + num_attrs * num_bins_;
  const int64_t total_relations = attr_relation_base_ + 2 * num_attrs;

  std::vector<kg::RelationalTriple> triples = graph.relational_triples();
  for (const auto& t : dataset_.split.train) {
    const int b = std::min(num_bins_ - 1, BinOf(t.attribute, t.value));
    triples.push_back(kg::RelationalTriple{
        t.entity,
        static_cast<kg::RelationId>(attr_relation_base_ + 2 * t.attribute),
        static_cast<kg::EntityId>(bin_entity_base_ + t.attribute * num_bins_ + b)});
  }
  transe_ = std::make_unique<TransE>(total_entities, total_relations, transe_config_);
  transe_->Train(triples);
}

double KgaBaseline::Predict(kg::EntityId entity, kg::AttributeId attribute) {
  if (transe_ == nullptr) return Fallback(attribute);
  const auto& reps = bin_values_[static_cast<size_t>(attribute)];
  if (reps.empty()) return Fallback(attribute);
  const auto rel =
      static_cast<kg::RelationId>(attr_relation_base_ + 2 * attribute);
  int best = 0;
  double best_score = -1e300;
  for (int b = 0; b < num_bins_; ++b) {
    const auto bin_entity = static_cast<kg::EntityId>(
        bin_entity_base_ + attribute * num_bins_ + b);
    const double s = transe_->Score(entity, rel, bin_entity);
    if (s > best_score) {
      best_score = s;
      best = b;
    }
  }
  return reps[static_cast<size_t>(best)];
}

}  // namespace baselines
}  // namespace chainsformer
