#ifndef CHAINSFORMER_BASELINES_MRAP_H_
#define CHAINSFORMER_BASELINES_MRAP_H_

#include <unordered_map>
#include <vector>

#include "baselines/baseline.h"

namespace chainsformer {
namespace baselines {

/// MrAP (Bayram et al., ICASSP 2021): multi-relational attribute
/// propagation. For every (relation, source-attribute, target-attribute)
/// combination with enough co-observed endpoint pairs, a linear edge model
/// y ≈ α x + β is fit by least squares on normalized values; message passing
/// then iteratively propagates known attribute values across 1-hop edges,
/// each unlabeled node taking the confidence-weighted mean of its incoming
/// transformed messages. Propagation is local per step (the paper's
/// "confined to local neighbors"), though iteration diffuses information —
/// faithfully to the original method.
class MrapBaseline : public NumericPredictor {
 public:
  explicit MrapBaseline(const kg::Dataset& dataset, int iterations = 8,
                        int min_support = 8);

  std::string name() const override { return "MrAP"; }
  Capabilities capabilities() const override {
    return {.num_aware = false, .one_hop = true, .multi_hop = false,
            .same_attr = true, .multi_attr = true};
  }
  void Train() override;
  double Predict(kg::EntityId entity, kg::AttributeId attribute) override;

 private:
  struct EdgeModel {
    double alpha = 1.0;
    double beta = 0.0;
    double weight = 0.0;  // confidence from support and residual variance
  };

  /// Model lookup key: (relation id, source attr, target attr).
  static uint64_t ModelKey(kg::RelationId r, kg::AttributeId src,
                           kg::AttributeId dst) {
    return (static_cast<uint64_t>(static_cast<uint32_t>(r)) << 32) |
           (static_cast<uint64_t>(static_cast<uint16_t>(src)) << 16) |
           static_cast<uint16_t>(dst);
  }

  int iterations_;
  int min_support_;
  std::unordered_map<uint64_t, EdgeModel> models_;
  /// estimate_[a][e]: propagated normalized value; has_estimate_ parallel.
  std::vector<std::vector<double>> estimate_;
  std::vector<std::vector<uint8_t>> has_estimate_;
};

}  // namespace baselines
}  // namespace chainsformer

#endif  // CHAINSFORMER_BASELINES_MRAP_H_
