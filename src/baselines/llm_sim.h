#ifndef CHAINSFORMER_BASELINES_LLM_SIM_H_
#define CHAINSFORMER_BASELINES_LLM_SIM_H_

#include <memory>

#include "baselines/baseline.h"
#include "core/query_retrieval.h"

namespace chainsformer {
namespace baselines {

/// Quality grade of the simulated LLM (Table VIII rows).
enum class LlmGrade { kGpt35, kGpt40 };

/// Simulated zero-shot LLM numerical reasoner (Table VIII).
///
/// Substitution: no LLM endpoint is available offline. The paper's protocol
/// feeds the model *only de-identified RA-Chains and their attribute values*
/// (entity semantics removed to prevent label leakage), so the LLM's job
/// reduces to zero-shot robust aggregation over chain evidence. We model
/// exactly that: the simulator receives the identical chains ChainsFormer
/// would see and aggregates them untrained —
///   * kGpt35: mixes all chains regardless of attribute match, mean
///     aggregation, high response noise (unit confusion / arithmetic slips);
///   * kGpt40: prefers exact-attribute chains, median aggregation, low
///     noise — strictly better, still untrained.
/// The comparison's point — a trained chain reasoner beats zero-shot
/// aggregation of the same inputs — is preserved by construction.
class LlmSimBaseline : public NumericPredictor {
 public:
  LlmSimBaseline(const kg::Dataset& dataset, LlmGrade grade,
                 int num_walks = 64, int max_hops = 3, uint64_t seed = 555);

  std::string name() const override {
    return grade_ == LlmGrade::kGpt35 ? "ChatGPT-3.5-sim" : "ChatGPT-4.0-sim";
  }
  Capabilities capabilities() const override {
    return {.num_aware = true, .one_hop = true, .multi_hop = true,
            .same_attr = true, .multi_attr = grade_ == LlmGrade::kGpt35};
  }
  void Train() override {}  // zero-shot
  double Predict(kg::EntityId entity, kg::AttributeId attribute) override;

 private:
  LlmGrade grade_;
  int max_hops_;
  int num_walks_;
  uint64_t seed_;
  std::unique_ptr<core::QueryRetrieval> retrieval_;
};

/// Simulated ToG-R (Sun et al., ICLR 2024): LLM-guided beam search over the
/// graph. The simulator explores with a noisy relevance heuristic (an LLM
/// pruning relations without task training), collects same-attribute values
/// at reached entities, and averages them. Exploration is shallow and the
/// pruning noisy, which reproduces ToG-R's profile in Table III: poor on
/// temporal/quantity attributes, decent on spatial ones (where any nearby
/// place is good evidence).
class TogSimBaseline : public NumericPredictor {
 public:
  TogSimBaseline(const kg::Dataset& dataset, int beam_width = 3, int depth = 2,
                 uint64_t seed = 777);

  std::string name() const override { return "ToG-R-sim"; }
  Capabilities capabilities() const override {
    return {.num_aware = false, .one_hop = true, .multi_hop = true,
            .same_attr = true, .multi_attr = false};
  }
  void Train() override {}  // zero-shot
  double Predict(kg::EntityId entity, kg::AttributeId attribute) override;

 private:
  int beam_width_;
  int depth_;
  uint64_t seed_;
};

}  // namespace baselines
}  // namespace chainsformer

#endif  // CHAINSFORMER_BASELINES_LLM_SIM_H_
