#ifndef CHAINSFORMER_BASELINES_SIMPLE_H_
#define CHAINSFORMER_BASELINES_SIMPLE_H_

#include "baselines/baseline.h"

namespace chainsformer {
namespace baselines {

/// Sanity floor: predicts the training mean of the attribute.
class GlobalMeanBaseline : public NumericPredictor {
 public:
  explicit GlobalMeanBaseline(const kg::Dataset& dataset)
      : NumericPredictor(dataset) {}

  std::string name() const override { return "GlobalMean"; }
  Capabilities capabilities() const override { return {}; }
  void Train() override {}
  double Predict(kg::EntityId entity, kg::AttributeId attribute) override;
};

/// Predicts the mean of the same attribute over 1-hop neighbors, falling
/// back to the global mean; the simplest graph-aware reference point.
class LocalMeanBaseline : public NumericPredictor {
 public:
  explicit LocalMeanBaseline(const kg::Dataset& dataset)
      : NumericPredictor(dataset) {}

  std::string name() const override { return "LocalMean"; }
  Capabilities capabilities() const override {
    return {.num_aware = false, .one_hop = true, .multi_hop = false,
            .same_attr = true, .multi_attr = false};
  }
  void Train() override {}
  double Predict(kg::EntityId entity, kg::AttributeId attribute) override;
};

}  // namespace baselines
}  // namespace chainsformer

#endif  // CHAINSFORMER_BASELINES_SIMPLE_H_
