#include "baselines/nap.h"

#include <cmath>

namespace chainsformer {
namespace baselines {

NapPlusPlusBaseline::NapPlusPlusBaseline(const kg::Dataset& dataset,
                                         int k_neighbors,
                                         TransEConfig transe_config)
    : NumericPredictor(dataset),
      k_neighbors_(k_neighbors),
      transe_config_(transe_config) {}

void NapPlusPlusBaseline::Train() {
  transe_ = std::make_unique<TransE>(dataset_.graph.num_entities(),
                                     dataset_.graph.num_relation_ids(),
                                     transe_config_);
  transe_->Train(dataset_.graph.relational_triples());
  holders_.assign(static_cast<size_t>(dataset_.graph.num_attributes()), {});
  for (const auto& t : dataset_.split.train) {
    holders_[static_cast<size_t>(t.attribute)].push_back(t.entity);
  }
}

double NapPlusPlusBaseline::Predict(kg::EntityId entity,
                                    kg::AttributeId attribute) {
  const auto& holders = holders_[static_cast<size_t>(attribute)];
  if (holders.empty() || transe_ == nullptr) return Fallback(attribute);
  const auto nearest = transe_->NearestEntities(entity, k_neighbors_, holders);
  if (nearest.empty()) return Fallback(attribute);
  double weighted = 0.0;
  double total = 0.0;
  for (kg::EntityId n : nearest) {
    double v = 0.0;
    if (!train_index_.Get(n, attribute, &v)) continue;
    const double w = 1.0 / (1e-6 + std::sqrt(transe_->EntityDistanceSq(entity, n)));
    weighted += w * v;
    total += w;
  }
  return total > 0.0 ? weighted / total : Fallback(attribute);
}

}  // namespace baselines
}  // namespace chainsformer
