#ifndef CHAINSFORMER_BASELINES_BASELINE_H_
#define CHAINSFORMER_BASELINES_BASELINE_H_

#include <string>
#include <vector>

#include "eval/metrics.h"
#include "kg/dataset.h"

namespace chainsformer {
namespace baselines {

/// Reasoning capabilities of a method (Table IV).
struct Capabilities {
  bool num_aware = false;   // value-conditioned representations
  bool one_hop = false;     // uses 1-hop neighbor evidence
  bool multi_hop = false;   // explicit multi-hop reasoning
  bool same_attr = false;   // same-attribute transfer
  bool multi_attr = false;  // cross-attribute transfer
};

/// Common interface of every numerical-reasoning method (baselines and
/// ChainsFormer adapters). The dataset must outlive the predictor.
class NumericPredictor {
 public:
  virtual ~NumericPredictor() = default;

  virtual std::string name() const = 0;
  virtual Capabilities capabilities() const = 0;

  /// Fits the model on dataset.split.train.
  virtual void Train() = 0;

  /// Predicts the value of (entity, attribute). Must fall back to a global
  /// statistic when no evidence exists — never NaN.
  virtual double Predict(kg::EntityId entity, kg::AttributeId attribute) = 0;

  /// Default evaluation: loops Predict over `queries`.
  eval::EvalResult Evaluate(const std::vector<kg::NumericalTriple>& queries);

 protected:
  explicit NumericPredictor(const kg::Dataset& dataset);

  const kg::Dataset& dataset_;
  std::vector<kg::AttributeStats> train_stats_;
  kg::NumericIndex train_index_;

  /// Training-mean fallback for an attribute.
  double Fallback(kg::AttributeId attribute) const;
};

}  // namespace baselines
}  // namespace chainsformer

#endif  // CHAINSFORMER_BASELINES_BASELINE_H_
