#include "baselines/simple.h"

namespace chainsformer {
namespace baselines {

double GlobalMeanBaseline::Predict(kg::EntityId entity, kg::AttributeId attribute) {
  (void)entity;
  return Fallback(attribute);
}

double LocalMeanBaseline::Predict(kg::EntityId entity, kg::AttributeId attribute) {
  double sum = 0.0;
  int64_t count = 0;
  for (const auto& e : dataset_.graph.Neighbors(entity)) {
    double v = 0.0;
    if (train_index_.Get(e.neighbor, attribute, &v)) {
      sum += v;
      ++count;
    }
  }
  return count > 0 ? sum / static_cast<double>(count) : Fallback(attribute);
}

}  // namespace baselines
}  // namespace chainsformer
