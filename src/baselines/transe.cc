#include "baselines/transe.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace chainsformer {
namespace baselines {

TransE::TransE(int64_t num_entities, int64_t num_relations,
               const TransEConfig& config)
    : num_entities_(num_entities),
      num_relations_(num_relations),
      config_(config),
      rng_(config.seed) {
  CF_CHECK_GT(num_entities, 0);
  CF_CHECK_GT(num_relations, 0);
  const float bound = 6.0f / std::sqrt(static_cast<float>(config_.dim));
  entities_.resize(static_cast<size_t>(num_entities * config_.dim));
  relations_.resize(static_cast<size_t>(num_relations * config_.dim));
  for (auto& v : entities_) v = static_cast<float>(rng_.Uniform(-bound, bound));
  for (auto& v : relations_) v = static_cast<float>(rng_.Uniform(-bound, bound));
  for (int64_t e = 0; e < num_entities_; ++e) NormalizeEntity(static_cast<kg::EntityId>(e));
}

void TransE::NormalizeEntity(kg::EntityId e) {
  float* v = Entity(e);
  double norm = 0.0;
  for (int64_t j = 0; j < config_.dim; ++j) norm += static_cast<double>(v[j]) * v[j];
  norm = std::sqrt(norm);
  if (norm > 1.0) {
    const float inv = static_cast<float>(1.0 / norm);
    for (int64_t j = 0; j < config_.dim; ++j) v[j] *= inv;
  }
}

double TransE::Score(kg::EntityId h, kg::RelationId r, kg::EntityId t) const {
  const float* hv = Entity(h);
  const float* rv = Relation(r);
  const float* tv = Entity(t);
  double d = 0.0;
  for (int64_t j = 0; j < config_.dim; ++j) {
    const double diff = static_cast<double>(hv[j]) + rv[j] - tv[j];
    d += diff * diff;
  }
  return -std::sqrt(d);
}

double TransE::EntityDistanceSq(kg::EntityId a, kg::EntityId b) const {
  const float* av = Entity(a);
  const float* bv = Entity(b);
  double d = 0.0;
  for (int64_t j = 0; j < config_.dim; ++j) {
    const double diff = static_cast<double>(av[j]) - bv[j];
    d += diff * diff;
  }
  return d;
}

void TransE::Train(const std::vector<kg::RelationalTriple>& triples) {
  if (triples.empty()) return;
  std::vector<size_t> order(triples.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;

  const int dim = config_.dim;
  std::vector<float> grad(static_cast<size_t>(dim));
  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    rng_.Shuffle(order);
    size_t budget = order.size();
    if (config_.max_triples_per_epoch > 0) {
      budget = std::min<size_t>(budget,
                                static_cast<size_t>(config_.max_triples_per_epoch));
    }
    for (size_t i = 0; i < budget; ++i) {
      const auto& pos = triples[order[i]];
      // Corrupt head or tail uniformly.
      kg::RelationalTriple neg = pos;
      if (rng_.Bernoulli(0.5)) {
        neg.head = static_cast<kg::EntityId>(
            rng_.UniformInt(static_cast<uint64_t>(num_entities_)));
      } else {
        neg.tail = static_cast<kg::EntityId>(
            rng_.UniformInt(static_cast<uint64_t>(num_entities_)));
      }
      const double d_pos = -Score(pos.head, pos.relation, pos.tail);
      const double d_neg = -Score(neg.head, neg.relation, neg.tail);
      if (d_pos + config_.margin <= d_neg) continue;  // margin satisfied

      // Gradient of ||h + r - t||: unit direction of (h + r - t).
      auto step = [&](const kg::RelationalTriple& t_, float sign) {
        float* hv = Entity(t_.head);
        float* rv = Relation(t_.relation);
        float* tv = Entity(t_.tail);
        double norm = 0.0;
        for (int j = 0; j < dim; ++j) {
          grad[static_cast<size_t>(j)] = hv[j] + rv[j] - tv[j];
          norm += static_cast<double>(grad[static_cast<size_t>(j)]) *
                  grad[static_cast<size_t>(j)];
        }
        norm = std::sqrt(std::max(norm, 1e-12));
        const float scale = sign * config_.lr / static_cast<float>(norm);
        for (int j = 0; j < dim; ++j) {
          const float g = grad[static_cast<size_t>(j)] * scale;
          hv[j] -= g;
          rv[j] -= g;
          tv[j] += g;
        }
      };
      step(pos, +1.0f);   // decrease positive distance
      step(neg, -1.0f);   // increase negative distance
      NormalizeEntity(pos.head);
      NormalizeEntity(pos.tail);
      NormalizeEntity(neg.head);
      NormalizeEntity(neg.tail);
    }
  }
}

std::vector<kg::EntityId> TransE::NearestEntities(
    kg::EntityId e, int k, const std::vector<kg::EntityId>& candidates) const {
  std::vector<std::pair<double, kg::EntityId>> scored;
  scored.reserve(candidates.size());
  for (kg::EntityId c : candidates) {
    if (c == e) continue;
    scored.emplace_back(EntityDistanceSq(e, c), c);
  }
  const size_t kk = std::min<size_t>(static_cast<size_t>(k), scored.size());
  std::partial_sort(scored.begin(), scored.begin() + static_cast<long>(kk),
                    scored.end());
  std::vector<kg::EntityId> out;
  out.reserve(kk);
  for (size_t i = 0; i < kk; ++i) out.push_back(scored[i].second);
  return out;
}

}  // namespace baselines
}  // namespace chainsformer
