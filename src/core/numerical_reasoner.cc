#include "core/numerical_reasoner.h"

#include <algorithm>

#include "tensor/ops.h"
#include "util/logging.h"
#include "util/metric_names.h"
#include "util/metrics.h"
#include "util/trace.h"

namespace chainsformer {
namespace core {

namespace ops = chainsformer::tensor;
using tensor::Tensor;

constexpr int64_t NumericalReasoner::kMaxLengthBuckets;

NumericalReasoner::NumericalReasoner(const ChainsFormerConfig& config, Rng& rng)
    : dim_(config.hidden_dim),
      projection_(config.projection),
      use_chain_weighting_(config.use_chain_weighting) {
  const int64_t proj_out = projection_ == ProjectionMode::kCombined ? 2 : 1;
  projection_mlp_ = std::make_unique<tensor::nn::Mlp>(
      std::vector<int64_t>{dim_, dim_, proj_out}, rng);
  RegisterModule(projection_mlp_.get());
  if (use_chain_weighting_) {
    length_emb_ =
        std::make_unique<tensor::nn::Embedding>(kMaxLengthBuckets, dim_, rng, 0.05f);
    treeformer_ = std::make_unique<tensor::nn::TransformerEncoder>(
        config.reasoner_layers, dim_, config.num_heads, 2 * dim_, rng);
    weight_mlp_ = std::make_unique<tensor::nn::Mlp>(
        std::vector<int64_t>{dim_, dim_, 1}, rng);
    RegisterModule(length_emb_.get());
    RegisterModule(treeformer_.get());
    RegisterModule(weight_mlp_.get());
  }
}

NumericalReasoner::Output NumericalReasoner::Forward(
    const std::vector<Tensor>& chain_reps,
    const std::vector<double>& normalized_values,
    const std::vector<int64_t>& lengths) const {
  CF_CHECK_GT(chain_reps.size(), 0u);
  return Forward(ops::Stack(chain_reps), normalized_values, lengths);
}

NumericalReasoner::Output NumericalReasoner::Forward(
    const Tensor& chain_reps, const std::vector<double>& normalized_values,
    const std::vector<int64_t>& lengths) const {
  // Stages 4 (projection) and 5 (aggregation) of the pipeline.
  static auto& reg = metrics::MetricsRegistry::Global();
  static auto* project_micros = reg.GetCounter(metrics::names::kPipelineProjectMicros);
  static auto* project_calls = reg.GetCounter(metrics::names::kPipelineProjectCalls);
  static auto* aggregate_micros = reg.GetCounter(metrics::names::kPipelineAggregateMicros);
  static auto* aggregate_calls = reg.GetCounter(metrics::names::kPipelineAggregateCalls);
  static auto* forwards = reg.GetCounter(metrics::names::kReasonerForwards);
  static auto* chains_per_forward =
      reg.GetHistogram(metrics::names::kReasonerChainsPerForward);

  CF_CHECK_EQ(chain_reps.dim(), 2);
  CF_CHECK_EQ(chain_reps.size(1), dim_);
  const int64_t k = chain_reps.size(0);
  CF_CHECK_GT(k, 0);
  CF_CHECK_EQ(static_cast<int64_t>(normalized_values.size()), k);
  CF_CHECK_EQ(static_cast<int64_t>(lengths.size()), k);
  forwards->Increment();
  chains_per_forward->Observe(static_cast<double>(k));

  // --- Numerical Prediction (Eqs. 17-19) -------------------------------------
  Tensor chain_preds;
  {
    CF_TRACE_SCOPE("project");
    metrics::ScopedTimer project_timer(project_micros, project_calls);
    Tensor raw = projection_mlp_->Forward(chain_reps);  // [k, 1] or [k, 2]
    std::vector<float> np(static_cast<size_t>(k));
    for (int64_t i = 0; i < k; ++i) {
      np[static_cast<size_t>(i)] =
          static_cast<float>(normalized_values[static_cast<size_t>(i)]);
    }
    Tensor vn = Tensor::FromVector({k, 1}, std::move(np));  // constant
    Tensor pred;
    switch (projection_) {
      case ProjectionMode::kDirect:
        pred = raw;  // n̂ = MLP(ẽ_c)
        break;
      case ProjectionMode::kTranslation:
        // n̂ = n_p + β
        pred = ops::Add(raw, vn);
        break;
      case ProjectionMode::kScaling:
        // n̂ = α n_p with α = 1 + MLP(ẽ_c)
        pred = ops::Mul(ops::AddScalar(raw, 1.0f), vn);
        break;
      case ProjectionMode::kCombined: {
        // n̂ = α (n_p + β)
        Tensor alpha = ops::AddScalar(ops::SliceCols(raw, 0, 1), 1.0f);
        Tensor beta = ops::SliceCols(raw, 1, 2);
        pred = ops::Mul(alpha, ops::Add(beta, vn));
        break;
      }
    }
    chain_preds = ops::Reshape(pred, {k});
  }

  // --- Logic Chain Weighting (Eqs. 20-22) -------------------------------------
  CF_TRACE_SCOPE("aggregate");
  metrics::ScopedTimer aggregate_timer(aggregate_micros, aggregate_calls);
  Tensor weights;
  if (use_chain_weighting_ && k > 1) {
    std::vector<int64_t> length_ids;
    length_ids.reserve(static_cast<size_t>(k));
    for (int64_t l : lengths) {
      length_ids.push_back(std::clamp<int64_t>(l, 0, kMaxLengthBuckets - 1));
    }
    Tensor c0 =
        ops::Add(chain_reps, length_emb_->Forward(length_ids));  // Eq. 20
    Tensor tree = treeformer_->Forward(c0);                      // [k, d]
    Tensor logits = ops::Reshape(weight_mlp_->Forward(tree), {k});  // [k]
    weights = ops::Softmax(logits);                              // Eq. 21
  } else {
    weights = Tensor::Full({k}, 1.0f / static_cast<float>(k));
  }

  Output out;
  out.chain_predictions = chain_preds;
  out.weights = weights;
  out.prediction = ops::Dot(weights, chain_preds);  // Eq. 22
  return out;
}

}  // namespace core
}  // namespace chainsformer
