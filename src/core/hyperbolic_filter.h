#ifndef CHAINSFORMER_CORE_HYPERBOLIC_FILTER_H_
#define CHAINSFORMER_CORE_HYPERBOLIC_FILTER_H_

#include <memory>
#include <vector>

#include "core/config.h"
#include "core/query_retrieval.h"
#include "core/ra_chain.h"
#include "hyperbolic/poincare.h"
#include "kg/knowledge_graph.h"
#include "tensor/nn.h"
#include "util/rng.h"

namespace chainsformer {
namespace core {

/// Hyperbolic Filter (§IV-C): embeds relations and attributes in a Poincaré
/// ball (tangent-space parameterization), composes RA-Chain embeddings by
/// Möbius addition (Eq. 7), and ranks chains by the affinity score of Eq. 9:
///
///   s_c^H = λ d(h_{a_p}, h_{a_q}) + (1 - λ) d(h_c, h_{a_q}).
///
/// Small combined distance means the chain's evidence attribute and relation
/// path sit close to the query attribute, i.e. the chain is relevant; the
/// top-k selection of Eq. 10 therefore keeps the k chains with the *lowest*
/// s_c^H (equivalently the highest affinity -s_c^H).
///
/// The embeddings are pre-trained with a self-supervised contrastive
/// objective: on training queries, a retrieved chain is a positive when its
/// (min-max normalized) evidence value agrees with the query's ground-truth
/// value and a negative when it disagrees strongly; a margin loss pulls
/// positives' scores below negatives'. This replaces the paper's end-to-end
/// signal (top-k selection is non-differentiable, so the filter must be
/// trained from a ranking surrogate either way).
///
/// FilterSpace::kEuclidean swaps the geometry for flat space (Fig. 7
/// comparison); kRandom disables scoring entirely (Table VI "w/o Hyperbolic
/// Filter").
class HyperbolicFilter : public tensor::nn::Module {
 public:
  HyperbolicFilter(int64_t num_relation_ids, int64_t num_attributes,
                   const ChainsFormerConfig& config);

  struct PretrainStats {
    int64_t steps = 0;
    int64_t pairs = 0;
    double final_loss = 0.0;
  };

  /// Contrastive pre-training over a sample of training queries.
  /// `attribute_stats` must be the *training-split* statistics used for
  /// normalization. No-op for FilterSpace::kRandom.
  PretrainStats Pretrain(const QueryRetrieval& retrieval,
                         const std::vector<kg::NumericalTriple>& train_triples,
                         const std::vector<kg::AttributeStats>& attribute_stats,
                         Rng& rng);

  /// Rebuilds the double-precision embedding snapshot used by Score().
  /// Called automatically by Pretrain(); call manually after external
  /// parameter updates.
  void SnapshotEmbeddings();

  /// Affinity of a chain: -s_c^H (higher = more relevant). For kRandom the
  /// score is uniform noise from `random_rng` (must be non-null then).
  double Score(const RAChain& chain, Rng* random_rng = nullptr) const;

  /// Eq. 10: the k most relevant chains of the ToC (random subset for
  /// kRandom). Stable ordering: descending affinity.
  TreeOfChains FilterTopK(const TreeOfChains& toc, int k, Rng& rng) const;

  /// Log-mapped (Eq. 12) relation/attribute embeddings, used to initialize
  /// the Chain Encoder's token tables so the encoder starts from the
  /// filter's geometry.
  std::vector<float> LogMappedRelation(kg::RelationId r) const;
  std::vector<float> LogMappedAttribute(kg::AttributeId a) const;

  int64_t dim() const { return dim_; }
  FilterSpace space() const { return space_; }

 private:
  /// Differentiable score for training (autograd tensors).
  tensor::Tensor ScoreT(const RAChain& chain) const;

  int64_t dim_;
  FilterSpace space_;
  float curvature_;
  float lambda_;
  int pretrain_queries_;
  float pretrain_lr_;
  std::unique_ptr<tensor::nn::Embedding> relation_emb_;   // tangent vectors
  std::unique_ptr<tensor::nn::Embedding> attribute_emb_;  // tangent vectors

  // Frozen double-precision snapshot for the scoring hot path.
  std::vector<hyperbolic::Vec> relation_points_;
  std::vector<hyperbolic::Vec> attribute_points_;
};

}  // namespace core
}  // namespace chainsformer

#endif  // CHAINSFORMER_CORE_HYPERBOLIC_FILTER_H_
