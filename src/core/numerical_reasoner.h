#ifndef CHAINSFORMER_CORE_NUMERICAL_REASONER_H_
#define CHAINSFORMER_CORE_NUMERICAL_REASONER_H_

#include <memory>
#include <vector>

#include "core/config.h"
#include "tensor/nn.h"

namespace chainsformer {
namespace core {

/// Numerical Reasoner (§IV-E): per-chain Numerical Prediction (Eqs. 17-19)
/// plus Treeformer-based Logic Chain Weighting (Eqs. 20-22).
///
/// All arithmetic happens in min-max-normalized value space (Eq. 23): the
/// caller normalizes every evidence value n_p by its *source* attribute's
/// training statistics and the target by the *query* attribute's, which
/// makes scaling/translation projections meaningful across heterogeneous
/// attributes. Projection outputs use a residual parameterization (α = 1 +
/// MLP(ẽ), β = MLP(ẽ)) so the model starts from the identity mapping
/// n̂ = n_p.
class NumericalReasoner : public tensor::nn::Module {
 public:
  NumericalReasoner(const ChainsFormerConfig& config, Rng& rng);

  struct Output {
    tensor::Tensor prediction;        // scalar, normalized query-value estimate
    tensor::Tensor chain_predictions; // [k], per-chain n̂ (normalized)
    tensor::Tensor weights;           // [k], importance scores ω (softmax)
  };

  /// `chain_reps`: value-aware chain representations ẽ_c (each [d]).
  /// `normalized_values`: evidence values n_p normalized by their source
  /// attribute. `lengths`: chain hop counts (for the length encoding of
  /// Eq. 20). All three must have equal size >= 1. Stacks the reps and
  /// delegates to the matrix overload below (row-wise identical results).
  Output Forward(const std::vector<tensor::Tensor>& chain_reps,
                 const std::vector<double>& normalized_values,
                 const std::vector<int64_t>& lengths) const;

  /// Matrix form: `chain_reps` is the stacked [k, d] representation matrix
  /// (e.g. straight from ChainEncoder::EncodeBatch). The projection MLP and
  /// per-chain arithmetic of Eqs. 17-19 run once on all k rows.
  Output Forward(const tensor::Tensor& chain_reps,
                 const std::vector<double>& normalized_values,
                 const std::vector<int64_t>& lengths) const;

  /// Number of rows in the length-embedding table; hop counts are clamped to
  /// [0, kMaxLengthBuckets - 1] before lookup (Eq. 20).
  static constexpr int64_t kMaxLengthBuckets = 8;

  /// Architecture/sub-module read access for the static-graph compiler
  /// (src/graph/plan.cc).
  ProjectionMode projection() const { return projection_; }
  bool use_chain_weighting() const { return use_chain_weighting_; }
  const tensor::nn::Mlp& projection_mlp() const { return *projection_mlp_; }
  const tensor::nn::Embedding& length_embedding() const { return *length_emb_; }
  const tensor::nn::TransformerEncoder& treeformer() const {
    return *treeformer_;
  }
  const tensor::nn::Mlp& weight_mlp() const { return *weight_mlp_; }

 private:
  int64_t dim_;
  ProjectionMode projection_;
  bool use_chain_weighting_;

  std::unique_ptr<tensor::nn::Mlp> projection_mlp_;  // d -> {1,2}
  std::unique_ptr<tensor::nn::Embedding> length_emb_;
  std::unique_ptr<tensor::nn::TransformerEncoder> treeformer_;
  std::unique_ptr<tensor::nn::Mlp> weight_mlp_;  // d -> 1 per chain row
};

}  // namespace core
}  // namespace chainsformer

#endif  // CHAINSFORMER_CORE_NUMERICAL_REASONER_H_
