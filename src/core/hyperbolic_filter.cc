#include "core/hyperbolic_filter.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "hyperbolic/poincare_ops.h"
#include "tensor/ops.h"
#include "tensor/optim.h"
#include "util/logging.h"
#include "util/metric_names.h"
#include "util/metrics.h"
#include "util/trace.h"

namespace chainsformer {
namespace core {

namespace ops = chainsformer::tensor;
using tensor::Tensor;

HyperbolicFilter::HyperbolicFilter(int64_t num_relation_ids,
                                   int64_t num_attributes,
                                   const ChainsFormerConfig& config)
    : dim_(config.filter_dim),
      space_(config.filter_space),
      curvature_(config.curvature),
      lambda_(config.lambda),
      pretrain_queries_(config.filter_pretrain_queries *
                        std::max(1, config.filter_pretrain_epochs)),
      pretrain_lr_(config.filter_lr) {
  Rng rng(config.seed ^ 0xF117E9ull);
  relation_emb_ =
      std::make_unique<tensor::nn::Embedding>(num_relation_ids, dim_, rng, 0.2f);
  attribute_emb_ =
      std::make_unique<tensor::nn::Embedding>(num_attributes, dim_, rng, 0.2f);
  RegisterModule(relation_emb_.get());
  RegisterModule(attribute_emb_.get());
  SnapshotEmbeddings();
}

void HyperbolicFilter::SnapshotEmbeddings() {
  auto snapshot = [&](const tensor::nn::Embedding& emb,
                      std::vector<hyperbolic::Vec>& out) {
    const auto& table = emb.table();
    const int64_t n = table.size(0);
    out.assign(static_cast<size_t>(n), hyperbolic::Vec());
    for (int64_t i = 0; i < n; ++i) {
      hyperbolic::Vec tangent(static_cast<size_t>(dim_));
      for (int64_t j = 0; j < dim_; ++j) {
        tangent[static_cast<size_t>(j)] = table.at(i, j);
      }
      out[static_cast<size_t>(i)] =
          space_ == FilterSpace::kHyperbolic
              ? hyperbolic::ExpMap0(tangent, curvature_)
              : tangent;  // Euclidean: tangent vectors are the embedding.
    }
  };
  snapshot(*relation_emb_, relation_points_);
  snapshot(*attribute_emb_, attribute_points_);
}

double HyperbolicFilter::Score(const RAChain& chain, Rng* random_rng) const {
  if (space_ == FilterSpace::kRandom) {
    CF_CHECK(random_rng != nullptr);
    return random_rng->Uniform();
  }
  const auto& aq = attribute_points_[static_cast<size_t>(chain.query_attribute)];
  const auto& ap = attribute_points_[static_cast<size_t>(chain.source_attribute)];
  std::vector<hyperbolic::Vec> rels;
  rels.reserve(chain.relations.size());
  for (kg::RelationId r : chain.relations) {
    rels.push_back(relation_points_[static_cast<size_t>(r)]);
  }
  double inter, intra;
  if (space_ == FilterSpace::kHyperbolic) {
    const hyperbolic::Vec hc = hyperbolic::MobiusAddChain(rels, curvature_);
    inter = hyperbolic::Distance(hc, aq, curvature_);
    intra = hyperbolic::Distance(ap, aq, curvature_);
  } else {
    hyperbolic::Vec hc(static_cast<size_t>(dim_), 0.0);
    for (const auto& r : rels) {
      for (size_t j = 0; j < hc.size(); ++j) hc[j] += r[j];
    }
    auto euclid = [](const hyperbolic::Vec& x, const hyperbolic::Vec& y) {
      double s = 0.0;
      for (size_t j = 0; j < x.size(); ++j) s += (x[j] - y[j]) * (x[j] - y[j]);
      return 2.0 * std::sqrt(s);  // c -> 0 limit of Eq. 2
    };
    inter = euclid(hc, aq);
    intra = euclid(ap, aq);
  }
  return -(lambda_ * intra + (1.0 - lambda_) * inter);
}

TreeOfChains HyperbolicFilter::FilterTopK(const TreeOfChains& toc, int k,
                                          Rng& rng) const {
  // Stage 2 of the pipeline. Score() returns a negated distance (higher is
  // better); the histograms record the positive distance s_c^H so bucket
  // boundaries line up with Eq. 3's geometry.
  static auto& reg = metrics::MetricsRegistry::Global();
  static auto* stage_micros = reg.GetCounter(metrics::names::kPipelineFilterMicros);
  static auto* stage_calls = reg.GetCounter(metrics::names::kPipelineFilterCalls);
  static auto* chains_in = reg.GetCounter(metrics::names::kFilterChainsIn);
  static auto* chains_kept = reg.GetCounter(metrics::names::kFilterChainsKept);
  static auto* chains_dropped = reg.GetCounter(metrics::names::kFilterChainsDropped);
  static auto* score_kept = reg.GetHistogram(metrics::names::kFilterDistanceKept);
  static auto* score_dropped = reg.GetHistogram(metrics::names::kFilterDistanceDropped);
  CF_TRACE_SCOPE("filter");
  metrics::ScopedTimer timer(stage_micros, stage_calls);

  chains_in->Increment(static_cast<int64_t>(toc.size()));
  if (static_cast<int>(toc.size()) <= k) {
    chains_kept->Increment(static_cast<int64_t>(toc.size()));
    return toc;
  }
  std::vector<std::pair<double, size_t>> scored;
  scored.reserve(toc.size());
  for (size_t i = 0; i < toc.size(); ++i) {
    scored.emplace_back(Score(toc[i], &rng), i);
  }
  std::partial_sort(scored.begin(), scored.begin() + k, scored.end(),
                    [](const auto& a, const auto& b) { return a.first > b.first; });
  chains_kept->Increment(k);
  chains_dropped->Increment(static_cast<int64_t>(scored.size()) - k);
  for (size_t i = 0; i < scored.size(); ++i) {
    (static_cast<int>(i) < k ? score_kept : score_dropped)
        ->Observe(-scored[i].first);
  }
  TreeOfChains out;
  out.reserve(static_cast<size_t>(k));
  for (int i = 0; i < k; ++i) out.push_back(toc[scored[static_cast<size_t>(i)].second]);
  return out;
}

Tensor HyperbolicFilter::ScoreT(const RAChain& chain) const {
  const Tensor aq_t = attribute_emb_->ForwardOne(chain.query_attribute);
  const Tensor ap_t = attribute_emb_->ForwardOne(chain.source_attribute);
  if (space_ == FilterSpace::kHyperbolic) {
    const float c = curvature_;
    Tensor aq = hyperbolic::HExpMap0(aq_t, c);
    Tensor ap = hyperbolic::HExpMap0(ap_t, c);
    Tensor hc = hyperbolic::HExpMap0(
        relation_emb_->ForwardOne(chain.relations[0]), c);
    for (size_t i = 1; i < chain.relations.size(); ++i) {
      hc = hyperbolic::HMobiusAdd(
          hc, hyperbolic::HExpMap0(relation_emb_->ForwardOne(chain.relations[i]), c),
          c);
    }
    Tensor inter = hyperbolic::HDistance(hc, aq, c);
    Tensor intra = hyperbolic::HDistance(ap, aq, c);
    return ops::Add(ops::MulScalar(intra, lambda_),
                    ops::MulScalar(inter, 1.0f - lambda_));
  }
  // Euclidean variant.
  Tensor hc = relation_emb_->ForwardOne(chain.relations[0]);
  for (size_t i = 1; i < chain.relations.size(); ++i) {
    hc = ops::Add(hc, relation_emb_->ForwardOne(chain.relations[i]));
  }
  Tensor inter = ops::MulScalar(ops::Norm(ops::Sub(hc, aq_t)), 2.0f);
  Tensor intra = ops::MulScalar(ops::Norm(ops::Sub(ap_t, aq_t)), 2.0f);
  return ops::Add(ops::MulScalar(intra, lambda_),
                  ops::MulScalar(inter, 1.0f - lambda_));
}

HyperbolicFilter::PretrainStats HyperbolicFilter::Pretrain(
    const QueryRetrieval& retrieval,
    const std::vector<kg::NumericalTriple>& train_triples,
    const std::vector<kg::AttributeStats>& attribute_stats, Rng& rng) {
  CF_TRACE_SCOPE("filter.pretrain");
  PretrainStats stats;
  if (space_ == FilterSpace::kRandom || train_triples.empty()) return stats;

  // This filter pre-trains with fewer walks than the main retrieval to stay
  // cheap; relevance structure is the same.
  constexpr float kMargin = 0.5f;
  constexpr double kPositiveThreshold = 0.12;
  constexpr double kNegativeThreshold = 0.30;
  const int num_queries = pretrain_queries_;  // sampled with replacement

  tensor::optim::Adam adam(Parameters(), pretrain_lr_);
  double running_loss = 0.0;
  int64_t loss_count = 0;

  for (int qi = 0; qi < num_queries; ++qi) {
    const auto& t =
        train_triples[rng.UniformInt(static_cast<uint64_t>(train_triples.size()))];
    const Query query{t.entity, t.attribute};
    TreeOfChains toc = retrieval.Retrieve(query, rng);
    if (toc.size() < 4) continue;

    const auto& qs = attribute_stats[static_cast<size_t>(t.attribute)];
    const double target = qs.Normalize(t.value);
    std::vector<size_t> positives, negatives;
    for (size_t i = 0; i < toc.size(); ++i) {
      const auto& ss =
          attribute_stats[static_cast<size_t>(toc[i].source_attribute)];
      const double err = std::fabs(ss.Normalize(toc[i].source_value) - target);
      if (err < kPositiveThreshold) positives.push_back(i);
      if (err > kNegativeThreshold) negatives.push_back(i);
    }
    if (positives.empty() || negatives.empty()) continue;

    // Up to 4 contrastive pairs per query.
    std::vector<Tensor> pair_losses;
    const int num_pairs =
        static_cast<int>(std::min<size_t>(4, std::min(positives.size(), negatives.size())));
    for (int p = 0; p < num_pairs; ++p) {
      const auto& pos =
          toc[positives[rng.UniformInt(static_cast<uint64_t>(positives.size()))]];
      const auto& neg =
          toc[negatives[rng.UniformInt(static_cast<uint64_t>(negatives.size()))]];
      // Hinge: relevant chains should score (distance) lower than noise.
      Tensor margin_loss = ops::Relu(
          ops::AddScalar(ops::Sub(ScoreT(pos), ScoreT(neg)), kMargin));
      pair_losses.push_back(margin_loss);
      ++stats.pairs;
    }
    Tensor loss = pair_losses.size() == 1
                      ? pair_losses[0]
                      : ops::Mean(ops::Concat(pair_losses, 0));
    adam.ZeroGrad();
    loss.Backward();
    adam.Step();
    running_loss += loss.item();
    ++loss_count;
    ++stats.steps;
  }
  stats.final_loss = loss_count > 0 ? running_loss / loss_count : 0.0;
  SnapshotEmbeddings();
  return stats;
}

std::vector<float> HyperbolicFilter::LogMappedRelation(kg::RelationId r) const {
  const auto& point = relation_points_[static_cast<size_t>(r)];
  const hyperbolic::Vec v = space_ == FilterSpace::kHyperbolic
                                ? hyperbolic::LogMap0(point, curvature_)
                                : point;
  return std::vector<float>(v.begin(), v.end());
}

std::vector<float> HyperbolicFilter::LogMappedAttribute(kg::AttributeId a) const {
  const auto& point = attribute_points_[static_cast<size_t>(a)];
  const hyperbolic::Vec v = space_ == FilterSpace::kHyperbolic
                                ? hyperbolic::LogMap0(point, curvature_)
                                : point;
  return std::vector<float>(v.begin(), v.end());
}

}  // namespace core
}  // namespace chainsformer
