#include "core/chain_encoder.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "core/numeric_encoding.h"
#include "tensor/ops.h"
#include "util/logging.h"
#include "util/metric_names.h"
#include "util/metrics.h"
#include "util/trace.h"

namespace chainsformer {
namespace core {

namespace ops = chainsformer::tensor;
using tensor::Tensor;

std::vector<float> EncodeFloat64Bits(double value) {
  std::vector<float> out(64);
  EncodeFloat64BitsInto(value, out.data());
  return out;
}

std::vector<float> EncodeLogFeatures(double value) {
  std::vector<float> out(64);
  EncodeLogFeaturesInto(value, out.data());
  return out;
}

ChainEncoder::ChainEncoder(int64_t num_relation_ids, int64_t num_attributes,
                           const ChainsFormerConfig& config, Rng& rng)
    : num_relation_ids_(num_relation_ids),
      num_attributes_(num_attributes),
      dim_(config.hidden_dim),
      encoder_type_(config.encoder_type),
      use_numerical_aware_(config.use_numerical_aware),
      numeric_encoding_(config.numeric_encoding) {
  const int64_t vocab = num_relation_ids + num_attributes + 1;
  token_emb_ = std::make_unique<tensor::nn::Embedding>(vocab, dim_, rng, 0.1f);
  RegisterModule(token_emb_.get());
  // Longest sequence: a_p + max_hops relations + a_q + end.
  position_emb_ = std::make_unique<tensor::nn::Embedding>(
      config.max_hops + 3, dim_, rng, 0.05f);
  RegisterModule(position_emb_.get());
  if (encoder_type_ == EncoderType::kTransformer) {
    transformer_ = std::make_unique<tensor::nn::TransformerEncoder>(
        config.encoder_layers, dim_, config.num_heads, 2 * dim_, rng);
    RegisterModule(transformer_.get());
  } else if (encoder_type_ == EncoderType::kLstm) {
    lstm_ = std::make_unique<tensor::nn::Lstm>(dim_, dim_, rng);
    RegisterModule(lstm_.get());
  }
  if (use_numerical_aware_) {
    mlp_alpha_ = std::make_unique<tensor::nn::Mlp>(
        std::vector<int64_t>{64, dim_, dim_ * dim_}, rng);
    mlp_beta_ = std::make_unique<tensor::nn::Mlp>(
        std::vector<int64_t>{64, dim_, dim_}, rng);
    RegisterModule(mlp_alpha_.get());
    RegisterModule(mlp_beta_.get());
  }
}

void ChainEncoder::InitializeFromFilter(const HyperbolicFilter& filter) {
  auto& table = token_emb_->mutable_table().data();
  const int64_t copy_dim = std::min<int64_t>(dim_, filter.dim());
  auto write_row = [&](int64_t row, const std::vector<float>& src) {
    for (int64_t j = 0; j < copy_dim; ++j) {
      table[static_cast<size_t>(row * dim_ + j)] = src[static_cast<size_t>(j)];
    }
  };
  for (int64_t r = 0; r < num_relation_ids_; ++r) {
    write_row(RelationToken(static_cast<kg::RelationId>(r)),
              filter.LogMappedRelation(static_cast<kg::RelationId>(r)));
  }
  for (int64_t a = 0; a < num_attributes_; ++a) {
    write_row(AttributeToken(static_cast<kg::AttributeId>(a)),
              filter.LogMappedAttribute(static_cast<kg::AttributeId>(a)));
  }
}

std::vector<int64_t> ChainEncoder::Tokenize(const RAChain& chain) const {
  // Eq. 11 token order: [a_p, r_l, ..., r_1, a_q, end].
  std::vector<int64_t> tokens;
  tokens.reserve(chain.relations.size() + 3);
  tokens.push_back(AttributeToken(chain.source_attribute));
  for (auto it = chain.relations.rbegin(); it != chain.relations.rend(); ++it) {
    tokens.push_back(RelationToken(*it));
  }
  tokens.push_back(AttributeToken(chain.query_attribute));
  tokens.push_back(EndToken());
  return tokens;
}

Tensor ChainEncoder::EncodeTokens(const RAChain& chain) const {
  const std::vector<int64_t> tokens = Tokenize(chain);
  Tensor seq = token_emb_->Forward(tokens);  // [seq, d]
  switch (encoder_type_) {
    case EncoderType::kTransformer: {
      // Add learned positional embeddings so the attention sees the
      // step-by-step order of the reasoning chain.
      std::vector<int64_t> positions(tokens.size());
      const int64_t max_pos = position_emb_->num_embeddings();
      for (size_t i = 0; i < tokens.size(); ++i) {
        positions[i] = std::min<int64_t>(static_cast<int64_t>(i), max_pos - 1);
      }
      seq = ops::Add(seq, position_emb_->Forward(positions));
      Tensor encoded = transformer_->Forward(seq);
      return ops::Row(encoded, static_cast<int64_t>(tokens.size()) - 1);
    }
    case EncoderType::kLstm:
      return lstm_->Forward(seq);
    case EncoderType::kMean: {
      // "w/o Chain Encoder": plain average of token embeddings.
      Tensor summed = ops::MatMul(
          Tensor::Full({1, static_cast<int64_t>(tokens.size())},
                       1.0f / static_cast<float>(tokens.size())),
          seq);
      return ops::Reshape(summed, {dim_});
    }
  }
  CF_LOG(Fatal) << "unknown encoder type";
  return Tensor();
}

Tensor ChainEncoder::Encode(const RAChain& chain) const {
  // Stage 3 of the pipeline.
  static auto& reg = metrics::MetricsRegistry::Global();
  static auto* stage_micros = reg.GetCounter(metrics::names::kPipelineEncodeMicros);
  static auto* stage_calls = reg.GetCounter(metrics::names::kPipelineEncodeCalls);
  static auto* chains_encoded = reg.GetCounter(metrics::names::kEncodeChainsEncoded);
  static auto* chain_length = reg.GetHistogram(metrics::names::kEncodeChainLength);
  CF_TRACE_SCOPE("encode");
  metrics::ScopedTimer timer(stage_micros, stage_calls);
  chains_encoded->Increment();
  chain_length->Observe(static_cast<double>(chain.relations.size()));

  Tensor e_c = EncodeTokens(chain);
  if (!use_numerical_aware_) return e_c;
  const std::vector<float> encoding =
      numeric_encoding_ == NumericEncoding::kFloat64Bits
          ? EncodeFloat64Bits(chain.source_value)
          : EncodeLogFeatures(chain.source_value);
  Tensor e_n = Tensor::FromVector({64}, encoding);
  // Eq. 15-16: value-conditioned affine transform of the chain embedding.
  // α starts near identity (residual form) so the transfer is a gentle
  // modulation at initialization.
  Tensor alpha = ops::Reshape(mlp_alpha_->Forward(e_n), {dim_, dim_});
  Tensor beta = mlp_beta_->Forward(e_n);
  Tensor rotated =
      ops::Reshape(ops::MatMul(ops::Reshape(e_c, {1, dim_}), alpha), {dim_});
  return ops::Add(ops::Add(e_c, rotated), beta);
}

Tensor ChainEncoder::AffineTransfer(const Tensor& e_c,
                                    const std::vector<double>& values) const {
  const int64_t k = e_c.size(0);
  // Both MLPs run once on the stacked [k, 64] bit-stream matrix (Eq. 14-16)
  // instead of k separate rank-1 passes; rows match the per-chain results
  // bit-for-bit (row-partitioned GEMMs).
  std::vector<float> bits;
  bits.reserve(static_cast<size_t>(k) * 64);
  for (double v : values) {
    const std::vector<float> encoding =
        numeric_encoding_ == NumericEncoding::kFloat64Bits
            ? EncodeFloat64Bits(v)
            : EncodeLogFeatures(v);
    bits.insert(bits.end(), encoding.begin(), encoding.end());
  }
  Tensor e_n = Tensor::FromVector({k, 64}, std::move(bits));
  Tensor alpha = ops::Reshape(mlp_alpha_->Forward(e_n), {k, dim_, dim_});
  Tensor beta = mlp_beta_->Forward(e_n);  // [k, d]
  Tensor rotated = ops::Reshape(
      ops::BatchMatMul(ops::Reshape(e_c, {k, 1, dim_}), alpha), {k, dim_});
  return ops::Add(ops::Add(e_c, rotated), beta);
}

Tensor ChainEncoder::EncodeBatch(const TreeOfChains& chains) const {
  const int64_t k = static_cast<int64_t>(chains.size());
  CF_CHECK_GT(k, 0);
  if (encoder_type_ != EncoderType::kTransformer) {
    // LSTM / mean ablations have no batched formulation; stack the
    // per-chain reference encodings instead.
    std::vector<Tensor> reps;
    reps.reserve(chains.size());
    for (const RAChain& c : chains) reps.push_back(Encode(c));
    return ops::Stack(reps);
  }

  static auto& reg = metrics::MetricsRegistry::Global();
  static auto* stage_micros = reg.GetCounter(metrics::names::kPipelineEncodeMicros);
  static auto* stage_calls = reg.GetCounter(metrics::names::kPipelineEncodeCalls);
  static auto* chains_encoded = reg.GetCounter(metrics::names::kEncodeChainsEncoded);
  static auto* batched_passes = reg.GetCounter(metrics::names::kEncodeBatchedPasses);
  static auto* chain_length = reg.GetHistogram(metrics::names::kEncodeChainLength);
  static auto* pad_waste = reg.GetHistogram(metrics::names::kEncodeBatchPadFractionPct);
  CF_TRACE_SCOPE("encode");
  metrics::ScopedTimer timer(stage_micros, stage_calls);
  batched_passes->Increment();
  chains_encoded->Increment(k);

  // Tokenize every chain and pad to the longest sequence.
  std::vector<std::vector<int64_t>> tokens(chains.size());
  int64_t max_len = 0;
  for (size_t i = 0; i < chains.size(); ++i) {
    tokens[i] = Tokenize(chains[i]);
    max_len = std::max<int64_t>(max_len, static_cast<int64_t>(tokens[i].size()));
    chain_length->Observe(static_cast<double>(chains[i].relations.size()));
  }
  const int64_t max_pos = position_emb_->num_embeddings();
  // Padding reuses the end token; the mask keeps those rows out of every
  // attention sum, and nothing downstream reads them, so no gradient flows
  // into the reused embedding row from padding.
  std::vector<int64_t> flat_tokens(static_cast<size_t>(k * max_len), EndToken());
  std::vector<int64_t> flat_positions(static_cast<size_t>(k * max_len), 0);
  std::vector<float> mask_values(static_cast<size_t>(k * max_len), 0.0f);
  int64_t total_tokens = 0;
  for (int64_t i = 0; i < k; ++i) {
    const auto& toks = tokens[static_cast<size_t>(i)];
    total_tokens += static_cast<int64_t>(toks.size());
    for (size_t p = 0; p < toks.size(); ++p) {
      const size_t flat = static_cast<size_t>(i * max_len) + p;
      flat_tokens[flat] = toks[p];
      flat_positions[flat] =
          std::min<int64_t>(static_cast<int64_t>(p), max_pos - 1);
      mask_values[flat] = 1.0f;
    }
  }
  pad_waste->Observe(100.0 * (1.0 - static_cast<double>(total_tokens) /
                                        static_cast<double>(k * max_len)));

  // Gathered embeddings + positions in one shot: [k*max_len, d].
  Tensor seq = ops::Add(token_emb_->Forward(flat_tokens),
                        position_emb_->Forward(flat_positions));
  Tensor mask = Tensor::FromVector({k, max_len}, std::move(mask_values));
  Tensor encoded =
      transformer_->Forward(ops::Reshape(seq, {k, max_len, dim_}), mask);
  // Each chain's embedding e_c is its end token's final representation
  // (Eq. 13); Gather's scatter-add backward routes gradients to exactly
  // those rows.
  std::vector<int64_t> end_rows(static_cast<size_t>(k));
  for (int64_t i = 0; i < k; ++i) {
    end_rows[static_cast<size_t>(i)] =
        i * max_len + static_cast<int64_t>(tokens[static_cast<size_t>(i)].size()) - 1;
  }
  Tensor e_c =
      ops::Gather(ops::Reshape(encoded, {k * max_len, dim_}), end_rows);
  if (!use_numerical_aware_) return e_c;
  std::vector<double> values;
  values.reserve(chains.size());
  for (const RAChain& c : chains) values.push_back(c.source_value);
  return AffineTransfer(e_c, values);
}

}  // namespace core
}  // namespace chainsformer
