#include "core/query_retrieval.h"

#include <algorithm>
#include <unordered_set>

#include "util/logging.h"
#include "util/metric_names.h"
#include "util/metrics.h"
#include "util/trace.h"

namespace chainsformer {
namespace core {

QueryRetrieval::QueryRetrieval(const kg::KnowledgeGraph& graph,
                               const kg::NumericIndex& numeric, int max_hops,
                               int num_walks, RetrievalStrategy strategy)
    : graph_(graph),
      numeric_(numeric),
      max_hops_(max_hops),
      num_walks_(num_walks),
      strategy_(strategy) {
  CF_CHECK(graph.finalized());
  CF_CHECK_GE(max_hops, 1);
  CF_CHECK_GE(num_walks, 1);
}

bool QueryRetrieval::SampleEdge(kg::EntityId current,
                                const std::unordered_set<kg::EntityId>& on_path,
                                Rng& rng, kg::Edge* out) const {
  const auto neighbors = graph_.Neighbors(current);
  if (neighbors.empty()) return false;
  // A few tries to find an unvisited neighbor (cycle removal). Strategy
  // biases happen via weighted proposal, then the cycle check applies.
  for (int t = 0; t < 4; ++t) {
    const kg::Edge* proposal = nullptr;
    switch (strategy_) {
      case RetrievalStrategy::kUniform:
        proposal = &neighbors[rng.UniformInt(neighbors.size())];
        break;
      case RetrievalStrategy::kDegreeWeighted: {
        // Two uniform proposals, keep the higher-degree one.
        const kg::Edge& a = neighbors[rng.UniformInt(neighbors.size())];
        const kg::Edge& b = neighbors[rng.UniformInt(neighbors.size())];
        proposal = graph_.Degree(a.neighbor) >= graph_.Degree(b.neighbor) ? &a : &b;
        break;
      }
      case RetrievalStrategy::kEvidenceBiased: {
        // Two uniform proposals, prefer one carrying numeric facts.
        const kg::Edge& a = neighbors[rng.UniformInt(neighbors.size())];
        const kg::Edge& b = neighbors[rng.UniformInt(neighbors.size())];
        const bool a_has = !numeric_.Values(a.neighbor).empty();
        const bool b_has = !numeric_.Values(b.neighbor).empty();
        proposal = (a_has || !b_has) ? &a : &b;
        break;
      }
    }
    if (proposal != nullptr && on_path.count(proposal->neighbor) == 0) {
      *out = *proposal;
      return true;
    }
  }
  return false;
}

TreeOfChains QueryRetrieval::Retrieve(const Query& query, Rng& rng) const {
  return RetrieveImpl(query, rng, /*same_attribute_only=*/false);
}

TreeOfChains QueryRetrieval::RetrieveSameAttribute(const Query& query,
                                                   Rng& rng) const {
  return RetrieveImpl(query, rng, /*same_attribute_only=*/true);
}

TreeOfChains QueryRetrieval::RetrieveImpl(const Query& query, Rng& rng,
                                          bool same_attribute_only) const {
  // Stage 1 of the pipeline. pipeline.retrieval.micros accumulates wall time
  // so the training loop can report per-stage epoch deltas.
  static auto& reg = metrics::MetricsRegistry::Global();
  static auto* stage_micros = reg.GetCounter(metrics::names::kPipelineRetrievalMicros);
  static auto* stage_calls = reg.GetCounter(metrics::names::kPipelineRetrievalCalls);
  static auto* walks_taken = reg.GetCounter(metrics::names::kRetrievalWalksTaken);
  static auto* walks_empty = reg.GetCounter(metrics::names::kRetrievalWalksEmpty);
  static auto* chains_generated = reg.GetCounter(metrics::names::kRetrievalChainsGenerated);
  static auto* duplicates = reg.GetCounter(metrics::names::kRetrievalDuplicatesSuppressed);
  static auto* toc_size = reg.GetHistogram(metrics::names::kRetrievalTocSize);
  CF_TRACE_SCOPE("retrieval");
  metrics::ScopedTimer timer(stage_micros, stage_calls);

  TreeOfChains toc;
  toc.reserve(static_cast<size_t>(num_walks_));
  const int max_attempts = num_walks_ * 4;
  std::vector<kg::RelationId> walk_relations;
  std::unordered_set<kg::EntityId> on_path;
  // Duplicate suppression: the same (evidence fact, relation path) reached
  // by several walks adds no information but would crowd the top-k budget.
  std::unordered_set<uint64_t> seen;
  auto chain_key = [](const RAChain& c) {
    uint64_t h = 1469598103934665603ull;
    auto mix = [&h](uint64_t v) {
      h ^= v + 0x9E3779B97F4A7C15ull + (h << 6) + (h >> 2);
    };
    mix(static_cast<uint32_t>(c.source_entity));
    mix(static_cast<uint32_t>(c.source_attribute));
    for (kg::RelationId r : c.relations) mix(static_cast<uint32_t>(r) | (1u << 30));
    return h;
  };

  for (int attempt = 0;
       attempt < max_attempts && static_cast<int>(toc.size()) < num_walks_;
       ++attempt) {
    walks_taken->Increment();
    const int depth = static_cast<int>(rng.UniformInt(1, max_hops_));
    kg::EntityId cur = query.entity;
    walk_relations.clear();
    on_path.clear();
    on_path.insert(cur);

    for (int step = 0; step < depth; ++step) {
      kg::Edge edge;
      if (!SampleEdge(cur, on_path, rng, &edge)) break;
      cur = edge.neighbor;
      on_path.insert(cur);
      walk_relations.push_back(edge.relation);
    }
    if (walk_relations.empty()) {
      walks_empty->Increment();
      continue;
    }

    // Collect one (attribute, value) fact at the endpoint.
    const auto facts = numeric_.Values(cur);
    if (facts.empty()) continue;
    // Gather candidates (optionally restricted to the query attribute).
    size_t num_candidates = 0;
    std::pair<kg::AttributeId, double> chosen{-1, 0.0};
    for (const auto& f : facts) {
      if (same_attribute_only && f.first != query.attribute) continue;
      ++num_candidates;
      // Reservoir sampling of one candidate.
      if (rng.UniformInt(num_candidates) == 0) chosen = f;
    }
    if (num_candidates == 0) continue;

    RAChain chain;
    chain.source_attribute = chosen.first;
    chain.query_attribute = query.attribute;
    chain.source_value = chosen.second;
    chain.source_entity = cur;
    // Walk edges go query -> source; chain relations are source -> query:
    // r_j = inverse(e_{l+1-j}).
    chain.relations.reserve(walk_relations.size());
    for (auto it = walk_relations.rbegin(); it != walk_relations.rend(); ++it) {
      chain.relations.push_back(kg::KnowledgeGraph::InverseRelation(*it));
    }
    if (seen.insert(chain_key(chain)).second) {
      chains_generated->Increment();
      toc.push_back(std::move(chain));
    } else {
      duplicates->Increment();
    }
  }
  toc_size->Observe(static_cast<double>(toc.size()));
  return toc;
}

namespace {

int64_t CountChainsDfs(const kg::KnowledgeGraph& graph,
                       const kg::NumericIndex& numeric, kg::EntityId cur,
                       int remaining_hops, std::unordered_set<kg::EntityId>& on_path,
                       int64_t cap, int64_t* count) {
  if (*count >= cap) return *count;
  for (const auto& e : graph.Neighbors(cur)) {
    if (on_path.count(e.neighbor) != 0) continue;
    *count += static_cast<int64_t>(numeric.Values(e.neighbor).size());
    if (*count >= cap) return *count;
    if (remaining_hops > 1) {
      on_path.insert(e.neighbor);
      CountChainsDfs(graph, numeric, e.neighbor, remaining_hops - 1, on_path, cap,
                     count);
      on_path.erase(e.neighbor);
    }
  }
  return *count;
}

}  // namespace

int64_t QueryRetrieval::CountChains(const kg::KnowledgeGraph& graph,
                                    const kg::NumericIndex& numeric,
                                    kg::EntityId entity, int max_hops,
                                    int64_t cap) {
  std::unordered_set<kg::EntityId> on_path{entity};
  int64_t count = 0;
  CountChainsDfs(graph, numeric, entity, max_hops, on_path, cap, &count);
  return std::min(count, cap);
}

}  // namespace core
}  // namespace chainsformer
