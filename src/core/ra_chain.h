#ifndef CHAINSFORMER_CORE_RA_CHAIN_H_
#define CHAINSFORMER_CORE_RA_CHAIN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "kg/knowledge_graph.h"

namespace chainsformer {
namespace core {

/// A numerical-reasoning query (v_q, a_q, ?) — predict the value of
/// attribute a_q on entity v_q (Definition 1).
struct Query {
  kg::EntityId entity;
  kg::AttributeId attribute;
};

/// Relation-Attribute Chain (Eq. 5): the tokenized reasoning pattern
/// c = (a_p, r_1, ..., r_l, a_q) of the logic chain
/// n_p --a_p--> v_p --r_1--> ... --r_l--> v_q --a_q--> n_q, paired with its
/// evidence value n_p and source entity v_p (kept for traceability).
///
/// `relations` is stored in source-to-query order (r_1 first). Relation ids
/// may be inverse ids (odd), matching the paper's chains such as
/// (capital_inv, longitude).
struct RAChain {
  kg::AttributeId source_attribute;      // a_p
  std::vector<kg::RelationId> relations; // r_1 ... r_l, l >= 1
  kg::AttributeId query_attribute;       // a_q
  double source_value;                   // n_p
  kg::EntityId source_entity;            // v_p

  int64_t length() const { return static_cast<int64_t>(relations.size()); }

  /// Token id sequence for the Chain Encoder input (Eq. 11):
  /// [a_p, r_l, ..., r_1, a_q, end]. Attribute tokens are returned as
  /// negative-offset sentinels; see ChainEncoder for the vocabulary layout.
  /// Provided here only as documentation; tokenization lives in the encoder.

  /// Pattern identity: two chains with equal (a_p, relations, a_q) express
  /// the same reasoning pattern regardless of n_p / v_p.
  bool SamePattern(const RAChain& other) const {
    return source_attribute == other.source_attribute &&
           query_attribute == other.query_attribute &&
           relations == other.relations;
  }

  /// Human-readable pattern, e.g. "(sibling, birth)" in the paper's Table V
  /// notation: relations in query-to-source traversal order followed by the
  /// source attribute.
  std::string PatternString(const kg::KnowledgeGraph& graph) const;
};

/// Tree of Chains (Eq. 6): the retrieved chain set for one query.
using TreeOfChains = std::vector<RAChain>;

}  // namespace core
}  // namespace chainsformer

#endif  // CHAINSFORMER_CORE_RA_CHAIN_H_
