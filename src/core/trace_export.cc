#include "core/trace_export.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>

#include "util/logging.h"

namespace chainsformer {
namespace core {
namespace {

std::string Escape(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

std::string FormatWeight(double w) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", w);
  return buf;
}

std::string FormatValue(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f", v);
  return buf;
}

}  // namespace

std::string ExplanationToDot(const kg::KnowledgeGraph& graph, const Query& query,
                             const Explanation& explanation, int max_chains) {
  std::ostringstream os;
  os << "digraph chainsformer_trace {\n";
  os << "  rankdir=LR;\n";
  os << "  node [shape=box, style=rounded];\n";
  const std::string query_node = Escape(graph.EntityName(query.entity));
  os << "  \"" << query_node << "\" [style=\"rounded,filled\","
     << " fillcolor=lightblue, label=\"" << query_node << "\\n"
     << Escape(graph.AttributeName(query.attribute)) << " = "
     << FormatValue(explanation.prediction) << " (predicted)\"];\n";

  const int n = std::min<int>(max_chains,
                              static_cast<int>(explanation.weighted_chains.size()));
  std::set<std::string> declared;
  for (int i = 0; i < n; ++i) {
    const auto& [chain, weight] = explanation.weighted_chains[static_cast<size_t>(i)];
    const std::string src = Escape(graph.EntityName(chain.source_entity));
    if (declared.insert(src).second) {
      os << "  \"" << src << "\" [label=\"" << src << "\\n"
         << Escape(graph.AttributeName(chain.source_attribute)) << " = "
         << FormatValue(chain.source_value) << "\"];\n";
    }
    // One edge per chain, labeled with the relation path and its weight.
    // (Intermediate entities are not stored in RAChain — the pattern is the
    // reasoning-relevant content, per the paper's entity-agnostic chains.)
    std::string path;
    for (size_t r = 0; r < chain.relations.size(); ++r) {
      if (r != 0) path += " / ";
      path += graph.RelationName(chain.relations[r]);
    }
    const double shade = std::min(1.0, 0.25 + 3.0 * weight);
    os << "  \"" << src << "\" -> \"" << query_node << "\" [label=\""
       << Escape(path) << "\\nomega=" << FormatWeight(weight)
       << "\", penwidth=" << (0.5 + 6.0 * weight) << ", color=\"0.6 "
       << shade << " 0.8\"];\n";
  }
  os << "}\n";
  return os.str();
}

bool WriteExplanationDot(const std::string& path, const kg::KnowledgeGraph& graph,
                         const Query& query, const Explanation& explanation,
                         int max_chains) {
  const std::filesystem::path p(path);
  if (p.has_parent_path()) {
    std::error_code ec;
    std::filesystem::create_directories(p.parent_path(), ec);
    // A failure here (e.g. the parent exists as a regular file) surfaces as
    // the open failure below, which logs the offending path.
  }
  std::ofstream out(path);
  if (!out.good()) {
    CF_LOG(Error) << "trace_export: cannot open " << path << " for writing";
    return false;
  }
  out << ExplanationToDot(graph, query, explanation, max_chains);
  return out.good();
}

}  // namespace core
}  // namespace chainsformer
