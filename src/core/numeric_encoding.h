#ifndef CHAINSFORMER_CORE_NUMERIC_ENCODING_H_
#define CHAINSFORMER_CORE_NUMERIC_ENCODING_H_

namespace chainsformer {
namespace core {

/// Buffer form of EncodeFloat64Bits (chain_encoder.h): writes the Eq. 14
/// IEEE-754 bit stream of `value`, sign bit first, into out64[0..63].
/// Allocation-free — this is the form the static-graph executor uses to fill
/// its preallocated arena; the vector-returning wrapper delegates here, so
/// both paths produce identical bits by construction.
void EncodeFloat64BitsInto(double value, float* out64);

/// Buffer form of EncodeLogFeatures (chain_encoder.h): sign, scaled log1p
/// magnitude, and Fourier features thereof into out64[0..63]. Same contract
/// as EncodeFloat64BitsInto.
void EncodeLogFeaturesInto(double value, float* out64);

}  // namespace core
}  // namespace chainsformer

#endif  // CHAINSFORMER_CORE_NUMERIC_ENCODING_H_
