#include "core/chainsformer.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "tensor/checks.h"
#include "tensor/kernels.h"
#include "tensor/ops.h"
#include "tensor/serialize.h"
#include "util/logging.h"
#include "util/metric_names.h"
#include "util/metrics.h"
#include "util/stopwatch.h"
#include "util/trace.h"

namespace chainsformer {
namespace core {

namespace ops = chainsformer::tensor;
using tensor::Tensor;

namespace {

uint64_t QueryKey(const Query& q) {
  return (static_cast<uint64_t>(static_cast<uint32_t>(q.entity)) << 32) |
         static_cast<uint32_t>(q.attribute);
}

/// The five instrumented pipeline stages, in execution order. Each has a
/// "pipeline.<stage>.micros" counter accumulated by the stage itself.
constexpr const char* kPipelineStages[] = {"retrieval", "filter", "encode",
                                           "project", "aggregate"};

/// Sum of all five per-stage micros counters in `snap`.
int64_t TotalStageMicros(const metrics::MetricsSnapshot& snap) {
  int64_t total = 0;
  for (const char* stage : kPipelineStages) {
    total += snap.CounterValue(std::string("pipeline.") + stage + ".micros");
  }
  return total;
}

}  // namespace

ChainsFormerModel::ChainsFormerModel(const kg::Dataset& dataset,
                                     const ChainsFormerConfig& config)
    : dataset_(dataset),
      config_(config),
      train_stats_(kg::ComputeAttributeStats(dataset.split.train,
                                             dataset.graph.num_attributes())),
      train_index_(dataset.split.train, dataset.graph.num_entities()),
      rng_(config.seed) {
  tensor::kernels::SetKernelThreads(config.kernel_threads);
  tensor::SetCheckMode(config.check_mode);
  retrieval_ = std::make_unique<QueryRetrieval>(dataset.graph, train_index_,
                                                config.max_hops, config.num_walks,
                                                config.retrieval_strategy);
  filter_ = std::make_unique<HyperbolicFilter>(dataset.graph.num_relation_ids(),
                                               dataset.graph.num_attributes(),
                                               config);
  Rng model_rng(config.seed ^ 0xC0FFEEull);
  encoder_ = std::make_unique<ChainEncoder>(dataset.graph.num_relation_ids(),
                                            dataset.graph.num_attributes(),
                                            config, model_rng);
  reasoner_ = std::make_unique<NumericalReasoner>(config, model_rng);
  std::vector<Tensor> params = encoder_->Parameters();
  auto rp = reasoner_->Parameters();
  params.insert(params.end(), rp.begin(), rp.end());
  optimizer_ = std::make_unique<tensor::optim::Adam>(std::move(params),
                                                     config.learning_rate);
}

int64_t ChainsFormerModel::NumParameters() const {
  return encoder_->NumParameters() + reasoner_->NumParameters() +
         filter_->NumParameters();
}

double ChainsFormerModel::FallbackNormalized(kg::AttributeId a) const {
  const auto& s = train_stats_[static_cast<size_t>(a)];
  return s.count > 0 ? s.Normalize(s.mean) : 0.5;
}

double ChainsFormerModel::NormalizedTarget(const kg::NumericalTriple& t) const {
  return train_stats_[static_cast<size_t>(t.attribute)].Normalize(t.value);
}

const TreeOfChains& ChainsFormerModel::GetChains(const Query& query) {
  const uint64_t key = QueryKey(query);
  if (!config_.reretrieve_each_epoch) {
    auto it = chain_cache_.find(key);
    if (it != chain_cache_.end()) return it->second;
  }
  // Per-query deterministic stream so caching vs re-retrieval only changes
  // sampling freshness, not reproducibility.
  Rng walk_rng(config_.seed ^ (key * 0x9E3779B97F4A7C15ull) ^
               (config_.reretrieve_each_epoch ? rng_.Next() : 0));
  TreeOfChains toc = config_.same_attribute_only
                         ? retrieval_->RetrieveSameAttribute(query, walk_rng)
                         : retrieval_->Retrieve(query, walk_rng);
  TreeOfChains filtered = filter_->FilterTopK(toc, config_.top_k, walk_rng);
  auto [it, inserted] = chain_cache_.insert_or_assign(key, std::move(filtered));
  return it->second;
}

ChainsFormerModel::ForwardState ChainsFormerModel::Forward(const Query& query,
                                                           bool keep_chains) {
  // Borrow the cached ToC; it is only copied when chain-quality pruning
  // actually rewrites it or the caller asked to keep the chains.
  const TreeOfChains& cached = GetChains(query);
  if (config_.use_chain_quality && quality_.num_patterns() > 0) {
    TreeOfChains pruned = quality_.PruneLowQuality(
        cached, config_.chain_quality_max_error, /*min_keep=*/4);
    ForwardState state = ForwardOnChains(pruned);
    if (keep_chains && state.valid) state.used_chains = std::move(pruned);
    return state;
  }
  ForwardState state = ForwardOnChains(cached);
  if (keep_chains && state.valid) state.used_chains = cached;
  return state;
}

ChainsFormerModel::ForwardState ChainsFormerModel::ForwardOnChains(
    const TreeOfChains& chains) const {
  ForwardState state;
  if (chains.empty()) return state;

  std::vector<double> values;
  std::vector<int64_t> lengths;
  values.reserve(chains.size());
  lengths.reserve(chains.size());
  for (const RAChain& c : chains) {
    values.push_back(
        train_stats_[static_cast<size_t>(c.source_attribute)].Normalize(
            c.source_value));
    lengths.push_back(c.length());
  }
  NumericalReasoner::Output out;
  if (config_.batched_encoder) {
    // One masked Transformer pass over the whole ToC: the tensor stack sees
    // [k·max_len, d] GEMMs instead of k tiny per-chain products.
    out = reasoner_->Forward(encoder_->EncodeBatch(chains), values, lengths);
  } else {
    // Reference path: encode each chain separately.
    std::vector<Tensor> reps;
    reps.reserve(chains.size());
    for (const RAChain& c : chains) reps.push_back(encoder_->Encode(c));
    out = reasoner_->Forward(reps, values, lengths);
  }
  state.prediction = out.prediction;
  state.weights = out.weights;
  state.chain_predictions = out.chain_predictions;
  state.valid = true;
  return state;
}

TrainReport ChainsFormerModel::Train() {
  static auto& metric_reg = metrics::MetricsRegistry::Global();
  static auto* epochs_counter = metric_reg.GetCounter(metrics::names::kTrainEpochs);
  static auto* queries_counter = metric_reg.GetCounter(metrics::names::kTrainQueries);
  static auto* skipped_counter = metric_reg.GetCounter(metrics::names::kTrainQueriesSkipped);
  static auto* last_loss_gauge = metric_reg.GetGauge(metrics::names::kTrainLastLoss);
  static auto* last_valid_gauge = metric_reg.GetGauge(metrics::names::kTrainLastValidNmae);
  static auto* epoch_millis_hist = metric_reg.GetHistogram(metrics::names::kTrainEpochMillis);
  CF_TRACE_SCOPE("train");

  TrainReport report;

  // Stage 1: Hyperbolic Filter pre-training (frozen afterwards; its top-k
  // selection is non-differentiable).
  Rng filter_rng(config_.seed ^ 0xF117E12ull);
  const auto pstats = filter_->Pretrain(*retrieval_, dataset_.split.train,
                                        train_stats_, filter_rng);
  report.filter_pretrain_loss = pstats.final_loss;
  report.filter_pretrain_pairs = pstats.pairs;
  encoder_->InitializeFromFilter(*filter_);
  chain_cache_.clear();  // scores changed; re-filter

  // Stage 2: regression training (Algorithm 1).
  std::vector<kg::NumericalTriple> train = dataset_.split.train;
  double best_valid = std::numeric_limits<double>::infinity();
  int bad_epochs = 0;

  // Early stopping restores the best-validation weights at the end.
  std::vector<Tensor> live_params = encoder_->Parameters();
  {
    auto rp = reasoner_->Parameters();
    live_params.insert(live_params.end(), rp.begin(), rp.end());
  }
  std::vector<std::vector<float>> best_snapshot;
  auto take_snapshot = [&]() {
    best_snapshot.clear();
    best_snapshot.reserve(live_params.size());
    for (const Tensor& p : live_params) best_snapshot.push_back(p.data());
  };
  auto restore_snapshot = [&]() {
    if (best_snapshot.empty()) return;
    for (size_t i = 0; i < live_params.size(); ++i) {
      live_params[i].data() = best_snapshot[i];
    }
  };

  // Validation subsample for early stopping.
  std::vector<kg::NumericalTriple> valid = dataset_.split.valid;
  if (valid.size() > 200) {
    Rng vrng(config_.seed ^ 0x7A11Dull);
    vrng.Shuffle(valid);
    valid.resize(200);
  }
  // Per-epoch validation runs through EvaluateParallel (bit-identical to
  // Evaluate) when the config asks for more than one eval thread.
  std::unique_ptr<ThreadPool> valid_pool;
  if (config_.eval_threads != 1) {
    valid_pool = std::make_unique<ThreadPool>(
        config_.eval_threads > 1 ? static_cast<size_t>(config_.eval_threads) : 0);
  }

  // Per-attribute pools for balanced sampling.
  std::vector<std::vector<kg::NumericalTriple>> by_attr(
      static_cast<size_t>(dataset_.graph.num_attributes()));
  for (const auto& t : train) {
    by_attr[static_cast<size_t>(t.attribute)].push_back(t);
  }
  std::vector<size_t> nonempty_attrs;
  for (size_t a = 0; a < by_attr.size(); ++a) {
    if (!by_attr[a].empty()) nonempty_attrs.push_back(a);
  }

  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    CF_TRACE_SCOPE("train.epoch");
    // Stage-time bookkeeping: the per-stage micros counters are cumulative,
    // so an epoch's share is the delta across the epoch.
    const metrics::MetricsSnapshot epoch_begin = metric_reg.Snapshot();
    Stopwatch epoch_sw;
    rng_.Shuffle(train);
    const size_t budget =
        config_.max_train_queries > 0
            ? std::min<size_t>(train.size(),
                               static_cast<size_t>(config_.max_train_queries))
            : train.size();
    if (config_.balanced_attribute_sampling && !nonempty_attrs.empty()) {
      // Round-robin over attribute classes, random triple within a class.
      for (size_t i = 0; i < budget; ++i) {
        const auto& pool = by_attr[nonempty_attrs[i % nonempty_attrs.size()]];
        train[i] = pool[rng_.UniformInt(static_cast<uint64_t>(pool.size()))];
      }
    }
    double epoch_loss = 0.0;
    int64_t loss_count = 0;
    std::vector<Tensor> batch_losses;
    auto flush_batch = [&]() {
      if (batch_losses.empty()) return;
      Tensor loss = batch_losses.size() == 1
                        ? batch_losses[0]
                        : ops::Mean(ops::Concat(batch_losses, 0));
      optimizer_->ZeroGrad();
      loss.Backward();
      if (tensor::GetCheckMode() == tensor::CheckMode::kFull) {
        tensor::DebugCheckRootsReceivedGrad(live_params);
      }
      // live_params is the same encoder+reasoner parameter list, assembled
      // once before the epoch loop; no need to rebuild it every step.
      tensor::optim::ClipGradNorm(live_params, config_.grad_clip);
      optimizer_->Step();
      batch_losses.clear();
    };

    for (size_t i = 0; i < budget; ++i) {
      const auto& t = train[i];
      ForwardState state =
          Forward({t.entity, t.attribute}, /*keep_chains=*/config_.use_chain_quality);
      if (!state.valid) {
        skipped_counter->Increment();
        continue;
      }
      queries_counter->Increment();
      Tensor target = Tensor::Scalar(static_cast<float>(NormalizedTarget(t)));
      Tensor loss;
      switch (config_.loss) {
        case LossType::kL1:
          loss = ops::L1Loss(state.prediction, target);
          break;
        case LossType::kMse:
          loss = ops::MseLoss(state.prediction, target);
          break;
        case LossType::kSmoothL1:
          loss = ops::SmoothL1Loss(state.prediction, target, 0.1f);
          break;
      }
      epoch_loss += loss.item();
      ++loss_count;
      if (config_.use_chain_quality) {
        // Feed the quality evaluator with per-chain standalone errors.
        const double target_norm = NormalizedTarget(t);
        for (size_t ci = 0; ci < state.used_chains.size(); ++ci) {
          const double chain_pred =
              state.chain_predictions.at(static_cast<int64_t>(ci));
          quality_.Record(state.used_chains[ci],
                          std::fabs(chain_pred - target_norm));
        }
      }
      batch_losses.push_back(loss);
      if (static_cast<int>(batch_losses.size()) >= config_.batch_size) flush_batch();
    }
    flush_batch();
    report.train_losses.push_back(loss_count > 0 ? epoch_loss / loss_count : 0.0);

    // Early stopping on normalized validation MAE.
    const metrics::MetricsSnapshot valid_begin = metric_reg.Snapshot();
    eval::EvalResult vres;
    {
      CF_TRACE_SCOPE("train.valid_eval");
      vres = valid_pool ? EvaluateParallel(valid, *valid_pool) : Evaluate(valid);
    }
    report.valid_maes.push_back(vres.normalized_mae);
    ++report.epochs_run;
    epochs_counter->Increment();
    last_loss_gauge->Set(report.train_losses.back());
    last_valid_gauge->Set(vres.normalized_mae);
    const double epoch_millis = epoch_sw.ElapsedMicros() / 1000.0;
    epoch_millis_hist->Observe(epoch_millis);
    {
      const metrics::MetricsSnapshot epoch_end = metric_reg.Snapshot();
      std::map<std::string, double> stage_millis;
      for (const char* stage : kPipelineStages) {
        const std::string key = std::string("pipeline.") + stage + ".micros";
        stage_millis[stage] =
            (epoch_end.CounterValue(key) - epoch_begin.CounterValue(key)) /
            1000.0;
      }
      stage_millis["valid_eval"] =
          (TotalStageMicros(epoch_end) - TotalStageMicros(valid_begin)) / 1000.0;
      stage_millis["valid_eval_threads"] =
          valid_pool ? static_cast<double>(valid_pool->num_threads()) : 1.0;
      stage_millis["total"] = epoch_millis;
      report.epoch_stage_millis.push_back(std::move(stage_millis));
    }
    if (config_.verbose) {
      CF_LOG(Info) << dataset_.name << " epoch " << epoch << ": train_loss="
                   << report.train_losses.back()
                   << " valid_nmae=" << vres.normalized_mae;
    }
    if (vres.normalized_mae < best_valid - 1e-5) {
      best_valid = vres.normalized_mae;
      bad_epochs = 0;
      take_snapshot();
    } else if (++bad_epochs >= config_.patience) {
      break;
    }
  }
  restore_snapshot();
  report.best_valid_mae = best_valid;
  trained_ = true;
  return report;
}

namespace {

std::vector<Tensor> AllParameters(const HyperbolicFilter& filter,
                                  const ChainEncoder& encoder,
                                  const NumericalReasoner& reasoner) {
  std::vector<Tensor> params = filter.Parameters();
  auto ep = encoder.Parameters();
  auto rp = reasoner.Parameters();
  params.insert(params.end(), ep.begin(), ep.end());
  params.insert(params.end(), rp.begin(), rp.end());
  return params;
}

}  // namespace

bool ChainsFormerModel::SaveCheckpoint(const std::string& path) const {
  return tensor::SaveTensors(path, AllParameters(*filter_, *encoder_, *reasoner_));
}

bool ChainsFormerModel::SaveCheckpoint(std::ostream& out) const {
  return tensor::SaveTensorsToStream(out,
                                     AllParameters(*filter_, *encoder_, *reasoner_));
}

bool ChainsFormerModel::LoadCheckpoint(const std::string& path) {
  std::vector<Tensor> params = AllParameters(*filter_, *encoder_, *reasoner_);
  if (!tensor::LoadTensors(path, params)) return false;
  filter_->SnapshotEmbeddings();
  chain_cache_.clear();
  trained_ = true;
  return true;
}

bool ChainsFormerModel::LoadCheckpoint(std::istream& in) {
  std::vector<Tensor> params = AllParameters(*filter_, *encoder_, *reasoner_);
  if (!tensor::LoadTensorsFromStream(in, params)) return false;
  filter_->SnapshotEmbeddings();
  chain_cache_.clear();
  trained_ = true;
  return true;
}

void ChainsFormerModel::OverrideTrainStats(std::vector<kg::AttributeStats> stats) {
  CF_CHECK(stats.size() == train_stats_.size())
      << "OverrideTrainStats: got " << stats.size() << " attributes, model has "
      << train_stats_.size();
  train_stats_ = std::move(stats);
}

TreeOfChains ChainsFormerModel::RetrieveChains(const Query& query) const {
  CF_TRACE_SCOPE("serve.retrieve");
  // Mirror GetChains' deterministic (non-reretrieve) branch exactly so a
  // served prediction is bitwise-reproducible against Predict().
  Rng walk_rng(config_.seed ^ (QueryKey(query) * 0x9E3779B97F4A7C15ull));
  TreeOfChains toc = config_.same_attribute_only
                         ? retrieval_->RetrieveSameAttribute(query, walk_rng)
                         : retrieval_->Retrieve(query, walk_rng);
  TreeOfChains filtered = filter_->FilterTopK(toc, config_.top_k, walk_rng);
  if (config_.use_chain_quality && quality_.num_patterns() > 0) {
    return quality_.PruneLowQuality(filtered, config_.chain_quality_max_error,
                                    /*min_keep=*/4);
  }
  return filtered;
}

std::vector<BatchPrediction> ChainsFormerModel::PredictOnChainSets(
    const std::vector<Query>& queries,
    const std::vector<const TreeOfChains*>& chain_sets,
    ThreadPool* pool) const {
  CF_CHECK(queries.size() == chain_sets.size())
      << "PredictOnChainSets: " << queries.size() << " queries vs "
      << chain_sets.size() << " chain sets";
  CF_TRACE_SCOPE("serve.predict_batch");
  tensor::NoGradGuard no_grad;
  std::vector<BatchPrediction> out(queries.size());

  // Queries with evidence participate in the shared encoder pass; the rest
  // resolve immediately to the train-mean fallback.
  std::vector<size_t> live;
  live.reserve(queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    CF_CHECK(chain_sets[i] != nullptr) << "PredictOnChainSets: null chain set " << i;
    if (chain_sets[i]->empty()) {
      const auto& s = train_stats_[static_cast<size_t>(queries[i].attribute)];
      out[i].value = s.Denormalize(std::clamp(
          FallbackNormalized(queries[i].attribute), -0.1, 1.1));
      out[i].has_evidence = false;
    } else {
      live.push_back(i);
    }
  }
  if (live.empty()) return out;

  if (pool != nullptr && live.size() > 1) {
    // Throughput path: per-query forwards fan out across the pool, exactly
    // like EvaluateParallel — parameters are frozen, grad mode is
    // thread-local, and each worker runs the same compute Predict() would,
    // so every entry stays bitwise-identical to the serial answer.
    pool->ParallelFor(live.size(), [&](size_t j) {
      CF_TRACE_SCOPE("serve.batch_query");
      tensor::NoGradGuard worker_no_grad;
      const size_t i = live[j];
      ForwardState state = ForwardOnChains(*chain_sets[i]);
      const auto& s = train_stats_[static_cast<size_t>(queries[i].attribute)];
      const double normalized =
          state.valid ? static_cast<double>(state.prediction.item())
                      : FallbackNormalized(queries[i].attribute);
      out[i].value = s.Denormalize(std::clamp(normalized, -0.1, 1.1));
      out[i].has_evidence = state.valid;
    });
    return out;
  }

  auto finish = [&](size_t i, const NumericalReasoner::Output& r) {
    const auto& s = train_stats_[static_cast<size_t>(queries[i].attribute)];
    const double normalized =
        std::clamp(static_cast<double>(r.prediction.item()), -0.1, 1.1);
    out[i].value = s.Denormalize(normalized);
    out[i].has_evidence = true;
  };

  auto chain_inputs = [&](const TreeOfChains& chains, std::vector<double>& values,
                          std::vector<int64_t>& lengths) {
    values.reserve(chains.size());
    lengths.reserve(chains.size());
    for (const RAChain& c : chains) {
      values.push_back(
          train_stats_[static_cast<size_t>(c.source_attribute)].Normalize(
              c.source_value));
      lengths.push_back(c.length());
    }
  };

  if (config_.batched_encoder) {
    // Cross-request micro-batch: concatenate every live query's chains into
    // ONE masked EncodeBatch pass. DESIGN §6c guarantees each output row is
    // bit-identical to encoding that chain alone, so slicing the rows back
    // out per query reproduces Predict() exactly while the tensor stack sees
    // a single large GEMM workload instead of one dispatch per request.
    TreeOfChains merged;
    size_t total = 0;
    for (size_t i : live) total += chain_sets[i]->size();
    merged.reserve(total);
    for (size_t i : live) {
      merged.insert(merged.end(), chain_sets[i]->begin(), chain_sets[i]->end());
    }
    const Tensor reps = encoder_->EncodeBatch(merged);
    int64_t row = 0;
    for (size_t i : live) {
      const TreeOfChains& chains = *chain_sets[i];
      const int64_t k = static_cast<int64_t>(chains.size());
      std::vector<double> values;
      std::vector<int64_t> lengths;
      chain_inputs(chains, values, lengths);
      finish(i, reasoner_->Forward(ops::SliceRows(reps, row, row + k), values,
                                   lengths));
      row += k;
    }
  } else {
    // Reference path: per-chain encoding, no cross-request batching.
    for (size_t i : live) {
      const TreeOfChains& chains = *chain_sets[i];
      std::vector<Tensor> reps;
      reps.reserve(chains.size());
      for (const RAChain& c : chains) reps.push_back(encoder_->Encode(c));
      std::vector<double> values;
      std::vector<int64_t> lengths;
      chain_inputs(chains, values, lengths);
      finish(i, reasoner_->Forward(reps, values, lengths));
    }
  }
  return out;
}

eval::EvalResult ChainsFormerModel::EvaluateParallel(
    const std::vector<kg::NumericalTriple>& queries, ThreadPool& pool) {
  static auto* eval_queries =
      metrics::MetricsRegistry::Global().GetCounter(metrics::names::kEvalQueries);
  static auto* eval_fallbacks =
      metrics::MetricsRegistry::Global().GetCounter(metrics::names::kEvalFallbacks);
  CF_TRACE_SCOPE("evaluate_parallel");
  size_t limit = queries.size();
  if (config_.max_eval_queries > 0) {
    limit = std::min<size_t>(limit, static_cast<size_t>(config_.max_eval_queries));
  }
  // Phase 1 (serial): retrieval + filtering; the chain cache is mutable.
  std::vector<TreeOfChains> chain_sets(limit);
  for (size_t i = 0; i < limit; ++i) {
    const Query q{queries[i].entity, queries[i].attribute};
    TreeOfChains chains = GetChains(q);
    if (config_.use_chain_quality && quality_.num_patterns() > 0) {
      chains = quality_.PruneLowQuality(chains, config_.chain_quality_max_error, 4);
    }
    chain_sets[i] = std::move(chains);
  }
  // Phase 2 (parallel): per-query forwards over frozen parameters.
  std::vector<double> predictions(limit, 0.0);
  pool.ParallelFor(limit, [&](size_t i) {
    CF_TRACE_SCOPE("eval.query");
    tensor::NoGradGuard no_grad;  // grad mode is thread-local
    const auto& s = train_stats_[static_cast<size_t>(queries[i].attribute)];
    ForwardState state = ForwardOnChains(chain_sets[i]);
    eval_queries->Increment();
    if (!state.valid) eval_fallbacks->Increment();
    const double normalized =
        state.valid ? std::clamp(static_cast<double>(state.prediction.item()),
                                 -0.1, 1.1)
                    : FallbackNormalized(queries[i].attribute);
    predictions[i] = s.Denormalize(normalized);
  });
  eval::MetricsAccumulator acc(train_stats_);
  for (size_t i = 0; i < limit; ++i) {
    acc.Add(queries[i].attribute, predictions[i], queries[i].value);
  }
  return acc.Finalize();
}

eval::EvalResult ChainsFormerModel::Evaluate(
    const std::vector<kg::NumericalTriple>& queries) {
  tensor::NoGradGuard no_grad;
  eval::MetricsAccumulator acc(train_stats_);
  size_t limit = queries.size();
  if (config_.max_eval_queries > 0) {
    limit = std::min<size_t>(limit, static_cast<size_t>(config_.max_eval_queries));
  }
  for (size_t i = 0; i < limit; ++i) {
    const auto& t = queries[i];
    acc.Add(t.attribute, Predict({t.entity, t.attribute}), t.value);
  }
  return acc.Finalize();
}

double ChainsFormerModel::Predict(const Query& query) {
  static auto* eval_queries =
      metrics::MetricsRegistry::Global().GetCounter(metrics::names::kEvalQueries);
  static auto* eval_fallbacks =
      metrics::MetricsRegistry::Global().GetCounter(metrics::names::kEvalFallbacks);
  CF_TRACE_SCOPE("predict");
  tensor::NoGradGuard no_grad;
  ForwardState state = Forward(query);
  eval_queries->Increment();
  if (!state.valid) eval_fallbacks->Increment();
  const auto& s = train_stats_[static_cast<size_t>(query.attribute)];
  double normalized = state.valid
                          ? static_cast<double>(state.prediction.item())
                          : FallbackNormalized(query.attribute);
  // Predictions are kept near the observed training range; mildly widened
  // so test values just outside [min, max] stay reachable.
  normalized = std::clamp(normalized, -0.1, 1.1);
  return s.Denormalize(normalized);
}

Explanation ChainsFormerModel::Explain(const Query& query) {
  CF_TRACE_SCOPE("explain");
  tensor::NoGradGuard no_grad;
  Explanation ex;
  // Measure ToC size before filtering for the trace.
  Rng probe_rng(config_.seed ^ (QueryKey(query) * 0x9E3779B97F4A7C15ull));
  TreeOfChains raw = config_.same_attribute_only
                         ? retrieval_->RetrieveSameAttribute(query, probe_rng)
                         : retrieval_->Retrieve(query, probe_rng);
  ex.toc_size = raw.size();

  ForwardState state = Forward(query, /*keep_chains=*/true);
  const TreeOfChains& chains = state.used_chains;
  ex.filtered_size = chains.size();
  ex.has_evidence = state.valid;
  const auto& s = train_stats_[static_cast<size_t>(query.attribute)];
  const double normalized =
      state.valid ? std::clamp(static_cast<double>(state.prediction.item()), -0.1, 1.1)
                  : FallbackNormalized(query.attribute);
  ex.prediction = s.Denormalize(normalized);
  if (state.valid) {
    for (size_t i = 0; i < chains.size(); ++i) {
      ex.weighted_chains.emplace_back(
          chains[i], static_cast<double>(state.weights.at(static_cast<int64_t>(i))));
    }
    std::sort(ex.weighted_chains.begin(), ex.weighted_chains.end(),
              [](const auto& a, const auto& b) { return a.second > b.second; });
  }
  return ex;
}

std::vector<std::pair<std::string, double>> ChainsFormerModel::TopPatterns(
    kg::AttributeId attribute, int num_patterns, int sample_queries) {
  std::map<std::string, double> pattern_weight;
  Rng sample_rng(config_.seed ^ 0x7A77E12ull);
  std::vector<kg::NumericalTriple> candidates;
  for (const auto& t : dataset_.split.test) {
    if (t.attribute == attribute) candidates.push_back(t);
  }
  if (candidates.empty()) {
    for (const auto& t : dataset_.split.train) {
      if (t.attribute == attribute) candidates.push_back(t);
    }
  }
  sample_rng.Shuffle(candidates);
  const size_t n = std::min<size_t>(candidates.size(),
                                    static_cast<size_t>(sample_queries));
  for (size_t i = 0; i < n; ++i) {
    Explanation ex = Explain({candidates[i].entity, candidates[i].attribute});
    for (const auto& [chain, w] : ex.weighted_chains) {
      pattern_weight[chain.PatternString(dataset_.graph)] += w;
    }
  }
  std::vector<std::pair<std::string, double>> sorted(pattern_weight.begin(),
                                                     pattern_weight.end());
  std::sort(sorted.begin(), sorted.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  if (static_cast<int>(sorted.size()) > num_patterns) {
    sorted.resize(static_cast<size_t>(num_patterns));
  }
  return sorted;
}

}  // namespace core
}  // namespace chainsformer
