#ifndef CHAINSFORMER_CORE_TRACE_EXPORT_H_
#define CHAINSFORMER_CORE_TRACE_EXPORT_H_

#include <string>

#include "core/chainsformer.h"

namespace chainsformer {
namespace core {

/// Renders an Explanation as a Graphviz DOT digraph (the paper's Fig. 5
/// visual): the query entity in the center, one colored path per weighted
/// RA-Chain, edge labels carrying relation names and the chain's evidence
/// value/weight. `max_chains` bounds the number of rendered chains (highest
/// weight first).
std::string ExplanationToDot(const kg::KnowledgeGraph& graph, const Query& query,
                             const Explanation& explanation, int max_chains = 6);

/// Writes ExplanationToDot output to a file. Returns false on I/O failure.
bool WriteExplanationDot(const std::string& path, const kg::KnowledgeGraph& graph,
                         const Query& query, const Explanation& explanation,
                         int max_chains = 6);

}  // namespace core
}  // namespace chainsformer

#endif  // CHAINSFORMER_CORE_TRACE_EXPORT_H_
