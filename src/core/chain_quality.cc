#include "core/chain_quality.h"

#include <algorithm>
#include <vector>

namespace chainsformer {
namespace core {

ChainQualityEvaluator::ChainQualityEvaluator(double prior_error, double decay)
    : prior_error_(prior_error), decay_(decay) {}

uint64_t ChainQualityEvaluator::PatternHash(const RAChain& chain) {
  uint64_t h = 1469598103934665603ull;
  auto mix = [&h](uint64_t v) {
    h ^= v + 0x9E3779B97F4A7C15ull + (h << 6) + (h >> 2);
  };
  mix(static_cast<uint64_t>(static_cast<uint32_t>(chain.source_attribute)));
  for (kg::RelationId r : chain.relations) {
    mix(static_cast<uint64_t>(static_cast<uint32_t>(r)) | (1ull << 40));
  }
  mix(static_cast<uint64_t>(static_cast<uint32_t>(chain.query_attribute)) |
      (1ull << 41));
  return h;
}

void ChainQualityEvaluator::Record(const RAChain& chain, double abs_error) {
  auto [it, inserted] =
      stats_.try_emplace(PatternHash(chain), PatternStats{prior_error_, 0});
  PatternStats& s = it->second;
  s.ewma = decay_ * s.ewma + (1.0 - decay_) * abs_error;
  ++s.count;
}

double ChainQualityEvaluator::ExpectedError(const RAChain& chain) const {
  auto it = stats_.find(PatternHash(chain));
  return it == stats_.end() ? prior_error_ : it->second.ewma;
}

int64_t ChainQualityEvaluator::ObservationCount(const RAChain& chain) const {
  auto it = stats_.find(PatternHash(chain));
  return it == stats_.end() ? 0 : it->second.count;
}

TreeOfChains ChainQualityEvaluator::PruneLowQuality(const TreeOfChains& chains,
                                                    double max_expected_error,
                                                    size_t min_keep) const {
  TreeOfChains kept;
  for (const RAChain& c : chains) {
    if (ExpectedError(c) <= max_expected_error) kept.push_back(c);
  }
  if (kept.size() >= min_keep || kept.size() == chains.size()) return kept;
  // Too aggressive: fall back to the min_keep lowest-expected-error chains.
  std::vector<std::pair<double, size_t>> scored;
  scored.reserve(chains.size());
  for (size_t i = 0; i < chains.size(); ++i) {
    scored.emplace_back(ExpectedError(chains[i]), i);
  }
  const size_t n = std::min(min_keep, chains.size());
  std::partial_sort(scored.begin(), scored.begin() + static_cast<long>(n),
                    scored.end());
  TreeOfChains best;
  best.reserve(n);
  for (size_t i = 0; i < n; ++i) best.push_back(chains[scored[i].second]);
  return best;
}

}  // namespace core
}  // namespace chainsformer
