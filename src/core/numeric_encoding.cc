#include "core/numeric_encoding.h"

#include <cmath>
#include <cstdint>
#include <cstring>

namespace chainsformer {
namespace core {

void EncodeFloat64BitsInto(double value, float* out64) {
  uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(value));
  std::memcpy(&bits, &value, sizeof(bits));
  for (int i = 0; i < 64; ++i) {
    // MSB (sign bit) first.
    out64[i] = static_cast<float>((bits >> (63 - i)) & 1ull);
  }
}

void EncodeLogFeaturesInto(double value, float* out64) {
  for (int i = 0; i < 64; ++i) out64[i] = 0.0f;
  const double sign = value < 0.0 ? -1.0 : 1.0;
  const double mag = std::log1p(std::fabs(value));
  out64[0] = static_cast<float>(sign);
  out64[1] = static_cast<float>(mag / 25.0);  // log1p(3.1e9) ≈ 21.9
  for (int k = 0; k < 31; ++k) {
    const double freq = std::pow(1.35, k) * 0.1;
    out64[2 + 2 * k] = static_cast<float>(std::sin(freq * mag));
    out64[3 + 2 * k] = static_cast<float>(std::cos(freq * mag));
  }
}

}  // namespace core
}  // namespace chainsformer
