#ifndef CHAINSFORMER_CORE_CHAIN_ENCODER_H_
#define CHAINSFORMER_CORE_CHAIN_ENCODER_H_

#include <memory>
#include <vector>

#include "core/config.h"
#include "core/hyperbolic_filter.h"
#include "core/ra_chain.h"
#include "tensor/nn.h"

namespace chainsformer {
namespace core {

/// Encodes a double as the Float64 0-1 bit stream of Eq. 14 (f_n: R -> R^64,
/// IEEE-754 bits, sign bit first).
std::vector<float> EncodeFloat64Bits(double value);

/// Alternative log-magnitude encoding ("w Numerical-Aware by Log",
/// Table VI): sign, log1p magnitude, and Fourier features thereof, padded
/// to 64 dims so both encodings are interchangeable.
std::vector<float> EncodeLogFeatures(double value);

/// Chain Encoder (§IV-D): In-Context Chain Representation + Numerical-Aware
/// Affine Transfer.
///
/// Tokenization (Eq. 11): an RA-Chain becomes the sequence
/// [a_p, r_l, ..., r_1, a_q, end] over a joint vocabulary of relation ids,
/// attribute ids and one end token. Token embeddings are initialized from
/// the Hyperbolic Filter's log-mapped embeddings (Eq. 12) and then trained
/// with the main regression loss (the paper differentiates through the log
/// map; initializing-then-fine-tuning keeps the same geometry-informed
/// starting point while decoupling the filter, whose top-k selection is
/// non-differentiable anyway).
///
/// The sequence is read by an encoder-only Transformer (Eq. 13); the end
/// token's final representation is the chain embedding e_c. The
/// Numerical-Aware Affine Transfer (Eqs. 14-16) maps n_p to a Float64 bit
/// stream, generates an affine pair (E^α ∈ R^{d×d}, E^β ∈ R^d) with two
/// MLPs, and outputs ẽ_c = E^{αT} e_c + E^β.
class ChainEncoder : public tensor::nn::Module {
 public:
  ChainEncoder(int64_t num_relation_ids, int64_t num_attributes,
               const ChainsFormerConfig& config, Rng& rng);

  /// Copies the filter's log-mapped geometry into the token tables
  /// (truncating/zero-padding across dimensional mismatch).
  void InitializeFromFilter(const HyperbolicFilter& filter);

  /// Value-aware chain representation ẽ_c (rank-1, [hidden_dim]).
  tensor::Tensor Encode(const RAChain& chain) const;

  /// Encodes a whole Tree of Chains in one masked Transformer pass and
  /// returns the stacked representations [k, hidden_dim] (row i = ẽ_c of
  /// chains[i]). The k token sequences are padded to the longest length
  /// behind a key-padding mask, so every row matches the per-chain Encode
  /// result bit-for-bit while the tensor stack sees [k·max_len, d]-sized
  /// GEMMs instead of k tiny ones; the Numerical-Aware Affine Transfer MLPs
  /// likewise run once on the stacked [k, 64] bit-stream matrix. Non-
  /// Transformer encoder types fall back to per-chain encoding internally.
  /// Requires a non-empty chain set.
  tensor::Tensor EncodeBatch(const TreeOfChains& chains) const;

  int64_t hidden_dim() const { return dim_; }

  /// Token id of a relation / attribute / the end token in the joint
  /// vocabulary (exposed for tests).
  int64_t RelationToken(kg::RelationId r) const { return r; }
  int64_t AttributeToken(kg::AttributeId a) const { return num_relation_ids_ + a; }
  int64_t EndToken() const { return num_relation_ids_ + num_attributes_; }

  /// Architecture/sub-module read access for the static-graph compiler
  /// (src/graph/plan.cc), which re-derives EncodeBatch's exact op sequence
  /// from the frozen weights.
  EncoderType encoder_type() const { return encoder_type_; }
  bool use_numerical_aware() const { return use_numerical_aware_; }
  NumericEncoding numeric_encoding() const { return numeric_encoding_; }
  const tensor::nn::Embedding& token_embedding() const { return *token_emb_; }
  const tensor::nn::Embedding& position_embedding() const {
    return *position_emb_;
  }
  /// Valid only for EncoderType::kTransformer.
  const tensor::nn::TransformerEncoder& transformer() const {
    return *transformer_;
  }
  /// Affine-transfer MLPs (64 -> d*d and 64 -> d); valid only when
  /// use_numerical_aware() is true.
  const tensor::nn::Mlp& mlp_alpha() const { return *mlp_alpha_; }
  const tensor::nn::Mlp& mlp_beta() const { return *mlp_beta_; }

 private:
  tensor::Tensor EncodeTokens(const RAChain& chain) const;
  /// Eq. 11 token sequence [a_p, r_l, ..., r_1, a_q, end] of a chain.
  std::vector<int64_t> Tokenize(const RAChain& chain) const;
  /// Numerical-Aware Affine Transfer (Eqs. 14-16) applied to stacked chain
  /// embeddings e_c [k, d] with per-chain evidence values.
  tensor::Tensor AffineTransfer(const tensor::Tensor& e_c,
                                const std::vector<double>& values) const;

  int64_t num_relation_ids_;
  int64_t num_attributes_;
  int64_t dim_;
  EncoderType encoder_type_;
  bool use_numerical_aware_;
  NumericEncoding numeric_encoding_;

  std::unique_ptr<tensor::nn::Embedding> token_emb_;
  /// Learned positional embeddings: the chain is a *sequence* (Eq. 11), so
  /// the Transformer needs position information to see relation order.
  std::unique_ptr<tensor::nn::Embedding> position_emb_;
  std::unique_ptr<tensor::nn::TransformerEncoder> transformer_;
  std::unique_ptr<tensor::nn::Lstm> lstm_;
  std::unique_ptr<tensor::nn::Mlp> mlp_alpha_;  // 64 -> d*d
  std::unique_ptr<tensor::nn::Mlp> mlp_beta_;   // 64 -> d
};

}  // namespace core
}  // namespace chainsformer

#endif  // CHAINSFORMER_CORE_CHAIN_ENCODER_H_
