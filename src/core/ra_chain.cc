#include "core/ra_chain.h"

#include <sstream>

namespace chainsformer {
namespace core {

std::string RAChain::PatternString(const kg::KnowledgeGraph& graph) const {
  // Table V lists chains as traversed from the query entity toward the
  // evidence, i.e. inverse relations in reverse order, ending in the source
  // attribute: "(sibling, birth)".
  std::ostringstream os;
  os << "(";
  for (auto it = relations.rbegin(); it != relations.rend(); ++it) {
    os << graph.RelationName(kg::KnowledgeGraph::InverseRelation(*it)) << ", ";
  }
  os << graph.AttributeName(source_attribute) << ")";
  return os.str();
}

}  // namespace core
}  // namespace chainsformer
