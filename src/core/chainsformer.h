#ifndef CHAINSFORMER_CORE_CHAINSFORMER_H_
#define CHAINSFORMER_CORE_CHAINSFORMER_H_

#include <iosfwd>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/chain_encoder.h"
#include "core/chain_quality.h"
#include "core/config.h"
#include "core/hyperbolic_filter.h"
#include "core/numerical_reasoner.h"
#include "core/query_retrieval.h"
#include "core/ra_chain.h"
#include "eval/metrics.h"
#include "kg/dataset.h"
#include "tensor/optim.h"
#include "util/thread_pool.h"

namespace chainsformer {
namespace core {

/// Training summary (Algorithm 1 execution trace).
struct TrainReport {
  int epochs_run = 0;
  std::vector<double> train_losses;       // mean per epoch
  std::vector<double> valid_maes;         // normalized valid MAE per epoch
  double filter_pretrain_loss = 0.0;
  int64_t filter_pretrain_pairs = 0;
  double best_valid_mae = 0.0;
  /// Per-epoch wall time (ms) spent in each pipeline stage, computed from
  /// registry deltas: keys "retrieval", "filter", "encode", "project",
  /// "aggregate" (training + validation work combined), plus "valid_eval"
  /// (the validation pass, all stages), "valid_eval_threads" (worker count
  /// the validation pass ran with; 1 = serial Evaluate) and "total" (the
  /// whole epoch).
  std::vector<std::map<std::string, double>> epoch_stage_millis;
};

/// Explanation of one prediction: the reasoning trace of Fig. 5.
struct Explanation {
  double prediction = 0.0;              // denormalized value
  bool has_evidence = false;            // false -> fallback (train mean)
  size_t toc_size = 0;                  // chains retrieved
  size_t filtered_size = 0;             // chains after the Hyperbolic Filter
  /// (chain, importance weight ω), sorted by descending weight.
  std::vector<std::pair<RAChain, double>> weighted_chains;
};

/// One entry of a PredictOnChainSets() micro-batch result.
struct BatchPrediction {
  double value = 0.0;        // denormalized prediction
  bool has_evidence = false; // false -> train-mean fallback was used
};

/// End-to-end ChainsFormer model (Fig. 3): Query Retrieval -> Hyperbolic
/// Filter -> Chain Encoder -> Numerical Reasoner, trained per Algorithm 1.
///
/// The dataset must outlive the model. All stochastic behaviour derives
/// from config.seed.
///
/// Thread-safety: Train/Evaluate/Predict/Explain mutate internal caches and
/// must be externally serialized. The serving surface — RetrieveChains() and
/// PredictOnChainSets() — is const, touches no mutable state, and is safe to
/// call from any number of threads once training (or LoadCheckpoint) has
/// completed.
class ChainsFormerModel {
 public:
  ChainsFormerModel(const kg::Dataset& dataset, const ChainsFormerConfig& config);

  ChainsFormerModel(const ChainsFormerModel&) = delete;
  ChainsFormerModel& operator=(const ChainsFormerModel&) = delete;

  /// Pre-trains the filter, then runs the regression training loop with
  /// early stopping on validation MAE.
  ///
  /// Precondition: the dataset has a non-empty train split. Postcondition:
  /// the best-validation weights are restored and the model is ready for
  /// Predict/Evaluate/SaveCheckpoint.
  TrainReport Train();

  /// Evaluates on arbitrary numeric triples (typically the test split).
  eval::EvalResult Evaluate(const std::vector<kg::NumericalTriple>& queries);

  /// Thread-parallel evaluation. Chain retrieval runs serially (the chain
  /// cache is not thread-safe); the per-query encoder/reasoner forwards —
  /// the dominant cost — run on `pool`. The paper's complexity analysis
  /// (§IV-G) notes this per-query independence explicitly. Results are
  /// bit-identical to Evaluate().
  eval::EvalResult EvaluateParallel(const std::vector<kg::NumericalTriple>& queries,
                                    ThreadPool& pool);

  /// Predicts the (denormalized) value for a query.
  ///
  /// Precondition: the model is trained (Train() ran or LoadCheckpoint()
  /// succeeded); calling before that predicts with random weights.
  /// Postcondition: the result equals
  /// PredictOnChainSets({query}, {&RetrieveChains(query)}) bit-for-bit when
  /// reretrieve_each_epoch is off (the default).
  double Predict(const Query& query);

  /// Retrieves + filters + (optionally) quality-prunes chains for a query
  /// without touching the model's chain cache. Deterministic: the walk seed
  /// derives only from config.seed and the query, so repeated calls return
  /// identical Trees of Chains. Const and thread-safe; this is the retrieval
  /// entry point for the serving path (src/serve), where each client thread
  /// retrieves independently and caches externally.
  TreeOfChains RetrieveChains(const Query& query) const;

  /// Inference over a micro-batch of queries with pre-retrieved chain sets
  /// (usually from RetrieveChains, possibly via the serve-side cache).
  ///
  /// Preconditions: the model is trained; `chain_sets[i]` is the chain set
  /// for `queries[i]` (non-null; empty ToC is fine) and both spans have the
  /// same length. Postcondition: entry i is bitwise-identical to
  /// Predict(queries[i]) — when config.batched_encoder is on, all chains are
  /// concatenated into one masked EncodeBatch pass, which DESIGN §6c
  /// guarantees matches per-chain encoding bit-for-bit. Queries with an
  /// empty chain set get the train-mean fallback and has_evidence = false.
  /// Const and thread-safe (runs under NoGradGuard).
  ///
  /// With a non-null `pool` and more than one live query, the batch instead
  /// fans out per-query forwards across the pool (the EvaluateParallel
  /// pattern: each worker runs the exact Predict() compute over frozen
  /// parameters, so the bitwise postcondition is unchanged). This is the
  /// serving dispatcher's throughput path.
  std::vector<BatchPrediction> PredictOnChainSets(
      const std::vector<Query>& queries,
      const std::vector<const TreeOfChains*>& chain_sets,
      ThreadPool* pool = nullptr) const;

  /// Full reasoning trace for a query (Fig. 5 / Table V).
  Explanation Explain(const Query& query);

  /// Aggregates the highest-ω chain patterns for an attribute over a sample
  /// of queries (Table V). Returns (pattern string, total weight).
  std::vector<std::pair<std::string, double>> TopPatterns(
      kg::AttributeId attribute, int num_patterns, int sample_queries);

  /// Saves all trainable parameters (filter + encoder + reasoner) to a
  /// binary checkpoint. Returns false on I/O failure.
  bool SaveCheckpoint(const std::string& path) const;

  /// Stream form of SaveCheckpoint: writes the tensor section at the
  /// stream's current position so it can be embedded in a container format
  /// (serve::SaveModel). Returns false on I/O failure.
  bool SaveCheckpoint(std::ostream& out) const;

  /// Loads a checkpoint produced by SaveCheckpoint from a model with an
  /// identical configuration; refreshes the filter snapshot and invalidates
  /// chain caches. Postcondition on success: the model behaves as trained
  /// (Predict/Evaluate use the restored weights). Returns false on I/O
  /// failure or shape mismatch.
  bool LoadCheckpoint(const std::string& path);

  /// Stream form of LoadCheckpoint (reads one tensor section in place).
  bool LoadCheckpoint(std::istream& in);

  /// Replaces the train-split normalization stats (indexed by AttributeId).
  /// Checkpoint restore uses this so a loaded model denormalizes with the
  /// stats of the *saving* process even if the local dataset split differs.
  void OverrideTrainStats(std::vector<kg::AttributeStats> stats);

  const kg::Dataset& dataset() const { return dataset_; }
  const ChainsFormerConfig& config() const { return config_; }
  const HyperbolicFilter& filter() const { return *filter_; }
  /// Chain-quality statistics (populated when config.use_chain_quality).
  const ChainQualityEvaluator& chain_quality() const { return quality_; }
  const QueryRetrieval& retrieval() const { return *retrieval_; }
  const std::vector<kg::AttributeStats>& train_stats() const { return train_stats_; }
  /// Frozen Chain Encoder — read access for the static-graph compiler.
  const ChainEncoder& encoder() const { return *encoder_; }
  /// Frozen Numerical Reasoner — read access for the static-graph compiler.
  const NumericalReasoner& reasoner() const { return *reasoner_; }
  int64_t NumParameters() const;

  /// Fallback prediction (normalized) when a query has no chains: the
  /// training mean of the attribute (0.5 when the attribute was unseen in
  /// training). Exposed so the static-graph runtime reproduces the eager
  /// empty-chain-set path exactly.
  double FallbackNormalized(kg::AttributeId a) const;

 private:
  struct ForwardState {
    tensor::Tensor prediction;         // normalized scalar
    tensor::Tensor weights;            // [k]
    tensor::Tensor chain_predictions;  // [k], per-chain normalized n̂
    /// Chains that entered the reasoner; populated only when the caller
    /// requested them (Forward's keep_chains) — the common Predict/Evaluate
    /// path borrows the cached ToC without copying it.
    TreeOfChains used_chains;
    bool valid = false;
  };

  /// Retrieves + filters chains for a query, with caching.
  const TreeOfChains& GetChains(const Query& query);

  /// Differentiable forward pass over the query's chains. `keep_chains`
  /// copies the chain set into ForwardState::used_chains (needed by Explain
  /// and chain-quality recording; skipped otherwise).
  ForwardState Forward(const Query& query, bool keep_chains = false);

  /// Forward over a pre-fetched chain set (borrowed; not copied into the
  /// returned state). Touches no mutable model state, so it is safe to call
  /// concurrently under NoGradGuard.
  ForwardState ForwardOnChains(const TreeOfChains& chains) const;

  double NormalizedTarget(const kg::NumericalTriple& t) const;

  const kg::Dataset& dataset_;
  ChainsFormerConfig config_;
  std::vector<kg::AttributeStats> train_stats_;
  kg::NumericIndex train_index_;
  std::unique_ptr<QueryRetrieval> retrieval_;
  std::unique_ptr<HyperbolicFilter> filter_;
  std::unique_ptr<ChainEncoder> encoder_;
  std::unique_ptr<NumericalReasoner> reasoner_;
  std::unique_ptr<tensor::optim::Adam> optimizer_;
  Rng rng_;
  std::unordered_map<uint64_t, TreeOfChains> chain_cache_;
  ChainQualityEvaluator quality_;
  bool trained_ = false;
};

}  // namespace core
}  // namespace chainsformer

#endif  // CHAINSFORMER_CORE_CHAINSFORMER_H_
