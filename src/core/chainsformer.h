#ifndef CHAINSFORMER_CORE_CHAINSFORMER_H_
#define CHAINSFORMER_CORE_CHAINSFORMER_H_

#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/chain_encoder.h"
#include "core/chain_quality.h"
#include "core/config.h"
#include "core/hyperbolic_filter.h"
#include "core/numerical_reasoner.h"
#include "core/query_retrieval.h"
#include "core/ra_chain.h"
#include "eval/metrics.h"
#include "kg/dataset.h"
#include "tensor/optim.h"
#include "util/thread_pool.h"

namespace chainsformer {
namespace core {

/// Training summary (Algorithm 1 execution trace).
struct TrainReport {
  int epochs_run = 0;
  std::vector<double> train_losses;       // mean per epoch
  std::vector<double> valid_maes;         // normalized valid MAE per epoch
  double filter_pretrain_loss = 0.0;
  int64_t filter_pretrain_pairs = 0;
  double best_valid_mae = 0.0;
  /// Per-epoch wall time (ms) spent in each pipeline stage, computed from
  /// registry deltas: keys "retrieval", "filter", "encode", "project",
  /// "aggregate" (training + validation work combined), plus "valid_eval"
  /// (the validation pass, all stages), "valid_eval_threads" (worker count
  /// the validation pass ran with; 1 = serial Evaluate) and "total" (the
  /// whole epoch).
  std::vector<std::map<std::string, double>> epoch_stage_millis;
};

/// Explanation of one prediction: the reasoning trace of Fig. 5.
struct Explanation {
  double prediction = 0.0;              // denormalized value
  bool has_evidence = false;            // false -> fallback (train mean)
  size_t toc_size = 0;                  // chains retrieved
  size_t filtered_size = 0;             // chains after the Hyperbolic Filter
  /// (chain, importance weight ω), sorted by descending weight.
  std::vector<std::pair<RAChain, double>> weighted_chains;
};

/// End-to-end ChainsFormer model (Fig. 3): Query Retrieval -> Hyperbolic
/// Filter -> Chain Encoder -> Numerical Reasoner, trained per Algorithm 1.
///
/// The dataset must outlive the model. All stochastic behaviour derives
/// from config.seed.
class ChainsFormerModel {
 public:
  ChainsFormerModel(const kg::Dataset& dataset, const ChainsFormerConfig& config);

  ChainsFormerModel(const ChainsFormerModel&) = delete;
  ChainsFormerModel& operator=(const ChainsFormerModel&) = delete;

  /// Pre-trains the filter, then runs the regression training loop with
  /// early stopping on validation MAE.
  TrainReport Train();

  /// Evaluates on arbitrary numeric triples (typically the test split).
  eval::EvalResult Evaluate(const std::vector<kg::NumericalTriple>& queries);

  /// Thread-parallel evaluation. Chain retrieval runs serially (the chain
  /// cache is not thread-safe); the per-query encoder/reasoner forwards —
  /// the dominant cost — run on `pool`. The paper's complexity analysis
  /// (§IV-G) notes this per-query independence explicitly. Results are
  /// bit-identical to Evaluate().
  eval::EvalResult EvaluateParallel(const std::vector<kg::NumericalTriple>& queries,
                                    ThreadPool& pool);

  /// Predicts the (denormalized) value for a query.
  double Predict(const Query& query);

  /// Full reasoning trace for a query (Fig. 5 / Table V).
  Explanation Explain(const Query& query);

  /// Aggregates the highest-ω chain patterns for an attribute over a sample
  /// of queries (Table V). Returns (pattern string, total weight).
  std::vector<std::pair<std::string, double>> TopPatterns(
      kg::AttributeId attribute, int num_patterns, int sample_queries);

  /// Saves all trainable parameters (filter + encoder + reasoner) to a
  /// binary checkpoint. Returns false on I/O failure.
  bool SaveCheckpoint(const std::string& path) const;

  /// Loads a checkpoint produced by SaveCheckpoint from a model with an
  /// identical configuration; refreshes the filter snapshot and invalidates
  /// chain caches. Returns false on I/O failure or shape mismatch.
  bool LoadCheckpoint(const std::string& path);

  const ChainsFormerConfig& config() const { return config_; }
  const HyperbolicFilter& filter() const { return *filter_; }
  /// Chain-quality statistics (populated when config.use_chain_quality).
  const ChainQualityEvaluator& chain_quality() const { return quality_; }
  const QueryRetrieval& retrieval() const { return *retrieval_; }
  const std::vector<kg::AttributeStats>& train_stats() const { return train_stats_; }
  int64_t NumParameters() const;

 private:
  struct ForwardState {
    tensor::Tensor prediction;         // normalized scalar
    tensor::Tensor weights;            // [k]
    tensor::Tensor chain_predictions;  // [k], per-chain normalized n̂
    /// Chains that entered the reasoner; populated only when the caller
    /// requested them (Forward's keep_chains) — the common Predict/Evaluate
    /// path borrows the cached ToC without copying it.
    TreeOfChains used_chains;
    bool valid = false;
  };

  /// Retrieves + filters chains for a query, with caching.
  const TreeOfChains& GetChains(const Query& query);

  /// Differentiable forward pass over the query's chains. `keep_chains`
  /// copies the chain set into ForwardState::used_chains (needed by Explain
  /// and chain-quality recording; skipped otherwise).
  ForwardState Forward(const Query& query, bool keep_chains = false);

  /// Forward over a pre-fetched chain set (borrowed; not copied into the
  /// returned state). Touches no mutable model state, so it is safe to call
  /// concurrently under NoGradGuard.
  ForwardState ForwardOnChains(const TreeOfChains& chains) const;

  /// Fallback prediction (normalized) when a query has no chains: the
  /// training mean of the attribute.
  double FallbackNormalized(kg::AttributeId a) const;

  double NormalizedTarget(const kg::NumericalTriple& t) const;

  const kg::Dataset& dataset_;
  ChainsFormerConfig config_;
  std::vector<kg::AttributeStats> train_stats_;
  kg::NumericIndex train_index_;
  std::unique_ptr<QueryRetrieval> retrieval_;
  std::unique_ptr<HyperbolicFilter> filter_;
  std::unique_ptr<ChainEncoder> encoder_;
  std::unique_ptr<NumericalReasoner> reasoner_;
  std::unique_ptr<tensor::optim::Adam> optimizer_;
  Rng rng_;
  std::unordered_map<uint64_t, TreeOfChains> chain_cache_;
  ChainQualityEvaluator quality_;
  bool trained_ = false;
};

}  // namespace core
}  // namespace chainsformer

#endif  // CHAINSFORMER_CORE_CHAINSFORMER_H_
