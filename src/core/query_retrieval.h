#ifndef CHAINSFORMER_CORE_QUERY_RETRIEVAL_H_
#define CHAINSFORMER_CORE_QUERY_RETRIEVAL_H_

#include <unordered_set>

#include "core/config.h"
#include "core/ra_chain.h"
#include "kg/knowledge_graph.h"
#include "util/rng.h"

namespace chainsformer {
namespace core {

/// Query-guided retrieval (§IV-B): builds the Tree of Chains for a query by
/// running N_s random walks over the relational graph, pairing every reached
/// known numeric fact with the traversed relation path. Cycles are removed
/// (walks never revisit an entity), and the query's own triple can never be
/// used as evidence because walks have length >= 1 and are cycle-free.
class QueryRetrieval {
 public:
  /// `numeric` must index only the facts the model may see (training split).
  QueryRetrieval(const kg::KnowledgeGraph& graph, const kg::NumericIndex& numeric,
                 int max_hops, int num_walks,
                 RetrievalStrategy strategy = RetrievalStrategy::kUniform);

  /// Retrieves up to num_walks chains for the query (Eq. 6). Deterministic
  /// given `rng`'s state.
  TreeOfChains Retrieve(const Query& query, Rng& rng) const;

  /// Retrieval restricted to chains whose source attribute equals the query
  /// attribute ("Same-attr" setting of Fig. 4 / Table IV).
  TreeOfChains RetrieveSameAttribute(const Query& query, Rng& rng) const;

  int max_hops() const { return max_hops_; }
  int num_walks() const { return num_walks_; }

  /// Exhaustively counts the logic chains connected to `entity` within
  /// `max_hops` (simple relation paths x numeric facts at the endpoint) —
  /// the quantity plotted in Fig. 2. `cap` bounds the DFS work.
  static int64_t CountChains(const kg::KnowledgeGraph& graph,
                             const kg::NumericIndex& numeric,
                             kg::EntityId entity, int max_hops,
                             int64_t cap = 100000000);

 private:
  TreeOfChains RetrieveImpl(const Query& query, Rng& rng,
                            bool same_attribute_only) const;

  /// Picks the next edge under the configured strategy; returns false when
  /// no admissible (unvisited) neighbor was found.
  bool SampleEdge(kg::EntityId current,
                  const std::unordered_set<kg::EntityId>& on_path, Rng& rng,
                  kg::Edge* out) const;

  const kg::KnowledgeGraph& graph_;
  const kg::NumericIndex& numeric_;
  int max_hops_;
  int num_walks_;
  RetrievalStrategy strategy_;
};

}  // namespace core
}  // namespace chainsformer

#endif  // CHAINSFORMER_CORE_QUERY_RETRIEVAL_H_
