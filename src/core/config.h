#ifndef CHAINSFORMER_CORE_CONFIG_H_
#define CHAINSFORMER_CORE_CONFIG_H_

#include <cstdint>

#include "tensor/checks.h"

namespace chainsformer {
namespace core {

/// Numerical projection mode of the Numerical Reasoner (Eqs. 17-19 and
/// Table VII). kScaling is the paper's default.
enum class ProjectionMode {
  kDirect,       // n̂ = MLP(ẽ_c)              (ablation "w/o Numerical Projection")
  kTranslation,  // n̂ = n_p + β               (Eq. 17)
  kScaling,      // n̂ = α n_p                 (Eq. 18, paper default)
  kCombined,     // n̂ = α (n_p + β)           (Eq. 19)
};

/// Chain Encoder variant (Table VI ablations).
enum class EncoderType {
  kTransformer,  // paper default: encoder-only Transformer (Eq. 11-13)
  kLstm,         // ablation "w LSTM as Chain Encoder"
  kMean,         // ablation "w/o Chain Encoder": average token embedding
};

/// Random-walk neighbor selection policy of Query Retrieval (§IV-B). The
/// paper samples uniformly; the alternatives are ablation knobs measured by
/// bench/ext_retrieval_strategies.
enum class RetrievalStrategy {
  kUniform,         // paper default: uniform over adjacent edges
  kDegreeWeighted,  // prefer high-degree neighbors (hub-seeking)
  kEvidenceBiased,  // prefer neighbors that carry numeric facts
};

/// Embedding space used by the chain filter (Fig. 7).
enum class FilterSpace {
  kHyperbolic,  // paper default: Poincaré ball affinity (Eqs. 7-10)
  kEuclidean,   // same scoring with Euclidean embeddings/distances
  kRandom,      // ablation "w/o Hyperbolic Filter": random chain sampling
};

/// Encoding of the numeric value n_p inside the Numerical-Aware Affine
/// Transfer (Eq. 14 and the "w Numerical-Aware by Log" ablation).
enum class NumericEncoding {
  kFloat64Bits,  // paper default: IEEE-754 bit stream, f_n : R -> {0,1}^64
  kLog,          // log-magnitude Fourier features
};

/// Regression loss on min-max-normalized values. The paper's Eq. 24 states
/// MSE while §V-A trains with L1; both are provided.
enum class LossType { kL1, kMse, kSmoothL1 };

/// All hyperparameters of ChainsFormer. Defaults follow the paper (§V-A)
/// scaled down to CPU size; the paper-scale values are noted inline.
struct ChainsFormerConfig {
  // --- Retrieval (§IV-B) ----------------------------------------------------
  int max_hops = 3;        // random-walk order l (paper: 3)
  int num_walks = 128;     // N_s (paper: 2048)
  int top_k = 16;          // Hyperbolic Filter selection k (paper: 256)
  /// Restrict chains to a_p == a_q ("Same-attr" rows of Fig. 4 / Table IV).
  bool same_attribute_only = false;
  RetrievalStrategy retrieval_strategy = RetrievalStrategy::kUniform;

  // --- Model dimensions (§V-A) ----------------------------------------------
  int hidden_dim = 32;     // d (paper: 256/128)
  int encoder_layers = 2;  // L_c of the Chain Encoder (paper: 2)
  int reasoner_layers = 2; // Treeformer layers (paper: 2)
  int num_heads = 4;       // attention heads (paper: 4)
  int filter_dim = 16;     // Hyperbolic Filter embedding dim (low-dim works, Fig. 7)

  // --- Components / ablations (Table VI) -------------------------------------
  FilterSpace filter_space = FilterSpace::kHyperbolic;
  EncoderType encoder_type = EncoderType::kTransformer;
  bool use_numerical_aware = true;       // Numerical-Aware Affine Transfer
  NumericEncoding numeric_encoding = NumericEncoding::kFloat64Bits;
  ProjectionMode projection = ProjectionMode::kScaling;
  bool use_chain_weighting = true;       // Treeformer chain weighting (Eq. 20-22)

  // --- Extensions (paper §VI future work) ------------------------------------
  /// Chain quality evaluation: track per-pattern standalone prediction error
  /// during training and prune persistently unreliable patterns at inference.
  bool use_chain_quality = false;
  /// Expected-error pruning threshold (normalized units).
  double chain_quality_max_error = 0.3;

  // --- Hyperbolic Filter ------------------------------------------------------
  float curvature = 1.0f;   // -c of the Poincaré ball
  float lambda = 0.5f;      // intra/inter balance λ (Eq. 9)
  int filter_pretrain_queries = 200;
  int filter_pretrain_epochs = 3;
  float filter_lr = 5e-3f;

  // --- Optimization (§V-A) ----------------------------------------------------
  LossType loss = LossType::kL1;
  float learning_rate = 3e-3f;   // paper uses 1e-4 at 200 epochs; we run fewer
  int epochs = 12;               // paper: 200 with early stopping
  int patience = 4;              // early-stopping patience on validation MAE
  int batch_size = 8;            // queries per optimizer step
  float grad_clip = 5.0f;
  int max_train_queries = 320;   // per-epoch training query subsample (0 = all)
  /// Sample training queries uniformly over attribute classes instead of
  /// proportionally to triple counts. The evaluation's Average* weighs every
  /// attribute equally (Eq. 23-24 are computed per class), so rare
  /// attributes would otherwise be starved of gradient signal.
  bool balanced_attribute_sampling = true;
  int max_eval_queries = 0;      // evaluation subsample (0 = all)
  bool reretrieve_each_epoch = false;  // Algorithm 1 re-retrieves; caching is faster

  // --- Execution ---------------------------------------------------------------
  /// Worker threads for the dense kernel layer (tensor::kernels): GEMM,
  /// batched GEMM and large elementwise/softmax/layernorm loops. 1 keeps
  /// every kernel on the calling thread; 0 means hardware concurrency.
  /// Output is bitwise identical for any value (row-partitioned kernels).
  int kernel_threads = 1;
  /// Encode a query's whole Tree of Chains in one masked Transformer pass
  /// (ChainEncoder::EncodeBatch) instead of one pass per chain. Same results
  /// to float precision; the per-chain path is kept as the reference
  /// implementation and as an escape hatch (CLI --no-batched-encoder).
  bool batched_encoder = true;
  /// Worker threads for evaluation passes, including the per-epoch early-
  /// stopping validation inside Train(). 1 = serial Evaluate; > 1 routes
  /// through EvaluateParallel (bit-identical results); 0 = hardware
  /// concurrency.
  int eval_threads = 1;
  /// Autograd tape sanitizer level (tensor/checks.h): off (default, zero-cost
  /// training), shapes (structural tape checks) or full (adds NaN/Inf poison
  /// tracking and leaked-root accounting). CLI --check-mode; the CF_CHECK_MODE
  /// environment variable sets the CLI default.
  tensor::CheckMode check_mode = tensor::CheckMode::kOff;

  uint64_t seed = 1234;
  bool verbose = false;
};

}  // namespace core
}  // namespace chainsformer

#endif  // CHAINSFORMER_CORE_CONFIG_H_
