#ifndef CHAINSFORMER_CORE_CHAIN_QUALITY_H_
#define CHAINSFORMER_CORE_CHAIN_QUALITY_H_

#include <cstdint>
#include <unordered_map>

#include "core/ra_chain.h"

namespace chainsformer {
namespace core {

/// Chain quality evaluation — the extension sketched in the paper's future
/// work (§VI: "we will introduce a chain quality evaluation mechanism to
/// address low-quality RA-Chains").
///
/// Tracks, per chain *pattern* (a_p, r_1..r_l, a_q), an exponentially
/// weighted moving average of the standalone per-chain prediction error
/// observed during training (normalized units). Patterns whose expected
/// error stays high are pruned from the Enhanced ToC before encoding,
/// cutting both noise and compute.
class ChainQualityEvaluator {
 public:
  /// `prior_error` is assumed for unseen patterns; `decay` is the EWMA
  /// retention factor per observation.
  explicit ChainQualityEvaluator(double prior_error = 0.25, double decay = 0.9);

  /// Records the observed |n̂_chain - n_q| (normalized) of one chain.
  void Record(const RAChain& chain, double abs_error);

  /// Expected standalone error of this chain's pattern.
  double ExpectedError(const RAChain& chain) const;

  /// Number of error observations accumulated for this pattern.
  int64_t ObservationCount(const RAChain& chain) const;

  /// Keeps chains whose expected error is below `max_expected_error`; if
  /// fewer than `min_keep` survive, returns the `min_keep` best instead, so
  /// pruning can never leave a query without evidence.
  TreeOfChains PruneLowQuality(const TreeOfChains& chains,
                               double max_expected_error, size_t min_keep) const;

  int64_t num_patterns() const { return static_cast<int64_t>(stats_.size()); }

 private:
  struct PatternStats {
    double ewma;
    int64_t count;
  };

  static uint64_t PatternHash(const RAChain& chain);

  double prior_error_;
  double decay_;
  std::unordered_map<uint64_t, PatternStats> stats_;
};

}  // namespace core
}  // namespace chainsformer

#endif  // CHAINSFORMER_CORE_CHAIN_QUALITY_H_
