#ifndef CHAINSFORMER_KG_ANALYSIS_H_
#define CHAINSFORMER_KG_ANALYSIS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "kg/knowledge_graph.h"

namespace chainsformer {
namespace kg {

/// Structural summary of a knowledge graph, used by dataset reports and by
/// experiment sanity checks (retrieval depends on connectivity and evidence
/// density).
struct GraphAnalysis {
  int64_t num_entities = 0;
  int64_t num_relational_triples = 0;
  int64_t num_numerical_triples = 0;

  double avg_degree = 0.0;
  int64_t max_degree = 0;
  int64_t isolated_entities = 0;      // degree 0

  /// Degree histogram with power-of-two buckets: [0], [1], [2-3], [4-7], ...
  std::vector<int64_t> degree_histogram;

  int64_t connected_components = 0;
  int64_t largest_component_size = 0;

  /// Entities carrying at least one numeric fact.
  int64_t entities_with_numeric = 0;
  /// Numeric facts per entity (|E_a| / |V|).
  double numeric_density = 0.0;
  /// Per-relation triple counts, indexed by base relation id / 2.
  std::vector<int64_t> relation_counts;
};

/// Computes the full structural summary (O(V + E)).
GraphAnalysis AnalyzeGraph(const KnowledgeGraph& graph);

/// Average number of entities reachable within `hops` from a sample of
/// `sample_size` entities — the reachable-evidence measure underlying the
/// paper's Fig. 2 chain counts. Deterministic for a given seed.
double AverageReachableEntities(const KnowledgeGraph& graph, int hops,
                                int sample_size, uint64_t seed = 17);

/// Multi-line human-readable report.
std::string AnalysisReport(const KnowledgeGraph& graph, const GraphAnalysis& a);

}  // namespace kg
}  // namespace chainsformer

#endif  // CHAINSFORMER_KG_ANALYSIS_H_
