#ifndef CHAINSFORMER_KG_DATASET_H_
#define CHAINSFORMER_KG_DATASET_H_

#include <string>
#include <vector>

#include "kg/knowledge_graph.h"
#include "util/rng.h"

namespace chainsformer {
namespace kg {

/// Train/valid/test partition of the numerical triples. The relational
/// triples are always fully visible (the task is attribute regression, not
/// link prediction), mirroring the paper's setup.
struct DataSplit {
  std::vector<NumericalTriple> train;
  std::vector<NumericalTriple> valid;
  std::vector<NumericalTriple> test;
};

/// A benchmark dataset: a finalized graph plus its 8:1:1 numeric split.
struct Dataset {
  std::string name;
  KnowledgeGraph graph;
  DataSplit split;
};

/// Splits numerical triples 8:1:1 (paper §V-A), stratified per attribute so
/// every attribute appears in every partition. Deterministic given the rng.
DataSplit SplitNumericTriples(const std::vector<NumericalTriple>& triples,
                              int64_t num_attributes, Rng& rng,
                              double train_frac = 0.8, double valid_frac = 0.1);

}  // namespace kg
}  // namespace chainsformer

#endif  // CHAINSFORMER_KG_DATASET_H_
