#include "kg/dataset.h"

#include <algorithm>

#include "util/logging.h"

namespace chainsformer {
namespace kg {

DataSplit SplitNumericTriples(const std::vector<NumericalTriple>& triples,
                              int64_t num_attributes, Rng& rng,
                              double train_frac, double valid_frac) {
  CF_CHECK_GT(train_frac, 0.0);
  CF_CHECK_GE(valid_frac, 0.0);
  CF_CHECK_LE(train_frac + valid_frac, 1.0);

  std::vector<std::vector<NumericalTriple>> by_attr(
      static_cast<size_t>(num_attributes));
  for (const auto& t : triples) {
    by_attr[static_cast<size_t>(t.attribute)].push_back(t);
  }

  DataSplit split;
  for (auto& bucket : by_attr) {
    rng.Shuffle(bucket);
    const size_t n = bucket.size();
    const size_t n_train = static_cast<size_t>(train_frac * static_cast<double>(n));
    const size_t n_valid = static_cast<size_t>(valid_frac * static_cast<double>(n));
    for (size_t i = 0; i < n; ++i) {
      if (i < n_train) {
        split.train.push_back(bucket[i]);
      } else if (i < n_train + n_valid) {
        split.valid.push_back(bucket[i]);
      } else {
        split.test.push_back(bucket[i]);
      }
    }
  }
  return split;
}

}  // namespace kg
}  // namespace chainsformer
