#include "kg/loader.h"

#include <fstream>
#include <set>
#include <string>

#include "util/logging.h"
#include "util/metric_names.h"
#include "util/metrics.h"
#include "util/string_util.h"
#include "util/trace.h"

namespace chainsformer {
namespace kg {
namespace {

AttributeCategory InferCategory(const std::string& name) {
  static const std::set<std::string> kTemporal = {
      "birth",       "death",       "created",     "destroyed",
      "happened",    "film_release", "org_founded", "loc_founded",
      "date", "year"};
  static const std::set<std::string> kSpatial = {"latitude", "longitude"};
  if (kTemporal.count(name) != 0) return AttributeCategory::kTemporal;
  if (kSpatial.count(name) != 0) return AttributeCategory::kSpatial;
  return AttributeCategory::kQuantity;
}

bool SkipLine(const std::string& line) {
  const std::string s = Strip(line);
  return s.empty() || s[0] == '#';
}

}  // namespace

Dataset LoadTsvDataset(const std::string& name, const std::string& triples_path,
                       const std::string& numeric_path, uint64_t split_seed) {
  static auto& reg = metrics::MetricsRegistry::Global();
  static auto* load_micros = reg.GetCounter(metrics::names::kKgLoadMicros);
  static auto* load_calls = reg.GetCounter(metrics::names::kKgLoadCalls);
  static auto* triples_loaded = reg.GetCounter(metrics::names::kKgLoadRelationalTriples);
  static auto* numeric_loaded = reg.GetCounter(metrics::names::kKgLoadNumericalTriples);
  CF_TRACE_SCOPE("kg.load");
  metrics::ScopedTimer timer(load_micros, load_calls);

  Dataset ds;
  ds.name = name;
  KnowledgeGraph& g = ds.graph;

  std::ifstream triples(triples_path);
  CF_CHECK(triples.good()) << "cannot open " << triples_path;
  std::string line;
  while (std::getline(triples, line)) {
    if (SkipLine(line)) continue;
    const auto fields = Split(Strip(line), '\t');
    CF_CHECK_EQ(fields.size(), 3u) << "bad triple line: " << line;
    const EntityId h = g.AddEntity(fields[0]);
    const RelationId r = g.AddRelation(fields[1]);
    const EntityId t = g.AddEntity(fields[2]);
    g.AddTriple(h, r, t);
    triples_loaded->Increment();
  }

  std::ifstream numeric(numeric_path);
  CF_CHECK(numeric.good()) << "cannot open " << numeric_path;
  while (std::getline(numeric, line)) {
    if (SkipLine(line)) continue;
    const auto fields = Split(Strip(line), '\t');
    CF_CHECK_EQ(fields.size(), 3u) << "bad numeric line: " << line;
    const EntityId e = g.AddEntity(fields[0]);
    const AttributeId a = g.AddAttribute(fields[1], InferCategory(fields[1]));
    g.AddNumeric(e, a, std::stod(fields[2]));
    numeric_loaded->Increment();
  }

  g.Finalize();
  Rng rng(split_seed);
  ds.split = SplitNumericTriples(g.numerical_triples(), g.num_attributes(), rng);
  return ds;
}

void SaveTsvDataset(const Dataset& dataset, const std::string& triples_path,
                    const std::string& numeric_path) {
  const KnowledgeGraph& g = dataset.graph;
  std::ofstream triples(triples_path);
  CF_CHECK(triples.good()) << "cannot write " << triples_path;
  for (const auto& t : g.relational_triples()) {
    triples << g.EntityName(t.head) << '\t' << g.RelationName(t.relation) << '\t'
            << g.EntityName(t.tail) << '\n';
  }
  std::ofstream numeric(numeric_path);
  CF_CHECK(numeric.good()) << "cannot write " << numeric_path;
  for (const auto& t : g.numerical_triples()) {
    numeric << g.EntityName(t.entity) << '\t' << g.AttributeName(t.attribute)
            << '\t' << t.value << '\n';
  }
}

}  // namespace kg
}  // namespace chainsformer
