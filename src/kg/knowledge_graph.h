#ifndef CHAINSFORMER_KG_KNOWLEDGE_GRAPH_H_
#define CHAINSFORMER_KG_KNOWLEDGE_GRAPH_H_

#include <cstdint>
#include <limits>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

namespace chainsformer {
namespace kg {

using EntityId = int32_t;
using RelationId = int32_t;
using AttributeId = int32_t;

inline constexpr EntityId kInvalidEntity = -1;

/// Relational fact (v_h, r, v_t) ∈ E_r ⊂ V × R × V.
struct RelationalTriple {
  EntityId head;
  RelationId relation;
  EntityId tail;
};

/// Numerical fact (v, a, n) ∈ E_a ⊂ V × A × N.
struct NumericalTriple {
  EntityId entity;
  AttributeId attribute;
  double value;
};

/// Outgoing edge in the adjacency index. Relations are stored in
/// forward/inverse pairs: a base relation gets an even id 2k and its inverse
/// (named "<base>_inv") gets 2k + 1, so chains can traverse edges in either
/// direction — the paper's key chains (Table V) use inverse relations such
/// as `capital_inv` heavily.
struct Edge {
  EntityId neighbor;
  RelationId relation;
};

/// Semantic category of a numerical attribute, used by the evaluation
/// breakdowns (the paper groups attributes into temporal / spatial /
/// quantity classes).
enum class AttributeCategory { kTemporal, kSpatial, kQuantity };

/// Summary statistics of one attribute over a triple set (Table II;
/// min/max also drive the min-max normalization of Eq. 23).
struct AttributeStats {
  int64_t count = 0;
  double min = std::numeric_limits<double>::infinity();
  double max = -std::numeric_limits<double>::infinity();
  double mean = 0.0;
  double stddev = 0.0;

  double Range() const { return max - min; }
  /// Min-max normalization (Eq. 23); degenerate ranges normalize to 0.
  double Normalize(double v) const {
    const double r = Range();
    return r > 0.0 ? (v - min) / r : 0.0;
  }
  double Denormalize(double v) const { return min + v * Range(); }
};

/// In-memory multi-relational knowledge graph with numerical attributes:
/// G = (V, R, A, N). Construction is two-phase: add vocab + triples, then
/// Finalize() to build the CSR adjacency and per-entity attribute indexes.
class KnowledgeGraph {
 public:
  KnowledgeGraph() = default;
  KnowledgeGraph(KnowledgeGraph&&) = default;
  KnowledgeGraph& operator=(KnowledgeGraph&&) = default;

  // --- Construction --------------------------------------------------------

  /// Adds (or returns an existing) entity by name.
  EntityId AddEntity(const std::string& name);

  /// Adds a base relation; returns its (even) id. The inverse relation
  /// "<name>_inv" is created implicitly with id + 1.
  RelationId AddRelation(const std::string& name);

  /// Adds a numerical attribute type.
  AttributeId AddAttribute(const std::string& name,
                           AttributeCategory category = AttributeCategory::kQuantity);

  /// Adds a relational triple; both directions become edges after Finalize().
  /// `relation` must be a base (even) id.
  void AddTriple(EntityId head, RelationId relation, EntityId tail);

  /// Adds a numerical triple.
  void AddNumeric(EntityId entity, AttributeId attribute, double value);

  /// Builds adjacency/attribute indexes. Must be called once after
  /// construction; mutation is not allowed afterwards.
  void Finalize();
  bool finalized() const { return finalized_; }

  // --- Vocabulary -----------------------------------------------------------

  int64_t num_entities() const { return static_cast<int64_t>(entity_names_.size()); }
  /// Number of base relation types (|R|, as reported in Table I).
  int64_t num_relations() const { return static_cast<int64_t>(relation_names_.size()) / 2; }
  /// Number of relation ids including inverses (= 2 |R|).
  int64_t num_relation_ids() const { return static_cast<int64_t>(relation_names_.size()); }
  int64_t num_attributes() const { return static_cast<int64_t>(attribute_names_.size()); }

  const std::string& EntityName(EntityId e) const;
  const std::string& RelationName(RelationId r) const;
  const std::string& AttributeName(AttributeId a) const;
  AttributeCategory AttributeCategoryOf(AttributeId a) const;

  /// Inverse of a relation id (pairs 2k <-> 2k+1).
  static RelationId InverseRelation(RelationId r) { return r ^ 1; }
  static bool IsInverseRelation(RelationId r) { return (r & 1) != 0; }

  /// Id lookups; return -1 when absent.
  EntityId FindEntity(const std::string& name) const;
  RelationId FindRelation(const std::string& name) const;
  AttributeId FindAttribute(const std::string& name) const;

  // --- Topology -------------------------------------------------------------

  const std::vector<RelationalTriple>& relational_triples() const {
    return relational_triples_;
  }
  const std::vector<NumericalTriple>& numerical_triples() const {
    return numerical_triples_;
  }

  /// Outgoing edges of `e` (includes inverse-relation edges). Requires
  /// Finalize().
  std::span<const Edge> Neighbors(EntityId e) const;

  /// Degree of `e` in the (bidirectional) adjacency.
  int64_t Degree(EntityId e) const;

  // --- Numerical attribute access -------------------------------------------

  /// All (attribute, value) pairs observed on `e`. Requires Finalize().
  std::span<const std::pair<AttributeId, double>> EntityAttributes(EntityId e) const;

  /// True if (e, a, ·) exists; writes the value to *value when non-null.
  bool GetAttribute(EntityId e, AttributeId a, double* value = nullptr) const;

  /// Statistics of each attribute over all numerical triples in this graph.
  const std::vector<AttributeStats>& attribute_stats() const { return attribute_stats_; }

 private:
  bool finalized_ = false;

  std::vector<std::string> entity_names_;
  std::vector<std::string> relation_names_;   // includes inverses at odd ids
  std::vector<std::string> attribute_names_;
  std::vector<AttributeCategory> attribute_categories_;
  std::unordered_map<std::string, EntityId> entity_index_;
  std::unordered_map<std::string, RelationId> relation_index_;
  std::unordered_map<std::string, AttributeId> attribute_index_;

  std::vector<RelationalTriple> relational_triples_;
  std::vector<NumericalTriple> numerical_triples_;

  // CSR adjacency over both edge directions.
  std::vector<int64_t> adj_offsets_;
  std::vector<Edge> adj_edges_;

  // CSR per-entity attribute lists.
  std::vector<int64_t> attr_offsets_;
  std::vector<std::pair<AttributeId, double>> attr_values_;

  std::vector<AttributeStats> attribute_stats_;
};

/// Computes per-attribute statistics over an arbitrary triple subset (e.g.
/// the training split, which is what normalization must be fit on).
std::vector<AttributeStats> ComputeAttributeStats(
    const std::vector<NumericalTriple>& triples, int64_t num_attributes);

/// Fast lookup from entity to the numeric facts *visible* to a model. The
/// paper's retrieval pairs chains with known attribute values; building the
/// index from the training split only prevents test-label leakage.
class NumericIndex {
 public:
  NumericIndex(const std::vector<NumericalTriple>& triples, int64_t num_entities);

  /// (attribute, value) pairs known for entity `e`.
  std::span<const std::pair<AttributeId, double>> Values(EntityId e) const;

  bool Get(EntityId e, AttributeId a, double* value) const;

  int64_t size() const { return static_cast<int64_t>(values_.size()); }

 private:
  std::vector<int64_t> offsets_;
  std::vector<std::pair<AttributeId, double>> values_;
};

}  // namespace kg
}  // namespace chainsformer

#endif  // CHAINSFORMER_KG_KNOWLEDGE_GRAPH_H_
