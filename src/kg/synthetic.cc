#include "kg/synthetic.h"

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "util/logging.h"

namespace chainsformer {
namespace kg {
namespace {

// Latent world used by both generators. Attribute values derive from shared
// latent factors (family era, region geography, team body cluster, ...) so
// that relational paths carry real information about numeric attributes.

struct Region {
  double lat_center;
  double lon_center;
  double founding_era;    // mean founding year of settlements
  double density;         // population density multiplier
};

struct PersonL {
  EntityId id = kInvalidEntity;
  int family;
  int team;       // -1 when not an athlete
  int ethnicity;  // FB only
  EntityId city = kInvalidEntity;
  double birth, death, height, weight;
};

struct PlaceL {
  EntityId id = kInvalidEntity;
  int region;
  int level;  // 0 = country, 1 = state, 2 = city
  EntityId parent = kInvalidEntity;
  double lat, lon, area, population, founded;
};

struct WorkL {
  EntityId id = kInvalidEntity;
  int creator;  // person index, -1 for buildings
  bool building;
  double created, destroyed;
};

struct EventL {
  EntityId id = kInvalidEntity;
  int participant;  // person index
  int place;        // place index
  double happened;
};

struct OrgL {
  EntityId id = kInvalidEntity;
  int founder;  // person index
  int hq;       // place index
  double founded;
};

double Clip(double v, double lo, double hi) { return std::clamp(v, lo, hi); }

// Observation helper: emit the numeric triple with probability rate.
void MaybeObserve(KnowledgeGraph& g, Rng& rng, double rate, EntityId e,
                  AttributeId a, double v) {
  if (rng.Bernoulli(rate)) g.AddNumeric(e, a, v);
}

struct WorldSizes {
  int num_people;
  int num_places;
  int num_works;
  int num_events;
  int num_orgs;
  int num_teams;
  int num_ethnicities;
  int num_regions;
};

WorldSizes SizesFor(double scale, bool yago) {
  WorldSizes s;
  const double base = 15000.0 * scale;
  s.num_people = static_cast<int>(base * 0.45);
  s.num_places = static_cast<int>(base * 0.22);
  s.num_works = static_cast<int>(base * (yago ? 0.22 : 0.18));
  s.num_events = yago ? static_cast<int>(base * 0.06) : 0;
  s.num_orgs = static_cast<int>(base * (yago ? 0.05 : 0.09));
  s.num_teams = yago ? 0 : std::max(8, static_cast<int>(base * 0.01));
  s.num_ethnicities = yago ? 0 : std::max(6, static_cast<int>(base * 0.004));
  s.num_regions = std::max(8, static_cast<int>(12 * std::sqrt(scale / 0.12)));
  return s;
}

Dataset GenerateWorld(const SyntheticOptions& options, bool yago) {
  Rng rng(options.seed);
  Dataset ds;
  ds.name = yago ? "YAGO15K-syn" : "FB15K-237-syn";
  KnowledgeGraph& g = ds.graph;
  const double obs = options.observation_rate;
  const WorldSizes sz = SizesFor(options.scale, yago);

  // --- Attributes -----------------------------------------------------------
  const AttributeId kBirth = g.AddAttribute("birth", AttributeCategory::kTemporal);
  const AttributeId kDeath = g.AddAttribute("death", AttributeCategory::kTemporal);
  const AttributeId kLat = g.AddAttribute("latitude", AttributeCategory::kSpatial);
  const AttributeId kLon = g.AddAttribute("longitude", AttributeCategory::kSpatial);
  AttributeId kCreated = -1, kDestroyed = -1, kHappened = -1;
  AttributeId kFilmRelease = -1, kOrgFounded = -1, kLocFounded = -1;
  AttributeId kArea = -1, kPopulation = -1, kHeight = -1, kWeight = -1;
  if (yago) {
    kCreated = g.AddAttribute("created", AttributeCategory::kTemporal);
    kDestroyed = g.AddAttribute("destroyed", AttributeCategory::kTemporal);
    kHappened = g.AddAttribute("happened", AttributeCategory::kTemporal);
  } else {
    kFilmRelease = g.AddAttribute("film_release", AttributeCategory::kTemporal);
    kOrgFounded = g.AddAttribute("org_founded", AttributeCategory::kTemporal);
    kLocFounded = g.AddAttribute("loc_founded", AttributeCategory::kTemporal);
    kArea = g.AddAttribute("area", AttributeCategory::kQuantity);
    kPopulation = g.AddAttribute("population", AttributeCategory::kQuantity);
    kHeight = g.AddAttribute("height", AttributeCategory::kQuantity);
    kWeight = g.AddAttribute("weight", AttributeCategory::kQuantity);
  }

  // --- Relations ------------------------------------------------------------
  const RelationId rSibling = g.AddRelation("sibling");
  const RelationId rSpouse = g.AddRelation("spouse");
  const RelationId rInfluencedBy = g.AddRelation("influenced_by");
  const RelationId rBornIn = g.AddRelation("born_in");
  const RelationId rLocatedIn = g.AddRelation("located_in");
  const RelationId rHasCapital = g.AddRelation("has_capital");
  const RelationId rHasNeighbor = g.AddRelation("has_neighbor");
  const RelationId rCreatedWork = g.AddRelation(yago ? "created" : "film");
  RelationId rMusicFor = -1, rParticipatedIn = -1, rHappenedIn = -1,
             rCitizenOf = -1;
  RelationId rTeam = -1, rEthnicity = -1, rActorIn = -1, rNationality = -1,
             rCounty = -1, rStateProvince = -1, rMemberStates = -1,
             rFoundedBy = -1, rHeadquarters = -1, rAthlete = -1;
  if (yago) {
    rMusicFor = g.AddRelation("music_for");
    rParticipatedIn = g.AddRelation("participated_in");
    rHappenedIn = g.AddRelation("happened_in");
    rCitizenOf = g.AddRelation("citizen_of");
  } else {
    rTeam = g.AddRelation("team");
    rEthnicity = g.AddRelation("ethnicity");
    rActorIn = g.AddRelation("actor_in");
    rNationality = g.AddRelation("nationality");
    rCounty = g.AddRelation("county");
    rStateProvince = g.AddRelation("state_province");
    rMemberStates = g.AddRelation("member_states");
    rFoundedBy = g.AddRelation("founded_by");
    rHeadquarters = g.AddRelation("headquarters");
    rAthlete = g.AddRelation("athlete");
  }

  // --- Regions and latent clusters -------------------------------------------
  std::vector<Region> regions(static_cast<size_t>(sz.num_regions));
  for (auto& r : regions) {
    r.lat_center = rng.Uniform(-45.0, 68.0);
    r.lon_center = rng.Uniform(-170.0, 175.0);
    r.founding_era = rng.Uniform(600.0, 1900.0);
    r.density = std::exp(rng.Normal(3.0, 0.8));
  }

  // Team body clusters (FB): sport type shifts height/weight jointly.
  std::vector<std::pair<double, double>> team_body(
      static_cast<size_t>(std::max(1, sz.num_teams)));
  for (auto& [h, w] : team_body) {
    h = rng.Uniform(1.62, 2.02);
    w = 60.0 + (h - 1.6) * 130.0 + rng.Normal(0.0, 6.0);
  }
  std::vector<std::pair<double, double>> eth_body(
      static_cast<size_t>(std::max(1, sz.num_ethnicities)));
  for (auto& [h, w] : eth_body) {
    h = rng.Uniform(1.66, 1.86);
    w = 58.0 + (h - 1.6) * 120.0 + rng.Normal(0.0, 5.0);
  }

  // --- Places ----------------------------------------------------------------
  std::vector<PlaceL> places(static_cast<size_t>(sz.num_places));
  // Levels: ~8% countries, 22% states, 70% cities.
  std::vector<int> countries, states;
  for (size_t i = 0; i < places.size(); ++i) {
    PlaceL& p = places[i];
    p.region = static_cast<int>(rng.UniformInt(static_cast<uint64_t>(sz.num_regions)));
    const double u = rng.Uniform();
    p.level = u < 0.08 ? 0 : (u < 0.30 ? 1 : 2);
    if (p.level == 0) countries.push_back(static_cast<int>(i));
    if (p.level == 1) states.push_back(static_cast<int>(i));
    p.id = g.AddEntity("place_" + std::to_string(i));
  }
  if (countries.empty()) {
    places[0].level = 0;
    countries.push_back(0);
  }
  if (states.empty()) {
    places[places.size() > 1 ? 1 : 0].level = 1;
    states.push_back(places.size() > 1 ? 1 : 0);
  }
  // Pick a per-region country/state when available so containment respects
  // geography (chains like (located_in, latitude) then carry signal).
  auto pick_in_region = [&](const std::vector<int>& pool, int region) -> int {
    std::vector<int> same;
    for (int idx : pool) {
      if (places[static_cast<size_t>(idx)].region == region) same.push_back(idx);
    }
    const auto& src = same.empty() ? pool : same;
    return src[rng.UniformInt(static_cast<uint64_t>(src.size()))];
  };
  for (size_t i = 0; i < places.size(); ++i) {
    PlaceL& p = places[i];
    const Region& reg = regions[static_cast<size_t>(p.region)];
    p.lat = Clip(reg.lat_center + rng.Normal(0.0, 2.2), -51.7, 73.0);
    p.lon = Clip(reg.lon_center + rng.Normal(0.0, 3.0), -175.0, 179.0);
    p.founded = Clip(reg.founding_era + rng.Normal(0.0, 160.0), -2999.0, 2012.0);
    const double area_mu = p.level == 0 ? 13.0 : (p.level == 1 ? 10.5 : 6.5);
    p.area = Clip(std::exp(rng.Normal(area_mu, 1.0)), 1.0, 1.7e8);
    p.population = Clip(p.area * reg.density * std::exp(rng.Normal(0.0, 0.5)),
                        1.0, 3.1e9);
    if (p.level == 1) {
      p.parent = places[static_cast<size_t>(pick_in_region(countries, p.region))].id;
    } else if (p.level == 2) {
      p.parent = places[static_cast<size_t>(pick_in_region(states, p.region))].id;
    }
  }
  // Containment, capitals, neighbors.
  std::vector<int> cities;
  for (size_t i = 0; i < places.size(); ++i) {
    const PlaceL& p = places[i];
    if (p.level == 2) cities.push_back(static_cast<int>(i));
    if (p.parent != kInvalidEntity) {
      g.AddTriple(p.id, p.level == 2 && !yago ? rCounty : rLocatedIn, p.parent);
      if (!yago && p.level == 1) g.AddTriple(p.id, rStateProvince, p.parent);
    }
  }
  if (cities.empty()) cities.push_back(0);
  for (int c : countries) {
    const int cap = pick_in_region(cities, places[static_cast<size_t>(c)].region);
    g.AddTriple(places[static_cast<size_t>(c)].id, rHasCapital,
                places[static_cast<size_t>(cap)].id);
  }
  // Neighbor edges inside a region: every place links to ~2 region peers,
  // planting the (has_neighbor, latitude/longitude) key chain of Table V.
  {
    std::vector<std::vector<int>> by_region(static_cast<size_t>(sz.num_regions));
    for (size_t i = 0; i < places.size(); ++i) {
      by_region[static_cast<size_t>(places[i].region)].push_back(static_cast<int>(i));
    }
    for (const auto& members : by_region) {
      if (members.size() < 2) continue;
      for (int idx : members) {
        for (int t = 0; t < 2; ++t) {
          const int j = members[rng.UniformInt(static_cast<uint64_t>(members.size()))];
          if (j != idx) {
            g.AddTriple(places[static_cast<size_t>(idx)].id, rHasNeighbor,
                        places[static_cast<size_t>(j)].id);
          }
        }
      }
    }
  }

  // --- People ----------------------------------------------------------------
  std::vector<PersonL> people(static_cast<size_t>(sz.num_people));
  int family_counter = 0;
  std::vector<double> family_birth;
  for (size_t i = 0; i < people.size(); ++i) {
    PersonL& p = people[i];
    // New family with prob 0.42, otherwise join the latest family.
    if (family_birth.empty() || rng.Bernoulli(0.42)) {
      family_birth.push_back(yago ? rng.Uniform(360.0, 1995.0)
                                  : rng.Normal(1890.0, 70.0));
      family_counter = static_cast<int>(family_birth.size()) - 1;
    }
    p.family = family_counter;
    p.birth = family_birth[static_cast<size_t>(p.family)] + rng.Normal(0.0, 5.0);
    p.birth = yago ? Clip(p.birth, 354.9, 2014.0) : Clip(p.birth, -383.0, 1999.9);
    p.death = p.birth + std::max(18.0, rng.Normal(72.0, 11.0));
    p.death = yago ? Clip(p.death, 348.0, 2161.1) : Clip(p.death, -322.0, 2015.6);
    p.team = (!yago && rng.Bernoulli(0.35))
                 ? static_cast<int>(rng.UniformInt(static_cast<uint64_t>(sz.num_teams)))
                 : -1;
    p.ethnicity = yago ? -1
                       : static_cast<int>(rng.UniformInt(
                             static_cast<uint64_t>(sz.num_ethnicities)));
    if (!yago) {
      double h_mu = 1.74, w_mu = 74.0;
      if (p.team >= 0) {
        h_mu = team_body[static_cast<size_t>(p.team)].first;
        w_mu = team_body[static_cast<size_t>(p.team)].second;
      } else {
        h_mu = 0.5 * (h_mu + eth_body[static_cast<size_t>(p.ethnicity)].first);
        w_mu = 0.5 * (w_mu + eth_body[static_cast<size_t>(p.ethnicity)].second);
      }
      p.height = Clip(h_mu + rng.Normal(0.0, 0.035), 1.34, 2.18);
      p.weight = Clip(w_mu + rng.Normal(0.0, 5.0), 44.0, 147.0);
    }
    const int city = cities[rng.UniformInt(static_cast<uint64_t>(cities.size()))];
    p.city = places[static_cast<size_t>(city)].id;
    p.id = g.AddEntity("person_" + std::to_string(i));
  }
  // Family / social edges.
  std::vector<std::vector<int>> families(family_birth.size());
  for (size_t i = 0; i < people.size(); ++i) {
    families[static_cast<size_t>(people[i].family)].push_back(static_cast<int>(i));
  }
  for (const auto& fam : families) {
    for (size_t a = 0; a + 1 < fam.size(); ++a) {
      g.AddTriple(people[static_cast<size_t>(fam[a])].id, rSibling,
                  people[static_cast<size_t>(fam[a + 1])].id);
    }
  }
  for (size_t i = 0; i < people.size(); ++i) {
    const PersonL& p = people[i];
    g.AddTriple(p.id, rBornIn, p.city);
    if (yago && rng.Bernoulli(0.5)) {
      // citizen_of: the country containing the birth city's region.
      const int ctry = pick_in_region(
          countries,
          places[static_cast<size_t>(rng.UniformInt(
                     static_cast<uint64_t>(places.size())))].region);
      g.AddTriple(p.id, rCitizenOf, places[static_cast<size_t>(ctry)].id);
    }
    // (Era-dependent social edges are added below via a birth-sorted index —
    // rejection sampling over uniform eras almost never finds a match.)
    if (!yago) {
      g.AddTriple(p.id, rEthnicity,
                  g.AddEntity("ethnicity_" + std::to_string(p.ethnicity)));
      g.AddTriple(p.id, rNationality, p.city);
      if (p.team >= 0) {
        const EntityId team_e = g.AddEntity("team_" + std::to_string(p.team));
        g.AddTriple(p.id, rTeam, team_e);
        g.AddTriple(team_e, rAthlete, p.id);
      }
    }
  }

  // Era-dependent social edges via a birth-sorted index: spouses are birth
  // contemporaries, influencers are 15-60 years older. These plant the
  // (spouse, birth) and (influenced_by, death/birth) key chains of Table V.
  {
    std::vector<int> by_birth(people.size());
    for (size_t i = 0; i < by_birth.size(); ++i) by_birth[i] = static_cast<int>(i);
    std::sort(by_birth.begin(), by_birth.end(), [&](int a, int b) {
      return people[static_cast<size_t>(a)].birth < people[static_cast<size_t>(b)].birth;
    });
    const int n = static_cast<int>(by_birth.size());
    for (int r = 0; r < n; ++r) {
      const PersonL& p = people[static_cast<size_t>(by_birth[static_cast<size_t>(r)])];
      if (rng.Bernoulli(0.5)) {
        // Spouse among close birth ranks (same era).
        const int off = static_cast<int>(rng.UniformInt(1, 6));
        const int j = (r + off) % n;
        const PersonL& q = people[static_cast<size_t>(by_birth[static_cast<size_t>(j)])];
        if (std::fabs(q.birth - p.birth) < 15.0 && q.id != p.id) {
          g.AddTriple(p.id, rSpouse, q.id);
        }
      }
      if (rng.Bernoulli(0.7)) {
        // Influencer: scan backwards in birth order for a 15-60 year gap.
        for (int back = r - 1, tries = 0; back >= 0 && tries < 40; --back, ++tries) {
          const PersonL& q =
              people[static_cast<size_t>(by_birth[static_cast<size_t>(back)])];
          const double gap = p.birth - q.birth;
          if (gap > 60.0) break;
          if (gap > 15.0) {
            g.AddTriple(p.id, rInfluencedBy, q.id);
            break;
          }
        }
      }
    }
  }

  // --- Works (films for FB, works/buildings for YAGO) -------------------------
  std::vector<WorkL> works(static_cast<size_t>(sz.num_works));
  for (size_t i = 0; i < works.size(); ++i) {
    WorkL& w = works[i];
    w.building = yago && rng.Bernoulli(0.35);
    if (w.building) {
      w.creator = -1;
      const size_t pi = rng.UniformInt(static_cast<uint64_t>(places.size()));
      w.created = Clip(places[pi].founded + rng.Normal(150.0, 60.0), 100.0, 2018.7);
      w.id = g.AddEntity("work_" + std::to_string(i));
      g.AddTriple(w.id, rLocatedIn, places[pi].id);
    } else {
      w.creator = static_cast<int>(rng.UniformInt(static_cast<uint64_t>(people.size())));
      if (!yago) {
        // Film directors are people from the film era; without this, the
        // clip to [1927.1, 2013.5] would decouple release from birth.
        for (int t = 0; t < 12; ++t) {
          if (people[static_cast<size_t>(w.creator)].birth >= 1880.0) break;
          w.creator = static_cast<int>(
              rng.UniformInt(static_cast<uint64_t>(people.size())));
        }
      }
      const PersonL& c = people[static_cast<size_t>(w.creator)];
      w.created = c.birth + rng.Normal(38.0, 7.0);
      w.created = yago ? Clip(w.created, 100.0, 2018.7) : Clip(w.created, 1927.1, 2013.5);
      w.id = g.AddEntity("work_" + std::to_string(i));
      g.AddTriple(c.id, rCreatedWork, w.id);
      if (yago && rng.Bernoulli(0.25)) {
        const size_t j = rng.UniformInt(static_cast<uint64_t>(people.size()));
        if (std::fabs(people[j].birth - c.birth) < 25.0) {
          g.AddTriple(people[j].id, rMusicFor, w.id);
        }
      }
      if (!yago) {
        // A couple of actors per film, from the director's generation.
        for (int t = 0; t < 5; ++t) {
          const size_t j = rng.UniformInt(static_cast<uint64_t>(people.size()));
          if (std::fabs(people[j].birth - c.birth) < 20.0) {
            g.AddTriple(people[j].id, rActorIn, w.id);
            if (rng.Bernoulli(0.5)) break;
          }
        }
      }
    }
    w.destroyed = w.created + std::fabs(rng.Normal(220.0, 120.0));
  }

  // --- Events (YAGO only) ------------------------------------------------------
  std::vector<EventL> events(static_cast<size_t>(sz.num_events));
  for (size_t i = 0; i < events.size(); ++i) {
    EventL& e = events[i];
    e.participant =
        static_cast<int>(rng.UniformInt(static_cast<uint64_t>(people.size())));
    e.place = static_cast<int>(rng.UniformInt(static_cast<uint64_t>(places.size())));
    const PersonL& p = people[static_cast<size_t>(e.participant)];
    e.happened = Clip(p.birth + rng.Uniform(20.0, 60.0), 218.0, 2018.2);
    e.id = g.AddEntity("event_" + std::to_string(i));
    g.AddTriple(p.id, rParticipatedIn, e.id);
    g.AddTriple(e.id, rHappenedIn, places[static_cast<size_t>(e.place)].id);
  }

  // --- Organisations ------------------------------------------------------------
  std::vector<OrgL> orgs(static_cast<size_t>(sz.num_orgs));
  for (size_t i = 0; i < orgs.size(); ++i) {
    OrgL& o = orgs[i];
    o.founder = static_cast<int>(rng.UniformInt(static_cast<uint64_t>(people.size())));
    o.hq = static_cast<int>(rng.UniformInt(static_cast<uint64_t>(places.size())));
    const PersonL& f = people[static_cast<size_t>(o.founder)];
    o.founded = Clip(f.birth + rng.Normal(36.0, 8.0), 1088.0, 2013.0);
    o.id = g.AddEntity("org_" + std::to_string(i));
    if (!yago) {
      g.AddTriple(o.id, rFoundedBy, f.id);
      g.AddTriple(o.id, rHeadquarters, places[static_cast<size_t>(o.hq)].id);
      if (rng.Bernoulli(0.4)) {
        const int ctry = countries[rng.UniformInt(static_cast<uint64_t>(countries.size()))];
        g.AddTriple(o.id, rMemberStates, places[static_cast<size_t>(ctry)].id);
      }
    } else {
      g.AddTriple(o.id, rLocatedIn, places[static_cast<size_t>(o.hq)].id);
    }
  }

  // --- Observed numeric triples ---------------------------------------------
  for (const PersonL& p : people) {
    MaybeObserve(g, rng, obs, p.id, kBirth, p.birth);
    MaybeObserve(g, rng, obs * 0.35, p.id, kDeath, p.death);
    if (!yago) {
      MaybeObserve(g, rng, obs * 0.7, p.id, kHeight, p.height);
      MaybeObserve(g, rng, obs * 0.12, p.id, kWeight, p.weight);
    }
  }
  for (const PlaceL& p : places) {
    MaybeObserve(g, rng, obs, p.id, kLat, p.lat);
    MaybeObserve(g, rng, obs, p.id, kLon, p.lon);
    if (!yago) {
      MaybeObserve(g, rng, obs * 0.8, p.id, kArea, p.area);
      MaybeObserve(g, rng, obs * 0.7, p.id, kPopulation, p.population);
      MaybeObserve(g, rng, obs * 0.35, p.id, kLocFounded, p.founded);
    }
  }
  for (const WorkL& w : works) {
    if (yago) {
      MaybeObserve(g, rng, obs, w.id, kCreated, w.created);
      if (w.building) {
        MaybeObserve(g, rng, obs * 0.3, w.id, kDestroyed,
                     Clip(w.destroyed, 476.0, 2017.2));
      }
    } else if (!w.building) {
      MaybeObserve(g, rng, obs * 0.6, w.id, kFilmRelease, w.created);
    }
  }
  for (const EventL& e : events) {
    MaybeObserve(g, rng, obs * 0.6, e.id, kHappened, e.happened);
  }
  for (const OrgL& o : orgs) {
    if (!yago) MaybeObserve(g, rng, obs, o.id, kOrgFounded, o.founded);
  }

  g.Finalize();

  Rng split_rng(options.seed ^ 0xD1CEBEEFull);
  ds.split = SplitNumericTriples(g.numerical_triples(), g.num_attributes(), split_rng);
  return ds;
}

}  // namespace

Dataset MakeYago15kLike(const SyntheticOptions& options) {
  return GenerateWorld(options, /*yago=*/true);
}

Dataset MakeFb15k237Like(const SyntheticOptions& options) {
  return GenerateWorld(options, /*yago=*/false);
}

Dataset MakeToyDataset(uint64_t seed) {
  Dataset ds;
  ds.name = "toy";
  KnowledgeGraph& g = ds.graph;
  const AttributeId birth = g.AddAttribute("birth", AttributeCategory::kTemporal);
  const AttributeId lat = g.AddAttribute("latitude", AttributeCategory::kSpatial);
  const RelationId sibling = g.AddRelation("sibling");
  const RelationId born_in = g.AddRelation("born_in");
  const RelationId near = g.AddRelation("near");

  const EntityId alice = g.AddEntity("alice");
  const EntityId bob = g.AddEntity("bob");
  const EntityId carol = g.AddEntity("carol");
  const EntityId dave = g.AddEntity("dave");
  const EntityId rome = g.AddEntity("rome");
  const EntityId milan = g.AddEntity("milan");

  g.AddTriple(alice, sibling, bob);
  g.AddTriple(bob, sibling, carol);
  g.AddTriple(carol, sibling, dave);
  g.AddTriple(alice, born_in, rome);
  g.AddTriple(dave, born_in, milan);
  g.AddTriple(rome, near, milan);

  g.AddNumeric(alice, birth, 1960.0);
  g.AddNumeric(bob, birth, 1962.0);
  g.AddNumeric(carol, birth, 1965.0);
  g.AddNumeric(dave, birth, 1967.0);
  g.AddNumeric(rome, lat, 41.9);
  g.AddNumeric(milan, lat, 45.5);
  g.Finalize();

  Rng rng(seed);
  ds.split = SplitNumericTriples(g.numerical_triples(), g.num_attributes(), rng,
                                 0.8, 0.0);
  return ds;
}

}  // namespace kg
}  // namespace chainsformer
