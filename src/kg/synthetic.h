#ifndef CHAINSFORMER_KG_SYNTHETIC_H_
#define CHAINSFORMER_KG_SYNTHETIC_H_

#include <cstdint>

#include "kg/dataset.h"

namespace chainsformer {
namespace kg {

/// Options for the synthetic benchmark generators.
///
/// The real FB15K-237 / YAGO15K dumps with MMKG numeric attributes are not
/// available offline, so we generate graphs that match their published
/// statistics (Table I/II) at a configurable scale and — crucially — plant
/// the *chain-shaped attribute correlations* the paper discovers in its key
/// RA-Chains (Table V): siblings share birth eras, films inherit release
/// years from their director's generation, places inherit coordinates from
/// their region / capital / containing state, teammates share body-metric
/// clusters, and so on. Multi-hop reasoning is therefore genuinely required
/// (many query entities have no 1-hop attribute evidence), which preserves
/// the experiments' qualitative shape.
struct SyntheticOptions {
  /// Fraction of the paper-scale entity counts (1.0 ≈ 15k entities).
  double scale = 0.12;
  uint64_t seed = 42;
  /// Probability that a latent attribute value is observed as a numeric
  /// triple. Sparsity forces reasoning through neighbors.
  double observation_rate = 0.55;
};

/// YAGO15K-like dataset: 7 attributes (birth, death, created, destroyed,
/// happened, latitude, longitude), people/works/events/places world.
Dataset MakeYago15kLike(const SyntheticOptions& options = {});

/// FB15K-237-like dataset: 11 attributes (birth, death, film_release,
/// org_founded, loc_founded, latitude, longitude, area, population, height,
/// weight), people/films/teams/ethnicities/orgs/places world.
Dataset MakeFb15k237Like(const SyntheticOptions& options = {});

/// Tiny deterministic graph (a handful of entities) for unit tests.
Dataset MakeToyDataset(uint64_t seed = 7);

}  // namespace kg
}  // namespace chainsformer

#endif  // CHAINSFORMER_KG_SYNTHETIC_H_
