#ifndef CHAINSFORMER_KG_LOADER_H_
#define CHAINSFORMER_KG_LOADER_H_

#include <string>

#include "kg/dataset.h"

namespace chainsformer {
namespace kg {

/// Loads a dataset from TSV files, for users who have the real FB15K-237 /
/// YAGO15K dumps (MMKG format):
///   * `triples_path`: one relational triple per line, "head\trelation\ttail".
///   * `numeric_path`: one numeric triple per line, "entity\tattribute\tvalue".
/// Attribute categories are inferred from well-known attribute names
/// (birth/death/... -> temporal, latitude/longitude -> spatial, else
/// quantity). Lines starting with '#' and blank lines are skipped.
/// Returns a finalized dataset with a seeded 8:1:1 split.
Dataset LoadTsvDataset(const std::string& name, const std::string& triples_path,
                       const std::string& numeric_path, uint64_t split_seed = 42);

/// Writes a dataset back to the two-file TSV format (used by tests and by
/// the examples to show the on-disk format round-trips).
void SaveTsvDataset(const Dataset& dataset, const std::string& triples_path,
                    const std::string& numeric_path);

}  // namespace kg
}  // namespace chainsformer

#endif  // CHAINSFORMER_KG_LOADER_H_
