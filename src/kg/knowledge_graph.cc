#include "kg/knowledge_graph.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace chainsformer {
namespace kg {

EntityId KnowledgeGraph::AddEntity(const std::string& name) {
  CF_CHECK(!finalized_);
  auto it = entity_index_.find(name);
  if (it != entity_index_.end()) return it->second;
  const EntityId id = static_cast<EntityId>(entity_names_.size());
  entity_names_.push_back(name);
  entity_index_.emplace(name, id);
  return id;
}

RelationId KnowledgeGraph::AddRelation(const std::string& name) {
  CF_CHECK(!finalized_);
  auto it = relation_index_.find(name);
  if (it != relation_index_.end()) return it->second;
  const RelationId id = static_cast<RelationId>(relation_names_.size());
  relation_names_.push_back(name);
  relation_names_.push_back(name + "_inv");
  relation_index_.emplace(name, id);
  relation_index_.emplace(name + "_inv", id + 1);
  return id;
}

AttributeId KnowledgeGraph::AddAttribute(const std::string& name,
                                         AttributeCategory category) {
  CF_CHECK(!finalized_);
  auto it = attribute_index_.find(name);
  if (it != attribute_index_.end()) return it->second;
  const AttributeId id = static_cast<AttributeId>(attribute_names_.size());
  attribute_names_.push_back(name);
  attribute_categories_.push_back(category);
  attribute_index_.emplace(name, id);
  return id;
}

void KnowledgeGraph::AddTriple(EntityId head, RelationId relation, EntityId tail) {
  CF_CHECK(!finalized_);
  CF_CHECK_GE(head, 0);
  CF_CHECK_LT(head, num_entities());
  CF_CHECK_GE(tail, 0);
  CF_CHECK_LT(tail, num_entities());
  CF_CHECK(!IsInverseRelation(relation))
      << "AddTriple takes base relation ids; inverses are implicit";
  CF_CHECK_LT(relation, num_relation_ids());
  relational_triples_.push_back({head, relation, tail});
}

void KnowledgeGraph::AddNumeric(EntityId entity, AttributeId attribute, double value) {
  CF_CHECK(!finalized_);
  CF_CHECK_GE(entity, 0);
  CF_CHECK_LT(entity, num_entities());
  CF_CHECK_GE(attribute, 0);
  CF_CHECK_LT(attribute, num_attributes());
  CF_CHECK(std::isfinite(value));
  numerical_triples_.push_back({entity, attribute, value});
}

void KnowledgeGraph::Finalize() {
  CF_CHECK(!finalized_);
  const int64_t n = num_entities();

  // Adjacency CSR: every triple contributes a forward and an inverse edge.
  std::vector<int64_t> degree(static_cast<size_t>(n) + 1, 0);
  for (const auto& t : relational_triples_) {
    ++degree[static_cast<size_t>(t.head) + 1];
    ++degree[static_cast<size_t>(t.tail) + 1];
  }
  adj_offsets_.assign(degree.begin(), degree.end());
  for (size_t i = 1; i < adj_offsets_.size(); ++i) adj_offsets_[i] += adj_offsets_[i - 1];
  adj_edges_.resize(static_cast<size_t>(adj_offsets_.back()));
  std::vector<int64_t> cursor(adj_offsets_.begin(), adj_offsets_.end() - 1);
  for (const auto& t : relational_triples_) {
    adj_edges_[static_cast<size_t>(cursor[static_cast<size_t>(t.head)]++)] =
        Edge{t.tail, t.relation};
    adj_edges_[static_cast<size_t>(cursor[static_cast<size_t>(t.tail)]++)] =
        Edge{t.head, InverseRelation(t.relation)};
  }

  // Per-entity attribute CSR.
  std::vector<int64_t> acount(static_cast<size_t>(n) + 1, 0);
  for (const auto& t : numerical_triples_) ++acount[static_cast<size_t>(t.entity) + 1];
  attr_offsets_.assign(acount.begin(), acount.end());
  for (size_t i = 1; i < attr_offsets_.size(); ++i) attr_offsets_[i] += attr_offsets_[i - 1];
  attr_values_.resize(static_cast<size_t>(attr_offsets_.back()));
  std::vector<int64_t> acursor(attr_offsets_.begin(), attr_offsets_.end() - 1);
  for (const auto& t : numerical_triples_) {
    attr_values_[static_cast<size_t>(acursor[static_cast<size_t>(t.entity)]++)] = {
        t.attribute, t.value};
  }

  attribute_stats_ = ComputeAttributeStats(numerical_triples_, num_attributes());
  finalized_ = true;
}

const std::string& KnowledgeGraph::EntityName(EntityId e) const {
  return entity_names_.at(static_cast<size_t>(e));
}

const std::string& KnowledgeGraph::RelationName(RelationId r) const {
  return relation_names_.at(static_cast<size_t>(r));
}

const std::string& KnowledgeGraph::AttributeName(AttributeId a) const {
  return attribute_names_.at(static_cast<size_t>(a));
}

AttributeCategory KnowledgeGraph::AttributeCategoryOf(AttributeId a) const {
  return attribute_categories_.at(static_cast<size_t>(a));
}

EntityId KnowledgeGraph::FindEntity(const std::string& name) const {
  auto it = entity_index_.find(name);
  return it == entity_index_.end() ? -1 : it->second;
}

RelationId KnowledgeGraph::FindRelation(const std::string& name) const {
  auto it = relation_index_.find(name);
  return it == relation_index_.end() ? -1 : it->second;
}

AttributeId KnowledgeGraph::FindAttribute(const std::string& name) const {
  auto it = attribute_index_.find(name);
  return it == attribute_index_.end() ? -1 : it->second;
}

std::span<const Edge> KnowledgeGraph::Neighbors(EntityId e) const {
  CF_CHECK(finalized_);
  CF_CHECK_GE(e, 0);
  CF_CHECK_LT(e, num_entities());
  const int64_t b = adj_offsets_[static_cast<size_t>(e)];
  const int64_t f = adj_offsets_[static_cast<size_t>(e) + 1];
  return {adj_edges_.data() + b, static_cast<size_t>(f - b)};
}

int64_t KnowledgeGraph::Degree(EntityId e) const {
  return static_cast<int64_t>(Neighbors(e).size());
}

std::span<const std::pair<AttributeId, double>> KnowledgeGraph::EntityAttributes(
    EntityId e) const {
  CF_CHECK(finalized_);
  const int64_t b = attr_offsets_[static_cast<size_t>(e)];
  const int64_t f = attr_offsets_[static_cast<size_t>(e) + 1];
  return {attr_values_.data() + b, static_cast<size_t>(f - b)};
}

bool KnowledgeGraph::GetAttribute(EntityId e, AttributeId a, double* value) const {
  for (const auto& [attr, v] : EntityAttributes(e)) {
    if (attr == a) {
      if (value != nullptr) *value = v;
      return true;
    }
  }
  return false;
}

std::vector<AttributeStats> ComputeAttributeStats(
    const std::vector<NumericalTriple>& triples, int64_t num_attributes) {
  std::vector<AttributeStats> stats(static_cast<size_t>(num_attributes));
  std::vector<double> sum(static_cast<size_t>(num_attributes), 0.0);
  std::vector<double> sum_sq(static_cast<size_t>(num_attributes), 0.0);
  for (const auto& t : triples) {
    auto& s = stats[static_cast<size_t>(t.attribute)];
    ++s.count;
    s.min = std::min(s.min, t.value);
    s.max = std::max(s.max, t.value);
    sum[static_cast<size_t>(t.attribute)] += t.value;
    sum_sq[static_cast<size_t>(t.attribute)] += t.value * t.value;
  }
  for (size_t a = 0; a < stats.size(); ++a) {
    auto& s = stats[a];
    if (s.count == 0) {
      s.min = 0.0;
      s.max = 0.0;
      continue;
    }
    s.mean = sum[a] / static_cast<double>(s.count);
    const double var =
        std::max(0.0, sum_sq[a] / static_cast<double>(s.count) - s.mean * s.mean);
    s.stddev = std::sqrt(var);
  }
  return stats;
}

NumericIndex::NumericIndex(const std::vector<NumericalTriple>& triples,
                           int64_t num_entities) {
  std::vector<int64_t> count(static_cast<size_t>(num_entities) + 1, 0);
  for (const auto& t : triples) ++count[static_cast<size_t>(t.entity) + 1];
  offsets_.assign(count.begin(), count.end());
  for (size_t i = 1; i < offsets_.size(); ++i) offsets_[i] += offsets_[i - 1];
  values_.resize(static_cast<size_t>(offsets_.back()));
  std::vector<int64_t> cursor(offsets_.begin(), offsets_.end() - 1);
  for (const auto& t : triples) {
    values_[static_cast<size_t>(cursor[static_cast<size_t>(t.entity)]++)] = {
        t.attribute, t.value};
  }
}

std::span<const std::pair<AttributeId, double>> NumericIndex::Values(EntityId e) const {
  CF_CHECK_GE(e, 0);
  CF_CHECK_LT(static_cast<size_t>(e) + 1, offsets_.size());
  const int64_t b = offsets_[static_cast<size_t>(e)];
  const int64_t f = offsets_[static_cast<size_t>(e) + 1];
  return {values_.data() + b, static_cast<size_t>(f - b)};
}

bool NumericIndex::Get(EntityId e, AttributeId a, double* value) const {
  for (const auto& [attr, v] : Values(e)) {
    if (attr == a) {
      if (value != nullptr) *value = v;
      return true;
    }
  }
  return false;
}

}  // namespace kg
}  // namespace chainsformer
