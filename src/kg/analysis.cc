#include "kg/analysis.h"

#include <algorithm>
#include <queue>
#include <sstream>
#include <unordered_set>

#include "util/logging.h"
#include "util/rng.h"

namespace chainsformer {
namespace kg {

GraphAnalysis AnalyzeGraph(const KnowledgeGraph& graph) {
  CF_CHECK(graph.finalized());
  GraphAnalysis a;
  a.num_entities = graph.num_entities();
  a.num_relational_triples = static_cast<int64_t>(graph.relational_triples().size());
  a.num_numerical_triples = static_cast<int64_t>(graph.numerical_triples().size());

  // Degrees.
  int64_t degree_sum = 0;
  for (EntityId e = 0; e < a.num_entities; ++e) {
    const int64_t d = graph.Degree(e);
    degree_sum += d;
    a.max_degree = std::max(a.max_degree, d);
    if (d == 0) ++a.isolated_entities;
    // Power-of-two bucket: 0 -> 0, 1 -> 1, 2-3 -> 2, 4-7 -> 3, ...
    size_t bucket = 0;
    if (d > 0) {
      bucket = 1;
      for (int64_t x = d; x > 1; x >>= 1) ++bucket;
    }
    if (a.degree_histogram.size() <= bucket) a.degree_histogram.resize(bucket + 1, 0);
    ++a.degree_histogram[bucket];
  }
  a.avg_degree = a.num_entities > 0
                     ? static_cast<double>(degree_sum) / static_cast<double>(a.num_entities)
                     : 0.0;

  // Connected components via BFS.
  std::vector<uint8_t> visited(static_cast<size_t>(a.num_entities), 0);
  for (EntityId e = 0; e < a.num_entities; ++e) {
    if (visited[static_cast<size_t>(e)]) continue;
    ++a.connected_components;
    int64_t size = 0;
    std::queue<EntityId> frontier;
    frontier.push(e);
    visited[static_cast<size_t>(e)] = 1;
    while (!frontier.empty()) {
      const EntityId cur = frontier.front();
      frontier.pop();
      ++size;
      for (const auto& edge : graph.Neighbors(cur)) {
        if (!visited[static_cast<size_t>(edge.neighbor)]) {
          visited[static_cast<size_t>(edge.neighbor)] = 1;
          frontier.push(edge.neighbor);
        }
      }
    }
    a.largest_component_size = std::max(a.largest_component_size, size);
  }

  // Numeric coverage.
  for (EntityId e = 0; e < a.num_entities; ++e) {
    if (!graph.EntityAttributes(e).empty()) ++a.entities_with_numeric;
  }
  a.numeric_density = a.num_entities > 0
                          ? static_cast<double>(a.num_numerical_triples) /
                                static_cast<double>(a.num_entities)
                          : 0.0;

  // Relation usage.
  a.relation_counts.assign(static_cast<size_t>(graph.num_relations()), 0);
  for (const auto& t : graph.relational_triples()) {
    ++a.relation_counts[static_cast<size_t>(t.relation / 2)];
  }
  return a;
}

double AverageReachableEntities(const KnowledgeGraph& graph, int hops,
                                int sample_size, uint64_t seed) {
  CF_CHECK(graph.finalized());
  CF_CHECK_GE(hops, 0);
  if (graph.num_entities() == 0 || sample_size <= 0) return 0.0;
  Rng rng(seed);
  double total = 0.0;
  for (int s = 0; s < sample_size; ++s) {
    const auto start = static_cast<EntityId>(
        rng.UniformInt(static_cast<uint64_t>(graph.num_entities())));
    std::unordered_set<EntityId> visited{start};
    std::vector<EntityId> frontier{start};
    for (int h = 0; h < hops && !frontier.empty(); ++h) {
      std::vector<EntityId> next;
      for (EntityId e : frontier) {
        for (const auto& edge : graph.Neighbors(e)) {
          if (visited.insert(edge.neighbor).second) next.push_back(edge.neighbor);
        }
      }
      frontier.swap(next);
    }
    total += static_cast<double>(visited.size() - 1);
  }
  return total / static_cast<double>(sample_size);
}

std::string AnalysisReport(const KnowledgeGraph& graph, const GraphAnalysis& a) {
  std::ostringstream os;
  os << "entities: " << a.num_entities
     << "  relational triples: " << a.num_relational_triples
     << "  numeric triples: " << a.num_numerical_triples << "\n";
  os << "avg degree: " << a.avg_degree << "  max degree: " << a.max_degree
     << "  isolated: " << a.isolated_entities << "\n";
  os << "components: " << a.connected_components
     << "  largest: " << a.largest_component_size << " ("
     << (a.num_entities > 0
             ? 100.0 * static_cast<double>(a.largest_component_size) /
                   static_cast<double>(a.num_entities)
             : 0.0)
     << "%)\n";
  os << "entities with numeric facts: " << a.entities_with_numeric << " ("
     << (a.num_entities > 0
             ? 100.0 * static_cast<double>(a.entities_with_numeric) /
                   static_cast<double>(a.num_entities)
             : 0.0)
     << "%), numeric density: " << a.numeric_density << "\n";
  os << "degree histogram (power-of-two buckets):";
  for (size_t b = 0; b < a.degree_histogram.size(); ++b) {
    os << " [" << (b == 0 ? 0 : (1 << (b - 1))) << "+]=" << a.degree_histogram[b];
  }
  os << "\n";
  os << "top relations:";
  std::vector<std::pair<int64_t, size_t>> sorted;
  for (size_t r = 0; r < a.relation_counts.size(); ++r) {
    sorted.emplace_back(a.relation_counts[r], r);
  }
  std::sort(sorted.rbegin(), sorted.rend());
  for (size_t i = 0; i < sorted.size() && i < 6; ++i) {
    os << " " << graph.RelationName(static_cast<RelationId>(sorted[i].second * 2))
       << "=" << sorted[i].first;
  }
  os << "\n";
  return os.str();
}

}  // namespace kg
}  // namespace chainsformer
