#include "serve/router.h"

#include <algorithm>
#include <chrono>
#include <sstream>

#include "util/logging.h"
#include "util/metric_names.h"
#include "util/net.h"
#include "util/metrics.h"
#include "util/string_util.h"
#include "util/telemetry.h"

namespace chainsformer {
namespace serve {

namespace {

/// SplitMix64 finalizer: turns a weakly-mixed 64-bit value into a
/// well-distributed ring position (same mixer as the trace-id seam).
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// FNV-1a over the key bytes; Mix64 on top fixes FNV's weak high bits.
uint64_t HashBytes(const std::string& s) {
  uint64_t h = 1469598103934665603ULL;
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  return Mix64(h);
}

const std::string kHealthzLine = "{\"cmd\": \"healthz\"}";

}  // namespace

// --- HashRing ---------------------------------------------------------------

HashRing::HashRing(int shards, int vnodes)
    : shards_(shards > 0 ? shards : 1), vnodes_(vnodes > 0 ? vnodes : 1) {
  points_.reserve(static_cast<size_t>(shards_) * static_cast<size_t>(vnodes_));
  for (int s = 0; s < shards_; ++s) {
    for (int v = 0; v < vnodes_; ++v) {
      // Mix64 of a (shard, replica) pack — deterministic, no strings, and
      // identical in every process that agrees on (shards, vnodes).
      const uint64_t point = Mix64((static_cast<uint64_t>(s) << 32) |
                                   static_cast<uint64_t>(v));
      points_.emplace_back(point, s);
    }
  }
  std::sort(points_.begin(), points_.end());
}

uint64_t HashRing::KeyHash(const std::string& key) { return HashBytes(key); }

size_t HashRing::FirstPointAtOrAfter(uint64_t hash) const {
  const auto it = std::lower_bound(
      points_.begin(), points_.end(), std::make_pair(hash, 0),
      [](const std::pair<uint64_t, int>& a, const std::pair<uint64_t, int>& b) {
        return a.first < b.first;
      });
  return it == points_.end() ? 0 : static_cast<size_t>(it - points_.begin());
}

int HashRing::Owner(const std::string& key) const {
  return points_[FirstPointAtOrAfter(KeyHash(key))].second;
}

std::vector<int> HashRing::OwnerChain(const std::string& key) const {
  std::vector<int> chain;
  chain.reserve(static_cast<size_t>(shards_));
  std::vector<bool> seen(static_cast<size_t>(shards_), false);
  size_t i = FirstPointAtOrAfter(KeyHash(key));
  for (size_t step = 0; step < points_.size() &&
                        chain.size() < static_cast<size_t>(shards_);
       ++step, i = (i + 1) % points_.size()) {
    const int s = points_[i].second;
    if (!seen[static_cast<size_t>(s)]) {
      seen[static_cast<size_t>(s)] = true;
      chain.push_back(s);
    }
  }
  return chain;
}

// --- Backends ---------------------------------------------------------------

bool ShardBackend::Probe(int timeout_ms) {
  std::string response;
  return Forward(kHealthzLine, timeout_ms, &response) &&
         response.find("\"ok\"") != std::string::npos;
}

bool LocalShardBackend::Forward(const std::string& line, int /*timeout_ms*/,
                                std::string* response) {
  if (down_.load(std::memory_order_acquire)) return false;
  *response = handler_(line);
  return true;
}

TcpShardBackend::TcpShardBackend(std::string host, int port)
    : host_(std::move(host)), port_(port) {}

TcpShardBackend::~TcpShardBackend() {
  cf::MutexLock lock(mu_);
  for (PooledConn& c : idle_) net::CloseFd(c.fd);
  idle_.clear();
}

std::string TcpShardBackend::name() const {
  return host_ + ":" + std::to_string(port_);
}

bool TcpShardBackend::ForwardOnce(PooledConn conn, const std::string& line,
                                  int timeout_ms, std::string* response) {
  if (conn.fd < 0) {
    conn.fd = net::ConnectTcp(host_, port_, timeout_ms);
    if (conn.fd < 0) return false;
  }
  if (!net::SendLine(conn.fd, line) ||
      !net::RecvLine(conn.fd, &conn.read_buf, response, timeout_ms)) {
    net::CloseFd(conn.fd);
    return false;
  }
  cf::MutexLock lock(mu_);
  idle_.push_back(std::move(conn));
  return true;
}

bool TcpShardBackend::Forward(const std::string& line, int timeout_ms,
                              std::string* response) {
  PooledConn conn;
  {
    cf::MutexLock lock(mu_);
    if (!idle_.empty()) {
      conn = std::move(idle_.back());
      idle_.pop_back();
    }
  }
  const bool pooled = conn.fd >= 0;
  if (ForwardOnce(std::move(conn), line, timeout_ms, response)) return true;
  // A pooled connection can be stale (shard restarted since the last
  // request); one retry on a fresh dial separates "stale socket" from
  // "shard down".
  return pooled && ForwardOnce(PooledConn{}, line, timeout_ms, response);
}

// --- Router -----------------------------------------------------------------

Router::Router(std::vector<std::unique_ptr<ShardBackend>> shards,
               const RouterOptions& options)
    : options_(options),
      shards_(std::move(shards)),
      ring_(static_cast<int>(shards_.size())),
      states_(shards_.size()) {
  if (options_.health_period_ms > 0) {
    health_thread_ = std::thread([this] { HealthLoop(); });
  }
}

Router::~Router() {
  {
    cf::MutexLock lock(stop_mu_);
    stopping_ = true;
  }
  stop_cv_.NotifyAll();
  if (health_thread_.joinable()) health_thread_.join();
}

void Router::MarkFailure(size_t idx) {
  ShardState& st = states_[idx];
  st.total_failures.fetch_add(1, std::memory_order_relaxed);
  const int consecutive =
      st.consecutive_failures.fetch_add(1, std::memory_order_acq_rel) + 1;
  if (consecutive >= options_.unhealthy_after &&
      !st.down.exchange(true, std::memory_order_acq_rel)) {
    CF_LOG(Warning) << "router: shard " << idx << " (" << shards_[idx]->name()
                    << ") marked down after " << consecutive
                    << " consecutive failures";
  }
}

void Router::MarkSuccess(size_t idx) {
  ShardState& st = states_[idx];
  st.consecutive_failures.store(0, std::memory_order_relaxed);
  if (st.down.exchange(false, std::memory_order_acq_rel)) {
    CF_LOG(Info) << "router: shard " << idx << " (" << shards_[idx]->name()
                 << ") back up";
  }
}

bool Router::TryShard(size_t idx, const std::string& line,
                      std::string* response) {
  states_[idx].forwards.fetch_add(1, std::memory_order_relaxed);
  if (shards_[idx]->Forward(line, options_.forward_timeout_ms, response)) {
    MarkSuccess(idx);
    return true;
  }
  static auto* errors = metrics::MetricsRegistry::Global().GetCounter(
      metrics::names::kRouterShardErrors);
  errors->Increment();
  MarkFailure(idx);
  return false;
}

std::string Router::DegradedResponse(const std::string& line) const {
  // Answer-shaped even with every shard gone: same fields a deadline
  // degradation carries, so clients never special-case the router.
  std::string id, trace_id;
  const bool has_id = JsonField(line, "id", &id);
  if (!JsonField(line, "trace_id", &trace_id)) trace_id = "0";
  std::string r = "{";
  if (has_id) r += "\"id\": " + id + ", ";
  r += "\"trace_id\": \"" + EscapeJson(trace_id) +
       "\", \"value\": 0, \"degraded\": true, \"source\": \"shard_down\", "
       "\"latency_us\": 0, \"batch_size\": 0}";
  return r;
}

std::string Router::HandleLine(const std::string& line) {
  static auto* requests = metrics::MetricsRegistry::Global().GetCounter(
      metrics::names::kRouterRequests);
  static auto* rerouted_counter = metrics::MetricsRegistry::Global().GetCounter(
      metrics::names::kRouterRerouted);
  static auto* degraded_counter = metrics::MetricsRegistry::Global().GetCounter(
      metrics::names::kRouterDegraded);
  static auto* slo_shard_down =
      telemetry::TelemetryRegistry::Global().GetCounter(
          metrics::names::kSloShardDown);
  requests->Increment();

  std::string cmd;
  if (JsonField(line, "cmd", &cmd)) {
    if (cmd == "healthz") {
      int healthy = 0;
      for (size_t i = 0; i < shards_.size(); ++i) {
        if (shard_healthy(static_cast<int>(i))) ++healthy;
      }
      return "{\"ok\": true, \"role\": \"router\", \"shards\": " +
             std::to_string(shards_.size()) +
             ", \"healthy\": " + std::to_string(healthy) + "}";
    }
    if (cmd == "statusz") return StatusJson();
    return "{\"error\": \"unknown cmd: " + EscapeJson(cmd) + "\"}";
  }

  std::string entity;
  if (!JsonField(line, "entity", &entity)) {
    std::string id;
    const bool has_id = JsonField(line, "id", &id);
    std::string r = "{";
    if (has_id) r += "\"id\": " + id + ", ";
    return r + "\"error\": \"request needs \\\"entity\\\" for routing\"}";
  }

  const std::vector<int> chain = ring_.OwnerChain(entity);
  std::string response;
  // Two passes over the failover chain: first skip shards already marked
  // down (no timeout paid), then — only if everything looked down — try
  // them anyway (the probe thread may simply not have noticed a recovery).
  for (const bool include_down : {false, true}) {
    for (size_t pos = 0; pos < chain.size(); ++pos) {
      const size_t idx = static_cast<size_t>(chain[pos]);
      const bool down = !shard_healthy(chain[pos]);
      if (down != include_down) continue;
      if (!TryShard(idx, line, &response)) continue;
      if (pos != 0 || include_down) {
        // Not answered by the warm owner: correct (every shard holds the
        // full model) but cache-cold. Tag it and count the SLO miss.
        rerouted_counter->Increment();
        slo_shard_down->Increment();
        const size_t brace = response.rfind('}');
        if (brace != std::string::npos) {
          response.insert(brace, ", \"rerouted\": true");
        }
      }
      return response;
    }
  }
  degraded_counter->Increment();
  slo_shard_down->Increment();
  return DegradedResponse(line);
}

std::vector<std::string> Router::HandleBatch(
    const std::vector<std::string>& lines) {
  static auto* fanout = metrics::MetricsRegistry::Global().GetCounter(
      metrics::names::kRouterFanoutBatches);
  std::vector<std::string> results(lines.size());
  // Partition by owning shard, then fan one thread out per owner; each
  // request still walks the full failover chain on its own if the owner
  // fails mid-batch.
  std::vector<std::vector<size_t>> by_owner(shards_.size());
  for (size_t i = 0; i < lines.size(); ++i) {
    std::string entity;
    const int owner = JsonField(lines[i], "entity", &entity)
                          ? ring_.Owner(entity)
                          : 0;
    by_owner[static_cast<size_t>(owner)].push_back(i);
  }
  fanout->Increment();
  std::vector<std::thread> fans;
  for (const std::vector<size_t>& group : by_owner) {
    if (group.empty()) continue;
    fans.emplace_back([this, g = &group, &lines, &results] {
      for (const size_t i : *g) results[i] = HandleLine(lines[i]);
    });
  }
  for (auto& f : fans) f.join();
  return results;
}

void Router::CheckNow() {
  static auto* probes = metrics::MetricsRegistry::Global().GetCounter(
      metrics::names::kRouterHealthProbes);
  for (size_t i = 0; i < shards_.size(); ++i) {
    probes->Increment();
    if (shards_[i]->Probe(options_.forward_timeout_ms)) {
      MarkSuccess(i);
    } else {
      MarkFailure(i);
    }
  }
}

void Router::HealthLoop() {
  while (true) {
    {
      cf::MutexLock lock(stop_mu_);
      if (stop_cv_.WaitFor(stop_mu_,
                           std::chrono::milliseconds(options_.health_period_ms),
                           [this]() CF_REQUIRES(stop_mu_) {
                             return stopping_;
                           })) {
        return;
      }
    }
    CheckNow();
  }
}

std::string Router::StatusJson() const {
  const metrics::MetricsSnapshot snap =
      metrics::MetricsRegistry::Global().Snapshot();
  const telemetry::TelemetrySnapshot window =
      telemetry::TelemetryRegistry::Global().Snapshot();
  std::ostringstream os;
  os << "{\"role\": \"router\", \"ring\": {\"shards\": " << shards_.size()
     << ", \"vnodes\": " << ring_.vnodes() << "}, \"shards\": [";
  for (size_t i = 0; i < shards_.size(); ++i) {
    const ShardState& st = states_[i];
    os << (i == 0 ? "" : ", ") << "{\"index\": " << i << ", \"address\": \""
       << EscapeJson(shards_[i]->name()) << "\", \"healthy\": "
       << (st.down.load(std::memory_order_acquire) ? "false" : "true")
       << ", \"forwards\": " << st.forwards.load(std::memory_order_relaxed)
       << ", \"failures\": "
       << st.total_failures.load(std::memory_order_relaxed) << "}";
  }
  os << "], \"counters\": {";
  const char* names[] = {
      metrics::names::kRouterRequests,    metrics::names::kRouterRerouted,
      metrics::names::kRouterDegraded,    metrics::names::kRouterShardErrors,
      metrics::names::kRouterFanoutBatches,
      metrics::names::kRouterHealthProbes};
  bool first = true;
  for (const char* name : names) {
    os << (first ? "" : ", ") << "\"" << name
       << "\": " << snap.CounterValue(name);
    first = false;
  }
  os << "}, \"slo\": {\"window_shard_down\": "
     << window.CounterSum(metrics::names::kSloShardDown) << "}}";
  return os.str();
}

}  // namespace serve
}  // namespace chainsformer
