#include "serve/checkpoint.h"

#include <cmath>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <functional>
#include <map>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "util/logging.h"

namespace chainsformer {
namespace serve {
namespace {

using core::ChainsFormerConfig;

constexpr char kMagic[4] = {'C', 'F', 'S', 'M'};
// Version 1: config + vocab + stats + tensors. Version 2 adds the optional
// tagged-block section (currently only "quant_int8") between the stats
// block and the tensor section; it is written only when a block is present
// so quant-less checkpoints stay readable by version-1 binaries.
constexpr uint32_t kVersion = 1;
constexpr uint32_t kVersionTagged = 2;
constexpr char kQuantBlockName[] = "quant_int8";

template <typename T>
void WritePod(std::ostream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
bool ReadPod(std::istream& in, T* value) {
  in.read(reinterpret_cast<char*>(value), sizeof(T));
  return in.good();
}

void WriteString(std::ostream& out, const std::string& s) {
  WritePod(out, static_cast<uint32_t>(s.size()));
  out.write(s.data(), static_cast<std::streamsize>(s.size()));
}

bool ReadString(std::istream& in, std::string* s) {
  uint32_t len = 0;
  if (!ReadPod(in, &len)) return false;
  // 1 MiB sanity bound: a longer "name" means we are reading garbage.
  if (len > (1u << 20)) return false;
  s->resize(len);
  in.read(s->data(), static_cast<std::streamsize>(len));
  return in.good() || len == 0;
}

// --- Config block ----------------------------------------------------------
// Every architecture-relevant field travels as a named entry so that a
// checkpoint from a different build version fails with the offending key
// instead of a silent misparse. Enums are stored as int64.

enum : uint8_t { kKindInt = 0, kKindDouble = 1 };

struct ConfigField {
  const char* name;
  uint8_t kind;
  // kKindInt uses the int64 pair, kKindDouble the double pair; the unused
  // pair is empty. Ints never round-trip through double (seed is uint64).
  std::function<int64_t(const ChainsFormerConfig&)> get_int;
  std::function<void(ChainsFormerConfig&, int64_t)> set_int;
  std::function<double(const ChainsFormerConfig&)> get_double;
  std::function<void(ChainsFormerConfig&, double)> set_double;
};

template <typename T, typename M>
ConfigField IntField(const char* name, M T::*member) {
  return {name, kKindInt,
          [member](const ChainsFormerConfig& c) {
            return static_cast<int64_t>(c.*member);
          },
          [member](ChainsFormerConfig& c, int64_t v) {
            c.*member = static_cast<M>(v);
          },
          nullptr, nullptr};
}

template <typename T, typename M>
ConfigField FloatField(const char* name, M T::*member) {
  return {name, kKindDouble, nullptr, nullptr,
          [member](const ChainsFormerConfig& c) {
            return static_cast<double>(c.*member);
          },
          [member](ChainsFormerConfig& c, double v) {
            c.*member = static_cast<M>(v);
          }};
}

/// The saved subset of ChainsFormerConfig: everything that determines the
/// parameter shapes, the retrieval distribution or the forward math.
/// Execution knobs (kernel_threads, eval_threads, batched_encoder,
/// check_mode, verbose, training schedule) deliberately stay load-side.
const std::vector<ConfigField>& SavedFields() {
  using C = ChainsFormerConfig;
  static const std::vector<ConfigField> fields = {
      IntField<C>("max_hops", &C::max_hops),
      IntField<C>("num_walks", &C::num_walks),
      IntField<C>("top_k", &C::top_k),
      IntField<C>("same_attribute_only", &C::same_attribute_only),
      IntField<C>("retrieval_strategy", &C::retrieval_strategy),
      IntField<C>("hidden_dim", &C::hidden_dim),
      IntField<C>("encoder_layers", &C::encoder_layers),
      IntField<C>("reasoner_layers", &C::reasoner_layers),
      IntField<C>("num_heads", &C::num_heads),
      IntField<C>("filter_dim", &C::filter_dim),
      IntField<C>("filter_space", &C::filter_space),
      IntField<C>("encoder_type", &C::encoder_type),
      IntField<C>("use_numerical_aware", &C::use_numerical_aware),
      IntField<C>("numeric_encoding", &C::numeric_encoding),
      IntField<C>("projection", &C::projection),
      IntField<C>("use_chain_weighting", &C::use_chain_weighting),
      IntField<C>("use_chain_quality", &C::use_chain_quality),
      FloatField<C>("chain_quality_max_error", &C::chain_quality_max_error),
      FloatField<C>("curvature", &C::curvature),
      FloatField<C>("lambda", &C::lambda),
      IntField<C>("seed", &C::seed),
  };
  return fields;
}

void WriteConfigBlock(std::ostream& out, const ChainsFormerConfig& config) {
  const auto& fields = SavedFields();
  WritePod(out, static_cast<uint32_t>(fields.size()));
  for (const ConfigField& f : fields) {
    WriteString(out, f.name);
    WritePod(out, f.kind);
    if (f.kind == kKindInt) {
      WritePod(out, f.get_int(config));
    } else {
      WritePod(out, f.get_double(config));
    }
  }
}

bool ReadConfigBlock(std::istream& in, ChainsFormerConfig& config) {
  uint32_t count = 0;
  if (!ReadPod(in, &count) || count > 1024) return false;
  std::map<std::string, const ConfigField*> by_name;
  for (const ConfigField& f : SavedFields()) by_name[f.name] = &f;
  for (uint32_t i = 0; i < count; ++i) {
    std::string name;
    uint8_t kind = 0;
    if (!ReadString(in, &name) || !ReadPod(in, &kind)) return false;
    auto it = by_name.find(name);
    if (it == by_name.end()) {
      CF_LOG(Fatal) << "LoadModel: checkpoint config key \"" << name
                    << "\" is unknown to this binary (format version skew)";
    }
    const ConfigField* f = it->second;
    if (kind != f->kind) {
      CF_LOG(Fatal) << "LoadModel: checkpoint config key \"" << name
                    << "\" has the wrong value kind";
    }
    if (kind == kKindInt) {
      int64_t v = 0;
      if (!ReadPod(in, &v)) return false;
      f->set_int(config, v);
    } else {
      double v = 0.0;
      if (!ReadPod(in, &v)) return false;
      f->set_double(config, v);
    }
  }
  return true;
}

// --- Vocab block -----------------------------------------------------------

void WriteVocabBlock(std::ostream& out, const kg::KnowledgeGraph& graph) {
  WritePod(out, static_cast<int64_t>(graph.num_entities()));
  WritePod(out, static_cast<int64_t>(graph.num_relation_ids()));
  for (int64_t r = 0; r < graph.num_relation_ids(); ++r) {
    WriteString(out, graph.RelationName(static_cast<kg::RelationId>(r)));
  }
  WritePod(out, static_cast<int64_t>(graph.num_attributes()));
  for (int64_t a = 0; a < graph.num_attributes(); ++a) {
    WriteString(out, graph.AttributeName(static_cast<kg::AttributeId>(a)));
  }
}

bool ReadAndValidateVocabBlock(std::istream& in, const kg::KnowledgeGraph& graph) {
  int64_t num_entities = 0;
  if (!ReadPod(in, &num_entities)) return false;
  if (num_entities != graph.num_entities()) {
    CF_LOG(Fatal) << "LoadModel: checkpoint was trained on " << num_entities
                  << " entities, dataset has " << graph.num_entities();
  }
  int64_t num_relations = 0;
  if (!ReadPod(in, &num_relations)) return false;
  if (num_relations != graph.num_relation_ids()) {
    CF_LOG(Fatal) << "LoadModel: checkpoint has " << num_relations
                  << " relation ids, dataset has " << graph.num_relation_ids();
  }
  for (int64_t r = 0; r < num_relations; ++r) {
    std::string name;
    if (!ReadString(in, &name)) return false;
    const std::string& local = graph.RelationName(static_cast<kg::RelationId>(r));
    if (name != local) {
      CF_LOG(Fatal) << "LoadModel: relation id " << r << " is \"" << name
                    << "\" in the checkpoint but \"" << local
                    << "\" in the dataset";
    }
  }
  int64_t num_attributes = 0;
  if (!ReadPod(in, &num_attributes)) return false;
  if (num_attributes != graph.num_attributes()) {
    CF_LOG(Fatal) << "LoadModel: checkpoint has " << num_attributes
                  << " attributes, dataset has " << graph.num_attributes();
  }
  for (int64_t a = 0; a < num_attributes; ++a) {
    std::string name;
    if (!ReadString(in, &name)) return false;
    const std::string& local = graph.AttributeName(static_cast<kg::AttributeId>(a));
    if (name != local) {
      CF_LOG(Fatal) << "LoadModel: attribute id " << a << " is \"" << name
                    << "\" in the checkpoint but \"" << local
                    << "\" in the dataset";
    }
  }
  return true;
}

// --- Stats block -----------------------------------------------------------

void WriteStatsBlock(std::ostream& out,
                     const std::vector<kg::AttributeStats>& stats) {
  WritePod(out, static_cast<uint64_t>(stats.size()));
  for (const kg::AttributeStats& s : stats) {
    WritePod(out, s.count);
    WritePod(out, s.min);
    WritePod(out, s.max);
    WritePod(out, s.mean);
    WritePod(out, s.stddev);
  }
}

bool ReadStatsBlock(std::istream& in, size_t expected,
                    std::vector<kg::AttributeStats>& stats) {
  uint64_t count = 0;
  if (!ReadPod(in, &count)) return false;
  if (count != expected) {
    CF_LOG(Fatal) << "LoadModel: checkpoint has normalization stats for "
                  << count << " attributes, dataset has " << expected;
  }
  stats.resize(count);
  for (kg::AttributeStats& s : stats) {
    if (!ReadPod(in, &s.count) || !ReadPod(in, &s.min) || !ReadPod(in, &s.max) ||
        !ReadPod(in, &s.mean) || !ReadPod(in, &s.stddev)) {
      return false;
    }
  }
  return true;
}

// --- Tagged-block section (format version 2) -------------------------------

void WriteQuantBlockPayload(std::ostream& out, const graph::QuantStore& q) {
  WritePod(out, q.mae_delta);
  WritePod(out, q.calibration_queries);
  WritePod(out, static_cast<uint32_t>(q.linears.size()));
  for (const graph::QuantizedLinear& l : q.linears) {
    WriteString(out, l.name);
    WritePod(out, l.in);
    WritePod(out, l.out);
    out.write(reinterpret_cast<const char*>(l.scale.data()),
              static_cast<std::streamsize>(l.scale.size() * sizeof(float)));
    out.write(reinterpret_cast<const char*>(l.codes.data()),
              static_cast<std::streamsize>(l.codes.size()));
  }
}

/// Parses a "quant_int8" payload, aborting with the block name on anything
/// malformed: a corrupt scale array must never reach the serve path, where
/// it would silently dequantize to garbage.
graph::QuantStore ParseQuantBlock(std::istream& in, const std::string& path) {
  graph::QuantStore q;
  uint32_t count = 0;
  if (!ReadPod(in, &q.mae_delta) || !ReadPod(in, &q.calibration_queries) ||
      !ReadPod(in, &count) || count > (1u << 16)) {
    CF_LOG(Fatal) << "LoadModel: " << path
                  << " has a truncated quant_int8 block";
  }
  if (!std::isfinite(q.mae_delta) || q.mae_delta < 0.0) {
    CF_LOG(Fatal) << "LoadModel: quant_int8 block of " << path
                  << " records a non-finite or negative calibration error";
  }
  q.linears.resize(count);
  for (graph::QuantizedLinear& l : q.linears) {
    if (!ReadString(in, &l.name) || !ReadPod(in, &l.in) ||
        !ReadPod(in, &l.out) || l.in <= 0 || l.out <= 0 ||
        l.in > (1 << 20) || l.out > (1 << 20) ||
        l.in * l.out > (int64_t{1} << 28)) {
      CF_LOG(Fatal) << "LoadModel: quant_int8 block of " << path
                    << " has a corrupt linear header";
    }
    l.scale.resize(static_cast<size_t>(l.out));
    in.read(reinterpret_cast<char*>(l.scale.data()),
            static_cast<std::streamsize>(l.scale.size() * sizeof(float)));
    l.codes.resize(static_cast<size_t>(l.in * l.out));
    in.read(reinterpret_cast<char*>(l.codes.data()),
            static_cast<std::streamsize>(l.codes.size()));
    if (!in.good()) {
      CF_LOG(Fatal) << "LoadModel: quant_int8 block of " << path
                    << " is truncated inside " << l.name;
    }
    for (float s : l.scale) {
      if (!std::isfinite(s) || s < 0.0f) {
        CF_LOG(Fatal) << "LoadModel: quant_int8 block of " << path
                      << " has a corrupt scale array for " << l.name;
      }
    }
  }
  return q;
}

void WriteTaggedBlocks(std::ostream& out, const graph::QuantStore& quant) {
  WritePod(out, static_cast<uint32_t>(1));  // block count
  std::ostringstream payload(std::ios::binary);
  WriteQuantBlockPayload(payload, quant);
  const std::string bytes = payload.str();
  WriteString(out, kQuantBlockName);
  WritePod(out, static_cast<uint64_t>(bytes.size()));
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

/// Reads the version-2 tagged-block section. Unrecognized block names are
/// skipped over by their recorded length so future writers stay readable.
bool ReadTaggedBlocks(std::istream& in, const std::string& path,
                      graph::QuantStore* quant_out) {
  uint32_t count = 0;
  if (!ReadPod(in, &count) || count > 64) return false;
  for (uint32_t i = 0; i < count; ++i) {
    std::string name;
    uint64_t len = 0;
    if (!ReadString(in, &name) || !ReadPod(in, &len) ||
        len > (uint64_t{1} << 30)) {
      return false;
    }
    if (name == kQuantBlockName && quant_out != nullptr) {
      std::string bytes(static_cast<size_t>(len), '\0');
      in.read(bytes.data(), static_cast<std::streamsize>(len));
      if (!in.good()) return false;
      std::istringstream payload(bytes, std::ios::binary);
      *quant_out = ParseQuantBlock(payload, path);
    } else {
      in.seekg(static_cast<std::streamoff>(len), std::ios::cur);
      if (!in.good()) return false;
    }
  }
  return true;
}

}  // namespace

bool SaveModel(const core::ChainsFormerModel& model, const std::string& path) {
  return SaveModel(model, nullptr, path);
}

bool SaveModel(const core::ChainsFormerModel& model,
               const graph::QuantStore* quant, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out.good()) return false;
  out.write(kMagic, sizeof(kMagic));
  WritePod(out, quant != nullptr ? kVersionTagged : kVersion);
  WriteConfigBlock(out, model.config());
  WriteVocabBlock(out, model.dataset().graph);
  WriteStatsBlock(out, model.train_stats());
  if (quant != nullptr) WriteTaggedBlocks(out, *quant);
  if (!model.SaveCheckpoint(out)) return false;
  return out.good();
}

bool IsModelCheckpoint(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  char magic[4];
  in.read(magic, sizeof(magic));
  return in.good() && std::memcmp(magic, kMagic, sizeof(kMagic)) == 0;
}

std::unique_ptr<core::ChainsFormerModel> LoadModel(
    const kg::Dataset& dataset, const core::ChainsFormerConfig& base_config,
    const std::string& path, graph::QuantStore* quant_out) {
  if (quant_out != nullptr) *quant_out = graph::QuantStore{};
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) {
    CF_LOG(Error) << "LoadModel: cannot open " << path;
    return nullptr;
  }
  char magic[4];
  in.read(magic, sizeof(magic));
  if (!in.good() || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    CF_LOG(Error) << "LoadModel: " << path << " is not a CFSM checkpoint";
    return nullptr;
  }
  uint32_t version = 0;
  if (!ReadPod(in, &version)) return nullptr;
  if (version < kVersion || version > kVersionTagged) {
    CF_LOG(Fatal) << "LoadModel: " << path << " has format version " << version
                  << ", this binary reads versions " << kVersion << ".."
                  << kVersionTagged;
  }

  ChainsFormerConfig config = base_config;
  if (!ReadConfigBlock(in, config)) {
    CF_LOG(Error) << "LoadModel: " << path << " has a corrupt config block";
    return nullptr;
  }
  if (!ReadAndValidateVocabBlock(in, dataset.graph)) {
    CF_LOG(Error) << "LoadModel: " << path << " has a corrupt vocab block";
    return nullptr;
  }
  std::vector<kg::AttributeStats> stats;
  if (!ReadStatsBlock(in, static_cast<size_t>(dataset.graph.num_attributes()),
                      stats)) {
    CF_LOG(Error) << "LoadModel: " << path << " has a corrupt stats block";
    return nullptr;
  }
  if (version >= kVersionTagged && !ReadTaggedBlocks(in, path, quant_out)) {
    CF_LOG(Error) << "LoadModel: " << path
                  << " has a corrupt tagged-block section";
    return nullptr;
  }

  auto model = std::make_unique<core::ChainsFormerModel>(dataset, config);
  model->OverrideTrainStats(std::move(stats));
  if (!model->LoadCheckpoint(in)) {
    CF_LOG(Fatal) << "LoadModel: tensor section of " << path
                  << " does not match the model built from its own config "
                  << "block (corrupt file or incompatible binary)";
  }
  return model;
}

}  // namespace serve
}  // namespace chainsformer
