#include "serve/checkpoint.h"

#include <cstdint>
#include <cstring>
#include <fstream>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "util/logging.h"

namespace chainsformer {
namespace serve {
namespace {

using core::ChainsFormerConfig;

constexpr char kMagic[4] = {'C', 'F', 'S', 'M'};
constexpr uint32_t kVersion = 1;

template <typename T>
void WritePod(std::ostream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
bool ReadPod(std::istream& in, T* value) {
  in.read(reinterpret_cast<char*>(value), sizeof(T));
  return in.good();
}

void WriteString(std::ostream& out, const std::string& s) {
  WritePod(out, static_cast<uint32_t>(s.size()));
  out.write(s.data(), static_cast<std::streamsize>(s.size()));
}

bool ReadString(std::istream& in, std::string* s) {
  uint32_t len = 0;
  if (!ReadPod(in, &len)) return false;
  // 1 MiB sanity bound: a longer "name" means we are reading garbage.
  if (len > (1u << 20)) return false;
  s->resize(len);
  in.read(s->data(), static_cast<std::streamsize>(len));
  return in.good() || len == 0;
}

// --- Config block ----------------------------------------------------------
// Every architecture-relevant field travels as a named entry so that a
// checkpoint from a different build version fails with the offending key
// instead of a silent misparse. Enums are stored as int64.

enum : uint8_t { kKindInt = 0, kKindDouble = 1 };

struct ConfigField {
  const char* name;
  uint8_t kind;
  // kKindInt uses the int64 pair, kKindDouble the double pair; the unused
  // pair is empty. Ints never round-trip through double (seed is uint64).
  std::function<int64_t(const ChainsFormerConfig&)> get_int;
  std::function<void(ChainsFormerConfig&, int64_t)> set_int;
  std::function<double(const ChainsFormerConfig&)> get_double;
  std::function<void(ChainsFormerConfig&, double)> set_double;
};

template <typename T, typename M>
ConfigField IntField(const char* name, M T::*member) {
  return {name, kKindInt,
          [member](const ChainsFormerConfig& c) {
            return static_cast<int64_t>(c.*member);
          },
          [member](ChainsFormerConfig& c, int64_t v) {
            c.*member = static_cast<M>(v);
          },
          nullptr, nullptr};
}

template <typename T, typename M>
ConfigField FloatField(const char* name, M T::*member) {
  return {name, kKindDouble, nullptr, nullptr,
          [member](const ChainsFormerConfig& c) {
            return static_cast<double>(c.*member);
          },
          [member](ChainsFormerConfig& c, double v) {
            c.*member = static_cast<M>(v);
          }};
}

/// The saved subset of ChainsFormerConfig: everything that determines the
/// parameter shapes, the retrieval distribution or the forward math.
/// Execution knobs (kernel_threads, eval_threads, batched_encoder,
/// check_mode, verbose, training schedule) deliberately stay load-side.
const std::vector<ConfigField>& SavedFields() {
  using C = ChainsFormerConfig;
  static const std::vector<ConfigField> fields = {
      IntField<C>("max_hops", &C::max_hops),
      IntField<C>("num_walks", &C::num_walks),
      IntField<C>("top_k", &C::top_k),
      IntField<C>("same_attribute_only", &C::same_attribute_only),
      IntField<C>("retrieval_strategy", &C::retrieval_strategy),
      IntField<C>("hidden_dim", &C::hidden_dim),
      IntField<C>("encoder_layers", &C::encoder_layers),
      IntField<C>("reasoner_layers", &C::reasoner_layers),
      IntField<C>("num_heads", &C::num_heads),
      IntField<C>("filter_dim", &C::filter_dim),
      IntField<C>("filter_space", &C::filter_space),
      IntField<C>("encoder_type", &C::encoder_type),
      IntField<C>("use_numerical_aware", &C::use_numerical_aware),
      IntField<C>("numeric_encoding", &C::numeric_encoding),
      IntField<C>("projection", &C::projection),
      IntField<C>("use_chain_weighting", &C::use_chain_weighting),
      IntField<C>("use_chain_quality", &C::use_chain_quality),
      FloatField<C>("chain_quality_max_error", &C::chain_quality_max_error),
      FloatField<C>("curvature", &C::curvature),
      FloatField<C>("lambda", &C::lambda),
      IntField<C>("seed", &C::seed),
  };
  return fields;
}

void WriteConfigBlock(std::ostream& out, const ChainsFormerConfig& config) {
  const auto& fields = SavedFields();
  WritePod(out, static_cast<uint32_t>(fields.size()));
  for (const ConfigField& f : fields) {
    WriteString(out, f.name);
    WritePod(out, f.kind);
    if (f.kind == kKindInt) {
      WritePod(out, f.get_int(config));
    } else {
      WritePod(out, f.get_double(config));
    }
  }
}

bool ReadConfigBlock(std::istream& in, ChainsFormerConfig& config) {
  uint32_t count = 0;
  if (!ReadPod(in, &count) || count > 1024) return false;
  std::map<std::string, const ConfigField*> by_name;
  for (const ConfigField& f : SavedFields()) by_name[f.name] = &f;
  for (uint32_t i = 0; i < count; ++i) {
    std::string name;
    uint8_t kind = 0;
    if (!ReadString(in, &name) || !ReadPod(in, &kind)) return false;
    auto it = by_name.find(name);
    if (it == by_name.end()) {
      CF_LOG(Fatal) << "LoadModel: checkpoint config key \"" << name
                    << "\" is unknown to this binary (format version skew)";
    }
    const ConfigField* f = it->second;
    if (kind != f->kind) {
      CF_LOG(Fatal) << "LoadModel: checkpoint config key \"" << name
                    << "\" has the wrong value kind";
    }
    if (kind == kKindInt) {
      int64_t v = 0;
      if (!ReadPod(in, &v)) return false;
      f->set_int(config, v);
    } else {
      double v = 0.0;
      if (!ReadPod(in, &v)) return false;
      f->set_double(config, v);
    }
  }
  return true;
}

// --- Vocab block -----------------------------------------------------------

void WriteVocabBlock(std::ostream& out, const kg::KnowledgeGraph& graph) {
  WritePod(out, static_cast<int64_t>(graph.num_entities()));
  WritePod(out, static_cast<int64_t>(graph.num_relation_ids()));
  for (int64_t r = 0; r < graph.num_relation_ids(); ++r) {
    WriteString(out, graph.RelationName(static_cast<kg::RelationId>(r)));
  }
  WritePod(out, static_cast<int64_t>(graph.num_attributes()));
  for (int64_t a = 0; a < graph.num_attributes(); ++a) {
    WriteString(out, graph.AttributeName(static_cast<kg::AttributeId>(a)));
  }
}

bool ReadAndValidateVocabBlock(std::istream& in, const kg::KnowledgeGraph& graph) {
  int64_t num_entities = 0;
  if (!ReadPod(in, &num_entities)) return false;
  if (num_entities != graph.num_entities()) {
    CF_LOG(Fatal) << "LoadModel: checkpoint was trained on " << num_entities
                  << " entities, dataset has " << graph.num_entities();
  }
  int64_t num_relations = 0;
  if (!ReadPod(in, &num_relations)) return false;
  if (num_relations != graph.num_relation_ids()) {
    CF_LOG(Fatal) << "LoadModel: checkpoint has " << num_relations
                  << " relation ids, dataset has " << graph.num_relation_ids();
  }
  for (int64_t r = 0; r < num_relations; ++r) {
    std::string name;
    if (!ReadString(in, &name)) return false;
    const std::string& local = graph.RelationName(static_cast<kg::RelationId>(r));
    if (name != local) {
      CF_LOG(Fatal) << "LoadModel: relation id " << r << " is \"" << name
                    << "\" in the checkpoint but \"" << local
                    << "\" in the dataset";
    }
  }
  int64_t num_attributes = 0;
  if (!ReadPod(in, &num_attributes)) return false;
  if (num_attributes != graph.num_attributes()) {
    CF_LOG(Fatal) << "LoadModel: checkpoint has " << num_attributes
                  << " attributes, dataset has " << graph.num_attributes();
  }
  for (int64_t a = 0; a < num_attributes; ++a) {
    std::string name;
    if (!ReadString(in, &name)) return false;
    const std::string& local = graph.AttributeName(static_cast<kg::AttributeId>(a));
    if (name != local) {
      CF_LOG(Fatal) << "LoadModel: attribute id " << a << " is \"" << name
                    << "\" in the checkpoint but \"" << local
                    << "\" in the dataset";
    }
  }
  return true;
}

// --- Stats block -----------------------------------------------------------

void WriteStatsBlock(std::ostream& out,
                     const std::vector<kg::AttributeStats>& stats) {
  WritePod(out, static_cast<uint64_t>(stats.size()));
  for (const kg::AttributeStats& s : stats) {
    WritePod(out, s.count);
    WritePod(out, s.min);
    WritePod(out, s.max);
    WritePod(out, s.mean);
    WritePod(out, s.stddev);
  }
}

bool ReadStatsBlock(std::istream& in, size_t expected,
                    std::vector<kg::AttributeStats>& stats) {
  uint64_t count = 0;
  if (!ReadPod(in, &count)) return false;
  if (count != expected) {
    CF_LOG(Fatal) << "LoadModel: checkpoint has normalization stats for "
                  << count << " attributes, dataset has " << expected;
  }
  stats.resize(count);
  for (kg::AttributeStats& s : stats) {
    if (!ReadPod(in, &s.count) || !ReadPod(in, &s.min) || !ReadPod(in, &s.max) ||
        !ReadPod(in, &s.mean) || !ReadPod(in, &s.stddev)) {
      return false;
    }
  }
  return true;
}

}  // namespace

bool SaveModel(const core::ChainsFormerModel& model, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out.good()) return false;
  out.write(kMagic, sizeof(kMagic));
  WritePod(out, kVersion);
  WriteConfigBlock(out, model.config());
  WriteVocabBlock(out, model.dataset().graph);
  WriteStatsBlock(out, model.train_stats());
  if (!model.SaveCheckpoint(out)) return false;
  return out.good();
}

bool IsModelCheckpoint(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  char magic[4];
  in.read(magic, sizeof(magic));
  return in.good() && std::memcmp(magic, kMagic, sizeof(kMagic)) == 0;
}

std::unique_ptr<core::ChainsFormerModel> LoadModel(
    const kg::Dataset& dataset, const core::ChainsFormerConfig& base_config,
    const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) {
    CF_LOG(Error) << "LoadModel: cannot open " << path;
    return nullptr;
  }
  char magic[4];
  in.read(magic, sizeof(magic));
  if (!in.good() || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    CF_LOG(Error) << "LoadModel: " << path << " is not a CFSM checkpoint";
    return nullptr;
  }
  uint32_t version = 0;
  if (!ReadPod(in, &version)) return nullptr;
  if (version != kVersion) {
    CF_LOG(Fatal) << "LoadModel: " << path << " has format version " << version
                  << ", this binary reads version " << kVersion;
  }

  ChainsFormerConfig config = base_config;
  if (!ReadConfigBlock(in, config)) {
    CF_LOG(Error) << "LoadModel: " << path << " has a corrupt config block";
    return nullptr;
  }
  if (!ReadAndValidateVocabBlock(in, dataset.graph)) {
    CF_LOG(Error) << "LoadModel: " << path << " has a corrupt vocab block";
    return nullptr;
  }
  std::vector<kg::AttributeStats> stats;
  if (!ReadStatsBlock(in, static_cast<size_t>(dataset.graph.num_attributes()),
                      stats)) {
    CF_LOG(Error) << "LoadModel: " << path << " has a corrupt stats block";
    return nullptr;
  }

  auto model = std::make_unique<core::ChainsFormerModel>(dataset, config);
  model->OverrideTrainStats(std::move(stats));
  if (!model->LoadCheckpoint(in)) {
    CF_LOG(Fatal) << "LoadModel: tensor section of " << path
                  << " does not match the model built from its own config "
                  << "block (corrupt file or incompatible binary)";
  }
  return model;
}

}  // namespace serve
}  // namespace chainsformer
