#ifndef CHAINSFORMER_SERVE_ROUTER_H_
#define CHAINSFORMER_SERVE_ROUTER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "util/sync.h"

namespace chainsformer {
namespace serve {

/// Virtual nodes per shard on the consistent-hash ring. One constant shared
/// by the router and by shard-mode servers (serve.misrouted accounting), so
/// both sides always agree on who owns an entity.
inline constexpr int kDefaultVnodes = 64;

/// Consistent-hash ring over `shards` shards with `vnodes` virtual nodes
/// each (DESIGN §6i). Entities hash to a point on a 64-bit ring; the owning
/// shard is the first vnode at or after that point. Adding a shard moves
/// ~1/(N+1) of the keys (router_test pins this), so growing a fleet mostly
/// preserves every shard's warm ToC cache — the whole reason the partition
/// exists. Deterministic across processes: router and shards build
/// identical rings from (shards, vnodes) alone.
class HashRing {
 public:
  explicit HashRing(int shards, int vnodes = kDefaultVnodes);

  /// Shard owning `key` (an entity name).
  int Owner(const std::string& key) const;

  /// Every shard in ring order starting at `key`'s point: the owner first,
  /// then the failover order a down owner's keys reroute along.
  std::vector<int> OwnerChain(const std::string& key) const;

  int num_shards() const { return shards_; }
  int vnodes() const { return vnodes_; }

  /// 64-bit ring position of a key (exposed for tests).
  static uint64_t KeyHash(const std::string& key);

 private:
  size_t FirstPointAtOrAfter(uint64_t hash) const;

  int shards_;
  int vnodes_;
  std::vector<std::pair<uint64_t, int>> points_;  // (ring position, shard)
};

/// One shard the router can forward to. Implementations: LocalShardBackend
/// (in-process worker group — tests and single-binary deployments) and
/// TcpShardBackend (a shard-mode chainsformer_serve process).
class ShardBackend {
 public:
  virtual ~ShardBackend() = default;

  /// Forwards one NDJSON request line; on success fills `*response` with
  /// the shard's one-line answer and returns true. False means a transport
  /// failure or timeout (`*response` is unspecified) — the router treats it
  /// as "shard down", never as an answer.
  virtual bool Forward(const std::string& line, int timeout_ms,
                       std::string* response) = 0;

  /// Cheap liveness probe; default forwards {"cmd": "healthz"} and accepts
  /// any response claiming ok.
  virtual bool Probe(int timeout_ms);

  /// Human-readable shard address for status output ("127.0.0.1:8471").
  virtual std::string name() const = 0;
};

/// In-process shard: forwards to a handler function directly. SetDown(true)
/// simulates a killed shard process (every Forward fails), which is how
/// router_test runs the kill-one-shard-under-load scenario hermetically.
class LocalShardBackend : public ShardBackend {
 public:
  using Handler = std::function<std::string(const std::string& line)>;
  LocalShardBackend(std::string name, Handler handler)
      : name_(std::move(name)), handler_(std::move(handler)) {}

  bool Forward(const std::string& line, int timeout_ms,
               std::string* response) override;
  std::string name() const override { return name_; }

  void SetDown(bool down) { down_.store(down, std::memory_order_release); }

 private:
  std::string name_;
  Handler handler_;
  std::atomic<bool> down_{false};
};

/// TCP shard client with a small pool of persistent NDJSON connections.
/// Forward checks a connection out of the pool (dialing a new one when
/// empty), sends the line, waits for the one-line reply within the timeout,
/// and returns the connection on success; any failure discards it. A stale
/// pooled connection (shard restarted) costs one transparent retry on a
/// fresh dial.
class TcpShardBackend : public ShardBackend {
 public:
  TcpShardBackend(std::string host, int port);
  ~TcpShardBackend() override;

  bool Forward(const std::string& line, int timeout_ms,
               std::string* response) override;
  std::string name() const override;

 private:
  /// One pooled connection and its NDJSON read-ahead buffer (bytes of the
  /// next response that arrived with the previous one stay with their fd).
  struct PooledConn {
    int fd = -1;
    std::string read_buf;
  };

  bool ForwardOnce(PooledConn conn, const std::string& line, int timeout_ms,
                   std::string* response);

  const std::string host_;
  const int port_;
  cf::Mutex mu_{"router.conn_pool"};
  std::vector<PooledConn> idle_ CF_GUARDED_BY(mu_);
};

/// Router tuning knobs.
struct RouterOptions {
  /// Per-shard attempt budget for one forward. Mirrors the serve deadline:
  /// the router gives each attempt at most this long before declaring the
  /// shard slow and moving on.
  int forward_timeout_ms = 250;
  /// Consecutive transport failures before a shard is marked down (health
  /// probes and successful forwards mark it back up).
  int unhealthy_after = 1;
  /// Background health-probe cadence; <= 0 disables the probe thread (a
  /// down shard then recovers only via CheckNow or a direct-forward retry).
  int health_period_ms = 250;
};

/// Entity-sharded fan-out router (DESIGN §6i).
///
/// HandleLine hashes the request's entity onto the ring and forwards the
/// line to the owning shard, preserving the response verbatim — trace_id,
/// per-phase telemetry and all. When the owner is down or times out, the
/// request reroutes along the ring order (every shard holds the full model;
/// sharding partitions the *cache working set*, not correctness), the
/// response gains `"rerouted": true`, and the miss is counted under the SLO
/// tracker (slo.shard_down window counter). Only when every shard fails
/// does the router degrade the request itself: `"source": "shard_down"`,
/// value 0 — answer-shaped, never a hang, matching the deadline-degradation
/// contract.
///
/// HandleBatch fans a batch out to the owning shards concurrently and
/// merges responses back into request order.
///
/// Thread-safety: HandleLine/HandleBatch from any thread; shard health is
/// atomics plus a background probe thread.
class Router {
 public:
  Router(std::vector<std::unique_ptr<ShardBackend>> shards,
         const RouterOptions& options);
  ~Router();

  Router(const Router&) = delete;
  Router& operator=(const Router&) = delete;

  /// Routes one NDJSON request line and returns the one-line response.
  /// {"cmd": "healthz"} and {"cmd": "statusz"} answer router-side.
  std::string HandleLine(const std::string& line);

  /// Routes a batch concurrently (one fan-out thread per owning shard);
  /// result[i] answers lines[i].
  std::vector<std::string> HandleBatch(const std::vector<std::string>& lines);

  /// Probes every shard once, synchronously (tests; the background thread
  /// does the same on its cadence).
  void CheckNow();

  const HashRing& ring() const { return ring_; }
  int num_shards() const { return static_cast<int>(shards_.size()); }
  bool shard_healthy(int i) const {
    return !states_[static_cast<size_t>(i)].down.load(
        std::memory_order_acquire);
  }

  /// Router-side status document (one line of JSON): per-shard health and
  /// failure counts, ring geometry, routing counters.
  std::string StatusJson() const;

 private:
  struct ShardState {
    std::atomic<bool> down{false};
    std::atomic<int> consecutive_failures{0};
    std::atomic<int64_t> total_failures{0};
    std::atomic<int64_t> forwards{0};
  };

  bool TryShard(size_t idx, const std::string& line, std::string* response);
  void MarkFailure(size_t idx);
  void MarkSuccess(size_t idx);
  std::string DegradedResponse(const std::string& line) const;
  void HealthLoop();

  const RouterOptions options_;
  std::vector<std::unique_ptr<ShardBackend>> shards_;
  HashRing ring_;
  std::vector<ShardState> states_;

  cf::Mutex stop_mu_{"router.stop"};
  cf::CondVar stop_cv_;
  bool stopping_ CF_GUARDED_BY(stop_mu_) = false;
  std::thread health_thread_;
};

}  // namespace serve
}  // namespace chainsformer

#endif  // CHAINSFORMER_SERVE_ROUTER_H_
