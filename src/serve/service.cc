#include "serve/service.h"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <unordered_map>
#include <utility>

#include "baselines/simple.h"
#include "graph/runtime.h"
#include "util/logging.h"
#include "util/metric_names.h"
#include "util/metrics.h"
#include "util/rng.h"
#include "util/telemetry.h"
#include "util/thread_pool.h"
#include "util/trace.h"

namespace chainsformer {
namespace serve {
namespace {

using Clock = std::chrono::steady_clock;

metrics::Counter* RequestsCounter() {
  static auto* c = metrics::MetricsRegistry::Global().GetCounter(metrics::names::kServeRequests);
  return c;
}
metrics::Counter* DegradedCounter() {
  static auto* c = metrics::MetricsRegistry::Global().GetCounter(metrics::names::kServeDegraded);
  return c;
}
metrics::Histogram* BatchSizeHist() {
  static auto* h =
      metrics::MetricsRegistry::Global().GetHistogram(metrics::names::kServeBatchSize);
  return h;
}
metrics::Histogram* LatencyHist() {
  static auto* h =
      metrics::MetricsRegistry::Global().GetHistogram(metrics::names::kServeLatencyUs);
  return h;
}
metrics::Counter* DedupCounter() {
  static auto* c =
      metrics::MetricsRegistry::Global().GetCounter(metrics::names::kServeBatchDedup);
  return c;
}
metrics::Counter* ImmediateDispatchCounter() {
  static auto* c =
      metrics::MetricsRegistry::Global().GetCounter(metrics::names::kServeImmediateDispatch);
  return c;
}
metrics::Counter* DegradedCauseCounter(const char* source) {
  static auto* deadline = metrics::MetricsRegistry::Global().GetCounter(
      metrics::names::kServeDegradedDeadline);
  static auto* empty_toc = metrics::MetricsRegistry::Global().GetCounter(
      metrics::names::kServeDegradedEmptyToc);
  static auto* shutdown = metrics::MetricsRegistry::Global().GetCounter(
      metrics::names::kServeDegradedShutdown);
  if (std::strcmp(source, "deadline") == 0) return deadline;
  if (std::strcmp(source, "empty_toc") == 0) return empty_toc;
  return shutdown;
}

/// Live sliding-window telemetry: per-phase latency percentiles and SLO
/// event counters the admin endpoint serves (util/telemetry.h). One struct
/// of cached pointers so the hot path pays a handful of relaxed atomic
/// increments, no registry lookups.
struct ServeTelemetry {
  telemetry::WindowedHistogram* total_us;
  telemetry::WindowedHistogram* cache_us;
  telemetry::WindowedHistogram* queue_us;
  telemetry::WindowedHistogram* window_us;
  telemetry::WindowedHistogram* compute_us;
  telemetry::WindowedHistogram* verify_us;
  telemetry::WindowedHistogram* serialize_us;  // observed by the CLI layer
  telemetry::WindowedCounter* requests;
  telemetry::WindowedCounter* deadline_miss;
  telemetry::WindowedCounter* degraded;
  telemetry::WindowedCounter* degraded_deadline;
  telemetry::WindowedCounter* degraded_empty_toc;
  telemetry::WindowedCounter* degraded_shutdown;
};

ServeTelemetry& Telemetry() {
  static ServeTelemetry* t = [] {
    auto& reg = telemetry::TelemetryRegistry::Global();
    auto* out = new ServeTelemetry();
    out->total_us = reg.GetHistogram(metrics::names::kServePhaseTotalUs);
    out->cache_us = reg.GetHistogram(metrics::names::kServePhaseCacheUs);
    out->queue_us = reg.GetHistogram(metrics::names::kServePhaseQueueUs);
    out->window_us = reg.GetHistogram(metrics::names::kServePhaseWindowUs);
    out->compute_us = reg.GetHistogram(metrics::names::kServePhaseComputeUs);
    out->verify_us = reg.GetHistogram(metrics::names::kServePhaseVerifyUs);
    out->serialize_us =
        reg.GetHistogram(metrics::names::kServePhaseSerializeUs);
    out->requests = reg.GetCounter(metrics::names::kSloRequests);
    out->deadline_miss = reg.GetCounter(metrics::names::kSloDeadlineMiss);
    out->degraded = reg.GetCounter(metrics::names::kSloDegraded);
    out->degraded_deadline =
        reg.GetCounter(metrics::names::kSloDegradedDeadline);
    out->degraded_empty_toc =
        reg.GetCounter(metrics::names::kSloDegradedEmptyToc);
    out->degraded_shutdown =
        reg.GetCounter(metrics::names::kSloDegradedShutdown);
    return out;
  }();
  return *t;
}

/// SplitMix64 finalizer: bijective on 64-bit values, so distinct sequence
/// numbers can never collide, yet ids look nothing like a counter.
uint64_t MixTraceId(uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

}  // namespace

InferenceService::InferenceService(const core::ChainsFormerModel& model,
                                   const ServeOptions& options)
    : model_(model),
      options_(options),
      cache_(options.cache_capacity > 0 ? options.cache_capacity : 1,
             options.cache_shards) {
  // Precompute the per-attribute train-mean fallback once (Predict on the
  // baseline is not const, so it cannot be shared across client threads).
  baselines::GlobalMeanBaseline baseline(model.dataset());
  baseline.Train();
  const int64_t num_attributes = model.dataset().graph.num_attributes();
  fallback_values_.reserve(static_cast<size_t>(num_attributes));
  for (int64_t a = 0; a < num_attributes; ++a) {
    fallback_values_.push_back(
        baseline.Predict(kg::EntityId{0}, static_cast<kg::AttributeId>(a)));
  }
  if (options.compute_threads != 1) {
    // 0 (or negative) = one worker per hardware thread, mirroring the
    // eval_threads convention.
    compute_pool_ = std::make_unique<ThreadPool>(
        options.compute_threads > 1 ? static_cast<size_t>(options.compute_threads)
                                    : 0);
  }
  if (options.use_static_graph && graph::StaticGraphRuntime::Supports(model)) {
    graph::RuntimeOptions ropts;
    ropts.precision = options.precision;
    ropts.verify_tolerance = options.verify_tolerance;
    if (options.precision == graph::Precision::kInt8) {
      // Hard accuracy gate (DESIGN §6g): int8 serving needs quantized
      // weights whose recorded calibration error fits the budget. Anything
      // else falls back to full precision with a named counter — the
      // operator asked for speed, but never at the price of silently
      // exceeding the accuracy budget.
      if (options.quant == nullptr || options.quant->linears.empty()) {
        quant_rejected_ = true;
        CF_LOG(Warning) << "serve: int8 requested but the checkpoint has no "
                        << "quant_int8 block; serving fp64";
      } else if (options.quant->mae_delta > options.quant_error_budget) {
        quant_rejected_ = true;
        CF_LOG(Warning) << "serve: int8 calibration error "
                        << options.quant->mae_delta << " exceeds the budget "
                        << options.quant_error_budget << "; serving fp64";
      } else {
        ropts.quant = options.quant;
      }
      if (quant_rejected_) {
        metrics::MetricsRegistry::Global()
            .GetCounter(metrics::names::kServeQuantRejected)
            ->Increment();
        ropts.precision = graph::Precision::kFp64;
      }
    }
    runtime_ = std::make_unique<graph::StaticGraphRuntime>(model, ropts);
  }
  // Trace-id seam: the salt comes from the model's deterministic RNG seed,
  // so a replayed process assigns the same ids in the same request order.
  trace_salt_ = Rng(static_cast<uint64_t>(model.config().seed)).Next();
  dispatcher_ = std::thread([this] { DispatchLoop(); });
}

InferenceService::~InferenceService() {
  {
    cf::MutexLock lock(queue_mu_);
    shutdown_ = true;
  }
  queue_cv_.NotifyAll();
  if (dispatcher_.joinable()) dispatcher_.join();
}

double InferenceService::Fallback(kg::AttributeId attribute) const {
  const auto a = static_cast<size_t>(attribute);
  return a < fallback_values_.size() ? fallback_values_[a] : 0.0;
}

ServeResponse InferenceService::Predict(const core::Query& query,
                                        uint64_t trace_id) {
  CF_TRACE_SCOPE("serve.predict");
  const Clock::time_point start = Clock::now();
  const uint64_t start_ns = trace::NowNs();
  const bool has_deadline = options_.deadline_ms > 0;
  const Clock::time_point deadline =
      start + std::chrono::milliseconds(has_deadline ? options_.deadline_ms : 0);
  RequestsCounter()->Increment();
  if (trace_id == 0) {
    // Salt ^ sequence through a bijective mixer: deterministic per process
    // (RNG seam), unique per request. MixTraceId never maps two inputs to
    // the same output, so forcing the rare zero to 1 is the only collision
    // risk — and 1 is itself the image of exactly one other input.
    trace_id = MixTraceId(trace_salt_ ^ trace_seq_.fetch_add(1, std::memory_order_relaxed));
    if (trace_id == 0) trace_id = 1;
  }
  // Visible to the dispatcher from here until the request joins the queue
  // (or bails out): while any request is arriving, the coalescing window is
  // worth opening.
  arriving_.fetch_add(1, std::memory_order_relaxed);

  auto finish = [&](ServeResponse r) {
    r.trace_id = trace_id;
    const uint64_t end_ns = trace::NowNs();
    r.latency_us = static_cast<int64_t>((end_ns - start_ns) / 1000);
    LatencyHist()->Observe(static_cast<double>(r.latency_us));
    // Windowed metrics reuse the end-of-request timestamp (telemetry::NowMs
    // shares the tracer clock) so the nine updates below cost one clock read
    // total, not one each — the guardrail in perf_microbench depends on it.
    const int64_t now_ms = static_cast<int64_t>(end_ns / 1'000'000);
    ServeTelemetry& live = Telemetry();
    live.requests->IncrementAtMs(1, now_ms);
    live.total_us->ObserveAtMs(static_cast<double>(r.latency_us), now_ms);
    live.cache_us->ObserveAtMs(static_cast<double>(r.cache_us), now_ms);
    if (r.batch_id >= 0) {
      live.queue_us->ObserveAtMs(static_cast<double>(r.queue_us), now_ms);
      live.window_us->ObserveAtMs(static_cast<double>(r.window_us), now_ms);
      live.compute_us->ObserveAtMs(static_cast<double>(r.compute_us), now_ms);
      if (r.verify_us > 0) {
        live.verify_us->ObserveAtMs(static_cast<double>(r.verify_us), now_ms);
      }
    }
    if (r.degraded) {
      DegradedCounter()->Increment();
      DegradedCauseCounter(r.source.c_str())->Increment();
      live.degraded->IncrementAtMs(1, now_ms);
      if (r.source == "deadline") {
        live.deadline_miss->IncrementAtMs(1, now_ms);
        live.degraded_deadline->IncrementAtMs(1, now_ms);
      } else if (r.source == "empty_toc") {
        live.degraded_empty_toc->IncrementAtMs(1, now_ms);
      } else {
        live.degraded_shutdown->IncrementAtMs(1, now_ms);
      }
    }
    if (trace::Enabled()) {
      trace::SpanAnnotations ann;
      ann.trace_id = trace_id;
      ann.batch_id = r.batch_id;
      ann.batch_size = r.batch_size;
      ann.dedup_collapsed = r.dedup_collapsed;
      if (r.degraded) ann.cause = r.source == "deadline" ? "deadline"
                                  : r.source == "empty_toc" ? "empty_toc"
                                                            : "shutdown";
      trace::EmitSpan("serve.request", start_ns, end_ns, ann);
    }
    return r;
  };

  // Retrieval runs on the client thread (it parallelizes across clients and
  // is the part the LRU cache can skip entirely).
  core::TreeOfChains chains;
  bool cache_hit = false;
  const bool cache_enabled = options_.cache_capacity > 0;
  const uint64_t cache_start_ns = trace::NowNs();
  if (cache_enabled && cache_.Get(query.entity, query.attribute, &chains)) {
    cache_hit = true;
  } else {
    CF_TRACE_SCOPE("serve.retrieve_miss");
    chains = model_.RetrieveChains(query);
    if (cache_enabled) cache_.Put(query.entity, query.attribute, chains);
  }
  const uint64_t cache_end_ns = trace::NowNs();
  const int64_t cache_us =
      static_cast<int64_t>((cache_end_ns - cache_start_ns) / 1000);
  trace::EmitSpan("serve.cache_lookup", cache_start_ns, cache_end_ns,
                  trace_id);
  if (chains.empty()) {
    arriving_.fetch_sub(1, std::memory_order_relaxed);
    ServeResponse r;
    r.value = Fallback(query.attribute);
    r.degraded = true;
    r.source = "empty_toc";
    r.cache_hit = cache_hit;
    r.cache_us = cache_us;
    return finish(r);
  }

  auto pending = std::make_shared<Pending>();
  pending->query = query;
  pending->chains = std::move(chains);
  pending->trace_id = trace_id;
  {
    cf::MutexLock lock(queue_mu_);
    arriving_.fetch_sub(1, std::memory_order_relaxed);
    if (shutdown_) {
      ServeResponse r;
      r.value = Fallback(query.attribute);
      r.degraded = true;
      r.source = "shutdown";
      r.cache_hit = cache_hit;
      r.cache_us = cache_us;
      return finish(r);
    }
    pending->enqueue_ns = trace::NowNs();
    queue_.push_back(pending);
  }
  queue_cv_.NotifyOne();

  cf::MutexLock lock(pending->mu);
  if (has_deadline) {
    pending->cv.WaitUntil(pending->mu, deadline,
                          [&]() CF_REQUIRES(pending->mu) { return pending->done; });
  } else {
    pending->cv.Wait(pending->mu,
                     [&]() CF_REQUIRES(pending->mu) { return pending->done; });
  }
  if (!pending->done) {
    // Deadline expired while queued or mid-batch. The dispatcher may still
    // complete the request later (it holds its own reference), but this
    // client answers now with the degraded fallback.
    ServeResponse r;
    r.value = Fallback(query.attribute);
    r.degraded = true;
    r.source = "deadline";
    r.cache_hit = cache_hit;
    r.cache_us = cache_us;
    r.queue_us =
        static_cast<int64_t>((trace::NowNs() - pending->enqueue_ns) / 1000);
    return finish(r);
  }
  pending->response.cache_hit = cache_hit;
  pending->response.cache_us = cache_us;
  return finish(pending->response);
}

void InferenceService::DispatchLoop() {
  const auto window = std::chrono::microseconds(options_.batch_window_us);
  const size_t max_batch =
      options_.max_batch > 0 ? static_cast<size_t>(options_.max_batch) : 1;
  while (true) {
    std::vector<std::shared_ptr<Pending>> batch;
    bool shutting_down = false;
    uint64_t wake_ns = 0;
    {
      cf::MutexLock lock(queue_mu_);
      queue_cv_.Wait(queue_mu_, [&]() CF_REQUIRES(queue_mu_) {
        return shutdown_ || !queue_.empty();
      });
      wake_ns = trace::NowNs();
      if (!queue_.empty() && options_.batch_window_us > 0 &&
          queue_.size() < max_batch && !shutdown_) {
        if (arriving_.load(std::memory_order_relaxed) > 0) {
          // Coalescing window: give the arriving clients a beat to join
          // this micro-batch before dispatching. The window also closes as
          // soon as the last arriving request has joined — anything not in
          // flight yet is waiting on this very batch's answer and cannot
          // arrive, so sleeping longer would add latency, not batch size.
          queue_cv_.WaitFor(queue_mu_, window, [&]() CF_REQUIRES(queue_mu_) {
            return shutdown_ || queue_.size() >= max_batch ||
                   arriving_.load(std::memory_order_relaxed) == 0;
          });
        } else {
          // Nothing is on the way: waiting out the window would add pure
          // latency without growing the batch (the uniform-workload
          // regression) — dispatch what is queued right now.
          ImmediateDispatchCounter()->Increment();
        }
      }
      while (!queue_.empty() && batch.size() < max_batch) {
        batch.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
      shutting_down = shutdown_;
      if (batch.empty() && shutting_down) return;
    }
    if (batch.empty()) continue;

    if (shutting_down) {
      // Drain without model work so the destructor never blocks on a
      // long forward pass; waiting clients get the degraded fallback.
      for (const auto& p : batch) {
        cf::MutexLock lock(p->mu);
        p->response.value = Fallback(p->query.attribute);
        p->response.degraded = true;
        p->response.source = "shutdown";
        p->done = true;
        p->cv.NotifyAll();
      }
      continue;
    }

    CF_TRACE_SCOPE("serve.batch");
    const int64_t batch_id = batch_seq_.fetch_add(1, std::memory_order_relaxed);
    const uint64_t collect_ns = trace::NowNs();
    // Coalesce duplicate requests: predictions are deterministic per
    // (entity, attribute) — the bitwise batching invariance this service is
    // built on — so N identical in-flight queries need exactly one forward
    // pass. Under skewed (hot-key) traffic this is where batching beats
    // single-request dispatch, which by construction cannot coalesce.
    std::vector<core::Query> queries;
    std::vector<const core::TreeOfChains*> chain_sets;
    std::vector<size_t> slot(batch.size());
    std::vector<bool> collapsed(batch.size(), false);
    std::unordered_map<uint64_t, size_t> unique_index;
    queries.reserve(batch.size());
    chain_sets.reserve(batch.size());
    unique_index.reserve(batch.size());
    for (size_t i = 0; i < batch.size(); ++i) {
      const auto& p = batch[i];
      const uint64_t key =
          (static_cast<uint64_t>(static_cast<uint32_t>(p->query.entity)) << 32) |
          static_cast<uint32_t>(p->query.attribute);
      const auto [it, inserted] = unique_index.try_emplace(key, queries.size());
      if (inserted) {
        queries.push_back(p->query);
        chain_sets.push_back(&p->chains);
      } else {
        collapsed[i] = true;  // another request's forward answers this one
      }
      slot[i] = it->second;
    }
    DedupCounter()->Increment(
        static_cast<int64_t>(batch.size() - queries.size()));
    BatchSizeHist()->Observe(static_cast<double>(batch.size()));
    std::vector<core::BatchPrediction> results;
    std::vector<graph::StaticGraphRuntime::PredictStats> run_stats(
        queries.size());
    if (runtime_ != nullptr) {
      // Compiled-plan dispatch: per-query static executors, fanned across
      // the compute pool like the eager pool path. Bitwise-identical to
      // PredictOnChainSets (each bucket is verified on first use).
      results.resize(queries.size());
      auto run_one = [&](size_t qi) {
        results[qi] =
            runtime_->Predict(queries[qi], *chain_sets[qi], &run_stats[qi]);
      };
      if (compute_pool_ != nullptr && compute_pool_->num_threads() > 1 &&
          queries.size() > 1) {
        compute_pool_->ParallelFor(queries.size(), run_one);
      } else {
        // One worker (or one query) gains nothing from the pool hop — run
        // inline on the dispatcher thread and skip the cross-thread wakeup.
        for (size_t qi = 0; qi < queries.size(); ++qi) run_one(qi);
      }
    } else {
      results =
          model_.PredictOnChainSets(queries, chain_sets, compute_pool_.get());
    }
    const uint64_t compute_end_ns = trace::NowNs();
    const int64_t compute_us =
        static_cast<int64_t>((compute_end_ns - collect_ns) / 1000);
    const bool tracing = trace::Enabled();
    for (size_t i = 0; i < batch.size(); ++i) {
      const auto& p = batch[i];
      const core::BatchPrediction& r = results[slot[i]];
      // Queue wait runs from enqueue to the dispatcher waking; requests
      // that joined during the coalescing window spent their whole wait in
      // the window instead.
      const uint64_t queue_end_ns = std::max(p->enqueue_ns, wake_ns);
      if (tracing) {
        trace::SpanAnnotations ann;
        ann.trace_id = p->trace_id;
        ann.batch_id = batch_id;
        ann.batch_size = static_cast<int>(batch.size());
        ann.dedup_collapsed = collapsed[i];
        trace::EmitSpan("serve.queue_wait", p->enqueue_ns, queue_end_ns,
                        ann);
        trace::EmitSpan("serve.batch_window", queue_end_ns, collect_ns, ann);
        trace::EmitSpan("serve.compute", collect_ns, compute_end_ns, ann);
      }
      cf::MutexLock lock(p->mu);
      p->response.value = r.value;
      p->response.degraded = !r.has_evidence;
      p->response.source = r.has_evidence ? "model" : "empty_toc";
      p->response.batch_size = static_cast<int>(batch.size());
      p->response.batch_id = batch_id;
      p->response.dedup_collapsed = collapsed[i];
      p->response.queue_us =
          static_cast<int64_t>((queue_end_ns - p->enqueue_ns) / 1000);
      p->response.window_us = collect_ns > queue_end_ns
                                  ? static_cast<int64_t>(
                                        (collect_ns - queue_end_ns) / 1000)
                                  : 0;
      p->response.compute_us = compute_us;
      p->response.verify_us = run_stats[slot[i]].verify_us;
      if (runtime_ != nullptr && r.has_evidence) {
        p->response.precision = graph::PrecisionName(runtime_->precision());
      }
      p->done = true;
      p->cv.NotifyAll();
    }
  }
}

}  // namespace serve
}  // namespace chainsformer
