#include "serve/service.h"

#include <chrono>
#include <unordered_map>
#include <utility>

#include "baselines/simple.h"
#include "graph/runtime.h"
#include "util/logging.h"
#include "util/metrics.h"
#include "util/thread_pool.h"
#include "util/trace.h"

namespace chainsformer {
namespace serve {
namespace {

using Clock = std::chrono::steady_clock;

metrics::Counter* RequestsCounter() {
  static auto* c = metrics::MetricsRegistry::Global().GetCounter("serve.requests");
  return c;
}
metrics::Counter* DegradedCounter() {
  static auto* c = metrics::MetricsRegistry::Global().GetCounter("serve.degraded");
  return c;
}
metrics::Histogram* BatchSizeHist() {
  static auto* h =
      metrics::MetricsRegistry::Global().GetHistogram("serve.batch_size");
  return h;
}
metrics::Histogram* LatencyHist() {
  static auto* h =
      metrics::MetricsRegistry::Global().GetHistogram("serve.latency_us");
  return h;
}
metrics::Counter* DedupCounter() {
  static auto* c =
      metrics::MetricsRegistry::Global().GetCounter("serve.batch_dedup");
  return c;
}
metrics::Counter* ImmediateDispatchCounter() {
  static auto* c =
      metrics::MetricsRegistry::Global().GetCounter("serve.immediate_dispatch");
  return c;
}

}  // namespace

InferenceService::InferenceService(const core::ChainsFormerModel& model,
                                   const ServeOptions& options)
    : model_(model),
      options_(options),
      cache_(options.cache_capacity > 0 ? options.cache_capacity : 1,
             options.cache_shards) {
  // Precompute the per-attribute train-mean fallback once (Predict on the
  // baseline is not const, so it cannot be shared across client threads).
  baselines::GlobalMeanBaseline baseline(model.dataset());
  baseline.Train();
  const int64_t num_attributes = model.dataset().graph.num_attributes();
  fallback_values_.reserve(static_cast<size_t>(num_attributes));
  for (int64_t a = 0; a < num_attributes; ++a) {
    fallback_values_.push_back(
        baseline.Predict(kg::EntityId{0}, static_cast<kg::AttributeId>(a)));
  }
  if (options.compute_threads != 1) {
    // 0 (or negative) = one worker per hardware thread, mirroring the
    // eval_threads convention.
    compute_pool_ = std::make_unique<ThreadPool>(
        options.compute_threads > 1 ? static_cast<size_t>(options.compute_threads)
                                    : 0);
  }
  if (options.use_static_graph && graph::StaticGraphRuntime::Supports(model)) {
    runtime_ = std::make_unique<graph::StaticGraphRuntime>(model);
  }
  dispatcher_ = std::thread([this] { DispatchLoop(); });
}

InferenceService::~InferenceService() {
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    shutdown_ = true;
  }
  queue_cv_.notify_all();
  if (dispatcher_.joinable()) dispatcher_.join();
}

double InferenceService::Fallback(kg::AttributeId attribute) const {
  const auto a = static_cast<size_t>(attribute);
  return a < fallback_values_.size() ? fallback_values_[a] : 0.0;
}

ServeResponse InferenceService::Predict(const core::Query& query) {
  CF_TRACE_SCOPE("serve.predict");
  const Clock::time_point start = Clock::now();
  const bool has_deadline = options_.deadline_ms > 0;
  const Clock::time_point deadline =
      start + std::chrono::milliseconds(has_deadline ? options_.deadline_ms : 0);
  RequestsCounter()->Increment();
  // Visible to the dispatcher from here until the request joins the queue
  // (or bails out): while any request is arriving, the coalescing window is
  // worth opening.
  arriving_.fetch_add(1);

  auto finish = [&](ServeResponse r) {
    r.latency_us = std::chrono::duration_cast<std::chrono::microseconds>(
                       Clock::now() - start)
                       .count();
    LatencyHist()->Observe(static_cast<double>(r.latency_us));
    if (r.degraded) DegradedCounter()->Increment();
    return r;
  };

  // Retrieval runs on the client thread (it parallelizes across clients and
  // is the part the LRU cache can skip entirely).
  core::TreeOfChains chains;
  const bool cache_enabled = options_.cache_capacity > 0;
  if (!cache_enabled || !cache_.Get(query.entity, query.attribute, &chains)) {
    CF_TRACE_SCOPE("serve.retrieve_miss");
    chains = model_.RetrieveChains(query);
    if (cache_enabled) cache_.Put(query.entity, query.attribute, chains);
  }
  if (chains.empty()) {
    arriving_.fetch_sub(1);
    ServeResponse r;
    r.value = Fallback(query.attribute);
    r.degraded = true;
    r.source = "empty_toc";
    return finish(r);
  }

  auto pending = std::make_shared<Pending>();
  pending->query = query;
  pending->chains = std::move(chains);
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    arriving_.fetch_sub(1);
    if (shutdown_) {
      ServeResponse r;
      r.value = Fallback(query.attribute);
      r.degraded = true;
      r.source = "shutdown";
      return finish(r);
    }
    queue_.push_back(pending);
  }
  queue_cv_.notify_one();

  std::unique_lock<std::mutex> lock(pending->mu);
  if (has_deadline) {
    pending->cv.wait_until(lock, deadline, [&] { return pending->done; });
  } else {
    pending->cv.wait(lock, [&] { return pending->done; });
  }
  if (!pending->done) {
    // Deadline expired while queued or mid-batch. The dispatcher may still
    // complete the request later (it holds its own reference), but this
    // client answers now with the degraded fallback.
    ServeResponse r;
    r.value = Fallback(query.attribute);
    r.degraded = true;
    r.source = "deadline";
    return finish(r);
  }
  return finish(pending->response);
}

void InferenceService::DispatchLoop() {
  const auto window = std::chrono::microseconds(options_.batch_window_us);
  const size_t max_batch =
      options_.max_batch > 0 ? static_cast<size_t>(options_.max_batch) : 1;
  while (true) {
    std::vector<std::shared_ptr<Pending>> batch;
    bool shutting_down = false;
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      queue_cv_.wait(lock, [&] { return shutdown_ || !queue_.empty(); });
      if (!queue_.empty() && options_.batch_window_us > 0 &&
          queue_.size() < max_batch && !shutdown_) {
        if (arriving_.load() > 0) {
          // Coalescing window: give the arriving clients a beat to join
          // this micro-batch before dispatching. The window also closes as
          // soon as the last arriving request has joined — anything not in
          // flight yet is waiting on this very batch's answer and cannot
          // arrive, so sleeping longer would add latency, not batch size.
          queue_cv_.wait_for(lock, window, [&] {
            return shutdown_ || queue_.size() >= max_batch ||
                   arriving_.load() == 0;
          });
        } else {
          // Nothing is on the way: waiting out the window would add pure
          // latency without growing the batch (the uniform-workload
          // regression) — dispatch what is queued right now.
          ImmediateDispatchCounter()->Increment();
        }
      }
      while (!queue_.empty() && batch.size() < max_batch) {
        batch.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
      shutting_down = shutdown_;
      if (batch.empty() && shutting_down) return;
    }
    if (batch.empty()) continue;

    if (shutting_down) {
      // Drain without model work so the destructor never blocks on a
      // long forward pass; waiting clients get the degraded fallback.
      for (const auto& p : batch) {
        std::lock_guard<std::mutex> lock(p->mu);
        p->response.value = Fallback(p->query.attribute);
        p->response.degraded = true;
        p->response.source = "shutdown";
        p->done = true;
        p->cv.notify_all();
      }
      continue;
    }

    CF_TRACE_SCOPE("serve.batch");
    // Coalesce duplicate requests: predictions are deterministic per
    // (entity, attribute) — the bitwise batching invariance this service is
    // built on — so N identical in-flight queries need exactly one forward
    // pass. Under skewed (hot-key) traffic this is where batching beats
    // single-request dispatch, which by construction cannot coalesce.
    std::vector<core::Query> queries;
    std::vector<const core::TreeOfChains*> chain_sets;
    std::vector<size_t> slot(batch.size());
    std::unordered_map<uint64_t, size_t> unique_index;
    queries.reserve(batch.size());
    chain_sets.reserve(batch.size());
    unique_index.reserve(batch.size());
    for (size_t i = 0; i < batch.size(); ++i) {
      const auto& p = batch[i];
      const uint64_t key =
          (static_cast<uint64_t>(static_cast<uint32_t>(p->query.entity)) << 32) |
          static_cast<uint32_t>(p->query.attribute);
      const auto [it, inserted] = unique_index.try_emplace(key, queries.size());
      if (inserted) {
        queries.push_back(p->query);
        chain_sets.push_back(&p->chains);
      }
      slot[i] = it->second;
    }
    DedupCounter()->Increment(
        static_cast<int64_t>(batch.size() - queries.size()));
    BatchSizeHist()->Observe(static_cast<double>(batch.size()));
    std::vector<core::BatchPrediction> results;
    if (runtime_ != nullptr) {
      // Compiled-plan dispatch: per-query static executors, fanned across
      // the compute pool like the eager pool path. Bitwise-identical to
      // PredictOnChainSets (each bucket is verified on first use).
      results.resize(queries.size());
      auto run_one = [&](size_t qi) {
        results[qi] = runtime_->Predict(queries[qi], *chain_sets[qi]);
      };
      if (compute_pool_ != nullptr && compute_pool_->num_threads() > 1 &&
          queries.size() > 1) {
        compute_pool_->ParallelFor(queries.size(), run_one);
      } else {
        // One worker (or one query) gains nothing from the pool hop — run
        // inline on the dispatcher thread and skip the cross-thread wakeup.
        for (size_t qi = 0; qi < queries.size(); ++qi) run_one(qi);
      }
    } else {
      results =
          model_.PredictOnChainSets(queries, chain_sets, compute_pool_.get());
    }
    for (size_t i = 0; i < batch.size(); ++i) {
      const auto& p = batch[i];
      const core::BatchPrediction& r = results[slot[i]];
      std::lock_guard<std::mutex> lock(p->mu);
      p->response.value = r.value;
      p->response.degraded = !r.has_evidence;
      p->response.source = r.has_evidence ? "model" : "empty_toc";
      p->response.batch_size = static_cast<int>(batch.size());
      p->done = true;
      p->cv.notify_all();
    }
  }
}

}  // namespace serve
}  // namespace chainsformer
