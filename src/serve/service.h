#ifndef CHAINSFORMER_SERVE_SERVICE_H_
#define CHAINSFORMER_SERVE_SERVICE_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/chainsformer.h"
#include "graph/quant.h"
#include "serve/cache.h"
#include "util/sync.h"

namespace chainsformer {
namespace graph {
class StaticGraphRuntime;
}  // namespace graph
}  // namespace chainsformer

namespace chainsformer {
namespace serve {

/// Tuning knobs of InferenceService. Defaults favor latency; raise
/// batch_window_us under throughput-oriented load (bench/bench_serve sweeps
/// the trade-off).
struct ServeOptions {
  /// How long the dispatcher waits after the first queued request for more
  /// requests to coalesce into the same micro-batch. 0 = dispatch
  /// immediately (still batches whatever is already queued).
  int64_t batch_window_us = 200;
  /// Upper bound on requests per micro-batch.
  int max_batch = 32;
  /// Per-request deadline. A request that cannot be answered by the model
  /// within this budget degrades to the attribute-mean fallback instead of
  /// blocking the client. <= 0 disables deadlines.
  int64_t deadline_ms = 50;
  /// Tree-of-Chains retrieval cache entries across all shards (0 disables
  /// caching).
  size_t cache_capacity = 4096;
  size_t cache_shards = 16;
  /// Worker threads the dispatcher fans a micro-batch's per-query forwards
  /// across (PredictOnChainSets pool path). 1 = fully serial dispatch;
  /// 0 = one per hardware thread. Batching only beats single-request
  /// dispatch when this is > 1.
  int compute_threads = 0;
  /// Answer batches from compiled static plans (graph::StaticGraphRuntime,
  /// DESIGN §6f) instead of the eager tape. Bitwise-identical results (each
  /// geometry bucket is verified against an eager forward on first use and
  /// falls back to eager on any mismatch); per-request dispatch runs
  /// allocation-free once a bucket is warm. Ignored when the model's
  /// geometry is unsupported (non-Transformer encoder).
  bool use_static_graph = true;
  /// Numeric mode of the static-graph Linear steps (DESIGN §6g). kBf16 and
  /// kInt8 require use_static_graph; kInt8 additionally requires `quant`.
  graph::Precision precision = graph::Precision::kFp64;
  /// First-use parity tolerance forwarded to the runtime; negative selects
  /// the per-precision default.
  double verify_tolerance = -1.0;
  /// Accuracy gate for int8 serving: when the checkpoint's recorded
  /// calibration error (quant->mae_delta, normalized space) exceeds this
  /// budget — or no quantized weights were loaded at all — the service
  /// refuses int8, increments serve.quant_rejected, and serves fp64
  /// instead. Speed never silently buys wrong answers.
  double quant_error_budget = 0.05;
  /// Quantized weights from the checkpoint's "quant_int8" block (null when
  /// the checkpoint has none).
  std::shared_ptr<const graph::QuantStore> quant;
};

/// One answered query.
struct ServeResponse {
  double value = 0.0;
  /// True when the model did not produce this value: the query had no
  /// retrievable chains, its deadline expired, or the service is shutting
  /// down. The value then comes from the train-split attribute mean
  /// (GlobalMeanBaseline semantics) — always answer, never crash.
  bool degraded = false;
  /// "model", "empty_toc", "deadline", or "shutdown".
  std::string source;
  /// Wall time spent inside Predict() for this request.
  int64_t latency_us = 0;
  /// Size of the micro-batch this request rode in (0 when degraded before
  /// dispatch).
  int batch_size = 0;

  /// 64-bit id tying this response to its spans in the Chrome trace:
  /// the client-supplied id, or one generated from the deterministic RNG
  /// seam. Never 0.
  uint64_t trace_id = 0;
  /// Sequence number of the micro-batch that answered the request (-1 when
  /// degraded before dispatch).
  int64_t batch_id = -1;
  /// True when a duplicate (entity, attribute) request in the same batch
  /// did the forward pass for this one.
  bool dedup_collapsed = false;
  /// True when the Tree of Chains came out of the LRU cache.
  bool cache_hit = false;
  /// Numeric mode that computed this value: the runtime's serving
  /// precision, or "fp64" for eager/degraded answers.
  const char* precision = "fp64";

  /// Per-phase breakdown of latency_us. queue/window/compute/verify are 0
  /// for requests degraded before dispatch; verify_us > 0 only when this
  /// request paid a plan bucket's first-use compile+verify gate.
  int64_t cache_us = 0;    // ToC cache lookup + (on miss) retrieval
  int64_t queue_us = 0;    // enqueue -> dispatcher wake
  int64_t window_us = 0;   // coalescing-window share of the wait
  int64_t compute_us = 0;  // forward pass of the owning micro-batch
  int64_t verify_us = 0;   // static-plan trace+compile+verify gate
};

/// Batching inference front-end for a loaded ChainsFormerModel.
///
/// N client threads call Predict() concurrently. Each client thread
/// retrieves the query's Tree of Chains itself (through the sharded LRU
/// cache, so hot queries skip the random-walk cost), then parks the request
/// on a queue; a single dispatcher thread groups queued requests into
/// micro-batches and answers them with one PredictOnChainSets call. Two
/// effects make the batch cheaper than dispatching its requests one at a
/// time (DESIGN §6e): duplicate (entity, attribute) requests are coalesced
/// into a single forward pass (sound because predictions are
/// deterministic; counted by serve.batch_dedup), and the remaining unique
/// queries fan out across a compute pool (ServeOptions::compute_threads)
/// when hardware threads are available.
///
/// Results are bitwise-identical to calling ChainsFormerModel::Predict on
/// the same query (DESIGN §6c batching invariance), regardless of which
/// requests share a batch.
///
/// Precondition: `model` outlives the service and is trained; it must not
/// be mutated (trained further) while the service is running.
/// Thread-safety: Predict() may be called from any thread. The destructor
/// drains in-flight requests (they complete degraded, tagged "shutdown").
class InferenceService {
 public:
  InferenceService(const core::ChainsFormerModel& model,
                   const ServeOptions& options);
  ~InferenceService();

  InferenceService(const InferenceService&) = delete;
  InferenceService& operator=(const InferenceService&) = delete;

  /// Answers one query. Blocks the calling thread until the micro-batch
  /// containing the request completes or the deadline expires; always
  /// returns a usable value (degraded fallback on any failure path).
  /// `trace_id` ties the request's spans and response together; pass 0 to
  /// have the service generate one from its deterministic RNG seam.
  ServeResponse Predict(const core::Query& query, uint64_t trace_id = 0);

  /// Drops every cached Tree of Chains (e.g. after a graph update).
  void InvalidateCache() { cache_.Invalidate(); }

  const ShardedChainCache& cache() const { return cache_; }
  const ServeOptions& options() const { return options_; }
  /// Compiled-plan runtime, or null when serving eagerly (admin endpoint
  /// reads per-bucket plan stats through this).
  const graph::StaticGraphRuntime* static_runtime() const {
    return runtime_.get();
  }
  /// True when int8 was requested but the accuracy gate refused it (no
  /// quantized weights, or calibration error over quant_error_budget).
  bool quant_rejected() const { return quant_rejected_; }

 private:
  struct Pending {
    // Filled by the client thread before the request is published to the
    // queue; immutable afterwards (the queue handoff is the barrier).
    core::Query query;
    core::TreeOfChains chains;
    uint64_t trace_id = 0;
    uint64_t enqueue_ns = 0;  // trace::NowNs() at queue join
    cf::Mutex mu{"serve.pending"};
    cf::CondVar cv;
    ServeResponse response CF_GUARDED_BY(mu);
    bool done CF_GUARDED_BY(mu) = false;
  };

  void DispatchLoop();
  double Fallback(kg::AttributeId attribute) const;

  const core::ChainsFormerModel& model_;
  const ServeOptions options_;
  ShardedChainCache cache_;
  /// Train-mean fallback per attribute, precomputed so the degraded path
  /// never touches shared mutable state.
  std::vector<double> fallback_values_;

  /// Pool for intra-batch parallelism; null when compute_threads == 1.
  std::unique_ptr<ThreadPool> compute_pool_;
  /// Compiled-plan runtime; null when use_static_graph is off or the model
  /// is unsupported (the dispatcher then uses the eager tape).
  std::unique_ptr<graph::StaticGraphRuntime> runtime_;
  bool quant_rejected_ = false;

  /// Requests that have entered Predict() but not yet joined the queue
  /// (they are retrieving chains on their client thread). The dispatcher
  /// only opens the coalescing window when this is non-zero — with nothing
  /// on the way, waiting batch_window_us would buy no batching and cost
  /// pure latency (the uniform-workload regression; counted by
  /// serve.immediate_dispatch).
  std::atomic<int64_t> arriving_{0};

  /// Trace-id generation: a salt drawn from the deterministic RNG seam
  /// (model seed) mixed with a per-request sequence number, so ids are
  /// reproducible per process yet unique per request.
  uint64_t trace_salt_ = 0;
  std::atomic<uint64_t> trace_seq_{0};
  /// Micro-batch sequence number (response/span annotation).
  std::atomic<int64_t> batch_seq_{0};

  cf::Mutex queue_mu_{"serve.queue"};
  cf::CondVar queue_cv_;
  std::deque<std::shared_ptr<Pending>> queue_ CF_GUARDED_BY(queue_mu_);
  bool shutdown_ CF_GUARDED_BY(queue_mu_) = false;
  std::thread dispatcher_;
};

}  // namespace serve
}  // namespace chainsformer

#endif  // CHAINSFORMER_SERVE_SERVICE_H_
