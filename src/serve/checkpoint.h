#ifndef CHAINSFORMER_SERVE_CHECKPOINT_H_
#define CHAINSFORMER_SERVE_CHECKPOINT_H_

#include <memory>
#include <string>

#include "core/chainsformer.h"
#include "core/config.h"
#include "graph/quant.h"
#include "kg/dataset.h"

namespace chainsformer {
namespace serve {

/// Self-describing model checkpoint ("CFSM" container, DESIGN §6e).
///
/// Layout: magic "CFSM", uint32 format version, then three named blocks —
///   1. config:  tagged key/value list of every architecture-relevant
///      ChainsFormerConfig field (named keys, so version skew aborts with
///      the offending key, not a byte offset);
///   2. vocab:   relation + attribute name tables and the entity count,
///      validated against the loading dataset so a checkpoint can never be
///      silently applied to a graph it was not trained on;
///   3. stats:   per-attribute train-split normalization stats
///      (count/min/max/mean/stddev), restored verbatim so denormalized
///      predictions match the saving process bit-for-bit;
/// followed by one embedded "CFTN" tensor section holding all live
/// parameters (filter + encoder + reasoner, ChainsFormerModel order).
///
/// Format version 2 (written only when a quantization store is attached)
/// inserts a tagged-block section between the stats block and the tensor
/// section: uint32 block count, then per block a name string, a uint64
/// payload byte length, and the payload. Readers skip blocks whose name
/// they do not recognize, so the section is forward-extensible; a version-1
/// file is byte-identical to what this code always wrote, so checkpoints
/// without quantized weights remain readable by older binaries.

/// Writes `model` (config + vocab + stats + all trainable parameters) to
/// `path`. Precondition: the model is trained (weights are saved as-is
/// either way, but an untrained checkpoint predicts noise). Returns false
/// on I/O failure.
bool SaveModel(const core::ChainsFormerModel& model, const std::string& path);

/// As above, additionally embedding `quant` (per-output-channel int8
/// weights + calibration facts) as the optional "quant_int8" block. A null
/// `quant` writes a plain version-1 checkpoint, bit-identical to the
/// two-argument overload.
bool SaveModel(const core::ChainsFormerModel& model,
               const graph::QuantStore* quant, const std::string& path);

/// Reconstructs a trained model from a CFSM checkpoint.
///
/// Architecture/retrieval fields and the seed come from the checkpoint;
/// execution-only knobs (kernel_threads, eval_threads, batched_encoder,
/// check_mode, verbose, …) are taken from `base_config` so deployment can
/// tune them freely without breaking bitwise reproducibility.
///
/// Postcondition on success: the returned model is trained and its
/// Predict/RetrieveChains/PredictOnChainSets agree bitwise with the saving
/// process. Returns nullptr if the file is missing/unreadable or has the
/// wrong magic; aborts through CF_LOG(Fatal) naming the mismatch when the
/// file parses but disagrees with the dataset or binary (unknown config
/// key, vocab size/name mismatch, tensor shape mismatch, truncation).
/// When `quant_out` is non-null and the checkpoint carries a "quant_int8"
/// block, the block is validated (aborting via CF_LOG(Fatal) on corrupt
/// shapes or non-finite scales) and copied into *quant_out; a checkpoint
/// without the block leaves *quant_out empty, which callers should treat
/// as "serve full precision". Passing nullptr skips the block unparsed.
std::unique_ptr<core::ChainsFormerModel> LoadModel(
    const kg::Dataset& dataset, const core::ChainsFormerConfig& base_config,
    const std::string& path, graph::QuantStore* quant_out = nullptr);

/// True iff `path` starts with the CFSM magic. Lets callers route legacy
/// raw-tensor ("CFTN") checkpoints to ChainsFormerModel::LoadCheckpoint.
bool IsModelCheckpoint(const std::string& path);

}  // namespace serve
}  // namespace chainsformer

#endif  // CHAINSFORMER_SERVE_CHECKPOINT_H_
