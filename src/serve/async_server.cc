#include "serve/async_server.h"

#include <chrono>

#include <sys/epoll.h>

#include "util/logging.h"
#include "util/metric_names.h"
#include "util/metrics.h"

namespace chainsformer {
namespace serve {

AsyncNdjsonServer::AsyncNdjsonServer(const Options& options, Handler handler)
    : options_(options), handler_(std::move(handler)) {
  listener_ = net::ListenTcp(options_.port, options_.backlog);
  if (listener_ < 0 || !loop_.ok()) {
    CF_LOG(Error) << "async server: cannot listen on 127.0.0.1:"
                  << options_.port;
    net::CloseFd(listener_);
    listener_ = -1;
    return;
  }
  port_ = net::BoundPort(listener_);
  net::SetNonBlocking(listener_);
  // Registered before Run() starts, from the owning thread — the one other
  // moment the EpollLoop ownership model allows.
  loop_.Add(listener_, EPOLLIN, [this](uint32_t) { OnListenerReady(); });
  const int workers = options_.workers > 0 ? options_.workers : 1;
  workers_.reserve(static_cast<size_t>(workers));
  for (int i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { WorkerMain(); });
  }
  reactor_ = std::thread([this] { ReactorMain(); });
}

AsyncNdjsonServer::~AsyncNdjsonServer() { Shutdown(); }

void AsyncNdjsonServer::ReactorMain() { loop_.Run(); }

void AsyncNdjsonServer::OnListenerReady() {
  // Drain the accept queue: one epoll wakeup may carry several pending
  // connections, and (the fixed bug) nothing a slow connection does can
  // delay this path — reads happen on their own fd events.
  while (true) {
    const int fd = net::AcceptConn(listener_);
    if (fd < 0) return;  // EAGAIN: queue drained (or listener closed)
    net::SetNonBlocking(fd);
    conns_accepted_.fetch_add(1, std::memory_order_relaxed);
    static auto* accepted = metrics::MetricsRegistry::Global().GetCounter(
        metrics::names::kServeConnsAccepted);
    accepted->Increment();
    const uint64_t id = next_id_++;
    auto conn = std::make_unique<Conn>();
    conn->id = id;
    conn->fd = fd;
    Conn& c = *conn;
    conns_.emplace(id, std::move(conn));
    loop_.Add(fd, EPOLLIN, [this, id](uint32_t events) {
      OnConnReady(id, events);
    });
    ReadConn(c);  // bytes may already be waiting
  }
}

void AsyncNdjsonServer::OnConnReady(uint64_t id, uint32_t events) {
  const auto it = conns_.find(id);
  if (it == conns_.end()) return;
  Conn& c = *it->second;
  if ((events & (EPOLLHUP | EPOLLERR)) != 0 && (events & EPOLLIN) == 0) {
    CloseConn(id);
    return;
  }
  if ((events & EPOLLOUT) != 0) FlushConn(c);
  if (conns_.count(id) == 0) return;  // flush error closed it
  if ((events & (EPOLLIN | EPOLLHUP)) != 0) ReadConn(c);
}

void AsyncNdjsonServer::ReadConn(Conn& c) {
  char chunk[4096];
  while (true) {
    const ssize_t n = net::ReadSome(c.fd, chunk, sizeof(chunk));
    if (n < 0) {
      if (net::IsWouldBlock(errno)) break;
      CloseConn(c.id);
      return;
    }
    if (n == 0) {  // peer half-closed: answer what's queued, then close
      c.eof = true;
      break;
    }
    c.read_buf.append(chunk, static_cast<size_t>(n));
    size_t nl;
    while ((nl = c.read_buf.find('\n')) != std::string::npos) {
      std::string line = c.read_buf.substr(0, nl);
      c.read_buf.erase(0, nl + 1);
      if (!line.empty()) c.pending_lines.push_back(std::move(line));
    }
    if (c.read_buf.size() > options_.max_line_bytes) {
      CF_LOG(Warning) << "async server: dropping connection with "
                      << c.read_buf.size() << "-byte unterminated line";
      CloseConn(c.id);
      return;
    }
  }
  if (!c.busy) DispatchNext(c);
  if (c.eof && !c.busy && c.pending_lines.empty() && c.write_buf.empty()) {
    CloseConn(c.id);
  }
}

void AsyncNdjsonServer::DispatchNext(Conn& c) {
  if (c.pending_lines.empty()) return;
  std::string line = std::move(c.pending_lines.front());
  c.pending_lines.pop_front();
  c.busy = true;
  {
    cf::MutexLock lock(work_mu_);
    work_.emplace_back(c.id, std::move(line));
  }
  work_cv_.NotifyOne();
}

void AsyncNdjsonServer::WorkerMain() {
  while (true) {
    uint64_t id;
    std::string line;
    {
      cf::MutexLock lock(work_mu_);
      work_cv_.Wait(work_mu_, [this]() CF_REQUIRES(work_mu_) {
        return work_done_ || !work_.empty();
      });
      if (work_.empty()) return;  // done and drained
      id = work_.front().first;
      line = std::move(work_.front().second);
      work_.pop_front();
      ++in_flight_;
    }
    std::string response = handler_(line);
    {
      cf::MutexLock lock(work_mu_);
      --in_flight_;
    }
    work_cv_.NotifyAll();  // Shutdown() waits on in_flight_ == 0
    loop_.Post([this, id, r = std::move(response)]() mutable {
      OnResponse(id, std::move(r));
    });
  }
}

void AsyncNdjsonServer::OnResponse(uint64_t id, std::string response) {
  const auto it = conns_.find(id);
  if (it == conns_.end()) return;  // connection died while we computed
  Conn& c = *it->second;
  c.busy = false;
  c.write_buf += response;
  c.write_buf += '\n';
  FlushConn(c);
  if (conns_.count(id) == 0) return;  // write error closed it
  DispatchNext(c);
  if (c.eof && !c.busy && c.pending_lines.empty() && c.write_buf.empty()) {
    CloseConn(id);
  }
}

void AsyncNdjsonServer::FlushConn(Conn& c) {
  while (!c.write_buf.empty()) {
    const ssize_t n =
        net::WriteSome(c.fd, c.write_buf.data(), c.write_buf.size());
    if (n < 0) {
      if (net::IsWouldBlock(errno)) break;
      CloseConn(c.id);
      return;
    }
    c.write_buf.erase(0, static_cast<size_t>(n));
  }
  // Arm/disarm EPOLLOUT to match residue: a slow-reading client applies
  // backpressure here instead of blocking a thread.
  const bool want = !c.write_buf.empty();
  if (want != c.want_write) {
    c.want_write = want;
    loop_.Mod(c.fd, EPOLLIN | (want ? EPOLLOUT : 0u));
  }
}

void AsyncNdjsonServer::CloseConn(uint64_t id) {
  const auto it = conns_.find(id);
  if (it == conns_.end()) return;
  loop_.Del(it->second->fd);
  net::CloseFd(it->second->fd);
  conns_.erase(it);
}

void AsyncNdjsonServer::Shutdown() {
  if (port_ < 0) return;
  if (shut_down_.exchange(true, std::memory_order_acq_rel)) return;
  // Stop accepting, half-close every connection (no new lines), and let
  // already-parsed lines finish: in-flight requests complete, tail
  // responses flush, nothing is dropped mid-answer.
  loop_.Post([this] {
    loop_.Del(listener_);
    net::CloseFd(listener_);
    listener_ = -1;
    for (auto& [id, conn] : conns_) {
      conn->eof = true;
      conn->pending_lines.clear();
    }
  });
  {
    cf::MutexLock lock(work_mu_);
    // Bounded drain: every queued/in-flight handler call must finish (the
    // handler itself deadlines, so 30s only trips on a wedged handler).
    work_cv_.WaitFor(work_mu_, std::chrono::seconds(30),
                     [this]() CF_REQUIRES(work_mu_) {
                       return work_.empty() && in_flight_ == 0;
                     });
    work_done_ = true;
  }
  work_cv_.NotifyAll();
  for (auto& w : workers_) w.join();
  // Give the reactor one last round to flush tail responses, then stop.
  loop_.Post([this] {
    for (auto& [id, conn] : conns_) FlushConn(*conn);
  });
  loop_.Stop();
  if (reactor_.joinable()) reactor_.join();
  for (auto& [id, conn] : conns_) net::CloseFd(conn->fd);
  conns_.clear();
}

}  // namespace serve
}  // namespace chainsformer
