#ifndef CHAINSFORMER_SERVE_ADMIN_H_
#define CHAINSFORMER_SERVE_ADMIN_H_

#include <atomic>
#include <string>
#include <thread>

namespace chainsformer {
namespace serve {

class InferenceService;

/// Builds the live status document served at /statusz (and by the
/// `{"cmd": "statusz"}` NDJSON escape on the main port): cumulative
/// counters/gauges, sliding-window per-phase p50/p90/p99, SLO rates
/// (deadline-miss and degraded-by-cause over the window), ToC cache hit
/// rate, and per-bucket static-plan stats. Always a single line of JSON so
/// it can ride an NDJSON stream unframed. `service` may be null (plan and
/// option fields are then omitted); snapshotting never blocks the serve hot
/// path.
std::string StatusJson(const InferenceService* service);

/// The same data in Prometheus text exposition format (version 0.0.4):
/// `cf_`-prefixed counters/gauges, cumulative-`le` histogram buckets,
/// windowed percentiles as `cf_window_*` gauges, SLO rates as `cf_slo_*`
/// gauges, and per-bucket plan stats with {k, max_len} labels.
std::string PrometheusText(const InferenceService* service);

/// Minimal HTTP/1.0 admin endpoint (`chainsformer_serve --admin-port`).
///
/// Routes: GET /statusz (JSON), GET /metrics (Prometheus text), GET
/// /healthz ("ok"). One short-lived connection at a time on a dedicated
/// thread — scrape traffic, not serving traffic — so it never competes with
/// the dispatcher. Binds 127.0.0.1; pass port 0 to bind an ephemeral port
/// (read it back with port(), used by tests).
class AdminServer {
 public:
  AdminServer(int port, const InferenceService* service);
  ~AdminServer();

  AdminServer(const AdminServer&) = delete;
  AdminServer& operator=(const AdminServer&) = delete;

  /// Bound port, or -1 when listening failed (the server then serves
  /// nothing but construction/destruction stay safe).
  int port() const { return port_; }

 private:
  void ServeLoop();

  const InferenceService* service_;
  int port_ = -1;
  std::atomic<int> listen_fd_{-1};
  std::thread thread_;
};

}  // namespace serve
}  // namespace chainsformer

#endif  // CHAINSFORMER_SERVE_ADMIN_H_
