#include "serve/cache.h"

#include <algorithm>
#include <utility>

#include "util/logging.h"
#include "util/metric_names.h"
#include "util/metrics.h"

namespace chainsformer {
namespace serve {
namespace {

uint64_t CacheKey(kg::EntityId entity, kg::AttributeId attribute) {
  return (static_cast<uint64_t>(static_cast<uint32_t>(entity)) << 32) |
         static_cast<uint32_t>(attribute);
}

/// splitmix64: decorrelates the (entity << 32 | attribute) key so shard
/// assignment does not depend on attribute id bits alone.
uint64_t Mix(uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

}  // namespace

ShardedChainCache::ShardedChainCache(size_t capacity, size_t shards)
    : per_shard_capacity_(std::max<size_t>(1, (capacity + shards - 1) /
                                                  std::max<size_t>(1, shards))),
      shards_(std::max<size_t>(1, shards)) {
  CF_CHECK(shards >= 1) << "ShardedChainCache: shards must be >= 1";
}

ShardedChainCache::Shard& ShardedChainCache::ShardFor(uint64_t key) {
  return shards_[Mix(key) % shards_.size()];
}

bool ShardedChainCache::Get(kg::EntityId entity, kg::AttributeId attribute,
                            core::TreeOfChains* out) {
  static auto* hits =
      metrics::MetricsRegistry::Global().GetCounter(metrics::names::kServeCacheHits);
  static auto* misses =
      metrics::MetricsRegistry::Global().GetCounter(metrics::names::kServeCacheMisses);
  const uint64_t key = CacheKey(entity, attribute);
  const uint64_t gen = generation_.load(std::memory_order_acquire);
  Shard& shard = ShardFor(key);
  {
    cf::MutexLock lock(shard.mu);
    auto it = shard.index.find(key);
    if (it != shard.index.end()) {
      if (it->second->generation == gen) {
        // Move to front (most-recently-used) and copy out.
        shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
        *out = shard.lru.front().chains;
        hits->Increment();
        return true;
      }
      // Stale generation: lazily evict.
      shard.lru.erase(it->second);
      shard.index.erase(it);
    }
  }
  misses->Increment();
  return false;
}

void ShardedChainCache::Put(kg::EntityId entity, kg::AttributeId attribute,
                            core::TreeOfChains chains) {
  const uint64_t key = CacheKey(entity, attribute);
  const uint64_t gen = generation_.load(std::memory_order_acquire);
  Shard& shard = ShardFor(key);
  cf::MutexLock lock(shard.mu);
  auto it = shard.index.find(key);
  if (it != shard.index.end()) {
    it->second->chains = std::move(chains);
    it->second->generation = gen;
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return;
  }
  while (shard.lru.size() >= per_shard_capacity_) {
    shard.index.erase(shard.lru.back().key);
    shard.lru.pop_back();
  }
  shard.lru.push_front(Entry{key, gen, std::move(chains)});
  shard.index[key] = shard.lru.begin();
}

void ShardedChainCache::Invalidate() {
  generation_.fetch_add(1, std::memory_order_acq_rel);
}

size_t ShardedChainCache::size() const {
  size_t total = 0;
  for (const Shard& shard : shards_) {
    cf::MutexLock lock(shard.mu);
    total += shard.lru.size();
  }
  return total;
}

}  // namespace serve
}  // namespace chainsformer
