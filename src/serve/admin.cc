#include "serve/admin.h"

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <sstream>
#include <string>
#include <vector>

#include "graph/runtime.h"
#include "serve/service.h"
#include "util/logging.h"
#include "util/metric_names.h"
#include "util/metrics.h"
#include "util/net.h"
#include "util/telemetry.h"

namespace chainsformer {
namespace serve {
namespace {

/// Formats a double compactly ("0" not "0.000000"), locale-independent.
std::string Num(double v) {
  if (!std::isfinite(v)) return "0";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

/// Prometheus metric name: cf_ prefix, dots to underscores.
std::string PromName(const std::string& dotted) {
  std::string out = "cf_";
  out.reserve(dotted.size() + 3);
  for (char c : dotted) out.push_back(c == '.' ? '_' : c);
  return out;
}

double Rate(int64_t part, int64_t whole) {
  return whole > 0 ? static_cast<double>(part) / static_cast<double>(whole)
                   : 0.0;
}

/// Window-scoped SLO facts derived from the telemetry counters.
struct SloView {
  int64_t requests = 0;
  double deadline_miss_rate = 0.0;
  double degraded_rate = 0.0;
  double degraded_deadline_rate = 0.0;
  double degraded_empty_toc_rate = 0.0;
  double degraded_shutdown_rate = 0.0;
};

SloView ComputeSlo(const telemetry::TelemetrySnapshot& window) {
  SloView slo;
  slo.requests = window.CounterSum(metrics::names::kSloRequests);
  slo.deadline_miss_rate =
      Rate(window.CounterSum(metrics::names::kSloDeadlineMiss), slo.requests);
  slo.degraded_rate =
      Rate(window.CounterSum(metrics::names::kSloDegraded), slo.requests);
  slo.degraded_deadline_rate = Rate(
      window.CounterSum(metrics::names::kSloDegradedDeadline), slo.requests);
  slo.degraded_empty_toc_rate = Rate(
      window.CounterSum(metrics::names::kSloDegradedEmptyToc), slo.requests);
  slo.degraded_shutdown_rate = Rate(
      window.CounterSum(metrics::names::kSloDegradedShutdown), slo.requests);
  return slo;
}

}  // namespace

std::string StatusJson(const InferenceService* service) {
  const metrics::MetricsSnapshot cumulative =
      metrics::MetricsRegistry::Global().Snapshot();
  const telemetry::TelemetrySnapshot window =
      telemetry::TelemetryRegistry::Global().Snapshot();
  const SloView slo = ComputeSlo(window);

  std::ostringstream os;
  os << "{\"counters\": {";
  bool first = true;
  for (const auto& [name, v] : cumulative.counters) {
    os << (first ? "" : ", ") << "\"" << name << "\": " << v;
    first = false;
  }
  os << "}, \"gauges\": {";
  first = true;
  for (const auto& [name, v] : cumulative.gauges) {
    os << (first ? "" : ", ") << "\"" << name << "\": " << Num(v);
    first = false;
  }

  os << "}, \"window\": {\"seconds\": " << Num(window.window_seconds)
     << ", \"percentiles\": {";
  first = true;
  for (const auto& [name, p] : window.histograms) {
    os << (first ? "" : ", ") << "\"" << name << "\": {\"count\": " << p.count
       << ", \"p50\": " << Num(p.p50) << ", \"p90\": " << Num(p.p90)
       << ", \"p99\": " << Num(p.p99) << "}";
    first = false;
  }
  os << "}, \"counters\": {";
  first = true;
  for (const auto& [name, v] : window.counters) {
    os << (first ? "" : ", ") << "\"" << name << "\": " << v;
    first = false;
  }
  os << "}}";

  const int64_t verify_failures =
      cumulative.CounterValue(metrics::names::kPlanVerifyFailures);
  os << ", \"slo\": {\"window_requests\": " << slo.requests
     << ", \"deadline_miss_rate\": " << Num(slo.deadline_miss_rate)
     << ", \"degraded_rate\": " << Num(slo.degraded_rate)
     << ", \"degraded_by_cause\": {\"deadline\": "
     << Num(slo.degraded_deadline_rate)
     << ", \"empty_toc\": " << Num(slo.degraded_empty_toc_rate)
     << ", \"shutdown\": " << Num(slo.degraded_shutdown_rate)
     << "}, \"alerts\": {\"plan_verify_failures\": " << verify_failures
     << ", \"firing\": " << (verify_failures > 0 ? "true" : "false") << "}}";

  const int64_t cache_hits =
      cumulative.CounterValue(metrics::names::kServeCacheHits);
  const int64_t cache_misses =
      cumulative.CounterValue(metrics::names::kServeCacheMisses);
  os << ", \"cache\": {\"hits\": " << cache_hits
     << ", \"misses\": " << cache_misses
     << ", \"hit_rate\": " << Num(Rate(cache_hits, cache_hits + cache_misses))
     << "}";

  if (service != nullptr && service->static_runtime() != nullptr) {
    const graph::StaticGraphRuntime* rt = service->static_runtime();
    os << ", \"precision\": {\"mode\": \""
       << graph::PrecisionName(rt->precision())
       << "\", \"requested\": \""
       << graph::PrecisionName(service->options().precision)
       << "\", \"verify_tolerance\": " << Num(rt->verify_tolerance())
       << ", \"quant_error_budget\": "
       << Num(service->options().quant_error_budget)
       << ", \"quant_rejected\": "
       << (service->quant_rejected() ? "true" : "false") << "}";
    os << ", \"plan_buckets\": [";
    first = true;
    for (const auto& b : rt->Stats()) {
      os << (first ? "" : ", ") << "{\"k\": " << b.k
         << ", \"max_len\": " << b.max_len
         << ", \"ready\": " << (b.ready ? "true" : "false")
         << ", \"eager_fallback\": " << (b.eager_fallback ? "true" : "false")
         << ", \"precision\": \"" << b.precision << "\""
         << ", \"verify_tolerance\": " << Num(b.verify_tolerance)
         << ", \"idle_executors\": " << b.idle_executors
         << ", \"arena_bytes\": " << b.arena_bytes << "}";
      first = false;
    }
    os << "]";
  }
  os << "}";
  return os.str();
}

std::string PrometheusText(const InferenceService* service) {
  const metrics::MetricsSnapshot cumulative =
      metrics::MetricsRegistry::Global().Snapshot();
  const telemetry::TelemetrySnapshot window =
      telemetry::TelemetryRegistry::Global().Snapshot();
  const SloView slo = ComputeSlo(window);

  std::ostringstream os;
  for (const auto& [name, v] : cumulative.counters) {
    const std::string p = PromName(name);
    os << "# TYPE " << p << " counter\n" << p << " " << v << "\n";
  }
  for (const auto& [name, v] : cumulative.gauges) {
    const std::string p = PromName(name);
    os << "# TYPE " << p << " gauge\n" << p << " " << Num(v) << "\n";
  }
  for (const auto& h : cumulative.histograms) {
    const std::string p = PromName(h.name);
    os << "# TYPE " << p << " histogram\n";
    int64_t cum = 0;
    for (const auto& b : h.buckets) {
      cum += b.count;
      os << p << "_bucket{le=\"";
      if (std::isfinite(b.upper_bound)) {
        os << Num(b.upper_bound);
      } else {
        os << "+Inf";
      }
      os << "\"} " << cum << "\n";
    }
    if (h.buckets.empty() || std::isfinite(h.buckets.back().upper_bound)) {
      os << p << "_bucket{le=\"+Inf\"} " << h.count << "\n";
    }
    os << p << "_sum " << Num(h.sum) << "\n";
    os << p << "_count " << h.count << "\n";
  }

  // Live sliding-window percentiles: gauges, since a window re-computes
  // rather than accumulates.
  for (const auto& [name, p] : window.histograms) {
    const std::string base = "cf_window_" + PromName(name).substr(3);
    os << "# TYPE " << base << "_p50 gauge\n"
       << base << "_p50 " << Num(p.p50) << "\n";
    os << "# TYPE " << base << "_p90 gauge\n"
       << base << "_p90 " << Num(p.p90) << "\n";
    os << "# TYPE " << base << "_p99 gauge\n"
       << base << "_p99 " << Num(p.p99) << "\n";
    os << "# TYPE " << base << "_window_count gauge\n"
       << base << "_window_count " << p.count << "\n";
  }
  os << "# TYPE cf_slo_window_requests gauge\ncf_slo_window_requests "
     << slo.requests << "\n";
  os << "# TYPE cf_slo_deadline_miss_rate gauge\ncf_slo_deadline_miss_rate "
     << Num(slo.deadline_miss_rate) << "\n";
  os << "# TYPE cf_slo_degraded_rate gauge\ncf_slo_degraded_rate "
     << Num(slo.degraded_rate) << "\n";
  os << "# TYPE cf_slo_degraded_cause_rate gauge\n";
  os << "cf_slo_degraded_cause_rate{cause=\"deadline\"} "
     << Num(slo.degraded_deadline_rate) << "\n";
  os << "cf_slo_degraded_cause_rate{cause=\"empty_toc\"} "
     << Num(slo.degraded_empty_toc_rate) << "\n";
  os << "cf_slo_degraded_cause_rate{cause=\"shutdown\"} "
     << Num(slo.degraded_shutdown_rate) << "\n";

  if (service != nullptr && service->static_runtime() != nullptr) {
    const graph::StaticGraphRuntime* rt = service->static_runtime();
    // One-hot serving-precision marker: dashboards join on the `precision`
    // label to split QPS/latency series by numeric mode.
    os << "# TYPE cf_plan_precision gauge\n";
    os << "cf_plan_precision{precision=\""
       << graph::PrecisionName(rt->precision()) << "\"} 1\n";
    const auto buckets = rt->Stats();
    os << "# TYPE cf_plan_bucket_ready gauge\n";
    os << "# TYPE cf_plan_bucket_eager_fallback gauge\n";
    os << "# TYPE cf_plan_bucket_idle_executors gauge\n";
    os << "# TYPE cf_plan_bucket_arena_bytes gauge\n";
    os << "# TYPE cf_plan_bucket_precision gauge\n";
    for (const auto& b : buckets) {
      const std::string labels =
          "{k=\"" + std::to_string(b.k) + "\",max_len=\"" +
          std::to_string(b.max_len) + "\"} ";
      os << "cf_plan_bucket_ready" << labels << (b.ready ? 1 : 0) << "\n";
      os << "cf_plan_bucket_eager_fallback" << labels
         << (b.eager_fallback ? 1 : 0) << "\n";
      os << "cf_plan_bucket_idle_executors" << labels << b.idle_executors
         << "\n";
      os << "cf_plan_bucket_arena_bytes" << labels << b.arena_bytes << "\n";
      os << "cf_plan_bucket_precision{k=\"" << b.k << "\",max_len=\""
         << b.max_len << "\",precision=\"" << b.precision << "\"} 1\n";
    }
  }
  return os.str();
}

AdminServer::AdminServer(int port, const InferenceService* service)
    : service_(service) {
  const int listener = net::ListenTcp(port, 16);
  if (listener < 0) {
    CF_LOG(Error) << "admin: cannot listen on 127.0.0.1:" << port << ": "
                  << std::strerror(errno);
    return;
  }
  const int bound = net::BoundPort(listener);
  port_ = bound >= 0 ? bound : port;
  listen_fd_.store(listener, std::memory_order_seq_cst);
  thread_ = std::thread([this] { ServeLoop(); });
}

AdminServer::~AdminServer() {
  // Closing the listener unblocks accept() in ServeLoop; shutdown() first
  // so an accept already in progress returns instead of hanging.
  const int fd = listen_fd_.exchange(-1, std::memory_order_seq_cst);
  if (fd >= 0) {
    net::ShutdownFd(fd);
    net::CloseFd(fd);
  }
  if (thread_.joinable()) thread_.join();
}

void AdminServer::ServeLoop() {
  while (true) {
    const int listener = listen_fd_.load(std::memory_order_seq_cst);
    if (listener < 0) return;
    const int fd = net::AcceptConn(listener);
    if (fd < 0) return;  // listener closed by destructor (or fatal error)

    // Read just the request line; scrape clients send tiny requests.
    char req[1024];
    const ssize_t n = net::ReadSome(fd, req, sizeof(req) - 1);
    std::string target = "/";
    if (n > 0) {
      req[n] = '\0';
      // "GET /path HTTP/1.x"
      const char* sp1 = std::strchr(req, ' ');
      if (sp1 != nullptr) {
        const char* sp2 = std::strchr(sp1 + 1, ' ');
        if (sp2 != nullptr) target.assign(sp1 + 1, sp2);
      }
    }

    std::string body, content_type = "text/plain; charset=utf-8";
    int status = 200;
    const char* status_text = "OK";
    if (target == "/statusz") {
      body = StatusJson(service_) + "\n";
      content_type = "application/json";
    } else if (target == "/metrics") {
      body = PrometheusText(service_);
      content_type = "text/plain; version=0.0.4; charset=utf-8";
    } else if (target == "/healthz") {
      body = "ok\n";
    } else {
      status = 404;
      status_text = "Not Found";
      body = "not found; try /statusz /metrics /healthz\n";
    }

    std::ostringstream os;
    os << "HTTP/1.0 " << status << " " << status_text << "\r\n"
       << "Content-Type: " << content_type << "\r\n"
       << "Content-Length: " << body.size() << "\r\n"
       << "Connection: close\r\n\r\n"
       << body;
    const std::string response = os.str();
    net::WriteAll(fd, response.data(), response.size());
    net::CloseFd(fd);
  }
}

}  // namespace serve
}  // namespace chainsformer
