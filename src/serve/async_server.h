#ifndef CHAINSFORMER_SERVE_ASYNC_SERVER_H_
#define CHAINSFORMER_SERVE_ASYNC_SERVER_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "util/net.h"
#include "util/sync.h"

namespace chainsformer {
namespace serve {

/// Epoll-based NDJSON front-end (DESIGN §6i).
///
/// One reactor thread owns the nonblocking listener and every connection's
/// framing state machine (byte buffer → lines in, response bytes out with
/// EPOLLOUT backpressure); a pool of worker threads runs the blocking line
/// handler (which may park inside InferenceService::Predict for a full
/// coalescing window); completed responses are posted back to the reactor,
/// which writes them without ever blocking. This replaces the
/// thread-per-connection blocking loop the serve tool started with, whose
/// accept() sat behind in-flight reads — a slow client dribbling a long
/// request body could delay new connections (the PR 10 blocking-listener
/// bug; router_test pins the fix with a slow-writer + fast-client
/// interleaving regression).
///
/// Ordering: responses on one connection come back in request order (the
/// reactor dispatches a connection's next line only after the previous
/// response is queued), matching the old sequential semantics for
/// pipelining clients; distinct connections proceed fully concurrently.
///
/// Thread-safety: construct/Shutdown/destroy from one owner thread. The
/// handler runs on worker threads and must be thread-safe (HandleLine is:
/// it only touches the service and atomics).
class AsyncNdjsonServer {
 public:
  struct Options {
    int port = 0;        ///< 0 binds an ephemeral port (read back via port()).
    int workers = 4;     ///< handler threads.
    int backlog = 128;
    /// A connection whose un-terminated line exceeds this is dropped (bound
    /// on per-connection buffer growth; no legitimate request comes close).
    size_t max_line_bytes = 1 << 20;
  };
  using Handler = std::function<std::string(const std::string& line)>;

  AsyncNdjsonServer(const Options& options, Handler handler);
  ~AsyncNdjsonServer();

  AsyncNdjsonServer(const AsyncNdjsonServer&) = delete;
  AsyncNdjsonServer& operator=(const AsyncNdjsonServer&) = delete;

  /// Bound port, or -1 when listening failed (the server is then inert).
  int port() const { return port_; }

  /// Graceful stop: closes the listener, half-closes every connection's
  /// read side, waits (bounded) for in-flight handlers to finish and their
  /// responses to flush, then joins reactor and workers. Idempotent; the
  /// destructor calls it.
  void Shutdown();

  /// Connections accepted since start (tests; mirrors serve.conns_accepted).
  int64_t conns_accepted() const {
    return conns_accepted_.load(std::memory_order_relaxed);
  }

 private:
  /// Per-connection framing state machine; lives on the reactor thread
  /// (only the reactor touches it — no lock by the EpollLoop ownership
  /// model). `id` guards against fd reuse: a worker's response is addressed
  /// to the id, and a recycled fd under a new connection has a new id.
  struct Conn {
    uint64_t id = 0;
    int fd = -1;
    std::string read_buf;
    std::string write_buf;       // unflushed response bytes
    std::deque<std::string> pending_lines;
    bool busy = false;           // one line in flight at a worker
    bool eof = false;            // peer half-closed; finish then close
    bool want_write = false;     // EPOLLOUT armed
  };

  void ReactorMain();
  void OnListenerReady();
  void OnConnReady(uint64_t id, uint32_t events);
  void ReadConn(Conn& c);
  void DispatchNext(Conn& c);
  void OnResponse(uint64_t id, std::string response);
  void FlushConn(Conn& c);
  void CloseConn(uint64_t id);
  void WorkerMain();

  const Options options_;
  const Handler handler_;
  int port_ = -1;
  int listener_ = -1;
  net::EpollLoop loop_;
  // Reactor-thread-only (EpollLoop ownership model).
  std::unordered_map<uint64_t, std::unique_ptr<Conn>> conns_;
  uint64_t next_id_ = 1;

  std::atomic<int64_t> conns_accepted_{0};
  std::atomic<bool> shut_down_{false};

  cf::Mutex work_mu_{"serve.async_work"};
  cf::CondVar work_cv_;
  std::deque<std::pair<uint64_t, std::string>> work_ CF_GUARDED_BY(work_mu_);
  bool work_done_ CF_GUARDED_BY(work_mu_) = false;
  int in_flight_ CF_GUARDED_BY(work_mu_) = 0;

  std::thread reactor_;
  std::vector<std::thread> workers_;
};

}  // namespace serve
}  // namespace chainsformer

#endif  // CHAINSFORMER_SERVE_ASYNC_SERVER_H_
