#ifndef CHAINSFORMER_SERVE_CACHE_H_
#define CHAINSFORMER_SERVE_CACHE_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <unordered_map>
#include <vector>

#include "core/ra_chain.h"
#include "kg/knowledge_graph.h"
#include "util/sync.h"

namespace chainsformer {
namespace serve {

/// Sharded LRU cache of retrieved (and filtered) Trees of Chains, keyed by
/// (entity, attribute). Retrieval is deterministic per query
/// (ChainsFormerModel::RetrieveChains), so a hit returns exactly the chain
/// set a fresh retrieval would produce — caching trades memory for the
/// dominant random-walk cost without affecting results.
///
/// Thread-safety: fully thread-safe. Keys are hashed onto independent
/// shards, each protected by its own mutex, so concurrent client threads
/// rarely contend. Get() copies the value out under the shard lock
/// (TreeOfChains is small: top_k chains of <= max_hops hops).
///
/// Invalidation: Invalidate() bumps a global generation counter and lazily
/// discards entries written under an older generation, so a graph update
/// can drop the whole cache in O(1) without stalling readers.
///
/// Metrics: serve.cache_hits / serve.cache_misses counters on every Get().
class ShardedChainCache {
 public:
  /// `capacity`: max entries across all shards (rounded up to a multiple of
  /// `shards`). `shards` must be >= 1; power of two recommended.
  explicit ShardedChainCache(size_t capacity, size_t shards = 16);

  ShardedChainCache(const ShardedChainCache&) = delete;
  ShardedChainCache& operator=(const ShardedChainCache&) = delete;

  /// Looks up the ToC for (entity, attribute). On hit copies it into `out`,
  /// marks the entry most-recently-used and returns true; on miss returns
  /// false and leaves `out` untouched.
  bool Get(kg::EntityId entity, kg::AttributeId attribute,
           core::TreeOfChains* out);

  /// Inserts (or refreshes) the ToC for (entity, attribute), evicting the
  /// shard's least-recently-used entry when the shard is full.
  void Put(kg::EntityId entity, kg::AttributeId attribute,
           core::TreeOfChains chains);

  /// Logically drops every cached entry (generation bump; O(1), lock-free).
  void Invalidate();

  /// Generation counter; starts at 0 and increments per Invalidate().
  uint64_t generation() const { return generation_.load(std::memory_order_relaxed); }

  /// Entries currently resident (may include stale-generation entries not
  /// yet lazily evicted). Intended for tests and stats output.
  size_t size() const;

 private:
  struct Entry {
    uint64_t key;
    uint64_t generation;
    core::TreeOfChains chains;
  };
  struct Shard {
    // One lock-order site for all shards: at most one shard lock is ever
    // held at a time (size() visits them one by one).
    mutable cf::Mutex mu{"serve.cache_shard"};
    // LRU order: front = most recent. The map points into the list.
    std::list<Entry> lru CF_GUARDED_BY(mu);
    std::unordered_map<uint64_t, std::list<Entry>::iterator> index
        CF_GUARDED_BY(mu);
  };

  Shard& ShardFor(uint64_t key);

  const size_t per_shard_capacity_;
  std::atomic<uint64_t> generation_{0};
  std::vector<Shard> shards_;
};

}  // namespace serve
}  // namespace chainsformer

#endif  // CHAINSFORMER_SERVE_CACHE_H_
