#include "hyperbolic/poincare_ops.h"

#include <cmath>

#include "tensor/checks.h"
#include "tensor/ops.h"
#include "util/logging.h"

namespace chainsformer {
namespace hyperbolic {

using tensor::Tensor;
namespace ops = chainsformer::tensor;

// Every entry point asserts its manifold-space input is finite under
// --check-mode=full. The clamp sites below (Atanh/Clamp epsilons) keep the
// *outputs* on the ball, but they silently absorb a poisoned input — Atanh
// of NaN clamps to NaN — so without these asserts a NaN born upstream would
// first surface many ops later with the wrong op blamed.

Tensor HExpMap0(const Tensor& v, float c) {
  CF_CHECK_GT(c, 0.0f);
  tensor::DebugAssertFinite("HExpMap0 input", v);
  const float sc = std::sqrt(c);
  Tensor norm = ops::Norm(v);                       // scalar
  Tensor scaled = ops::MulScalar(norm, sc);
  Tensor coef = ops::Div(ops::Tanh(scaled), ops::Clamp(scaled, 1e-7f, 1e30f));
  return HProject(ops::Mul(v, coef), c);
}

Tensor HLogMap0(const Tensor& x, float c) {
  CF_CHECK_GT(c, 0.0f);
  tensor::DebugAssertFinite("HLogMap0 input", x);
  const float sc = std::sqrt(c);
  Tensor xp = HProject(x, c);
  Tensor norm = ops::Norm(xp);
  Tensor scaled = ops::MulScalar(norm, sc);
  Tensor coef = ops::Div(ops::Atanh(scaled), ops::Clamp(scaled, 1e-7f, 1e30f));
  return ops::Mul(xp, coef);
}

Tensor HMobiusAdd(const Tensor& x, const Tensor& y, float c) {
  CF_CHECK_EQ(x.numel(), y.numel());
  tensor::DebugAssertFinite("HMobiusAdd input x", x);
  tensor::DebugAssertFinite("HMobiusAdd input y", y);
  Tensor xy = ops::Dot(x, y);
  Tensor x2 = ops::Sum(ops::Square(x));
  Tensor y2 = ops::Sum(ops::Square(y));
  // denom = 1 + 2c<x,y> + c^2 ||x||^2 ||y||^2
  Tensor denom = ops::AddScalar(
      ops::Add(ops::MulScalar(xy, 2.0f * c),
               ops::MulScalar(ops::Mul(x2, y2), c * c)),
      1.0f);
  denom = ops::Clamp(denom, 1e-7f, 1e30f);
  // cx = (1 + 2c<x,y> + c||y||^2) / denom ;  cy = (1 - c||x||^2) / denom
  Tensor cx = ops::Div(ops::AddScalar(ops::Add(ops::MulScalar(xy, 2.0f * c),
                                               ops::MulScalar(y2, c)),
                                      1.0f),
                       denom);
  Tensor cy = ops::Div(ops::AddScalar(ops::MulScalar(x2, -c), 1.0f), denom);
  return HProject(ops::Add(ops::Mul(x, cx), ops::Mul(y, cy)), c);
}

Tensor HDistance(const Tensor& x, const Tensor& y, float c) {
  const float sc = std::sqrt(c);
  tensor::DebugAssertFinite("HDistance input x", x);
  tensor::DebugAssertFinite("HDistance input y", y);
  Tensor sum = HMobiusAdd(ops::Neg(x), y, c);
  Tensor arg = ops::MulScalar(ops::Norm(sum), sc);
  return ops::MulScalar(ops::Atanh(arg), 2.0f / sc);
}

Tensor HProject(const Tensor& x, float c, float eps) {
  const float max_norm = (1.0f - eps) / std::sqrt(c);
  tensor::DebugAssertFinite("HProject input", x);
  Tensor norm = ops::Clamp(ops::Norm(x), 1e-12f, 1e30f);
  // scale = min(1, max_norm / ||x||) implemented as clamp on the ratio.
  Tensor ratio = ops::Div(ops::Clamp(norm, 0.0f, max_norm), norm);
  return ops::Mul(x, ratio);
}

}  // namespace hyperbolic
}  // namespace chainsformer
