#include "hyperbolic/poincare.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace chainsformer {
namespace hyperbolic {

double SqNorm(const Vec& x) {
  double s = 0.0;
  for (double v : x) s += v * v;
  return s;
}

double EuclideanNorm(const Vec& x) { return std::sqrt(SqNorm(x)); }

double DotProduct(const Vec& x, const Vec& y) {
  CF_CHECK_EQ(x.size(), y.size());
  double s = 0.0;
  for (size_t i = 0; i < x.size(); ++i) s += x[i] * y[i];
  return s;
}

Vec ProjectToBall(const Vec& x, double c, double eps) {
  CF_CHECK_GT(c, 0.0);
  const double max_norm = (1.0 - eps) / std::sqrt(c);
  const double norm = EuclideanNorm(x);
  if (norm <= max_norm) return x;
  Vec out(x.size());
  const double scale = max_norm / norm;
  for (size_t i = 0; i < x.size(); ++i) out[i] = x[i] * scale;
  return out;
}

Vec MobiusAdd(const Vec& x, const Vec& y, double c) {
  CF_CHECK_EQ(x.size(), y.size());
  const double xy = DotProduct(x, y);
  const double x2 = SqNorm(x);
  const double y2 = SqNorm(y);
  const double denom = 1.0 + 2.0 * c * xy + c * c * x2 * y2;
  const double cx = (1.0 + 2.0 * c * xy + c * y2) / denom;
  const double cy = (1.0 - c * x2) / denom;
  Vec out(x.size());
  for (size_t i = 0; i < x.size(); ++i) out[i] = cx * x[i] + cy * y[i];
  return ProjectToBall(out, c);
}

double Distance(const Vec& x, const Vec& y, double c) {
  Vec nx(x.size());
  for (size_t i = 0; i < x.size(); ++i) nx[i] = -x[i];
  const Vec sum = MobiusAdd(nx, y, c);
  const double sc = std::sqrt(c);
  const double arg = std::min(sc * EuclideanNorm(sum), 1.0 - 1e-12);
  return 2.0 / sc * std::atanh(arg);
}

double DistanceFromOrigin(const Vec& x, double c) {
  const double sc = std::sqrt(c);
  const double arg = std::min(sc * EuclideanNorm(x), 1.0 - 1e-12);
  return 2.0 / sc * std::atanh(arg);
}

Vec ExpMap0(const Vec& v, double c) {
  const double sc = std::sqrt(c);
  const double norm = EuclideanNorm(v);
  if (norm < 1e-15) return Vec(v.size(), 0.0);
  const double scale = std::tanh(sc * norm) / (sc * norm);
  Vec out(v.size());
  for (size_t i = 0; i < v.size(); ++i) out[i] = v[i] * scale;
  return ProjectToBall(out, c);
}

Vec LogMap0(const Vec& x, double c) {
  const double sc = std::sqrt(c);
  const double norm = EuclideanNorm(x);
  if (norm < 1e-15) return Vec(x.size(), 0.0);
  const double arg = std::min(sc * norm, 1.0 - 1e-12);
  const double scale = std::atanh(arg) / (sc * norm);
  Vec out(x.size());
  for (size_t i = 0; i < x.size(); ++i) out[i] = x[i] * scale;
  return out;
}

Vec MobiusAddChain(const std::vector<Vec>& points, double c) {
  CF_CHECK(!points.empty());
  Vec acc = ProjectToBall(points[0], c);
  for (size_t i = 1; i < points.size(); ++i) {
    acc = MobiusAdd(acc, points[i], c);
  }
  return acc;
}

Vec MobiusScalarMul(double r, const Vec& x, double c) {
  const double norm = EuclideanNorm(x);
  if (norm < 1e-15) return Vec(x.size(), 0.0);
  const double sc = std::sqrt(c);
  const double arg = std::min(sc * norm, 1.0 - 1e-12);
  const double scaled = std::tanh(r * std::atanh(arg)) / (sc * norm);
  Vec out(x.size());
  for (size_t i = 0; i < x.size(); ++i) out[i] = x[i] * scaled;
  return ProjectToBall(out, c);
}

double ConformalFactor(const Vec& x, double c) {
  return 2.0 / std::max(1e-15, 1.0 - c * SqNorm(x));
}

Vec ExpMap(const Vec& x, const Vec& v, double c) {
  const double norm = EuclideanNorm(v);
  if (norm < 1e-15) return ProjectToBall(x, c);
  const double sc = std::sqrt(c);
  const double lambda = ConformalFactor(x, c);
  const double coef = std::tanh(sc * lambda * norm / 2.0) / (sc * norm);
  Vec step(v.size());
  for (size_t i = 0; i < v.size(); ++i) step[i] = v[i] * coef;
  return MobiusAdd(x, step, c);
}

Vec LogMap(const Vec& x, const Vec& y, double c) {
  Vec nx(x.size());
  for (size_t i = 0; i < x.size(); ++i) nx[i] = -x[i];
  const Vec diff = MobiusAdd(nx, y, c);
  const double norm = EuclideanNorm(diff);
  if (norm < 1e-15) return Vec(x.size(), 0.0);
  const double sc = std::sqrt(c);
  const double lambda = ConformalFactor(x, c);
  const double arg = std::min(sc * norm, 1.0 - 1e-12);
  const double coef = 2.0 / (sc * lambda) * std::atanh(arg) / norm;
  Vec out(x.size());
  for (size_t i = 0; i < x.size(); ++i) out[i] = diff[i] * coef;
  return out;
}

Vec Geodesic(const Vec& x, const Vec& y, double t, double c) {
  Vec nx(x.size());
  for (size_t i = 0; i < x.size(); ++i) nx[i] = -x[i];
  const Vec direction = MobiusAdd(nx, y, c);
  return MobiusAdd(x, MobiusScalarMul(t, direction, c), c);
}

Vec Gyromidpoint(const std::vector<Vec>& points, const std::vector<double>& weights,
                 double c) {
  CF_CHECK(!points.empty());
  CF_CHECK_EQ(points.size(), weights.size());
  const size_t d = points[0].size();
  // Einstein-midpoint style aggregation computed through conformal factors:
  //   m = 1/2 ⊗ ( Σ w_i λ_i x_i / Σ w_i (λ_i - 1) ).
  Vec numerator(d, 0.0);
  double denominator = 0.0;
  for (size_t i = 0; i < points.size(); ++i) {
    CF_CHECK_GE(weights[i], 0.0);
    const double lambda = ConformalFactor(points[i], c);
    for (size_t j = 0; j < d; ++j) numerator[j] += weights[i] * lambda * points[i][j];
    denominator += weights[i] * (lambda - 1.0);
  }
  CF_CHECK_GT(denominator, 0.0) << "Gyromidpoint requires a positive total weight";
  Vec mean(d);
  for (size_t j = 0; j < d; ++j) mean[j] = numerator[j] / denominator;
  return MobiusScalarMul(0.5, ProjectToBall(mean, c), c);
}

}  // namespace hyperbolic
}  // namespace chainsformer
