#ifndef CHAINSFORMER_HYPERBOLIC_POINCARE_OPS_H_
#define CHAINSFORMER_HYPERBOLIC_POINCARE_OPS_H_

#include "tensor/tensor.h"

namespace chainsformer {
namespace hyperbolic {

// Autograd-compatible Poincaré-ball operations on rank-1 tensors, composed
// from tensor primitives so gradients flow into trainable hyperbolic
// embeddings (used when pre-training the Hyperbolic Filter and when the
// Chain Encoder log-maps relation embeddings, Eq. 12).
//
// Convention: trainable hyperbolic parameters are stored as *tangent*
// vectors at the origin; HExpMap0 maps them onto the ball before use. This
// keeps optimization Euclidean (standard Adam) while the geometry stays
// hyperbolic — the usual tangent-space parameterization of hyperbolic NNs.

/// exp_0(v): tangent vector -> ball point, differentiable.
tensor::Tensor HExpMap0(const tensor::Tensor& v, float c = 1.0f);

/// log_0(x): ball point -> tangent vector, differentiable (Eq. 12).
tensor::Tensor HLogMap0(const tensor::Tensor& x, float c = 1.0f);

/// Möbius addition x ⊕_c y, differentiable (Eq. 1).
tensor::Tensor HMobiusAdd(const tensor::Tensor& x, const tensor::Tensor& y,
                          float c = 1.0f);

/// Hyperbolic distance d_c(x, y), differentiable (Eq. 2).
tensor::Tensor HDistance(const tensor::Tensor& x, const tensor::Tensor& y,
                         float c = 1.0f);

/// Differentiable radial rescale keeping x strictly inside the ball.
tensor::Tensor HProject(const tensor::Tensor& x, float c = 1.0f,
                        float eps = 1e-4f);

}  // namespace hyperbolic
}  // namespace chainsformer

#endif  // CHAINSFORMER_HYPERBOLIC_POINCARE_OPS_H_
