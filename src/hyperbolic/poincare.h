#ifndef CHAINSFORMER_HYPERBOLIC_POINCARE_H_
#define CHAINSFORMER_HYPERBOLIC_POINCARE_H_

#include <vector>

namespace chainsformer {
namespace hyperbolic {

/// Plain (non-autograd) operations on the d-dimensional Poincaré ball
/// B^{d,c} = { x in R^d : c * ||x||^2 < 1 } with curvature -c (c > 0).
///
/// These are the fast double-precision kernels used by the Hyperbolic
/// Filter's scoring hot path; the autograd twins used during embedding
/// training live in poincare_ops.h.

using Vec = std::vector<double>;

/// Squared Euclidean norm.
double SqNorm(const Vec& x);

/// Euclidean norm.
double EuclideanNorm(const Vec& x);

/// Dot product; requires equal sizes.
double DotProduct(const Vec& x, const Vec& y);

/// Projects x into the open ball of radius (1 - eps)/sqrt(c) so that
/// subsequent operations stay numerically valid.
Vec ProjectToBall(const Vec& x, double c = 1.0, double eps = 1e-5);

/// Möbius addition x ⊕_c y (paper Eq. 1). Inputs must lie inside the ball.
Vec MobiusAdd(const Vec& x, const Vec& y, double c = 1.0);

/// Hyperbolic distance d(x, y) = (2/sqrt(c)) artanh(sqrt(c) ||(-x) ⊕_c y||)
/// (paper Eq. 2). For c = 1 this equals the arcosh form of Eq. 3.
double Distance(const Vec& x, const Vec& y, double c = 1.0);

/// Distance to the origin: (2/sqrt(c)) artanh(sqrt(c) ||x||).
double DistanceFromOrigin(const Vec& x, double c = 1.0);

/// Exponential map at the origin: tangent vector v -> point on the ball,
/// exp_0(v) = tanh(sqrt(c)||v||) * v / (sqrt(c)||v||).
Vec ExpMap0(const Vec& v, double c = 1.0);

/// Logarithmic map at the origin (paper Eq. 12 for c = 1):
/// log_0(x) = artanh(sqrt(c)||x||) * x / (sqrt(c)||x||).
Vec LogMap0(const Vec& x, double c = 1.0);

/// Left fold of Möbius addition over a sequence of points (Eq. 7):
/// h_{r_1} ⊕ h_{r_2} ⊕ ... ⊕ h_{r_l}, associated left-to-right.
Vec MobiusAddChain(const std::vector<Vec>& points, double c = 1.0);

/// Möbius scalar multiplication r ⊗_c x = exp_0(r * log_0(x)); the
/// hyperbolic analogue of scaling, satisfying 1 ⊗ x = x and
/// (r+s) ⊗ x = (r ⊗ x) ⊕ (s ⊗ x) along the same geodesic ray.
Vec MobiusScalarMul(double r, const Vec& x, double c = 1.0);

/// Conformal (λ) factor at x: λ_x = 2 / (1 - c ||x||²).
double ConformalFactor(const Vec& x, double c = 1.0);

/// Exponential map at base point x: exp_x(v) = x ⊕_c exp-scaled direction.
Vec ExpMap(const Vec& x, const Vec& v, double c = 1.0);

/// Logarithmic map at base point x; inverse of ExpMap.
Vec LogMap(const Vec& x, const Vec& y, double c = 1.0);

/// Geodesic from x to y at parameter t ∈ [0, 1]:
/// γ(t) = x ⊕_c (t ⊗_c ((-x) ⊕_c y)).
Vec Geodesic(const Vec& x, const Vec& y, double t, double c = 1.0);

/// Gyromidpoint (weighted hyperbolic centroid) of points with non-negative
/// weights; the Möbius analogue of a weighted mean, used by hyperbolic
/// attention/aggregation layers. Weights need not be normalized.
Vec Gyromidpoint(const std::vector<Vec>& points, const std::vector<double>& weights,
                 double c = 1.0);

}  // namespace hyperbolic
}  // namespace chainsformer

#endif  // CHAINSFORMER_HYPERBOLIC_POINCARE_H_
