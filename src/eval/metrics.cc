#include "eval/metrics.h"

#include <cmath>

#include "util/logging.h"

namespace chainsformer {
namespace eval {

MetricsAccumulator::MetricsAccumulator(std::vector<kg::AttributeStats> stats)
    : stats_(std::move(stats)) {
  const size_t n = stats_.size();
  count_.assign(n, 0);
  abs_sum_.assign(n, 0.0);
  sq_sum_.assign(n, 0.0);
  norm_abs_sum_.assign(n, 0.0);
  norm_sq_sum_.assign(n, 0.0);
}

void MetricsAccumulator::Add(kg::AttributeId attribute, double predicted,
                             double actual) {
  CF_CHECK_GE(attribute, 0);
  CF_CHECK_LT(static_cast<size_t>(attribute), stats_.size());
  const size_t a = static_cast<size_t>(attribute);
  const double err = predicted - actual;
  ++count_[a];
  abs_sum_[a] += std::fabs(err);
  sq_sum_[a] += err * err;
  const double range = stats_[a].Range();
  const double norm_err = range > 0.0 ? err / range : err;
  norm_abs_sum_[a] += std::fabs(norm_err);
  norm_sq_sum_[a] += norm_err * norm_err;
}

EvalResult MetricsAccumulator::Finalize() const {
  EvalResult result;
  result.per_attribute.resize(stats_.size());
  double norm_mae_total = 0.0;
  double norm_rmse_total = 0.0;
  int64_t attr_classes = 0;
  for (size_t a = 0; a < stats_.size(); ++a) {
    auto& m = result.per_attribute[a];
    m.count = count_[a];
    if (count_[a] == 0) continue;
    const double n = static_cast<double>(count_[a]);
    m.mae = abs_sum_[a] / n;
    m.rmse = std::sqrt(sq_sum_[a] / n);
    norm_mae_total += norm_abs_sum_[a] / n;
    norm_rmse_total += std::sqrt(norm_sq_sum_[a] / n);
    ++attr_classes;
    result.total_count += count_[a];
  }
  if (attr_classes > 0) {
    result.normalized_mae = norm_mae_total / static_cast<double>(attr_classes);
    result.normalized_rmse = norm_rmse_total / static_cast<double>(attr_classes);
  }
  return result;
}

}  // namespace eval
}  // namespace chainsformer
