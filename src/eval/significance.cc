#include "eval/significance.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"
#include "util/rng.h"

namespace chainsformer {
namespace eval {

BootstrapResult PairedBootstrap(const std::vector<double>& errors_a,
                                const std::vector<double>& errors_b,
                                int resamples, uint64_t seed) {
  CF_CHECK_EQ(errors_a.size(), errors_b.size());
  CF_CHECK_GT(errors_a.size(), 0u);
  CF_CHECK_GT(resamples, 0);
  const size_t n = errors_a.size();

  std::vector<double> diffs(n);
  double mean = 0.0;
  for (size_t i = 0; i < n; ++i) {
    diffs[i] = errors_a[i] - errors_b[i];
    mean += diffs[i];
  }
  mean /= static_cast<double>(n);

  Rng rng(seed);
  std::vector<double> boot_means(static_cast<size_t>(resamples));
  int extreme = 0;
  for (int r = 0; r < resamples; ++r) {
    double total = 0.0;
    for (size_t i = 0; i < n; ++i) {
      total += diffs[rng.UniformInt(static_cast<uint64_t>(n))];
    }
    const double bm = total / static_cast<double>(n);
    boot_means[static_cast<size_t>(r)] = bm;
    // Shifted-null p-value: recenter the bootstrap distribution at zero and
    // count samples at least as extreme as the observed mean.
    if (std::fabs(bm - mean) >= std::fabs(mean)) ++extreme;
  }
  std::sort(boot_means.begin(), boot_means.end());

  BootstrapResult result;
  result.mean_diff = mean;
  const auto pct = [&](double q) {
    const double idx = q * static_cast<double>(resamples - 1);
    return boot_means[static_cast<size_t>(idx)];
  };
  result.ci_low = pct(0.025);
  result.ci_high = pct(0.975);
  result.p_value = std::min(
      1.0, (static_cast<double>(extreme) + 1.0) / (static_cast<double>(resamples) + 1.0));
  return result;
}

}  // namespace eval
}  // namespace chainsformer
