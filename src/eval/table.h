#ifndef CHAINSFORMER_EVAL_TABLE_H_
#define CHAINSFORMER_EVAL_TABLE_H_

#include <string>
#include <vector>

namespace chainsformer {
namespace eval {

/// Simple console/markdown table builder used by the benchmark binaries to
/// print paper-style result tables.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void AddRow(std::vector<std::string> row);

  /// Fixed-width aligned console rendering.
  std::string ToString() const;

  /// GitHub-flavored markdown rendering.
  std::string ToMarkdown() const;

  size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace eval
}  // namespace chainsformer

#endif  // CHAINSFORMER_EVAL_TABLE_H_
