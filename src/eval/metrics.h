#ifndef CHAINSFORMER_EVAL_METRICS_H_
#define CHAINSFORMER_EVAL_METRICS_H_

#include <cstdint>
#include <vector>

#include "kg/knowledge_graph.h"

namespace chainsformer {
namespace eval {

/// Per-attribute regression metrics in the attribute's native unit.
struct AttributeMetrics {
  int64_t count = 0;
  double mae = 0.0;
  double rmse = 0.0;
};

/// Evaluation outcome: MAE/RMSE per attribute plus the paper's "Average*"
/// aggregates — every attribute's errors are min-max normalized to [0, 1]
/// (with the training statistics) and MAE/RMSE are averaged uniformly over
/// attribute classes (§V-A, Table III footnote).
struct EvalResult {
  std::vector<AttributeMetrics> per_attribute;  // indexed by AttributeId
  double normalized_mae = 0.0;   // Average* MAE
  double normalized_rmse = 0.0;  // Average* RMSE
  int64_t total_count = 0;
};

/// Streaming accumulator for (prediction, truth) pairs.
class MetricsAccumulator {
 public:
  /// `stats` are the *training-split* attribute statistics used for the
  /// normalized aggregate.
  explicit MetricsAccumulator(std::vector<kg::AttributeStats> stats);

  void Add(kg::AttributeId attribute, double predicted, double actual);

  EvalResult Finalize() const;

 private:
  std::vector<kg::AttributeStats> stats_;
  std::vector<int64_t> count_;
  std::vector<double> abs_sum_;
  std::vector<double> sq_sum_;
  std::vector<double> norm_abs_sum_;
  std::vector<double> norm_sq_sum_;
};

}  // namespace eval
}  // namespace chainsformer

#endif  // CHAINSFORMER_EVAL_METRICS_H_
