#include "eval/table.h"

#include <algorithm>
#include <sstream>

#include "util/logging.h"

namespace chainsformer {
namespace eval {

TextTable::TextTable(std::vector<std::string> header) : header_(std::move(header)) {}

void TextTable::AddRow(std::vector<std::string> row) {
  CF_CHECK_EQ(row.size(), header_.size());
  rows_.push_back(std::move(row));
}

std::string TextTable::ToString() const {
  std::vector<size_t> width(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) width[c] = std::max(width[c], row[c].size());
  }
  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "| " : " | ");
      os << row[c] << std::string(width[c] - row[c].size(), ' ');
    }
    os << " |\n";
  };
  emit_row(header_);
  os << "|";
  for (size_t c = 0; c < header_.size(); ++c) {
    os << std::string(width[c] + 2, '-') << "|";
  }
  os << "\n";
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

std::string TextTable::ToMarkdown() const {
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    os << "|";
    for (const auto& cell : row) os << " " << cell << " |";
    os << "\n";
  };
  emit(header_);
  os << "|";
  for (size_t c = 0; c < header_.size(); ++c) os << "---|";
  os << "\n";
  for (const auto& row : rows_) emit(row);
  return os.str();
}

}  // namespace eval
}  // namespace chainsformer
