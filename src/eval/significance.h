#ifndef CHAINSFORMER_EVAL_SIGNIFICANCE_H_
#define CHAINSFORMER_EVAL_SIGNIFICANCE_H_

#include <cstdint>
#include <vector>

namespace chainsformer {
namespace eval {

/// Result of a paired bootstrap comparison between two methods' per-query
/// errors (method A minus method B; negative mean_diff = A better).
struct BootstrapResult {
  double mean_diff = 0.0;  // mean(err_a - err_b)
  double ci_low = 0.0;     // 2.5th percentile of the bootstrap distribution
  double ci_high = 0.0;    // 97.5th percentile
  /// Two-sided bootstrap p-value for H0: mean difference == 0.
  double p_value = 1.0;
  bool significant_at_05() const { return p_value < 0.05; }
};

/// Paired bootstrap over per-query error pairs. `errors_a` and `errors_b`
/// must be aligned (same queries, same order). Deterministic for a seed.
BootstrapResult PairedBootstrap(const std::vector<double>& errors_a,
                                const std::vector<double>& errors_b,
                                int resamples = 2000, uint64_t seed = 1234);

}  // namespace eval
}  // namespace chainsformer

#endif  // CHAINSFORMER_EVAL_SIGNIFICANCE_H_
