#ifndef CHAINSFORMER_TENSOR_GRADCHECK_H_
#define CHAINSFORMER_TENSOR_GRADCHECK_H_

#include <functional>
#include <vector>

#include "tensor/tensor.h"

namespace chainsformer {
namespace tensor {

/// Result of a finite-difference gradient check.
struct GradCheckResult {
  bool ok = true;
  double max_abs_error = 0.0;
  double max_rel_error = 0.0;
};

/// Verifies analytic gradients of `fn` (a scalar-valued function of `inputs`)
/// against central finite differences. The inputs must already have
/// requires_grad set. `fn` must be deterministic and re-entrant: it is called
/// once per perturbed element plus once for the analytic pass.
GradCheckResult CheckGradients(
    const std::function<Tensor(const std::vector<Tensor>&)>& fn,
    std::vector<Tensor> inputs, double eps = 1e-3, double tolerance = 5e-2);

}  // namespace tensor
}  // namespace chainsformer

#endif  // CHAINSFORMER_TENSOR_GRADCHECK_H_
