#ifndef CHAINSFORMER_TENSOR_OP_OBSERVER_H_
#define CHAINSFORMER_TENSOR_OP_OBSERVER_H_

#include <initializer_list>

#include "tensor/tensor.h"

namespace chainsformer {
namespace tensor {

/// Observer hook on the op layer's single return path (FinishOp in ops.cc).
/// While installed on a thread, every tensor op executed by that thread
/// reports its name, output, and inputs here — the hook the static-graph
/// tracer (src/graph/trace.h) uses to record one eager forward. Observation
/// is forward-only and read-only: it fires even under NoGradGuard and must
/// not mutate the tensors it is shown.
class OpObserver {
 public:
  virtual ~OpObserver();

  /// Called after op `op` produced `out` from `inputs`. `inputs` may be
  /// empty (ops taking vector arguments, e.g. Concat/Stack, pass none).
  virtual void OnOp(const char* op, const Tensor& out,
                    std::initializer_list<const Tensor*> inputs) = 0;
};

/// The observer installed on the current thread, or nullptr. Thread-local,
/// so tracing one request never sees ops from concurrently served requests.
OpObserver* CurrentOpObserver();

/// RAII installer: sets the current thread's observer for the scope,
/// restoring the previous one (usually nullptr) on destruction.
class ScopedOpObserver {
 public:
  explicit ScopedOpObserver(OpObserver* observer);
  ~ScopedOpObserver();

  ScopedOpObserver(const ScopedOpObserver&) = delete;
  ScopedOpObserver& operator=(const ScopedOpObserver&) = delete;

 private:
  OpObserver* previous_;
};

}  // namespace tensor
}  // namespace chainsformer

#endif  // CHAINSFORMER_TENSOR_OP_OBSERVER_H_
