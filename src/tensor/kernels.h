#ifndef CHAINSFORMER_TENSOR_KERNELS_H_
#define CHAINSFORMER_TENSOR_KERNELS_H_

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <functional>
#include <limits>

namespace chainsformer {
namespace tensor {
namespace kernels {

// Dense float32 kernel layer behind tensor/ops.cc. All GEMM variants are
// row-major and accumulate into the output (`C += ...`), which serves both
// the forward pass (outputs start zeroed) and gradient accumulation.
//
// Threading model: work is partitioned by output row over a process-wide
// worker pool; every output row is produced by exactly one thread with a
// fixed k-traversal order, so results are bitwise identical for any thread
// count. Matrices below a flop threshold are computed inline on the calling
// thread. Worker tasks never launch nested parallel sections, so the layer
// is safe to call from other thread pools (e.g. the per-query eval pool).

/// Sets the process-wide kernel thread count. 1 (the default) keeps every
/// kernel on the calling thread; 0 means std::thread::hardware_concurrency.
/// Not thread-safe against concurrently running kernels — call it at
/// startup / model construction, not mid-training-step.
void SetKernelThreads(int n);

/// Currently configured kernel thread count (>= 1).
int KernelThreads();

/// C[m,n] += A[m,k] * B[k,n].
void GemmAcc(int64_t m, int64_t k, int64_t n, const float* a, const float* b,
             float* c);

/// C[m,k] += G[m,n] * B[k,n]^T — the dA product of a matmul backward.
void GemmBtAcc(int64_t m, int64_t k, int64_t n, const float* g, const float* b,
               float* c);

/// C[k,n] += A[m,k]^T * G[m,n] — the dB product of a matmul backward.
void GemmAtAcc(int64_t m, int64_t k, int64_t n, const float* a, const float* g,
               float* c);

/// Single-threaded variants, for callers that already parallelized at an
/// outer level (e.g. BatchMatMul over the batch dimension). Bitwise
/// identical to the parallel variants.
void GemmAccSerial(int64_t m, int64_t k, int64_t n, const float* a,
                   const float* b, float* c);
void GemmBtAccSerial(int64_t m, int64_t k, int64_t n, const float* g,
                     const float* b, float* c);
void GemmAtAccSerial(int64_t m, int64_t k, int64_t n, const float* a,
                     const float* g, float* c);

/// Number of non-finite (NaN or +/-Inf) values among x[0..n). Uses the same
/// ParallelRanges dispatch as the GEMM kernels — large scans are partitioned
/// over the worker pool with per-range partial counts — and a branch-free
/// exponent-mask inner loop that vectorizes under -O3. The tape sanitizer's
/// full-mode poison scan is built on this.
int64_t CountNonFinite(const float* x, int64_t n);

/// Runs fn(begin, end) over disjoint sub-ranges of [0, n). `cost_per_item`
/// is a rough flop/byte weight per index used against the grain threshold:
/// small totals run inline as a single fn(0, n) call. Ranges are disjoint,
/// so any fn writing only to its own indices is race-free and (being the
/// same per-index arithmetic regardless of partition) deterministic.
void ParallelRanges(int64_t n, int64_t cost_per_item,
                    const std::function<void(int64_t, int64_t)>& fn);

// ---- Shared scalar/row forward primitives (DESIGN §6f) ---------------------
//
// The exact per-element arithmetic of the forward-only ops that both the
// eager path (tensor/ops.cc) and the compiled static-graph executor
// (src/graph) run. Keeping one definition here is what makes a compiled plan
// bitwise-identical to the eager forward *by construction*: both sides
// compile the same inline code. All helpers are allocation-free and write
// only through their output pointers, so they are safe inside ParallelRanges
// partitions and inside the executor's preallocated arena alike.

/// Exact GELU of one element: 0.5 x (1 + erf(x / sqrt(2))).
inline float GeluScalar(float x) {
  constexpr float kInvSqrt2 = 0.70710678118654752f;
  return 0.5f * x * (1.0f + std::erf(x * kInvSqrt2));
}

/// Softmax over one row of n elements (max-shifted, double accumulator).
inline void SoftmaxRow(const float* x, int64_t n, float* y) {
  float mx = x[0];
  for (int64_t j = 1; j < n; ++j) mx = std::max(mx, x[j]);
  double z = 0.0;
  for (int64_t j = 0; j < n; ++j) {
    y[j] = std::exp(x[j] - mx);
    z += y[j];
  }
  const float invz = static_cast<float>(1.0 / z);
  for (int64_t j = 0; j < n; ++j) y[j] *= invz;
}

/// Key-padding-masked softmax over one row: entries with m[j] == 0 get
/// probability exactly 0; a fully masked row is defined as all-zero.
inline void MaskedSoftmaxRow(const float* x, const float* m, int64_t n,
                             float* y) {
  float mx = -std::numeric_limits<float>::infinity();
  for (int64_t j = 0; j < n; ++j) {
    if (m[j] != 0.0f) mx = std::max(mx, x[j]);
  }
  if (mx == -std::numeric_limits<float>::infinity()) {
    for (int64_t j = 0; j < n; ++j) y[j] = 0.0f;
    return;
  }
  double z = 0.0;
  for (int64_t j = 0; j < n; ++j) {
    if (m[j] != 0.0f) {
      y[j] = std::exp(x[j] - mx);
      z += y[j];
    } else {
      y[j] = 0.0f;
    }
  }
  const float invz = static_cast<float>(1.0 / z);
  for (int64_t j = 0; j < n; ++j) y[j] *= invz;
}

/// Layer normalization of one row with affine gamma/beta (double-precision
/// mean/variance, matching LayerNormOp). When non-null, `xhat` receives the
/// normalized row and `inv_std` the reciprocal standard deviation — the
/// per-row statistics the eager backward pass caches; the executor passes
/// nullptr.
inline void LayerNormRow(const float* x, const float* gamma, const float* beta,
                         int64_t n, float eps, float* out, float* xhat,
                         float* inv_std) {
  double mu = 0.0;
  for (int64_t j = 0; j < n; ++j) mu += x[j];
  mu /= n;
  double var = 0.0;
  for (int64_t j = 0; j < n; ++j) {
    const double d = x[j] - mu;
    var += d * d;
  }
  var /= n;
  const float istd = static_cast<float>(1.0 / std::sqrt(var + eps));
  if (inv_std != nullptr) *inv_std = istd;
  for (int64_t j = 0; j < n; ++j) {
    const float xh = (x[j] - static_cast<float>(mu)) * istd;
    if (xhat != nullptr) xhat[j] = xh;
    out[j] = xh * gamma[j] + beta[j];
  }
}

// ---- Fused elementwise chains (static-graph compile targets) ---------------
//
// Each fusion only removes intermediate buffer stores; every element still
// goes through the identical float operation sequence, and a float round-trip
// through memory is lossless, so fused results equal the unfused eager ops
// bit-for-bit (DESIGN §6f).

/// rows x n bias broadcast: y[i, j] = x[i, j] + bias[j] (Linear bias add).
inline void BiasAddRows(const float* x, const float* bias, int64_t rows,
                        int64_t n, float* y) {
  for (int64_t i = 0; i < rows; ++i) {
    const float* xr = x + i * n;
    float* yr = y + i * n;
    for (int64_t j = 0; j < n; ++j) yr[j] = xr[j] + bias[j];
  }
}

/// Fused Linear bias + GELU: y[i, j] = GeluScalar(x[i, j] + bias[j]).
inline void BiasGeluRows(const float* x, const float* bias, int64_t rows,
                         int64_t n, float* y) {
  for (int64_t i = 0; i < rows; ++i) {
    const float* xr = x + i * n;
    float* yr = y + i * n;
    for (int64_t j = 0; j < n; ++j) yr[j] = GeluScalar(xr[j] + bias[j]);
  }
}

/// Fused residual-add + LayerNorm prologue: out row = LN(x + r). The sum is
/// recomputed in each of the three passes instead of being staged in a
/// scratch buffer; float addition is deterministic, so all three passes see
/// identical values.
inline void ResidualLayerNormRow(const float* x, const float* r,
                                 const float* gamma, const float* beta,
                                 int64_t n, float eps, float* out) {
  double mu = 0.0;
  for (int64_t j = 0; j < n; ++j) mu += x[j] + r[j];
  mu /= n;
  double var = 0.0;
  for (int64_t j = 0; j < n; ++j) {
    const double d = (x[j] + r[j]) - mu;
    var += d * d;
  }
  var /= n;
  const float istd = static_cast<float>(1.0 / std::sqrt(var + eps));
  for (int64_t j = 0; j < n; ++j) {
    const float xh = ((x[j] + r[j]) - static_cast<float>(mu)) * istd;
    out[j] = xh * gamma[j] + beta[j];
  }
}

/// Fused scale-projection epilogue (Eq. 18): out[i] = (raw[i] + s) * vn[i].
inline void AddScalarMul(const float* raw, float s, const float* vn, int64_t n,
                         float* out) {
  for (int64_t i = 0; i < n; ++i) out[i] = (raw[i] + s) * vn[i];
}

/// Fused affine-transfer epilogue (Eq. 16): out = (a + b) + c elementwise,
/// in the eager Add(Add(a, b), c) association order.
inline void Add3(const float* a, const float* b, const float* c, int64_t n,
                 float* out) {
  for (int64_t i = 0; i < n; ++i) out[i] = (a[i] + b[i]) + c[i];
}

}  // namespace kernels
}  // namespace tensor
}  // namespace chainsformer

#endif  // CHAINSFORMER_TENSOR_KERNELS_H_
