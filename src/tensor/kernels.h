#ifndef CHAINSFORMER_TENSOR_KERNELS_H_
#define CHAINSFORMER_TENSOR_KERNELS_H_

#include <cstdint>
#include <functional>

namespace chainsformer {
namespace tensor {
namespace kernels {

// Dense float32 kernel layer behind tensor/ops.cc. All GEMM variants are
// row-major and accumulate into the output (`C += ...`), which serves both
// the forward pass (outputs start zeroed) and gradient accumulation.
//
// Threading model: work is partitioned by output row over a process-wide
// worker pool; every output row is produced by exactly one thread with a
// fixed k-traversal order, so results are bitwise identical for any thread
// count. Matrices below a flop threshold are computed inline on the calling
// thread. Worker tasks never launch nested parallel sections, so the layer
// is safe to call from other thread pools (e.g. the per-query eval pool).

/// Sets the process-wide kernel thread count. 1 (the default) keeps every
/// kernel on the calling thread; 0 means std::thread::hardware_concurrency.
/// Not thread-safe against concurrently running kernels — call it at
/// startup / model construction, not mid-training-step.
void SetKernelThreads(int n);

/// Currently configured kernel thread count (>= 1).
int KernelThreads();

/// C[m,n] += A[m,k] * B[k,n].
void GemmAcc(int64_t m, int64_t k, int64_t n, const float* a, const float* b,
             float* c);

/// C[m,k] += G[m,n] * B[k,n]^T — the dA product of a matmul backward.
void GemmBtAcc(int64_t m, int64_t k, int64_t n, const float* g, const float* b,
               float* c);

/// C[k,n] += A[m,k]^T * G[m,n] — the dB product of a matmul backward.
void GemmAtAcc(int64_t m, int64_t k, int64_t n, const float* a, const float* g,
               float* c);

/// Single-threaded variants, for callers that already parallelized at an
/// outer level (e.g. BatchMatMul over the batch dimension). Bitwise
/// identical to the parallel variants.
void GemmAccSerial(int64_t m, int64_t k, int64_t n, const float* a,
                   const float* b, float* c);
void GemmBtAccSerial(int64_t m, int64_t k, int64_t n, const float* g,
                     const float* b, float* c);
void GemmAtAccSerial(int64_t m, int64_t k, int64_t n, const float* a,
                     const float* g, float* c);

/// Number of non-finite (NaN or +/-Inf) values among x[0..n). Uses the same
/// ParallelRanges dispatch as the GEMM kernels — large scans are partitioned
/// over the worker pool with per-range partial counts — and a branch-free
/// exponent-mask inner loop that vectorizes under -O3. The tape sanitizer's
/// full-mode poison scan is built on this.
int64_t CountNonFinite(const float* x, int64_t n);

/// Runs fn(begin, end) over disjoint sub-ranges of [0, n). `cost_per_item`
/// is a rough flop/byte weight per index used against the grain threshold:
/// small totals run inline as a single fn(0, n) call. Ranges are disjoint,
/// so any fn writing only to its own indices is race-free and (being the
/// same per-index arithmetic regardless of partition) deterministic.
void ParallelRanges(int64_t n, int64_t cost_per_item,
                    const std::function<void(int64_t, int64_t)>& fn);

}  // namespace kernels
}  // namespace tensor
}  // namespace chainsformer

#endif  // CHAINSFORMER_TENSOR_KERNELS_H_
